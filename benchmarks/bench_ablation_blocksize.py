"""Ablation: block-size selection (regenerates the Section 6.1 choices).

LU's block must satisfy divisibility (k, p-1) and the SRAM bound on the
Eq. 4 split; FW's tile is bounded by the 2 b^2-word SRAM stage and then
capped where the processor kernel stays cache-resident.
"""

from repro.experiments import ablation_blocksize


def test_ablation_block_size_selection(run_experiment):
    result = run_experiment(ablation_blocksize)
    assert result.data["fw_choice"] == 256
