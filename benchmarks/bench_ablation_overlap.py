"""Ablation: computation/communication overlap on vs off.

Quantifies the Section 4.2/4.3 refinement the paper's partition
equations encode: staging and network time are placed on the CPU-side
serial path precisely because the FPGA can overlap them.
"""

from repro.experiments import ablation_overlap


def test_ablation_overlap(run_experiment):
    run_experiment(ablation_overlap)
