"""Ablation: the naive T_p = T_f split (prior work [22]) vs Equation 4.

On the XD1 the transfer terms are small and both rules nearly coincide;
on a bandwidth-starved variant the transfer-aware split wins clearly.
"""

from repro.experiments import ablation_partition


def test_ablation_partition_rule(run_experiment):
    run_experiment(ablation_partition)
