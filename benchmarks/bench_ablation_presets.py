"""Ablation: design-model predictions across the Section 3 machines.

Exercises the model's Section 4.5 use-case -- predicting application
performance from machine parameters -- over XD1, XT3+DRC, SRC MAP and
SGI RASC presets.
"""

from repro.experiments import ablation_presets


def test_ablation_machine_presets(run_experiment):
    run_experiment(ablation_presets)
