"""Extension benchmark: the design model applied to a third application.

Distributed hybrid ring matrix multiplication (the workload of the
authors' prior ICPADS 2006 paper), split by Equation (2).  With no
serial panel path, the hybrid approaches the sum of the baselines --
bracketing the paper's LU (~70-80%) and FW (~96%) results from above.
"""

from repro.experiments import ext_ring_mm


def test_extension_ring_mm(run_experiment):
    result = run_experiment(ext_ring_mm)
    assert result.data["hybrid"] > result.data["cpu_only"] + result.data["fpga_only"] * 0.9
