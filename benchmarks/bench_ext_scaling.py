"""Extension benchmark: chassis-size scaling.

The paper evaluates a single 6-node chassis; this study runs FW weak
scaling and LU strong scaling across node counts, with the Section 4.5
predictions as upper bounds.
"""

from repro.experiments import ext_scaling


def test_extension_scaling(run_experiment):
    result = run_experiment(ext_scaling)
    fw_points = result.data["fw"]
    assert fw_points[-1].gflops > fw_points[0].gflops
