"""Figure 5: latency of one 3000 x 3000 block multiplication vs b_f.

Sweeps the FPGA's row share of the cooperative block product on 5
worker nodes (node 0 streams the stripes) at true stripe granularity.
Paper shape: latency falls as the FPGA takes load, bottoms out near the
Eq. 4 balance point, then climbs as the FPGA overloads.
"""

from repro.experiments import fig5_bf_sweep


def test_fig5_block_mm_latency_vs_bf(run_experiment):
    result = run_experiment(fig5_bf_sweep)
    series = result.data["series"]
    assert series.is_u_shaped()
