"""Figure 6: latency of the 0th LU iteration vs the load-balance l.

Paper shape: latency falls as l grows from 0 (workers starve between
panel routines), reaches the Eq. 5 operating point, and is essentially
flat beyond it (the owner's extra send bursts are cheap).
"""

from repro.experiments import fig6_l_sweep


def test_fig6_iteration_latency_vs_l(run_experiment):
    run_experiment(fig6_l_sweep)
