"""Figure 7: latency of one FW iteration vs l1 (n = 18432, b = 256).

Paper shape: minimum at l1 = 2; at l1 = 1 the FPGA overloads; for
l1 >= 3 the processor is the bottleneck and even the FPGA-only design
(l1 = 0) is faster than those splits.
"""

from repro.experiments import fig7_l1_sweep


def test_fig7_iteration_latency_vs_l1(run_experiment):
    result = run_experiment(fig7_l1_sweep)
    assert result.data["series"].argmin() == 2
