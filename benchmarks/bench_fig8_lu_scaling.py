"""Figure 8: LU GFLOPS vs the number of blocks n/b (b = 3000).

Paper shape: sustained GFLOPS rise with n/b because opMM -- the only
hybrid task -- accounts for a growing share of the work.
"""

from repro.experiments import fig8_lu_scaling


def test_fig8_lu_gflops_vs_nb(run_experiment):
    result = run_experiment(fig8_lu_scaling)
    assert result.data["series"].is_monotone_increasing()
