"""Figure 9: hybrid designs vs Processor-only and FPGA-only baselines.

Paper values on 6 XD1 nodes -- LU (n = 30000): hybrid 20 GFLOPS, 1.3x /
2x over the baselines, ~80% of their sum, ~86% of the model prediction.
FW (n = 92160): hybrid 6.6 GFLOPS, 5.8x / 1.15x, >95% of the sum, ~96%
of prediction.
"""

from repro.experiments import fig9_fw, fig9_lu


def test_fig9_lu_comparison(run_experiment):
    result = run_experiment(fig9_lu)
    assert result.data["hybrid"] > result.data["cpu_only"]
    assert result.data["hybrid"] > result.data["fpga_only"]


def test_fig9_fw_comparison(run_experiment):
    result = run_experiment(fig9_fw)
    assert abs(result.data["hybrid"] - 6.6) / 6.6 < 0.05
