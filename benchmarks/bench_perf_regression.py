"""Performance-regression tracker: DES event throughput + sweep throughput.

Times the two hot paths this repo optimises -- the discrete-event
simulator core and the experiment sweep engine -- and writes the numbers
to ``BENCH_perf.json`` at the repo root so successive runs can be
compared (see docs/performance.md for reference numbers and what a
regression looks like).

Run:  python benchmarks/bench_perf_regression.py [--jobs N] [--rounds R] [--quick]

``--check-baseline`` re-times only the DES benches (instrumentation
disabled -- no monitor attached, the default) and fails if any falls
more than ``--tolerance`` (default 2%) below the recorded baseline.
This is the guard that keeps the observability layer's no-op path off
the simulator's hot loop.
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
if str(REPO_ROOT / "src") not in sys.path:
    sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.sim.core import Simulator  # noqa: E402


# -----------------------------------------------------------------------
# DES micro-benchmarks: events/second on three scheduling patterns
# -----------------------------------------------------------------------


def bench_timeouts(nproc: int = 100, nsteps: int = 2000) -> float:
    """Pure timeout churn: the pooled-Timeout / calendar-queue fast path."""
    sim = Simulator()
    timeout = sim.timeout

    def worker():
        for _ in range(nsteps):
            yield timeout(1.0)

    for _ in range(nproc):
        sim.process(worker())
    nevents = nproc * nsteps
    t0 = time.perf_counter()
    sim.run()
    return nevents / (time.perf_counter() - t0)


def bench_mixed(nproc: int = 100, nsteps: int = 1000) -> float:
    """Alternating timeouts and already-succeeded events (zero-delay queue)."""
    sim = Simulator()
    timeout = sim.timeout
    event = sim.event

    def worker():
        for _ in range(nsteps):
            yield timeout(1.0)
            ev = event()
            ev.succeed(42)
            yield ev

    for _ in range(nproc):
        sim.process(worker())
    nevents = nproc * nsteps * 2
    t0 = time.perf_counter()
    sim.run()
    return nevents / (time.perf_counter() - t0)


def bench_fanin(nproc: int = 50, nsteps: int = 500, width: int = 4) -> float:
    """all_of() fan-in over timeout groups (the condition fast path)."""
    sim = Simulator()
    timeout = sim.timeout
    all_of = sim.all_of

    def worker():
        for _ in range(nsteps):
            yield all_of([timeout(1.0) for _ in range(width)])

    for _ in range(nproc):
        sim.process(worker())
    nevents = nproc * nsteps * (width + 1)
    t0 = time.perf_counter()
    sim.run()
    return nevents / (time.perf_counter() - t0)


DES_BENCHES = {"timeouts": bench_timeouts, "mixed": bench_mixed, "fanin": bench_fanin}


# -----------------------------------------------------------------------
# Sweep throughput: experiment points/second through the sweep engine
# -----------------------------------------------------------------------

#: Sweep-heavy experiments (figure curves, not one-shot comparisons).
SWEEP_EXPERIMENTS = ["fig5", "fig6", "fig7", "fig8"]


def bench_sweeps(jobs: int | str | None) -> dict[str, float]:
    """Run the sweep-heavy experiments; returns timing + throughput."""
    from repro import experiments as E

    before = E.SIM_CALLS
    with E.configured(jobs=jobs, cache=False) as (executor, _):
        t0 = time.perf_counter()
        results = [E.ALL_EXPERIMENTS[name]() for name in SWEEP_EXPERIMENTS]
        elapsed = time.perf_counter() - t0
        mode = executor.last_mode
    bad = [r.id for r in results if not r.ok]
    if bad:
        raise SystemExit(f"experiment checks failed during benchmark: {bad}")
    points = E.SIM_CALLS - before if mode == "serial" else _sweep_point_count()
    return {
        "experiments": SWEEP_EXPERIMENTS,
        "points": points,
        "elapsed_s": elapsed,
        "points_per_s": points / elapsed,
        "mode": mode,
    }


def _sweep_point_count() -> int:
    """Simulation-point count of SWEEP_EXPERIMENTS (fixed by the harness)."""
    return 16 + 6 + 13 + 5  # fig5 b_f grid, fig6 l grid, fig7 l1 grid, fig8 n/b grid


#: Measured throughput this far *above* baseline flags the baseline as
#: stale -- the recorded numbers no longer describe this machine/build,
#: so the regression floor is meaninglessly low.  Non-fatal.
STALE_FACTOR = 1.25


def classify_measurement(measured: float, baseline: float, tolerance: float) -> str:
    """``ok`` / ``regression`` / ``stale-baseline`` for one DES bench."""
    if measured < baseline * (1.0 - tolerance):
        return "regression"
    if measured > baseline * STALE_FACTOR:
        return "stale-baseline"
    return "ok"


def check_baseline(
    baseline_path: Path, rounds: int, tolerance: float, ledger: Path | None = None
) -> int:
    """Assert DES throughput is within ``tolerance`` of the baseline.

    The benches run with no monitor attached, i.e. the configuration the
    zero-overhead claim is about; best-of-``rounds`` damps scheduler
    noise.  Returns 0 when every bench clears
    ``baseline * (1 - tolerance)``, 1 otherwise.  A bench landing more
    than ``STALE_FACTOR`` *above* its baseline gets a non-fatal
    stale-baseline warning (re-record with a plain run).  With
    ``ledger`` the per-bench outcomes are appended to the run ledger.
    """
    if not baseline_path.is_file():
        print(f"no baseline at {baseline_path}; run without --check-baseline first")
        return 2
    baseline = json.loads(baseline_path.read_text())["des_events_per_s"]
    outcomes: dict[str, dict] = {}
    for name, fn in DES_BENCHES.items():
        best = 0.0
        for _ in range(max(1, rounds)):
            best = max(best, fn())
        ref = baseline[name]
        floor = ref * (1.0 - tolerance)
        status = classify_measurement(best, ref, tolerance)
        outcomes[name] = {"measured": best, "baseline": ref, "status": status}
        tag = {"ok": "ok", "regression": "REGRESSION", "stale-baseline": "ok (stale?)"}[status]
        print(
            f"des/{name:10s} {best:>12,.0f} events/s  "
            f"(baseline {ref:,.0f}, floor {floor:,.0f}) {tag}"
        )
    failures = [n for n, o in outcomes.items() if o["status"] == "regression"]
    stale = [n for n, o in outcomes.items() if o["status"] == "stale-baseline"]
    if stale:
        print(
            f"warning: {stale} exceed baseline by > {STALE_FACTOR - 1:.0%}; the "
            f"recorded baseline looks stale -- re-record it (run without "
            f"--check-baseline)"
        )
    if ledger is not None:
        from repro.obs import RunLedger, bench_entry

        entry = RunLedger(ledger).append(bench_entry(outcomes, tolerance=tolerance))
        print(f"recorded seq {entry['seq']}: bench outcomes -> {ledger}")
    if failures:
        print(f"throughput regression (> {tolerance:.0%} below baseline): {failures}")
        return 1
    print(f"all DES benches within {tolerance:.0%} of baseline")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--jobs",
        default=None,
        help="worker processes for the sweep benchmark (int or 'auto'; default serial)",
    )
    parser.add_argument(
        "--rounds", type=int, default=3, help="DES benchmark rounds (best-of); default 3"
    )
    parser.add_argument(
        "--quick", action="store_true", help="smaller DES workloads (CI smoke mode)"
    )
    parser.add_argument(
        "--output",
        type=Path,
        default=REPO_ROOT / "BENCH_perf.json",
        help="where to write the results JSON",
    )
    parser.add_argument(
        "--check-baseline",
        action="store_true",
        help="compare DES throughput against the recorded baseline instead "
        "of rewriting it; non-zero exit on a regression",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.02,
        help="allowed fractional shortfall vs baseline for --check-baseline "
        "(default 0.02 = 2%%)",
    )
    parser.add_argument(
        "--ledger",
        type=Path,
        default=None,
        help="append the --check-baseline outcomes to this run ledger",
    )
    args = parser.parse_args(argv)

    if args.check_baseline:
        return check_baseline(args.output, args.rounds, args.tolerance, ledger=args.ledger)

    scale = 10 if args.quick else 1
    des: dict[str, float] = {}
    for name, fn in DES_BENCHES.items():
        best = 0.0
        for _ in range(max(1, args.rounds)):
            kwargs = {"nproc": 100 // scale} if args.quick else {}
            best = max(best, fn(**kwargs))
        des[name] = best
        print(f"des/{name:10s} {best:>12,.0f} events/s")

    sweeps = bench_sweeps(args.jobs)
    print(
        f"sweeps ({sweeps['mode']}) {sweeps['points']} points in "
        f"{sweeps['elapsed_s']:.2f}s = {sweeps['points_per_s']:.1f} points/s"
    )

    report = {
        "schema": 1,
        "python": platform.python_version(),
        "machine": platform.machine(),
        "quick": args.quick,
        "des_events_per_s": des,
        "sweep": sweeps,
    }
    args.output.write_text(json.dumps(report, indent=2) + "\n", encoding="utf-8")
    print(f"wrote {args.output}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
