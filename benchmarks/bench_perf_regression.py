"""Performance-regression tracker: DES, sweep, campaign, and tuner.

Times the hot paths this repo optimises -- the discrete-event simulator
core, the experiment sweep engine, and the replicated campaign harness
-- plus the guided autotuner's search efficiency, and writes the
numbers to ``BENCH_perf.json`` at the repo root so successive runs can
be compared (see docs/performance.md for reference numbers and what a
regression looks like).

Run:  python benchmarks/bench_perf_regression.py [--jobs N] [--rounds R] [--quick]

``--check-baseline`` re-times only the DES benches (instrumentation
disabled -- no monitor attached, the default) and fails if any falls
more than ``--tolerance`` (default 2%) below the recorded baseline.
This is the guard that keeps the observability layer's no-op path off
the simulator's hot loop.  ``--check-tune`` gates the guided search's
efficiency contract: within 2% of the exhaustive optimum at <= 25% of
the exhaustive full-fidelity evaluations (docs/performance.md,
"Guided search").
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
if str(REPO_ROOT / "src") not in sys.path:
    sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.sim.core import Simulator  # noqa: E402


# -----------------------------------------------------------------------
# DES micro-benchmarks: events/second on three scheduling patterns
# -----------------------------------------------------------------------


def bench_timeouts(nproc: int = 100, nsteps: int = 2000) -> float:
    """Pure timeout churn: the pooled-Timeout / calendar-queue fast path."""
    sim = Simulator()
    timeout = sim.timeout

    def worker():
        for _ in range(nsteps):
            yield timeout(1.0)

    for _ in range(nproc):
        sim.process(worker())
    nevents = nproc * nsteps
    t0 = time.perf_counter()
    sim.run()
    return nevents / (time.perf_counter() - t0)


def bench_mixed(nproc: int = 100, nsteps: int = 1000) -> float:
    """Alternating timeouts and already-succeeded events (zero-delay queue)."""
    sim = Simulator()
    timeout = sim.timeout
    event = sim.event

    def worker():
        for _ in range(nsteps):
            yield timeout(1.0)
            ev = event()
            ev.succeed(42)
            yield ev

    for _ in range(nproc):
        sim.process(worker())
    nevents = nproc * nsteps * 2
    t0 = time.perf_counter()
    sim.run()
    return nevents / (time.perf_counter() - t0)


def bench_fanin(nproc: int = 50, nsteps: int = 500, width: int = 4) -> float:
    """all_of() fan-in over timeout groups (the condition fast path)."""
    sim = Simulator()
    timeout = sim.timeout
    all_of = sim.all_of

    def worker():
        for _ in range(nsteps):
            yield all_of([timeout(1.0) for _ in range(width)])

    for _ in range(nproc):
        sim.process(worker())
    nevents = nproc * nsteps * (width + 1)
    t0 = time.perf_counter()
    sim.run()
    return nevents / (time.perf_counter() - t0)


DES_BENCHES = {"timeouts": bench_timeouts, "mixed": bench_mixed, "fanin": bench_fanin}


# -----------------------------------------------------------------------
# Sweep throughput: experiment points/second through the sweep engine
# -----------------------------------------------------------------------

#: Sweep-heavy experiments (figure curves, not one-shot comparisons).
SWEEP_EXPERIMENTS = ["fig5", "fig6", "fig7", "fig8"]


def bench_sweeps(jobs: int | str | None, fast_path: str | None = None) -> dict:
    """Run the sweep-heavy experiments; returns timing + throughput.

    The returned dict carries the analytic-vs-DES split for the run
    (``fast_path`` key).  In parallel mode the split covers the points
    decided in the parent process (the vectorised batch pre-pass); points
    simulated inside workers count their paths in worker registries.
    """
    from repro import experiments as E
    from repro.sim.analytic import fastpath_summary

    def _counts(summary):
        if summary is None:
            return 0, 0
        return summary.get("analytic", 0), summary.get("des", 0)

    a0, d0 = _counts(fastpath_summary())
    before = E.SIM_CALLS
    with E.configured(jobs=jobs, cache=False, fast_path=fast_path) as (executor, _):
        t0 = time.perf_counter()
        results = [E.ALL_EXPERIMENTS[name]() for name in SWEEP_EXPERIMENTS]
        elapsed = time.perf_counter() - t0
        mode = executor.last_mode
    bad = [r.id for r in results if not r.ok]
    if bad:
        raise SystemExit(f"experiment checks failed during benchmark: {bad}")
    points = E.SIM_CALLS - before if mode == "serial" else _sweep_point_count()
    a1, d1 = _counts(fastpath_summary())
    return {
        "experiments": SWEEP_EXPERIMENTS,
        "points": points,
        "elapsed_s": elapsed,
        "points_per_s": points / elapsed,
        "mode": mode,
        "fast_path": {"analytic": a1 - a0, "des": d1 - d0},
    }


def _sweep_point_count() -> int:
    """Simulation-point count of SWEEP_EXPERIMENTS (fixed by the harness)."""
    return 16 + 6 + 13 + 5  # fig5 b_f grid, fig6 l grid, fig7 l1 grid, fig8 n/b grid


#: Measured throughput this far *above* baseline flags the baseline as
#: stale -- the recorded numbers no longer describe this machine/build,
#: so the regression floor is meaninglessly low.  Non-fatal.
STALE_FACTOR = 1.25


def classify_measurement(measured: float, baseline: float, tolerance: float) -> str:
    """``ok`` / ``regression`` / ``stale-baseline`` for one DES bench."""
    if measured < baseline * (1.0 - tolerance):
        return "regression"
    if measured > baseline * STALE_FACTOR:
        return "stale-baseline"
    return "ok"


def check_baseline(
    baseline_path: Path, rounds: int, tolerance: float, ledger: Path | None = None
) -> int:
    """Assert DES throughput is within ``tolerance`` of the baseline.

    The benches run with no monitor attached, i.e. the configuration the
    zero-overhead claim is about; best-of-``rounds`` damps scheduler
    noise.  Returns 0 when every bench clears
    ``baseline * (1 - tolerance)``, 1 otherwise.  A bench landing more
    than ``STALE_FACTOR`` *above* its baseline gets a non-fatal
    stale-baseline warning (re-record with a plain run).  With
    ``ledger`` the per-bench outcomes are appended to the run ledger.
    """
    if not baseline_path.is_file():
        print(f"no baseline at {baseline_path}; run without --check-baseline first")
        return 2
    baseline = json.loads(baseline_path.read_text())["des_events_per_s"]
    outcomes: dict[str, dict] = {}
    for name, fn in DES_BENCHES.items():
        best = 0.0
        for _ in range(max(1, rounds)):
            best = max(best, fn())
        ref = baseline[name]
        floor = ref * (1.0 - tolerance)
        status = classify_measurement(best, ref, tolerance)
        outcomes[name] = {"measured": best, "baseline": ref, "status": status}
        tag = {"ok": "ok", "regression": "REGRESSION", "stale-baseline": "ok (stale?)"}[status]
        print(
            f"des/{name:10s} {best:>12,.0f} events/s  "
            f"(baseline {ref:,.0f}, floor {floor:,.0f}) {tag}"
        )
    failures = [n for n, o in outcomes.items() if o["status"] == "regression"]
    stale = [n for n, o in outcomes.items() if o["status"] == "stale-baseline"]
    if stale:
        print(
            f"warning: {stale} exceed baseline by > {STALE_FACTOR - 1:.0%}; the "
            f"recorded baseline looks stale -- re-record it (run without "
            f"--check-baseline)"
        )
    if ledger is not None:
        from repro.obs import RunLedger, bench_entry

        entry = RunLedger(ledger).append(bench_entry(outcomes, tolerance=tolerance))
        print(f"recorded seq {entry['seq']}: bench outcomes -> {ledger}")
    if failures:
        print(f"throughput regression (> {tolerance:.0%} below baseline): {failures}")
        return 1
    print(f"all DES benches within {tolerance:.0%} of baseline")
    return 0


#: Allowed fractional sweep-throughput shortfall for ``--check-sweep``.
#: Looser than the DES tolerance: a sweep point is milliseconds, so
#: process scheduling noise is proportionally larger.
SWEEP_TOLERANCE = 0.25


def _baseline_sweep_figure(report: dict) -> dict | None:
    """The serial sweep figure from a schema-1/2/3 report."""
    if "sweeps" in report:  # schema >= 2
        return report["sweeps"].get("serial")
    return report.get("sweep")  # schema 1


def check_sweep(baseline_path: Path, tolerance: float = SWEEP_TOLERANCE) -> int:
    """Assert serial sweep throughput is within ``tolerance`` of baseline.

    Re-times the fig5-fig8 grids serially (fast path at its default) and
    fails when points/s lands more than ``tolerance`` below the recorded
    serial figure.  Returns 0 on pass, 1 on regression, 2 when the
    baseline is missing or predates sweep recording.
    """
    if not baseline_path.is_file():
        print(f"no baseline at {baseline_path}; run without checks first")
        return 2
    ref_fig = _baseline_sweep_figure(json.loads(baseline_path.read_text()))
    if not ref_fig or "points_per_s" not in ref_fig:
        print(f"baseline {baseline_path} has no sweep figure; re-record it")
        return 2
    ref = ref_fig["points_per_s"]
    floor = ref * (1.0 - tolerance)
    sweep = bench_sweeps(jobs=None)
    measured = sweep["points_per_s"]
    status = classify_measurement(measured, ref, tolerance)
    tag = {"ok": "ok", "regression": "REGRESSION", "stale-baseline": "ok (stale?)"}[status]
    print(
        f"sweep/serial {measured:>10,.1f} points/s  "
        f"(baseline {ref:,.1f}, floor {floor:,.1f}) {tag} "
        f"[analytic={sweep['fast_path']['analytic']} des={sweep['fast_path']['des']}]"
    )
    if status == "stale-baseline":
        print(
            f"warning: sweep throughput exceeds baseline by > {STALE_FACTOR - 1:.0%}; "
            f"re-record the baseline (run without checks)"
        )
    if status == "regression":
        print(f"sweep throughput regression (> {tolerance:.0%} below baseline)")
        return 1
    print(f"sweep throughput within {tolerance:.0%} of baseline")
    return 0


# -----------------------------------------------------------------------
# Campaign throughput: replicate points/second through repro.campaign
# -----------------------------------------------------------------------

#: Replicates per cell for the campaign benchmark (LU + FW, one nominal
#: scenario each -> ``2 * CAMPAIGN_REPLICATES`` replicate points).
CAMPAIGN_REPLICATES = 5

#: Allowed fractional campaign-throughput shortfall before the
#: (non-fatal) warning fires.  Same rationale as SWEEP_TOLERANCE: a
#: replicate is tens of milliseconds, so scheduling noise is large.
CAMPAIGN_TOLERANCE = 0.25


def bench_campaign(replicates: int = CAMPAIGN_REPLICATES) -> dict:
    """Run a serial LU+FW campaign; returns timing + replicate throughput."""
    from repro.campaign import CampaignSpec, run_campaign

    spec = CampaignSpec(apps=("lu", "fw"), replicates=replicates, seed=0)
    t0 = time.perf_counter()
    manifest = run_campaign(spec, jobs=1, cache=False)
    elapsed = time.perf_counter() - t0
    if manifest["failures"]:
        raise SystemExit(
            f"campaign benchmark had {manifest['failures']} failed replicates"
        )
    return {
        "replicates": replicates,
        "points": manifest["points"],
        "elapsed_s": elapsed,
        "points_per_s": manifest["points"] / elapsed,
    }


def check_campaign(baseline_path: Path, tolerance: float = CAMPAIGN_TOLERANCE) -> int:
    """Warn (never fail) when campaign throughput drops > ``tolerance``.

    Warn-only because the campaign figure rides on the DES and sweep
    floors already gated above; this check exists to surface drift in
    the campaign harness's own overhead (perturbation sampling,
    histogram merging, aggregation) early, not to break the build on a
    noisy box.  Returns 0 always, except 2 when there is no baseline.
    """
    if not baseline_path.is_file():
        print(f"no baseline at {baseline_path}; run without checks first")
        return 2
    report = json.loads(baseline_path.read_text())
    ref_fig = report.get("campaign")
    if not ref_fig or "points_per_s" not in ref_fig:
        print(
            f"baseline {baseline_path} has no campaign figure (schema "
            f"{report.get('schema')}); re-record it to enable this check"
        )
        return 0
    ref = ref_fig["points_per_s"]
    floor = ref * (1.0 - tolerance)
    figure = bench_campaign(int(ref_fig.get("replicates") or CAMPAIGN_REPLICATES))
    measured = figure["points_per_s"]
    status = classify_measurement(measured, ref, tolerance)
    tag = {"ok": "ok", "regression": "WARN", "stale-baseline": "ok (stale?)"}[status]
    print(
        f"campaign/serial {measured:>8,.1f} points/s  "
        f"(baseline {ref:,.1f}, floor {floor:,.1f}) {tag}"
    )
    if status == "regression":
        print(
            f"warning: campaign throughput dropped > {tolerance:.0%} below "
            f"baseline (non-fatal; investigate or re-record)"
        )
    elif status == "stale-baseline":
        print(
            f"warning: campaign throughput exceeds baseline by > "
            f"{STALE_FACTOR - 1:.0%}; re-record the baseline"
        )
    return 0


# -----------------------------------------------------------------------
# Tuner search efficiency: guided vs exhaustive full-fidelity evals
# -----------------------------------------------------------------------

#: Allowed incumbent shortfall vs the exhaustive full-fidelity optimum.
TUNE_GAP = 0.02

#: Maximum fraction of the exhaustive DES evaluations the guided search
#: may spend (the "<= 25% of the sweep" headline claim).
TUNE_BUDGET_FRACTION = 0.25


def bench_tune() -> dict:
    """Guided-search efficiency on the fig5 b_f grid (cold cache, serial).

    Runs the successive-halving tuner over the paper's Figure 5 (b, f)
    grid for LU block-matrix-multiply on XD1, then the exhaustive
    full-fidelity sweep of the same space, and reports how close the
    incumbent landed to the exhaustive optimum and what fraction of the
    exhaustive DES evaluations the guided search spent to get there.
    """
    from repro.tune import (
        TuneSpec,
        named_space,
        objectives_for,
        point_task,
        run_tune,
        run_tune_task,
    )

    space = named_space("fig5-bf")
    t0 = time.perf_counter()
    manifest = run_tune(TuneSpec(space=space, seed=0), jobs=1, cache=False)
    elapsed = time.perf_counter() - t0
    exhaustive_best = max(
        objectives_for(space, pt, run_tune_task(point_task(space, pt, "des")))["gflops"]
        for pt in space.points()
    )
    incumbent = manifest["incumbent"]["objectives"]["gflops"]
    return {
        "space": "fig5-bf",
        "space_size": manifest["space"]["size"],
        "des_budget": manifest["budget"]["des"],
        "des_used": manifest["budget"]["des_used"],
        "exhaustive_des": manifest["exhaustive_des"],
        "fraction_of_exhaustive": manifest["savings"]["fraction_of_exhaustive"],
        "incumbent_gflops": incumbent,
        "exhaustive_best_gflops": exhaustive_best,
        "optimality_gap": (exhaustive_best - incumbent) / exhaustive_best,
        "elapsed_s": elapsed,
    }


def check_tune() -> int:
    """Assert the guided search meets its efficiency contract.

    Unlike the throughput checks this gate is deterministic (tuner and
    DES are both seeded), so it asserts the absolute claim rather than
    drift against a recorded figure: the fig5-bf incumbent must land
    within ``TUNE_GAP`` of the exhaustive optimum while spending at
    most ``TUNE_BUDGET_FRACTION`` of the exhaustive DES evaluations.
    Returns 0 on pass, 1 when either bound is broken.
    """
    figure = bench_tune()
    gap = figure["optimality_gap"]
    frac = figure["fraction_of_exhaustive"]
    ok = gap <= TUNE_GAP and frac <= TUNE_BUDGET_FRACTION
    print(
        f"tune/{figure['space']} {figure['des_used']}/{figure['exhaustive_des']} "
        f"DES evals ({frac:.1%} of exhaustive), incumbent "
        f"{figure['incumbent_gflops']:.2f} vs exhaustive "
        f"{figure['exhaustive_best_gflops']:.2f} GFLOPS "
        f"(gap {gap:.2%}) {'ok' if ok else 'FAIL'}"
    )
    if not ok:
        print(
            f"guided-search efficiency broken: need gap <= {TUNE_GAP:.0%} at "
            f"<= {TUNE_BUDGET_FRACTION:.0%} of exhaustive DES evals"
        )
        return 1
    print(
        f"guided search within {TUNE_GAP:.0%} of the exhaustive optimum at "
        f"{frac:.1%} of its cost"
    )
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--jobs",
        default=None,
        help="worker processes for the sweep benchmark (int or 'auto'; default serial)",
    )
    parser.add_argument(
        "--rounds", type=int, default=3, help="DES benchmark rounds (best-of); default 3"
    )
    parser.add_argument(
        "--quick", action="store_true", help="smaller DES workloads (CI smoke mode)"
    )
    parser.add_argument(
        "--output",
        type=Path,
        default=REPO_ROOT / "BENCH_perf.json",
        help="where to write the results JSON",
    )
    parser.add_argument(
        "--check-baseline",
        action="store_true",
        help="compare DES throughput against the recorded baseline instead "
        "of rewriting it; non-zero exit on a regression",
    )
    parser.add_argument(
        "--check-sweep",
        action="store_true",
        help="compare serial sweep throughput (points/s) against the "
        f"recorded baseline; non-zero exit when > {SWEEP_TOLERANCE:.0%} below",
    )
    parser.add_argument(
        "--check-campaign",
        action="store_true",
        help="re-time the campaign harness and warn (non-fatal) when "
        f"points/s lands > {CAMPAIGN_TOLERANCE:.0%} below the baseline",
    )
    parser.add_argument(
        "--check-tune",
        action="store_true",
        help="assert the guided search lands within "
        f"{TUNE_GAP:.0%} of the exhaustive optimum at <= "
        f"{TUNE_BUDGET_FRACTION:.0%} of the exhaustive DES evals",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.02,
        help="allowed fractional shortfall vs baseline for --check-baseline "
        "(default 0.02 = 2%%)",
    )
    parser.add_argument(
        "--ledger",
        type=Path,
        default=None,
        help="append the --check-baseline outcomes to this run ledger",
    )
    args = parser.parse_args(argv)

    if args.check_baseline or args.check_sweep or args.check_campaign or args.check_tune:
        rc = 0
        if args.check_baseline:
            rc = check_baseline(args.output, args.rounds, args.tolerance, ledger=args.ledger)
        if args.check_sweep:
            rc = max(rc, check_sweep(args.output))
        if args.check_campaign:
            rc = max(rc, check_campaign(args.output))
        if args.check_tune:
            rc = max(rc, check_tune())
        return rc

    scale = 10 if args.quick else 1
    des: dict[str, float] = {}
    for name, fn in DES_BENCHES.items():
        best = 0.0
        for _ in range(max(1, args.rounds)):
            kwargs = {"nproc": 100 // scale} if args.quick else {}
            best = max(best, fn(**kwargs))
        des[name] = best
        print(f"des/{name:10s} {best:>12,.0f} events/s")

    sweeps: dict[str, dict] = {"serial": bench_sweeps(jobs=None)}
    par_jobs = args.jobs if args.jobs is not None else "auto"
    parallel = bench_sweeps(par_jobs)
    if parallel["mode"] == "parallel":
        parallel["jobs"] = par_jobs
        sweeps["parallel"] = parallel
    for label, sw in sweeps.items():
        fp = sw["fast_path"]
        print(
            f"sweeps/{label} ({sw['mode']}) {sw['points']} points in "
            f"{sw['elapsed_s']:.2f}s = {sw['points_per_s']:.1f} points/s "
            f"[analytic={fp['analytic']} des={fp['des']}]"
        )

    campaign = bench_campaign(3 if args.quick else CAMPAIGN_REPLICATES)
    print(
        f"campaign/serial {campaign['points']} points "
        f"({campaign['replicates']} replicates/cell) in "
        f"{campaign['elapsed_s']:.2f}s = {campaign['points_per_s']:.1f} points/s"
    )

    tune = bench_tune()
    print(
        f"tune/{tune['space']} {tune['des_used']}/{tune['exhaustive_des']} DES evals "
        f"({tune['fraction_of_exhaustive']:.1%} of exhaustive), gap "
        f"{tune['optimality_gap']:.2%} in {tune['elapsed_s']:.2f}s"
    )

    report = {
        "schema": 4,
        "python": platform.python_version(),
        "machine": platform.machine(),
        "quick": args.quick,
        "des_events_per_s": des,
        "sweeps": sweeps,
        "campaign": campaign,
        "tune": tune,
    }
    args.output.write_text(json.dumps(report, indent=2) + "\n", encoding="utf-8")
    print(f"wrote {args.output}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
