"""Table 1: routines and latencies for the LU panel operations.

Paper values (b = 3000 on a 2.2 GHz Opteron with ACML): opLU (dgetrf)
4.9 s; opL/opU (dtrsm) 7.1 s each.  The processor model's calibrated
sustained rates must regenerate the same rows.
"""

from repro.experiments import table1_routines


def test_table1_routines(run_experiment):
    result = run_experiment(table1_routines)
    rows = result.data["rows"]
    assert len(rows) == 3
