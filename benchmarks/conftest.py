"""Shared benchmark plumbing.

Every benchmark wraps one experiment from :mod:`repro.experiments`,
times it once (the experiments are deterministic simulations -- there
is no run-to-run noise worth averaging), asserts its reproduction
checks, and prints the reproduced table/figure so that
``pytest benchmarks/ --benchmark-only -s`` emits the full EXPERIMENTS.md
source material.
"""

import pytest


@pytest.fixture
def run_experiment(benchmark):
    """Time an experiment once and enforce its reproduction checks."""

    def _run(fn):
        result = benchmark.pedantic(fn, rounds=1, iterations=1)
        print()
        print(result.text)
        failed = [name for name, ok in result.checks.items() if not ok]
        assert not failed, f"{result.id}: reproduction checks failed: {failed}"
        return result

    return _run
