"""Shared benchmark plumbing.

Every benchmark wraps one experiment from :mod:`repro.experiments`,
times it once (the experiments are deterministic simulations -- there
is no run-to-run noise worth averaging), asserts its reproduction
checks, and prints the reproduced table/figure so that
``pytest benchmarks/ --benchmark-only -s`` emits the full EXPERIMENTS.md
source material.
"""

import pytest

from repro.experiments import configured


@pytest.fixture
def run_experiment(benchmark):
    """Time an experiment once and enforce its reproduction checks.

    Honours ``REPRO_PARALLEL`` (worker count) and ``REPRO_CACHE`` (result
    cache directory) so the benchmark suite can exercise the parallel and
    cached sweep paths without code changes.
    """

    def _run(fn):
        def timed():
            with configured():
                return fn()

        result = benchmark.pedantic(timed, rounds=1, iterations=1)
        print()
        print(result.text)
        failed = [name for name, ok in result.checks.items() if not ok]
        assert not failed, f"{result.id}: reproduction checks failed: {failed}"
        return result

    return _run
