"""Regenerate EXPERIMENTS.md from the experiment harness.

Run:  python benchmarks/generate_experiments.py
"""

from __future__ import annotations

import io
import sys
from pathlib import Path

from repro.analysis import table
from repro.experiments import run_all

PAPER_ROWS = [
    # (experiment id, metric, paper value-as-text)
    ("table1", "opLU latency", "4.9 s"),
    ("table1", "opL/opU latency", "7.1 s"),
    ("fig5", "optimal b_f", "1280 (printed; Eq. 4 with the printed constants gives ~1085)"),
    ("fig6", "optimal l", "3, flat to 5"),
    ("fig7", "optimal l1", "2"),
    ("fig8", "LU GFLOPS trend", "rising with n/b toward 20"),
    ("fig9-lu", "hybrid LU", "20 GFLOPS; 1.3x / 2x; ~80% of sum; ~86% of prediction"),
    ("fig9-fw", "hybrid FW", "6.6 GFLOPS; 5.8x / 1.15x; >95% of sum; ~96% of prediction"),
]

HEADER = """# EXPERIMENTS -- paper vs. reproduction

Every table and figure of Zhuo & Prasanna (IPPS 2007), regenerated on the
simulated Cray XD1 (see DESIGN.md for the substitution argument).  This
file is produced by ``python benchmarks/generate_experiments.py``; the
same experiments run (with timing and check enforcement) under
``pytest benchmarks/ --benchmark-only``.

**Reading guide.** Absolute wall-clock numbers cannot be expected to match
a 2007 machine; the reproduction targets are the paper's *shape* claims --
who wins, by what factor, where optima fall, how measured compares to the
model's prediction.  Each experiment below lists its reproduction checks;
all must pass for the benchmark suite to be green.

## Headline summary

| Quantity | Paper | This reproduction |
|---|---|---|
| LU hybrid (n=30000, b=3000, p=6) | 20 GFLOPS | ~19.4 GFLOPS |
| LU speedup vs Processor-only | 1.3x | ~1.15x |
| LU speedup vs FPGA-only | 2x | ~1.83x |
| LU fraction of baseline sum | ~80% | ~71% |
| LU fraction of model prediction | ~86% | ~76% |
| FW hybrid (n=92160, b=256, p=6) | 6.6 GFLOPS | ~6.63 GFLOPS |
| FW speedup vs Processor-only | 5.8x | ~5.82x |
| FW speedup vs FPGA-only | 1.15x | ~1.15x |
| FW fraction of baseline sum | >95% | ~96% |
| FW fraction of model prediction | ~96% | ~97% |

**Where we deviate and why.**

* *LU b_f:* the paper reports ``b_p = 1720, b_f = 1280`` "according to
  Equation 4", but substituting its own published constants into Eq. 4
  yields ``b_f ~= 1085`` (and elsewhere the paper writes "b_f = 1280 and
  b_p = 2720", violating ``b_p + b_f = b``).  We solve Eq. 4 as printed
  (b_f = 1080 after rounding to a multiple of k).  Figure 5's flat basin
  makes both choices near-optimal; our sweep minimum confirms it.
* *LU efficiency band:* our simulator charges the owner node's MPI sends
  physically (p-1 distinct transfers over two 2 GB/s links) and enforces
  that a node cannot run its panel routines while still computing its
  cooperative opMM share -- both stricter than the Section 4.5 prediction.
  The hybrid therefore lands at ~76% of prediction where the paper
  measured 86%; all comparative shapes (ordering, U-curves, optima) hold.
* *FW:* reproduces essentially exactly; every phase-level term of Eq. 6
  is visible in the simulated schedule.

## Per-experiment record
"""


def main() -> int:
    results = run_all()
    out = io.StringIO()
    out.write(HEADER)
    for res in results:
        status = "all checks PASS" if res.ok else "CHECK FAILURES"
        out.write(f"\n### {res.id}: {res.title} ({status})\n\n")
        out.write("```text\n")
        out.write(res.text)
        out.write("\n```\n\n")
        out.write("Checks: " + ", ".join(
            f"{name}={'PASS' if ok else 'FAIL'}" for name, ok in res.checks.items()
        ) + "\n")
    path = Path(__file__).resolve().parent.parent / "EXPERIMENTS.md"
    path.write_text(out.getvalue())
    print(f"wrote {path}")
    bad = [r.id for r in results if not r.ok]
    if bad:
        print(f"WARNING: failing checks in {bad}")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
