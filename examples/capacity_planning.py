"""Capacity planning with the design model (the Section 4.5 use-case).

Before porting an application to a reconfigurable computing system you
want to know: which machine, how many nodes, and is the hybrid design
worth it over CPU-only?  The design model answers all three from the
Section 4.1 parameters alone -- no simulation required -- and this
example cross-checks two of the predictions against the simulator.

Run:  python examples/capacity_planning.py
"""

from repro import DesignModel, FloydWarshallDesign, FwDesign, LuDesign, MatrixMultiplyDesign
from repro.analysis import line_chart, sweep, table
from repro.machine import ALL_PRESETS, cray_xd1


def machine_survey() -> None:
    """Predicted hybrid GFLOPS for both applications on every preset."""
    rows = []
    for factory in ALL_PRESETS.values():
        spec = factory()
        mm = MatrixMultiplyDesign.for_device(spec.node.fpga.device)
        fwd = FloydWarshallDesign.for_device(spec.node.fpga.device)
        lu_pred = (
            f"{DesignModel(spec.parameters('dgemm', mm)).plan_lu(30000, 3000, mm.k).prediction.gflops:.1f}"
            if spec.p >= 2
            else "n/a"
        )
        fw_n = 256 * spec.p * 60  # keep 60 block-columns per node
        fw_plan = DesignModel(spec.parameters("fw", fwd)).plan_fw(fw_n, 256, fwd.k)
        rows.append([
            spec.name,
            spec.p,
            f"{mm.k} PEs @ {mm.freq_hz / 1e6:.0f} MHz",
            lu_pred,
            f"{fw_plan.prediction.gflops:.2f}",
            f"{fw_plan.partition.l1}:{fw_plan.partition.l2}",
        ])
    print(table(
        ["machine", "p", "MM design", "LU GFLOPS", "FW GFLOPS", "FW split"],
        rows,
        title="Predicted hybrid performance across machines (no simulation)",
    ))


def node_count_scaling() -> None:
    """How does the FW design scale with chassis size?"""

    def predicted(p: float) -> float:
        spec = cray_xd1(p=int(p))
        fwd = FloydWarshallDesign.for_device(spec.node.fpga.device)
        n = 256 * int(p) * 60
        model = DesignModel(spec.parameters("fw", fwd))
        return model.plan_fw(n, 256, fwd.k).prediction.gflops

    series = sweep("predicted FW GFLOPS", [2, 4, 6, 8, 12], predicted)
    print()
    print(line_chart(
        [series],
        "FW hybrid GFLOPS vs node count (fixed 60 block-columns per node)",
        x_label="p (nodes)",
        y_label="GFLOPS",
        height=10,
    ))


def prediction_vs_simulation() -> None:
    """Validate two predictions against the discrete-event simulator."""
    spec = cray_xd1()
    rows = []
    lu = LuDesign(spec, n=30000, b=3000)
    rows.append([
        "LU n=30000",
        f"{lu.plan.prediction.gflops:.2f}",
        f"{lu.simulate().gflops:.2f}",
    ])
    fw = FwDesign(spec, n=92160, b=256)
    rows.append([
        "FW n=92160",
        f"{fw.plan.prediction.gflops:.2f}",
        f"{fw.simulate().gflops:.2f}",
    ])
    print()
    print(table(
        ["application", "predicted GFLOPS", "simulated GFLOPS"],
        rows,
        title="Prediction vs simulation (paper: designs reach >85% of prediction)",
    ))


if __name__ == "__main__":
    machine_survey()
    node_count_scaling()
    prediction_vs_simulation()
