"""Design-space exploration: sweep the partition knobs and watch the
U-curves the paper's Figures 5-7 report.

The hybrid designs have two kinds of knobs:

* the *split* of partitionable work (LU's ``b_f``) -- Figure 5,
* the *count* of whole tasks per device (FW's ``l1``) -- Figure 7,
* the inter-node pacing (LU's ``l``) -- Figure 6,

and in each case the analytic solution (Eqs. 4-6) should land on (or
next to) the empirical sweep minimum.  This example runs all three
sweeps through the public API.

Run:  python examples/codesign_explorer.py
"""

from repro import (
    FwSimConfig,
    LuSimConfig,
    MatrixMultiplyDesign,
    cray_xd1,
    fw_partition,
    lu_stripe_partition,
    simulate_block_mm,
    simulate_fw,
    simulate_lu,
)
from repro.analysis import Series, line_chart
from repro.hw import FloydWarshallDesign


def sweep_lu_bf() -> None:
    spec = cray_xd1()
    params = spec.parameters("dgemm", MatrixMultiplyDesign.for_device())
    solved = lu_stripe_partition(3000, 8, params)
    series = Series("one block-MM latency (s)")
    for b_f in range(0, 3001, 250):
        b_f -= b_f % 8
        series.append(b_f, simulate_block_mm(spec, 3000, b_f, 8))
    print(line_chart([series], "LU: block-MM latency vs b_f (Figure 5 shape)",
                     x_label="b_f", y_label="s"))
    print(f"Eq. 4 says b_f = {solved.b_f} (exact {solved.b_f_exact:.0f}); "
          f"sweep minimum at b_f = {series.argmin():.0f}\n")


def sweep_lu_l() -> None:
    spec = cray_xd1()
    series = Series("0th-iteration latency (s)")
    for l in range(0, 7):
        cfg = LuSimConfig(n=30000, b=3000, k=8, b_f=1080, l=l, iterations=1)
        series.append(l, simulate_lu(spec, cfg).elapsed)
    print(line_chart([series], "LU: iteration latency vs l (Figure 6 shape)",
                     x_label="l", y_label="s"))
    print("Eq. 5 says l = 3; gains flatten right about there.\n")


def sweep_fw_l1() -> None:
    spec = cray_xd1()
    fwd = FloydWarshallDesign.for_device()
    params = spec.parameters("fw", fwd)
    solved = fw_partition(18432, 256, 8, params)
    series = Series("iteration latency (s)")
    for l1 in range(0, 13):
        cfg = FwSimConfig(n=18432, b=256, k=8, l1=l1, l2=12 - l1, iterations=1)
        series.append(l1, simulate_fw(spec, cfg).elapsed)
    print(line_chart([series], "FW: iteration latency vs l1 (Figure 7 shape)",
                     x_label="l1", y_label="s"))
    print(f"Eq. 6 says l1 = {solved.l1} (exact {solved.l1_exact:.2f}); "
          f"sweep minimum at l1 = {series.argmin():.0f}")
    print("Note the FPGA-only point (l1 = 0) beating every split with l1 >= 3 --")
    print("the effect the paper highlights for machines with lopsided CPU/FPGA power.")


if __name__ == "__main__":
    sweep_lu_bf()
    sweep_lu_l()
    sweep_fw_l1()
