"""End-to-end functional validation of the distributed schedules.

The timing simulations say *when* things happen; this example shows the
same schedules computing *correct numbers*: the distributed block LU
and blocked Floyd-Warshall run on small inputs with

* physically partitioned per-node storage (a node only touches its own
  blocks plus received messages),
* the hybrid CPU/FPGA split inside every task, with the FPGA share
  executed by the cycle-level PE-array models,
* the Section 4.4 coordination protocol enforced by a guard that
  raises on any write conflict, read-after-write hazard or ungranted
  cross-device read.

Outputs residuals / exact-match checks against scipy.

Run:  python examples/functional_validation.py
"""

import numpy as np

from repro import CoordinationGuard, distributed_block_lu, distributed_blocked_fw
from repro.core.coordination import HazardError
from repro.kernels import (
    lu_residual,
    max_abs_diff,
    random_dd_matrix,
    random_distance_matrix,
    scipy_shortest_paths,
)


def validate_lu() -> None:
    rng = np.random.default_rng(2007)
    a = random_dd_matrix(48, rng)
    guard = CoordinationGuard(enforce=True)
    result = distributed_block_lu(
        a, b=12, p=4, b_f=8, k=4, use_hw_model=True, guard=guard
    )
    lower, upper = result.factors
    print("Distributed hybrid LU, n=48, b=12, p=4, b_f=8 (FPGA rows on PE array):")
    print(f"  ||L U - A|| / ||A||     = {lu_residual(a, result.lu):.2e}")
    print(f"  task tallies            = {result.op_counts}")
    print(f"  inter-node messages     = {result.messages}")
    print(f"  coordination violations = {len(guard.violations)} (guard enforced)")
    assert lu_residual(a, result.lu) < 1e-12


def validate_fw() -> None:
    rng = np.random.default_rng(2007)
    d = random_distance_matrix(32, rng, density=0.35)
    guard = CoordinationGuard(enforce=True)
    result = distributed_blocked_fw(
        d, b=8, p=4, l1=0, use_hw_model=True, hw_k=4, guard=guard
    )
    err = max_abs_diff(result.dist, scipy_shortest_paths(d))
    print("\nDistributed hybrid Floyd-Warshall, n=32, b=8, p=4 (FPGA array model):")
    print(f"  max |ours - scipy|      = {err:.2e}")
    print(f"  task tallies            = {result.op_counts}")
    print(f"  device placement        = {result.device_ops}")
    print(f"  pivot-block broadcasts  = {result.messages}")
    assert err < 1e-12  # scipy may round intermediate sums differently


def failure_injection() -> None:
    """Show the coordination protocol is load-bearing: break it and the
    guard catches the resulting hazard immediately."""
    guard = CoordinationGuard(enforce=True)
    guard.begin_write("dram0/A[0,1]", "cpu0")
    print("\nFailure injection: FPGA reads a block the CPU is still writing...")
    try:
        guard.read("dram0/A[0,1]", "fpga0")
    except HazardError as exc:
        print(f"  guard raised as designed: {exc}")
    else:
        raise AssertionError("hazard was not detected")


if __name__ == "__main__":
    validate_lu()
    validate_fw()
    failure_injection()
    print("\nAll functional validations passed.")
