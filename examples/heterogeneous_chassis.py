"""Heterogeneous chassis: what one slow node costs, and how to fix it.

The paper assumes identical nodes.  Real systems age asymmetrically:
this example degrades one node's processor 4x, shows the whole FW design
slowing to the laggard's pace (every phase synchronises on the pivot
broadcast), then uses the model-level extension
(:mod:`repro.core.hetero`) to compute the column assignment that
restores balance -- Section 4.3's "execution time of each node is
approximately equal" rule, generalised.

Run:  python examples/heterogeneous_chassis.py
"""

import dataclasses

from repro.analysis import table
from repro.apps.fw import FwSimConfig, simulate_fw
from repro.core import (
    SystemParameters,
    assignment_makespan,
    imbalance,
    proportional_assignment,
)
from repro.machine import cray_xd1
from repro.machine.processor import ProcessorSpec


def degraded_node(spec, factor: float):
    old = spec.node.processor
    slow = ProcessorSpec(
        name=f"{old.name} (degraded {factor:g}x)",
        clock_hz=old.clock_hz / factor,
        sustained={k: v / factor for k, v in old.sustained.items()},
    )
    return dataclasses.replace(spec.node, processor=slow)


def main() -> None:
    spec = cray_xd1()
    cfg = FwSimConfig(n=18432, b=256, k=8, l1=2, l2=10, iterations=1)

    healthy = simulate_fw(spec, cfg)
    nodes = [spec.node] * 5 + [degraded_node(spec, 4.0)]
    degraded = simulate_fw(spec, cfg, node_specs=nodes)

    print(table(
        ["chassis", "iteration latency (s)", "slowdown"],
        [
            ["6 healthy nodes", f"{healthy.elapsed:.2f}", "1.00x"],
            ["5 healthy + 1 degraded (CPU /4)", f"{degraded.elapsed:.2f}",
             f"{degraded.elapsed / healthy.elapsed:.2f}x"],
        ],
        title="FW iteration under node degradation (equal work per node)",
    ))
    print("\nEvery phase synchronises on the pivot broadcast, so the slow")
    print("node's l1 CPU tasks pace the entire chassis.\n")

    # The model-level remedy: redistribute block columns by hybrid rate.
    rates = [1.0] * 5 + [0.25 + 0.75 * (10 / 12)]  # CPU share /4, FPGA intact
    naive = [12] * 6
    balanced = proportional_assignment(72, rates)
    print(table(
        ["assignment", "columns per node", "makespan (task units)", "imbalance"],
        [
            ["equal split", naive, f"{assignment_makespan(naive, rates):.1f}",
             f"{imbalance(naive, rates):.2f}"],
            ["hetero-balanced", balanced, f"{assignment_makespan(balanced, rates):.1f}",
             f"{imbalance(balanced, rates):.2f}"],
        ],
        title="Section 4.3 extended: proportional column assignment",
    ))
    print("\nThe balanced assignment hands the degraded node fewer block")
    print("columns, restoring near-equal per-node completion times.")


if __name__ == "__main__":
    main()
