"""Quickstart: plan and run the paper's two hybrid designs.

Builds the simulated 6-node Cray XD1, lets the design model make every
decision (Eq. 4 partition, Eq. 5/6 load balance, Section 4.5
prediction), runs the discrete-event schedules, and compares against
the Processor-only and FPGA-only baselines -- the content of the
paper's Figure 9.

Run:  python examples/quickstart.py
"""

from repro import FwDesign, LuDesign, cray_xd1
from repro.analysis import bar_chart, percent

def main() -> None:
    spec = cray_xd1()  # 6 blades: Opteron 2.2 GHz + XC2VP50 each

    # ----------------------------------------------------------- LU
    lu = LuDesign(spec, n=30000, b=3000)
    part, bal = lu.plan.partition, lu.plan.balance
    print("LU decomposition (n = 30000, b = 3000)")
    print(f"  Eq. 4 partition : b_p = {part.b_p} rows on CPU, b_f = {part.b_f} on FPGA")
    print(f"  Eq. 5 balance   : l = {bal.l} opMMs per panel routine")
    print(f"  predicted       : {lu.plan.prediction.gflops:.1f} GFLOPS")
    cmp = lu.compare()
    print(bar_chart(
        ["Hybrid", "Processor-only", "FPGA-only"],
        [cmp.hybrid.gflops, cmp.cpu_only.gflops, cmp.fpga_only.gflops],
        "  measured (GFLOPS):",
        unit=" GFLOPS",
    ))
    print(f"  speedups: {cmp.speedup_vs_cpu:.2f}x vs CPU-only, "
          f"{cmp.speedup_vs_fpga:.2f}x vs FPGA-only "
          f"({percent(cmp.fraction_of_sum)} of their sum)")
    print()

    # ----------------------------------------------------------- FW
    fw = FwDesign(spec, n=92160, b=256)
    split = fw.plan.partition
    print("Floyd-Warshall all-pairs shortest paths (n = 92160, b = 256)")
    print(f"  Eq. 6 split : l1 = {split.l1} tasks/phase on CPU, l2 = {split.l2} on FPGA")
    print(f"  predicted   : {fw.plan.prediction.gflops:.2f} GFLOPS")
    fcmp = fw.compare()
    print(bar_chart(
        ["Hybrid", "Processor-only", "FPGA-only"],
        [fcmp.hybrid.gflops, fcmp.cpu_only.gflops, fcmp.fpga_only.gflops],
        "  measured (GFLOPS):",
        unit=" GFLOPS",
    ))
    print(f"  speedups: {fcmp.speedup_vs_cpu:.2f}x vs CPU-only, "
          f"{fcmp.speedup_vs_fpga:.2f}x vs FPGA-only "
          f"({percent(fcmp.fraction_of_sum)} of their sum)")
    print(f"  {percent(fcmp.fraction_of_predicted)} of the model prediction "
          f"(the paper reports ~96%)")


if __name__ == "__main__":
    main()
