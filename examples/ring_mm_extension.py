"""Extension: applying the design model to a third application.

The paper's model targets "a class of applications" -- matrix
computations -- with LU and Floyd-Warshall as the worked examples.  This
example applies the same methodology to a distributed ring-allgather
``C = A x B`` (the workload of the authors' earlier ICPADS 2006 paper):

1. task identification: p identical ring steps per node, each one block
   gemm -- partitionable, no serial panel path;
2. system characterisation: the same XD1 parameters;
3. partitioning: Equation (2) splits each step's rows m_f : m_p;
4. overlap: B-panel staging and ring traffic ride the FPGA's compute.

Because nothing serialises the nodes (unlike LU's panel chain), the
hybrid should approach the *sum* of the two baselines -- the model's
best case.  The functional executor then proves the exact same schedule
computes correct products.

Run:  python examples/ring_mm_extension.py
"""

import numpy as np

from repro.analysis import bar_chart, percent, table
from repro.apps.mm import MmDesign, distributed_ring_mm
from repro.core import CoordinationGuard
from repro.machine import cray_xd1


def timing_study() -> None:
    design = MmDesign(cray_xd1(), n=30000)
    plan = design.plan
    print(table(
        ["decision", "value"],
        [
            ["panel rows per node (r)", plan.r],
            ["m_f (FPGA rows per step)", plan.m_f],
            ["m_f exact (Eq. 2)", f"{plan.m_f_exact:.1f}"],
            ["T_p / step", f"{plan.t_p:.1f} s"],
            ["T_f / step", f"{plan.t_f:.1f} s"],
            ["T_mem / step", f"{plan.t_mem:.2f} s"],
            ["T_net / step", f"{plan.t_net:.2f} s"],
            ["SRAM working set", f"{plan.sram_words * 8 / 2**20:.1f} MB"],
        ],
        title="Ring MM plan (n = 30000, p = 6, Equation 2)",
    ))
    cmp = design.compare()
    print()
    print(bar_chart(
        ["Hybrid", "Processor-only", "FPGA-only"],
        [cmp.hybrid.gflops, cmp.cpu_only.gflops, cmp.fpga_only.gflops],
        "Measured GFLOPS:",
        unit=" GFLOPS",
    ))
    print(f"hybrid = {percent(cmp.fraction_of_sum)} of the baseline sum "
          "(LU managed ~70%, FW ~96%; MM has no serial path to lose to)")


def functional_check() -> None:
    rng = np.random.default_rng(42)
    a = rng.standard_normal((48, 48))
    b = rng.standard_normal((48, 48))
    guard = CoordinationGuard(enforce=True)
    res = distributed_ring_mm(a, b, p=4, m_f=8, k=4, use_hw_model=True, guard=guard)
    err = np.abs(res.product - a @ b).max()
    print(f"\nFunctional ring MM (n=48, p=4, PE-array FPGA shares):")
    print(f"  max |C - A@B| = {err:.2e}")
    print(f"  ring messages = {res.messages}")
    print(f"  guard clean   = {guard.clean}")
    assert err < 1e-11


if __name__ == "__main__":
    timing_study()
    functional_check()
