"""Anatomy of a hybrid run: Gantt chart + bottleneck analysis.

Runs one iteration of each application with tracing enabled and shows
what the design model's decisions look like *as a schedule*: the
per-lane Gantt (CPU, FPGA, DRAM staging, MPI) and the bottleneck
report that attributes time to compute / communication / staging.

This is also the tool behind EXPERIMENTS.md's explanation of why the
LU hybrid runs below the Section 4.5 prediction while FW sits at ~96%:
LU's worker lanes show idle gaps around the owner's panel routines;
FW's FPGA lanes are nearly solid.

Run:  python examples/trace_anatomy.py
"""

from repro.analysis import analyse_trace
from repro.apps.fw import FwSimConfig, simulate_fw
from repro.apps.lu import LuSimConfig, simulate_lu
from repro.machine import cray_xd1


def lu_anatomy() -> None:
    spec = cray_xd1()
    cfg = LuSimConfig(n=12000, b=3000, k=8, b_f=1080, l=3, iterations=1)
    res = simulate_lu(spec, cfg, trace=True)
    print("LU decomposition, 0th iteration (n = 12000, b = 3000, l = 3)")
    lanes = [f"cpu{i}" for i in range(6)] + [f"fpga{i}" for i in range(6)]
    print(res.trace.gantt(width=68, lanes=lanes))
    report = analyse_trace(res.trace, makespan=res.elapsed)
    print()
    print(report.render())
    print(f"\nNote the owner lane (cpu0) solid with panel routines while the\n"
          f"worker FPGAs ({report.mean_utilisation('fpga'):.0%} utilised) wait for "
          f"stripes -- the gap the paper's\nEq. 5 pacing narrows but cannot close.")


def fw_anatomy() -> None:
    spec = cray_xd1()
    cfg = FwSimConfig(n=6144, b=256, k=8, l1=1, l2=3, iterations=1)
    res = simulate_fw(spec, cfg, trace=True)
    print("\n" + "=" * 72)
    print("Floyd-Warshall, one iteration (n = 6144, b = 256, l1:l2 = 1:3)")
    lanes = [f"cpu{i}" for i in range(6)] + [f"fpga{i}" for i in range(6)]
    print(res.trace.gantt(width=68, lanes=lanes))
    report = analyse_trace(res.trace, makespan=res.elapsed)
    print()
    print(report.render())


if __name__ == "__main__":
    lu_anatomy()
    fw_anatomy()
