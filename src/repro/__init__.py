"""repro: Hardware/Software Co-Design for Matrix Computations on
Reconfigurable Computing Systems -- a full reproduction.

Reimplements Zhuo & Prasanna (IPPS 2007) as a Python library: the
hybrid-design model (Section 4), the Cray XD1-class machine as a
discrete-event simulation substrate, cycle-level models of the two FPGA
designs, and the distributed LU and Floyd-Warshall applications with
their Processor-only / FPGA-only baselines.

Quickstart::

    from repro import LuDesign, FwDesign, cray_xd1

    lu = LuDesign(cray_xd1(), n=30000, b=3000)
    print(lu.plan.partition)            # Eq. 4: (b_p, b_f)
    print(lu.simulate().gflops)         # ~20 GFLOPS, the paper's headline

    fw = FwDesign(cray_xd1(), n=92160, b=256)
    print(fw.compare().hybrid.gflops)   # ~6.6 GFLOPS

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-vs-measured record of every table and figure.
"""

from .apps.fw import FwComparison, FwDesign, FwSimConfig, distributed_blocked_fw, simulate_fw
from .apps.lu import (
    LuComparison,
    LuDesign,
    LuSimConfig,
    distributed_block_lu,
    simulate_block_mm,
    simulate_lu,
)
from .core import (
    CoordinationGuard,
    DesignModel,
    FwPartition,
    FwPlan,
    LuPlan,
    LuStripePartition,
    SystemParameters,
    fw_partition,
    lu_load_balance,
    lu_stripe_partition,
    predict_fw,
    predict_lu,
)
from .hw import FloydWarshallDesign, MatrixMultiplyDesign
from .machine import (
    MachineSpec,
    ReconfigurableSystem,
    cray_xd1,
    cray_xt3_drc,
    sgi_rasc,
    src_map_station,
)

__version__ = "1.0.0"

__all__ = [
    "CoordinationGuard",
    "DesignModel",
    "FloydWarshallDesign",
    "FwComparison",
    "FwDesign",
    "FwPartition",
    "FwPlan",
    "FwSimConfig",
    "LuComparison",
    "LuDesign",
    "LuPlan",
    "LuSimConfig",
    "LuStripePartition",
    "MachineSpec",
    "MatrixMultiplyDesign",
    "ReconfigurableSystem",
    "SystemParameters",
    "__version__",
    "cray_xd1",
    "cray_xt3_drc",
    "distributed_block_lu",
    "distributed_blocked_fw",
    "fw_partition",
    "lu_load_balance",
    "lu_stripe_partition",
    "predict_fw",
    "predict_lu",
    "sgi_rasc",
    "simulate_block_mm",
    "simulate_fw",
    "simulate_lu",
    "src_map_station",
]
