"""Analysis utilities: sweep series, ASCII figures, report tables."""

from .bottleneck import BottleneckReport, LaneBreakdown, analyse_trace
from .export import (
    rows_to_csv,
    series_from_csv,
    series_from_json,
    series_to_csv,
    series_to_json,
)
from .figures import bar_chart, box_plot, line_chart, pareto_plot
from .report import comparison_row, percent, table
from .scaling import (
    ScalingPoint,
    fw_weak_scaling,
    lu_strong_scaling,
    mm_weak_scaling,
)
from .series import Series, sweep

__all__ = [
    "BottleneckReport",
    "LaneBreakdown",
    "ScalingPoint",
    "Series",
    "analyse_trace",
    "bar_chart",
    "box_plot",
    "comparison_row",
    "line_chart",
    "pareto_plot",
    "percent",
    "rows_to_csv",
    "series_from_csv",
    "series_from_json",
    "series_to_csv",
    "series_to_json",
    "sweep",
    "table",
    "fw_weak_scaling",
    "lu_strong_scaling",
    "mm_weak_scaling",
]
