"""Trace-driven bottleneck analysis.

Explains *where the time goes* in a simulated run: per-lane busy/idle
breakdown, activity-class decomposition of the CPU lanes (compute vs
MPI vs staging), and the binding resource.  This is the tool behind the
EXPERIMENTS.md discussion of why the LU hybrid lands below the
Section 4.5 prediction (panel serialisation and end-of-iteration
backlogs show up as CPU idle on the worker lanes) while FW sits at ~96%.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..obs.critical_path import classify_label as _classify
from ..sim import Trace
from .report import percent, table

__all__ = ["LaneBreakdown", "BottleneckReport", "analyse_trace"]


@dataclass
class LaneBreakdown:
    """Time decomposition of one trace lane over the makespan."""

    lane: str
    busy: float
    idle: float
    by_class: dict[str, float] = field(default_factory=dict)

    @property
    def utilisation(self) -> float:
        total = self.busy + self.idle
        return self.busy / total if total > 0 else 0.0


@dataclass
class BottleneckReport:
    """Whole-run analysis."""

    makespan: float
    lanes: list[LaneBreakdown]
    binding_lane: str  # the busiest lane -- the resource to optimise next

    def lane(self, name: str) -> LaneBreakdown:
        for lb in self.lanes:
            if lb.lane == name:
                return lb
        raise KeyError(f"no lane {name!r} in report; have {[l.lane for l in self.lanes]}")

    def mean_utilisation(self, prefix: str) -> float:
        """Average utilisation over lanes whose name starts with prefix."""
        matching = [lb for lb in self.lanes if lb.lane.startswith(prefix)]
        if not matching:
            return 0.0
        return sum(lb.utilisation for lb in matching) / len(matching)

    def render(self) -> str:
        """Human-readable table of the breakdown."""
        rows = []
        for lb in self.lanes:
            classes = ", ".join(
                f"{cls} {percent(t / self.makespan)}"
                for cls, t in sorted(lb.by_class.items(), key=lambda kv: -kv[1])
                if t > 0
            )
            rows.append([lb.lane, f"{lb.busy:.2f}", percent(lb.utilisation), classes])
        out = table(
            ["lane", "busy (s)", "utilisation", "activity breakdown"],
            rows,
            title=f"Bottleneck analysis (makespan {self.makespan:.2f} s)",
        )
        return out + f"\nbinding resource: {self.binding_lane}"


def analyse_trace(trace: Optional[Trace], makespan: Optional[float] = None) -> BottleneckReport:
    """Decompose a run trace into per-lane busy/idle and activity classes.

    Overlapping intervals within a lane (shared lanes like ``dram{i}``)
    are merged for the busy total; class attribution uses raw durations
    (so classes can over-count on shared lanes, which is fine for
    ranking).
    """
    if trace is None or len(trace) == 0:
        raise ValueError("trace is empty; run the simulation with trace=True")
    span = trace.makespan() if makespan is None else makespan
    lanes = []
    for lane_name in trace.lanes():
        busy = trace.busy_time(lane_name)
        by_class: dict[str, float] = {}
        for iv in trace.by_category(lane_name):
            if lane_name.startswith("mpi"):
                cls = "communication"
            elif lane_name.startswith("cpu"):
                cls = _classify(iv.label)
            else:
                cls = lane_name.rstrip("0123456789->")
            by_class[cls] = by_class.get(cls, 0.0) + iv.duration
        lanes.append(
            LaneBreakdown(lane=lane_name, busy=busy, idle=max(span - busy, 0.0), by_class=by_class)
        )
    binding = max(lanes, key=lambda lb: lb.busy).lane
    return BottleneckReport(makespan=span, lanes=lanes, binding_lane=binding)
