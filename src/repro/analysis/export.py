"""Export sweep series and reports to CSV / JSON.

Utility layer for downstream users who want to replot the reproduced
figures with their own tooling: every benchmark's underlying data can
round-trip through these functions (tested), without pulling in any
plotting dependency.
"""

from __future__ import annotations

import csv
import io
import json
from typing import Iterable, Sequence

from .series import Series

__all__ = ["series_to_csv", "series_from_csv", "series_to_json", "series_from_json", "rows_to_csv"]


def series_to_csv(series: Sequence[Series]) -> str:
    """One or more aligned series as CSV: ``x, <label1>, <label2>, ...``.

    All series must share the same x values (the sweep convention).
    """
    if not series:
        raise ValueError("no series to export")
    xs = series[0].xs
    for s in series[1:]:
        if s.xs != xs:
            raise ValueError(f"series {s.label!r} has different x values")
    buf = io.StringIO()
    writer = csv.writer(buf)
    writer.writerow(["x"] + [s.label for s in series])
    for i, x in enumerate(xs):
        writer.writerow([repr(x)] + [repr(s.ys[i]) for s in series])
    return buf.getvalue()


def series_from_csv(text: str) -> list[Series]:
    """Inverse of :func:`series_to_csv`."""
    reader = csv.reader(io.StringIO(text))
    try:
        header = next(reader)
    except StopIteration:
        raise ValueError("empty CSV") from None
    if len(header) < 2 or header[0] != "x":
        raise ValueError(f"not a series CSV (header {header!r})")
    out = [Series(label) for label in header[1:]]
    for row in reader:
        if not row:
            continue
        x = float(row[0])
        for s, cell in zip(out, row[1:]):
            s.append(x, float(cell))
    return out


def series_to_json(series: Sequence[Series]) -> str:
    """Series as a JSON document (labels preserved individually)."""
    return json.dumps(
        [{"label": s.label, "x": s.xs, "y": s.ys} for s in series], indent=2
    )


def series_from_json(text: str) -> list[Series]:
    """Inverse of :func:`series_to_json`."""
    data = json.loads(text)
    out = []
    for entry in data:
        s = Series(entry["label"])
        for x, y in zip(entry["x"], entry["y"]):
            s.append(x, y)
        out.append(s)
    return out


def rows_to_csv(headers: Sequence[str], rows: Iterable[Sequence]) -> str:
    """A plain table (e.g. an experiment's ``data['rows']``) as CSV."""
    buf = io.StringIO()
    writer = csv.writer(buf)
    writer.writerow(list(headers))
    for row in rows:
        if len(row) != len(headers):
            raise ValueError(f"row {row!r} does not match {len(headers)} headers")
        writer.writerow(list(row))
    return buf.getvalue()
