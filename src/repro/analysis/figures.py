"""Plain-text figure rendering for benchmark output.

The benchmark harness prints every reproduced figure as an ASCII chart
plus the underlying rows, so `pytest benchmarks/` output is the
EXPERIMENTS.md source material without any plotting dependency.
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence

from .series import Series

__all__ = ["line_chart", "bar_chart", "box_plot", "pareto_plot"]


def _fmt(value: float) -> str:
    if value == 0:
        return "0"
    if abs(value) >= 1000 or abs(value) < 0.01:
        return f"{value:.3g}"
    return f"{value:.3f}".rstrip("0").rstrip(".")


def line_chart(
    series: Sequence[Series], title: str, height: int = 12, width: int = 60,
    y_label: str = "", x_label: str = ""
) -> str:
    """Render one or more curves as an ASCII scatter/line chart."""
    all_x = [x for s in series for x in s.xs]
    all_y = [y for s in series for y in s.ys]
    if not all_x:
        return f"{title}\n(no data)"
    x_lo, x_hi = min(all_x), max(all_x)
    y_lo, y_hi = min(all_y), max(all_y)
    if x_hi == x_lo:
        x_hi = x_lo + 1.0
    if y_hi == y_lo:
        y_hi = y_lo + 1.0
    pad = 0.05 * (y_hi - y_lo)
    y_lo -= pad
    y_hi += pad
    grid = [[" "] * width for _ in range(height)]
    markers = "ox+*#@"
    for si, s in enumerate(series):
        mark = markers[si % len(markers)]
        for x, y in s:
            col = int((x - x_lo) / (x_hi - x_lo) * (width - 1))
            row = int((y - y_lo) / (y_hi - y_lo) * (height - 1))
            grid[height - 1 - row][col] = mark
    lines = [title]
    if y_label:
        lines.append(f"  [{y_label}]")
    label_w = max(len(_fmt(y_hi)), len(_fmt(y_lo)))
    for r, row in enumerate(grid):
        if r == 0:
            tick = _fmt(y_hi)
        elif r == height - 1:
            tick = _fmt(y_lo)
        else:
            tick = ""
        lines.append(f"{tick:>{label_w}} |{''.join(row)}|")
    lines.append(f"{'':>{label_w}}  {_fmt(x_lo)}{'':{max(1, width - len(_fmt(x_lo)) - len(_fmt(x_hi)))}}{_fmt(x_hi)}")
    if x_label:
        lines.append(f"{'':>{label_w}}  [{x_label}]")
    if len(series) > 1 or series[0].label:
        legend = "   ".join(f"{markers[i % len(markers)]} = {s.label}" for i, s in enumerate(series))
        lines.append(f"{'':>{label_w}}  {legend}")
    return "\n".join(lines)


def bar_chart(
    labels: Sequence[str], values: Sequence[float], title: str, width: int = 46,
    unit: str = ""
) -> str:
    """Render labelled horizontal bars (the Figure 9 comparison style)."""
    if len(labels) != len(values):
        raise ValueError("labels and values must have equal length")
    if not labels:
        return f"{title}\n(no data)"
    vmax = max(values) if max(values) > 0 else 1.0
    label_w = max(len(str(lab)) for lab in labels)
    lines = [title]
    for lab, val in zip(labels, values):
        bar = "#" * max(1, int(val / vmax * width)) if val > 0 else ""
        lines.append(f"{lab:>{label_w}} |{bar:<{width}} {_fmt(val)}{unit}")
    return "\n".join(lines)


def pareto_plot(
    points: Sequence[tuple[float, float]],
    front: Sequence[tuple[float, float]],
    title: str,
    height: int = 12,
    width: int = 56,
    x_label: str = "",
    y_label: str = "",
) -> str:
    """Render a design-space scatter with its Pareto front highlighted.

    ``points`` are (x, y) pairs for every evaluated design; ``front``
    are the non-dominated ones (drawn last, as ``*``, over the ``.``
    field).  The tuner's front figure: x = FPGA slice utilisation,
    y = GFLOPS.
    """
    if not points and not front:
        return f"{title}\n(no data)"
    all_pts = list(points) + list(front)
    xs = [p[0] for p in all_pts]
    ys = [p[1] for p in all_pts]
    x_lo, x_hi = min(xs), max(xs)
    y_lo, y_hi = min(ys), max(ys)
    if x_hi == x_lo:
        x_hi = x_lo + 1.0
    if y_hi == y_lo:
        y_hi = y_lo + 1.0
    grid = [[" "] * width for _ in range(height)]

    def plot(pts: Iterable[tuple[float, float]], mark: str) -> None:
        for x, y in pts:
            col = int((x - x_lo) / (x_hi - x_lo) * (width - 1))
            row = int((y - y_lo) / (y_hi - y_lo) * (height - 1))
            grid[height - 1 - row][col] = mark

    plot(points, ".")
    plot(front, "*")
    lines = [title]
    if y_label:
        lines.append(f"  [{y_label}]")
    label_w = max(len(_fmt(y_hi)), len(_fmt(y_lo)))
    for r, row in enumerate(grid):
        tick = _fmt(y_hi) if r == 0 else (_fmt(y_lo) if r == height - 1 else "")
        lines.append(f"{tick:>{label_w}} |{''.join(row)}|")
    lines.append(
        f"{'':>{label_w}}  {_fmt(x_lo)}"
        f"{'':{max(1, width - len(_fmt(x_lo)) - len(_fmt(x_hi)))}}{_fmt(x_hi)}"
    )
    if x_label:
        lines.append(f"{'':>{label_w}}  [{x_label}]")
    lines.append(f"{'':>{label_w}}  * = Pareto-optimal   . = dominated")
    return "\n".join(lines)


def box_plot(
    labels: Sequence[str],
    stats: Sequence[dict],
    title: str,
    width: int = 46,
    unit: str = "",
) -> str:
    """Render five-number summaries as aligned ASCII box-and-whisker rows.

    ``stats[i]`` summarises ``labels[i]`` with ``min`` / ``q25`` /
    ``median`` / ``q75`` / ``max`` keys (the campaign manifest's
    distribution block).  All rows share one scale, so per-cell spreads
    are visually comparable -- the campaign distribution figure.
    """
    if len(labels) != len(stats):
        raise ValueError("labels and stats must have equal length")
    rows = [
        (str(lab), s) for lab, s in zip(labels, stats)
        if s and s.get("median") is not None
    ]
    if not rows:
        return f"{title}\n(no data)"
    lo = min(float(s["min"]) for _, s in rows)
    hi = max(float(s["max"]) for _, s in rows)
    span = hi - lo if hi > lo else 1.0
    label_w = max(len(lab) for lab, _ in rows)

    def col(v: float) -> int:
        return min(width - 1, max(0, int((float(v) - lo) / span * (width - 1))))

    lines = [title]
    for lab, s in rows:
        cells = [" "] * width
        w_lo, w_hi = col(s["min"]), col(s["max"])
        b_lo, b_hi = col(s["q25"]), col(s["q75"])
        for x in range(w_lo, w_hi + 1):
            cells[x] = "-"
        for x in range(b_lo, b_hi + 1):
            cells[x] = "="
        cells[b_lo] = "["
        cells[b_hi] = "]"
        cells[col(s["median"])] = "M"
        summary = (
            f"{_fmt(float(s['median']))}{unit} "
            f"[{_fmt(float(s['q25']))}..{_fmt(float(s['q75']))}]"
        )
        lines.append(f"{lab:>{label_w}} |{''.join(cells)}| {summary}")
    lines.append(
        f"{'':>{label_w}}  {_fmt(lo)}{'':{max(1, width - len(_fmt(lo)) - len(_fmt(hi)))}}{_fmt(hi)}{unit}"
    )
    return "\n".join(lines)
