"""Tabular reporting helpers for benchmarks and EXPERIMENTS.md."""

from __future__ import annotations

from typing import Any, Sequence

__all__ = ["table", "comparison_row", "percent"]


def percent(fraction: float) -> str:
    """0.962 -> '96.2%'."""
    return f"{100.0 * fraction:.1f}%"


def table(headers: Sequence[str], rows: Sequence[Sequence[Any]], title: str = "") -> str:
    """Render an aligned monospace table."""
    cols = len(headers)
    for row in rows:
        if len(row) != cols:
            raise ValueError(f"row {row!r} does not match {cols} headers")
    cells = [[str(h) for h in headers]] + [[_cell(v) for v in row] for row in rows]
    widths = [max(len(r[c]) for r in cells) for c in range(cols)]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(cells[0], widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in cells[1:]:
        lines.append("  ".join(v.ljust(w) for v, w in zip(row, widths)))
    return "\n".join(lines)


def _cell(value: Any) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 10000 or abs(value) < 0.001:
            return f"{value:.4g}"
        return f"{value:.3f}".rstrip("0").rstrip(".")
    return str(value)


def comparison_row(
    name: str, paper_value: float, measured: float, note: str = ""
) -> list[Any]:
    """One EXPERIMENTS.md row: metric, paper, ours, ratio, note."""
    ratio = measured / paper_value if paper_value else float("nan")
    return [name, paper_value, measured, f"{ratio:.2f}x", note]
