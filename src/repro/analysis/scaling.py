"""Scaling studies: how the hybrid designs use more nodes.

The paper evaluates one chassis (p = 6).  These helpers run the three
applications across node counts, in the two standard regimes:

* **weak scaling** -- per-node work held fixed (FW: block columns per
  node; MM: panel height), efficiency = GFLOPS(p) / (p * GFLOPS(1-ish));
* **strong scaling** -- total problem held fixed (LU at n = 30000),
  speedup relative to the smallest p.

Used by the scaling extension benchmark and the capacity-planning
example; the model's predictions can be laid over the simulated curves.
"""

from __future__ import annotations

from dataclasses import dataclass

from .series import Series

# The app facades are imported lazily inside each function: analysis is a
# lower layer than apps in the package graph, and eager imports here would
# create a cycle through core.reporting -> analysis -> apps -> core.

__all__ = ["ScalingPoint", "fw_weak_scaling", "mm_weak_scaling", "lu_strong_scaling"]


@dataclass(frozen=True)
class ScalingPoint:
    """One (p, measured GFLOPS, predicted GFLOPS) sample."""

    p: int
    gflops: float
    predicted: float

    @property
    def efficiency_of_prediction(self) -> float:
        return self.gflops / self.predicted if self.predicted else 0.0


def fw_weak_scaling(ps=(2, 4, 6, 8, 12), cols_per_node: int = 12) -> list[ScalingPoint]:
    """FW with ``cols_per_node`` block columns per node (b = 256)."""
    from ..apps.fw import FwDesign
    from ..machine import cray_xd1

    out = []
    for p in ps:
        spec = cray_xd1(p=p)
        n = 256 * p * cols_per_node
        design = FwDesign(spec, n=n, b=256)
        out.append(
            ScalingPoint(
                p=p,
                gflops=design.simulate().gflops,
                predicted=design.plan.prediction.gflops,
            )
        )
    return out


def mm_weak_scaling(ps=(2, 4, 6, 8), rows_per_node: int = 2000) -> list[ScalingPoint]:
    """Ring MM with fixed panel height (n = p * rows_per_node)."""
    from ..apps.mm import MmDesign
    from ..machine import cray_xd1

    out = []
    for p in ps:
        spec = cray_xd1(p=p)
        design = MmDesign(spec, n=p * rows_per_node)
        out.append(
            ScalingPoint(
                p=p, gflops=design.simulate().gflops, predicted=design.predicted_gflops
            )
        )
    return out


def lu_strong_scaling(ps=(2, 3, 6), n: int = 18000, b: int = 3000) -> list[ScalingPoint]:
    """LU at fixed n across chassis sizes (b must divide n; p-1 | b)."""
    from ..apps.lu import LuDesign
    from ..machine import cray_xd1

    out = []
    for p in ps:
        if b % (p - 1):
            raise ValueError(f"b={b} must be divisible by p-1={p - 1}")
        spec = cray_xd1(p=p)
        design = LuDesign(spec, n=n, b=b)
        out.append(
            ScalingPoint(
                p=p,
                gflops=design.simulate().gflops,
                predicted=design.plan.prediction.gflops,
            )
        )
    return out


def to_series(points: list[ScalingPoint], label: str) -> tuple[Series, Series]:
    """(measured, predicted) curves over p."""
    measured = Series(f"{label} (simulated)")
    predicted = Series(f"{label} (predicted)")
    for pt in points:
        measured.append(pt.p, pt.gflops)
        predicted.append(pt.p, pt.predicted)
    return measured, predicted
