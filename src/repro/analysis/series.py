"""Sweep series: the x/y data behind every figure reproduction.

A :class:`Series` is an ordered set of (x, y) points with a label --
what a figure plots.  :func:`sweep` builds one by evaluating a function
over parameter values, which is how the benchmarks regenerate the
paper's figures.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable, Sequence

__all__ = ["Series", "sweep"]


@dataclass
class Series:
    """One labelled curve."""

    label: str
    xs: list[float] = field(default_factory=list)
    ys: list[float] = field(default_factory=list)

    def append(self, x: float, y: float) -> None:
        self.xs.append(float(x))
        self.ys.append(float(y))

    def __len__(self) -> int:
        return len(self.xs)

    def __iter__(self):
        return iter(zip(self.xs, self.ys))

    @property
    def y_min(self) -> float:
        return min(self.ys)

    @property
    def y_max(self) -> float:
        return max(self.ys)

    def argmin(self) -> float:
        """The x at which y is minimal."""
        if not self.xs:
            raise ValueError("empty series")
        return self.xs[self.ys.index(min(self.ys))]

    def argmax(self) -> float:
        """The x at which y is maximal."""
        if not self.xs:
            raise ValueError("empty series")
        return self.xs[self.ys.index(max(self.ys))]

    def is_monotone_increasing(self, tol: float = 0.0) -> bool:
        return all(b >= a - tol for a, b in zip(self.ys, self.ys[1:]))

    def is_u_shaped(self) -> bool:
        """Decreasing to an *interior* minimum, non-decreasing after --
        Figure 5's and Figure 7's qualitative shape.  Monotone series are
        not U-shaped (their minimum sits on the boundary)."""
        if len(self.ys) < 3:
            return False
        i = self.ys.index(min(self.ys))
        if i == 0 or i == len(self.ys) - 1:
            return False
        left = all(b <= a for a, b in zip(self.ys[: i + 1], self.ys[1 : i + 1]))
        right = all(b >= a for a, b in zip(self.ys[i:], self.ys[i + 1 :]))
        return left and right


def sweep(
    label: str,
    values: Sequence[float],
    fn: Callable[[float], float],
    executor=None,
) -> Series:
    """Evaluate ``fn`` over ``values``; returns the resulting curve.

    ``executor`` (a :class:`repro.parallel.SweepExecutor`) fans the
    evaluation out across worker processes when it pays; results come
    back in ``values`` order either way, so the curve is identical
    regardless of worker count.
    """
    series = Series(label)
    ys = executor.map(fn, values) if executor is not None else [fn(v) for v in values]
    for v, y in zip(values, ys):
        series.append(v, y)
    return series
