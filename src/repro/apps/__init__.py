"""The paper's two example applications (Section 5) plus the extension
application (ring matrix multiplication, exercising Equation 2)."""

from . import fw, lu, mm

__all__ = ["fw", "lu", "mm"]
