"""Hybrid blocked Floyd-Warshall design (Section 5.2)."""

from .design import FwComparison, FwDesign
from .functional import FunctionalFwResult, distributed_blocked_fw
from .layout import ColumnBlockLayout
from .simulate import FwSimConfig, FwSimResult, simulate_fw

__all__ = [
    "ColumnBlockLayout",
    "FunctionalFwResult",
    "FwComparison",
    "FwDesign",
    "FwSimConfig",
    "FwSimResult",
    "distributed_blocked_fw",
    "simulate_fw",
]
