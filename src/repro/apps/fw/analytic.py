"""Analytic (DES-free) replay of the distributed-FW simulation.

The FW schedule of :func:`repro.apps.fw.simulate.simulate_fw` is
*structurally* conflict-free: each phase's broadcast serialises on the
owner's egress links in spawn-order waves, every other resource (CPU
lane, DMA channel, FPGA) is used serially by its own node's process,
and consecutive phases cannot collide because the owner always computes
for a strictly positive time between broadcasts.  The makespan is
therefore a pure fold over phases, and :func:`analytic_fw` evaluates
exactly the float arithmetic the DES would -- same operations, same
order, including the ``end - start`` busy-time accounting -- so every
field of the returned :class:`FwSimResult` is bitwise identical.

:func:`analytic_fw_batch` vectorises the fold over a whole
``(l1, l2)`` split grid (the Figure 7 sweep) in one NumPy pass with
elementwise IEEE-754 double arithmetic, keeping each lane bitwise equal
to the scalar replay and hence to the DES.
"""

from __future__ import annotations

from typing import Optional, Sequence

from ...hw.fw_design import FloydWarshallDesign
from ...machine.system import MachineSpec
from ...sim.analytic import FastPathUnsupported
from .layout import ColumnBlockLayout
from .simulate import FwSimConfig, FwSimResult

__all__ = ["analytic_fw", "analytic_fw_batch"]


def _fw_params(spec: MachineSpec, config: FwSimConfig, design):
    if design is None:
        design = FloydWarshallDesign.for_device(spec.node.fpga.device, k=config.k)
    layout = ColumnBlockLayout(config.nb, spec.p)
    if config.ops_per_phase != layout.cols_per_node:
        raise ValueError(
            f"l1 + l2 = {config.ops_per_phase} must equal the per-node "
            f"per-phase operation count n/(bp) = {layout.cols_per_node}"
        )
    net = spec.network
    block_bytes = config.b * config.b * 8
    svc = net.latency + block_bytes / net.bandwidth
    op_cycles = design.tile_cycles(config.b)
    op_flops = 2.0 * float(config.b) ** 3
    freq = design.freq_hz
    b_d = min(8.0 * freq, spec.node.fpga.dram_link_bandwidth)
    rate = spec.node.processor.sustained_flops(config.cpu_kernel)
    if svc <= 0.0 or op_cycles <= 0 or rate <= 0.0:
        raise FastPathUnsupported(
            "degenerate timing parameters (zero-cost ops would tie)",
            reason="unsupported-config",
        )
    return design, layout, block_bytes, svc, op_cycles, op_flops, freq, b_d, rate


def analytic_fw(
    spec: MachineSpec,
    config: FwSimConfig,
    design: Optional[FloydWarshallDesign] = None,
) -> FwSimResult:
    """Replay the FW schedule without a DES (bitwise exact)."""
    design, layout, block_bytes, svc, op_cycles, op_flops, freq, b_d, rate = _fw_params(
        spec, config, design
    )
    p = spec.p
    nb, l1, l2 = config.nb, config.l1, config.l2
    stage_bytes = 2 * block_bytes
    stage_svc = 0.0 + stage_bytes / b_d
    L = spec.network.links_per_node
    n_iters = nb if config.iterations is None else min(config.iterations, nb)

    t = [0.0] * p
    cpu_busy = [0.0] * p
    fpga_busy = [0.0] * p
    net_bytes = 0.0
    m = p - 1

    for it in range(n_iters):
        owner = layout.iteration_owner(it)
        for phase in range(nb):
            if phase == 0:
                # op1 on the diagonal block (owner's processor).
                t0 = t[owner]
                t[owner] = t0 + op_flops / rate
                cpu_busy[owner] += t[owner] - t0
            if m > 0:
                # Broadcast: link-limited waves in spawn order; the owner
                # resumes at the last completion (all_of over the sends).
                dests = [w for w in range(p) if w != owner]
                wave_start = t[owner]
                pos = 0
                while pos < m:
                    c = wave_start + svc
                    for w in dests[pos:pos + L]:
                        if c > t[w]:
                            t[w] = c
                        net_bytes += block_bytes
                    pos += L
                    wave_start = c
                t[owner] = wave_start
            for i in range(p):
                ti = t[i]
                if l2 == 0:
                    fpga_done = ti
                elif config.aggregate_ops:
                    if config.overlap:
                        ti = ti + stage_svc
                        fd0 = ti
                        fpga_done = ti + (l2 * op_cycles) / freq
                        fpga_busy[i] += fpga_done - fd0
                        if l2 > 1:
                            ti = ti + (0.0 + stage_bytes * (l2 - 1) / b_d)
                    else:
                        ti = ti + (0.0 + stage_bytes * l2 / b_d)
                        fd0 = ti
                        fpga_done = ti + (l2 * op_cycles) / freq
                        fpga_busy[i] += fpga_done - fd0
                else:
                    # Per-operation granularity: ops chain back to back on
                    # the FPGA lane while the process keeps staging.
                    if config.overlap:
                        ti = ti + stage_svc
                        f = ti
                        for _ in range(l2):
                            fe = f + op_cycles / freq
                            fpga_busy[i] += fe - f
                            f = fe
                        fpga_done = f
                        for _ in range(l2 - 1):
                            ti = ti + stage_svc
                    else:
                        for _ in range(l2):
                            ti = ti + stage_svc
                        f = ti
                        for _ in range(l2):
                            fe = f + op_cycles / freq
                            fpga_busy[i] += fe - f
                            f = fe
                        fpga_done = f
                if l1 > 0:
                    if config.aggregate_ops:
                        tc = ti + (l1 * op_flops) / rate
                        cpu_busy[i] += tc - ti
                        ti = tc
                    else:
                        for _ in range(l1):
                            tc = ti + op_flops / rate
                            cpu_busy[i] += tc - ti
                            ti = tc
                if fpga_done > ti:
                    ti = fpga_done
                t[i] = ti
    return FwSimResult(
        elapsed=max(t),
        iterations_run=n_iters,
        config=config,
        trace=None,
        cpu_busy=cpu_busy,
        fpga_busy=fpga_busy,
        network_bytes=net_bytes,
    )


def analytic_fw_batch(
    spec: MachineSpec,
    configs: Sequence[FwSimConfig],
    design: Optional[FloydWarshallDesign] = None,
) -> list[FwSimResult]:
    """FW results for a grid of ``(l1, l2)`` splits in one NumPy pass.

    All configs must agree on everything except the split (the Figure 7
    shape) and use ``aggregate_ops``.  Each returned result is bitwise
    identical to :func:`analytic_fw` on the same config.
    """
    import numpy as np

    base = configs[0]
    for cfg in configs:
        if not cfg.aggregate_ops:
            raise FastPathUnsupported(
                "per-op granularity is not batchable", reason="unsupported-config"
            )
        if (cfg.n, cfg.b, cfg.k, cfg.overlap, cfg.iterations, cfg.cpu_kernel) != (
            base.n, base.b, base.k, base.overlap, base.iterations, base.cpu_kernel
        ):
            raise ValueError("batch configs must differ only in (l1, l2)")
    design, layout, block_bytes, svc, op_cycles, op_flops, freq, b_d, rate = _fw_params(
        spec, base, design
    )
    p = spec.p
    nb = base.nb
    stage_bytes = 2 * block_bytes
    stage_svc = 0.0 + stage_bytes / b_d
    L = spec.network.links_per_node
    n_iters = nb if base.iterations is None else min(base.iterations, nb)
    npts = len(configs)
    l1a = np.asarray([c.l1 for c in configs], dtype=np.int64)
    l2a = np.asarray([c.l2 for c in configs], dtype=np.int64)
    has_f = l2a > 0
    has_p = l1a > 0
    many_f = l2a > 1

    t = [np.zeros(npts) for _ in range(p)]
    cpu_busy = [np.zeros(npts) for _ in range(p)]
    fpga_busy = [np.zeros(npts) for _ in range(p)]
    net_bytes = 0.0
    m = p - 1

    for it in range(n_iters):
        owner = layout.iteration_owner(it)
        for phase in range(nb):
            if phase == 0:
                t0 = t[owner]
                t[owner] = t0 + op_flops / rate
                cpu_busy[owner] = cpu_busy[owner] + (t[owner] - t0)
            if m > 0:
                dests = [w for w in range(p) if w != owner]
                wave_start = t[owner]
                pos = 0
                while pos < m:
                    c = wave_start + svc
                    for w in dests[pos:pos + L]:
                        t[w] = np.maximum(t[w], c)
                        net_bytes += block_bytes
                    pos += L
                    wave_start = c
                t[owner] = wave_start
            for i in range(p):
                ti = t[i]
                if base.overlap:
                    staged = np.where(has_f, ti + stage_svc, ti)
                    fd = np.where(has_f, staged + (l2a * op_cycles) / freq, ti)
                    fpga_busy[i] = fpga_busy[i] + np.where(has_f, fd - staged, 0.0)
                    ti = np.where(
                        many_f, staged + (0.0 + stage_bytes * (l2a - 1) / b_d), staged
                    )
                else:
                    staged = np.where(has_f, ti + (0.0 + stage_bytes * l2a / b_d), ti)
                    fd = np.where(has_f, staged + (l2a * op_cycles) / freq, ti)
                    fpga_busy[i] = fpga_busy[i] + np.where(has_f, fd - staged, 0.0)
                    ti = staged
                tc = ti + (l1a * op_flops) / rate
                cpu_busy[i] = cpu_busy[i] + np.where(has_p, tc - ti, 0.0)
                ti = np.where(has_p, tc, ti)
                t[i] = np.maximum(ti, fd)
    elapsed = t[0]
    for i in range(1, p):
        elapsed = np.maximum(elapsed, t[i])
    return [
        FwSimResult(
            elapsed=float(elapsed[j]),
            iterations_run=n_iters,
            config=configs[j],
            trace=None,
            cpu_busy=[float(cpu_busy[i][j]) for i in range(p)],
            fpga_busy=[float(fpga_busy[i][j]) for i in range(p)],
            network_bytes=net_bytes,
        )
        for j in range(npts)
    ]
