"""Top-level facade for the Floyd-Warshall application design."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ...core.model import DesignModel, FwPlan
from ...hw.fw_design import FloydWarshallDesign
from ...machine.system import MachineSpec
from .simulate import FwSimConfig, FwSimResult, simulate_fw

__all__ = ["FwDesign", "FwComparison"]


@dataclass
class FwComparison:
    """Hybrid vs the two baselines (the Figure 9 content for FW)."""

    hybrid: FwSimResult
    cpu_only: FwSimResult
    fpga_only: FwSimResult
    predicted_gflops: float

    @property
    def speedup_vs_cpu(self) -> float:
        return self.hybrid.gflops / self.cpu_only.gflops

    @property
    def speedup_vs_fpga(self) -> float:
        return self.hybrid.gflops / self.fpga_only.gflops

    @property
    def fraction_of_sum(self) -> float:
        return self.hybrid.gflops / (self.cpu_only.gflops + self.fpga_only.gflops)

    @property
    def fraction_of_predicted(self) -> float:
        return self.hybrid.gflops / self.predicted_gflops


class FwDesign:
    """The hybrid Floyd-Warshall design on a given machine."""

    def __init__(self, spec: MachineSpec, n: int, b: int, k: Optional[int] = None) -> None:
        self.spec = spec
        self.design = FloydWarshallDesign.for_device(spec.node.fpga.device, k=k)
        self.k = self.design.k
        self.params = spec.parameters("fw", self.design)
        model = DesignModel(self.params)
        self.plan: FwPlan = model.plan_fw(n, b, self.k)
        self.n, self.b = n, b

    @property
    def ops_per_phase(self) -> int:
        return self.plan.partition.per_phase_ops

    def describe(self) -> str:
        """The plan as a Section 6.1-style implementation-details table."""
        from ...core.reporting import describe_fw_plan, describe_parameters

        return describe_parameters(self.params) + "\n\n" + describe_fw_plan(self.plan)

    def partition_params(self) -> dict:
        """The plan's partition decisions, JSON-able (run-ledger manifest)."""
        return {
            "l1": self.plan.partition.l1,
            "l2": self.plan.partition.l2,
            "k": self.k,
        }

    def config(self, l1: Optional[int] = None, **over) -> FwSimConfig:
        """A simulation config; defaults to the plan's l1/l2 split."""
        l1 = self.plan.partition.l1 if l1 is None else l1
        return FwSimConfig(
            n=self.n, b=self.b, k=self.k, l1=l1, l2=self.ops_per_phase - l1, **over
        )

    def simulate(self, trace: bool = False, monitor=None, faults=None, **over) -> FwSimResult:
        """Simulate the planned hybrid design.

        ``trace=True`` records per-lane busy intervals (needed for the
        Chrome-trace export and :meth:`overlap_report`); ``monitor`` is
        an optional :class:`repro.sim.SimMonitor` for DES internals;
        ``faults`` is an optional :class:`repro.faults.FaultInjector`.
        """
        return simulate_fw(
            self.spec,
            self.config(**over),
            design=self.design,
            trace=trace,
            monitor=monitor,
            faults=faults,
        )

    def simulate_cpu_only(self, **over) -> FwSimResult:
        """The Processor-only baseline (every task on the CPU)."""
        return simulate_fw(
            self.spec, self.config(l1=self.ops_per_phase, **over), design=self.design
        )

    def simulate_fpga_only(self, **over) -> FwSimResult:
        """The FPGA-only baseline (every task on the FPGA)."""
        return simulate_fw(self.spec, self.config(l1=0, **over), design=self.design)

    def overlap_report(self, result: Optional[FwSimResult] = None, registry=None, **over):
        """Reconcile a simulated run against the plan's max{T_tp, T_tf}.

        FW simulates ``iterations`` iterations and extrapolates, so the
        reconciled makespan is :attr:`FwSimResult.total_elapsed`; the
        trace only covers the simulated window, which is passed as
        ``window`` so per-resource utilisation stays meaningful.
        """
        from ...obs import reconcile

        if result is None:
            result = self.simulate(trace=True, **over)
        return reconcile(
            "fw",
            result.total_elapsed,
            self.plan.prediction,
            trace=result.trace,
            window=result.elapsed,
            registry=registry,
            n=self.n,
            b=self.b,
            p=self.spec.p,
            iterations_run=result.iterations_run,
            gflops=result.gflops,
            partition=self.partition_params(),
        )

    def compare(self, **over) -> FwComparison:
        """Hybrid vs both baselines plus the model prediction (Figure 9)."""
        return FwComparison(
            hybrid=self.simulate(**over),
            cpu_only=self.simulate_cpu_only(**over),
            fpga_only=self.simulate_fpga_only(**over),
            predicted_gflops=self.plan.prediction.gflops,
        )
