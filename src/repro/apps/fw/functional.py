"""Functional (real-numerics) execution of the distributed FW schedule.

Runs the Section 5.2.3 schedule on small graphs with physically
partitioned block-column storage, explicit pivot-block broadcasts, the
l1/l2 whole-task split of every phase (l2 tasks optionally on the
cycle-level FPGA array model), and coordination-guard checking.

The result must equal the sequential blocked reference (and scipy's
Floyd-Warshall) exactly up to floating-point associativity.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from ...core.coordination import CoordinationGuard
from ...hw.fw_design import FloydWarshallDesign
from ...kernels.floyd_warshall import fwi
from .layout import ColumnBlockLayout

__all__ = ["FunctionalFwResult", "distributed_blocked_fw"]


@dataclass
class FunctionalFwResult:
    """Outcome of a functional distributed FW run."""

    dist: np.ndarray
    op_counts: dict[str, int]
    messages: int
    device_ops: dict[str, int]  # how many ops ran on "cpu" vs "fpga"
    guard: Optional[CoordinationGuard] = None
    node_stores: list[dict] = field(repr=False, default_factory=list)


def distributed_blocked_fw(
    d: np.ndarray,
    b: int,
    p: int,
    l1: Optional[int] = None,
    use_hw_model: bool = False,
    hw_k: int = 2,
    guard: Optional[CoordinationGuard] = None,
) -> FunctionalFwResult:
    """Execute the hybrid FW schedule functionally on ``p`` virtual nodes.

    ``l1`` of each node's per-phase operations run on the "CPU" (numpy
    kernel) and the rest on the "FPGA" (cycle-level array when
    ``use_hw_model``); ``l1`` defaults to half.  ``l1=0`` is the
    FPGA-only baseline, ``l1=n/(bp)`` the Processor-only baseline.
    """
    d = np.asarray(d, dtype=np.float64)
    n = d.shape[0]
    if d.shape != (n, n):
        raise ValueError(f"matrix must be square, got {d.shape}")
    if n % b:
        raise ValueError(f"b={b} must divide n={n}")
    nb = n // b
    layout = ColumnBlockLayout(nb, p)
    per_phase = layout.cols_per_node
    if l1 is None:
        l1 = per_phase // 2
    if not 0 <= l1 <= per_phase:
        raise ValueError(f"l1={l1} outside [0, {per_phase}]")
    design = FloydWarshallDesign(k=hw_k, freq_hz=1e6, device=None) if use_hw_model else None
    if design is not None and b % hw_k:
        raise ValueError(f"use_hw_model requires b={b} to be a multiple of k={hw_k}")

    # Physically partitioned block-column storage.
    store: list[dict[tuple[int, int], np.ndarray]] = [dict() for _ in range(p)]
    for v in range(nb):
        node = layout.owner_of_column(v)
        for u in range(nb):
            store[node][(u, v)] = d[u * b : (u + 1) * b, v * b : (v + 1) * b].copy()

    messages = 0
    counts = {"op1": 0, "op21": 0, "op22": 0, "op3": 0}
    device_ops = {"cpu": 0, "fpga": 0}

    def run_op(node: int, kind: str, dst, a_blk, b_blk, on_fpga: bool, reg: str,
               read_regs: tuple = ()):
        """One FWI operation on the chosen device, guard-checked.

        ``read_regs`` names the regions whose current contents the
        operation consumes (its own destination plus any same-node
        operand blocks); the guard verifies each read was granted.
        """
        counts[kind] += 1
        device_ops["fpga" if on_fpga else "cpu"] += 1
        actor = f"fpga{node}" if on_fpga else f"cpu{node}"
        if guard:
            guard.read(reg, actor)  # the update reads the previous version
            for rr in read_regs:
                guard.read(rr, actor)
            guard.begin_write(reg, actor)
        if on_fpga and design is not None:
            out, _cycles = design.run_tile(dst, a_blk, b_blk)
        else:
            out = fwi(dst, a_blk, b_blk)
        if guard:
            guard.end_write(reg, actor)
            # The other device on the node may read the result next phase.
            guard.grant(reg, f"cpu{node}" if on_fpga else f"fpga{node}")
        return out

    def bcast(src: int, block: np.ndarray, reg: str) -> np.ndarray:
        """Broadcast a pivot block; returns the (shared, read-only) copy."""
        nonlocal messages
        messages += p - 1
        if guard:
            for w in range(p):
                if w != src:
                    guard.grant(reg, f"cpu{w}")
                    guard.grant(reg, f"fpga{w}")
        return block.copy()

    for t in range(nb):
        owner = layout.iteration_owner(t)
        # Phase 0: op1 on D_tt at the owner, then broadcast.
        reg_tt = f"dram{owner}/D[{t},{t}]"
        store[owner][(t, t)] = run_op(
            owner, "op1", store[owner][(t, t)], None, None, on_fpga=False, reg=reg_tt
        )
        d_tt = bcast(owner, store[owner][(t, t)], reg_tt)

        # op21 phase: every node updates row-block t of its own columns
        # (the pivot row), splitting ops l1:rest between CPU and FPGA.
        for node in range(p):
            ops = [q for q in layout.columns_of(node) if q != t]
            for idx, q in enumerate(ops):
                on_fpga = idx >= l1  # first l1 ops on the CPU
                store[node][(t, q)] = run_op(
                    node,
                    "op21",
                    store[node][(t, q)],
                    d_tt,
                    None,
                    on_fpga=on_fpga,
                    reg=f"dram{node}/D[{t},{q}]",
                )
        # op22: the whole pivot column belongs to the owner.
        for q in range(nb):
            if q == t:
                continue
            store[owner][(q, t)] = run_op(
                owner,
                "op22",
                store[owner][(q, t)],
                None,
                d_tt,
                on_fpga=False,
                reg=f"dram{owner}/D[{q},{t}]",
            )
        # op3 phases: one block row per phase; each node needs the pivot
        # column block D[u, t] (broadcast by the owner) and its own
        # pivot-row blocks D[t, v] (updated in the op21 phase).
        for u in range(nb):
            if u == t:
                continue
            d_ut = bcast(owner, store[owner][(u, t)], f"dram{owner}/D[{u},{t}]")
            for node in range(p):
                ops = [v for v in layout.columns_of(node) if v != t]
                for idx, v in enumerate(ops):
                    on_fpga = idx >= l1
                    d_tv = store[node][(t, v)]
                    store[node][(u, v)] = run_op(
                        node,
                        "op3",
                        store[node][(u, v)],
                        d_ut,
                        d_tv,
                        on_fpga=on_fpga,
                        reg=f"dram{node}/D[{u},{v}]",
                        read_regs=(f"dram{node}/D[{t},{v}]",),
                    )

    out = np.empty((n, n))
    for v in range(nb):
        node = layout.owner_of_column(v)
        for u in range(nb):
            out[u * b : (u + 1) * b, v * b : (v + 1) * b] = store[node][(u, v)]
    return FunctionalFwResult(
        dist=out,
        op_counts=counts,
        messages=messages,
        device_ops=device_ops,
        guard=guard,
        node_stores=store,
    )
