"""Data layout for the distributed Floyd-Warshall design (Section 5.2.3).

The blocked distance matrix has ``n/b`` block columns; node ``P_i`` owns
the contiguous range ``[i * n/(bp), (i+1) * n/(bp))`` of them.  The
owner of iteration ``t`` is the node holding block column ``t``.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["ColumnBlockLayout"]


@dataclass(frozen=True)
class ColumnBlockLayout:
    """Contiguous block-column ownership over p nodes."""

    nb: int  # block columns
    p: int  # nodes

    def __post_init__(self) -> None:
        if self.nb < 1 or self.p < 1:
            raise ValueError(f"nb and p must be >= 1, got nb={self.nb}, p={self.p}")
        if self.nb % self.p:
            raise ValueError(f"p={self.p} must divide nb={self.nb} (paper's layout)")

    @property
    def cols_per_node(self) -> int:
        """n/(bp): block columns (and per-phase operations) per node."""
        return self.nb // self.p

    def owner_of_column(self, q: int) -> int:
        """The node storing block column ``q``."""
        if not 0 <= q < self.nb:
            raise ValueError(f"column {q} outside grid of {self.nb}")
        return q // self.cols_per_node

    def iteration_owner(self, t: int) -> int:
        """P_t': the node owning block column t (does op1 and all op22)."""
        return self.owner_of_column(t)

    def columns_of(self, node: int) -> range:
        """The block columns stored on ``node``."""
        if not 0 <= node < self.p:
            raise ValueError(f"node {node} out of range for p={self.p}")
        c = self.cols_per_node
        return range(node * c, (node + 1) * c)
