"""Discrete-event simulation of the distributed FW designs (Section 5.2.3).

Iteration ``t`` has ``n/b`` phases:

* **phase 0**: the owner P_t' runs op1 on the diagonal block and
  broadcasts it; then every node runs its ``n/(bp)`` op21 operations on
  its own block columns (the owner substitutes one op22 for an op21);
* **each following phase**: the owner broadcasts the op22 block it
  finished last phase; every node then runs ``n/(bp)`` op3 operations on
  one block row of its columns (the owner again folds in the next op22).

Within a node each phase's operations are split ``l1`` to the processor
and ``l2`` to the FPGA (Equation 6).  The processor's serial path per
phase is: receive the broadcast (T_comm), stage the FPGA operands over
the B_d channel (l2 x T_mem), then run its own l1 operations (l1 x T_p);
the FPGA overlaps everything after its first operands land -- the
paper's overlap story, emerging from simulated resources.

Baselines use the same machinery: ``l1 = L`` (all-CPU) is the
Processor-only design, ``l1 = 0`` the FPGA-only design.

Because every phase is structurally identical, benchmark runs simulate
``iterations`` (default 1) full iterations and extrapolate linearly to
all ``n/b`` -- the extrapolation is validated against full simulations
at small n in the test suite.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ...hw.fw_design import FloydWarshallDesign
from ...machine.system import MachineSpec, ReconfigurableSystem
from ...mpi import Communicator
from ...sim import Trace
from .layout import ColumnBlockLayout

__all__ = ["FwSimConfig", "FwSimResult", "simulate_fw"]


@dataclass(frozen=True)
class FwSimConfig:
    """Everything a distributed-FW simulation run needs."""

    n: int
    b: int
    k: int
    l1: int  # per-phase operations on the processor
    l2: int  # per-phase operations on the FPGA
    overlap: bool = True  # False: FPGA waits for all staging (ablation)
    aggregate_ops: bool = True  # lump each phase's ops into one event each
    iterations: Optional[int] = 1  # iterations to simulate (None = all)
    cpu_kernel: str = "fw"

    def __post_init__(self) -> None:
        if self.n < self.b or self.n % self.b:
            raise ValueError(f"b={self.b} must divide n={self.n}")
        if self.b % self.k:
            raise ValueError(f"b={self.b} must be a multiple of k={self.k}")
        if self.l1 < 0 or self.l2 < 0 or self.l1 + self.l2 < 1:
            raise ValueError(f"invalid split l1={self.l1}, l2={self.l2}")

    @property
    def nb(self) -> int:
        return self.n // self.b

    @property
    def ops_per_phase(self) -> int:
        return self.l1 + self.l2


@dataclass
class FwSimResult:
    """Measured outcome of a (possibly partial) simulated run."""

    elapsed: float  # simulated time for `iterations_run` iterations
    iterations_run: int
    config: FwSimConfig
    trace: Optional[Trace]
    cpu_busy: list[float] = field(default_factory=list)
    fpga_busy: list[float] = field(default_factory=list)
    network_bytes: float = 0.0

    @property
    def total_elapsed(self) -> float:
        """Full-run time, extrapolating uniform iterations if truncated."""
        if self.iterations_run == 0:
            return 0.0
        return self.elapsed * self.config.nb / self.iterations_run

    @property
    def useful_flops(self) -> float:
        return 2.0 * float(self.config.n) ** 3

    @property
    def gflops(self) -> float:
        total = self.total_elapsed
        return self.useful_flops / total / 1e9 if total > 0 else 0.0


def _analytic_fw(spec, config, design):
    # Deferred import: .analytic imports this module's config/result types.
    from .analytic import analytic_fw

    return analytic_fw(spec, config, design)


def simulate_fw(
    spec: MachineSpec,
    config: FwSimConfig,
    design: Optional[FloydWarshallDesign] = None,
    trace: bool = False,
    node_specs: Optional[list] = None,
    monitor: Optional[object] = None,
    faults: Optional[object] = None,
    fast_path: Optional[str] = None,
) -> FwSimResult:
    """Run the distributed blocked-FW schedule on a simulated machine.

    ``monitor`` is an optional :class:`repro.sim.SimMonitor`; attaching
    one records DES internals at the cost of the counting run loop.
    ``faults`` is an optional :class:`repro.faults.FaultInjector`
    (anything with ``install``), hooked in after the FPGAs are
    configured and before the schedule processes spawn.

    ``fast_path`` selects the analytic no-contention fast path
    (``"auto"`` / ``"on"`` / ``"off"``; None = process default); see
    :mod:`repro.sim.analytic`.  Analytic results are bitwise identical.
    """
    from ...sim.analytic import try_fast_path

    fast = try_fast_path(
        "fw",
        lambda: _analytic_fw(spec, config, design),
        mode=fast_path,
        trace=trace,
        node_specs=node_specs,
        monitor=monitor,
        faults=faults,
    )
    if fast is not None:
        return fast
    system = ReconfigurableSystem(spec, trace=trace, node_specs=node_specs)
    if not trace:
        system.sim.trace = None
    if monitor is not None:
        system.sim.attach_monitor(monitor)
    if design is None:
        design = FloydWarshallDesign.for_device(spec.node.fpga.device, k=config.k)
    system.configure_fpgas(lambda: design)
    if faults is not None:
        faults.install(system)
    comm = Communicator(system)
    sim = system.sim
    p = spec.p
    nb, b, l1, l2 = config.nb, config.b, config.l1, config.l2
    layout = ColumnBlockLayout(nb, p)
    if config.ops_per_phase != layout.cols_per_node:
        raise ValueError(
            f"l1 + l2 = {config.ops_per_phase} must equal the per-node "
            f"per-phase operation count n/(bp) = {layout.cols_per_node}"
        )
    bw = 8
    block_bytes = b * b * bw
    stage_bytes = 2 * block_bytes  # two operand blocks per FPGA op (T_mem)
    op_cycles = design.tile_cycles(b)  # 2 b^3 / k
    op_flops = 2.0 * b**3
    n_iters = nb if config.iterations is None else min(config.iterations, nb)

    def fpga_batch(node, done, ops: int, label: str):
        yield from node.fpga_run_cycles(ops * op_cycles, label=label, flops=ops * op_flops)
        done.succeed()

    def run_phase(node, i: int, t: int, phase: int, owner: int):
        """One phase on one node: bcast + l1 CPU ops + l2 FPGA ops."""
        # Owner of this iteration broadcasts the pivot block (op1 result
        # in phase 0, the previous phase's op22 result afterwards); every
        # other node receives it before touching its operations.
        tag = ("pivot", t, phase)
        if i == owner:
            if phase == 0:
                # op1 on the diagonal block, on the processor.
                yield from node.cpu_run(config.cpu_kernel, op_flops, label=f"op1[{t}]")
            sends = [
                sim.process(comm.send(owner, w, nbytes=block_bytes, tag=tag))
                for w in range(p)
                if w != owner
            ]
            yield sim.all_of(sends)
        else:
            yield from comm.recv(i, owner, tag=tag)

        my_l1, my_l2 = l1, l2
        fpga_done = sim.event(name=f"fpga[{i},{t},{phase}]")
        label = f"ops[{t},{phase}]"
        if my_l2 == 0:
            fpga_done.succeed()
        elif config.aggregate_ops:
            if config.overlap:
                # Stage the first op's operands, launch the batch, keep
                # staging the rest while CPU and FPGA work.
                yield from node.dram_to_fpga(stage_bytes, label=f"stage:{label}")
                sim.process(fpga_batch(node, fpga_done, my_l2, label))
                if my_l2 > 1:
                    yield from node.dram_to_fpga(stage_bytes * (my_l2 - 1), label=f"stage:{label}")
            else:
                yield from node.dram_to_fpga(stage_bytes * my_l2, label=f"stage:{label}")
                sim.process(fpga_batch(node, fpga_done, my_l2, label))
        else:
            # Per-operation granularity (small-n validation runs).
            def fpga_ops(node=node):
                for _ in range(my_l2):
                    yield from node.fpga_run_cycles(op_cycles, label=label, flops=op_flops)
                fpga_done.succeed()

            if config.overlap:
                yield from node.dram_to_fpga(stage_bytes, label=f"stage:{label}")
                sim.process(fpga_ops())
                for _ in range(my_l2 - 1):
                    yield from node.dram_to_fpga(stage_bytes, label=f"stage:{label}")
            else:
                for _ in range(my_l2):
                    yield from node.dram_to_fpga(stage_bytes, label=f"stage:{label}")
                sim.process(fpga_ops())
        # The processor's own operations (the owner's op22 is folded in
        # as the first of them so the next pivot is ready earliest).
        if my_l1 > 0:
            if config.aggregate_ops:
                yield from node.cpu_run(config.cpu_kernel, my_l1 * op_flops, label=label)
            else:
                for _ in range(my_l1):
                    yield from node.cpu_run(config.cpu_kernel, op_flops, label=label)
        yield fpga_done

    def node_main(i: int):
        node = system.nodes[i]
        for t in range(n_iters):
            owner = layout.iteration_owner(t)
            for phase in range(nb):
                yield from run_phase(node, i, t, phase, owner)

    for i in range(p):
        sim.process(node_main(i), name=f"node{i}")
    elapsed = system.run()
    return FwSimResult(
        elapsed=elapsed,
        iterations_run=n_iters,
        config=config,
        trace=system.trace,
        cpu_busy=[nd.cpu_busy_time for nd in system.nodes],
        fpga_busy=[nd.fpga.busy_time for nd in system.nodes],
        network_bytes=system.network.bytes_moved,
    )
