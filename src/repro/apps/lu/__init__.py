"""Hybrid block-LU decomposition design (Section 5.1)."""

from .design import LuComparison, LuDesign, TABLE1_LATENCIES
from .functional import FunctionalLuResult, distributed_block_lu
from .layout import BlockCyclicLayout
from .simulate import LuSimConfig, LuSimResult, simulate_block_mm, simulate_lu
from .taskgraph import build_lu_taskgraph, lu_op_counts

__all__ = [
    "BlockCyclicLayout",
    "FunctionalLuResult",
    "LuComparison",
    "LuDesign",
    "LuSimConfig",
    "LuSimResult",
    "TABLE1_LATENCIES",
    "build_lu_taskgraph",
    "distributed_block_lu",
    "lu_op_counts",
    "simulate_block_mm",
    "simulate_lu",
]
