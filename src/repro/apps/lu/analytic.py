"""Analytic (DES-free) replays of the LU simulations -- bitwise exact.

:func:`analytic_lu` replays :func:`repro.apps.lu.simulate.simulate_lu`
through the :class:`repro.sim.analytic.Replay` engine: the same
schedule expressed as op-yielding generators, evaluating the identical
float arithmetic in the identical order, so every field of the returned
:class:`LuSimResult` matches the DES bitwise.  The engine refuses
(:class:`FastPathUnsupported`) any configuration whose outcome would
depend on DES intra-timestamp micro-ordering.

:func:`analytic_block_mm` is a closed form for the Figure 5 kernel:
the stripe broadcast is a chain of link-limited send waves and each
worker's receive/stage/compute pipeline is a pure fold over stripe
arrivals, with no cross-worker contention for any parameter choice.
:func:`analytic_block_mm_batch` vectorises that fold over a whole
``b_f`` grid in one NumPy pass (one fused sweep instead of one DES run
per point) while keeping elementwise IEEE-754 double arithmetic, so
each lane of the batch equals the scalar (and hence the DES) bitwise.

Tie classes used for LU (why the replay is safe where it does not
refuse): the owner's per-superstripe broadcast is one ``send_batch``
burst -- its transfers enter each FIFO in a fixed documented order in
both engines; workers' result sends toward the same ``opMS`` owner are
tagged with their broadcast *wave* (``position // links_per_node``), as
same-job same-wave workers are structurally identical twins whose
arrival order is restored at every resynchronisation point.  Any other
same-time collision refuses to the DES.
"""

from __future__ import annotations

from typing import Optional

from ...hw.mm_design import MatrixMultiplyDesign
from ...kernels.flops import getrf_flops, trsm_flops
from ...machine.system import MachineSpec
from ...sim.analytic import Replay
from .simulate import (
    LuSimConfig,
    LuSimResult,
    iteration_jobs,
    released_after_opl,
    released_after_opu,
)

__all__ = ["analytic_block_mm", "analytic_block_mm_batch", "analytic_lu"]


def analytic_lu(
    spec: MachineSpec,
    config: LuSimConfig,
    design: Optional[MatrixMultiplyDesign] = None,
) -> LuSimResult:
    """Replay the distributed LU schedule without a DES (bitwise exact).

    Raises :class:`repro.sim.analytic.FastPathUnsupported` when the
    schedule hits an ambiguous same-time resource tie (then only the
    DES's micro-ordering can decide the outcome).
    """
    if design is None:
        design = MatrixMultiplyDesign.for_device(spec.node.fpga.device, k=config.k)
    p = spec.p
    if p < 2:
        raise ValueError("the distributed LU design needs p >= 2 nodes")
    nb, b, b_f, b_p, S = config.nb, config.b, config.b_f, config.b_p, config.superstripes
    bw = 8
    proc = spec.node.processor
    kernel = config.cpu_mm_kernel

    # Identical size/duration arithmetic to simulate_lu, precomputed once.
    c_bytes = b * b * bw
    d_bytes = b * b * bw // (p - 1)
    job_bytes = c_bytes + d_bytes
    stage_bytes = (b_f * b + b * b // (p - 1)) * bw
    fpga_cycles_per_job = b_f * b * b / ((p - 1) * config.k)
    cpu_flops_per_job = 2.0 * b_p * b * (b / (p - 1))
    result_bytes = b * b * bw // (p - 1)

    net = spec.network
    chunk_size = int(job_bytes / S)  # comm.send coerces nbytes to int
    chunk_svc = net.latency + chunk_size / net.bandwidth
    result_size = int(result_bytes)
    result_svc = net.latency + result_size / net.bandwidth
    freq = design.freq_hz
    b_d = min(8.0 * freq, spec.node.fpga.dram_link_bandwidth)
    stage_dur = 0.0 + (stage_bytes / S) / b_d  # BandwidthChannel latency 0.0
    stage_dur_full = 0.0 + stage_bytes / b_d
    fpga_dur = fpga_cycles_per_job / freq
    gemm_dur = proc.kernel_time(kernel, cpu_flops_per_job / S)
    gemm_dur_full = proc.kernel_time(kernel, cpu_flops_per_job)
    getrf_dur = proc.kernel_time("dgetrf", getrf_flops(b))
    trsm_dur = proc.kernel_time("dtrsm", trsm_flops(b, b))
    opms_dur = proc.kernel_time(kernel, float(b * b))

    n_iters = nb if config.iterations is None else min(config.iterations, nb)
    engine = Replay(p, net.links_per_node)

    def workers_of(t: int) -> list[int]:
        owner = t % p
        return [i for i in range(p) if i != owner]

    def owner_iteration(t: int):
        m = nb - t - 1
        owner = t % p
        if t > 0 and config.collect_results:
            waits = [("ms", t - 1, u, t) for u in range(t, nb)]
            waits += [("ms", t - 1, t, v) for v in range(t + 1, nb)]
            yield ("wait_all", waits)
        yield ("cpu", owner, getrf_dur)
        pending: list[tuple[int, int]] = []

        def ship(limit: int):
            for _ in range(min(limit, len(pending))):
                u, v = pending.pop(0)
                dsts = workers_of(t)
                for s in range(S):
                    yield ("send_batch", owner, dsts, chunk_svc, chunk_size,
                           [("mm", t, u, v, s, w) for w in dsts])

        for j in range(1, m + 1):
            yield ("cpu", owner, trsm_dur)
            pending.extend(released_after_opl(t, j))
            yield from ship(config.l)
            yield ("cpu", owner, trsm_dur)
            pending.extend(released_after_opu(t, j))
            yield from ship(config.l)
        yield from ship(len(pending))

    def worker_iteration(i: int, t: int):
        wave = workers_of(t).index(i) // net.links_per_node
        for u, v in iteration_jobs(t, nb):
            fkey = ("fpga", i, t, u, v)
            if config.overlap:
                started = False
                for s in range(S):
                    yield ("wait", ("mm", t, u, v, s, i))
                    if b_f > 0:
                        yield ("chan", i, stage_dur)
                        if not started:
                            yield ("fpga_spawn", i, fpga_dur, fkey)
                            started = True
                    if b_p > 0:
                        yield ("cpu", i, gemm_dur)
                if not started:
                    yield ("set", fkey)
            else:
                for s in range(S):
                    yield ("wait", ("mm", t, u, v, s, i))
                if b_f > 0:
                    yield ("chan", i, stage_dur_full)
                    yield ("fpga_spawn", i, fpga_dur, fkey)
                else:
                    yield ("set", fkey)
                if b_p > 0:
                    yield ("cpu", i, gemm_dur_full)
            yield ("wait", fkey)
            if config.collect_results:
                dest = min(u, v) % p
                if dest != i:
                    yield ("send", i, dest, result_svc, result_size,
                           ("msr", t, u, v, i), ("msr", t, u, v, wave))
                else:
                    yield ("set", ("msr", t, u, v, i))

    def ms_sink(i: int):
        for t in range(n_iters):
            mine = [(u, v) for (u, v) in iteration_jobs(t, nb) if min(u, v) % p == i]
            for u, v in mine:
                yield ("wait_all", [("msr", t, u, v, w) for w in workers_of(t)])
                yield ("cpu", i, opms_dur)
                yield ("set", ("ms", t, u, v))

    def node_main(i: int):
        for t in range(n_iters):
            if i == t % p:
                yield from owner_iteration(t)
            else:
                yield from worker_iteration(i, t)

    for i in range(p):
        engine.advance(node_main(i), 0.0)
        if config.collect_results:
            engine.advance(ms_sink(i), 0.0)
    elapsed = engine.run()
    return LuSimResult(
        elapsed=elapsed,
        useful_flops=(2.0 / 3.0) * float(config.n) ** 3,
        config=config,
        trace=None,
        cpu_busy=engine.cpu_busy,
        fpga_busy=engine.fpga_busy,
        network_bytes=engine.net_bytes,
    )


def _block_mm_params(spec: MachineSpec, b: int, k: int, design, stripes):
    """Shared scalar precomputation for the block-MM closed forms."""
    if design is None:
        design = MatrixMultiplyDesign.for_device(spec.node.fpga.device, k=k)
    p = spec.p
    S = stripes if stripes is not None else b // k
    net = spec.network
    stripe_bytes = 2 * b * k * 8
    svc = net.latency + stripe_bytes / net.bandwidth
    b_d = min(8.0 * design.freq_hz, spec.node.fpga.dram_link_bandwidth)
    rate = spec.node.processor.sustained_flops("dgemm")
    m = p - 1
    L = net.links_per_node
    # arrivals[s][i]: when worker at wave position i holds stripe s.  The
    # sender launches every stripe as one all_of burst and the next burst
    # starts at the previous one's last wave completion.
    nwaves = -(-m // L)
    arrivals = [[0.0] * m for _ in range(S)]
    e0 = 0.0
    for s in range(S):
        wave_start = e0
        for j in range(nwaves):
            c = wave_start + svc
            for i in range(j * L, min((j + 1) * L, m)):
                arrivals[s][i] = c
            wave_start = c
        e0 = wave_start
    return design, p, S, b_d, rate, m, arrivals, e0


def analytic_block_mm(
    spec: MachineSpec,
    b: int,
    b_f: int,
    k: int,
    design: Optional[MatrixMultiplyDesign] = None,
    stripes: Optional[int] = None,
) -> float:
    """Latency of one cooperative block MM, bitwise equal to the DES.

    The Figure 5 schedule is conflict-free for every parameter choice:
    the sender's stripe waves serialise on its egress links, each
    worker's pipeline folds over its own resources only, and the two
    never collide at equal timestamps (service times are positive).
    """
    if not 0 <= b_f <= b:
        raise ValueError(f"b_f={b_f} outside [0, {b}]")
    if b % k:
        raise ValueError(f"b={b} must be a multiple of k={k}")
    design, p, S, b_d, rate, m, arrivals, makespan = _block_mm_params(
        spec, b, k, design, stripes
    )
    b_p = b - b_f
    stage_bytes = (b_f * k + b * k / (p - 1)) * 8
    stage_svc = 0.0 + stage_bytes / b_d
    cpu_t = (2.0 * b_p * k * (b / (p - 1))) / rate
    fpga_dur = (b_f * (b / (p - 1))) * S / design.freq_hz
    for i in range(m):
        t = 0.0
        fpga_done = None
        for s in range(S):
            a = arrivals[s][i]
            if a > t:
                t = a
            if b_f > 0:
                t = t + stage_svc
                if fpga_done is None:
                    fpga_done = t + fpga_dur
            if b_p > 0:
                t = t + cpu_t
        if fpga_done is not None and fpga_done > t:
            t = fpga_done
        if t > makespan:
            makespan = t
    return makespan


def analytic_block_mm_batch(
    spec: MachineSpec,
    b: int,
    b_fs: list[int],
    k: int,
    design: Optional[MatrixMultiplyDesign] = None,
    stripes: Optional[int] = None,
) -> list[float]:
    """Block-MM latencies for a whole ``b_f`` grid in one NumPy pass.

    Every elementwise operation mirrors :func:`analytic_block_mm` in
    value and order (IEEE-754 doubles either way), so each returned
    latency is bitwise identical to the scalar closed form and to the
    DES.  The stripe-arrival chain is shared across the grid -- it does
    not depend on ``b_f`` -- so the whole sweep costs one vectorised
    fold over stripes.
    """
    import numpy as np

    for b_f in b_fs:
        if not 0 <= b_f <= b:
            raise ValueError(f"b_f={b_f} outside [0, {b}]")
    if b % k:
        raise ValueError(f"b={b} must be a multiple of k={k}")
    design, p, S, b_d, rate, m, arrivals, e0 = _block_mm_params(spec, b, k, design, stripes)
    bf = np.asarray(b_fs, dtype=np.int64)
    bp = b - bf
    has_f = bf > 0
    has_p = bp > 0
    stage_svc = 0.0 + (bf * k + b * k / (p - 1)) * 8 / b_d
    cpu_t = (2.0 * bp * k * (b / (p - 1))) / rate
    fpga_dur = (bf * (b / (p - 1))) * S / design.freq_hz
    makespan = np.full(len(b_fs), e0)
    for i in range(m):
        t = np.zeros(len(b_fs))
        fpga_done = np.full(len(b_fs), -np.inf)
        fpga_started = np.zeros(len(b_fs), dtype=bool)
        for s in range(S):
            t = np.maximum(t, arrivals[s][i])
            staged = np.where(has_f, t + stage_svc, t)
            first = has_f & ~fpga_started
            fpga_done = np.where(first, staged + fpga_dur, fpga_done)
            fpga_started |= has_f
            t = staged
            t = np.where(has_p, t + cpu_t, t)
        t = np.maximum(t, fpga_done)
        makespan = np.maximum(makespan, t)
    return [float(x) for x in makespan]
