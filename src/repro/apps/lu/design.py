"""Top-level facade for the LU application design.

Bundles planning (the design model), timing simulation (the DES) and
functional validation behind one object, and provides the paper's two
baselines for comparison -- the API the examples and benchmarks use.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ...core.model import DesignModel, LuPlan
from ...hw.mm_design import MatrixMultiplyDesign
from ...machine.system import MachineSpec
from .simulate import LuSimConfig, LuSimResult, simulate_lu

__all__ = ["LuDesign", "LuComparison"]

#: The measured panel-routine latencies of Table 1 (b = 3000).
TABLE1_LATENCIES = {"t_lu": 4.9, "t_opl": 7.1, "t_opu": 7.1}


@dataclass
class LuComparison:
    """Hybrid vs the two baselines (the Figure 9 content for LU)."""

    hybrid: LuSimResult
    cpu_only: LuSimResult
    fpga_only: LuSimResult
    predicted_gflops: float

    @property
    def speedup_vs_cpu(self) -> float:
        return self.hybrid.gflops / self.cpu_only.gflops

    @property
    def speedup_vs_fpga(self) -> float:
        return self.hybrid.gflops / self.fpga_only.gflops

    @property
    def fraction_of_sum(self) -> float:
        return self.hybrid.gflops / (self.cpu_only.gflops + self.fpga_only.gflops)

    @property
    def fraction_of_predicted(self) -> float:
        return self.hybrid.gflops / self.predicted_gflops


class LuDesign:
    """The hybrid LU design on a given machine."""

    def __init__(
        self,
        spec: MachineSpec,
        n: int,
        b: int,
        k: Optional[int] = None,
        use_table1: bool = True,
    ) -> None:
        self.spec = spec
        self.design = MatrixMultiplyDesign.for_device(spec.node.fpga.device, k=k)
        self.k = self.design.k
        self.params = spec.parameters("dgemm", self.design)
        model = DesignModel(self.params)
        latencies = TABLE1_LATENCIES if (use_table1 and b == 3000) else {}
        self.plan: LuPlan = model.plan_lu(n, b, self.k, **latencies)
        self.n, self.b = n, b

    def describe(self) -> str:
        """The plan as a Section 6.1-style implementation-details table."""
        from ...core.reporting import describe_lu_plan, describe_parameters

        return describe_parameters(self.params) + "\n\n" + describe_lu_plan(self.plan)

    def partition_params(self) -> dict:
        """The plan's partition decisions, JSON-able (run-ledger manifest)."""
        return {
            "b_p": self.plan.partition.b_p,
            "b_f": self.plan.partition.b_f,
            "l": self.plan.balance.l,
            "k": self.k,
        }

    # -- simulation -----------------------------------------------------------

    def config(self, b_f: Optional[int] = None, l: Optional[int] = None, **over) -> LuSimConfig:
        """A simulation config; defaults to the plan's decisions."""
        return LuSimConfig(
            n=self.n,
            b=self.b,
            k=self.k,
            b_f=self.plan.partition.b_f if b_f is None else b_f,
            l=self.plan.balance.l if l is None else l,
            **over,
        )

    def simulate(self, trace: bool = False, monitor=None, faults=None, **over) -> LuSimResult:
        """Simulate the planned hybrid design.

        ``trace=True`` records per-lane busy intervals (needed for the
        Chrome-trace export and :meth:`overlap_report`); ``monitor`` is
        an optional :class:`repro.sim.SimMonitor` for DES internals;
        ``faults`` is an optional :class:`repro.faults.FaultInjector`.
        """
        return simulate_lu(
            self.spec,
            self.config(**over),
            design=self.design,
            trace=trace,
            monitor=monitor,
            faults=faults,
        )

    def simulate_cpu_only(self, **over) -> LuSimResult:
        """The Processor-only baseline (b_f = 0)."""
        return simulate_lu(self.spec, self.config(b_f=0, **over), design=self.design)

    def simulate_fpga_only(self, **over) -> LuSimResult:
        """The FPGA-only baseline (b_f = b)."""
        return simulate_lu(self.spec, self.config(b_f=self.b, **over), design=self.design)

    def overlap_report(self, result: Optional[LuSimResult] = None, registry=None, **over):
        """Reconcile a simulated run against the plan's max{T_tp, T_tf}.

        Simulates with tracing when no ``result`` is given (a result
        without a trace still reconciles, just without per-resource
        busy-time breakdown).  Returns an
        :class:`repro.obs.OverlapReport` and publishes its gauges.
        """
        from ...obs import reconcile

        if result is None:
            result = self.simulate(trace=True, **over)
        return reconcile(
            "lu",
            result.elapsed,
            self.plan.prediction,
            trace=result.trace,
            registry=registry,
            n=self.n,
            b=self.b,
            p=self.spec.p,
            gflops=result.gflops,
            partition=self.partition_params(),
        )

    def compare(self, **over) -> LuComparison:
        """Hybrid vs both baselines plus the model prediction (Figure 9)."""
        return LuComparison(
            hybrid=self.simulate(**over),
            cpu_only=self.simulate_cpu_only(**over),
            fpga_only=self.simulate_fpga_only(**over),
            predicted_gflops=self.plan.prediction.gflops,
        )
