"""Functional (real-numerics) execution of the distributed LU schedule.

Runs the exact dataflow of Section 5.1.3 on small matrices, with block
storage physically partitioned per node, explicit message passing
between per-node stores, the b_f/b_p row split of every opMM, and the
Section 4.4 coordination protocol checked by a
:class:`~repro.core.coordination.CoordinationGuard`.

The FPGA's share of each block product can optionally be computed by the
cycle-level PE array (:class:`~repro.hw.pe_array.LinearPEArray`) instead
of numpy, closing the loop between the timing model and the numerics.

The result must satisfy ``L @ U == A`` to factorisation accuracy -- the
test suite checks this against the sequential reference and scipy.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from ...core.coordination import CoordinationGuard
from ...hw.pe_array import LinearPEArray
from ...kernels.blas import gemm, getrf_nopiv, split_lu, trsm_lower_left_unit, trsm_upper_right
from .layout import BlockCyclicLayout

__all__ = ["FunctionalLuResult", "distributed_block_lu"]


@dataclass
class FunctionalLuResult:
    """Outcome of a functional distributed LU run."""

    lu: np.ndarray  # assembled packed LU factors
    op_counts: dict[str, int]
    messages: int  # inter-node block transfers performed
    guard: Optional[CoordinationGuard]
    node_stores: list[dict] = field(repr=False, default_factory=list)

    @property
    def factors(self):
        return split_lu(self.lu)


def distributed_block_lu(
    a: np.ndarray,
    b: int,
    p: int,
    b_f: Optional[int] = None,
    k: int = 2,
    use_hw_model: bool = False,
    guard: Optional[CoordinationGuard] = None,
) -> FunctionalLuResult:
    """Execute the hybrid LU schedule functionally on ``p`` virtual nodes.

    Parameters
    ----------
    a:
        The n x n input (diagonally dominant recommended; no pivoting).
    b:
        Block size (must divide n; b/(p-1) and b_f must be multiples of
        k when ``use_hw_model``).
    b_f:
        Rows of each block product computed on the "FPGA" (default b//2,
        rounded to a multiple of k).  0 = Processor-only, b = FPGA-only.
    use_hw_model:
        Compute the FPGA share with the cycle-level PE array.
    guard:
        Optional coordination guard; pass one to have every cross-device
        access checked against the Section 4.4 protocol.
    """
    a = np.asarray(a, dtype=np.float64)
    n = a.shape[0]
    if a.shape != (n, n):
        raise ValueError(f"matrix must be square, got {a.shape}")
    if n % b:
        raise ValueError(f"b={b} must divide n={n}")
    if p < 2:
        raise ValueError("the distributed design needs p >= 2 nodes")
    nb = n // b
    layout = BlockCyclicLayout(nb, p)
    if b_f is None:
        b_f = (b // 2 // k) * k
    if not 0 <= b_f <= b:
        raise ValueError(f"b_f={b_f} outside [0, {b}]")
    b_p = b - b_f
    array = LinearPEArray(k) if use_hw_model and b_f > 0 else None
    if array is not None and (b_f % k or b % k or (b % (p - 1) == 0 and (b // (p - 1)) % k)):
        raise ValueError("use_hw_model requires b, b_f and b/(p-1) to be multiples of k")

    # Physically partitioned storage: node i only ever touches store[i].
    store: list[dict[tuple[int, int], np.ndarray]] = [dict() for _ in range(p)]
    for u in range(nb):
        for v in range(nb):
            store[layout.owner(u, v)][(u, v)] = a[
                u * b : (u + 1) * b, v * b : (v + 1) * b
            ].copy()

    messages = 0
    counts = {"opLU": 0, "opL": 0, "opU": 0, "opMM": 0, "opMS": 0}

    def region(node: int, u: int, v: int) -> str:
        return f"dram{node}/A[{u},{v}]"

    def send_block(src: int, dst: int, key_src, key_dst, block: np.ndarray) -> None:
        """Move a block copy between node stores (an MPI message)."""
        nonlocal messages
        store[dst][key_dst] = block.copy()
        messages += 1

    for t in range(nb):
        owner = layout.panel_owner(t)
        own = store[owner]
        m = nb - t - 1
        # --- Step 1: opLU on the diagonal block (owner CPU). -------------
        if guard:
            guard.begin_write(region(owner, t, t), f"cpu{owner}")
        own[(t, t)] = getrf_nopiv(own[(t, t)])
        if guard:
            guard.end_write(region(owner, t, t), f"cpu{owner}")
        counts["opLU"] += 1
        l00, u00 = split_lu(own[(t, t)])
        # --- Step 1/2: opL and opU on the panel (owner CPU). --------------
        for u in range(t + 1, nb):
            if guard:
                guard.begin_write(region(owner, u, t), f"cpu{owner}")
            own[(u, t)] = trsm_upper_right(u00, own[(u, t)])
            if guard:
                guard.end_write(region(owner, u, t), f"cpu{owner}")
            counts["opL"] += 1
        for v in range(t + 1, nb):
            if guard:
                guard.begin_write(region(owner, t, v), f"cpu{owner}")
            own[(t, v)] = trsm_lower_left_unit(l00, own[(t, v)])
            if guard:
                guard.end_write(region(owner, t, v), f"cpu{owner}")
            counts["opU"] += 1
        # --- Step 3: cooperative opMM on the p-1 workers, opMS at the
        #     block's storage node. -----------------------------------------
        workers = [i for i in range(p) if i != owner]
        for u in range(t + 1, nb):
            for v in range(t + 1, nb):
                c_blk = own[(u, t)]  # b x b
                d_blk = own[(t, v)]  # b x b
                cols_per_worker = _split_columns(b, len(workers))
                update = np.empty((b, b))
                col0 = 0
                for w, ncols in zip(workers, cols_per_worker):
                    cols = slice(col0, col0 + ncols)
                    # Owner ships C and the worker's D columns.
                    send_block(owner, w, (u, t), ("C", u, t), c_blk)
                    send_block(owner, w, (t, v), ("D", t, v), d_blk[:, cols])
                    if guard:
                        guard.grant(region(owner, u, t), f"cpu{w}")
                        guard.grant(region(owner, t, v), f"cpu{w}")
                    c_local = store[w].pop(("C", u, t))
                    d_local = store[w].pop(("D", t, v))
                    part = np.empty((b, ncols))
                    # FPGA share: top b_f rows; CPU share: the rest.
                    if b_f > 0:
                        if guard:
                            guard.begin_write(f"sram{w}/E[{u},{v}]", f"fpga{w}")
                        if array is not None:
                            acc = np.zeros((b_f, ncols))
                            for s in range(b // k):
                                cs = c_local[:b_f, s * k : (s + 1) * k]
                                ds = d_local[s * k : (s + 1) * k, :]
                                acc += array.multiply(cs, ds).product
                            part[:b_f] = acc
                        else:
                            part[:b_f] = gemm(c_local[:b_f], d_local)
                        if guard:
                            guard.end_write(f"sram{w}/E[{u},{v}]", f"fpga{w}")
                            guard.grant(f"sram{w}/E[{u},{v}]", f"cpu{w}")
                            guard.read(f"sram{w}/E[{u},{v}]", f"cpu{w}")
                    if b_p > 0:
                        part[b_f:] = gemm(c_local[b_f:], d_local)
                    update[:, cols] = part
                    col0 += ncols
                counts["opMM"] += 1
                # opMS at the node that stores A[u, v].
                dest = layout.owner(u, v)
                for w, ncols in zip(workers, cols_per_worker):
                    messages += 1 if w != dest else 0
                if guard:
                    guard.begin_write(region(dest, u, v), f"cpu{dest}")
                store[dest][(u, v)] = store[dest][(u, v)] - update
                if guard:
                    guard.end_write(region(dest, u, v), f"cpu{dest}")
                counts["opMS"] += 1

    # Assemble the packed factors from the distributed stores.
    lu = np.empty((n, n))
    for u in range(nb):
        for v in range(nb):
            lu[u * b : (u + 1) * b, v * b : (v + 1) * b] = store[layout.owner(u, v)][(u, v)]
    return FunctionalLuResult(
        lu=lu, op_counts=counts, messages=messages, guard=guard, node_stores=store
    )


def _split_columns(b: int, workers: int) -> list[int]:
    """Split b columns as evenly as possible over the workers."""
    base = b // workers
    extra = b % workers
    return [base + (1 if i < extra else 0) for i in range(workers)]
