"""Data layout for the distributed LU design (Section 5.1.3).

The matrix is partitioned into ``b x b`` blocks ``A_uv``.  Node ``P_i``
stores block row ``i`` and block column ``i`` (their parts at or beyond
the diagonal), then row/column ``i+p``, ``i+2p``, ... -- a cyclic
assignment of "border strips".  Consequently:

* block ``(u, v)`` lives on node ``min(u, v) mod p``;
* the whole panel of iteration ``t`` (blocks ``(u, t)`` and ``(t, v)``,
  ``u, v >= t``) lives on node ``t mod p``, so opLU/opL/opU read only
  local data -- the property the schedule depends on.

The paper routes opMM outputs ``A'_uv`` "to P_t'' where t'' = max{u,v}";
with this layout the node that *stores* (and must subtract into) ``A_uv``
is ``min(u,v) mod p``, and that is where we send them -- reading ``max``
as a typo for ``min`` keeps every access local and the dataflow
consistent (documented in DESIGN.md).
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["BlockCyclicLayout"]


@dataclass(frozen=True)
class BlockCyclicLayout:
    """Strip-cyclic block ownership for an (n/b) x (n/b) block grid."""

    nb: int  # blocks per dimension
    p: int  # nodes

    def __post_init__(self) -> None:
        if self.nb < 1:
            raise ValueError(f"nb must be >= 1, got {self.nb}")
        if self.p < 1:
            raise ValueError(f"p must be >= 1, got {self.p}")

    def _check(self, u: int, v: int) -> None:
        if not (0 <= u < self.nb and 0 <= v < self.nb):
            raise ValueError(f"block ({u}, {v}) outside {self.nb} x {self.nb} grid")

    def owner(self, u: int, v: int) -> int:
        """The node storing block (u, v): ``min(u, v) mod p``."""
        self._check(u, v)
        return min(u, v) % self.p

    def panel_owner(self, t: int) -> int:
        """The node that factorises panel ``t`` (owns strip t)."""
        if not 0 <= t < self.nb:
            raise ValueError(f"panel {t} outside grid of {self.nb}")
        return t % self.p

    def blocks_on(self, node: int) -> list[tuple[int, int]]:
        """All blocks stored on ``node`` (row-major order)."""
        if not 0 <= node < self.p:
            raise ValueError(f"node {node} out of range for p={self.p}")
        return [
            (u, v)
            for u in range(self.nb)
            for v in range(self.nb)
            if self.owner(u, v) == node
        ]

    def strip_members(self, t: int) -> list[tuple[int, int]]:
        """The blocks of border strip ``t``: row t and column t from (t, t)."""
        if not 0 <= t < self.nb:
            raise ValueError(f"strip {t} outside grid")
        row = [(t, v) for v in range(t, self.nb)]
        col = [(u, t) for u in range(t + 1, self.nb)]
        return row + col

    def counts(self) -> list[int]:
        """Blocks stored per node (for balance checks)."""
        out = [0] * self.p
        for u in range(self.nb):
            for v in range(self.nb):
                out[self.owner(u, v)] += 1
        return out
