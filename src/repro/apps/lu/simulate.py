"""Discrete-event simulation of the distributed LU designs (Section 5.1.3).

Simulates the paper's schedule faithfully at the opMM/superstripe level:

* In iteration ``t`` the owner ``P_{t mod p}`` runs opLU, then the m
  opL/opU pairs, on its processor (atomic routines -- its sends happen
  *between* routines, which is exactly the effect the paper blames for
  the measured-vs-predicted gap);
* after each routine pair the owner ships the input stripes for up to
  ``l`` ready opMMs to the other ``p-1`` nodes (Equation 5's throttle),
  and ships any remainder after the panel completes;
* every worker pipelines each opMM: per superstripe it receives the
  stripe data (T_comm), stages the FPGA's share over the B_d channel
  (T_mem), kicks the FPGA (T_f share) and runs its own gemm share (T_p),
  so the Equation-4 balance emerges from resource contention rather than
  being scripted;
* each opMM's partial results go to the block's storage node, whose sink
  process applies opMS; the next iteration's owner blocks on the opMS
  completions its panel needs (the recursion on A_11).

The same machinery runs the baselines: ``b_f = 0`` is the
Processor-only design, ``b_f = b`` the FPGA-only design.

Granularity: stripes are aggregated into ``superstripes`` chunks per
opMM (default 4) to bound the event count at scale; a single cooperative
block multiply can be simulated at true stripe granularity with
:func:`simulate_block_mm` (used for Figure 5).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ...core.partition import LuStripePartition, lu_stripe_partition
from ...hw.mm_design import MatrixMultiplyDesign
from ...kernels.flops import getrf_flops, trsm_flops
from ...machine.system import MachineSpec, ReconfigurableSystem
from ...mpi import Communicator
from ...sim import Trace

__all__ = ["LuSimConfig", "LuSimResult", "simulate_lu", "simulate_block_mm"]


@dataclass(frozen=True)
class LuSimConfig:
    """Everything a distributed-LU simulation run needs."""

    n: int
    b: int
    k: int
    b_f: int  # rows of each block product computed on the FPGA
    l: int  # opMMs shipped per owner routine (Eq. 5); 0 = ship at end
    superstripes: int = 4  # event-granularity chunks per opMM
    overlap: bool = True  # False: stage everything before computing (ablation)
    collect_results: bool = True  # model A'_uv collection + opMS
    cpu_mm_kernel: str = "dgemm"
    iterations: Optional[int] = None  # simulate only the first N iterations
                                      # (Figure 6 uses iterations=1)

    def __post_init__(self) -> None:
        if self.n < self.b or self.n % self.b:
            raise ValueError(f"b={self.b} must divide n={self.n}")
        if not 0 <= self.b_f <= self.b:
            raise ValueError(f"b_f={self.b_f} outside [0, {self.b}]")
        if self.b % self.k:
            raise ValueError(f"b={self.b} must be a multiple of k={self.k}")
        if self.l < 0:
            raise ValueError(f"l must be >= 0, got {self.l}")
        if self.superstripes < 1 or self.superstripes > self.b // self.k:
            raise ValueError(
                f"superstripes must be in [1, b/k] = [1, {self.b // self.k}]"
            )

    @property
    def nb(self) -> int:
        return self.n // self.b

    @property
    def b_p(self) -> int:
        return self.b - self.b_f


@dataclass
class LuSimResult:
    """Measured outcome of one simulated run."""

    elapsed: float
    useful_flops: float
    config: LuSimConfig
    trace: Optional[Trace]
    cpu_busy: list[float] = field(default_factory=list)
    fpga_busy: list[float] = field(default_factory=list)
    network_bytes: float = 0.0

    @property
    def gflops(self) -> float:
        return self.useful_flops / self.elapsed / 1e9 if self.elapsed > 0 else 0.0

    @property
    def cpu_utilisation(self) -> float:
        return sum(self.cpu_busy) / (len(self.cpu_busy) * self.elapsed) if self.elapsed else 0.0

    @property
    def fpga_utilisation(self) -> float:
        return sum(self.fpga_busy) / (len(self.fpga_busy) * self.elapsed) if self.elapsed else 0.0


def released_after_opl(t: int, j: int) -> list[tuple[int, int]]:
    """opMM jobs enabled by opL[t, t+j]: products (t+j, v) with v < t+j.

    (They additionally need opU[t, v], already done for v < t+j.)
    """
    w = t + j
    return [(w, v) for v in range(t + 1, w)]


def released_after_opu(t: int, j: int) -> list[tuple[int, int]]:
    """opMM jobs enabled by opU[t, t+j]: products (u, t+j) with u <= t+j."""
    w = t + j
    return [(u, w) for u in range(t + 1, w + 1)]


def iteration_jobs(t: int, nb: int) -> list[tuple[int, int]]:
    """All opMM jobs of iteration t in release (send/recv) order."""
    out: list[tuple[int, int]] = []
    for j in range(1, nb - t):
        out.extend(released_after_opl(t, j))
        out.extend(released_after_opu(t, j))
    return out


def _analytic_lu(spec, config, design):
    # Deferred import: .analytic imports this module's schedule helpers.
    from .analytic import analytic_lu

    return analytic_lu(spec, config, design)


def _analytic_block_mm(spec, b, b_f, k, design, stripes):
    from .analytic import analytic_block_mm

    return analytic_block_mm(spec, b, b_f, k, design, stripes)


def simulate_lu(
    spec: MachineSpec,
    config: LuSimConfig,
    design: Optional[MatrixMultiplyDesign] = None,
    trace: bool = False,
    node_specs: Optional[list] = None,
    monitor: Optional[object] = None,
    faults: Optional[object] = None,
    fast_path: Optional[str] = None,
) -> LuSimResult:
    """Run the distributed LU schedule on a simulated machine.

    ``monitor`` is an optional :class:`repro.sim.SimMonitor`; attaching
    one records DES internals (event counts, calendar-bucket depths) at
    the cost of the slower counting run loop.  ``faults`` is an optional
    :class:`repro.faults.FaultInjector` (anything with ``install``),
    hooked in after the FPGAs are configured and before the schedule
    processes spawn; with ``faults=None`` the run is untouched.

    ``fast_path`` selects the analytic no-contention fast path:
    ``"auto"`` (bitwise-identical analytic replay when eligible, DES
    otherwise), ``"on"`` (raise if ineligible), ``"off"`` (always DES),
    or None for the process default (``REPRO_FAST_PATH``, else auto).
    """
    from ...sim.analytic import try_fast_path

    fast = try_fast_path(
        "lu",
        lambda: _analytic_lu(spec, config, design),
        mode=fast_path,
        trace=trace,
        node_specs=node_specs,
        monitor=monitor,
        faults=faults,
    )
    if fast is not None:
        return fast
    system = ReconfigurableSystem(spec, trace=trace, node_specs=node_specs)
    if not trace:
        system.sim.trace = None
    if monitor is not None:
        system.sim.attach_monitor(monitor)
    if design is None:
        design = MatrixMultiplyDesign.for_device(spec.node.fpga.device, k=config.k)
    system.configure_fpgas(lambda: design)
    if faults is not None:
        faults.install(system)
    comm = Communicator(system)
    sim = system.sim
    p = spec.p
    if p < 2:
        raise ValueError("the distributed LU design needs p >= 2 nodes")
    nb, b, b_f, b_p, S = config.nb, config.b, config.b_f, config.b_p, config.superstripes
    bw = 8
    cpu_rate = spec.node.processor.sustained_flops(config.cpu_mm_kernel)

    # Per-worker, per-opMM data sizes (physical: C broadcast, D scattered).
    c_bytes = b * b * bw
    d_bytes = b * b * bw // (p - 1)
    job_bytes = c_bytes + d_bytes
    stage_bytes = (b_f * b + b * b // (p - 1)) * bw  # FPGA share staged over B_d
    # (b/k stripes) x (b_f * b/(p-1) cycles per stripe) per opMM.
    fpga_cycles_per_job = b_f * b * b / ((p - 1) * config.k)
    cpu_flops_per_job = 2.0 * b_p * b * (b / (p - 1))
    fpga_flops_per_job = 2.0 * b_f * b * (b / (p - 1))
    result_bytes = b * b * bw // (p - 1)  # each worker's E columns

    ms_events: dict[tuple[int, int, int], object] = {}

    def ms_event(t: int, u: int, v: int):
        key = (t, u, v)
        if key not in ms_events:
            ms_events[key] = sim.event(name=f"ms[{t},{u},{v}]")
        return ms_events[key]

    def workers_of(t: int) -> list[int]:
        owner = t % p
        return [i for i in range(p) if i != owner]

    # ------------------------------------------------------------- owner

    def send_job(t: int, u: int, v: int):
        """Owner ships one opMM's stripes to all workers, superstripe-wise."""
        owner = t % p
        for s in range(S):
            sends = [
                sim.process(
                    comm.send(owner, w, nbytes=job_bytes / S, tag=("mm", t, u, v, s))
                )
                for w in workers_of(t)
            ]
            yield sim.all_of(sends)

    def owner_iteration(node, t: int):
        m = nb - t - 1
        owner = t % p
        # The panel reads strip t as updated by iteration t-1's opMS.
        if t > 0 and config.collect_results:
            waits = [ms_event(t - 1, u, t) for u in range(t, nb)]
            waits += [ms_event(t - 1, t, v) for v in range(t + 1, nb)]
            yield sim.all_of(waits)
        yield from node.cpu_run("dgetrf", getrf_flops(b), label=f"opLU[{t}]")
        pending: list[tuple[int, int]] = []

        def ship(limit: int):
            for _ in range(min(limit, len(pending))):
                u, v = pending.pop(0)
                yield from send_job(t, u, v)

        for j in range(1, m + 1):
            yield from node.cpu_run("dtrsm", trsm_flops(b, b), label=f"opL[{t},{t + j}]")
            pending.extend(released_after_opl(t, j))
            yield from ship(config.l)
            yield from node.cpu_run("dtrsm", trsm_flops(b, b), label=f"opU[{t},{t + j}]")
            pending.extend(released_after_opu(t, j))
            yield from ship(config.l)
        yield from ship(len(pending))

    # ------------------------------------------------------------- worker

    def worker_iteration(node, i: int, t: int):
        owner = t % p
        for u, v in iteration_jobs(t, nb):
            fpga_done = sim.event(name=f"fpga[{i},{t},{u},{v}]")
            if config.overlap:
                started = False
                for s in range(S):
                    yield from comm.recv(i, owner, tag=("mm", t, u, v, s))
                    if b_f > 0:
                        yield from node.dram_to_fpga(stage_bytes / S, label=f"stage[{t},{u},{v}]")
                        if not started:
                            sim.process(
                                fpga_job(node, i, fpga_done, fpga_cycles_per_job, t, u, v)
                            )
                            started = True
                    if b_p > 0:
                        yield from node.cpu_run(
                            config.cpu_mm_kernel,
                            cpu_flops_per_job / S,
                            label=f"gemm[{t},{u},{v}]",
                        )
                if not started:
                    fpga_done.succeed()
            else:
                # Ablation: no overlap -- receive and stage everything,
                # then compute.
                for s in range(S):
                    yield from comm.recv(i, owner, tag=("mm", t, u, v, s))
                if b_f > 0:
                    yield from node.dram_to_fpga(stage_bytes, label=f"stage[{t},{u},{v}]")
                    sim.process(fpga_job(node, i, fpga_done, fpga_cycles_per_job, t, u, v))
                else:
                    fpga_done.succeed()
                if b_p > 0:
                    yield from node.cpu_run(
                        config.cpu_mm_kernel, cpu_flops_per_job, label=f"gemm[{t},{u},{v}]"
                    )
            yield fpga_done
            if config.collect_results:
                dest = min(u, v) % p
                if dest != i:
                    yield from comm.send(
                        i, dest, nbytes=result_bytes, tag=("ms", t, u, v, i)
                    )
                else:
                    ev = local_part_event(i, t, u, v)
                    if not ev.triggered:
                        ev.succeed()
                    yield ev

    def fpga_job(node, i: int, done_event, cycles: float, t: int, u: int, v: int):
        yield from node.fpga_run_cycles(
            cycles, label=f"mm[{t},{u},{v}]", flops=fpga_flops_per_job
        )
        done_event.succeed()

    # ---------------------------------------------------- opMS sink per node

    local_ms_parts: dict[tuple[int, int, int, int], object] = {}

    def local_part_event(i: int, t: int, u: int, v: int):
        """Get-or-create the event marking a worker's locally-kept part.

        The worker succeeds it when its share of A'_uv is ready; the sink
        only waits on it.
        """
        key = (i, t, u, v)
        ev = local_ms_parts.get(key)
        if ev is None:
            ev = sim.event(name=f"local_ms[{i},{t},{u},{v}]")
            local_ms_parts[key] = ev
        return ev

    def ms_sink(node, i: int):
        """Receives A'_uv parts and applies the opMS subtractions."""
        for t in range(n_iters):
            owner = t % p
            my_jobs = [
                (u, v) for (u, v) in iteration_jobs(t, nb) if min(u, v) % p == i
            ]
            for u, v in my_jobs:
                recvs = []
                for w in workers_of(t):
                    if w == i:
                        recvs.append(local_part_event(i, t, u, v))
                    else:
                        recvs.append(
                            sim.process(comm.recv(i, w, tag=("ms", t, u, v, w)))
                        )
                yield sim.all_of(recvs)
                # The subtraction itself: b^2 flops, tiny but real.
                yield from node.cpu_run(
                    config.cpu_mm_kernel, float(b * b), label=f"opMS[{t},{u},{v}]"
                )
                ms_event(t, u, v).succeed()

    # ------------------------------------------------------------ node mains

    n_iters = nb if config.iterations is None else min(config.iterations, nb)

    def node_main(i: int):
        node = system.nodes[i]
        for t in range(n_iters):
            if i == t % p:
                yield from owner_iteration(node, t)
            else:
                yield from worker_iteration(node, i, t)

    for i in range(p):
        sim.process(node_main(i), name=f"node{i}")
        if config.collect_results:
            sim.process(ms_sink(system.nodes[i], i), name=f"ms_sink{i}")

    elapsed = system.run()
    return LuSimResult(
        elapsed=elapsed,
        useful_flops=(2.0 / 3.0) * float(config.n) ** 3,
        config=config,
        trace=system.trace,
        cpu_busy=[nd.cpu_busy_time for nd in system.nodes],
        fpga_busy=[nd.fpga.busy_time for nd in system.nodes],
        network_bytes=system.network.bytes_moved,
    )


def simulate_block_mm(
    spec: MachineSpec,
    b: int,
    b_f: int,
    k: int,
    design: Optional[MatrixMultiplyDesign] = None,
    stripes: Optional[int] = None,
    trace: bool = False,
    fast_path: Optional[str] = None,
) -> float:
    """Latency of ONE cooperative b x b block multiplication (Figure 5).

    Node 0 streams the stripe pairs; nodes 1..p-1 pipeline receive /
    stage / compute, splitting rows b_f : b - b_f between FPGA and CPU.
    ``stripes`` defaults to the true count ``b / k``.  ``fast_path``
    selects the analytic closed form (see :func:`simulate_lu`).
    """
    from ...sim.analytic import try_fast_path

    fast = try_fast_path(
        "block_mm",
        lambda: _analytic_block_mm(spec, b, b_f, k, design, stripes),
        mode=fast_path,
        trace=trace,
    )
    if fast is not None:
        return fast
    if not 0 <= b_f <= b:
        raise ValueError(f"b_f={b_f} outside [0, {b}]")
    if b % k:
        raise ValueError(f"b={b} must be a multiple of k={k}")
    system = ReconfigurableSystem(spec, trace=trace)
    if not trace:
        system.sim.trace = None
    if design is None:
        design = MatrixMultiplyDesign.for_device(spec.node.fpga.device, k=k)
    system.configure_fpgas(lambda: design)
    comm = Communicator(system)
    sim = system.sim
    p = spec.p
    S = stripes if stripes is not None else b // k
    bw = 8
    b_p = b - b_f
    cpu_rate = spec.node.processor.sustained_flops("dgemm")

    stripe_bytes = 2 * b * k * bw  # one C column stripe + one D row stripe
    stage_bytes = (b_f * k + b * k / (p - 1)) * bw
    fpga_cycles = b_f * (b / (p - 1))  # per stripe
    cpu_flops = 2.0 * b_p * k * (b / (p - 1))  # per stripe

    def sender():
        for s in range(S):
            sends = [
                sim.process(comm.send(0, w, nbytes=stripe_bytes, tag=("stripe", s)))
                for w in range(1, p)
            ]
            yield sim.all_of(sends)

    def fpga_run(node, done):
        yield from node.fpga_run_cycles(fpga_cycles * S, label="mm", flops=0.0)
        done.succeed()

    def worker(i: int):
        node = system.nodes[i]
        done = sim.event()
        started = False
        for s in range(S):
            yield from comm.recv(i, 0, tag=("stripe", s))
            if b_f > 0:
                yield from node.dram_to_fpga(stage_bytes, label=f"stage{s}")
                if not started:
                    sim.process(fpga_run(node, done))
                    started = True
            if b_p > 0:
                yield from node.cpu_run("dgemm", cpu_flops, label=f"gemm{s}")
        if started:
            yield done

    sim.process(sender(), name="sender")
    for i in range(1, p):
        sim.process(worker(i), name=f"worker{i}")
    return system.run()
