"""The LU task DAG (Section 5.1.2 dependencies, concrete per run).

Builds the complete :class:`~repro.core.tasks.TaskGraph` for a block LU
of ``n/b x n/b`` blocks: per iteration ``t`` one opLU, ``m`` opL,
``m`` opU, ``m^2`` opMM and ``m^2`` opMS tasks (``m = n/b - t - 1``),
wired with the paper's dependencies:

* opL/opU need the iteration's opLU;
* opMM(u, v) needs opL(u) and opU(v);
* opMS(u, v) needs opMM(u, v);
* every task also needs the previous iteration's opMS on the blocks it
  reads (the recursion on ``A_11``).

Used by the benchmarks for critical-path analysis and by tests to check
the schedule's operation counts against the closed forms.
"""

from __future__ import annotations

from ...core.tasks import Task, TaskGraph
from ...kernels.flops import gemm_flops, getrf_flops, trsm_flops
from .layout import BlockCyclicLayout

__all__ = ["build_lu_taskgraph", "lu_op_counts"]


def lu_op_counts(nb: int) -> dict[str, int]:
    """Closed-form task counts for an nb x nb block LU."""
    if nb < 1:
        raise ValueError(f"nb must be >= 1, got {nb}")
    m_values = [nb - t - 1 for t in range(nb)]
    return {
        "opLU": nb,
        "opL": sum(m_values),
        "opU": sum(m_values),
        "opMM": sum(m * m for m in m_values),
        "opMS": sum(m * m for m in m_values),
    }


def _ms_id(t: int, u: int, v: int) -> str:
    return f"opMS[{t},{u},{v}]"


def build_lu_taskgraph(n: int, b: int, p: int) -> TaskGraph:
    """The full LU DAG for an n x n matrix with b x b blocks on p nodes."""
    if n < b or n % b:
        raise ValueError(f"b={b} must divide n={n}")
    nb = n // b
    layout = BlockCyclicLayout(nb, p)
    g = TaskGraph()

    def prev_ms(t: int, u: int, v: int) -> tuple[str, ...]:
        """Dependency on the previous iteration's update of block (u, v)."""
        if t == 0:
            return ()
        return (_ms_id(t - 1, u, v),)

    for t in range(nb):
        owner = layout.panel_owner(t)
        lu_id = f"opLU[{t}]"
        g.add(
            Task(
                lu_id,
                "opLU",
                node=owner,
                flops=getrf_flops(b),
                deps=prev_ms(t, t, t),
                payload={"t": t},
            )
        )
        for u in range(t + 1, nb):
            g.add(
                Task(
                    f"opL[{t},{u}]",
                    "opL",
                    node=owner,
                    flops=trsm_flops(b, b),
                    deps=(lu_id,) + prev_ms(t, u, t),
                    payload={"t": t, "u": u},
                )
            )
        for v in range(t + 1, nb):
            g.add(
                Task(
                    f"opU[{t},{v}]",
                    "opU",
                    node=owner,
                    flops=trsm_flops(b, b),
                    deps=(lu_id,) + prev_ms(t, t, v),
                    payload={"t": t, "v": v},
                )
            )
        for u in range(t + 1, nb):
            for v in range(t + 1, nb):
                mm_id = f"opMM[{t},{u},{v}]"
                g.add(
                    Task(
                        mm_id,
                        "opMM",
                        # Cooperative across the p-1 non-owner nodes; tagged
                        # with the owner whose sends feed it.
                        node=owner,
                        flops=gemm_flops(b, b, b),
                        deps=(f"opL[{t},{u}]", f"opU[{t},{v}]"),
                        payload={"t": t, "u": u, "v": v, "cooperative": True},
                    )
                )
                g.add(
                    Task(
                        _ms_id(t, u, v),
                        "opMS",
                        node=layout.owner(u, v),
                        flops=float(b * b),
                        deps=(mm_id,) + prev_ms(t, u, v),
                        payload={"t": t, "u": u, "v": v},
                    )
                )
    return g
