"""Extension application: distributed hybrid matrix multiplication.

The paper's model targets "a class of applications" of which LU and FW
are the worked examples; this package applies it to the ring-allgather
C = A x B of the authors' earlier ICPADS 2006 paper [22], exercising
Equation (2) (the network-aware flop split) directly.
"""

from .design import MmComparison, MmDesign
from .functional import FunctionalMmResult, distributed_ring_mm
from .partition import COL_TILE, MmPartition, mm_row_partition
from .simulate import MmSimConfig, MmSimResult, simulate_mm

__all__ = [
    "COL_TILE",
    "FunctionalMmResult",
    "MmComparison",
    "MmDesign",
    "MmPartition",
    "MmSimConfig",
    "MmSimResult",
    "distributed_ring_mm",
    "mm_row_partition",
    "simulate_mm",
]
