"""Analytic (DES-free) replay of the ring-allgather MM simulation.

The ring schedule of :func:`repro.apps.mm.simulate.simulate_mm` is
fully symmetric: every node runs the identical recv / stage / compute /
forward pipeline, each network link pair (a node's egress, its right
neighbour's ingress) carries exactly one panel per step, and every
other resource is private to its node's process.  There is no
cross-process contention at all, so the whole run reduces to one
node's timeline folded over ring steps -- with the panel arrival of
step ``s`` equal to the (identical) neighbour's send completion of
step ``s - 1``.

:func:`analytic_mm` replays that fold with the exact float arithmetic
of the DES (same operations, same order, ``end - start`` busy
accounting), so every field of the returned :class:`MmSimResult` is
bitwise identical to the simulation.
"""

from __future__ import annotations

from typing import Optional

from ...hw.mm_design import MatrixMultiplyDesign
from ...machine.system import MachineSpec
from ...sim.analytic import FastPathUnsupported
from .simulate import MmSimConfig, MmSimResult

__all__ = ["analytic_mm"]


def analytic_mm(
    spec: MachineSpec,
    config: MmSimConfig,
    design: Optional[MatrixMultiplyDesign] = None,
) -> MmSimResult:
    """Replay the ring-MM schedule without a DES (bitwise exact)."""
    if design is None:
        design = MatrixMultiplyDesign.for_device(spec.node.fpga.device, k=config.k)
    p = spec.p
    r = config.validate_for(p)
    n, k, m_f = config.n, config.k, config.m_f
    m_p = r - m_f
    bw = 8
    panel_bytes = float(r) * n * bw
    stage_bytes = (m_f * r) * bw + panel_bytes if m_f else 0.0
    fpga_cycles = m_f * n * r / k
    cpu_flops = 2.0 * m_p * r * n

    net = spec.network
    panel_size = int(panel_bytes)  # comm.send coerces nbytes to int
    svc = net.latency + panel_size / net.bandwidth
    freq = design.freq_hz
    b_d = min(8.0 * freq, spec.node.fpga.dram_link_bandwidth)
    rate = spec.node.processor.sustained_flops(config.cpu_kernel)
    if svc <= 0.0 or rate <= 0.0:
        raise FastPathUnsupported(
            "degenerate timing parameters (zero-cost ops would tie)",
            reason="unsupported-config",
        )

    t = 0.0
    cpu_busy = 0.0
    fpga_busy = 0.0
    arrival = 0.0  # completion time of the panel tagged ("ring", s)
    for s in range(p):
        if s > 0 and arrival > t:
            t = arrival
        if m_f > 0:
            if config.overlap:
                fill = stage_bytes / max(r // k, 1)
                t = t + (0.0 + fill / b_d)
                f0 = t
                fpga_done = t + fpga_cycles / freq
                t = t + (0.0 + (stage_bytes - fill) / b_d)
            else:
                t = t + (0.0 + stage_bytes / b_d)
                f0 = t
                fpga_done = t + fpga_cycles / freq
            fpga_busy += fpga_done - f0
        else:
            fpga_done = t
        if m_p > 0:
            tc = t + cpu_flops / rate
            cpu_busy += tc - t
            t = tc
        if s < p - 1:
            t = t + svc
            arrival = t
        if fpga_done > t:
            t = fpga_done
    return MmSimResult(
        elapsed=t,
        config=config,
        trace=None,
        cpu_busy=[cpu_busy] * p,
        fpga_busy=[fpga_busy] * p,
        network_bytes=float(panel_size) * p * (p - 1) if p > 1 else 0.0,
    )
