"""Facade for the extension application: distributed hybrid C = A x B."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ...hw.mm_design import MatrixMultiplyDesign
from ...machine.system import MachineSpec
from .partition import MmPartition, mm_row_partition
from .simulate import MmSimConfig, MmSimResult, simulate_mm

__all__ = ["MmDesign", "MmComparison"]


@dataclass
class MmComparison:
    """Hybrid vs the two baselines for the ring multiplication."""

    hybrid: MmSimResult
    cpu_only: MmSimResult
    fpga_only: MmSimResult
    predicted_gflops: float

    @property
    def speedup_vs_cpu(self) -> float:
        return self.hybrid.gflops / self.cpu_only.gflops

    @property
    def speedup_vs_fpga(self) -> float:
        return self.hybrid.gflops / self.fpga_only.gflops

    @property
    def fraction_of_sum(self) -> float:
        return self.hybrid.gflops / (self.cpu_only.gflops + self.fpga_only.gflops)

    @property
    def fraction_of_predicted(self) -> float:
        return self.hybrid.gflops / self.predicted_gflops


class MmDesign:
    """The hybrid ring matrix multiplication on a given machine."""

    def __init__(self, spec: MachineSpec, n: int, k: Optional[int] = None) -> None:
        self.spec = spec
        self.design = MatrixMultiplyDesign.for_device(spec.node.fpga.device, k=k)
        self.k = self.design.k
        self.params = spec.parameters("dgemm", self.design)
        self.plan: MmPartition = mm_row_partition(n, self.k, self.params)
        self.n = n

    @property
    def predicted_gflops(self) -> float:
        """Section 4.5-style prediction: p ring steps of the step makespan."""
        total = self.spec.p * self.plan.step_makespan
        return 2.0 * float(self.n) ** 3 / total / 1e9

    def partition_params(self) -> dict:
        """The plan's partition decisions, JSON-able (run-ledger manifest)."""
        return {"m_f": self.plan.m_f, "r": self.plan.r, "k": self.k}

    def config(self, m_f: Optional[int] = None, **over) -> MmSimConfig:
        return MmSimConfig(
            n=self.n, k=self.k, m_f=self.plan.m_f if m_f is None else m_f, **over
        )

    def simulate(self, trace: bool = False, monitor=None, faults=None, **over) -> MmSimResult:
        return simulate_mm(
            self.spec,
            self.config(**over),
            design=self.design,
            trace=trace,
            monitor=monitor,
            faults=faults,
        )

    def overlap_report(self, result: Optional[MmSimResult] = None, registry=None, **over):
        """Reconcile a simulated run against ``p x`` the step makespan.

        MM's model is per ring step rather than a whole-run T_tp/T_tf
        pair, so the totals are the per-step paths times ``p`` steps:
        processor path ``t_p + t_mem + t_net``, FPGA path ``t_f`` --
        ``max`` of the two recovers :attr:`predicted_gflops`'s latency.
        """
        from types import SimpleNamespace

        from ...obs import reconcile

        if result is None:
            result = self.simulate(trace=True, **over)
        p = self.spec.p
        plan = self.plan
        prediction = SimpleNamespace(
            t_tp=p * (plan.t_p + plan.t_mem + plan.t_net),
            t_tf=p * plan.t_f,
        )
        return reconcile(
            "mm",
            result.elapsed,
            prediction,
            trace=result.trace,
            registry=registry,
            n=self.n,
            p=p,
            gflops=result.gflops,
            partition=self.partition_params(),
        )

    def simulate_cpu_only(self, trace: bool = False, **over) -> MmSimResult:
        return simulate_mm(self.spec, self.config(m_f=0, **over), design=self.design, trace=trace)

    def simulate_fpga_only(self, trace: bool = False, **over) -> MmSimResult:
        return simulate_mm(
            self.spec, self.config(m_f=self.plan.r, **over), design=self.design, trace=trace
        )

    def compare(self, **over) -> MmComparison:
        return MmComparison(
            hybrid=self.simulate(**over),
            cpu_only=self.simulate_cpu_only(**over),
            fpga_only=self.simulate_fpga_only(**over),
            predicted_gflops=self.predicted_gflops,
        )
