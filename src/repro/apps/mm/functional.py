"""Functional (real-numerics) execution of the ring-allgather MM.

Same dataflow as the timing simulation, on real matrices: per-node row
panels, the circulating B panel, the m_f/m_p row split (FPGA share
optionally on the cycle-level PE array), guard-checked coordination.
Result must equal ``A @ B``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from ...core.coordination import CoordinationGuard
from ...hw.pe_array import LinearPEArray
from ...kernels.blas import gemm

__all__ = ["FunctionalMmResult", "distributed_ring_mm"]


@dataclass
class FunctionalMmResult:
    """Outcome of a functional ring multiplication."""

    product: np.ndarray
    messages: int
    device_rows: dict[str, int]
    guard: Optional[CoordinationGuard] = None
    panels: list = field(repr=False, default_factory=list)


def distributed_ring_mm(
    a: np.ndarray,
    b: np.ndarray,
    p: int,
    m_f: Optional[int] = None,
    k: int = 2,
    use_hw_model: bool = False,
    guard: Optional[CoordinationGuard] = None,
) -> FunctionalMmResult:
    """Compute ``A @ B`` with the distributed hybrid ring schedule.

    ``m_f`` rows of each node's per-step block product go to the "FPGA"
    (cycle-level array when ``use_hw_model``); defaults to half the
    panel height rounded to ``k``.
    """
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    n = a.shape[0]
    if a.shape != (n, n) or b.shape != (n, n):
        raise ValueError(f"A and B must be square and equal-sized, got {a.shape}, {b.shape}")
    if p < 1 or n % p:
        raise ValueError(f"p={p} must divide n={n}")
    r = n // p
    if m_f is None:
        m_f = (r // 2 // k) * k
    if not 0 <= m_f <= r:
        raise ValueError(f"m_f={m_f} outside [0, {r}]")
    array = LinearPEArray(k) if use_hw_model and m_f > 0 else None
    if array is not None and (r % k or m_f % k or n % k):
        raise ValueError("use_hw_model requires n/p, m_f and n to be multiples of k")

    a_panels = [a[i * r : (i + 1) * r, :].copy() for i in range(p)]
    b_panels = [b[i * r : (i + 1) * r, :].copy() for i in range(p)]
    c_panels = [np.zeros((r, n)) for _ in range(p)]
    messages = 0
    device_rows = {"cpu": 0, "fpga": 0}

    for s in range(p):
        next_b = [None] * p
        for i in range(p):
            q = (i - s) % p  # which B panel this node holds at step s
            blk = a_panels[i][:, q * r : (q + 1) * r]  # r x r
            panel = b_panels[q]
            if guard:
                guard.begin_write(f"dram{i}/C[{s}]", f"cpu{i}")
            if m_f > 0:
                if guard:
                    guard.begin_write(f"sram{i}/C[{s}]", f"fpga{i}")
                if array is not None:
                    acc = np.zeros((m_f, n))
                    for t in range(r // k):
                        acc += array.multiply(
                            blk[:m_f, t * k : (t + 1) * k], panel[t * k : (t + 1) * k, :]
                        ).product
                    c_panels[i][:m_f] += acc
                else:
                    c_panels[i][:m_f] += gemm(blk[:m_f], panel)
                device_rows["fpga"] += m_f
                if guard:
                    guard.end_write(f"sram{i}/C[{s}]", f"fpga{i}")
                    guard.grant(f"sram{i}/C[{s}]", f"cpu{i}")
            if m_f < r:
                c_panels[i][m_f:] += gemm(blk[m_f:], panel)
                device_rows["cpu"] += r - m_f
            if guard:
                guard.end_write(f"dram{i}/C[{s}]", f"cpu{i}")
            # Forward the panel to the right neighbour for step s+1.
            if s < p - 1:
                next_b[(q + 1) % p] = panel
                messages += 1
        # (The panel identity is tracked by index q, so the "send" is the
        # message count above; payloads are the b_panels themselves.)

    product = np.vstack(c_panels) if p > 1 else c_panels[0]
    return FunctionalMmResult(
        product=product,
        messages=messages,
        device_rows=device_rows,
        guard=guard,
        panels=c_panels,
    )
