"""Partitioning for the distributed matrix-multiplication application.

This application is the paper's "class of matrix computations" beyond
the two worked examples: a ring-allgather ``C = A x B`` across p nodes
(the workload of the authors' earlier ICPADS 2006 paper [22], here
upgraded with the IPPS 2007 model).  Each node owns a row panel of A, B
and C; in each of the p ring steps a node multiplies one ``r x r`` block
of its A panel with the circulating ``r x n`` B panel (``r = n/p``).

The hybrid split assigns ``m_f`` of the panel's ``r`` C-rows to the FPGA
and the rest to the processor, balanced by **Equation (2)** --
``T_p + D_f/B_d + D_p/B_n = T_f`` -- with per-step terms:

* ``N = 2 r^2 n``        flops per step per node,
* ``D_f = (m_f r + r n) b_w``   bytes staged to the FPGA,
* ``D_p = r n b_w``      bytes of ring traffic per step,
* FPGA rate ``O_f F_f = 2 k F_f`` (the PE array sustains one MAC per PE
  per cycle on this shape, as in the LU design).

Because D_f itself depends on m_f, the solve is a short fixed point of
the closed-form Eq. (2) split (it converges in a few iterations; the
B-panel term dominates D_f so the dependence is weak).
"""

from __future__ import annotations

from dataclasses import dataclass

from ...core.parameters import SystemParameters
from ...core.partition import balance_with_network

__all__ = ["COL_TILE", "MmPartition", "mm_row_partition"]

#: Column-tile width of the FPGA's C accumulator (design constant).
COL_TILE = 512


@dataclass(frozen=True)
class MmPartition:
    """The per-step row split of the ring matrix multiplication."""

    n: int
    r: int  # panel rows per node (n / p)
    m_f: int  # C rows per step on the FPGA
    m_p: int  # C rows per step on the processor
    k: int
    t_p: float  # processor compute time per step
    t_f: float  # FPGA compute time per step
    t_mem: float  # D_f / B_d per step
    t_net: float  # D_p / B_n per step
    m_f_exact: float
    sram_words: int  # FPGA-side C working set

    @property
    def step_makespan(self) -> float:
        return max(self.t_p + self.t_mem + self.t_net, self.t_f)

    @property
    def fpga_fraction(self) -> float:
        return self.m_f / self.r if self.r else 0.0


def mm_row_partition(
    n: int, k: int, params: SystemParameters, enforce_sram: bool = True
) -> MmPartition:
    """Solve Eq. (2) for the ring-MM row split ``(m_p, m_f)``."""
    p = params.p
    if n < 1 or n % p:
        raise ValueError(f"p={p} must divide n={n}")
    r = n // p
    if r % k:
        raise ValueError(f"panel height n/p={r} must be a multiple of k={k}")
    flops_per_step = 2.0 * r * r * n
    d_p = float(r) * n * params.b_w
    b_panel_bytes = float(r) * n * params.b_w

    # Fixed point: D_f depends (weakly) on m_f through the A-stripe share.
    m_f = 0.0
    for _ in range(8):
        d_f = (m_f * r) * params.b_w + b_panel_bytes
        split = balance_with_network(flops_per_step, d_f, d_p, params)
        m_f_new = r * (split.n_f / flops_per_step)
        if abs(m_f_new - m_f) < 1e-9 * max(r, 1):
            m_f = m_f_new
            break
        m_f = m_f_new
    m_f_exact = m_f
    m_f_int = int(min(max(m_f_exact, 0.0), float(r)) // k) * k
    if enforce_sram:
        # The FPGA accumulates its C rows in column tiles of COL_TILE,
        # streaming finished tiles back to DRAM (overlapped output
        # transfer, Section 4.2); SRAM must hold one m_f x COL_TILE tile
        # (the same single-buffer convention as the LU design's
        # intermediate-result allocation).
        cap = int((params.sram_words / COL_TILE) // k) * k
        m_f_int = min(m_f_int, max(cap, 0))
    t_f = m_f_int * n * r / (k * params.f_f)
    t_p = 2.0 * (r - m_f_int) * r * n / params.cpu_flops
    t_mem = ((m_f_int * r) * params.b_w + b_panel_bytes) / params.b_d
    t_net = d_p / params.b_n
    return MmPartition(
        n=n,
        r=r,
        m_f=m_f_int,
        m_p=r - m_f_int,
        k=k,
        t_p=t_p,
        t_f=t_f,
        t_mem=t_mem,
        t_net=t_net,
        m_f_exact=m_f_exact,
        sram_words=m_f_int * COL_TILE,
    )
