"""Discrete-event simulation of the ring-allgather matrix multiplication.

Each node holds row panels of A, B and C.  In ring step ``s`` the node
multiplies one ``r x r`` block of A with the B panel currently resident
(its own at s = 0), while forwarding the panel around the ring:

    recv panel (except step 0)  -> stage FPGA share -> CPU gemm share
                                 \\-> FPGA gemm share (overlapped)
    send the panel onward (overlapped with the next step's compute
    only via the network links; CPU time is charged, per Section 4.3)

Baselines: ``m_f = 0`` is the Processor-only design, ``m_f = r`` the
FPGA-only design.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ...hw.mm_design import MatrixMultiplyDesign
from ...machine.system import MachineSpec, ReconfigurableSystem
from ...mpi import Communicator
from ...sim import Trace
from .partition import MmPartition

__all__ = ["MmSimConfig", "MmSimResult", "simulate_mm"]


@dataclass(frozen=True)
class MmSimConfig:
    """Everything a ring-MM simulation run needs."""

    n: int
    k: int
    m_f: int  # C rows per step on the FPGA (0 = CPU-only, r = FPGA-only)
    overlap: bool = True
    cpu_kernel: str = "dgemm"

    def __post_init__(self) -> None:
        if self.n < 1:
            raise ValueError(f"n must be >= 1, got {self.n}")
        if self.m_f < 0:
            raise ValueError(f"m_f must be >= 0, got {self.m_f}")

    def validate_for(self, p: int) -> int:
        if self.n % p:
            raise ValueError(f"p={p} must divide n={self.n}")
        r = self.n // p
        if self.m_f > r:
            raise ValueError(f"m_f={self.m_f} exceeds panel height r={r}")
        if self.m_f % self.k:
            raise ValueError(f"m_f={self.m_f} must be a multiple of k={self.k}")
        return r


@dataclass
class MmSimResult:
    """Measured outcome of one simulated ring multiplication."""

    elapsed: float
    config: MmSimConfig
    trace: Optional[Trace]
    cpu_busy: list[float] = field(default_factory=list)
    fpga_busy: list[float] = field(default_factory=list)
    network_bytes: float = 0.0

    @property
    def useful_flops(self) -> float:
        return 2.0 * float(self.config.n) ** 3

    @property
    def gflops(self) -> float:
        return self.useful_flops / self.elapsed / 1e9 if self.elapsed > 0 else 0.0


def _analytic_mm(spec, config, design):
    # Deferred import: .analytic imports this module's config/result types.
    from .analytic import analytic_mm

    return analytic_mm(spec, config, design)


def simulate_mm(
    spec: MachineSpec,
    config: MmSimConfig,
    design: Optional[MatrixMultiplyDesign] = None,
    trace: bool = False,
    node_specs: Optional[list] = None,
    monitor: Optional[object] = None,
    faults: Optional[object] = None,
    fast_path: Optional[str] = None,
) -> MmSimResult:
    """Run the ring-allgather MM schedule on a simulated machine.

    ``monitor`` is an optional :class:`repro.sim.SimMonitor`; attaching
    one records DES internals at the cost of the counting run loop.
    ``faults`` is an optional :class:`repro.faults.FaultInjector`
    (anything with ``install``), hooked in after the FPGAs are
    configured and before the schedule processes spawn.

    ``fast_path`` selects the analytic no-contention fast path
    (``"auto"`` / ``"on"`` / ``"off"``; None = process default); see
    :mod:`repro.sim.analytic`.  Analytic results are bitwise identical.
    """
    from ...sim.analytic import try_fast_path

    fast = try_fast_path(
        "mm",
        lambda: _analytic_mm(spec, config, design),
        mode=fast_path,
        trace=trace,
        node_specs=node_specs,
        monitor=monitor,
        faults=faults,
    )
    if fast is not None:
        return fast
    system = ReconfigurableSystem(spec, trace=trace, node_specs=node_specs)
    if not trace:
        system.sim.trace = None
    if monitor is not None:
        system.sim.attach_monitor(monitor)
    if design is None:
        design = MatrixMultiplyDesign.for_device(spec.node.fpga.device, k=config.k)
    system.configure_fpgas(lambda: design)
    if faults is not None:
        faults.install(system)
    comm = Communicator(system)
    sim = system.sim
    p = spec.p
    r = config.validate_for(p)
    n, k, m_f = config.n, config.k, config.m_f
    m_p = r - m_f
    bw = 8
    panel_bytes = float(r) * n * bw
    stage_bytes = (m_f * r) * bw + panel_bytes if m_f else 0.0
    fpga_cycles = m_f * n * r / k  # (m_f x r) @ (r x n) on the array
    cpu_flops = 2.0 * m_p * r * n
    fpga_flops = 2.0 * m_f * r * n

    def fpga_step(node, done, s):
        yield from node.fpga_run_cycles(fpga_cycles, label=f"mm[{s}]", flops=fpga_flops)
        done.succeed()

    def node_main(i: int):
        node = system.nodes[i]
        right = (i + 1) % p
        left = (i - 1) % p
        for s in range(p):
            if s > 0:
                yield from comm.recv(i, left, tag=("ring", s))
            fpga_done = sim.event(name=f"fpga[{i},{s}]")
            if m_f > 0:
                if config.overlap:
                    # Stage a pipeline-fill fraction, launch, stream the rest.
                    fill = stage_bytes / max(r // k, 1)
                    yield from node.dram_to_fpga(fill, label=f"stage[{s}]")
                    sim.process(fpga_step(node, fpga_done, s))
                    yield from node.dram_to_fpga(stage_bytes - fill, label=f"stage[{s}]")
                else:
                    yield from node.dram_to_fpga(stage_bytes, label=f"stage[{s}]")
                    sim.process(fpga_step(node, fpga_done, s))
            else:
                fpga_done.succeed()
            if m_p > 0:
                yield from node.cpu_run(config.cpu_kernel, cpu_flops, label=f"gemm[{s}]")
            if s < p - 1:
                # Forward the panel for the next step (CPU time, Sec. 4.3).
                yield from comm.send(i, right, nbytes=panel_bytes, tag=("ring", s + 1))
            yield fpga_done

    for i in range(p):
        sim.process(node_main(i), name=f"node{i}")
    elapsed = system.run()
    return MmSimResult(
        elapsed=elapsed,
        config=config,
        trace=system.trace,
        cpu_busy=[nd.cpu_busy_time for nd in system.nodes],
        fpga_busy=[nd.fpga.busy_time for nd in system.nodes],
        network_bytes=system.network.bytes_moved,
    )
