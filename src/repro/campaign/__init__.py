"""Statistical campaign observatory: replicated runs, distributions, drift.

A single simulation answers "what is the makespan?"; a *campaign*
answers "what is the makespan *distribution*, and did it move?".  This
package enumerates (app x preset x fault-scenario) cells, runs each one
``replicates`` times under seeded randomized perturbations of the
machine model (bandwidth/DRAM/clock jitter plus arrival-noise stalls),
aggregates per-cell distributions into schema-versioned manifests in
the run ledger, and statistically compares campaigns with a
Mann-Whitney rank test plus effect-size gating.

Layers:

* :mod:`repro.campaign.seeds` -- master-seed resolution and SHA-256
  sub-seed derivation (serial == parallel, bitwise);
* :mod:`repro.campaign.perturb` -- the perturbation model, sampled
  parent-side into :class:`~repro.faults.FaultScenario` draws;
* :mod:`repro.campaign.runner` -- pluggable per-app replicate runners
  (the built-in one simulates the LU/FW designs once per replicate);
* :mod:`repro.campaign.core` -- spec, task grid, executor fan-out,
  per-cell aggregation into the campaign manifest;
* :mod:`repro.campaign.stats` -- Mann-Whitney U comparison and
  pass/warn/fail verdicts per cell;
* :mod:`repro.campaign.report` -- terminal rendering.

CLI: ``repro campaign run | report | check``.  Docs:
``docs/observability.md`` ("Campaigns").
"""

from .core import (
    MANIFEST_SCHEMA,
    CampaignSpec,
    campaign_tasks,
    cell_key,
    iter_cells,
    load_manifest,
    run_campaign,
    write_manifest,
)
from .perturb import PerturbationModel, default_model
from .report import render_check, render_manifest
from .runner import (
    CAMPAIGN_BUCKETS,
    DesignRunner,
    ReplicateRunner,
    register_runner,
    resolve_runner,
    run_replicate,
)
from .seeds import SEED_ENV_VAR, derive_seed, resolve_seed
from .stats import (
    DEFAULT_ALPHA,
    DEFAULT_EFFECT,
    compare_campaigns,
    compare_cells,
    mann_whitney_u,
)

__all__ = [
    "CAMPAIGN_BUCKETS",
    "CampaignSpec",
    "DEFAULT_ALPHA",
    "DEFAULT_EFFECT",
    "DesignRunner",
    "MANIFEST_SCHEMA",
    "PerturbationModel",
    "ReplicateRunner",
    "SEED_ENV_VAR",
    "campaign_tasks",
    "cell_key",
    "compare_campaigns",
    "compare_cells",
    "default_model",
    "derive_seed",
    "iter_cells",
    "load_manifest",
    "mann_whitney_u",
    "register_runner",
    "render_check",
    "render_manifest",
    "resolve_runner",
    "resolve_seed",
    "run_campaign",
    "run_replicate",
    "write_manifest",
]
