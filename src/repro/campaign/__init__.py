"""Statistical campaign observatory: replicated runs, distributions, drift.

A single simulation answers "what is the makespan?"; a *campaign*
answers "what is the makespan *distribution*, and did it move?".  This
package enumerates (app x preset x fault-scenario) cells, runs each one
``replicates`` times under seeded randomized perturbations of the
machine model (bandwidth/DRAM/clock jitter plus arrival-noise stalls),
aggregates per-cell distributions into schema-versioned manifests in
the run ledger, and statistically compares campaigns with a
Mann-Whitney rank test plus effect-size gating.

Layers:

* :mod:`repro.campaign.seeds` -- master-seed resolution and SHA-256
  sub-seed derivation (serial == parallel, bitwise);
* :mod:`repro.campaign.perturb` -- the perturbation model, sampled
  parent-side into :class:`~repro.faults.FaultScenario` draws;
* :mod:`repro.campaign.runner` -- pluggable per-app replicate runners
  (the built-in one simulates the LU/FW designs once per replicate);
* :mod:`repro.campaign.core` -- spec, task grid, executor fan-out,
  per-cell aggregation into the campaign manifest;
* :mod:`repro.campaign.stats` -- Mann-Whitney U comparison and
  pass/warn/fail verdicts per cell;
* :mod:`repro.campaign.explain` -- root-cause explanation of flagged
  cells: paired traced re-runs diffed into blame-ranked ``explain``
  manifests (which lane grew, which model term it loads onto);
* :mod:`repro.campaign.report` -- terminal rendering, including the
  per-cell box-plot / timeline figures.

CLI: ``repro campaign run | report | check | figures``.  Docs:
``docs/observability.md`` ("Campaigns", "Explaining regressions").
"""

from .core import (
    MANIFEST_SCHEMA,
    CampaignSpec,
    campaign_tasks,
    cell_key,
    iter_cells,
    load_manifest,
    run_campaign,
    write_manifest,
)
from .explain import (
    explain_cell,
    explain_comparison,
    pick_replicate,
    replicate_task,
    run_traced,
)
from .perturb import PerturbationModel, default_model
from .report import render_check, render_figures, render_manifest, render_timeline
from .runner import (
    CAMPAIGN_BUCKETS,
    DesignRunner,
    ReplicateRunner,
    build_design,
    register_runner,
    resolve_runner,
    run_replicate,
)
from .seeds import SEED_ENV_VAR, derive_seed, resolve_seed
from .stats import (
    DEFAULT_ALPHA,
    DEFAULT_EFFECT,
    compare_campaigns,
    compare_cells,
    mann_whitney_u,
)

__all__ = [
    "CAMPAIGN_BUCKETS",
    "CampaignSpec",
    "DEFAULT_ALPHA",
    "DEFAULT_EFFECT",
    "DesignRunner",
    "MANIFEST_SCHEMA",
    "PerturbationModel",
    "ReplicateRunner",
    "SEED_ENV_VAR",
    "build_design",
    "campaign_tasks",
    "cell_key",
    "compare_campaigns",
    "compare_cells",
    "default_model",
    "derive_seed",
    "explain_cell",
    "explain_comparison",
    "iter_cells",
    "load_manifest",
    "mann_whitney_u",
    "pick_replicate",
    "register_runner",
    "render_check",
    "render_figures",
    "render_manifest",
    "render_timeline",
    "replicate_task",
    "resolve_runner",
    "resolve_seed",
    "run_campaign",
    "run_replicate",
    "run_traced",
    "write_manifest",
]
