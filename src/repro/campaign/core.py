"""Campaign enumeration, replicated execution, and aggregation.

A *campaign* is a grid of cells -- (app x preset x fault scenario) --
each evaluated ``replicates`` times under seeded randomized
perturbations (:mod:`repro.campaign.perturb`).  Replicates are plain
task dicts fanned out through the shared
:class:`~repro.parallel.SweepExecutor` / :class:`~repro.parallel.ResultCache`
infrastructure, then folded per cell into distribution summaries
(median / IQR / p95 / p99 plus a mergeable
:class:`~repro.obs.metrics.Histogram`) inside a schema-versioned
*campaign manifest* -- the JSON document that enters the run ledger and
that :mod:`repro.campaign.stats` compares across campaigns.

Everything here is deterministic given the spec: sub-seeds derive from
(master seed, cell key, replicate index), perturbations are sampled
parent-side before fan-out, and results are reassembled in task order,
so serial and ``--jobs N`` runs produce bitwise-identical manifests.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Iterable, Optional

from ..faults.scenarios import FaultEvent, FaultScenario
from ..obs.metrics import REGISTRY, Histogram
from ..parallel import ResultCache, SweepExecutor, cache_from_env
from .perturb import PerturbationModel, default_model
from .runner import resolve_runner, run_replicate
from .seeds import derive_seed

__all__ = [
    "MANIFEST_SCHEMA",
    "CampaignSpec",
    "cell_key",
    "campaign_tasks",
    "run_campaign",
    "iter_cells",
    "load_manifest",
    "write_manifest",
]

#: Version of the campaign-manifest document layout (the ``cells`` /
#: ``spec`` structure below).  Independent of the ledger's envelope
#: schema: the ledger versions *entries*, this versions the manifest
#: they embed.
MANIFEST_SCHEMA = 1


@dataclass(frozen=True)
class CampaignSpec:
    """The full, serializable description of one campaign.

    A spec plus a master ``seed`` pins every random draw the campaign
    makes; two runs of the same spec (any ``jobs`` setting) produce the
    same manifest byte for byte.
    """

    apps: tuple[str, ...] = ("lu", "fw")
    preset: str = "xd1"
    #: Optional multi-preset grid; empty means "just :attr:`preset`".
    #: Each app x scenario pair is evaluated once per preset, with its
    #: own cell key (``app@preset/scenario``) and sub-seed stream.  Not
    #: every app runs on every preset (LU needs p >= 2 nodes, FW's
    #: block size must divide its tile) -- callers pick compatible
    #: combinations, the design constructors fail fast otherwise.
    presets: tuple[str, ...] = ()
    scenarios: tuple[FaultScenario, ...] = (FaultScenario(name="nominal"),)
    replicates: int = 20
    seed: int = 0
    perturb: PerturbationModel = field(default_factory=default_model)
    sizes: Optional[dict[str, tuple[int, int]]] = None
    #: Optional persistent FPGA clock factor applied to *every* cell
    #: (e.g. 0.8 = a 20% slower FPGA) -- the knob used to manufacture a
    #: known-regressed campaign for testing the observatory itself.
    throttle_fpga: Optional[float] = None

    def __post_init__(self) -> None:
        if not self.apps:
            raise ValueError("campaign needs at least one app")
        if not self.scenarios:
            raise ValueError("campaign needs at least one scenario")
        if self.replicates < 1:
            raise ValueError(f"replicates must be >= 1, got {self.replicates}")
        if self.throttle_fpga is not None and not 0.0 < self.throttle_fpga <= 1.0:
            raise ValueError(
                f"throttle_fpga must be in (0, 1], got {self.throttle_fpga}"
            )
        if len(set(self.presets)) != len(self.presets):
            raise ValueError(f"duplicate presets: {self.presets}")

    @property
    def effective_presets(self) -> tuple[str, ...]:
        """The preset grid actually enumerated (``presets`` or the single
        ``preset``)."""
        return self.presets or (self.preset,)

    def to_dict(self) -> dict[str, Any]:
        data: dict[str, Any] = {
            "apps": list(self.apps),
            "preset": self.preset,
            "scenarios": [s.to_dict() for s in self.scenarios],
            "replicates": self.replicates,
            "seed": self.seed,
            "perturb": self.perturb.to_dict(),
        }
        if self.presets:
            data["presets"] = list(self.presets)
        if self.sizes:
            data["sizes"] = {app: list(nb) for app, nb in sorted(self.sizes.items())}
        if self.throttle_fpga is not None:
            data["throttle_fpga"] = self.throttle_fpga
        return data

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "CampaignSpec":
        sizes = data.get("sizes")
        return cls(
            apps=tuple(data.get("apps", ("lu", "fw"))),
            preset=data.get("preset", "xd1"),
            presets=tuple(data.get("presets", ())),
            scenarios=tuple(
                FaultScenario.from_dict(s) for s in data.get("scenarios", [{}])
            ),
            replicates=int(data.get("replicates", 20)),
            seed=int(data.get("seed", 0)),
            perturb=PerturbationModel.from_dict(data.get("perturb", {})),
            sizes={app: (int(nb[0]), int(nb[1])) for app, nb in sizes.items()}
            if sizes
            else None,
            throttle_fpga=data.get("throttle_fpga"),
        )


def cell_key(app: str, preset: str, scenario_name: str) -> str:
    """The canonical cell identifier, ``app@preset/scenario``."""
    return f"{app}@{preset}/{scenario_name or 'nominal'}"


def _with_throttle(
    scenario: FaultScenario, throttle: Optional[float]
) -> FaultScenario:
    """The cell's base scenario with the campaign-wide FPGA throttle."""
    if throttle is None or throttle == 1.0:
        return scenario
    events = scenario.events + (
        FaultEvent(kind="fpga_throttle", at=0.0, factor=throttle),
    )
    return FaultScenario(
        name=scenario.name,
        events=events,
        bursts=scenario.bursts,
        seed=scenario.seed,
    )


def campaign_tasks(spec: CampaignSpec) -> list[dict[str, Any]]:
    """The replicate task grid, one canonical picklable dict per run.

    Perturbations are sampled *here*, in the parent, from per-replicate
    sub-seeds; the drawn scenario rides inside the task so the result
    cache keys each replicate by the exact perturbation it simulated.
    """
    tasks: list[dict[str, Any]] = []
    for app in spec.apps:
        resolve_runner(app)  # fail fast on unknown apps
        for preset in spec.effective_presets:
            for scenario in spec.scenarios:
                base = _with_throttle(scenario, spec.throttle_fpga)
                key = cell_key(app, preset, scenario.name)
                for replicate in range(spec.replicates):
                    sub_seed = derive_seed(spec.seed, key, replicate)
                    concrete = spec.perturb.sample(sub_seed, base=base)
                    task: dict[str, Any] = {
                        "kind": "campaign_replicate",
                        "app": app,
                        "preset": preset,
                        "cell": key,
                        "scenario_name": scenario.name or "nominal",
                        "replicate": replicate,
                        "seed": sub_seed,
                        "scenario": concrete.to_dict(),
                    }
                    if spec.sizes and app in spec.sizes:
                        task["n"], task["b"] = spec.sizes[app]
                    tasks.append(task)
    return tasks


def _quantile(ordered: list[float], q: float) -> float:
    """Linear-interpolated quantile of an already-sorted sample."""
    n = len(ordered)
    if n == 1:
        return ordered[0]
    pos = q * (n - 1)
    lo = int(pos)
    frac = pos - lo
    if frac == 0.0 or lo + 1 >= n:
        return ordered[lo]
    return ordered[lo] + (ordered[lo + 1] - ordered[lo]) * frac


def _distribution(samples: list[float], hist: Optional[Histogram]) -> dict[str, Any]:
    """The per-cell distribution summary block.

    Order statistics come from the raw replicate samples (exact);
    the merged histogram travels alongside for cross-campaign merging
    and sparkline rendering.
    """
    if not samples:
        return {
            "samples": [],
            "median": None,
            "q25": None,
            "q75": None,
            "iqr": None,
            "p95": None,
            "p99": None,
            "mean": None,
            "min": None,
            "max": None,
        }
    ordered = sorted(samples)
    q25 = _quantile(ordered, 0.25)
    q75 = _quantile(ordered, 0.75)
    return {
        "samples": samples,
        "median": _quantile(ordered, 0.5),
        "q25": q25,
        "q75": q75,
        "iqr": q75 - q25,
        "p95": _quantile(ordered, 0.95),
        "p99": _quantile(ordered, 0.99),
        "mean": sum(ordered) / len(ordered),
        "min": ordered[0],
        "max": ordered[-1],
    }


def _aggregate_cell(
    app: str,
    preset: str,
    spec: CampaignSpec,
    scenario: FaultScenario,
    results: list[dict[str, Any]],
) -> dict[str, Any]:
    ok = [r for r in results if not r.get("failed")]
    failed = [r for r in results if r.get("failed")]
    makespans = [float(r["makespan"]) for r in ok]
    efficiencies = [float(r["overlap_efficiency"]) for r in ok]
    merged: Optional[Histogram] = None
    for r in ok:
        h = Histogram.from_dict(r["hist"])
        merged = h if merged is None else merged.merge(h)
    cell: dict[str, Any] = {
        "app": app,
        "preset": preset,
        "scenario": _with_throttle(scenario, spec.throttle_fpga).to_dict(),
        "replicates": len(results),
        "completed": len(ok),
        "failures": len(failed),
        "predicted_latency": float(ok[0]["predicted_latency"]) if ok else None,
        "makespan": _distribution(makespans, merged),
        "efficiency": _distribution(efficiencies, None),
    }
    if merged is not None:
        cell["hist"] = merged.to_dict()
    if failed:
        cell["failed_replicates"] = [r.get("replicate") for r in failed]
    return cell


def run_campaign(
    spec: CampaignSpec,
    *,
    jobs: Any = None,
    cache: Any = None,
    telemetry: Optional[dict[str, Any]] = None,
) -> dict[str, Any]:
    """Run the campaign; returns the aggregated manifest.

    ``jobs`` is a worker count, ``"auto"``, or None (consults
    ``REPRO_PARALLEL``); ``cache`` is a :class:`ResultCache`, a
    directory path, True (default ``.repro_cache/``), False (off), or
    None (consults ``REPRO_CACHE``).  Results come back in task order
    regardless of worker scheduling, so the manifest -- and any ledger
    entry written from it -- is bitwise identical across serial and
    parallel runs of the same spec.

    ``telemetry``, when a dict, is filled in place with run-health
    wall-clock data -- the executor's per-worker spans / queue waits /
    straggler flags (:attr:`~repro.parallel.SweepExecutor.last_telemetry`)
    and the cache hit statistics.  It is kept *out* of the returned
    manifest on purpose: manifests are deterministic documents, compared
    bitwise in CI; telemetry goes to the ledger's ``workers`` block and
    the dashboard instead.
    """
    tasks = campaign_tasks(spec)
    if cache is None:
        cache = cache_from_env()
    elif cache is False:
        cache = None
    elif cache is True:
        cache = ResultCache()
    elif not isinstance(cache, ResultCache):
        cache = ResultCache(cache)
    executor = SweepExecutor(jobs)
    if cache is None:
        results = executor.map(run_replicate, tasks)
    else:
        results = [None] * len(tasks)
        misses: list[int] = []
        for i, task in enumerate(tasks):
            entry = cache.get(task)
            if entry is None:
                misses.append(i)
            else:
                results[i] = entry["value"]
        if misses:
            got = executor.map(run_replicate, [tasks[i] for i in misses])
            for i, value in zip(misses, got):
                cache.put(tasks[i], value)
                results[i] = value

    if telemetry is not None:
        telemetry["executor"] = dict(executor.last_telemetry)
        if cache is not None:
            telemetry["cache"] = dict(cache.stats)
            telemetry["cache_hit_rate"] = cache.hit_rate

    # Fold task-ordered results back into cells (same nesting order as
    # campaign_tasks: app -> preset -> scenario -> replicate).
    cells: dict[str, dict[str, Any]] = {}
    cursor = 0
    failures = 0
    for app in spec.apps:
        for preset in spec.effective_presets:
            for scenario in spec.scenarios:
                chunk = results[cursor : cursor + spec.replicates]
                cursor += spec.replicates
                cell = _aggregate_cell(app, preset, spec, scenario, chunk)
                cells[cell_key(app, preset, scenario.name)] = cell
                failures += cell["failures"]
                REGISTRY.counter("campaign.replicates", preset=preset).inc(
                    spec.replicates
                )
                REGISTRY.counter("campaign.cells", preset=preset).inc()

    manifest: dict[str, Any] = {
        "kind": "campaign",
        "manifest_schema": MANIFEST_SCHEMA,
        "preset": spec.preset,
        "spec": spec.to_dict(),
        "replicates": spec.replicates,
        "points": len(tasks),
        "failures": failures,
        "cells": cells,
    }
    if spec.presets:
        manifest["presets"] = list(spec.presets)
    return manifest


def write_manifest(manifest: dict[str, Any], path: str) -> None:
    """Write a manifest as canonical JSON (sorted keys, trailing newline)."""
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(manifest, fh, indent=2, sort_keys=True)
        fh.write("\n")


def load_manifest(path: str) -> dict[str, Any]:
    """Load a campaign manifest (or campaign ledger entry) from JSON.

    Accepts both a bare manifest file written by :func:`write_manifest`
    and a ledger ``campaign`` entry (the entry's embedded ``spec`` /
    ``cells`` are hoisted into manifest shape).
    """
    with open(path, "r", encoding="utf-8") as fh:
        data = json.load(fh)
    if not isinstance(data, dict):
        raise ValueError(f"{path}: expected a JSON object")
    if data.get("kind") == "campaign" and "cells" in data:
        return data
    raise ValueError(f"{path}: not a campaign manifest (kind={data.get('kind')!r})")


def iter_cells(manifest: dict[str, Any]) -> Iterable[tuple[str, dict[str, Any]]]:
    """(key, cell) pairs in stable sorted order."""
    cells = manifest.get("cells", {})
    for key in sorted(cells):
        yield key, cells[key]
