"""Root-cause explanation of flagged campaign cells (paired re-runs).

When :func:`repro.campaign.stats.compare_campaigns` flags a cell, the
verdict says *that* the distribution moved; this module says *why*.
For each flagged cell it

1. picks one representative replicate present on both sides (the
   completed replicate whose current-side makespan sits closest to the
   current median -- lowest index on ties, so the choice is
   deterministic),
2. reconstructs that replicate's exact task from each manifest -- the
   cell's base scenario (campaign throttle already folded in), the
   SHA-256 sub-seed ``derive_seed(spec.seed, cell_key, replicate)`` and
   the perturbation draw it pins -- so both sides re-simulate precisely
   what the campaign measured, seeded identically when the two
   campaigns share a master seed,
3. re-runs both sides under full tracing and reduces each to a
   critical path, per-lane busy times and per-activity busy times, and
4. diffs the pair into a ranked blame manifest via
   :func:`repro.obs.explain.build_explain` -- per-resource chain delta
   glossed with the paper's Eq (1)/(2)/(4)/(6) terms, per-phase delta,
   and the concrete lanes that moved.

Everything is a pure function of the two manifests, so explaining the
same pair twice yields bitwise-identical manifests, and explaining a
campaign against itself yields nothing (no flagged cells).
"""

from __future__ import annotations

from typing import Any, Iterable, Optional

from ..faults.inject import FaultInjector
from ..faults.scenarios import FaultScenario
from ..obs.critical_path import classify_label, critical_path
from ..obs.explain import build_explain
from .perturb import PerturbationModel
from .runner import build_design
from .seeds import derive_seed
from .stats import DEFAULT_ALPHA, DEFAULT_EFFECT, compare_campaigns

__all__ = [
    "pick_replicate",
    "replicate_task",
    "run_traced",
    "explain_cell",
    "explain_comparison",
]


def _samples_by_replicate(cell: dict[str, Any]) -> dict[int, float]:
    """Replicate index -> makespan sample (failed replicates absent).

    Cells aggregate results in replicate order with failed replicates
    dropped from ``samples`` and listed in ``failed_replicates``, so
    zipping the surviving indices against the samples recovers the map.
    """
    total = int(cell.get("replicates") or 0)
    failed = set(cell.get("failed_replicates") or ())
    completed = [r for r in range(total) if r not in failed]
    samples = [float(v) for v in (cell.get("makespan") or {}).get("samples") or []]
    return dict(zip(completed, samples))


def pick_replicate(
    baseline_cell: dict[str, Any], current_cell: dict[str, Any]
) -> int:
    """The replicate to re-run: completed on both sides, nearest the
    current median (lowest index on ties -- deterministic)."""
    base_map = _samples_by_replicate(baseline_cell)
    cur_map = _samples_by_replicate(current_cell)
    shared = sorted(set(base_map) & set(cur_map))
    if not shared:
        raise ValueError("no replicate completed on both sides of the cell")
    median = (current_cell.get("makespan") or {}).get("median")
    if median is None:
        return shared[0]
    return min(shared, key=lambda r: (abs(cur_map[r] - float(median)), r))


def replicate_task(
    manifest: dict[str, Any], key: str, replicate: int
) -> dict[str, Any]:
    """Reconstruct one replicate's task dict from a campaign manifest.

    The cell's stored ``scenario`` is the base scenario with the
    campaign-wide FPGA throttle already folded in, and the perturbation
    model plus master seed live in the manifest's ``spec`` -- so the
    sub-seed and the concrete draw both re-derive exactly as
    :func:`repro.campaign.core.campaign_tasks` produced them.
    """
    spec = manifest.get("spec") or {}
    cell = manifest["cells"][key]
    base = FaultScenario.from_dict(cell["scenario"])
    sub_seed = derive_seed(int(spec.get("seed", 0)), key, replicate)
    concrete = PerturbationModel.from_dict(spec.get("perturb") or {}).sample(
        sub_seed, base=base
    )
    task: dict[str, Any] = {
        "kind": "campaign_replicate",
        "app": cell["app"],
        "preset": cell.get("preset", "xd1"),
        "cell": key,
        "scenario_name": cell["scenario"].get("name") or "nominal",
        "replicate": replicate,
        "seed": sub_seed,
        "scenario": concrete.to_dict(),
    }
    sizes = spec.get("sizes") or {}
    if cell["app"] in sizes:
        n, b = sizes[cell["app"]]
        task["n"], task["b"] = int(n), int(b)
    return task


def run_traced(task: dict[str, Any]) -> dict[str, Any]:
    """One replicate under full tracing, reduced for the blame diff.

    Unlike :class:`~repro.campaign.runner.DesignRunner` (which keeps
    only the makespan), this keeps the whole trace and reduces it to
    the three views :func:`repro.obs.explain.build_explain` diffs:
    critical path, per-lane busy time, per-activity busy time.
    """
    design = build_design(
        task["app"], task.get("preset", "xd1"), task.get("n"), task.get("b")
    )
    scenario = FaultScenario.from_dict(task["scenario"])
    injector = FaultInjector(scenario) if scenario.has_faults else None
    result = design.simulate(trace=True, faults=injector)
    makespan = result.total_elapsed if task["app"] == "fw" else result.elapsed
    trace = result.trace
    return {
        "makespan": float(makespan),
        "critical_path": critical_path(trace).to_dict(),
        "lanes": {lane: trace.busy_time(lane) for lane in trace.lanes()},
        "activity": trace.busy_by_class(classify_label),
    }


def explain_cell(
    baseline: dict[str, Any],
    current: dict[str, Any],
    key: str,
    *,
    replicate: Optional[int] = None,
    check_cell: Optional[dict[str, Any]] = None,
) -> dict[str, Any]:
    """One cell's explain manifest: re-run the pair, diff, rank blame."""
    try:
        base_cell = baseline["cells"][key]
        cur_cell = current["cells"][key]
    except KeyError:
        raise ValueError(f"cell {key!r} is not present in both manifests") from None
    rep = pick_replicate(base_cell, cur_cell) if replicate is None else int(replicate)
    base_task = replicate_task(baseline, key, rep)
    cur_task = replicate_task(current, key, rep)
    return build_explain(
        cell=key,
        app=cur_cell["app"],
        preset=cur_cell.get("preset", "xd1"),
        scenario_name=cur_task["scenario_name"],
        replicate=rep,
        seeds={"baseline": base_task["seed"], "current": cur_task["seed"]},
        baseline=run_traced(base_task),
        current=run_traced(cur_task),
        check=check_cell,
    )


def explain_comparison(
    baseline: dict[str, Any],
    current: dict[str, Any],
    *,
    comparison: Optional[dict[str, Any]] = None,
    cells: Optional[Iterable[str]] = None,
    alpha: float = DEFAULT_ALPHA,
    effect_threshold: float = DEFAULT_EFFECT,
) -> list[dict[str, Any]]:
    """Explain manifests for every flagged cell of a campaign check.

    ``comparison`` reuses an existing ``campaign_check`` document (so
    ``campaign check --explain`` explains exactly what it flagged);
    otherwise one is computed here.  ``cells`` overrides the selection
    (explain those cells whether or not they failed).  A check with no
    flagged cells -- e.g. a campaign against itself -- explains
    nothing and returns ``[]``.
    """
    if comparison is None:
        comparison = compare_campaigns(
            baseline, current, alpha=alpha, effect_threshold=effect_threshold
        )
    keys = sorted(cells) if cells is not None else list(comparison.get("flagged") or ())
    checked = comparison.get("cells") or {}
    return [
        explain_cell(baseline, current, key, check_cell=checked.get(key))
        for key in keys
    ]
