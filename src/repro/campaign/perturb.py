"""Seeded randomized perturbations for campaign replicates.

The design model predicts one makespan per (app, partition, machine)
point; real machines jitter.  A :class:`PerturbationModel` describes how
much -- multiplicative jitter on the network bandwidth ``B_n``, the
FPGA<->DRAM streaming bandwidth ``B_d`` (the Eq. (1)/(4) ``D_f/B_d``
term) and the FPGA clock ``F_f``, plus a burst of transient DMA stalls
standing in for MPI arrival noise -- and :meth:`PerturbationModel.sample`
materialises one concrete draw as a :class:`~repro.faults.FaultScenario`.

Perturbations are *data* like every other scenario: sampling happens in
the parent process from a derived sub-seed
(:func:`repro.campaign.seeds.derive_seed`), the drawn scenario dict
travels inside the replicate task, and the content-addressed result
cache therefore keys each replicate by the exact perturbation it
simulated.  The same master seed always reproduces the same campaign,
bitwise, in any execution mode.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Any, Optional

from ..faults.scenarios import FaultEvent, FaultScenario, StallBurst

__all__ = ["PerturbationModel", "default_model"]


@dataclass(frozen=True)
class PerturbationModel:
    """How much each machine parameter jitters per replicate.

    ``bandwidth_jitter`` and ``dram_jitter`` draw symmetric uniform
    factors ``1 +/- jitter`` for ``B_n`` and ``B_d``; ``clock_jitter``
    draws a throttle-only factor in ``[1 - jitter, 1]`` for ``F_f``
    (clocks throttle under load, they do not overclock).  ``stall_count``
    transient DMA stalls (mean ``stall_mean`` seconds, arriving in the
    first ``stall_window`` simulated seconds) model MPI arrival noise.
    Any knob set to zero switches that perturbation off; the zero model
    reproduces the deterministic point runs.
    """

    bandwidth_jitter: float = 0.05
    dram_jitter: float = 0.05
    clock_jitter: float = 0.05
    stall_count: int = 4
    stall_window: float = 5.0
    stall_mean: float = 2e-3

    def __post_init__(self) -> None:
        for name in ("bandwidth_jitter", "dram_jitter", "clock_jitter"):
            value = getattr(self, name)
            if not 0.0 <= value < 1.0:
                raise ValueError(f"{name} must be in [0, 1), got {value}")
        if self.stall_count < 0:
            raise ValueError(f"stall_count must be >= 0, got {self.stall_count}")
        if self.stall_count and (self.stall_window <= 0 or self.stall_mean <= 0):
            raise ValueError("stall_window and stall_mean must be positive")

    @property
    def is_null(self) -> bool:
        """True when every knob is off (replicates are deterministic)."""
        return (
            self.bandwidth_jitter == 0.0
            and self.dram_jitter == 0.0
            and self.clock_jitter == 0.0
            and self.stall_count == 0
        )

    def sample(self, seed: int, base: Optional[FaultScenario] = None) -> FaultScenario:
        """One concrete perturbation draw as a fault scenario.

        All draws flow through ``random.Random(seed)`` in a fixed order
        (bandwidth, DRAM, clock), so a sub-seed pins the whole draw.
        ``base`` faults (the cell's scenario) are carried over verbatim;
        the returned scenario's seed is ``seed``, so the base's
        stochastic bursts re-expand per replicate -- that is the arrival
        noise varying across replicates, by design.
        """
        rng = random.Random(seed)
        events: list[FaultEvent] = list(base.events) if base is not None else []
        bursts: list[StallBurst] = list(base.bursts) if base is not None else []
        if self.bandwidth_jitter:
            factor = 1.0 + rng.uniform(-self.bandwidth_jitter, self.bandwidth_jitter)
            events.append(FaultEvent(kind="link_slowdown", factor=factor))
        if self.dram_jitter:
            factor = 1.0 + rng.uniform(-self.dram_jitter, self.dram_jitter)
            events.append(FaultEvent(kind="dram_contention", factor=factor))
        if self.clock_jitter:
            factor = 1.0 - rng.uniform(0.0, self.clock_jitter)
            events.append(FaultEvent(kind="fpga_throttle", factor=factor))
        if self.stall_count:
            bursts.append(
                StallBurst(
                    count=self.stall_count,
                    start=0.0,
                    window=self.stall_window,
                    mean_duration=self.stall_mean,
                )
            )
        name = f"{base.name}+perturb" if base is not None and base.name else "perturb"
        return FaultScenario(name=name, events=tuple(events), bursts=tuple(bursts), seed=seed)

    # -- serialization --------------------------------------------------

    def to_dict(self) -> dict[str, Any]:
        return {
            "bandwidth_jitter": self.bandwidth_jitter,
            "dram_jitter": self.dram_jitter,
            "clock_jitter": self.clock_jitter,
            "stall_count": self.stall_count,
            "stall_window": self.stall_window,
            "stall_mean": self.stall_mean,
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "PerturbationModel":
        return cls(
            bandwidth_jitter=float(data.get("bandwidth_jitter", 0.0)),
            dram_jitter=float(data.get("dram_jitter", 0.0)),
            clock_jitter=float(data.get("clock_jitter", 0.0)),
            stall_count=int(data.get("stall_count", 0)),
            stall_window=float(data.get("stall_window", 5.0)),
            stall_mean=float(data.get("stall_mean", 2e-3)),
        )


def default_model() -> PerturbationModel:
    """The stock perturbation model: 5% jitter + a light stall burst."""
    return PerturbationModel()
