"""Terminal rendering of campaign manifests and check verdicts.

Plain strings for the CLI (``repro campaign report`` / ``check``); the
persistent dashboards (ASCII and HTML, fed from the run ledger) live in
:mod:`repro.obs.dashboard`.
"""

from __future__ import annotations

from typing import Any, Iterable, Optional

from ..analysis.figures import box_plot, line_chart
from ..analysis.series import Series
from .core import iter_cells

__all__ = [
    "render_manifest",
    "render_check",
    "render_figures",
    "render_timeline",
    "sparkline",
]

_SPARK_LEVELS = " .:-=+*#@"

_VERDICT_MARK = {"pass": "ok", "warn": "WARN", "fail": "FAIL"}


def sparkline(counts: list[float]) -> str:
    """Map bucket counts to a fixed-alphabet ASCII sparkline."""
    if not counts:
        return ""
    peak = max(counts)
    if peak <= 0:
        return " " * len(counts)
    top = len(_SPARK_LEVELS) - 1
    out = []
    for c in counts:
        level = 0 if c <= 0 else max(1, round(c / peak * top))
        out.append(_SPARK_LEVELS[level])
    return "".join(out)


def _fmt(value: Optional[float], unit: str = "") -> str:
    if value is None:
        return "-"
    return f"{value:.4g}{unit}"


def _trim_spark(hist: Optional[dict[str, Any]]) -> str:
    """Sparkline over the occupied bucket span (plus one margin bucket)."""
    if not hist:
        return ""
    counts = [float(c) for c in hist.get("bucket_counts") or []]
    occupied = [i for i, c in enumerate(counts) if c > 0]
    if not occupied:
        return ""
    lo = max(0, occupied[0] - 1)
    hi = min(len(counts), occupied[-1] + 2)
    return sparkline(counts[lo:hi])


def render_manifest(manifest: dict[str, Any]) -> str:
    """One campaign manifest as an aligned per-cell summary table."""
    lines = [
        "campaign: preset={preset} replicates={replicates} points={points} "
        "failures={failures} seed={seed}".format(
            preset=manifest.get("preset"),
            replicates=manifest.get("replicates"),
            points=manifest.get("points"),
            failures=manifest.get("failures"),
            seed=(manifest.get("spec") or {}).get("seed"),
        )
    ]
    rows = []
    for key, cell in iter_cells(manifest):
        mk = cell.get("makespan") or {}
        eff = cell.get("efficiency") or {}
        rows.append(
            (
                key,
                _fmt(mk.get("median"), "s"),
                _fmt(mk.get("iqr"), "s"),
                _fmt(mk.get("p95"), "s"),
                _fmt(mk.get("p99"), "s"),
                _fmt(eff.get("median")),
                f"{cell.get('completed', 0)}/{cell.get('replicates', 0)}",
                _trim_spark(cell.get("hist")),
            )
        )
    header = ("cell", "median", "iqr", "p95", "p99", "eff", "ok", "dist")
    widths = [
        max(len(header[i]), *(len(r[i]) for r in rows)) if rows else len(header[i])
        for i in range(len(header))
    ]
    lines.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(header)).rstrip())
    for row in rows:
        lines.append(
            "  ".join(col.ljust(widths[i]) for i, col in enumerate(row)).rstrip()
        )
    return "\n".join(lines)


def render_check(comparison: dict[str, Any]) -> str:
    """One campaign_check document as a per-cell verdict table."""
    lines = [
        "campaign check: verdict={verdict} alpha={alpha:g} effect={effect:g} "
        "flagged={flagged}".format(
            verdict=comparison.get("verdict"),
            alpha=comparison.get("alpha", 0.0),
            effect=comparison.get("effect_threshold", 0.0),
            flagged=len(comparison.get("flagged") or []),
        )
    ]
    cells = comparison.get("cells") or {}
    for key in sorted(cells):
        cell = cells[key]
        shift = cell.get("median_shift")
        arrow = "=" if shift is None else ("^" if shift > 0 else "v" if shift < 0 else "=")
        p = cell.get("p_value")
        lines.append(
            "  [{mark:>4}] {key}  shift={shift} {arrow}  p={p}  "
            "median {base} -> {cur}{note}".format(
                mark=_VERDICT_MARK.get(cell.get("verdict"), "?"),
                key=key,
                shift="-" if shift is None else f"{shift:+.2%}",
                arrow=arrow,
                p="-" if p is None else f"{p:.4g}",
                base=_fmt(cell.get("baseline_median"), "s"),
                cur=_fmt(cell.get("median"), "s"),
                note=f"  ({cell['note']})" if cell.get("note") else "",
            )
        )
    missing = comparison.get("missing") or {}
    for side in ("baseline_only", "current_only"):
        for key in missing.get(side, []):
            lines.append(f"  [WARN] {key}  ({side.replace('_', ' ')})")
    return "\n".join(lines)


def render_figures(manifest: dict[str, Any], width: int = 46) -> str:
    """The campaign's distribution figure: one box-whisker row per cell.

    All cells share one scale, so the figure answers "which cells are
    slow, and which are *spread out*" at a glance; the exact numbers
    stay in :func:`render_manifest`'s table.
    """
    labels, stats = [], []
    for key, cell in iter_cells(manifest):
        labels.append(key)
        stats.append(cell.get("makespan") or {})
    return box_plot(
        labels,
        stats,
        "campaign makespan distributions (per cell, min [q25 M q75] max)",
        width=width,
        unit="s",
    )


def render_timeline(entries: Iterable[dict[str, Any]]) -> str:
    """Median-makespan trend per cell over successive campaign runs.

    ``entries`` are campaign manifests (or ledger ``campaign`` entries),
    oldest first -- typically every ``campaign`` entry of a ledger.  The
    x axis is the run index, so the figure stays deterministic for
    pinned-timestamp ledgers.
    """
    curves: dict[str, Series] = {}
    for i, entry in enumerate(entries):
        for key, cell in iter_cells(entry):
            median = (cell.get("makespan") or {}).get("median")
            if median is None:
                continue
            curves.setdefault(key, Series(label=key)).append(float(i), float(median))
    if not curves:
        return "campaign makespan timeline\n(no data)"
    return line_chart(
        [curves[k] for k in sorted(curves)],
        "campaign makespan timeline (median per campaign run)",
        y_label="makespan s",
        x_label="campaign run index",
    )
