"""Pluggable replicate runners (the campaign's adapter layer).

A campaign cell names an app; a *runner* knows how to evaluate one
replicate of it -- build the design, simulate it under the replicate's
perturbation scenario, and reduce the run to a plain result dict.  The
indirection keeps the campaign engine app-agnostic: the sparse kernels
and autotuner planned in the roadmap drop in by registering a runner,
without touching enumeration, aggregation or the statistics.

Runners must be importable objects and tasks plain data, because
replicates cross process boundaries through the
:class:`~repro.parallel.SweepExecutor`.  Custom runners registered via
:func:`register_runner` are visible to serial runs and to workers that
import the registering module; the built-in LU/FW design runner is
always available.
"""

from __future__ import annotations

from typing import Any, Protocol

from ..faults.adapt import DEFAULT_SIZES
from ..faults.inject import FaultInjector
from ..faults.scenarios import FaultScenario
from ..machine.presets import ALL_PRESETS
from ..obs.metrics import Histogram, MetricsRegistry
from ..sim import ProcessFailure

__all__ = [
    "CAMPAIGN_BUCKETS",
    "ReplicateRunner",
    "DesignRunner",
    "RUNNERS",
    "build_design",
    "register_runner",
    "resolve_runner",
    "run_replicate",
]

#: Histogram bucket bounds for campaign makespans (simulated seconds,
#: 10 ms .. ~1 day, ~x3 per step).  Wider than the instrument-latency
#: :data:`~repro.obs.metrics.DEFAULT_BUCKETS` because FW makespans run
#: to thousands of simulated seconds.  Shared by every runner so
#: per-replicate histograms merge.
CAMPAIGN_BUCKETS = (
    1e-2, 3e-2, 1e-1, 3e-1, 1.0, 3.0, 10.0, 30.0,
    1e2, 3e2, 1e3, 3e3, 1e4, 3e4, 1e5,
)


class ReplicateRunner(Protocol):
    """One campaign replicate: task dict in, plain result dict out.

    The result must carry ``makespan`` (simulated seconds),
    ``overlap_efficiency``, ``predicted_latency`` and ``hist`` (a
    :meth:`~repro.obs.metrics.Histogram.to_dict` of the makespan on
    :data:`CAMPAIGN_BUCKETS`), or ``failed``/``failure`` for an aborted
    replicate.  Everything must be JSON-able: results are cached
    content-addressed and embedded in ledger manifests verbatim.
    """

    def run(self, task: dict[str, Any]) -> dict[str, Any]: ...  # pragma: no cover


def _makespan_hist(makespan: float) -> dict[str, Any]:
    hist = Histogram("campaign.makespan", {}, buckets=CAMPAIGN_BUCKETS)
    hist.observe(makespan)
    return hist.to_dict()


def build_design(
    app: str, preset: str = "xd1", n: Any = None, b: Any = None
):
    """The app's design object on a machine preset (sizes defaulted).

    The shared construction path of :class:`DesignRunner` and the
    traced re-runs in :mod:`repro.campaign.explain`, so an explanation
    re-simulates exactly the design the campaign replicate ran.
    """
    try:
        spec = ALL_PRESETS[preset]()
    except KeyError:
        raise ValueError(
            f"unknown preset {preset!r}; available: {sorted(ALL_PRESETS)}"
        ) from None
    if app not in DEFAULT_SIZES:
        raise ValueError(f"no design builder for app {app!r}")
    default_n, default_b = DEFAULT_SIZES[app]
    n = int(n or default_n)
    b = int(b or default_b)
    if app == "lu":
        from ..apps.lu.design import LuDesign

        return LuDesign(spec, n, b)
    if app == "fw":
        from ..apps.fw.design import FwDesign

        return FwDesign(spec, n, b)
    raise ValueError(f"no design builder for app {app!r}")


class DesignRunner:
    """The built-in runner for the paper's LU and FW designs.

    Simulates the app's *nominal* plan under the replicate's fault
    scenario (the campaign measures how the chosen design behaves under
    perturbation -- re-planning per replicate would measure the
    adaptive policies instead, which is :mod:`repro.faults`' job) and
    reconciles the perturbed makespan against the nominal prediction.
    """

    apps = ("lu", "fw")

    def run(self, task: dict[str, Any]) -> dict[str, Any]:
        app = task["app"]
        design = build_design(
            app, task.get("preset", "xd1"), task.get("n"), task.get("b")
        )
        scenario = FaultScenario.from_dict(task["scenario"])
        injector = FaultInjector(scenario) if scenario.has_faults else None
        registry = MetricsRegistry()  # keep replicate gauges off the global registry
        try:
            result = design.simulate(trace=True, faults=injector)
        except ProcessFailure as exc:
            return {
                "replicate": task.get("replicate"),
                "seed": task.get("seed"),
                "failed": True,
                "failure": {
                    "error": str(exc),
                    "process": getattr(exc, "process_name", None),
                    "time": getattr(exc, "sim_time", None),
                },
            }
        makespan = result.total_elapsed if app == "fw" else result.elapsed
        report = design.overlap_report(result=result, registry=registry)
        return {
            "replicate": task.get("replicate"),
            "seed": task.get("seed"),
            "failed": False,
            "makespan": makespan,
            "overlap_efficiency": report.overlap_efficiency,
            "predicted_latency": report.predicted_latency,
            "hist": _makespan_hist(makespan),
        }


#: App name -> runner.  Extend via :func:`register_runner`.
RUNNERS: dict[str, ReplicateRunner] = {app: DesignRunner() for app in DesignRunner.apps}


def register_runner(app: str, runner: ReplicateRunner) -> None:
    """Register (or replace) the replicate runner for ``app``.

    Worker processes resolve runners from their own copy of this
    registry, so a custom runner's module must be imported on the
    worker side too (e.g. registered at import time of the package that
    defines it).
    """
    RUNNERS[app] = runner


def resolve_runner(app: str) -> ReplicateRunner:
    try:
        return RUNNERS[app]
    except KeyError:
        raise ValueError(
            f"no campaign runner for app {app!r}; registered: {sorted(RUNNERS)}"
        ) from None


def run_replicate(task: dict[str, Any]) -> dict[str, Any]:
    """Evaluate one replicate task (module-level for process pools)."""
    return resolve_runner(task["app"]).run(task)
