"""Deterministic seed plumbing for replicated campaigns.

One master seed -- the ``--seed`` flag or the ``REPRO_SEED`` environment
variable -- must fully determine every random draw a campaign makes, no
matter how the replicates are scheduled.  The rules:

* **Derivation, not sharing.**  Each (cell, replicate) pair gets its own
  sub-seed, derived by hashing the master seed with the cell key and the
  replicate index (:func:`derive_seed`).  No RNG object ever crosses a
  task boundary, and no draw order couples one replicate to another, so
  a serial run and a ``--jobs N`` run of the same campaign are bitwise
  identical -- workers evaluate the same (task, sub-seed) pairs in
  whatever order and the results are reassembled by task index.
* **Stable hashing.**  The derivation is SHA-256 over a canonical
  string, not Python's randomized ``hash()``, so sub-seeds agree across
  processes, platforms and interpreter restarts.
"""

from __future__ import annotations

import hashlib
import os
from typing import Optional

__all__ = ["SEED_ENV_VAR", "derive_seed", "resolve_seed"]

#: Environment variable supplying the default master seed.
SEED_ENV_VAR = "REPRO_SEED"

#: Sub-seeds are non-negative 63-bit ints (portable across json/pickle
#: and safely inside ``random.Random``'s accepted range).
_SEED_BITS = 63


def resolve_seed(seed: Optional[int | str] = None) -> int:
    """The effective master seed: argument, then ``REPRO_SEED``, then 0."""
    raw = seed if seed is not None else os.environ.get(SEED_ENV_VAR)
    if raw is None or (isinstance(raw, str) and not raw.strip()):
        return 0
    try:
        return int(raw)
    except (TypeError, ValueError):
        raise ValueError(
            f"invalid seed {raw!r}: expected an integer "
            f"(argument or ${SEED_ENV_VAR})"
        ) from None


def derive_seed(master: int, *parts: object) -> int:
    """A sub-seed for ``parts`` (e.g. a cell key and replicate index).

    SHA-256 of ``master`` joined with the stringified parts, truncated
    to 63 bits.  The same (master, parts) always yields the same
    sub-seed, in any process; distinct parts yield independent streams.
    """
    key = "\x1f".join([str(int(master)), *[str(p) for p in parts]])
    digest = hashlib.sha256(key.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big") & ((1 << _SEED_BITS) - 1)
