"""Statistical regression flagging between campaign manifests.

The observatory's question is not "did the median move?" but "did the
*distribution* move more than replicate noise explains?".  Cells are
compared with a two-sided Mann-Whitney U test (nonparametric -- DES
makespans under fault injection are not remotely normal) gated by a
practical effect-size threshold on the relative median shift, so a
statistically-detectable-but-microscopic drift does not fail a build
and a large-but-noisy shift does not slip through.

Verdict semantics per cell:

* ``fail`` -- significant (p < alpha) *slowdown* beyond the effect
  threshold: a flagged regression.
* ``warn`` -- significant shift that is an improvement, or significant
  but below the effect threshold, or a large median shift that does not
  reach significance (under-powered: too few replicates), or the cell
  cannot be tested (insufficient replicates, cell missing on one side).
* ``pass`` -- no statistically significant shift.

Identical manifests always yield all-``pass``: every sample ties, the
rank-variance tie correction drives sigma to zero, and that is defined
as p = 1.  This is the determinism gate's anchor -- re-running a
campaign against itself must flag nothing.
"""

from __future__ import annotations

import math
from typing import Any, Optional, Sequence

__all__ = [
    "DEFAULT_ALPHA",
    "DEFAULT_EFFECT",
    "mann_whitney_u",
    "compare_cells",
    "compare_campaigns",
]

#: Two-sided significance level for the Mann-Whitney test.
DEFAULT_ALPHA = 0.05

#: Minimum relative median shift (2%) for a significant slowdown to be
#: a ``fail`` rather than a ``warn``.
DEFAULT_EFFECT = 0.02


def _rank(values: Sequence[float]) -> list[float]:
    """Average ranks (1-based) with ties sharing the mean rank."""
    order = sorted(range(len(values)), key=lambda i: values[i])
    ranks = [0.0] * len(values)
    i = 0
    while i < len(order):
        j = i
        while j + 1 < len(order) and values[order[j + 1]] == values[order[i]]:
            j += 1
        mean_rank = (i + j) / 2 + 1
        for k in range(i, j + 1):
            ranks[order[k]] = mean_rank
        i = j + 1
    return ranks


def mann_whitney_u(
    xs: Sequence[float], ys: Sequence[float]
) -> tuple[float, float]:
    """Two-sided Mann-Whitney U between samples ``xs`` and ``ys``.

    Returns ``(U, p)`` where ``U`` is the statistic for ``xs`` and
    ``p`` uses the normal approximation with tie and continuity
    corrections -- exact enough for the replicate counts campaigns run
    (a handful to a few hundred), with no SciPy dependency.  When every
    observation ties (sigma = 0) the distributions are
    indistinguishable and ``p`` is 1.0 by definition.
    """
    n1, n2 = len(xs), len(ys)
    if n1 == 0 or n2 == 0:
        raise ValueError("mann_whitney_u needs non-empty samples")
    combined = list(xs) + list(ys)
    ranks = _rank(combined)
    r1 = sum(ranks[:n1])
    u1 = r1 - n1 * (n1 + 1) / 2.0
    mu = n1 * n2 / 2.0
    n = n1 + n2
    # Tie correction: sum of (t^3 - t) over tie groups.
    tie_term = 0.0
    i = 0
    ordered = sorted(combined)
    while i < n:
        j = i
        while j + 1 < n and ordered[j + 1] == ordered[i]:
            j += 1
        t = j - i + 1
        if t > 1:
            tie_term += t**3 - t
        i = j + 1
    variance = n1 * n2 / 12.0 * ((n + 1) - tie_term / (n * (n - 1)))
    if variance <= 0.0:
        return u1, 1.0
    sigma = math.sqrt(variance)
    z = (abs(u1 - mu) - 0.5) / sigma
    if z < 0.0:
        z = 0.0
    p = math.erfc(z / math.sqrt(2.0))
    return u1, min(1.0, p)


def _cell_samples(cell: dict[str, Any]) -> list[float]:
    block = cell.get("makespan") or {}
    return [float(v) for v in block.get("samples") or []]


def compare_cells(
    baseline: dict[str, Any],
    current: dict[str, Any],
    *,
    alpha: float = DEFAULT_ALPHA,
    effect_threshold: float = DEFAULT_EFFECT,
) -> dict[str, Any]:
    """Compare one cell's makespan distribution against its baseline."""
    xs = _cell_samples(baseline)
    ys = _cell_samples(current)
    out: dict[str, Any] = {
        "n_baseline": len(xs),
        "n_current": len(ys),
        "baseline_median": (baseline.get("makespan") or {}).get("median"),
        "median": (current.get("makespan") or {}).get("median"),
        "p_value": None,
        "u": None,
        "median_shift": None,
        "significant": False,
    }
    if len(xs) < 2 or len(ys) < 2:
        out["verdict"] = "warn"
        out["note"] = "insufficient replicates for the rank test"
        return out
    u, p = mann_whitney_u(xs, ys)
    base_median = out["baseline_median"]
    cur_median = out["median"]
    shift: Optional[float] = None
    if base_median:
        shift = (cur_median - base_median) / base_median
    significant = p < alpha
    out.update({"p_value": p, "u": u, "median_shift": shift, "significant": significant})
    if not significant:
        if shift is not None and abs(shift) > effect_threshold:
            out["verdict"] = "warn"
            out["note"] = (
                f"median moved {shift:+.1%} but not significantly "
                "(too few replicates?)"
            )
        else:
            out["verdict"] = "pass"
    elif shift is not None and shift > effect_threshold:
        out["verdict"] = "fail"
        out["note"] = f"significant slowdown ({shift:+.1%} median)"
    elif shift is not None and shift < -effect_threshold:
        out["verdict"] = "warn"
        out["note"] = f"significant improvement ({shift:+.1%} median)"
    else:
        out["verdict"] = "warn"
        out["note"] = "significant shift below the effect threshold"
    return out


def compare_campaigns(
    baseline: dict[str, Any],
    current: dict[str, Any],
    *,
    alpha: float = DEFAULT_ALPHA,
    effect_threshold: float = DEFAULT_EFFECT,
) -> dict[str, Any]:
    """Cell-by-cell regression check of ``current`` against ``baseline``.

    Returns a ``campaign_check`` document: per-cell verdicts, the
    ``flagged`` regression list, and the overall ``verdict`` (worst
    cell verdict; missing cells on either side count as ``warn``).
    """
    base_cells = baseline.get("cells") or {}
    cur_cells = current.get("cells") or {}
    shared = sorted(set(base_cells) & set(cur_cells))
    baseline_only = sorted(set(base_cells) - set(cur_cells))
    current_only = sorted(set(cur_cells) - set(base_cells))
    cells: dict[str, dict[str, Any]] = {}
    for key in shared:
        cells[key] = compare_cells(
            base_cells[key],
            cur_cells[key],
            alpha=alpha,
            effect_threshold=effect_threshold,
        )
    flagged = [key for key in shared if cells[key]["verdict"] == "fail"]
    warned = [key for key in shared if cells[key]["verdict"] == "warn"]
    if flagged:
        verdict = "fail"
    elif warned or baseline_only or current_only:
        verdict = "warn"
    else:
        verdict = "pass"
    result: dict[str, Any] = {
        "kind": "campaign_check",
        "preset": current.get("preset"),
        "alpha": alpha,
        "effect_threshold": effect_threshold,
        "verdict": verdict,
        "flagged": flagged,
        "cells": cells,
    }
    if baseline_only or current_only:
        result["missing"] = {
            "baseline_only": baseline_only,
            "current_only": current_only,
        }
    return result
