"""Command-line interface: ``repro-xd1``.

Runs the paper's experiments from the shell::

    repro-xd1 lu                 # headline LU comparison (Figure 9, left)
    repro-xd1 fw                 # headline FW comparison (Figure 9, right)
    repro-xd1 plan-lu --n 30000  # just the design-model decisions
    repro-xd1 plan-fw --n 92160
    repro-xd1 machines           # predicted performance across presets

Any ``lu``/``fw`` run also accepts ``--trace-out timeline.json`` (a
Chrome ``trace_event`` timeline of the simulated lanes plus harness
wall-clock spans), ``--metrics-out metrics.jsonl`` (counters, gauges,
histograms and the overlap-accounting report), and ``--cache DIR``
(replay the baseline comparison through the shared result cache).

The observatory commands sit under ``repro-xd1 obs``::

    obs summary --metrics m.jsonl      # pretty-print a metrics file
    obs check   --metrics m.jsonl      # gate on overlap_efficiency
    obs ledger record --metrics m.jsonl --trace t.json --ledger L
    obs ledger list|diff|check --ledger L
    obs dashboard --ledger L [--html dashboard.html]
    obs explain --baseline base.json --manifest cur.json [--cell KEY]

Fault injection and graceful degradation under ``repro-xd1 faults``::

    faults run   --app lu --scenario degraded-link --policy repartition
    faults sweep --apps lu,fw --scenarios degraded-link,flaky-dma --ledger L
    faults report --ledger L

Replicated statistical campaigns under ``repro-xd1 campaign``::

    campaign run   --replicates 20 --seed 7 --out campaign.json --ledger L
    campaign report --manifest campaign.json        # or --ledger L
    campaign check --baseline base.json --manifest campaign.json [--explain]
    campaign figures --manifest campaign.json       # box plots (+ timeline)

Guided design-space search under ``repro-xd1 tune``::

    tune run --space fig5-bf --out tune.json --ledger L
    tune run --kind block_mm --fixed b=3000 --axis b_f=0:3000:200 --axis k=2,4,6,8
    tune report --manifest tune.json                # or --ledger L

The co-design job server (docs/service.md) under ``serve``/``client``::

    serve --port 8080 --cache .repro_cache --ledger L
    client submit sweep --param experiments=fig5 --wait
    client status JOB | wait JOB | result JOB ; client queue

Schemas: docs/observability.md; fault scenarios and policies:
docs/robustness.md; the guided search: docs/performance.md ("Guided
search").  All output goes through one BrokenPipe-safe writer, so
``repro-xd1 ... | head`` never stack-traces.
"""

from __future__ import annotations

import argparse
import sys
import time

from .analysis import bar_chart, percent, table
from .apps.fw import FwDesign
from .apps.lu import LuDesign
from .hw import FloydWarshallDesign, MatrixMultiplyDesign
from .machine import ALL_PRESETS, cray_xd1
from .obs.console import safe_print as _p


def _obs_enabled(args: argparse.Namespace) -> bool:
    return bool(getattr(args, "trace_out", None) or getattr(args, "metrics_out", None))


def _obs_run(args: argparse.Namespace, app: str, design) -> None:
    """The ``--trace-out`` / ``--metrics-out`` tail of an app command.

    Runs one *traced* hybrid simulation with a DES monitor attached,
    reconciles it against the plan's prediction, and writes whichever
    exports were requested.  DES wall throughput is published as the
    ``des.events_per_s`` gauge so the run ledger can record it.
    """
    from .obs import REGISTRY, get_tracer, write_chrome_trace, write_metrics_jsonl
    from .sim import SimMonitor

    tracer = get_tracer()
    monitor = SimMonitor()
    t0 = time.perf_counter()
    with tracer.span(f"{app}.traced_run", category="cli", n=args.n, p=args.p):
        result = design.simulate(trace=True, monitor=monitor)
    wall = time.perf_counter() - t0
    report = design.overlap_report(result=result)
    monitor.to_registry(REGISTRY, app=app)
    if wall > 0 and monitor.events_fired:
        REGISTRY.gauge("des.events_per_s", app=app).set(monitor.events_fired / wall)
    _p(report.summary())
    if args.trace_out:
        path = write_chrome_trace(
            args.trace_out, sim_trace=result.trace,
            spans=tracer.spans, span_epoch=tracer.epoch,
        )
        _p(f"trace written to {path} (chrome://tracing / Perfetto)")
    if args.metrics_out:
        path = write_metrics_jsonl(
            args.metrics_out, REGISTRY, overlap=[report],
            extra={
                "app": app, "n": args.n, "b": getattr(args, "b", None),
                "p": args.p, "preset": "xd1",
                "partition": design.partition_params(),
            },
        )
        _p(f"metrics written to {path}")


def _add_obs_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--trace-out", default=None, metavar="PATH",
        help="write a Chrome trace_event timeline of a traced hybrid run",
    )
    parser.add_argument(
        "--metrics-out", default=None, metavar="PATH",
        help="write metrics JSON-lines (counters, histograms, overlap report)",
    )


def _compare_values(args: argparse.Namespace, design, kind: str) -> tuple[dict, str | None]:
    """The Figure 9 comparison as a plain dict, plus a cache footer.

    Without ``--cache`` the comparison simulates directly.  With it, the
    run routes through the experiment harness's cached task layer (the
    same ``lu_compare``/``fw_compare`` tasks the fig9 experiments use),
    so a warm ``.repro_cache`` replays stored values and the cache
    counters/footer cover the warm path.
    """
    if getattr(args, "cache", None):
        from .experiments import _eval_sim_point, active_cache, configured

        task: dict = {"kind": kind, "n": args.n, "b": args.b}
        if args.p != 6:
            task["p"] = args.p  # default-p tasks share keys with the fig9 sweeps
        with configured(cache=args.cache):
            values = _eval_sim_point(task)
            cache = active_cache()
            footer = cache.footer() if cache is not None else None
        return values, footer
    cmp = design.compare()
    return {
        "hybrid": cmp.hybrid.gflops,
        "cpu_only": cmp.cpu_only.gflops,
        "fpga_only": cmp.fpga_only.gflops,
        "predicted": cmp.predicted_gflops,
        "speedup_vs_cpu": cmp.speedup_vs_cpu,
        "speedup_vs_fpga": cmp.speedup_vs_fpga,
        "fraction_of_sum": cmp.fraction_of_sum,
        "fraction_of_predicted": cmp.fraction_of_predicted,
    }, None


def _cmd_lu(args: argparse.Namespace) -> None:
    if _obs_enabled(args):
        from .obs import Tracer, set_tracer

        set_tracer(Tracer())
    design = LuDesign(cray_xd1(p=args.p), n=args.n, b=args.b)
    plan = design.plan
    _p(f"plan: b_p={plan.partition.b_p} b_f={plan.partition.b_f} l={plan.balance.l} "
       f"predicted={plan.prediction.gflops:.2f} GFLOPS")
    cmp, footer = _compare_values(args, design, "lu_compare")
    _p(bar_chart(
        ["Hybrid", "Processor-only", "FPGA-only", "Predicted"],
        [cmp["hybrid"], cmp["cpu_only"], cmp["fpga_only"], cmp["predicted"]],
        f"LU decomposition, n={args.n}, b={args.b}, p={args.p} (GFLOPS)",
        unit=" GFLOPS",
    ))
    _p(f"speedup vs CPU-only  : {cmp['speedup_vs_cpu']:.2f}x (paper: 1.3x)")
    _p(f"speedup vs FPGA-only : {cmp['speedup_vs_fpga']:.2f}x (paper: 2x)")
    _p(f"of baseline sum      : {percent(cmp['fraction_of_sum'])} (paper: ~80%)")
    _p(f"of model prediction  : {percent(cmp['fraction_of_predicted'])} (paper: ~86%)")
    if footer:
        _p(footer)
    if _obs_enabled(args):
        _obs_run(args, "lu", design)


def _cmd_fw(args: argparse.Namespace) -> None:
    if _obs_enabled(args):
        from .obs import Tracer, set_tracer

        set_tracer(Tracer())
    design = FwDesign(cray_xd1(p=args.p), n=args.n, b=args.b)
    plan = design.plan
    _p(f"plan: l1={plan.partition.l1} l2={plan.partition.l2} "
       f"predicted={plan.prediction.gflops:.2f} GFLOPS")
    cmp, footer = _compare_values(args, design, "fw_compare")
    _p(bar_chart(
        ["Hybrid", "Processor-only", "FPGA-only", "Predicted"],
        [cmp["hybrid"], cmp["cpu_only"], cmp["fpga_only"], cmp["predicted"]],
        f"Floyd-Warshall, n={args.n}, b={args.b}, p={args.p} (GFLOPS)",
        unit=" GFLOPS",
    ))
    _p(f"speedup vs CPU-only  : {cmp['speedup_vs_cpu']:.2f}x (paper: 5.8x)")
    _p(f"speedup vs FPGA-only : {cmp['speedup_vs_fpga']:.2f}x (paper: 1.15x)")
    _p(f"of baseline sum      : {percent(cmp['fraction_of_sum'])} (paper: >95%)")
    _p(f"of model prediction  : {percent(cmp['fraction_of_predicted'])} (paper: ~96%)")
    if footer:
        _p(footer)
    if _obs_enabled(args):
        _obs_run(args, "fw", design)


def _cmd_plan_lu(args: argparse.Namespace) -> None:
    design = LuDesign(cray_xd1(p=args.p), n=args.n, b=args.b)
    part, bal = design.plan.partition, design.plan.balance
    rows = [
        ["b_p (CPU rows)", part.b_p],
        ["b_f (FPGA rows)", part.b_f],
        ["b_f exact (Eq. 4)", f"{part.b_f_exact:.1f}"],
        ["T_p / stripe", f"{part.t_p * 1e3:.3f} ms"],
        ["T_f / stripe", f"{part.t_f * 1e3:.3f} ms"],
        ["T_comm / stripe", f"{part.t_comm * 1e3:.3f} ms"],
        ["T_mem / stripe", f"{part.t_mem * 1e3:.3f} ms"],
        ["l (Eq. 5)", bal.l],
        ["SRAM words", part.sram_words],
        ["coordination", f"{design.plan.coordination_hz:.1f} Hz"],
        ["predicted", f"{design.plan.prediction.gflops:.2f} GFLOPS"],
    ]
    _p(table(["decision", "value"], rows, title=f"LU plan (n={args.n}, b={args.b})"))


def _cmd_plan_fw(args: argparse.Namespace) -> None:
    design = FwDesign(cray_xd1(p=args.p), n=args.n, b=args.b)
    part = design.plan.partition
    rows = [
        ["l1 (CPU ops/phase)", part.l1],
        ["l2 (FPGA ops/phase)", part.l2],
        ["l1 exact (Eq. 6)", f"{part.l1_exact:.2f}"],
        ["T_p / op", f"{part.t_p * 1e3:.1f} ms"],
        ["T_f / op", f"{part.t_f * 1e3:.1f} ms"],
        ["T_comm / phase", f"{part.t_comm * 1e3:.3f} ms"],
        ["T_mem / op", f"{part.t_mem * 1e3:.3f} ms"],
        ["coordination", f"{design.plan.coordination_hz:.2f} Hz"],
        ["predicted", f"{design.plan.prediction.gflops:.2f} GFLOPS"],
    ]
    _p(table(["decision", "value"], rows, title=f"FW plan (n={args.n}, b={args.b})"))


def _cmd_machines(args: argparse.Namespace) -> None:
    from .core import DesignModel

    rows = []
    for key, factory in ALL_PRESETS.items():
        spec = factory()
        mm = MatrixMultiplyDesign.for_device(spec.node.fpga.device)
        fwd = FloydWarshallDesign.for_device(spec.node.fpga.device)
        lu_pred = DesignModel(spec.parameters("dgemm", mm)).plan_lu(
            args.n, 3000, mm.k
        ).prediction.gflops if spec.p >= 2 else float("nan")
        fw_n = 256 * spec.p * 60
        fw_pred = DesignModel(spec.parameters("fw", fwd)).plan_fw(fw_n, 256, fwd.k).prediction.gflops
        rows.append([spec.name, spec.p, mm.k, f"{mm.freq_hz / 1e6:.0f} MHz",
                     f"{lu_pred:.1f}", f"{fw_pred:.2f}"])
    _p(table(
        ["machine", "p", "k", "F_f(MM)", "LU GFLOPS (pred)", "FW GFLOPS (pred)"],
        rows,
        title="Design-model predictions across machine presets (Section 4.5)",
    ))


def main(argv: list[str] | None = None) -> int:
    """Entry point for the ``repro-xd1`` console script."""
    from .obs.ledger import LEDGER_SCHEMA

    parser = argparse.ArgumentParser(
        prog="repro-xd1",
        description="Reproduce Zhuo & Prasanna (IPPS 2007) experiments on a simulated Cray XD1.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    lu = sub.add_parser("lu", help="headline LU comparison (Fig. 9 left)")
    lu.add_argument("--n", type=int, default=30000)
    lu.add_argument("--b", type=int, default=3000)
    lu.add_argument("--p", type=int, default=6)
    lu.add_argument("--cache", default=None, metavar="DIR",
                    help="replay the comparison through this result cache")
    _add_obs_flags(lu)
    lu.set_defaults(fn=_cmd_lu)

    fw = sub.add_parser("fw", help="headline FW comparison (Fig. 9 right)")
    fw.add_argument("--n", type=int, default=92160)
    fw.add_argument("--b", type=int, default=256)
    fw.add_argument("--p", type=int, default=6)
    fw.add_argument("--cache", default=None, metavar="DIR",
                    help="replay the comparison through this result cache")
    _add_obs_flags(fw)
    fw.set_defaults(fn=_cmd_fw)

    plu = sub.add_parser("plan-lu", help="LU design-model decisions only")
    plu.add_argument("--n", type=int, default=30000)
    plu.add_argument("--b", type=int, default=3000)
    plu.add_argument("--p", type=int, default=6)
    plu.set_defaults(fn=_cmd_plan_lu)

    pfw = sub.add_parser("plan-fw", help="FW design-model decisions only")
    pfw.add_argument("--n", type=int, default=92160)
    pfw.add_argument("--b", type=int, default=256)
    pfw.add_argument("--p", type=int, default=6)
    pfw.set_defaults(fn=_cmd_plan_fw)

    mach = sub.add_parser("machines", help="predictions across machine presets")
    mach.add_argument("--n", type=int, default=30000)
    mach.set_defaults(fn=_cmd_machines)

    val = sub.add_parser("validate", help="functional validation (real numerics)")
    val.set_defaults(fn=_cmd_validate)

    exp = sub.add_parser("experiments", help="run the full table/figure harness")
    exp.add_argument("--only", help="comma-separated experiment ids", default=None)
    exp.add_argument(
        "--jobs",
        default=None,
        help="worker processes for sweep fan-out (int or 'auto'; "
        "default: $REPRO_PARALLEL or serial)",
    )
    exp.add_argument(
        "--cache",
        default=None,
        help="result-cache directory ('off' disables; "
        "default: $REPRO_CACHE or no cache)",
    )
    exp.add_argument(
        "--ledger", default=None, metavar="PATH",
        help="append an 'experiments' manifest to this run ledger",
    )
    exp.add_argument(
        "--fast-path",
        choices=("auto", "on", "off"),
        default=None,
        help="analytic no-contention fast path for sweep points "
        "(auto: use when bitwise-safe, on: require, off: always DES; "
        "default: $REPRO_FAST_PATH or auto)",
    )
    _add_obs_flags(exp)
    exp.set_defaults(fn=_cmd_experiments)

    obs = sub.add_parser("obs", help="inspect / gate metrics files and the run ledger")
    obs_sub = obs.add_subparsers(dest="obs_command", required=True)
    osum = obs_sub.add_parser("summary", help="pretty-print a metrics JSON-lines file")
    osum.add_argument("--metrics", required=True, metavar="PATH")
    osum.set_defaults(fn=_cmd_obs_summary)
    ochk = obs_sub.add_parser(
        "check", help="fail unless every overlap report meets the efficiency floor"
    )
    ochk.add_argument("--metrics", required=True, metavar="PATH")
    ochk.add_argument("--min", type=float, default=0.85, dest="minimum",
                      help="overlap_efficiency floor (default 0.85)")
    ochk.add_argument("--app", default=None, help="only check this app's reports")
    ochk.set_defaults(fn=_cmd_obs_check)

    led = obs_sub.add_parser(
        "ledger",
        help=f"the append-only run ledger (schema {LEDGER_SCHEMA})",
    )
    led_sub = led.add_subparsers(dest="ledger_command", required=True)

    lrec = led_sub.add_parser("record", help="append manifests for a recorded run")
    lrec.add_argument("--metrics", required=True, metavar="PATH",
                      help="metrics JSON-lines file of the run (--metrics-out)")
    lrec.add_argument("--trace", default=None, metavar="PATH",
                      help="Chrome trace of the run (--trace-out); enables "
                      "critical-path attribution in the manifest")
    lrec.add_argument("--ledger", required=True, metavar="PATH")
    lrec.add_argument("--preset", default=None, help="machine preset key (default: header)")
    lrec.add_argument("--source", default="cli", help="who recorded this (cli/ci/bench)")
    lrec.add_argument("--git-sha", default=None, dest="git_sha",
                      help="override the recorded commit SHA")
    lrec.add_argument("--note", default=None, help="free-form annotation")
    lrec.set_defaults(fn=_cmd_ledger_record)

    llist = led_sub.add_parser("list", help="tabulate ledger entries")
    llist.add_argument("--ledger", required=True, metavar="PATH")
    llist.add_argument("--app", default=None)
    llist.add_argument("--limit", type=int, default=None, help="newest N entries only")
    llist.set_defaults(fn=_cmd_ledger_list)

    ldiff = led_sub.add_parser("diff", help="per-field delta between two entries")
    ldiff.add_argument("--ledger", required=True, metavar="PATH")
    ldiff.add_argument("a", help="entry ref: seq number, negative index, or 'latest'")
    ldiff.add_argument("b", help="entry ref: seq number, negative index, or 'latest'")
    ldiff.set_defaults(fn=_cmd_ledger_diff)

    lchk = led_sub.add_parser(
        "check", help="gate on fidelity: fail when a series drops below the band"
    )
    lchk.add_argument("--ledger", required=True, metavar="PATH")
    lchk.add_argument("--band", type=float, default=0.85,
                      help="overlap_efficiency floor (default 0.85, the paper's claim)")
    lchk.add_argument("--drift", type=float, default=0.05,
                      help="non-fatal warning threshold for latest-vs-history drift")
    lchk.add_argument("--app", default=None, help="only check this app's series")
    lchk.set_defaults(fn=_cmd_ledger_check)

    dash = obs_sub.add_parser("dashboard", help="render the fidelity observatory")
    dash.add_argument("--ledger", required=True, metavar="PATH")
    dash.add_argument("--band", type=float, default=0.85)
    dash.add_argument("--html", default=None, metavar="PATH",
                      help="also write a self-contained HTML dashboard")
    dash.set_defaults(fn=_cmd_obs_dashboard)

    oexp = obs_sub.add_parser(
        "explain", help="root-cause diff of campaign cells (paired traced re-runs)"
    )
    oexp.add_argument("--baseline", required=True, metavar="PATH",
                      help="baseline campaign manifest JSON")
    oexp.add_argument("--manifest", required=True, metavar="PATH",
                      help="current campaign manifest JSON")
    oexp.add_argument("--cell", default=None, metavar="KEY",
                      help="comma-separated cell keys (default: every cell the "
                           "statistical check flags)")
    oexp.add_argument("--replicate", type=int, default=None,
                      help="replicate index to re-run (default: the completed "
                           "one nearest the current median)")
    oexp.add_argument("--alpha", type=float, default=None,
                      help="Mann-Whitney significance level (default 0.05)")
    oexp.add_argument("--effect", type=float, default=None,
                      help="relative median-shift threshold (default 0.02)")
    oexp.add_argument("--ledger", default=None, metavar="PATH",
                      help="append 'explain' entries to this run ledger")
    oexp.add_argument("--out", default=None, metavar="PATH",
                      help="write the explain manifests as a JSON array")
    oexp.add_argument("--json", action="store_true",
                      help="emit the explain manifests as JSON")
    oexp.set_defaults(fn=_cmd_obs_explain)

    flt = sub.add_parser("faults", help="fault injection and graceful degradation")
    flt_sub = flt.add_subparsers(dest="faults_command", required=True)

    frun = flt_sub.add_parser("run", help="one fault run: nominal vs faulted + policy")
    frun.add_argument("--app", default="lu", choices=("lu", "fw"))
    frun.add_argument("--preset", default="xd1")
    frun.add_argument("--scenario", default="degraded-link",
                      help="library scenario name (see docs/robustness.md)")
    frun.add_argument("--policy", default="repartition",
                      help="fail-fast | degrade-static | repartition | exclude-node")
    frun.add_argument("--factor", type=float, default=None,
                      help="rate factor for the scenario (e.g. 0.5 = half bandwidth)")
    frun.add_argument("--at", type=float, default=None, help="fault onset time (s)")
    frun.add_argument("--duration", type=float, default=None,
                      help="fault window length (default: persists to the end)")
    frun.add_argument("--node", type=int, default=None, help="target node id")
    frun.add_argument("--seed", type=int, default=0, help="scenario RNG seed")
    frun.add_argument("--n", type=int, default=None, help="problem size (app default)")
    frun.add_argument("--b", type=int, default=None, help="block size (app default)")
    frun.add_argument("--ledger", default=None, metavar="PATH",
                      help="append a 'fault_run' manifest to this run ledger")
    frun.add_argument("--json", action="store_true", help="emit the result as JSON")
    frun.set_defaults(fn=_cmd_faults_run)

    fswp = flt_sub.add_parser("sweep", help="apps x scenarios x policies fault grid")
    fswp.add_argument("--apps", default="lu,fw", help="comma-separated: lu,fw")
    fswp.add_argument("--scenarios", default="degraded-link,dram-contention,flaky-dma",
                      help="comma-separated library scenario names")
    fswp.add_argument("--policies", default="degrade-static,repartition",
                      help="comma-separated policy names")
    fswp.add_argument("--preset", default="xd1")
    fswp.add_argument("--factor", type=float, default=None,
                      help="rate factor applied to every rate scenario")
    fswp.add_argument("--seed", type=int, default=0, help="scenario RNG seed")
    fswp.add_argument("--jobs", default=None,
                      help="worker processes (int or 'auto'; default: $REPRO_PARALLEL)")
    fswp.add_argument("--cache", default=None,
                      help="result-cache directory ('off' disables; default: $REPRO_CACHE)")
    fswp.add_argument("--ledger", default=None, metavar="PATH",
                      help="append one 'fault_run' manifest per grid point")
    fswp.add_argument("--out", default=None, metavar="PATH",
                      help="write the raw result dicts as JSON")
    fswp.set_defaults(fn=_cmd_faults_sweep)

    frep = flt_sub.add_parser("report", help="resilience report from a run ledger")
    frep.add_argument("--ledger", required=True, metavar="PATH")
    frep.add_argument("--json", action="store_true", help="emit the report as JSON")
    frep.set_defaults(fn=_cmd_faults_report)

    cmp_ = sub.add_parser(
        "campaign", help="replicated statistical campaigns and drift checks"
    )
    cmp_sub = cmp_.add_subparsers(dest="campaign_command", required=True)

    crun = cmp_sub.add_parser(
        "run", help="apps x scenarios grid, N seeded replicates per cell"
    )
    crun.add_argument("--apps", default="lu,fw", help="comma-separated: lu,fw")
    crun.add_argument("--preset", default="xd1",
                      help="machine preset, or a comma-separated list for a "
                           "multi-preset grid (e.g. xd1,xt3,rasc)")
    crun.add_argument("--scenarios", default="nominal",
                      help="comma-separated library scenario names")
    crun.add_argument("--replicates", type=int, default=20,
                      help="replicates per cell (default 20)")
    crun.add_argument("--seed", default=None,
                      help="master seed (default: $REPRO_SEED, else 0)")
    crun.add_argument("--jitter", type=float, default=0.05,
                      help="bandwidth/DRAM/clock jitter amplitude (default 0.05)")
    crun.add_argument("--stalls", type=int, default=4,
                      help="transient DMA stalls per replicate (arrival noise)")
    crun.add_argument("--throttle-fpga", type=float, default=None, metavar="FACTOR",
                      help="persistent FPGA clock factor on every cell (e.g. 0.8)")
    crun.add_argument("--factor", type=float, default=None,
                      help="rate factor for the base scenarios")
    crun.add_argument("--jobs", default=None,
                      help="worker processes (int or 'auto'; default: $REPRO_PARALLEL)")
    crun.add_argument("--cache", default=None,
                      help="result-cache directory ('off' disables; default: $REPRO_CACHE)")
    crun.add_argument("--out", default=None, metavar="PATH",
                      help="write the campaign manifest as JSON")
    crun.add_argument("--ledger", default=None, metavar="PATH",
                      help="append a 'campaign' manifest to this run ledger")
    crun.add_argument("--json", action="store_true", help="emit the manifest as JSON")
    crun.set_defaults(fn=_cmd_campaign_run)

    crep = cmp_sub.add_parser("report", help="per-cell distribution summary")
    crep.add_argument("--manifest", default=None, metavar="PATH",
                      help="campaign manifest JSON (from 'campaign run --out')")
    crep.add_argument("--ledger", default=None, metavar="PATH",
                      help="read the latest 'campaign' entry from this ledger")
    crep.add_argument("--json", action="store_true", help="emit the manifest as JSON")
    crep.set_defaults(fn=_cmd_campaign_report)

    cchk = cmp_sub.add_parser(
        "check", help="statistical regression check against a baseline campaign"
    )
    cchk.add_argument("--baseline", required=True, metavar="PATH",
                      help="baseline campaign manifest JSON")
    cchk.add_argument("--manifest", required=True, metavar="PATH",
                      help="current campaign manifest JSON")
    cchk.add_argument("--alpha", type=float, default=None,
                      help="Mann-Whitney significance level (default 0.05)")
    cchk.add_argument("--effect", type=float, default=None,
                      help="relative median-shift threshold (default 0.02)")
    cchk.add_argument("--ledger", default=None, metavar="PATH",
                      help="append a 'campaign_check' manifest to this run ledger"
                           " (and, with --explain, the explain manifests)")
    cchk.add_argument("--json", action="store_true", help="emit the verdicts as JSON")
    cchk.add_argument("--explain", action="store_true",
                      help="re-run each flagged cell traced on both sides and "
                           "print a blame-ranked root-cause diff")
    cchk.add_argument("--explain-out", default=None, metavar="PATH",
                      help="write the explain manifests as a JSON array")
    cchk.set_defaults(fn=_cmd_campaign_check)

    cfig = cmp_sub.add_parser(
        "figures", help="per-cell box plots (and --ledger makespan timeline)"
    )
    cfig.add_argument("--manifest", default=None, metavar="PATH",
                      help="campaign manifest JSON (from 'campaign run --out')")
    cfig.add_argument("--ledger", default=None, metavar="PATH",
                      help="read campaign entries from this ledger (latest for "
                           "the box plot, all of them for the timeline)")
    cfig.add_argument("--width", type=int, default=46, help="box-plot width")
    cfig.add_argument("--out", default=None, metavar="PATH",
                      help="also write the figures to a text file")
    cfig.set_defaults(fn=_cmd_campaign_figures)

    tun = sub.add_parser(
        "tune", help="guided design-space search (successive halving + Pareto)"
    )
    tun_sub = tun.add_subparsers(dest="tune_command", required=True)

    trun = tun_sub.add_parser(
        "run", help="analytic rung -> DES on survivors -> local refinement"
    )
    trun.add_argument("--space", default=None, metavar="NAME",
                      help="named search space: fig5-bf, fw-split, lu-bf-l, "
                           "mm-codesign (exclusive with --kind/--fixed/--axis)")
    trun.add_argument("--kind", default=None, choices=("block_mm", "lu", "fw"),
                      help="workload kind for an ad-hoc space")
    trun.add_argument("--machine", default="xd1", help="machine preset (default xd1)")
    trun.add_argument("--fixed", action="append", metavar="NAME=VALUE",
                      help="pin one parameter (repeatable), e.g. --fixed b=3000")
    trun.add_argument("--axis", action="append", metavar="NAME=LO:HI:STEP",
                      help="search axis (repeatable): name=lo:hi:step inclusive, "
                           "or name=v1,v2,...")
    trun.add_argument("--seed", default=None,
                      help="master seed (default: $REPRO_SEED, else 0)")
    trun.add_argument("--eta", type=int, default=4,
                      help="keep the top 1/eta of the analytic rung (default 4)")
    trun.add_argument("--budget", type=int, default=None,
                      help="full-fidelity DES evaluation cap "
                           "(default: a quarter of the space)")
    trun.add_argument("--refine", type=int, default=1,
                      help="local-refinement neighbourhood radius; 0 disables")
    trun.add_argument("--resilience", default=None, metavar="SCENARIO",
                      help="also score DES survivors under this fault scenario "
                           "(adds the resilience Pareto objective)")
    trun.add_argument("--resilience-keep", type=int, default=2,
                      help="how many survivors to score under faults (default 2)")
    trun.add_argument("--jobs", default=None,
                      help="worker processes (int or 'auto'; default: $REPRO_PARALLEL)")
    trun.add_argument("--cache", default=None,
                      help="result-cache directory ('off' disables; default: $REPRO_CACHE)")
    trun.add_argument("--out", default=None, metavar="PATH",
                      help="write the tune manifest as JSON")
    trun.add_argument("--ledger", default=None, metavar="PATH",
                      help="append a 'tune' manifest to this run ledger")
    trun.add_argument("--json", action="store_true", help="emit the manifest as JSON")
    trun.set_defaults(fn=_cmd_tune_run)

    trep = tun_sub.add_parser("report", help="render a recorded tune manifest")
    trep.add_argument("--manifest", default=None, metavar="PATH",
                      help="tune manifest JSON (from 'tune run --out')")
    trep.add_argument("--ledger", default=None, metavar="PATH",
                      help="read the latest 'tune' entry from this ledger")
    trep.add_argument("--json", action="store_true", help="emit the manifest as JSON")
    trep.set_defaults(fn=_cmd_tune_report)

    srv = sub.add_parser(
        "serve", help="run the co-design job server (docs/service.md)"
    )
    srv.add_argument("--host", default="127.0.0.1", help="listen address")
    srv.add_argument("--port", type=int, default=8080,
                     help="listen port (0 binds an ephemeral port; default 8080)")
    srv.add_argument("--jobs", default=None,
                     help="worker processes for the shared sweep executor "
                          "(int or 'auto'; default: $REPRO_PARALLEL)")
    srv.add_argument("--cache", default=None, metavar="DIR",
                     help="result-cache directory backing job-level dedup "
                          "('off' disables; default: $REPRO_CACHE)")
    srv.add_argument("--ledger", default=None, metavar="PATH",
                     help="append a 'service' manifest per finished job")
    srv.add_argument("--rate-capacity", type=float, default=None,
                     help="per-client token-bucket burst size "
                          "(default: no rate limiting)")
    srv.add_argument("--rate-refill", type=float, default=2.0,
                     help="token-bucket refill rate per second (default 2)")
    srv.add_argument("--max-retries", type=int, default=2,
                     help="retries after a crashed job attempt (default 2)")
    srv.set_defaults(fn=_cmd_serve)

    cli = sub.add_parser(
        "client", help="talk to a running co-design job server"
    )
    cli.add_argument("--server", default="127.0.0.1:8080", metavar="HOST:PORT",
                     help="server address (default 127.0.0.1:8080)")
    cli.add_argument("--client-id", default="cli",
                     help="client identity for rate limiting (default 'cli')")
    cli_sub = cli.add_subparsers(dest="client_command", required=True)

    csub = cli_sub.add_parser("submit", help="submit one job")
    csub.add_argument("kind", help="job kind: design, sweep, faults, campaign, tune")
    csub.add_argument("--param", action="append", metavar="NAME=VALUE",
                      help="job parameter (repeatable), e.g. --param app=lu "
                           "--param experiments=fig5 (JSON values accepted)")
    csub.add_argument("--priority", default="default",
                      choices=("interactive", "default", "batch"))
    csub.add_argument("--wait", action="store_true",
                      help="block until the job completes and print its outcome")
    csub.add_argument("--timeout", type=float, default=600.0,
                      help="--wait timeout in seconds (default 600)")
    csub.add_argument("--json", action="store_true",
                      help="emit the full status document as JSON")
    csub.set_defaults(fn=_cmd_client_submit)

    csta = cli_sub.add_parser("status", help="one job's status")
    csta.add_argument("job", help="job id (from submit)")
    csta.add_argument("--json", action="store_true")
    csta.set_defaults(fn=_cmd_client_status)

    cwai = cli_sub.add_parser("wait", help="block until a job finishes")
    cwai.add_argument("job", help="job id (from submit)")
    cwai.add_argument("--timeout", type=float, default=600.0)
    cwai.add_argument("--json", action="store_true")
    cwai.set_defaults(fn=_cmd_client_wait)

    cres = cli_sub.add_parser("result", help="a completed job's result document")
    cres.add_argument("job", help="job id (from submit)")
    cres.set_defaults(fn=_cmd_client_result)

    cque = cli_sub.add_parser("queue", help="queue depth, counters, cache stats")
    cque.set_defaults(fn=_cmd_client_queue)

    cpau = cli_sub.add_parser("pause", help="hold the server's worker loop (admin)")
    cpau.set_defaults(fn=_cmd_client_pause)

    cresu = cli_sub.add_parser("resume", help="release a paused worker loop (admin)")
    cresu.set_defaults(fn=_cmd_client_resume)

    args = parser.parse_args(argv)
    _p.reset()
    try:
        result = args.fn(args)
    except BrokenPipeError:
        # Backstop for writes outside the safe writer (e.g. argparse).
        _p._die()
        return 0
    return int(result) if isinstance(result, int) else 0


def _cmd_validate(args: argparse.Namespace) -> int:
    from .validate import main as validate_main

    return validate_main()


def _cmd_obs_summary(args: argparse.Namespace) -> int:
    from .obs import metrics_summary, read_metrics_jsonl

    try:
        records = read_metrics_jsonl(args.metrics)
    except (OSError, ValueError) as exc:
        _p(f"error: {exc}")
        return 2
    _p(metrics_summary(records))
    return 0


def _cmd_obs_check(args: argparse.Namespace) -> int:
    from .obs import read_metrics_jsonl

    try:
        records = read_metrics_jsonl(args.metrics)
    except (OSError, ValueError) as exc:
        _p(f"error: {exc}")
        return 2
    reports = [
        rec for rec in records
        if rec.get("kind") == "overlap" and (args.app is None or rec.get("app") == args.app)
    ]
    if not reports:
        which = f" for app {args.app!r}" if args.app else ""
        _p(f"error: no overlap reports{which} in {args.metrics}")
        return 2
    failed = 0
    for rec in reports:
        eff = rec["overlap_efficiency"]
        ok = eff >= args.minimum
        status = "ok  " if ok else "FAIL"
        _p(f"{status} {rec['app']}: overlap_efficiency {eff:.4f} "
           f"(floor {args.minimum:.2f})")
        failed += 0 if ok else 1
    return 1 if failed else 0


# ------------------------------------------------------------- run ledger


def _cmd_ledger_record(args: argparse.Namespace) -> int:
    from .obs import (
        LedgerError,
        RunLedger,
        critical_path,
        entries_from_metrics,
        from_chrome_trace,
        read_metrics_jsonl,
    )

    try:
        records = read_metrics_jsonl(args.metrics)
        critical_paths = None
        if args.trace:
            report = critical_path(from_chrome_trace(args.trace))
            apps = {r.get("app") for r in records if r.get("kind") == "overlap"}
            critical_paths = {app: report.to_dict() for app in apps}
        entries = entries_from_metrics(
            records,
            preset=args.preset,
            source=args.source,
            git_sha=args.git_sha,
            critical_paths=critical_paths,
            note=args.note,
        )
        ledger = RunLedger(args.ledger)
        for entry in entries:
            appended = ledger.append(entry)
            cp = appended.get("critical_path") or {}
            dominant = f", critical path: {cp['dominant']}" if cp else ""
            _p(f"recorded seq {appended['seq']}: {appended['app']}@{appended['preset']} "
               f"overlap_efficiency "
               f"{appended['measured']['overlap_efficiency']:.4f}{dominant} "
               f"-> {ledger.path}")
    except (OSError, LedgerError, ValueError) as exc:
        _p(f"error: {exc}")
        return 2
    return 0


def _cmd_ledger_list(args: argparse.Namespace) -> int:
    from .obs import LEDGER_SCHEMA, LedgerError, RunLedger

    try:
        entries = RunLedger(args.ledger).entries(app=args.app)
    except LedgerError as exc:
        _p(f"error: {exc}")
        return 2
    if args.limit:
        entries = entries[-args.limit:]
    if not entries:
        _p(f"(no entries in {args.ledger})")
        return 0
    rows = []
    for e in entries:
        measured = e.get("measured") or {}
        eff = measured.get("overlap_efficiency")
        cp = e.get("critical_path") or {}
        rows.append([
            e.get("seq"), e.get("ts", ""), e.get("kind", ""), e.get("app", ""),
            e.get("preset", ""),
            f"{eff:.4f}" if eff is not None else "-",
            cp.get("dominant", "-"),
            str(e.get("git_sha", ""))[:8],
            e.get("source", ""),
        ])
    _p(table(
        ["seq", "ts", "kind", "app", "preset", "overlap_eff", "bound by", "git", "source"],
        rows,
        title=f"run ledger {args.ledger} (schema {LEDGER_SCHEMA})",
    ))
    return 0


def _cmd_ledger_diff(args: argparse.Namespace) -> int:
    from .obs import LedgerError, RunLedger, render_diff

    try:
        ledger = RunLedger(args.ledger)
        a, b = ledger.resolve(args.a), ledger.resolve(args.b)
    except LedgerError as exc:
        _p(f"error: {exc}")
        return 2
    _p(render_diff(a, b))
    return 0


def _cmd_ledger_check(args: argparse.Namespace) -> int:
    from .obs import LedgerError, RunLedger, fidelity_check, fidelity_report

    try:
        entries = RunLedger(args.ledger).entries()
    except LedgerError as exc:
        _p(f"error: {exc}")
        return 2
    if not entries:
        _p(f"error: ledger {args.ledger} is empty or missing")
        return 2
    stats = fidelity_report(entries, band=args.band)
    if args.app is not None:
        stats = [st for st in stats if st.app == args.app]
    if not stats:
        which = f" for app {args.app!r}" if args.app else ""
        _p(f"error: no design_run series{which} in {args.ledger}")
        return 2
    for st in stats:
        _p(st.summary(band=args.band))
    failures, warnings = fidelity_check(
        entries, band=args.band, drift_tolerance=args.drift, app=args.app
    )
    for msg in warnings:
        _p(f"warning: {msg}")
    for msg in failures:
        _p(f"FAIL: {msg}")
    if failures:
        return 1
    _p(f"fidelity ok: every series at or above the {args.band:.2f} band")
    return 0


def _cmd_obs_dashboard(args: argparse.Namespace) -> int:
    from pathlib import Path

    from .obs import LedgerError, RunLedger, render_ascii, render_html

    try:
        entries = RunLedger(args.ledger).entries()
    except LedgerError as exc:
        _p(f"error: {exc}")
        return 2
    _p(render_ascii(entries, band=args.band))
    if args.html:
        path = Path(args.html)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(render_html(entries, band=args.band), encoding="utf-8")
        _p(f"dashboard written to {path}")
    return 0


def _scenario_from_args(args: argparse.Namespace):
    from .faults import build_scenario

    return build_scenario(
        args.scenario,
        factor=getattr(args, "factor", None),
        at=getattr(args, "at", None),
        duration=getattr(args, "duration", None),
        node=getattr(args, "node", None),
        seed=getattr(args, "seed", 0),
    )


def _append_fault_entries(ledger_path: str, results: list[dict], source: str) -> None:
    from .obs import RunLedger, fault_run_entry

    ledger = RunLedger(ledger_path)
    for result in results:
        ledger.append(fault_run_entry(result, source=source))
    _p(f"{len(results)} fault_run manifest(s) appended to {ledger.path}")


def _cmd_faults_run(args: argparse.Namespace) -> int:
    import json as _json

    from .faults import POLICIES, ResilienceReport, run_with_faults

    if args.policy not in POLICIES:
        _p(f"error: unknown policy {args.policy!r}; expected one of {POLICIES}")
        return 2
    try:
        scenario = _scenario_from_args(args)
        result = run_with_faults(
            args.app, scenario, args.policy, preset=args.preset, n=args.n, b=args.b
        ).to_dict()
    except ValueError as exc:
        _p(f"error: {exc}")
        return 2
    if args.json:
        _p(_json.dumps(result, indent=2, sort_keys=True))
    else:
        _p(ResilienceReport([result]).render_ascii())
    if args.ledger:
        _append_fault_entries(args.ledger, [result], source="cli")
    return 0


def _cmd_faults_sweep(args: argparse.Namespace) -> int:
    import json as _json
    from pathlib import Path

    from .faults import POLICIES, ResilienceReport, build_scenario, fault_sweep
    from .parallel import resolve_jobs

    apps = [a.strip() for a in args.apps.split(",") if a.strip()]
    policies = [p.strip() for p in args.policies.split(",") if p.strip()]
    unknown = [p for p in policies if p not in POLICIES]
    if unknown:
        _p(f"error: unknown policies {unknown}; expected from {POLICIES}")
        return 2
    try:
        scenarios = [
            build_scenario(name.strip(), factor=args.factor, seed=args.seed)
            for name in args.scenarios.split(",")
            if name.strip()
        ]
        resolve_jobs(args.jobs)
    except ValueError as exc:
        _p(f"error: {exc}")
        return 2
    cache = args.cache
    if cache is not None and cache.strip().lower() in ("", "off", "0", "none", "false"):
        cache = False
    results = fault_sweep(
        apps, scenarios, policies, preset=args.preset, jobs=args.jobs, cache=cache
    )
    _p(ResilienceReport(results).render_ascii())
    if args.out:
        path = Path(args.out)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(_json.dumps(results, indent=2, sort_keys=True), encoding="utf-8")
        _p(f"results written to {path}")
    if args.ledger:
        _append_fault_entries(args.ledger, results, source="cli")
    return 0


def _cmd_faults_report(args: argparse.Namespace) -> int:
    import json as _json

    from .faults import ResilienceReport
    from .obs import LedgerError

    try:
        report = ResilienceReport.from_ledger(args.ledger)
    except LedgerError as exc:
        _p(f"error: {exc}")
        return 2
    if args.json:
        _p(_json.dumps(report.to_dict(), indent=2, sort_keys=True))
    else:
        _p(report.render_ascii())
    return 0


def _cmd_campaign_run(args: argparse.Namespace) -> int:
    import json as _json
    from pathlib import Path

    from .campaign import (
        CampaignSpec,
        PerturbationModel,
        render_manifest,
        resolve_seed,
        run_campaign,
    )
    from .faults import build_scenario
    from .parallel import resolve_jobs

    apps = tuple(a.strip() for a in args.apps.split(",") if a.strip())
    presets = tuple(p.strip() for p in args.preset.split(",") if p.strip())
    try:
        seed = resolve_seed(args.seed)
        scenarios = tuple(
            build_scenario(name.strip(), factor=args.factor, seed=seed)
            for name in args.scenarios.split(",")
            if name.strip()
        )
        perturb = PerturbationModel(
            bandwidth_jitter=args.jitter,
            dram_jitter=args.jitter,
            clock_jitter=args.jitter,
            stall_count=args.stalls,
        )
        spec = CampaignSpec(
            apps=apps,
            preset=presets[0] if presets else "xd1",
            presets=presets if len(presets) > 1 else (),
            scenarios=scenarios,
            replicates=args.replicates,
            seed=seed,
            perturb=perturb,
            throttle_fpga=args.throttle_fpga,
        )
        resolve_jobs(args.jobs)
    except ValueError as exc:
        _p(f"error: {exc}")
        return 2
    cache = args.cache
    if cache is not None and cache.strip().lower() in ("", "off", "0", "none", "false"):
        cache = False
    telemetry: dict = {}
    try:
        manifest = run_campaign(spec, jobs=args.jobs, cache=cache, telemetry=telemetry)
    except ValueError as exc:
        _p(f"error: {exc}")
        return 2
    if args.json:
        _p(_json.dumps(manifest, indent=2, sort_keys=True))
    else:
        _p(render_manifest(manifest))
        if telemetry.get("executor"):
            from .obs.dashboard import _worker_lines

            _p("workers:")
            for line in _worker_lines(telemetry):
                _p(f"  {line}")
    if args.out:
        from .campaign import write_manifest

        path = Path(args.out)
        path.parent.mkdir(parents=True, exist_ok=True)
        write_manifest(manifest, str(path))
        _p(f"manifest written to {path}")
    if args.ledger:
        from .obs import RunLedger, campaign_entry

        ledger = RunLedger(args.ledger)
        ledger.append(campaign_entry(manifest, source="cli", workers=telemetry))
        _p(f"campaign manifest appended to {ledger.path}")
    return 0


def _load_campaign_manifest(args: argparse.Namespace) -> dict | None:
    """The manifest named by ``--manifest`` or the latest ledger entry."""
    from .campaign import load_manifest
    from .obs import LedgerError, RunLedger

    if args.manifest:
        return load_manifest(args.manifest)
    if args.ledger:
        entries = RunLedger(args.ledger).entries(kind="campaign")
        if not entries:
            raise LedgerError(f"{args.ledger}: no campaign entries")
        return entries[-1]
    return None


def _cmd_campaign_report(args: argparse.Namespace) -> int:
    import json as _json

    from .campaign import render_manifest
    from .obs import LedgerError

    try:
        manifest = _load_campaign_manifest(args)
    except (OSError, ValueError, LedgerError) as exc:
        _p(f"error: {exc}")
        return 2
    if manifest is None:
        _p("error: pass --manifest PATH or --ledger PATH")
        return 2
    if args.json:
        _p(_json.dumps(manifest, indent=2, sort_keys=True))
    else:
        _p(render_manifest(manifest))
    return 0


def _cmd_campaign_check(args: argparse.Namespace) -> int:
    import json as _json

    from .campaign import (
        DEFAULT_ALPHA,
        DEFAULT_EFFECT,
        compare_campaigns,
        load_manifest,
        render_check,
    )

    try:
        baseline = load_manifest(args.baseline)
        current = load_manifest(args.manifest)
    except (OSError, ValueError) as exc:
        _p(f"error: {exc}")
        return 2
    comparison = compare_campaigns(
        baseline,
        current,
        alpha=args.alpha if args.alpha is not None else DEFAULT_ALPHA,
        effect_threshold=args.effect if args.effect is not None else DEFAULT_EFFECT,
    )
    if args.json:
        _p(_json.dumps(comparison, indent=2, sort_keys=True))
    else:
        _p(render_check(comparison))
    if args.ledger:
        from .obs import RunLedger, campaign_check_entry

        ledger = RunLedger(args.ledger)
        ledger.append(campaign_check_entry(comparison, source="cli"))
        _p(f"campaign_check manifest appended to {ledger.path}")
    if args.explain or args.explain_out:
        from .campaign import explain_comparison

        try:
            explains = explain_comparison(baseline, current, comparison=comparison)
        except ValueError as exc:
            _p(f"error: {exc}")
            return 2
        _emit_explains(explains, out=args.explain_out,
                       ledger=args.ledger, as_json=args.json)
    return 1 if comparison["verdict"] == "fail" else 0


def _emit_explains(
    explains: list[dict],
    *,
    out: str | None,
    ledger: str | None,
    as_json: bool,
) -> None:
    """Print / persist explain manifests (shared by check --explain and
    obs explain)."""
    import json as _json
    from pathlib import Path

    from .obs import render_explain

    if as_json:
        _p(_json.dumps(explains, indent=2, sort_keys=True))
    elif not explains:
        _p("nothing to explain (no flagged cells)")
    else:
        for manifest in explains:
            _p(render_explain(manifest))
    if out:
        path = Path(out)
        path.parent.mkdir(parents=True, exist_ok=True)
        with open(path, "w", encoding="utf-8") as fh:
            _json.dump(explains, fh, indent=2, sort_keys=True)
            fh.write("\n")
        _p(f"explain manifests written to {path} ({len(explains)} cells)")
    if ledger and explains:
        from .obs import RunLedger, explain_entry

        led = RunLedger(ledger)
        for manifest in explains:
            led.append(explain_entry(manifest, source="cli"))
        _p(f"{len(explains)} explain manifests appended to {led.path}")


def _cmd_obs_explain(args: argparse.Namespace) -> int:
    from .campaign import DEFAULT_ALPHA, DEFAULT_EFFECT, load_manifest
    from .campaign.explain import explain_cell, explain_comparison

    try:
        baseline = load_manifest(args.baseline)
        current = load_manifest(args.manifest)
    except (OSError, ValueError) as exc:
        _p(f"error: {exc}")
        return 2
    try:
        if args.cell:
            keys = [k.strip() for k in args.cell.split(",") if k.strip()]
            explains = [
                explain_cell(baseline, current, key, replicate=args.replicate)
                for key in keys
            ]
        else:
            explains = explain_comparison(
                baseline,
                current,
                alpha=args.alpha if args.alpha is not None else DEFAULT_ALPHA,
                effect_threshold=(
                    args.effect if args.effect is not None else DEFAULT_EFFECT
                ),
            )
    except ValueError as exc:
        _p(f"error: {exc}")
        return 2
    _emit_explains(explains, out=args.out, ledger=args.ledger, as_json=args.json)
    return 0


def _cmd_campaign_figures(args: argparse.Namespace) -> int:
    from pathlib import Path

    from .campaign import render_figures, render_timeline
    from .obs import LedgerError

    try:
        manifest = _load_campaign_manifest(args)
    except (OSError, ValueError, LedgerError) as exc:
        _p(f"error: {exc}")
        return 2
    if manifest is None:
        _p("error: pass --manifest PATH or --ledger PATH")
        return 2
    parts = [render_figures(manifest, width=args.width)]
    if args.ledger:
        from .obs import RunLedger

        entries = RunLedger(args.ledger).entries(kind="campaign")
        if len(entries) > 1:
            parts.append(render_timeline(entries))
    text = "\n\n".join(parts)
    _p(text)
    if args.out:
        path = Path(args.out)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(text + "\n", encoding="utf-8")
        _p(f"figures written to {path}")
    return 0


def _cmd_experiments(args: argparse.Namespace) -> int:
    from .experiments import ALL_EXPERIMENTS, active_cache, configured
    from .parallel import resolve_jobs

    if args.only:
        wanted = [name.strip() for name in args.only.split(",")]
        unknown = [w for w in wanted if w not in ALL_EXPERIMENTS]
        if unknown:
            _p(f"unknown experiment ids: {unknown}; available: {sorted(ALL_EXPERIMENTS)}")
            return 2
        selected = {name: ALL_EXPERIMENTS[name] for name in wanted}
    else:
        selected = ALL_EXPERIMENTS
    cache = args.cache
    if cache is not None and cache.strip().lower() in ("", "off", "0", "none", "false"):
        cache = False
    try:
        resolve_jobs(args.jobs)
    except ValueError as exc:
        _p(f"error: {exc}")
        return 2
    if _obs_enabled(args):
        from .obs import Tracer, set_tracer

        set_tracer(Tracer())
    failed = []
    outcomes: list[tuple[str, bool]] = []
    with configured(jobs=args.jobs, cache=cache, fast_path=args.fast_path):
        for name, fn in selected.items():
            result = fn()
            outcomes.append((name, result.ok))
            _p("=" * 72)
            _p(result.summary())
            _p(result.text)
            _p()
            if not result.ok:
                failed.append(name)
        run_cache = active_cache()
        if run_cache is not None:
            _p(run_cache.footer())
    if _obs_enabled(args):
        from .obs import REGISTRY, get_tracer, write_chrome_trace, write_metrics_jsonl

        tracer = get_tracer()
        if args.trace_out:
            path = write_chrome_trace(
                args.trace_out, spans=tracer.spans, span_epoch=tracer.epoch
            )
            _p(f"trace written to {path} (chrome://tracing / Perfetto)")
        if args.metrics_out:
            path = write_metrics_jsonl(
                args.metrics_out, REGISTRY,
                extra={"command": "experiments", "only": args.only},
            )
            _p(f"metrics written to {path}")
    if args.ledger:
        from .obs import REGISTRY, RunLedger, experiments_entry
        from .sim.analytic import fastpath_summary

        try:
            sim_points = int(REGISTRY.value("experiments.sim_points"))
        except KeyError:
            sim_points = None
        entry = RunLedger(args.ledger).append(
            experiments_entry(
                outcomes,
                sim_points=sim_points,
                source="cli",
                fast_path=fastpath_summary(REGISTRY),
            )
        )
        _p(f"recorded seq {entry['seq']}: experiments "
           f"({entry['passed']} passed, {entry['failed']} failed) -> {args.ledger}")
    if failed:
        _p(f"FAILED checks in: {failed}")
        return 1
    _p("All reproduction checks passed.")
    return 0


def _tune_space_from_args(args: argparse.Namespace):
    """The search space named by ``--space`` or built from ``--kind`` flags."""
    from .tune import SearchSpace, named_space, parse_axis

    if args.space:
        if args.kind or args.fixed or args.axis:
            raise ValueError("--space is exclusive with --kind/--fixed/--axis")
        return named_space(args.space)
    if not args.kind:
        raise ValueError("pass --space NAME, or --kind with --axis (and --fixed)")
    fixed = {}
    for item in args.fixed or []:
        name, values = parse_axis(item)
        if len(values) != 1:
            raise ValueError(f"--fixed {item!r} must pin exactly one value")
        fixed[name] = values[0]
    axes = dict(parse_axis(item) for item in args.axis or [])
    if not axes:
        raise ValueError("at least one --axis is required for an ad-hoc space")
    return SearchSpace(kind=args.kind, machine=args.machine, fixed=fixed, axes=axes)


def _cmd_tune_run(args: argparse.Namespace) -> int:
    import json as _json
    from pathlib import Path

    from .campaign import resolve_seed
    from .tune import TuneSpec, render_tune, run_tune, write_manifest

    try:
        spec = TuneSpec(
            space=_tune_space_from_args(args),
            seed=resolve_seed(args.seed),
            eta=args.eta,
            budget=args.budget,
            refine=args.refine,
            resilience=args.resilience,
            resilience_keep=args.resilience_keep,
        )
    except ValueError as exc:
        _p(f"error: {exc}")
        return 2
    cache = args.cache
    if cache is not None and cache.strip().lower() in ("", "off", "0", "none", "false"):
        cache = False
    telemetry: dict = {}
    try:
        manifest = run_tune(spec, jobs=args.jobs, cache=cache, telemetry=telemetry)
    except ValueError as exc:
        _p(f"error: {exc}")
        return 2
    if args.json:
        _p(_json.dumps(manifest, indent=2, sort_keys=True))
    else:
        _p(render_tune(manifest))
        if telemetry.get("executor"):
            from .obs.dashboard import _worker_lines

            _p("workers:")
            for line in _worker_lines(telemetry):
                _p(f"  {line}")
    if args.out:
        path = Path(args.out)
        path.parent.mkdir(parents=True, exist_ok=True)
        write_manifest(manifest, str(path))
        _p(f"manifest written to {path}")
    if args.ledger:
        from .obs import RunLedger, tune_entry

        ledger = RunLedger(args.ledger)
        entry = ledger.append(
            tune_entry(manifest, source="cli", workers=telemetry or None)
        )
        _p(f"recorded seq {entry['seq']}: tune manifest -> {ledger.path}")
    return 0


def _cmd_tune_report(args: argparse.Namespace) -> int:
    import json as _json

    from .obs import LedgerError
    from .tune import load_manifest, render_tune

    try:
        if args.manifest:
            manifest = load_manifest(args.manifest)
        elif args.ledger:
            from .obs import RunLedger

            entries = RunLedger(args.ledger).entries(kind="tune")
            if not entries:
                raise LedgerError(f"{args.ledger}: no tune entries")
            manifest = entries[-1]
        else:
            _p("error: pass --manifest PATH or --ledger PATH")
            return 2
    except (OSError, ValueError, LedgerError) as exc:
        _p(f"error: {exc}")
        return 2
    if args.json:
        _p(_json.dumps(manifest, indent=2, sort_keys=True))
    else:
        _p(render_tune(manifest))
    return 0


# ------------------------------------------------------------------ service


def _cmd_serve(args: argparse.Namespace) -> int:
    import asyncio
    import signal

    from .service import CodesignServer

    cache = args.cache
    if isinstance(cache, str) and cache.strip().lower() in ("off", "0", "none"):
        cache = None
    elif cache is None:
        from .parallel.cache import cache_from_env

        cache = cache_from_env()
    server = CodesignServer(
        args.host,
        args.port,
        jobs=args.jobs,
        cache=cache,
        ledger=args.ledger,
        rate_capacity=args.rate_capacity,
        rate_refill_per_s=args.rate_refill,
        max_retries=args.max_retries,
    )

    async def _serve() -> None:
        stop = asyncio.Event()
        loop = asyncio.get_running_loop()
        for sig in (signal.SIGTERM, signal.SIGINT):
            try:
                loop.add_signal_handler(sig, stop.set)
            except (NotImplementedError, RuntimeError):  # pragma: no cover
                pass
        await server.start()
        _p(f"co-design service listening on {args.host}:{server.bound_port}")
        _p(f"  jobs={server.executor.jobs}  cache={'on' if server.cache else 'off'}"
           f"  ledger={args.ledger or 'off'}")
        await stop.wait()
        _p("shutting down: draining queue ...")
        await server.stop(drain=True)
        _p("service stopped cleanly")

    asyncio.run(_serve())
    return 0


def _parse_client_params(pairs: list[str] | None) -> dict:
    """``--param name=value`` pairs into a params dict (JSON values OK)."""
    import json as _json

    params: dict = {}
    for pair in pairs or []:
        name, sep, raw = pair.partition("=")
        if not sep or not name:
            raise ValueError(f"bad --param {pair!r}: expected NAME=VALUE")
        try:
            params[name] = _json.loads(raw)
        except _json.JSONDecodeError:
            params[name] = raw
    return params


def _client_from_args(args: argparse.Namespace):
    from .service import ServiceClient

    host, _, port = args.server.rpartition(":")
    if not host or not port.isdigit():
        raise ValueError(f"bad --server {args.server!r}: expected HOST:PORT")
    return ServiceClient(host, int(port), client_id=args.client_id)


def _print_job_status(doc: dict, as_json: bool) -> None:
    import json as _json

    if as_json:
        _p(_json.dumps(doc, indent=2, sort_keys=True))
        return
    line = (f"job {doc.get('id')}  kind={doc.get('kind')}  "
            f"state={doc.get('state')}  source={doc.get('source')}")
    if doc.get("deduped"):
        line += "  deduped=true"
    if doc.get("result_hash"):
        line += f"  result_hash={doc['result_hash'][:16]}"
    if doc.get("error"):
        line += f"  error={doc['error']}"
    _p(line)


def _cmd_client_submit(args: argparse.Namespace) -> int:
    from .service import ServiceError

    try:
        client = _client_from_args(args)
        params = _parse_client_params(args.param)
        doc = client.submit(args.kind, params, priority=args.priority)
        if args.wait and doc.get("state") not in ("completed", "failed"):
            waited = client.wait(doc["id"], timeout=args.timeout)
            waited["deduped"] = doc.get("deduped", False)
            doc = waited
        _print_job_status(doc, args.json)
        return 1 if doc.get("state") == "failed" else 0
    except (ServiceError, ValueError, OSError, TimeoutError) as exc:
        _p(f"error: {exc}")
        return 2


def _cmd_client_status(args: argparse.Namespace) -> int:
    from .service import ServiceError

    try:
        doc = _client_from_args(args).status(args.job)
    except (ServiceError, ValueError, OSError) as exc:
        _p(f"error: {exc}")
        return 2
    _print_job_status(doc, args.json)
    return 0


def _cmd_client_wait(args: argparse.Namespace) -> int:
    from .service import ServiceError

    try:
        doc = _client_from_args(args).wait(args.job, timeout=args.timeout)
    except (ServiceError, ValueError, OSError, TimeoutError) as exc:
        _p(f"error: {exc}")
        return 2
    _print_job_status(doc, args.json)
    return 1 if doc.get("state") == "failed" else 0


def _cmd_client_result(args: argparse.Namespace) -> int:
    import json as _json

    from .service import ServiceError

    try:
        result = _client_from_args(args).result(args.job)
    except (ServiceError, ValueError, OSError) as exc:
        _p(f"error: {exc}")
        return 2
    _p(_json.dumps(result, indent=2, sort_keys=True))
    return 0


def _cmd_client_queue(args: argparse.Namespace) -> int:
    import json as _json

    from .service import ServiceError

    try:
        doc = _client_from_args(args).queue()
    except (ServiceError, ValueError, OSError) as exc:
        _p(f"error: {exc}")
        return 2
    _p(_json.dumps(doc, indent=2, sort_keys=True))
    return 0


def _cmd_client_pause(args: argparse.Namespace) -> int:
    from .service import ServiceError

    try:
        _client_from_args(args).pause()
    except (ServiceError, ValueError, OSError) as exc:
        _p(f"error: {exc}")
        return 2
    _p("paused")
    return 0


def _cmd_client_resume(args: argparse.Namespace) -> int:
    from .service import ServiceError

    try:
        _client_from_args(args).resume()
    except (ServiceError, ValueError, OSError) as exc:
        _p(f"error: {exc}")
        return 2
    _p("resumed")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
