"""Command-line interface: ``repro-xd1``.

Runs the paper's experiments from the shell::

    repro-xd1 lu                 # headline LU comparison (Figure 9, left)
    repro-xd1 fw                 # headline FW comparison (Figure 9, right)
    repro-xd1 plan-lu --n 30000  # just the design-model decisions
    repro-xd1 plan-fw --n 92160
    repro-xd1 machines           # predicted performance across presets

Any ``lu``/``fw`` run also accepts ``--trace-out timeline.json`` (a
Chrome ``trace_event`` timeline of the simulated lanes plus harness
wall-clock spans) and ``--metrics-out metrics.jsonl`` (counters, gauges,
histograms and the overlap-accounting report).  ``repro-xd1 obs
summary`` pretty-prints a metrics file; ``repro-xd1 obs check`` gates on
``overlap_efficiency`` (schema: docs/observability.md).
"""

from __future__ import annotations

import argparse
import os
import sys

from .analysis import bar_chart, percent, table
from .apps.fw import FwDesign
from .apps.lu import LuDesign
from .hw import FloydWarshallDesign, MatrixMultiplyDesign
from .machine import ALL_PRESETS, cray_xd1


def _obs_enabled(args: argparse.Namespace) -> bool:
    return bool(getattr(args, "trace_out", None) or getattr(args, "metrics_out", None))


def _obs_run(args: argparse.Namespace, app: str, design) -> None:
    """The ``--trace-out`` / ``--metrics-out`` tail of an app command.

    Runs one *traced* hybrid simulation with a DES monitor attached,
    reconciles it against the plan's prediction, and writes whichever
    exports were requested.
    """
    from .obs import REGISTRY, get_tracer, write_chrome_trace, write_metrics_jsonl
    from .sim import SimMonitor

    tracer = get_tracer()
    monitor = SimMonitor()
    with tracer.span(f"{app}.traced_run", category="cli", n=args.n, p=args.p):
        result = design.simulate(trace=True, monitor=monitor)
    report = design.overlap_report(result=result)
    monitor.to_registry(REGISTRY, app=app)
    print(report.summary())
    if args.trace_out:
        path = write_chrome_trace(
            args.trace_out, sim_trace=result.trace,
            spans=tracer.spans, span_epoch=tracer.epoch,
        )
        print(f"trace written to {path} (chrome://tracing / Perfetto)")
    if args.metrics_out:
        path = write_metrics_jsonl(
            args.metrics_out, REGISTRY, overlap=[report],
            extra={"app": app, "n": args.n, "b": getattr(args, "b", None), "p": args.p},
        )
        print(f"metrics written to {path}")


def _add_obs_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--trace-out", default=None, metavar="PATH",
        help="write a Chrome trace_event timeline of a traced hybrid run",
    )
    parser.add_argument(
        "--metrics-out", default=None, metavar="PATH",
        help="write metrics JSON-lines (counters, histograms, overlap report)",
    )


def _cmd_lu(args: argparse.Namespace) -> None:
    if _obs_enabled(args):
        from .obs import Tracer, set_tracer

        set_tracer(Tracer())
    design = LuDesign(cray_xd1(p=args.p), n=args.n, b=args.b)
    plan = design.plan
    print(f"plan: b_p={plan.partition.b_p} b_f={plan.partition.b_f} l={plan.balance.l} "
          f"predicted={plan.prediction.gflops:.2f} GFLOPS")
    cmp = design.compare()
    print(bar_chart(
        ["Hybrid", "Processor-only", "FPGA-only", "Predicted"],
        [cmp.hybrid.gflops, cmp.cpu_only.gflops, cmp.fpga_only.gflops, cmp.predicted_gflops],
        f"LU decomposition, n={args.n}, b={args.b}, p={args.p} (GFLOPS)",
        unit=" GFLOPS",
    ))
    print(f"speedup vs CPU-only  : {cmp.speedup_vs_cpu:.2f}x (paper: 1.3x)")
    print(f"speedup vs FPGA-only : {cmp.speedup_vs_fpga:.2f}x (paper: 2x)")
    print(f"of baseline sum      : {percent(cmp.fraction_of_sum)} (paper: ~80%)")
    print(f"of model prediction  : {percent(cmp.fraction_of_predicted)} (paper: ~86%)")
    if _obs_enabled(args):
        _obs_run(args, "lu", design)


def _cmd_fw(args: argparse.Namespace) -> None:
    if _obs_enabled(args):
        from .obs import Tracer, set_tracer

        set_tracer(Tracer())
    design = FwDesign(cray_xd1(p=args.p), n=args.n, b=args.b)
    plan = design.plan
    print(f"plan: l1={plan.partition.l1} l2={plan.partition.l2} "
          f"predicted={plan.prediction.gflops:.2f} GFLOPS")
    cmp = design.compare()
    print(bar_chart(
        ["Hybrid", "Processor-only", "FPGA-only", "Predicted"],
        [cmp.hybrid.gflops, cmp.cpu_only.gflops, cmp.fpga_only.gflops, cmp.predicted_gflops],
        f"Floyd-Warshall, n={args.n}, b={args.b}, p={args.p} (GFLOPS)",
        unit=" GFLOPS",
    ))
    print(f"speedup vs CPU-only  : {cmp.speedup_vs_cpu:.2f}x (paper: 5.8x)")
    print(f"speedup vs FPGA-only : {cmp.speedup_vs_fpga:.2f}x (paper: 1.15x)")
    print(f"of baseline sum      : {percent(cmp.fraction_of_sum)} (paper: >95%)")
    print(f"of model prediction  : {percent(cmp.fraction_of_predicted)} (paper: ~96%)")
    if _obs_enabled(args):
        _obs_run(args, "fw", design)


def _cmd_plan_lu(args: argparse.Namespace) -> None:
    design = LuDesign(cray_xd1(p=args.p), n=args.n, b=args.b)
    part, bal = design.plan.partition, design.plan.balance
    rows = [
        ["b_p (CPU rows)", part.b_p],
        ["b_f (FPGA rows)", part.b_f],
        ["b_f exact (Eq. 4)", f"{part.b_f_exact:.1f}"],
        ["T_p / stripe", f"{part.t_p * 1e3:.3f} ms"],
        ["T_f / stripe", f"{part.t_f * 1e3:.3f} ms"],
        ["T_comm / stripe", f"{part.t_comm * 1e3:.3f} ms"],
        ["T_mem / stripe", f"{part.t_mem * 1e3:.3f} ms"],
        ["l (Eq. 5)", bal.l],
        ["SRAM words", part.sram_words],
        ["coordination", f"{design.plan.coordination_hz:.1f} Hz"],
        ["predicted", f"{design.plan.prediction.gflops:.2f} GFLOPS"],
    ]
    print(table(["decision", "value"], rows, title=f"LU plan (n={args.n}, b={args.b})"))


def _cmd_plan_fw(args: argparse.Namespace) -> None:
    design = FwDesign(cray_xd1(p=args.p), n=args.n, b=args.b)
    part = design.plan.partition
    rows = [
        ["l1 (CPU ops/phase)", part.l1],
        ["l2 (FPGA ops/phase)", part.l2],
        ["l1 exact (Eq. 6)", f"{part.l1_exact:.2f}"],
        ["T_p / op", f"{part.t_p * 1e3:.1f} ms"],
        ["T_f / op", f"{part.t_f * 1e3:.1f} ms"],
        ["T_comm / phase", f"{part.t_comm * 1e3:.3f} ms"],
        ["T_mem / op", f"{part.t_mem * 1e3:.3f} ms"],
        ["coordination", f"{design.plan.coordination_hz:.2f} Hz"],
        ["predicted", f"{design.plan.prediction.gflops:.2f} GFLOPS"],
    ]
    print(table(["decision", "value"], rows, title=f"FW plan (n={args.n}, b={args.b})"))


def _cmd_machines(args: argparse.Namespace) -> None:
    from .core import DesignModel

    rows = []
    for key, factory in ALL_PRESETS.items():
        spec = factory()
        mm = MatrixMultiplyDesign.for_device(spec.node.fpga.device)
        fwd = FloydWarshallDesign.for_device(spec.node.fpga.device)
        lu_pred = DesignModel(spec.parameters("dgemm", mm)).plan_lu(
            args.n, 3000, mm.k
        ).prediction.gflops if spec.p >= 2 else float("nan")
        fw_n = 256 * spec.p * 60
        fw_pred = DesignModel(spec.parameters("fw", fwd)).plan_fw(fw_n, 256, fwd.k).prediction.gflops
        rows.append([spec.name, spec.p, mm.k, f"{mm.freq_hz / 1e6:.0f} MHz",
                     f"{lu_pred:.1f}", f"{fw_pred:.2f}"])
    print(table(
        ["machine", "p", "k", "F_f(MM)", "LU GFLOPS (pred)", "FW GFLOPS (pred)"],
        rows,
        title="Design-model predictions across machine presets (Section 4.5)",
    ))


def main(argv: list[str] | None = None) -> int:
    """Entry point for the ``repro-xd1`` console script."""
    parser = argparse.ArgumentParser(
        prog="repro-xd1",
        description="Reproduce Zhuo & Prasanna (IPPS 2007) experiments on a simulated Cray XD1.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    lu = sub.add_parser("lu", help="headline LU comparison (Fig. 9 left)")
    lu.add_argument("--n", type=int, default=30000)
    lu.add_argument("--b", type=int, default=3000)
    lu.add_argument("--p", type=int, default=6)
    _add_obs_flags(lu)
    lu.set_defaults(fn=_cmd_lu)

    fw = sub.add_parser("fw", help="headline FW comparison (Fig. 9 right)")
    fw.add_argument("--n", type=int, default=92160)
    fw.add_argument("--b", type=int, default=256)
    fw.add_argument("--p", type=int, default=6)
    _add_obs_flags(fw)
    fw.set_defaults(fn=_cmd_fw)

    plu = sub.add_parser("plan-lu", help="LU design-model decisions only")
    plu.add_argument("--n", type=int, default=30000)
    plu.add_argument("--b", type=int, default=3000)
    plu.add_argument("--p", type=int, default=6)
    plu.set_defaults(fn=_cmd_plan_lu)

    pfw = sub.add_parser("plan-fw", help="FW design-model decisions only")
    pfw.add_argument("--n", type=int, default=92160)
    pfw.add_argument("--b", type=int, default=256)
    pfw.add_argument("--p", type=int, default=6)
    pfw.set_defaults(fn=_cmd_plan_fw)

    mach = sub.add_parser("machines", help="predictions across machine presets")
    mach.add_argument("--n", type=int, default=30000)
    mach.set_defaults(fn=_cmd_machines)

    val = sub.add_parser("validate", help="functional validation (real numerics)")
    val.set_defaults(fn=_cmd_validate)

    exp = sub.add_parser("experiments", help="run the full table/figure harness")
    exp.add_argument("--only", help="comma-separated experiment ids", default=None)
    exp.add_argument(
        "--jobs",
        default=None,
        help="worker processes for sweep fan-out (int or 'auto'; "
        "default: $REPRO_PARALLEL or serial)",
    )
    exp.add_argument(
        "--cache",
        default=None,
        help="result-cache directory ('off' disables; "
        "default: $REPRO_CACHE or no cache)",
    )
    _add_obs_flags(exp)
    exp.set_defaults(fn=_cmd_experiments)

    obs = sub.add_parser("obs", help="inspect / gate metrics files")
    obs_sub = obs.add_subparsers(dest="obs_command", required=True)
    osum = obs_sub.add_parser("summary", help="pretty-print a metrics JSON-lines file")
    osum.add_argument("--metrics", required=True, metavar="PATH")
    osum.set_defaults(fn=_cmd_obs_summary)
    ochk = obs_sub.add_parser(
        "check", help="fail unless every overlap report meets the efficiency floor"
    )
    ochk.add_argument("--metrics", required=True, metavar="PATH")
    ochk.add_argument("--min", type=float, default=0.85, dest="minimum",
                      help="overlap_efficiency floor (default 0.85)")
    ochk.add_argument("--app", default=None, help="only check this app's reports")
    ochk.set_defaults(fn=_cmd_obs_check)

    args = parser.parse_args(argv)
    try:
        result = args.fn(args)
    except BrokenPipeError:
        # e.g. `repro-xd1 obs summary ... | head`; silence the flush-at-exit
        # error too by pointing stdout at devnull.
        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        return 0
    return int(result) if isinstance(result, int) else 0


def _cmd_validate(args: argparse.Namespace) -> int:
    from .validate import main as validate_main

    return validate_main()


def _cmd_obs_summary(args: argparse.Namespace) -> int:
    from .obs import metrics_summary, read_metrics_jsonl

    print(metrics_summary(read_metrics_jsonl(args.metrics)))
    return 0


def _cmd_obs_check(args: argparse.Namespace) -> int:
    from .obs import read_metrics_jsonl

    reports = [
        rec for rec in read_metrics_jsonl(args.metrics)
        if rec.get("kind") == "overlap" and (args.app is None or rec.get("app") == args.app)
    ]
    if not reports:
        which = f" for app {args.app!r}" if args.app else ""
        print(f"error: no overlap reports{which} in {args.metrics}")
        return 2
    failed = 0
    for rec in reports:
        eff = rec["overlap_efficiency"]
        ok = eff >= args.minimum
        status = "ok  " if ok else "FAIL"
        print(f"{status} {rec['app']}: overlap_efficiency {eff:.4f} "
              f"(floor {args.minimum:.2f})")
        failed += 0 if ok else 1
    return 1 if failed else 0


def _cmd_experiments(args: argparse.Namespace) -> int:
    from .experiments import ALL_EXPERIMENTS, active_cache, configured
    from .parallel import resolve_jobs

    if args.only:
        wanted = [name.strip() for name in args.only.split(",")]
        unknown = [w for w in wanted if w not in ALL_EXPERIMENTS]
        if unknown:
            print(f"unknown experiment ids: {unknown}; available: {sorted(ALL_EXPERIMENTS)}")
            return 2
        selected = {name: ALL_EXPERIMENTS[name] for name in wanted}
    else:
        selected = ALL_EXPERIMENTS
    cache = args.cache
    if cache is not None and cache.strip().lower() in ("", "off", "0", "none", "false"):
        cache = False
    try:
        resolve_jobs(args.jobs)
    except ValueError as exc:
        print(f"error: {exc}")
        return 2
    if _obs_enabled(args):
        from .obs import Tracer, set_tracer

        set_tracer(Tracer())
    failed = []
    with configured(jobs=args.jobs, cache=cache):
        for name, fn in selected.items():
            result = fn()
            print("=" * 72)
            print(result.summary())
            print(result.text)
            print()
            if not result.ok:
                failed.append(name)
        run_cache = active_cache()
        if run_cache is not None:
            print(run_cache.footer())
    if _obs_enabled(args):
        from .obs import REGISTRY, get_tracer, write_chrome_trace, write_metrics_jsonl

        tracer = get_tracer()
        if args.trace_out:
            path = write_chrome_trace(
                args.trace_out, spans=tracer.spans, span_epoch=tracer.epoch
            )
            print(f"trace written to {path} (chrome://tracing / Perfetto)")
        if args.metrics_out:
            path = write_metrics_jsonl(
                args.metrics_out, REGISTRY,
                extra={"command": "experiments", "only": args.only},
            )
            print(f"metrics written to {path}")
    if failed:
        print(f"FAILED checks in: {failed}")
        return 1
    print("All reproduction checks passed.")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
