"""The paper's contribution: the design model for hybrid CPU+FPGA designs.

* :mod:`repro.core.parameters` -- Section 4.1 system characterisation,
* :mod:`repro.core.tasks` -- task kinds, DAGs, placement attributes,
* :mod:`repro.core.partition` -- Equations (1), (2), (4), (6),
* :mod:`repro.core.load_balance` -- Equation (5),
* :mod:`repro.core.coordination` -- Section 4.4 handshakes and hazards,
* :mod:`repro.core.prediction` -- Section 4.5 performance prediction,
* :mod:`repro.core.model` -- the facade tying the methodology together.
"""

from .blocksize import (
    LuBlockCandidate,
    choose_fw_block_size,
    fw_block_size_bound,
    lu_block_candidates,
    max_lu_block_size,
)
from .coordination import (
    CoordinationGuard,
    HazardError,
    Violation,
    fw_coordination_rate,
    lu_coordination_rate,
)
from .hetero import (
    assignment_makespan,
    hetero_fw_assignment,
    imbalance,
    node_hybrid_rate,
    proportional_assignment,
)
from .load_balance import LuLoadBalance, lu_load_balance, node_work_balance
from .model import DesignModel, FwPlan, LuPlan
from .parameters import SystemParameters
from .partition import (
    FlopSplit,
    FwPartition,
    LuStripePartition,
    balance_flops,
    balance_with_network,
    balance_with_transfer,
    fw_op_times,
    fw_partition,
    lu_stripe_partition,
    lu_stripe_times,
)
from .prediction import Prediction, predict_fw, predict_lu
from .reporting import describe_fw_plan, describe_lu_plan, describe_parameters
from .sensitivity import Elasticity, TUNABLE_RATES, prediction_sensitivity
from .tasks import (
    FW_TASK_KINDS,
    LU_TASK_KINDS,
    CycleError,
    Task,
    TaskGraph,
    TaskKind,
)

__all__ = [
    "CoordinationGuard",
    "CycleError",
    "DesignModel",
    "FW_TASK_KINDS",
    "FlopSplit",
    "FwPartition",
    "FwPlan",
    "HazardError",
    "LU_TASK_KINDS",
    "LuLoadBalance",
    "LuPlan",
    "LuStripePartition",
    "Prediction",
    "SystemParameters",
    "Task",
    "TaskGraph",
    "TaskKind",
    "Violation",
    "Elasticity",
    "TUNABLE_RATES",
    "LuBlockCandidate",
    "assignment_makespan",
    "balance_flops",
    "balance_with_network",
    "balance_with_transfer",
    "fw_coordination_rate",
    "fw_op_times",
    "fw_partition",
    "lu_coordination_rate",
    "lu_load_balance",
    "lu_stripe_partition",
    "lu_stripe_times",
    "node_work_balance",
    "predict_fw",
    "predict_lu",
    "prediction_sensitivity",
    "proportional_assignment",
    "hetero_fw_assignment",
    "imbalance",
    "node_hybrid_rate",
    "choose_fw_block_size",
    "describe_fw_plan",
    "describe_lu_plan",
    "describe_parameters",
    "fw_block_size_bound",
    "lu_block_candidates",
    "max_lu_block_size",
]
