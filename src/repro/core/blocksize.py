"""Block-size selection (the Section 6.1 choices, made reproducible).

The paper picks its block sizes from hardware constraints:

* **LU** (b = 3000): b must be a multiple of both k and p-1 so stripes
  tile evenly, and the FPGA's intermediate results ``b_f b/(p-1)`` words
  must fit the 8 MB SRAM allocation;
* **FW** (b = 256): the design stages ``2 b^2`` words on SRAM, bounding
  b at 724 for 8 MB; the paper then uses 256, where the *processor's*
  blocked kernel is cache-resident (its 190 MFLOPS calibration point).

These helpers reproduce that reasoning as code so other machines'
presets get consistent choices, and the block-size ablation benchmark
tabulates the feasibility frontier.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from .parameters import SystemParameters
from .partition import lu_stripe_partition

__all__ = [
    "LuBlockCandidate",
    "lu_block_candidates",
    "max_lu_block_size",
    "fw_block_size_bound",
    "choose_fw_block_size",
]


def _lcm(a: int, b: int) -> int:
    return a * b // math.gcd(a, b)


@dataclass(frozen=True)
class LuBlockCandidate:
    """One feasible (or not) LU block size."""

    b: int
    b_f_unconstrained: int  # Eq. 4 solution ignoring SRAM
    sram_words_needed: int  # at the unconstrained b_f
    sram_ok: bool  # fits the allocation without capping b_f

    @property
    def feasible(self) -> bool:
        return self.sram_ok


def lu_block_candidates(
    params: SystemParameters, k: int, b_max: int = 6000
) -> list[LuBlockCandidate]:
    """All divisibility-valid LU block sizes up to ``b_max``, with their
    Eq. 4 split and SRAM verdicts."""
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    if params.p < 2:
        raise ValueError("the LU design needs p >= 2")
    step = _lcm(k, params.p - 1)
    out = []
    for b in range(step, b_max + 1, step):
        free = lu_stripe_partition(b, k, params, enforce_sram=False)
        needed = free.b_f * b // (params.p - 1)
        out.append(
            LuBlockCandidate(
                b=b,
                b_f_unconstrained=free.b_f,
                sram_words_needed=needed,
                sram_ok=needed <= params.sram_words,
            )
        )
    return out


def max_lu_block_size(params: SystemParameters, k: int, b_max: int = 6000) -> int:
    """Largest valid b whose Eq. 4 split fits SRAM uncapped.

    With the paper's XD1 parameters this admits b = 3000 comfortably and
    rules out blocks beyond ~3800 -- reproducing why Section 6.1's choice
    sits where it does.
    """
    feasible = [c.b for c in lu_block_candidates(params, k, b_max) if c.feasible]
    if not feasible:
        raise ValueError("no feasible LU block size under the SRAM allocation")
    return max(feasible)


def fw_block_size_bound(params: SystemParameters, k: int) -> int:
    """Largest FW tile (multiple of k) with ``2 b^2`` words on SRAM.

    XD1 at 8 MB: floor(sqrt(2^20 / 2)) = 724 -> 720 after rounding to
    k = 8, matching the paper's "b <= ..." bound before it settles on
    256 for processor cache residency.
    """
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    raw = int(math.isqrt(params.sram_words // 2))
    bounded = (raw // k) * k
    if bounded < k:
        raise ValueError("SRAM allocation cannot stage even a k x k tile")
    return bounded


def choose_fw_block_size(
    params: SystemParameters, k: int, cache_resident_limit: int = 256
) -> int:
    """The paper's FW choice: the SRAM bound capped at the block size
    where the processor's kernel stays cache-resident (three b x b
    doubles must sit in L2: 3 * 256^2 * 8 = 1.5 MB on the Opteron)."""
    return min(fw_block_size_bound(params, k), (cache_resident_limit // k) * k)
