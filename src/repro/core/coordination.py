"""Hardware/software coordination (Section 4.4 of the paper).

Two concerns are modelled:

1. **Handshake frequency.**  The processor starts the FPGA via a status
   register and polls for completion; the paper reports how often this
   happens (it is cheap, but the designs quote the rate).  The closed
   forms here match Section 5: for LU, ``2 (p-1) F_f / (b_f b)``
   handshakes per second; for FW, ``2 / (l2 T_f)``.  (The paper prints
   the FW rate as ``2 k F_p / (2 l2 b^3)``, mixing F_p for F_f; the
   corrected form is implemented and the discrepancy documented.)

2. **Memory-access coordination.**  Processor and FPGA share the DRAM;
   the model requires (a) disjoint write regions and (b) an explicit
   grant before a device reads a region another device writes
   (read-after-write protection).  :class:`CoordinationGuard` enforces
   those rules at functional-execution time; with ``enforce=False`` it
   records violations instead, which the failure-injection tests use to
   show the protocol is load-bearing.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = [
    "HazardError",
    "Violation",
    "CoordinationGuard",
    "lu_coordination_rate",
    "fw_coordination_rate",
]


def lu_coordination_rate(b_f: int, b: int, p: int, f_f: float) -> float:
    """Handshakes per second in the LU design: ``2 (p-1) F_f / (b_f b)``.

    One start + one done signal per stripe multiplication of duration
    ``T_f = b_f b / ((p-1) F_f)``.
    """
    if b_f <= 0 or b <= 0 or p < 2 or f_f <= 0:
        raise ValueError("b_f, b must be positive, p >= 2, f_f > 0")
    return 2.0 * (p - 1) * f_f / (b_f * b)


def fw_coordination_rate(l2: int, t_f: float) -> float:
    """Handshakes per second in the FW design: ``2 / (l2 T_f)``.

    One start + one done signal per batch of ``l2`` FPGA operations.
    """
    if l2 <= 0 or t_f <= 0:
        raise ValueError("l2 and t_f must be positive")
    return 2.0 / (l2 * t_f)


@dataclass(frozen=True)
class Violation:
    """One recorded coordination violation."""

    kind: str  # "raw-hazard" | "write-conflict" | "ungranted-read"
    region: str
    actor: str
    holder: str


class HazardError(RuntimeError):
    """A coordination rule was violated with enforcement on."""

    def __init__(self, violation: Violation) -> None:
        super().__init__(
            f"{violation.kind} on region {violation.region!r}: "
            f"{violation.actor!r} vs {violation.holder!r}"
        )
        self.violation = violation


@dataclass
class CoordinationGuard:
    """Runtime checker for the Section 4.4 memory-coordination protocol.

    Regions are named strings (e.g. ``"dram0/E[rows 0:1720]"``).  Rules:

    * a region being written may not be written by another actor
      (write-conflict -- the "separate memory locations" rule);
    * a region being written may not be read at all (RAW hazard);
    * a region last written by actor X may only be read by actor Y != X
      after X has granted permission (:meth:`grant`) -- "the FPGA cannot
      read the DRAM memory before getting permission from the processor",
      and symmetrically for SRAM.
    """

    enforce: bool = True
    violations: list[Violation] = field(default_factory=list)
    _writing: dict[str, str] = field(default_factory=dict)
    _last_writer: dict[str, str] = field(default_factory=dict)
    _granted: dict[str, set[str]] = field(default_factory=dict)

    def _flag(self, kind: str, region: str, actor: str, holder: str) -> None:
        violation = Violation(kind, region, actor, holder)
        self.violations.append(violation)
        if self.enforce:
            raise HazardError(violation)

    # -- write protocol --------------------------------------------------------

    def begin_write(self, region: str, actor: str) -> None:
        """Actor starts writing ``region``."""
        holder = self._writing.get(region)
        if holder is not None and holder != actor:
            self._flag("write-conflict", region, actor, holder)
            return
        self._writing[region] = actor
        # A new write invalidates all previous read grants.
        self._granted.pop(region, None)

    def end_write(self, region: str, actor: str) -> None:
        """Actor finishes writing ``region``."""
        holder = self._writing.get(region)
        if holder != actor:
            raise ValueError(f"{actor!r} ended a write it does not hold on {region!r}")
        del self._writing[region]
        self._last_writer[region] = actor

    # -- grant + read protocol ----------------------------------------------------

    def grant(self, region: str, to_actor: str) -> None:
        """The region's writer permits ``to_actor`` to read it."""
        self._granted.setdefault(region, set()).add(to_actor)

    def read(self, region: str, actor: str) -> None:
        """Actor reads ``region``; checks RAW and grant rules."""
        holder = self._writing.get(region)
        if holder is not None and holder != actor:
            self._flag("raw-hazard", region, actor, holder)
            return
        writer = self._last_writer.get(region)
        if writer is not None and writer != actor:
            if actor not in self._granted.get(region, set()):
                self._flag("ungranted-read", region, actor, writer)

    # -- reporting ----------------------------------------------------------------

    @property
    def clean(self) -> bool:
        """True if no violations have been recorded."""
        return not self.violations
