"""Heterogeneous-node load balancing (extension of Section 4.3).

The paper balances load across *identical* nodes ("adjust the number of
tasks assigned to each node so that the execution time of each node is
approximately equal").  Real installations mix node generations; this
module extends the rule to nodes with different hybrid computing rates:

* :func:`node_hybrid_rate` -- a node's effective task throughput given
  its own (l1, l2)-style split;
* :func:`proportional_assignment` -- integer task counts proportional
  to the rates (largest-remainder rounding), minimising the makespan of
  identical independent tasks;
* :func:`assignment_makespan` / :func:`imbalance` -- evaluation.

This is a *model-level* extension: it plugs into the same
SystemParameters/partition machinery and is exercised against brute
force in the tests.
"""

from __future__ import annotations

from typing import Sequence

from .parameters import SystemParameters
from .partition import fw_op_times

__all__ = [
    "proportional_assignment",
    "assignment_makespan",
    "imbalance",
    "node_hybrid_rate",
    "hetero_fw_assignment",
]


def proportional_assignment(total_tasks: int, rates: Sequence[float]) -> list[int]:
    """Assign ``total_tasks`` identical tasks proportionally to ``rates``.

    Uses the largest-remainder method, which minimises the makespan
    ``max_i(tasks_i / rate_i)`` over integer assignments up to the
    rounding granularity (verified against brute force in the tests).
    Zero-rate nodes receive zero tasks.
    """
    if total_tasks < 0:
        raise ValueError(f"total_tasks must be >= 0, got {total_tasks}")
    if not rates:
        raise ValueError("no nodes")
    if any(r < 0 for r in rates):
        raise ValueError("rates must be non-negative")
    total_rate = float(sum(rates))
    if total_rate == 0:
        raise ValueError("at least one node must have a positive rate")
    ideal = [total_tasks * r / total_rate for r in rates]
    floors = [int(x) for x in ideal]
    remainder = total_tasks - sum(floors)
    # Hand the leftover tasks to the largest fractional parts, breaking
    # ties toward faster nodes (lower resulting makespan).
    order = sorted(
        range(len(rates)),
        key=lambda i: (ideal[i] - floors[i], rates[i]),
        reverse=True,
    )
    out = floors[:]
    for i in order[:remainder]:
        out[i] += 1
    return out


def assignment_makespan(assignment: Sequence[int], rates: Sequence[float]) -> float:
    """Completion time of an integer assignment: max_i tasks_i / rate_i."""
    if len(assignment) != len(rates):
        raise ValueError("assignment and rates must have equal length")
    worst = 0.0
    for tasks, rate in zip(assignment, rates):
        if tasks < 0:
            raise ValueError("negative task count")
        if tasks > 0:
            if rate <= 0:
                return float("inf")
            worst = max(worst, tasks / rate)
    return worst


def imbalance(assignment: Sequence[int], rates: Sequence[float]) -> float:
    """Makespan relative to the fluid (fractional) lower bound; >= 1."""
    total = sum(assignment)
    if total == 0:
        return 1.0
    fluid = total / float(sum(rates))
    return assignment_makespan(assignment, rates) / fluid


def node_hybrid_rate(params: SystemParameters, b: int, k: int, l1: int, l2: int) -> float:
    """A node's FW task throughput (tasks/s) at a given (l1, l2) split.

    Per phase the node finishes ``l1 + l2`` tasks in
    ``max(l1 T_p + T_comm + l2 T_mem, l2 T_f)`` seconds -- the Eq. (6)
    makespan with the node's own parameters.
    """
    if l1 < 0 or l2 < 0 or l1 + l2 == 0:
        raise ValueError(f"invalid split l1={l1}, l2={l2}")
    t_p, t_f, t_comm, t_mem = fw_op_times(b, k, params)
    phase = max(l1 * t_p + t_comm + l2 * t_mem, l2 * t_f)
    return (l1 + l2) / phase


def hetero_fw_assignment(
    nb: int, node_params: Sequence[SystemParameters], b: int, k: int
) -> list[int]:
    """Block-column counts per node for FW on heterogeneous nodes.

    Each node first gets its own Eq. (6)-style internal split (here:
    fluid, proportional to its device rates), then columns are dealt
    proportionally to the resulting hybrid rates.  Returns counts
    summing to ``nb``.
    """
    if nb < 1:
        raise ValueError(f"nb must be >= 1, got {nb}")
    rates = []
    for params in node_params:
        t_p, t_f, _t_comm, t_mem = fw_op_times(b, k, params)
        # Fluid internal split: share work so both devices finish together.
        cpu_rate = 1.0 / t_p
        fpga_rate = 1.0 / (t_f + t_mem)
        rates.append(cpu_rate + fpga_rate)
    return proportional_assignment(nb, rates)
