"""Multi-node load balancing: Equation (5) (Section 5.1.3).

While ``p-1`` nodes grind through opMM block products, the owner node
``P_t'`` factorises panels (opLU) and solves block rows/columns
(opL/opU).  Equation (5) picks ``l`` -- the number of opMM operations
the workers perform per owner-side panel operation -- so both finish
together:

    max{T_lu, T_opl, T_opu} + (l b / k) T_comm  =  l b_f b^2 / ((p-1) k F_f)

The left side is the owner's serial path (its panel op plus shipping the
stripes for l opMMs); the right side is the workers' FPGA pipeline time
for l opMMs.
"""

from __future__ import annotations

from dataclasses import dataclass

from .parameters import SystemParameters
from .partition import LuStripePartition

__all__ = ["LuLoadBalance", "lu_load_balance", "node_work_balance"]


@dataclass(frozen=True)
class LuLoadBalance:
    """Outcome of solving Equation (5)."""

    l: int  # opMMs per owner panel operation
    l_exact: float  # continuous solution before rounding
    owner_op_time: float  # max{T_lu, T_opl, T_opu}
    opmm_time: float  # per-opMM worker FPGA time  b_f b^2/((p-1) k F_f)
    comm_per_opmm: float  # (b/k) T_comm: stripes shipped per opMM


def lu_load_balance(
    partition: LuStripePartition,
    t_lu: float,
    t_opl: float,
    t_opu: float,
    params: SystemParameters,
) -> LuLoadBalance:
    """Solve Equation (5) for ``l``.

    ``partition`` supplies ``b``, ``b_f``, ``k`` and the per-stripe
    ``T_comm``; ``t_lu``/``t_opl``/``t_opu`` are the owner's routine
    latencies (Table 1 values at b=3000).  The result is floored to an
    integer >= 1 (the paper rounds 3.3 down to l = 3).
    """
    if min(t_lu, t_opl, t_opu) < 0:
        raise ValueError("panel operation latencies must be non-negative")
    b, b_f, k, p = partition.b, partition.b_f, partition.k, partition.p
    owner = max(t_lu, t_opl, t_opu)
    opmm_time = b_f * b * b / ((p - 1) * k * params.f_f)
    comm_per_opmm = (b / k) * partition.t_comm
    denom = opmm_time - comm_per_opmm
    if denom <= 0:
        raise ValueError(
            "communication per opMM exceeds its FPGA time; Equation (5) "
            "has no finite solution (the network, not compute, binds)"
        )
    l_exact = owner / denom
    l = max(1, int(l_exact))
    return LuLoadBalance(
        l=l,
        l_exact=l_exact,
        owner_op_time=owner,
        opmm_time=opmm_time,
        comm_per_opmm=comm_per_opmm,
    )


def node_work_balance(work_per_node: list[float]) -> float:
    """Load-balance quality: max/mean of per-node work (1.0 = perfect).

    Section 4.3: "we need to adjust the number of tasks assigned to each
    node so that the execution time of each node is approximately equal."
    This metric quantifies how close a schedule gets.
    """
    if not work_per_node:
        raise ValueError("no nodes")
    if any(w < 0 for w in work_per_node):
        raise ValueError("negative work")
    mean = sum(work_per_node) / len(work_per_node)
    if mean == 0:
        return 1.0
    return max(work_per_node) / mean
