"""The design-model facade: the four-step methodology of Section 4.

:class:`DesignModel` ties the pieces together for a given system
characterisation:

1. *Task identification* -- the caller supplies :class:`~repro.core.
   tasks.TaskKind` attributes (complexity, internal dependencies);
2. *System characterisation* -- the :class:`~repro.core.parameters.
   SystemParameters`;
3. *Hardware/software partitioning* -- placement policy per task kind,
   plus the quantitative splits (Eqs. 1/2/4/6);
4. *Overlap refinement* -- the partition solvers already include
   T_comm/T_mem on the serial path; prediction assumes full overlap
   (Section 4.5).

The two application plans (:class:`LuPlan`, :class:`FwPlan`) bundle
every decision the schedules in :mod:`repro.apps` need.
"""

from __future__ import annotations

from dataclasses import dataclass

from .coordination import fw_coordination_rate, lu_coordination_rate
from .load_balance import LuLoadBalance, lu_load_balance
from .parameters import SystemParameters
from .partition import (
    FwPartition,
    LuStripePartition,
    fw_partition,
    lu_stripe_partition,
)
from .prediction import Prediction, predict_fw, predict_lu
from .tasks import FW_TASK_KINDS, LU_TASK_KINDS, TaskKind

__all__ = ["DesignModel", "LuPlan", "FwPlan"]


@dataclass(frozen=True)
class LuPlan:
    """Every design decision for the hybrid LU application."""

    n: int
    b: int
    k: int
    partition: LuStripePartition
    balance: LuLoadBalance
    prediction: Prediction
    coordination_hz: float

    @property
    def nb(self) -> int:
        return self.n // self.b


@dataclass(frozen=True)
class FwPlan:
    """Every design decision for the hybrid Floyd-Warshall application."""

    n: int
    b: int
    k: int
    partition: FwPartition
    prediction: Prediction
    coordination_hz: float

    @property
    def nb(self) -> int:
        return self.n // self.b


class DesignModel:
    """The paper's design model bound to one system characterisation."""

    def __init__(self, params: SystemParameters) -> None:
        self.params = params

    # -- step 3: placement policy --------------------------------------------

    @staticmethod
    def placement(kind: TaskKind) -> str:
        """Where the model places a task kind: 'split', 'whole-task' or 'cpu'.

        Compute-light tasks (opMS) stay on the processor; partitionable
        compute-heavy tasks (opMM) are split; dependency-heavy tasks run
        whole on one device, with counts tuned for balance.
        """
        return kind.placement_policy()

    def placements(self, kinds: dict[str, TaskKind]) -> dict[str, str]:
        """Placement policy for every kind in an application."""
        return {name: self.placement(kind) for name, kind in kinds.items()}

    # -- application plans --------------------------------------------------------

    def plan_lu(
        self,
        n: int,
        b: int,
        k: int,
        t_lu: float | None = None,
        t_opl: float | None = None,
        t_opu: float | None = None,
    ) -> LuPlan:
        """Full LU design: Eq. (4) partition, Eq. (5) balance, prediction.

        Panel-routine latencies default to the model's own estimates from
        the processor's sustained rate for gemm-class work; passing the
        measured Table 1 values overrides them (the paper measures).
        """
        if n % b:
            raise ValueError(f"b={b} must divide n={n}")
        part = lu_stripe_partition(b, k, self.params)
        cpu = self.params.cpu_flops
        t_lu = ((2.0 / 3.0) * b**3 / cpu) if t_lu is None else t_lu
        t_opl = (float(b) ** 3 / cpu) if t_opl is None else t_opl
        t_opu = (float(b) ** 3 / cpu) if t_opu is None else t_opu
        balance = lu_load_balance(part, t_lu, t_opl, t_opu, self.params)
        pred = predict_lu(n, b, part, t_lu, t_opl, t_opu, self.params)
        coord = (
            lu_coordination_rate(part.b_f, b, self.params.p, self.params.f_f)
            if part.b_f > 0
            else 0.0
        )
        return LuPlan(
            n=n, b=b, k=k, partition=part, balance=balance, prediction=pred, coordination_hz=coord
        )

    def plan_fw(self, n: int, b: int, k: int) -> FwPlan:
        """Full FW design: Eq. (6) split and prediction."""
        part = fw_partition(n, b, k, self.params)
        pred = predict_fw(n, b, part, self.params)
        coord = fw_coordination_rate(part.l2, part.t_f) if part.l2 > 0 else 0.0
        return FwPlan(n=n, b=b, k=k, partition=part, prediction=pred, coordination_hz=coord)

    # -- convenience ------------------------------------------------------------------

    def lu_task_placements(self) -> dict[str, str]:
        """The Section 5.1.2 decision table."""
        return self.placements(LU_TASK_KINDS)

    def fw_task_placements(self) -> dict[str, str]:
        """The Section 5.2.2 decision table."""
        return self.placements(FW_TASK_KINDS)
