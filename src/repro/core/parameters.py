"""System parameters of the design model (Section 4.1 of the paper).

The paper characterises a reconfigurable computing system with seven
parameters.  :class:`SystemParameters` carries exactly those, plus the
per-node SRAM allocation that Section 6.1 uses as a constraint when
choosing the block size ``b``.

Notation (paper -> here):

=========  =======================  =====================================
Paper      Attribute                Meaning
=========  =======================  =====================================
``p``      ``p``                    number of nodes
``O_f``    ``o_f``                  FPGA flops per clock cycle
``F_f``    ``f_f``                  FPGA design clock (Hz)
``O_p``    (folded into             processor flops per cycle; the paper
           ``cpu_flops``)           only ever uses the product O_p * F_p
``F_p``    ``f_p``                  processor clock (Hz), informational
``B_d``    ``b_d``                  FPGA <-> DRAM bandwidth (bytes/s)
``B_n``    ``b_n``                  node <-> node bandwidth (bytes/s)
``b_w``    ``b_w``                  word width in bytes (8 for doubles)
=========  =======================  =====================================

The processor's *sustained* performance ``O_p * F_p`` is application
dependent ("obtained by executing a sample program"), so it is stored
directly as ``cpu_flops``.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

__all__ = ["SystemParameters"]


@dataclass(frozen=True)
class SystemParameters:
    """The paper's system characterisation for one application.

    All rates are in base SI units (flops/s, bytes/s, Hz).
    """

    p: int  # number of nodes
    o_f: float  # O_f: FPGA flops per cycle
    f_f: float  # F_f: FPGA clock (Hz)
    cpu_flops: float  # O_p * F_p: sustained processor flops/s
    b_d: float  # B_d: FPGA-DRAM bandwidth (bytes/s)
    b_n: float  # B_n: inter-node bandwidth (bytes/s)
    b_w: int = 8  # word width (bytes)
    f_p: float = 0.0  # F_p: processor clock, informational only
    sram_bytes: int = 8 * 2**20  # per-node SRAM allocated to the design

    def __post_init__(self) -> None:
        if self.p < 1:
            raise ValueError(f"p must be >= 1, got {self.p}")
        for field_name in ("o_f", "f_f", "cpu_flops", "b_d", "b_n"):
            value = getattr(self, field_name)
            if value <= 0:
                raise ValueError(f"{field_name} must be positive, got {value}")
        if self.b_w < 1:
            raise ValueError(f"b_w must be >= 1, got {self.b_w}")
        if self.sram_bytes < 0:
            raise ValueError(f"sram_bytes must be >= 0, got {self.sram_bytes}")

    # -- derived quantities -------------------------------------------------

    @property
    def fpga_flops(self) -> float:
        """O_f * F_f: the FPGA's computing power (flops/s)."""
        return self.o_f * self.f_f

    @property
    def sram_words(self) -> int:
        """Per-node SRAM capacity in b_w-wide words."""
        return self.sram_bytes // self.b_w

    @property
    def node_flops(self) -> float:
        """Combined per-node computing power (CPU + FPGA)."""
        return self.cpu_flops + self.fpga_flops

    @property
    def system_flops(self) -> float:
        """Aggregate computing power over all p nodes."""
        return self.p * self.node_flops

    # -- elementary time models ----------------------------------------------

    def cpu_time(self, flops: float) -> float:
        """T_p = N_p / (O_p * F_p) for ``flops`` operations."""
        if flops < 0:
            raise ValueError(f"negative flop count: {flops}")
        return flops / self.cpu_flops

    def fpga_time(self, flops: float) -> float:
        """T_f = N_f / (O_f * F_f) for ``flops`` operations."""
        if flops < 0:
            raise ValueError(f"negative flop count: {flops}")
        return flops / self.fpga_flops

    def dram_time(self, nbytes: float) -> float:
        """DRAM->FPGA streaming time D_f / B_d."""
        if nbytes < 0:
            raise ValueError(f"negative byte count: {nbytes}")
        return nbytes / self.b_d

    def net_time(self, nbytes: float) -> float:
        """Inter-node transfer time D_p / B_n."""
        if nbytes < 0:
            raise ValueError(f"negative byte count: {nbytes}")
        return nbytes / self.b_n

    def words_time_net(self, nwords: float) -> float:
        """Network time for ``nwords`` words of width b_w."""
        return self.net_time(nwords * self.b_w)

    def with_(self, **changes) -> "SystemParameters":
        """A copy with the given fields replaced (convenience for sweeps)."""
        return replace(self, **changes)
