"""Workload-partition solvers: Equations (1), (2), (4) and (6).

These are the quantitative heart of the paper.  Each solver balances the
processor-side serial path (compute + the data movement that cannot
overlap processor work) against the FPGA's pipeline time, and returns a
small result object carrying both the decision variables and the time
terms, so callers (schedules, benchmarks, tests) can inspect the balance.

Known paper typos handled here (documented in DESIGN.md):

* Eq. (2) as printed divides ``D_f`` by ``B_d * F_f``, which is
  dimensionally inconsistent; the intended term is ``D_f / B_d`` as in
  Eq. (1) and that is what :func:`balance_with_network` implements.
* The Section 6.1 SRAM constraint is printed as ``b_p b/(p-1)`` but the
  SRAM holds the FPGA's intermediate results of size ``b_f b/(p-1)``
  (Figure 3); the constraint is applied to ``b_f``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..obs.metrics import REGISTRY
from .parameters import SystemParameters

#: Solver-call counters, resolved once at import (hot sweeps call these
#: per design point; the per-call cost must stay one float add).
_SOLVES_BALANCE = REGISTRY.counter("partition.solves", kind="balance")
_SOLVES_LU = REGISTRY.counter("partition.solves", kind="lu_stripe")
_SOLVES_FW = REGISTRY.counter("partition.solves", kind="fw")

__all__ = [
    "FlopSplit",
    "FlopSplitBatch",
    "LuStripePartition",
    "FwPartition",
    "balance_flops",
    "balance_flops_batch",
    "balance_with_transfer",
    "balance_with_transfer_batch",
    "balance_with_network",
    "lu_stripe_partition",
    "lu_stripe_times",
    "lu_stripe_times_batch",
    "fw_op_times",
    "fw_partition",
]


# --------------------------------------------------------------------------
# Generic splits (Section 4.2 / 4.3)
# --------------------------------------------------------------------------


@dataclass(frozen=True)
class FlopSplit:
    """Outcome of splitting N flops between processor and FPGA."""

    n_p: float  # flops assigned to the processor
    n_f: float  # flops assigned to the FPGA
    t_p: float  # processor compute time
    t_f: float  # FPGA compute time
    t_transfer: float = 0.0  # D_f / B_d term (Eq. 1)
    t_network: float = 0.0  # D_p / B_n term (Eq. 2)

    @property
    def total(self) -> float:
        return self.n_p + self.n_f

    @property
    def makespan(self) -> float:
        """Completion time under the model's overlap assumptions."""
        return max(self.t_p + self.t_transfer + self.t_network, self.t_f)


def _clamped_split(total_flops: float, fpga_lead: float, params: SystemParameters) -> FlopSplit:
    """Solve ``T_p + fpga_lead = T_f`` for the flop split.

    ``fpga_lead`` is the serial time the processor spends before/besides
    computing (data transfer, network) that the FPGA overlaps.
    """
    if total_flops < 0:
        raise ValueError(f"negative workload: {total_flops}")
    _SOLVES_BALANCE.inc()
    cpu, fpga = params.cpu_flops, params.fpga_flops
    # N_f/fpga - (N - N_f)/cpu = lead  =>  N_f (1/fpga + 1/cpu) = lead + N/cpu
    n_f = (fpga_lead + total_flops / cpu) / (1.0 / fpga + 1.0 / cpu)
    n_f = min(max(n_f, 0.0), total_flops)
    n_p = total_flops - n_f
    return FlopSplit(n_p=n_p, n_f=n_f, t_p=n_p / cpu, t_f=n_f / fpga)


def balance_flops(total_flops: float, params: SystemParameters) -> FlopSplit:
    """The naive split of Section 4.2: choose N_p, N_f so T_p = T_f.

    Ignores data transfer -- kept as the baseline the paper improves on
    (and as the ablation benchmark's strawman).
    """
    return _clamped_split(total_flops, 0.0, params)


def balance_with_transfer(
    total_flops: float, d_f_bytes: float, params: SystemParameters
) -> FlopSplit:
    """Equation (1): ``T_p + D_f/B_d = T_f``.

    ``d_f_bytes`` is the input data streamed from DRAM to the FPGA; the
    processor cannot start until that transfer completes, the FPGA
    overlaps it.
    """
    if d_f_bytes < 0:
        raise ValueError(f"negative transfer size: {d_f_bytes}")
    t_transfer = params.dram_time(d_f_bytes)
    split = _clamped_split(total_flops, t_transfer, params)
    return FlopSplit(
        n_p=split.n_p,
        n_f=split.n_f,
        t_p=split.t_p,
        t_f=split.t_f,
        t_transfer=t_transfer,
    )


def balance_with_network(
    total_flops: float, d_f_bytes: float, d_p_bytes: float, params: SystemParameters
) -> FlopSplit:
    """Equation (2): ``T_p + D_f/B_d + D_p/B_n = T_f``.

    (The printed equation's ``D_f/(B_d * F_f)`` is a typo for
    ``D_f/B_d``; see the module docstring.)
    """
    if d_f_bytes < 0 or d_p_bytes < 0:
        raise ValueError("negative data sizes")
    t_transfer = params.dram_time(d_f_bytes)
    t_network = params.net_time(d_p_bytes)
    split = _clamped_split(total_flops, t_transfer + t_network, params)
    return FlopSplit(
        n_p=split.n_p,
        n_f=split.n_f,
        t_p=split.t_p,
        t_f=split.t_f,
        t_transfer=t_transfer,
        t_network=t_network,
    )


# --------------------------------------------------------------------------
# Vectorized (batch) solvers -- whole sweep grids in one array pass
# --------------------------------------------------------------------------


@dataclass(frozen=True)
class FlopSplitBatch:
    """Array-valued counterpart of :class:`FlopSplit` for sweep grids.

    Every field is a float64 ndarray; element ``i`` equals the scalar
    solver's result for the i-th grid point (identical operation order,
    so the match is exact, not merely within tolerance).
    """

    n_p: np.ndarray
    n_f: np.ndarray
    t_p: np.ndarray
    t_f: np.ndarray
    t_transfer: np.ndarray
    t_network: np.ndarray

    @property
    def total(self) -> np.ndarray:
        return self.n_p + self.n_f

    @property
    def makespan(self) -> np.ndarray:
        """Element-wise completion time under the overlap assumptions."""
        return np.maximum(self.t_p + self.t_transfer + self.t_network, self.t_f)


def _clamped_split_batch(
    total: np.ndarray, fpga_lead: np.ndarray | float, params: SystemParameters
) -> tuple[np.ndarray, np.ndarray]:
    """Vectorized ``_clamped_split``: returns ``(n_p, n_f)`` arrays."""
    cpu, fpga = params.cpu_flops, params.fpga_flops
    n_f = (fpga_lead + total / cpu) / (1.0 / fpga + 1.0 / cpu)
    n_f = np.minimum(np.maximum(n_f, 0.0), total)
    return total - n_f, n_f


def balance_flops_batch(total_flops: np.ndarray, params: SystemParameters) -> FlopSplitBatch:
    """Vectorized :func:`balance_flops` over a grid of workloads."""
    total = np.asarray(total_flops, dtype=np.float64)
    if np.any(total < 0):
        raise ValueError("negative workload in batch")
    _SOLVES_BALANCE.inc(total.size)
    n_p, n_f = _clamped_split_batch(total, 0.0, params)
    zeros = np.zeros_like(total)
    return FlopSplitBatch(
        n_p=n_p,
        n_f=n_f,
        t_p=n_p / params.cpu_flops,
        t_f=n_f / params.fpga_flops,
        t_transfer=zeros,
        t_network=zeros,
    )


def balance_with_transfer_batch(
    total_flops: np.ndarray, d_f_bytes: np.ndarray, params: SystemParameters
) -> FlopSplitBatch:
    """Vectorized :func:`balance_with_transfer`; inputs broadcast together."""
    total, d_f = np.broadcast_arrays(
        np.asarray(total_flops, dtype=np.float64), np.asarray(d_f_bytes, dtype=np.float64)
    )
    if np.any(total < 0):
        raise ValueError("negative workload in batch")
    if np.any(d_f < 0):
        raise ValueError("negative transfer size in batch")
    _SOLVES_BALANCE.inc(total.size)
    t_transfer = d_f / params.b_d  # dram_time, element-wise
    n_p, n_f = _clamped_split_batch(total, t_transfer, params)
    return FlopSplitBatch(
        n_p=n_p,
        n_f=n_f,
        t_p=n_p / params.cpu_flops,
        t_f=n_f / params.fpga_flops,
        t_transfer=t_transfer,
        t_network=np.zeros_like(total),
    )


def lu_stripe_times_batch(
    b: int, b_f: np.ndarray, k: int, params: SystemParameters
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Vectorized :func:`lu_stripe_times` over a grid of ``b_f`` values.

    Returns ``(t_p, t_f, t_comm, t_mem)`` arrays of ``b_f``'s shape
    (``t_comm`` does not depend on ``b_f`` but is broadcast for uniform
    handling by callers scanning the balance point).
    """
    p = params.p
    if p < 2:
        raise ValueError(f"the LU design needs p >= 2 nodes, got {p}")
    b_f = np.asarray(b_f, dtype=np.float64)
    if np.any((b_f < 0) | (b_f > b)):
        raise ValueError(f"b_f out of range [0, {b}] in batch")
    b_p = b - b_f
    t_comm = np.full(b_f.shape, 2.0 * b * k * params.b_w / params.b_n)
    t_mem = (b_f * k + b * k / (p - 1)) * params.b_w / params.b_d
    t_p = 2.0 * b_p * b * k / ((p - 1) * params.cpu_flops)
    t_f = b_f * b / ((p - 1) * params.f_f)
    return t_p, t_f, t_comm, t_mem


# --------------------------------------------------------------------------
# LU stripe partition (Equation 4, Section 5.1.3)
# --------------------------------------------------------------------------


@dataclass(frozen=True)
class LuStripePartition:
    """The (b_p, b_f) row split of a b x b block multiplication."""

    b: int
    b_p: int
    b_f: int
    k: int
    p: int
    t_p: float  # processor time per stripe
    t_f: float  # FPGA time per stripe
    t_comm: float  # network time per stripe pair (T_comm)
    t_mem: float  # DRAM->FPGA time per stripe (T_mem)
    b_f_exact: float  # continuous solution of Eq. (4) before rounding
    sram_words: int  # intermediate-result footprint on SRAM

    @property
    def stripe_makespan(self) -> float:
        """Steady-state per-stripe latency: max of the two pipelines."""
        return max(self.t_comm + self.t_mem + self.t_p, self.t_f)

    @property
    def fpga_fraction(self) -> float:
        return self.b_f / self.b if self.b else 0.0


def lu_stripe_times(
    b: int, b_f: int, k: int, params: SystemParameters
) -> tuple[float, float, float, float]:
    """The four time terms of Eq. (4) for a given b_f.

    Returns ``(t_p, t_f, t_comm, t_mem)`` for one column-stripe of C and
    row-stripe of D:

    * ``t_comm = 2 b k b_w / B_n``  (ship both stripes to a worker),
    * ``t_mem = (b_f k + b k/(p-1)) b_w / B_d``  (stage the FPGA's share),
    * ``t_p = 2 b_p b k / ((p-1) O_p F_p)``,
    * ``t_f = b_f b / ((p-1) F_f)``.
    """
    p = params.p
    if p < 2:
        raise ValueError(f"the LU design needs p >= 2 nodes, got {p}")
    if not 0 <= b_f <= b:
        raise ValueError(f"b_f={b_f} out of range [0, {b}]")
    b_p = b - b_f
    t_comm = 2.0 * b * k * params.b_w / params.b_n
    t_mem = (b_f * k + b * k / (p - 1)) * params.b_w / params.b_d
    t_p = 2.0 * b_p * b * k / ((p - 1) * params.cpu_flops)
    t_f = b_f * b / ((p - 1) * params.f_f)
    return t_p, t_f, t_comm, t_mem


def lu_stripe_partition(
    b: int, k: int, params: SystemParameters, enforce_sram: bool = True
) -> LuStripePartition:
    """Solve Equation (4) for (b_p, b_f): ``T_f = T_comm + T_mem + T_p``.

    The continuous solution is rounded down to a multiple of ``k`` (the
    PE array consumes rows k at a time) and, if ``enforce_sram``, capped
    so the FPGA's intermediate results ``b_f * b/(p-1)`` words fit the
    node's SRAM allocation.
    """
    p = params.p
    if p < 2:
        raise ValueError(f"the LU design needs p >= 2 nodes, got {p}")
    if b < 1 or k < 1:
        raise ValueError(f"b and k must be positive, got b={b}, k={k}")
    if b % k:
        raise ValueError(f"b={b} must be a multiple of k={k}")
    _SOLVES_LU.inc()
    cpu = params.cpu_flops
    # T_f(b_f) = T_comm + T_mem(b_f) + T_p(b - b_f); linear in b_f:
    #   b_f * [b/((p-1)F_f)]  =  2 b k b_w/B_n
    #                          + (b_f k + b k/(p-1)) b_w / B_d
    #                          + 2 (b - b_f) b k / ((p-1) cpu)
    lhs_coeff = b / ((p - 1) * params.f_f)
    rhs_const = (
        2.0 * b * k * params.b_w / params.b_n
        + (b * k / (p - 1)) * params.b_w / params.b_d
        + 2.0 * b * b * k / ((p - 1) * cpu)
    )
    rhs_coeff = k * params.b_w / params.b_d - 2.0 * b * k / ((p - 1) * cpu)
    denom = lhs_coeff - rhs_coeff
    if denom <= 0:
        # The CPU-side serial path grows with b_f at least as fast as the
        # FPGA pipeline does: every row moved to the FPGA costs more in
        # DRAM staging than it saves in gemm time.  The model's answer is
        # to keep the work on the processor.
        b_f_exact = 0.0
    else:
        b_f_exact = rhs_const / denom
    b_f = int(min(max(b_f_exact, 0.0), float(b)) // k) * k
    if enforce_sram:
        max_words = params.sram_words
        # b_f * b/(p-1) <= sram_words  =>  b_f <= sram_words (p-1) / b
        b_f_cap = int((max_words * (p - 1) / b) // k) * k
        b_f = min(b_f, max(b_f_cap, 0))
    t_p, t_f, t_comm, t_mem = lu_stripe_times(b, b_f, k, params)
    return LuStripePartition(
        b=b,
        b_p=b - b_f,
        b_f=b_f,
        k=k,
        p=p,
        t_p=t_p,
        t_f=t_f,
        t_comm=t_comm,
        t_mem=t_mem,
        b_f_exact=b_f_exact,
        sram_words=b_f * b // (p - 1),
    )


# --------------------------------------------------------------------------
# Floyd-Warshall task split (Equation 6, Section 5.2.3)
# --------------------------------------------------------------------------


@dataclass(frozen=True)
class FwPartition:
    """The (l1, l2) whole-task split of one phase's operations."""

    l1: int  # operations per phase on the processor
    l2: int  # operations per phase on the FPGA
    t_p: float  # per-operation processor time (2 b^3 / O_p F_p)
    t_f: float  # per-operation FPGA time (2 b^3 / (k F_f))
    t_comm: float  # per-phase block exchange (b^2 b_w / B_n)
    t_mem: float  # per-FPGA-op DRAM staging (2 b^2 b_w / B_d)
    l1_exact: float  # continuous solution before rounding

    @property
    def per_phase_ops(self) -> int:
        return self.l1 + self.l2

    @property
    def phase_makespan(self) -> float:
        """Per-phase latency with comm/mem on the CPU-side serial path."""
        return max(self.l1 * self.t_p + self.t_comm + self.l2 * self.t_mem, self.l2 * self.t_f)

    @property
    def cpu_share(self) -> float:
        return self.l1 / self.per_phase_ops if self.per_phase_ops else 0.0


def fw_op_times(b: int, k: int, params: SystemParameters) -> tuple[float, float, float, float]:
    """``(t_p, t_f, t_comm, t_mem)`` for one b x b FW operation.

    Note the FPGA time uses the design's ``2 b^3/(k F_f)`` latency, not
    ``O_f F_f``: the array sustains k flops/cycle (Section 5.2.3).
    """
    if b < 1 or k < 1:
        raise ValueError(f"b and k must be positive, got b={b}, k={k}")
    t_p = 2.0 * b**3 / params.cpu_flops
    t_f = 2.0 * b**3 / (k * params.f_f)
    t_comm = b * b * params.b_w / params.b_n
    t_mem = 2.0 * b * b * params.b_w / params.b_d
    return t_p, t_f, t_comm, t_mem


def fw_partition(n: int, b: int, k: int, params: SystemParameters) -> FwPartition:
    """Solve Equation (6): ``l1 T_p + T_comm + l2 T_mem = l2 T_f``
    subject to ``l1 + l2 = n/(b p)``.

    Rounds l1 to the nearest integer in ``[0, n/(bp)]``.  With the
    paper's parameters (n=18432, b=256, p=6) this yields l1=2, l2=10.
    """
    p = params.p
    if n < 1 or b < 1 or n % b:
        raise ValueError(f"b={b} must divide n={n}")
    total = n // (b * p)
    if total < 1 or n % (b * p):
        raise ValueError(
            f"each node must own an integer number of block columns: "
            f"n/(b*p) = {n}/({b}*{p}) is not a positive integer"
        )
    _SOLVES_FW.inc()
    t_p, t_f, t_comm, t_mem = fw_op_times(b, k, params)
    # l1 (T_p + T_f - T_mem) = total (T_f - T_mem) - T_comm
    effective = t_f - t_mem
    l1_exact = (total * effective - t_comm) / (t_p + effective)
    l1 = int(round(l1_exact))
    l1 = min(max(l1, 0), total)
    return FwPartition(
        l1=l1,
        l2=total - l1,
        t_p=t_p,
        t_f=t_f,
        t_comm=t_comm,
        t_mem=t_mem,
        l1_exact=l1_exact,
    )
