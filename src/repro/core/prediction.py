"""Performance prediction: Section 4.5 of the paper.

"After the values of the system parameters are determined, the workload
for a given application is partitioned following the model.  Then we can
calculate the total execution time for the application on both the
processor (T_tp) and the FPGA (T_tf) based on the data dependencies
among the tasks. ... we assume all the data transfer and network
communications are overlapped with the computations on the FPGA.  Thus,
the predicted total latency of the design is max{T_tp, T_tf}."

For LU the dependency structure makes iterations (nearly) sequential, so
the prediction sums, per iteration, the max of the owner's panel path
and the workers' opMM pipeline.  For FW every phase is identical, so the
prediction is ``(n/b)^2`` phases of ``max(l1 T_p, l2 T_f)``.

The experiments compare these predictions with the discrete-event
"measured" times; the paper reports its implementations reach ~86% (LU)
and ~96% (FW) of prediction.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .parameters import SystemParameters
from .partition import FwPartition, LuStripePartition

__all__ = ["Prediction", "predict_lu", "predict_fw"]


@dataclass(frozen=True)
class Prediction:
    """A predicted application execution."""

    latency: float  # predicted total latency (seconds)
    t_tp: float  # total processor-path time
    t_tf: float  # total FPGA-path time
    useful_flops: float  # flops the GFLOPS figure counts
    detail: dict = field(default_factory=dict, compare=False)

    @property
    def gflops(self) -> float:
        return self.useful_flops / self.latency / 1e9 if self.latency > 0 else 0.0


def predict_lu(
    n: int,
    b: int,
    partition: LuStripePartition,
    t_lu: float,
    t_opl: float,
    t_opu: float,
    params: SystemParameters,
) -> Prediction:
    """Predict the hybrid LU design's latency and GFLOPS.

    Iteration ``t`` leaves ``m = n/b - t - 1`` block rows: the owner's
    panel path is ``T_lu + m (T_opl + T_opu)`` while the workers pipeline
    ``m^2`` opMMs at ``b_f b^2 / ((p-1) k F_f)`` each (communication and
    memory staging assumed fully overlapped, per Section 4.5).  The
    iteration's predicted latency is the max of the two; iterations are
    dependence-chained, so latencies add.
    """
    if n < b or n % b:
        raise ValueError(f"b={b} must divide n={n}")
    p, k, b_f = partition.p, partition.k, partition.b_f
    nb = n // b
    opmm_time = b_f * b * b / ((p - 1) * k * params.f_f) if b_f else 0.0
    # When b_f == 0 every opMM runs CPU-only; when b_f == b, FPGA-only.
    cpu_opmm_time = 2.0 * partition.b_p * b * b / ((p - 1) * params.cpu_flops)
    per_opmm = max(opmm_time, cpu_opmm_time)
    t_tp_total = 0.0
    t_tf_total = 0.0
    latency = 0.0
    for t in range(nb):
        m = nb - t - 1
        panel = t_lu + m * (t_opl + t_opu)
        mm = m * m * per_opmm
        t_tp_total += panel + m * m * cpu_opmm_time
        t_tf_total += m * m * opmm_time
        latency += max(panel, mm)
    useful = (2.0 / 3.0) * float(n) ** 3
    return Prediction(
        latency=latency,
        t_tp=t_tp_total,
        t_tf=t_tf_total,
        useful_flops=useful,
        detail={
            "nb": nb,
            "per_opmm_time": per_opmm,
            "opmm_fpga_time": opmm_time,
            "opmm_cpu_time": cpu_opmm_time,
            "panel_times": (t_lu, t_opl, t_opu),
        },
    )


def predict_fw(n: int, b: int, partition: FwPartition, params: SystemParameters) -> Prediction:
    """Predict the hybrid FW design's latency and GFLOPS.

    There are ``n/b`` iterations of ``n/b`` phases; each phase every node
    runs ``l1`` ops on the CPU and ``l2`` on the FPGA, and with comm/mem
    fully overlapped (Section 4.5) the phase costs
    ``max(l1 T_p, l2 T_f)``.
    """
    if n < b or n % b:
        raise ValueError(f"b={b} must divide n={n}")
    nb = n // b
    phase = max(partition.l1 * partition.t_p, partition.l2 * partition.t_f)
    latency = nb * nb * phase
    t_tp = nb * nb * partition.l1 * partition.t_p
    t_tf = nb * nb * partition.l2 * partition.t_f
    useful = 2.0 * float(n) ** 3
    return Prediction(
        latency=latency,
        t_tp=t_tp,
        t_tf=t_tf,
        useful_flops=useful,
        detail={"nb": nb, "phase_time": phase, "l1": partition.l1, "l2": partition.l2},
    )
