"""Plan reports: the Section 6.1 'implementation details' as text.

Renders a :class:`~repro.core.model.LuPlan` / :class:`FwPlan` (and the
underlying system parameters) the way the paper's implementation section
narrates them -- used by the CLI and the examples, and handy in notebooks.
"""

from __future__ import annotations

from ..analysis.report import table
from .model import FwPlan, LuPlan
from .parameters import SystemParameters

__all__ = ["describe_parameters", "describe_lu_plan", "describe_fw_plan"]


def describe_parameters(params: SystemParameters, title: str = "System parameters (Section 4.1)") -> str:
    """The system characterisation as an aligned table."""
    rows = [
        ["p (nodes)", params.p],
        ["O_f (FPGA ops/cycle)", params.o_f],
        ["F_f (FPGA clock)", f"{params.f_f / 1e6:.0f} MHz"],
        ["O_p x F_p (sustained CPU)", f"{params.cpu_flops / 1e9:.3g} GFLOPS"],
        ["B_d (FPGA-DRAM)", f"{params.b_d / 1e9:.3g} GB/s"],
        ["B_n (network)", f"{params.b_n / 1e9:.3g} GB/s"],
        ["b_w (word)", f"{params.b_w} B"],
        ["SRAM / node", f"{params.sram_bytes / 2**20:.0f} MB"],
    ]
    return table(["parameter", "value"], rows, title=title)


def describe_lu_plan(plan: LuPlan) -> str:
    """The LU design decisions, Table-1-style."""
    part, bal = plan.partition, plan.balance
    rows = [
        ["matrix", f"{plan.n} x {plan.n}, b = {plan.b} ({plan.nb} blocks/dim)"],
        ["Eq. 4 split", f"b_p = {part.b_p}, b_f = {part.b_f} (exact {part.b_f_exact:.1f})"],
        ["stripe times", f"T_p {part.t_p * 1e3:.3f} ms, T_f {part.t_f * 1e3:.3f} ms, "
                         f"T_comm {part.t_comm * 1e3:.3f} ms, T_mem {part.t_mem * 1e3:.3f} ms"],
        ["Eq. 5 balance", f"l = {bal.l} (exact {bal.l_exact:.2f})"],
        ["SRAM working set", f"{part.sram_words * 8 / 2**20:.2f} MB of intermediates"],
        ["coordination", f"{plan.coordination_hz:.1f} handshakes/s"],
        ["prediction", f"{plan.prediction.latency:.1f} s -> {plan.prediction.gflops:.2f} GFLOPS"],
    ]
    return table(["decision", "value"], rows, title="LU hybrid design plan (Section 5.1)")


def describe_fw_plan(plan: FwPlan) -> str:
    """The FW design decisions."""
    part = plan.partition
    rows = [
        ["graph", f"{plan.n} vertices, b = {plan.b} ({plan.nb} blocks/dim)"],
        ["Eq. 6 split", f"l1 = {part.l1}, l2 = {part.l2} per phase (exact l1 {part.l1_exact:.2f})"],
        ["op times", f"T_p {part.t_p * 1e3:.1f} ms, T_f {part.t_f * 1e3:.1f} ms, "
                     f"T_comm {part.t_comm * 1e3:.3f} ms, T_mem {part.t_mem * 1e3:.3f} ms"],
        ["phase makespan", f"{part.phase_makespan * 1e3:.1f} ms"],
        ["coordination", f"{plan.coordination_hz:.2f} handshakes/s"],
        ["prediction", f"{plan.prediction.latency:.0f} s -> {plan.prediction.gflops:.2f} GFLOPS"],
    ]
    return table(["decision", "value"], rows, title="FW hybrid design plan (Section 5.2)")
