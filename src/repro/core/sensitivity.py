"""Sensitivity analysis of the design model's predictions.

A practical companion to Section 4.5: which machine parameter is worth
upgrading?  :func:`prediction_sensitivity` perturbs each
:class:`~repro.core.parameters.SystemParameters` rate by a relative
step and reports the elasticity of the predicted GFLOPS --
``(dG/G) / (dp/p)`` -- so 1.0 means "GFLOPS scale one-for-one with this
parameter" and ~0 means "not the bottleneck".

The test suite pins the qualitative facts the model implies: FW on the
XD1 is FPGA-bound (elastic in F_f, inelastic in B_n), and LU is mixed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from .parameters import SystemParameters

__all__ = ["Elasticity", "prediction_sensitivity", "TUNABLE_RATES"]

#: The rate-like fields it makes sense to perturb.
TUNABLE_RATES = ("cpu_flops", "f_f", "b_d", "b_n")


@dataclass(frozen=True)
class Elasticity:
    """Relative response of a prediction to one parameter."""

    parameter: str
    base_value: float
    base_gflops: float
    perturbed_gflops: float
    step: float  # relative perturbation applied

    @property
    def elasticity(self) -> float:
        """(dG/G) / (dp/p); ~1 = linear bottleneck, ~0 = slack."""
        if self.base_gflops == 0:
            return 0.0
        return ((self.perturbed_gflops - self.base_gflops) / self.base_gflops) / self.step


def prediction_sensitivity(
    params: SystemParameters,
    predict: Callable[[SystemParameters], float],
    step: float = 0.05,
    parameters: tuple[str, ...] = TUNABLE_RATES,
) -> list[Elasticity]:
    """Elasticity of ``predict(params)`` (GFLOPS) w.r.t. each rate.

    ``predict`` maps a :class:`SystemParameters` to predicted GFLOPS --
    typically a closure over :func:`repro.core.prediction.predict_lu` or
    ``predict_fw`` that re-partitions at each point (so the split adapts,
    as a designer would).
    """
    if step <= 0:
        raise ValueError(f"step must be positive, got {step}")
    base = predict(params)
    out = []
    for name in parameters:
        if not hasattr(params, name):
            raise ValueError(f"unknown parameter {name!r}")
        value = getattr(params, name)
        perturbed = predict(params.with_(**{name: value * (1.0 + step)}))
        out.append(
            Elasticity(
                parameter=name,
                base_value=value,
                base_gflops=base,
                perturbed_gflops=perturbed,
                step=step,
            )
        )
    return sorted(out, key=lambda e: -abs(e.elasticity))
