"""Task model: step 1 of the design methodology (Section 4).

The methodology starts by identifying the tasks of an application, their
computational complexity and their dependencies.  :class:`TaskKind`
captures the per-kind attributes the partitioning decision needs
(complexity class, whether the task's internal data dependencies permit
splitting it between processor and FPGA); :class:`Task` and
:class:`TaskGraph` represent a concrete schedule's DAG, used by the LU
application (whose iteration structure is irregular) and by the
critical-path analysis in the benchmarks.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Iterable, Optional

__all__ = ["TaskKind", "Task", "TaskGraph", "CycleError", "LU_TASK_KINDS", "FW_TASK_KINDS"]


class CycleError(ValueError):
    """The task graph contains a dependency cycle."""


@dataclass(frozen=True)
class TaskKind:
    """Static attributes of one kind of task (Sections 5.1.2 / 5.2.2).

    ``partitionable`` encodes the key design decision: tasks with heavy
    internal data dependencies (opLU, opL, opU, and all four FW ops) are
    assigned *whole* to one device; only opMM is split CPU/FPGA.
    """

    name: str
    complexity: str  # e.g. "n^3", "n^2"
    partitionable: bool
    compute_intensive: bool = True

    def placement_policy(self) -> str:
        """The model's placement rule for this kind (Section 4.2)."""
        if not self.compute_intensive:
            return "cpu"  # not worth accelerating (opMS)
        return "split" if self.partitionable else "whole-task"


#: The five LU task kinds of Section 5.1.2.
LU_TASK_KINDS: dict[str, TaskKind] = {
    "opLU": TaskKind("opLU", "n^3", partitionable=False),
    "opL": TaskKind("opL", "n^3", partitionable=False),
    "opU": TaskKind("opU", "n^3", partitionable=False),
    "opMM": TaskKind("opMM", "n^3", partitionable=True),
    "opMS": TaskKind("opMS", "n^2", partitionable=False, compute_intensive=False),
}

#: The four FW task kinds of Section 5.2.2 (all unpartitionable).
FW_TASK_KINDS: dict[str, TaskKind] = {
    "op1": TaskKind("op1", "n^3", partitionable=False),
    "op21": TaskKind("op21", "n^3", partitionable=False),
    "op22": TaskKind("op22", "n^3", partitionable=False),
    "op3": TaskKind("op3", "n^3", partitionable=False),
}


@dataclass
class Task:
    """One schedulable unit in a concrete run."""

    id: str
    kind: str
    node: int
    flops: float
    deps: tuple[str, ...] = ()
    payload: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.flops < 0:
            raise ValueError(f"task {self.id!r}: negative flops")


class TaskGraph:
    """A DAG of :class:`Task` objects with topological utilities."""

    def __init__(self) -> None:
        self._tasks: dict[str, Task] = {}

    def add(self, task: Task) -> Task:
        """Insert a task; IDs must be unique, dependencies must exist."""
        if task.id in self._tasks:
            raise ValueError(f"duplicate task id {task.id!r}")
        for dep in task.deps:
            if dep not in self._tasks:
                raise ValueError(f"task {task.id!r} depends on unknown task {dep!r}")
        self._tasks[task.id] = task
        return task

    def __len__(self) -> int:
        return len(self._tasks)

    def __contains__(self, task_id: str) -> bool:
        return task_id in self._tasks

    def __getitem__(self, task_id: str) -> Task:
        return self._tasks[task_id]

    def tasks(self) -> Iterable[Task]:
        return self._tasks.values()

    def roots(self) -> list[Task]:
        """Tasks with no dependencies."""
        return [t for t in self._tasks.values() if not t.deps]

    def successors(self) -> dict[str, list[str]]:
        out: dict[str, list[str]] = {tid: [] for tid in self._tasks}
        for task in self._tasks.values():
            for dep in task.deps:
                out[dep].append(task.id)
        return out

    def topological_order(self) -> list[Task]:
        """Kahn's algorithm; raises :class:`CycleError` on cycles.

        (Insertion order already guarantees acyclicity because ``add``
        requires dependencies to pre-exist, but subclasses or direct
        mutation could break that; this validates regardless.)
        """
        indeg = {tid: len(t.deps) for tid, t in self._tasks.items()}
        succ = self.successors()
        ready = deque(tid for tid, d in indeg.items() if d == 0)
        order: list[Task] = []
        while ready:
            tid = ready.popleft()
            order.append(self._tasks[tid])
            for nxt in succ[tid]:
                indeg[nxt] -= 1
                if indeg[nxt] == 0:
                    ready.append(nxt)
        if len(order) != len(self._tasks):
            raise CycleError("task graph contains a cycle")
        return order

    def count_by_kind(self) -> dict[str, int]:
        out: dict[str, int] = {}
        for task in self._tasks.values():
            out[task.kind] = out.get(task.kind, 0) + 1
        return out

    def total_flops(self) -> float:
        return sum(t.flops for t in self._tasks.values())

    def critical_path(
        self, duration_of: Callable[[Task], float]
    ) -> tuple[float, list[Task]]:
        """Longest weighted path through the DAG.

        ``duration_of`` maps a task to its execution time; resource
        contention is ignored (this is the dependence-only lower bound
        that Section 4.5's prediction refines).
        """
        order = self.topological_order()
        finish: dict[str, float] = {}
        best_pred: dict[str, Optional[str]] = {}
        for task in order:
            start = max((finish[d] for d in task.deps), default=0.0)
            finish[task.id] = start + duration_of(task)
            best_pred[task.id] = (
                max(task.deps, key=lambda d: finish[d]) if task.deps else None
            )
        if not finish:
            return 0.0, []
        end_id = max(finish, key=lambda tid: finish[tid])
        path: list[Task] = []
        cur: Optional[str] = end_id
        while cur is not None:
            path.append(self._tasks[cur])
            cur = best_pred[cur]
        path.reverse()
        return finish[end_id], path
