"""The experiment harness: one function per table/figure in the paper.

Each function regenerates one evaluation artifact of Zhuo & Prasanna
(IPPS 2007) on the simulated XD1 and returns an
:class:`ExperimentResult` carrying

* ``text`` -- the rendered table/ASCII figure,
* ``data`` -- the raw rows/series,
* ``checks`` -- named boolean reproduction criteria (the *shape* claims
  of the paper: who wins, by roughly what factor, where optima fall).

The pytest benchmarks in ``benchmarks/`` time these functions and assert
their checks; ``python -m repro.experiments`` writes the full record to
stdout (the source of EXPERIMENTS.md).
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Optional

from .analysis import Series, bar_chart, line_chart, percent, table
from .apps.fw import FwDesign, FwSimConfig, simulate_fw
from .apps.lu import LuDesign, LuSimConfig, simulate_block_mm, simulate_lu
from .core import DesignModel, balance_flops, lu_stripe_partition
from .hw import FloydWarshallDesign, MatrixMultiplyDesign
from .kernels.flops import getrf_flops, trsm_flops
from .machine import ALL_PRESETS, cray_xd1
from .obs import REGISTRY, get_tracer
from .parallel import ResultCache, SweepExecutor, cache_from_env

__all__ = [
    "ALL_EXPERIMENTS",
    "ExperimentResult",
    "active_cache",
    "ablation_blocksize",
    "ablation_overlap",
    "ablation_partition",
    "ablation_presets",
    "configured",
    "fig5_bf_sweep",
    "fig6_l_sweep",
    "fig7_l1_sweep",
    "fig8_lu_scaling",
    "ext_ring_mm",
    "ext_scaling",
    "fig9_fw",
    "fig9_lu",
    "run_all",
    "table1_routines",
]


@dataclass
class ExperimentResult:
    """One reproduced table or figure."""

    id: str
    title: str
    text: str
    data: dict = field(default_factory=dict)
    checks: dict[str, bool] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return all(self.checks.values())

    def summary(self) -> str:
        status = "PASS" if self.ok else "FAIL"
        return f"[{status}] {self.id}: {self.title}"


# ------------------------------------------------ sweep execution context
#
# Every simulation an experiment runs is expressed as a JSON-able *task*
# and evaluated through ``_eval_sim_points``, which consults the active
# result cache (warm re-runs replay stored values instead of
# re-simulating) and fans cache misses out across the active executor.
# Each simulation runs in its own Simulator, so results are identical
# regardless of worker count or cache state.

_EXECUTOR: Optional[SweepExecutor] = None
_CACHE: Optional[ResultCache] = None

#: Number of simulation points actually executed (i.e. cache misses)
#: since import.  Serial-mode only bookkeeping -- worker processes count
#: in their own interpreter -- used by tests to verify that warm-cache
#: runs skip re-simulation.
SIM_CALLS = 0


def _coerce_cache(cache: Any) -> Optional[ResultCache]:
    if cache is None:
        return cache_from_env()
    if cache is False:
        return None
    if cache is True:
        return ResultCache()
    if isinstance(cache, (str, Path)):
        return ResultCache(cache)
    return cache


@contextmanager
def configured(jobs: Any = None, cache: Any = None, fast_path: Any = None,
               executor: Optional[SweepExecutor] = None):
    """Run experiments with a given executor/cache configuration.

    ``jobs``: worker count, ``"auto"``, or None to consult the
    ``REPRO_PARALLEL`` environment variable.  ``cache``: a directory
    path, a :class:`ResultCache`, True (default ``.repro_cache/``),
    False (force off), or None to consult ``REPRO_CACHE``.
    ``fast_path``: ``"auto"`` / ``"on"`` / ``"off"`` for the analytic
    no-contention fast path, or None to consult ``REPRO_FAST_PATH``
    (default auto); results are bitwise identical either way.
    ``executor``: an existing :class:`SweepExecutor` to reuse (the
    service shares one pool across jobs); the block then leaves its
    lifetime alone -- only executors this function creates are closed.
    """
    global _EXECUTOR, _CACHE
    from .sim.analytic import set_fast_path_mode

    prev = (_EXECUTOR, _CACHE)
    owns = executor is None
    if executor is None:
        executor = SweepExecutor(jobs)
    _EXECUTOR = executor
    _CACHE = _coerce_cache(cache)
    prev_mode = set_fast_path_mode(fast_path)
    try:
        yield (_EXECUTOR, _CACHE)
    finally:
        set_fast_path_mode(prev_mode)
        _EXECUTOR, _CACHE = prev
        if owns:
            executor.close()


def active_cache() -> Optional[ResultCache]:
    """The result cache of the current :func:`configured` block, if any.

    The CLI uses this to print the cache footer (hits/misses/stores)
    after an ``experiments`` run.
    """
    return _CACHE


def _spec_for(machine: str):
    """Machine specs by task key (presets plus the ablation variants)."""
    if machine == "xd1-slow-dram":
        return _slow_dram_xd1()
    return ALL_PRESETS[machine]()


def _point_sim(task: dict) -> Any:
    """Evaluate one simulation task; returns a JSON-able value.

    Must stay module-level (and all task contents picklable) so the
    process-pool executor can ship tasks to workers.
    """
    global SIM_CALLS
    SIM_CALLS += 1
    kind = task["kind"]
    if kind == "block_mm":
        spec = _spec_for(task["machine"])
        return simulate_block_mm(spec, task["b"], task["b_f"], task["k"])
    if kind == "lu":
        res = simulate_lu(_spec_for(task["machine"]), task["cfg"])
        return {"elapsed": res.elapsed, "gflops": res.gflops}
    if kind == "fw":
        res = simulate_fw(_spec_for(task["machine"]), task["cfg"])
        return {"elapsed": res.elapsed, "gflops": res.gflops}
    if kind == "lu_compare":
        cmp = LuDesign(cray_xd1(p=task.get("p", 6)), n=task["n"], b=task["b"]).compare()
    elif kind == "fw_compare":
        cmp = FwDesign(cray_xd1(p=task.get("p", 6)), n=task["n"], b=task["b"]).compare()
    elif kind == "mm_compare":
        from .apps.mm import MmDesign

        cmp = MmDesign(cray_xd1(p=task.get("p", 6)), n=task["n"]).compare()
    elif kind == "fw_weak":
        from .analysis import fw_weak_scaling

        (pt,) = fw_weak_scaling(ps=(task["p"],), cols_per_node=task["cols_per_node"])
        return {"p": pt.p, "gflops": pt.gflops, "predicted": pt.predicted,
                "efficiency_of_prediction": pt.efficiency_of_prediction}
    elif kind == "lu_strong":
        from .analysis import lu_strong_scaling

        (pt,) = lu_strong_scaling(ps=(task["p"],), n=task["n"], b=task["b"])
        return {"p": pt.p, "gflops": pt.gflops, "predicted": pt.predicted,
                "efficiency_of_prediction": pt.efficiency_of_prediction}
    else:
        raise ValueError(f"unknown simulation task kind {kind!r}")
    # The three *_compare kinds fall through to here: extract every float
    # the experiments print or check, so cached values reproduce the
    # rendered text bit-for-bit.
    return {
        "hybrid": cmp.hybrid.gflops,
        "cpu_only": cmp.cpu_only.gflops,
        "fpga_only": cmp.fpga_only.gflops,
        "predicted": cmp.predicted_gflops,
        "speedup_vs_cpu": cmp.speedup_vs_cpu,
        "speedup_vs_fpga": cmp.speedup_vs_fpga,
        "fraction_of_sum": cmp.fraction_of_sum,
        "fraction_of_predicted": cmp.fraction_of_predicted,
    }


def _batch_fast_path(tasks: list[dict]) -> dict[int, Any]:
    """Solve homogeneous uncontended sweep grids in one NumPy pass each.

    Groups ``block_mm`` tasks by everything but ``b_f`` and ``fw`` tasks
    by everything but the ``(l1, l2)`` split, then evaluates each group
    of two or more points through the vectorised analytic solvers
    (bitwise identical to per-point evaluation).  Returns ``{index:
    value}`` for the points it solved; the rest fall through to the
    normal per-point path (which applies the scalar fast path itself).
    """
    from .sim.analytic import FastPathUnsupported, note_point, resolve_fast_path

    if resolve_fast_path(None) == "off":
        return {}
    groups: dict[tuple, list[int]] = {}
    for i, task in enumerate(tasks):
        kind = task.get("kind")
        if kind == "block_mm":
            groups.setdefault(("block_mm", task["machine"], task["b"], task["k"]), []).append(i)
        elif kind == "fw":
            cfg = task["cfg"]
            groups.setdefault(
                ("fw", task["machine"], cfg.n, cfg.b, cfg.k, cfg.overlap,
                 cfg.aggregate_ops, cfg.iterations, cfg.cpu_kernel),
                [],
            ).append(i)
    solved: dict[int, Any] = {}
    for key, idxs in groups.items():
        if len(idxs) < 2:
            continue
        spec = _spec_for(key[1])
        try:
            if key[0] == "block_mm":
                from .apps.lu.analytic import analytic_block_mm_batch

                _, _, b, k = key
                latencies = analytic_block_mm_batch(
                    spec, b, [tasks[i]["b_f"] for i in idxs], k
                )
                for i, latency in zip(idxs, latencies):
                    solved[i] = latency
                    note_point("block_mm", "analytic")
            else:
                from .apps.fw.analytic import analytic_fw_batch

                results = analytic_fw_batch(spec, [tasks[i]["cfg"] for i in idxs])
                for i, res in zip(idxs, results):
                    solved[i] = {"elapsed": res.elapsed, "gflops": res.gflops}
                    note_point("fw", "analytic")
        except FastPathUnsupported:
            continue
    return solved


def _run_sim_tasks(tasks: list[dict], executor) -> list[Any]:
    """Evaluate uncached tasks: vectorised fast path, then the executor."""
    global SIM_CALLS
    solved = _batch_fast_path(tasks)
    if not solved:
        if executor is not None:
            return executor.map(_point_sim, tasks)
        return [_point_sim(t) for t in tasks]
    SIM_CALLS += len(solved)  # batch-solved points are simulations too
    rest = [i for i in range(len(tasks)) if i not in solved]
    values: list[Any] = [None] * len(tasks)
    for i, value in solved.items():
        values[i] = value
    if rest:
        todo = [tasks[i] for i in rest]
        got = executor.map(_point_sim, todo) if executor is not None else [
            _point_sim(t) for t in todo
        ]
        for i, value in zip(rest, got):
            values[i] = value
    return values


def _eval_sim_points(tasks: list[dict]) -> list[Any]:
    """Evaluate tasks through the active cache and executor, in order."""
    cache = _CACHE
    executor = _EXECUTOR
    REGISTRY.counter("experiments.sim_points").inc(len(tasks))
    if cache is None:
        with get_tracer().span("eval_sim_points", category="sweep", tasks=len(tasks)):
            return _run_sim_tasks(tasks, executor)
    values: list[Any] = [None] * len(tasks)
    misses: list[int] = []
    with get_tracer().span("cache.lookup_batch", category="cache", tasks=len(tasks)):
        for i, task in enumerate(tasks):
            entry = cache.get(task)
            if entry is None:
                misses.append(i)
            else:
                values[i] = entry["value"]
    if misses:
        todo = [tasks[i] for i in misses]
        with get_tracer().span(
            "eval_sim_points", category="sweep", tasks=len(todo), cached=len(tasks) - len(todo)
        ):
            got = _run_sim_tasks(todo, executor)
        for i, value in zip(misses, got):
            cache.put(tasks[i], value)
            values[i] = value
    return values


def _eval_sim_point(task: dict) -> Any:
    return _eval_sim_points([task])[0]


# ---------------------------------------------------------------- Table 1


def table1_routines() -> ExperimentResult:
    """Table 1: panel-routine latencies at b = 3000 on the Opteron model."""
    spec = cray_xd1()
    proc = spec.node.processor
    b = 3000
    rows = [
        ["opLU", "dgetrf", 4.9, proc.kernel_time("dgetrf", getrf_flops(b))],
        ["opL", "dtrsm", 7.1, proc.kernel_time("dtrsm", trsm_flops(b, b))],
        ["opU", "dtrsm", 7.1, proc.kernel_time("dtrsm", trsm_flops(b, b))],
    ]
    text = table(
        ["operation", "routine", "paper latency (s)", "model latency (s)"],
        rows,
        title="Table 1: routines and latencies for LU operations (b = 3000)",
    )
    checks = {
        f"{op}_matches_paper": abs(model - paper) / paper < 0.01
        for op, _, paper, model in rows
    }
    return ExperimentResult("table1", "LU panel routine latencies", text, {"rows": rows}, checks)


# ---------------------------------------------------------------- Figure 5


def fig5_bf_sweep(step: int = 200) -> ExperimentResult:
    """Figure 5: latency of one b x b block MM vs b_f (b=3000, p=6)."""
    spec = cray_xd1()
    b, k = 3000, 8
    bfs = [bf for bf in range(0, b + 1, step) if bf % k == 0]
    if b not in bfs:
        bfs.append(b)
    ys = _eval_sim_points(
        [{"kind": "block_mm", "machine": "xd1", "b": b, "b_f": int(bf), "k": k} for bf in bfs]
    )
    series = Series("block MM latency")
    for bf, y in zip(bfs, ys):
        series.append(bf, y)
    params = spec.parameters("dgemm", MatrixMultiplyDesign.for_device())
    solved = lu_stripe_partition(b, k, params).b_f
    text = line_chart(
        [series],
        "Figure 5: latency of one 3000x3000 block MM vs b_f (p = 6)",
        x_label="b_f (rows on FPGA)",
        y_label="seconds",
    )
    text += f"\nEq. 4 solution: b_f = {solved}; sweep minimum at b_f = {series.argmin():.0f}"
    checks = {
        "u_shaped": series.is_u_shaped(),
        "minimum_near_eq4_solution": abs(series.argmin() - solved) <= 2 * step,
        "fpga_only_slower_than_cpu_only": series.ys[-1] > series.ys[0],
    }
    return ExperimentResult(
        "fig5", "block-MM latency vs b_f", text, {"series": series, "solved_bf": solved}, checks
    )


# ---------------------------------------------------------------- Figure 6


def fig6_l_sweep() -> ExperimentResult:
    """Figure 6: latency of the 0th LU iteration vs l (n=30000, p=6)."""
    ls = [0, 1, 2, 3, 4, 5]
    results = _eval_sim_points(
        [
            {
                "kind": "lu",
                "machine": "xd1",
                "cfg": LuSimConfig(n=30000, b=3000, k=8, b_f=1080, l=l, iterations=1),
            }
            for l in ls
        ]
    )
    series = Series("0th iteration latency")
    for l, res in zip(ls, results):
        series.append(l, res["elapsed"])
    text = line_chart(
        [series],
        "Figure 6: latency of the 0th LU iteration vs l (n = 30000, p = 6)",
        x_label="l (opMMs shipped per panel routine)",
        y_label="seconds",
    )
    text += (
        "\nPaper: minimum at l = 3, nearly flat beyond (increase 'not noticeable "
        "until l = 5'); Eq. 5 yields l = 3 with the Table 1 latencies."
    )
    checks = {
        "improves_up_to_eq5_value": series.ys[0] > series.ys[1] > series.ys[2] > series.ys[3],
        "flat_beyond_optimum": abs(series.ys[5] - series.ys[4]) / series.ys[4] < 0.05,
    }
    return ExperimentResult("fig6", "LU iteration latency vs l", text, {"series": series}, checks)


# ---------------------------------------------------------------- Figure 7


def fig7_l1_sweep() -> ExperimentResult:
    """Figure 7: latency of one FW iteration vs l1 (b=256, n=18432, p=6)."""
    l1s = list(range(0, 13))
    results = _eval_sim_points(
        [
            {
                "kind": "fw",
                "machine": "xd1",
                "cfg": FwSimConfig(n=18432, b=256, k=8, l1=l1, l2=12 - l1, iterations=1),
            }
            for l1 in l1s
        ]
    )
    series = Series("iteration latency")
    for l1, res in zip(l1s, results):
        series.append(l1, res["elapsed"])
    text = line_chart(
        [series],
        "Figure 7: latency of one FW iteration vs l1 (n = 18432, p = 6)",
        x_label="l1 (tasks per phase on CPU)",
        y_label="seconds",
    )
    text += (
        f"\nMinimum at l1 = {series.argmin():.0f} (paper: 2; Eq. 6 gives l1 = 2). "
        "FPGA-only (l1 = 0) beats all splits with l1 >= 3, as the paper notes."
    )
    ys = dict(zip(series.xs, series.ys))
    checks = {
        "minimum_at_l1_2": series.argmin() == 2,
        "fpga_overloaded_at_l1_1": ys[1] > ys[2],
        "fpga_only_beats_l1_3_and_up": all(ys[0] < ys[l1] for l1 in range(3, 13)),
        "monotone_beyond_3": all(ys[l1 + 1] > ys[l1] for l1 in range(3, 12)),
    }
    return ExperimentResult("fig7", "FW iteration latency vs l1", text, {"series": series}, checks)


# ---------------------------------------------------------------- Figure 8


def fig8_lu_scaling() -> ExperimentResult:
    """Figure 8: LU GFLOPS vs n/b (b = 3000, growing matrix)."""
    nbs = (2, 4, 6, 8, 10)
    results = _eval_sim_points(
        [
            {
                "kind": "lu",
                "machine": "xd1",
                "cfg": LuSimConfig(n=3000 * nb, b=3000, k=8, b_f=1080, l=3),
            }
            for nb in nbs
        ]
    )
    series = Series("hybrid LU")
    for nb, res in zip(nbs, results):
        series.append(nb, res["gflops"])
    text = line_chart(
        [series],
        "Figure 8: GFLOPS of LU decomposition vs n/b (b = 3000)",
        x_label="n/b (blocks per dimension)",
        y_label="GFLOPS",
    )
    text += (
        "\nPaper: performance rises with n/b because opMM -- the only task "
        "using both devices -- dominates more as the matrix grows."
    )
    checks = {
        "monotone_increasing": series.is_monotone_increasing(),
        "reaches_headline_band": 17.0 < series.ys[-1] < 23.0,
    }
    return ExperimentResult("fig8", "LU GFLOPS vs n/b", text, {"series": series}, checks)


# ---------------------------------------------------------------- Figure 9


def fig9_lu() -> ExperimentResult:
    """Figure 9 (left): LU hybrid vs baselines, plus model prediction."""
    cmp = _eval_sim_point({"kind": "lu_compare", "n": 30000, "b": 3000})
    text = bar_chart(
        ["Hybrid", "Processor-only", "FPGA-only", "Model prediction"],
        [cmp["hybrid"], cmp["cpu_only"], cmp["fpga_only"], cmp["predicted"]],
        "Figure 9 (LU): n = 30000, b = 3000, p = 6",
        unit=" GFLOPS",
    )
    text += (
        f"\nspeedup vs CPU-only {cmp['speedup_vs_cpu']:.2f}x (paper 1.3x), "
        f"vs FPGA-only {cmp['speedup_vs_fpga']:.2f}x (paper 2x); "
        f"{percent(cmp['fraction_of_sum'])} of baseline sum (paper ~80%); "
        f"{percent(cmp['fraction_of_predicted'])} of prediction (paper ~86%)."
    )
    checks = {
        "hybrid_near_20_gflops": abs(cmp["hybrid"] - 20.0) / 20.0 < 0.15,
        "hybrid_beats_cpu_only": cmp["speedup_vs_cpu"] > 1.05,
        "hybrid_beats_fpga_only": cmp["speedup_vs_fpga"] > 1.5,
        "fpga_only_near_10": abs(cmp["fpga_only"] - 10.0) / 10.0 < 0.2,
        "fraction_of_sum_in_band": 0.6 < cmp["fraction_of_sum"] < 0.95,
        "below_prediction": cmp["fraction_of_predicted"] < 1.0,
    }
    return ExperimentResult(
        "fig9-lu",
        "LU comparison with baselines",
        text,
        {
            "hybrid": cmp["hybrid"],
            "cpu_only": cmp["cpu_only"],
            "fpga_only": cmp["fpga_only"],
            "predicted": cmp["predicted"],
        },
        checks,
    )


def fig9_fw() -> ExperimentResult:
    """Figure 9 (right): FW hybrid vs baselines, plus model prediction."""
    cmp = _eval_sim_point({"kind": "fw_compare", "n": 92160, "b": 256})
    text = bar_chart(
        ["Hybrid", "Processor-only", "FPGA-only", "Model prediction"],
        [cmp["hybrid"], cmp["cpu_only"], cmp["fpga_only"], cmp["predicted"]],
        "Figure 9 (FW): n = 92160, b = 256, p = 6",
        unit=" GFLOPS",
    )
    text += (
        f"\nspeedup vs CPU-only {cmp['speedup_vs_cpu']:.2f}x (paper 5.8x), "
        f"vs FPGA-only {cmp['speedup_vs_fpga']:.2f}x (paper 1.15x); "
        f"{percent(cmp['fraction_of_sum'])} of baseline sum (paper >95%); "
        f"{percent(cmp['fraction_of_predicted'])} of prediction (paper ~96%)."
    )
    checks = {
        "hybrid_near_6_6_gflops": abs(cmp["hybrid"] - 6.6) / 6.6 < 0.05,
        "cpu_only_near_1_14": abs(cmp["cpu_only"] - 1.14) / 1.14 < 0.05,
        "fpga_only_near_5_75": abs(cmp["fpga_only"] - 5.75) / 5.75 < 0.05,
        "speedup_vs_cpu_near_5_8": abs(cmp["speedup_vs_cpu"] - 5.8) / 5.8 < 0.1,
        "speedup_vs_fpga_near_1_15": abs(cmp["speedup_vs_fpga"] - 1.15) / 1.15 < 0.05,
        "over_95_percent_of_sum": cmp["fraction_of_sum"] > 0.95,
        "near_96_percent_of_prediction": abs(cmp["fraction_of_predicted"] - 0.96) < 0.03,
    }
    return ExperimentResult(
        "fig9-fw",
        "FW comparison with baselines",
        text,
        {
            "hybrid": cmp["hybrid"],
            "cpu_only": cmp["cpu_only"],
            "fpga_only": cmp["fpga_only"],
            "predicted": cmp["predicted"],
        },
        checks,
    )


# ---------------------------------------------------------------- ablations


def ablation_overlap() -> ExperimentResult:
    """Overlap on/off: quantifies Section 4.2/4.3's overlap refinement.

    The effect is largest where the FPGA is the bottleneck (FPGA-only
    configurations): there, unoverlapped staging delays every FPGA start.
    At the balanced Eq. 4/6 splits the CPU-side serial path already pays
    for the staging, so the penalty nearly vanishes -- which is exactly
    why the equations put T_comm/T_mem on the CPU side.
    """
    tasks = []
    for overlap in (True, False):
        tasks.append({"kind": "lu", "machine": "xd1",
                      "cfg": LuSimConfig(n=18000, b=3000, k=8, b_f=3000, l=3, overlap=overlap)})
    for overlap in (True, False):
        tasks.append({"kind": "lu", "machine": "xd1",
                      "cfg": LuSimConfig(n=18000, b=3000, k=8, b_f=1080, l=3, overlap=overlap)})
    for overlap in (True, False):
        tasks.append({"kind": "fw", "machine": "xd1",
                      "cfg": FwSimConfig(n=18432, b=256, k=8, l1=0, l2=12, iterations=1,
                                         overlap=overlap)})
    for overlap in (True, False):
        tasks.append({"kind": "fw", "machine": "xd1",
                      "cfg": FwSimConfig(n=18432, b=256, k=8, l1=2, l2=10, iterations=1,
                                         overlap=overlap)})
    # Where staging is expensive (slow FPGA-DRAM path) the overlap is the
    # difference between usable and unusable FPGA acceleration.
    for overlap in (True, False):
        tasks.append({"kind": "lu", "machine": "xd1-slow-dram",
                      "cfg": LuSimConfig(n=18000, b=3000, k=8, b_f=3000, l=3, overlap=overlap)})
    (lu_on, lu_off, lu_bal_on, lu_bal_off, fw_on, fw_off,
     fw_bal_on, fw_bal_off, slow_on, slow_off) = (
        r["elapsed"] for r in _eval_sim_points(tasks)
    )
    rows = [
        ["LU n=18000 (FPGA-only)", lu_on, lu_off, f"{lu_off / lu_on:.3f}x"],
        ["LU n=18000 (balanced)", lu_bal_on, lu_bal_off, f"{lu_bal_off / lu_bal_on:.3f}x"],
        ["FW iter (FPGA-only)", fw_on, fw_off, f"{fw_off / fw_on:.3f}x"],
        ["FW iter (balanced)", fw_bal_on, fw_bal_off, f"{fw_bal_off / fw_bal_on:.3f}x"],
        ["LU FPGA-only, slow B_d", slow_on, slow_off, f"{slow_off / slow_on:.3f}x"],
    ]
    text = table(
        ["workload", "overlapped (s)", "no overlap (s)", "slowdown"],
        rows,
        title="Ablation: computation/communication overlap (Sections 4.2-4.3)",
    )
    text += (
        "\nUnoverlapped staging hurts the FPGA-bound configurations; at the "
        "balanced splits the CPU-side serial path hides it (by design)."
    )
    checks = {
        "lu_fpga_only_overlap_helps": lu_off > lu_on * 1.003,
        "fw_fpga_only_overlap_helps": fw_off > fw_on * 1.01,
        "balanced_split_hides_staging": lu_bal_off < lu_bal_on * 1.02,
        "slow_bd_makes_overlap_critical": slow_off > slow_on * 1.05,
    }
    return ExperimentResult("ablation-overlap", "overlap on/off", text, {"rows": rows}, checks)


def ablation_partition() -> ExperimentResult:
    """Naive T_p = T_f split (the earlier [22] rule) vs the Eq. 4
    transfer-aware split, on the XD1 and on a bandwidth-starved variant.

    On the XD1 the transfer terms are small relative to compute, so both
    rules land near the same b_f (a finding in itself: the refinement is
    cheap insurance there).  On a machine with a 10x slower FPGA-DRAM
    path, ignoring T_mem visibly misplaces the split.
    """
    b, k = 3000, 8
    rows = []
    results = {}
    for label, machine in (
        ("Cray XD1", "xd1"),
        ("XD1, 10x slower FPGA-DRAM path", "xd1-slow-dram"),
    ):
        spec = _spec_for(machine)
        design = MatrixMultiplyDesign.for_device(spec.node.fpga.device)
        params = spec.parameters("dgemm", design)
        naive = balance_flops(1.0, params)
        naive_bf = int(round(b * naive.n_f / k)) * k
        eq4_bf = lu_stripe_partition(b, k, params).b_f
        lat_naive, lat_eq4 = _eval_sim_points(
            [
                {"kind": "block_mm", "machine": machine, "b": b, "b_f": naive_bf, "k": k},
                {"kind": "block_mm", "machine": machine, "b": b, "b_f": eq4_bf, "k": k},
            ]
        )
        rows.append([label, naive_bf, lat_naive, eq4_bf, lat_eq4,
                     percent((lat_naive - lat_eq4) / lat_naive)])
        results[label] = (lat_naive, lat_eq4)
    text = table(
        ["machine", "naive b_f", "naive (s)", "Eq.4 b_f", "Eq.4 (s)", "gain"],
        rows,
        title="Ablation: naive T_p=T_f split vs Eq. 4 (one 3000x3000 block MM)",
    )
    xd1_naive, xd1_eq4 = results["Cray XD1"]
    slow_naive, slow_eq4 = results["XD1, 10x slower FPGA-DRAM path"]
    checks = {
        "rules_close_on_xd1": abs(xd1_eq4 - xd1_naive) / xd1_naive < 0.03,
        "eq4_wins_when_bandwidth_bound": slow_eq4 < slow_naive * 0.99,
    }
    return ExperimentResult(
        "ablation-partition", "naive vs Eq. 4 partition", text, {"rows": rows}, checks
    )


def _slow_dram_xd1():
    """The XD1 preset with the FPGA-DRAM link cut to 104 MB/s."""
    from .machine import with_fpga_dram_bandwidth

    return with_fpga_dram_bandwidth(cray_xd1(), 0.104e9)


def ablation_presets() -> ExperimentResult:
    """Design-model predictions across the Section 3 machine presets."""
    rows = []
    for key, factory in ALL_PRESETS.items():
        spec = factory()
        mm = MatrixMultiplyDesign.for_device(spec.node.fpga.device)
        fwd = FloydWarshallDesign.for_device(spec.node.fpga.device)
        lu_pred = (
            DesignModel(spec.parameters("dgemm", mm)).plan_lu(30000, 3000, mm.k).prediction.gflops
            if spec.p >= 2
            else None
        )
        fw_n = 256 * spec.p * 60
        fw_pred = DesignModel(spec.parameters("fw", fwd)).plan_fw(fw_n, 256, fwd.k).prediction.gflops
        rows.append(
            [spec.name, spec.p, mm.k, f"{mm.freq_hz / 1e6:.0f}",
             f"{lu_pred:.1f}" if lu_pred else "n/a (p=1)", f"{fw_pred:.2f}"]
        )
    text = table(
        ["machine", "p", "k", "F_f MHz", "LU pred (GFLOPS)", "FW pred (GFLOPS)"],
        rows,
        title="Ablation: model predictions across machine presets (Section 3 survey)",
    )
    xd1_fw = float(rows[0][5])
    checks = {
        "xd1_matches_headline_prediction": abs(xd1_fw - 6.84) < 0.1,
        "bigger_fpgas_predict_higher_fw": float(rows[1][5]) > xd1_fw,
    }
    return ExperimentResult("ablation-presets", "machine presets", text, {"rows": rows}, checks)


def ablation_blocksize() -> ExperimentResult:
    """Block-size selection: regenerate the Section 6.1 choices.

    LU: b must be a multiple of k and p-1 and the Eq. 4 split must fit
    the 8 MB SRAM (the paper picks 3000; the frontier sits at ~3800).
    FW: 2 b^2 words bound b at 720; the paper uses 256 where the
    processor's kernel is cache-resident.
    """
    from .core import (
        choose_fw_block_size,
        fw_block_size_bound,
        lu_block_candidates,
        max_lu_block_size,
    )

    spec = cray_xd1()
    lu_params = spec.parameters("dgemm", MatrixMultiplyDesign.for_device())
    fw_params = spec.parameters("fw", FloydWarshallDesign.for_device())
    cands = lu_block_candidates(lu_params, 8, b_max=4400)
    shown = [c for c in cands if c.b % 600 == 0]
    rows = [
        [c.b, c.b_f_unconstrained, c.sram_words_needed * 8 // 2**20, "yes" if c.feasible else "NO"]
        for c in shown
    ]
    text = table(
        ["b", "Eq.4 b_f", "SRAM needed (MB)", "feasible"],
        rows,
        title="Ablation: LU block-size feasibility (k=8, p=6, 8 MB SRAM)",
    )
    b_star = max_lu_block_size(lu_params, 8)
    fw_bound = fw_block_size_bound(fw_params, 8)
    fw_choice = choose_fw_block_size(fw_params, 8)
    text += (
        f"\nLargest feasible LU block: b = {b_star} (paper uses 3000)."
        f"\nFW tile bound from 2b^2 words on SRAM: b <= {fw_bound}; cache-resident "
        f"choice b = {fw_choice} (the paper's 256)."
    )
    by_b = {c.b: c for c in cands}
    checks = {
        "paper_lu_block_feasible": by_b[3000].feasible,
        "frontier_between_3000_and_4200": 3000 <= b_star < 4200,
        "fw_bound_is_720": fw_bound == 720,
        "fw_choice_is_256": fw_choice == 256,
    }
    return ExperimentResult(
        "ablation-blocksize", "block-size selection", text,
        {"lu_frontier": b_star, "fw_bound": fw_bound, "fw_choice": fw_choice},
        checks,
    )


def ext_ring_mm() -> ExperimentResult:
    """Extension: the model applied to a third application (ring MM).

    The paper positions its model for "a class of applications"; this
    experiment applies it beyond the two worked examples, to the
    distributed C = A x B of the authors' prior work [22], using
    Equation (2) for the split.  Ring MM has no serial panel path, so
    the hybrid should approach the *sum* of the baselines -- the model's
    best case, bracketing LU (~70%) and FW (~96%) from above.
    """
    from .apps.mm import MmDesign

    design = MmDesign(cray_xd1(), n=30000)  # plan only; the sims are cached tasks
    cmp = _eval_sim_point({"kind": "mm_compare", "n": 30000})
    text = bar_chart(
        ["Hybrid", "Processor-only", "FPGA-only", "Model prediction"],
        [cmp["hybrid"], cmp["cpu_only"], cmp["fpga_only"], cmp["predicted"]],
        "Extension: ring matrix multiplication, n = 30000, p = 6",
        unit=" GFLOPS",
    )
    text += (
        f"\nEq. 2 split: m_f = {design.plan.m_f} of r = {design.plan.r} rows per step; "
        f"{percent(cmp['fraction_of_sum'])} of baseline sum, "
        f"{percent(cmp['fraction_of_predicted'])} of prediction."
    )
    checks = {
        "hybrid_beats_cpu_only": cmp["speedup_vs_cpu"] > 1.3,
        "hybrid_beats_fpga_only": cmp["speedup_vs_fpga"] > 2.0,
        "near_sum_of_baselines": cmp["fraction_of_sum"] > 0.95,
        "near_prediction": cmp["fraction_of_predicted"] > 0.9,
    }
    return ExperimentResult(
        "ext-mm",
        "extension: ring matrix multiplication",
        text,
        {
            "hybrid": cmp["hybrid"],
            "cpu_only": cmp["cpu_only"],
            "fpga_only": cmp["fpga_only"],
            "predicted": cmp["predicted"],
        },
        checks,
    )


def ext_scaling() -> ExperimentResult:
    """Extension: node-count scaling beyond the paper's single chassis.

    Weak scaling for FW (fixed 12 block columns per node) and strong
    scaling for LU (n = 18000 across chassis sizes), simulated and
    compared with the Section 4.5 predictions.
    """
    fw_ps, lu_ps = (2, 4, 6, 12), (2, 3, 6)
    points = _eval_sim_points(
        [{"kind": "fw_weak", "p": p, "cols_per_node": 12} for p in fw_ps]
        + [{"kind": "lu_strong", "p": p, "n": 18000, "b": 3000} for p in lu_ps]
    )
    fw_points, lu_points = points[: len(fw_ps)], points[len(fw_ps):]
    rows = [
        ["FW weak", pt["p"], f"{pt['gflops']:.2f}", f"{pt['predicted']:.2f}",
         percent(pt["efficiency_of_prediction"])]
        for pt in fw_points
    ] + [
        ["LU strong", pt["p"], f"{pt['gflops']:.2f}", f"{pt['predicted']:.2f}",
         percent(pt["efficiency_of_prediction"])]
        for pt in lu_points
    ]
    text = table(
        ["study", "p", "simulated GFLOPS", "predicted GFLOPS", "sim/pred"],
        rows,
        title="Extension: scaling across chassis sizes (paper evaluates p = 6 only)",
    )
    text += (
        "\nFW scales near-linearly under weak scaling (uniform phases); LU's "
        "strong-scaling curve flattens as the serial panel path grows relative "
        "to the shrinking per-node opMM work -- Amdahl in the owner lane."
    )
    fw_g = [pt["gflops"] for pt in fw_points]
    lu_g = [pt["gflops"] for pt in lu_points]
    checks = {
        "fw_weak_scaling_monotone": all(b > a for a, b in zip(fw_g, fw_g[1:])),
        "fw_near_linear": fw_points[-1]["gflops"] / fw_points[0]["gflops"]
        > 0.8 * fw_points[-1]["p"] / fw_points[0]["p"],
        "lu_more_nodes_help": lu_g[-1] > lu_g[0],
        "predictions_are_upper_bounds": all(
            pt["efficiency_of_prediction"] <= 1.001 for pt in fw_points + lu_points
        ),
    }
    return ExperimentResult(
        "ext-scaling", "extension: chassis-size scaling", text,
        {"fw": fw_points, "lu": lu_points}, checks,
    )


ALL_EXPERIMENTS: dict[str, Callable[[], ExperimentResult]] = {
    "table1": table1_routines,
    "fig5": fig5_bf_sweep,
    "fig6": fig6_l_sweep,
    "fig7": fig7_l1_sweep,
    "fig8": fig8_lu_scaling,
    "fig9-lu": fig9_lu,
    "fig9-fw": fig9_fw,
    "ablation-overlap": ablation_overlap,
    "ablation-partition": ablation_partition,
    "ablation-presets": ablation_presets,
    "ablation-blocksize": ablation_blocksize,
    "ext-mm": ext_ring_mm,
    "ext-scaling": ext_scaling,
}


def run_all(jobs: Any = None, cache: Any = None) -> list[ExperimentResult]:
    """Run every experiment; returns results in presentation order.

    ``jobs`` and ``cache`` configure the sweep executor and result cache
    for the duration of the run (see :func:`configured`); the defaults
    consult ``REPRO_PARALLEL`` and ``REPRO_CACHE``.  Output is identical
    for any worker count and cache state.
    """
    with configured(jobs=jobs, cache=cache):
        return [fn() for fn in ALL_EXPERIMENTS.values()]


def main() -> int:  # pragma: no cover - exercised via the generator script
    results = run_all()
    for res in results:
        print("=" * 72)
        print(res.summary())
        print(res.text)
        print()
    failed = [r.id for r in results if not r.ok]
    if failed:
        print(f"FAILED checks in: {failed}")
        return 1
    print("All reproduction checks passed.")
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
