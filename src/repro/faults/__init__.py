"""Fault injection and graceful degradation for the co-designed system.

The paper's design methodology assumes nominal Section 4.1 parameters;
this package asks what happens when the machine degrades mid-run -- and
how much of the predicted overlap the design keeps if it re-solves the
partition equations against the degraded parameters:

* :mod:`repro.faults.scenarios` -- composable, serializable, seeded
  fault scenarios (link slowdown, FPGA clock throttle, DRAM contention,
  transient DMA stalls, node failure);
* :mod:`repro.faults.inject` -- the DES injection layer that perturbs a
  live :class:`~repro.machine.system.ReconfigurableSystem`;
* :mod:`repro.faults.adapt` -- the graceful-degradation policies
  (``fail-fast``, ``degrade-static``, ``repartition``, ``exclude-node``)
  that re-solve the Eq. (1)/(2)/(4)/(6) splits on perturbed parameters;
* :mod:`repro.faults.sweep` -- parallel, cacheable fault-grid sweeps;
* :mod:`repro.faults.report` -- the resilience report (makespan
  inflation, overlap-efficiency retention, recovery latency, model-term
  attribution), fed from ``fault_run`` ledger manifests.

Documentation lives in ``docs/robustness.md``.
"""

from .adapt import DEFAULT_SIZES, POLICIES, TERM_GLOSS, FaultRunResult, run_with_faults
from .inject import FaultInjector, NodeFailureError
from .report import ResilienceReport, resilience_rows
from .scenarios import (
    FAULT_KINDS,
    RATE_KINDS,
    SCENARIO_BUILDERS,
    FaultEvent,
    FaultScenario,
    StallBurst,
    brownout,
    build_scenario,
    degraded_link,
    dram_contention,
    fpga_clock_throttle,
    node_failure,
    nominal,
    transient_dma_stalls,
)
from .sweep import fault_sweep, fault_tasks, run_fault_task

__all__ = [
    "DEFAULT_SIZES",
    "FAULT_KINDS",
    "FaultEvent",
    "FaultInjector",
    "FaultRunResult",
    "FaultScenario",
    "NodeFailureError",
    "POLICIES",
    "RATE_KINDS",
    "ResilienceReport",
    "SCENARIO_BUILDERS",
    "StallBurst",
    "TERM_GLOSS",
    "brownout",
    "build_scenario",
    "degraded_link",
    "dram_contention",
    "fault_sweep",
    "fault_tasks",
    "fpga_clock_throttle",
    "node_failure",
    "nominal",
    "resilience_rows",
    "run_fault_task",
    "run_with_faults",
    "transient_dma_stalls",
]
