"""Graceful-degradation policies: re-solving the model under faults.

Given a scenario's post-fault steady state, this layer re-derives the
paper's Section 4.1 parameters and re-solves the partition equations --
Eq. (4) ``(b_p, b_f)`` + Eq. (5) ``l`` for LU, Eq. (6) ``(l1, l2)`` for
FW -- against the *perturbed* machine, then simulates the faulted run
with the chosen split and reconciles it against the perturbed
prediction.  Four policies:

``fail-fast``
    No adaptation, no re-accounting: run the nominal plan, abort on the
    first node failure, and measure the raw inflation against the
    *nominal* prediction.
``degrade-static``
    Keep the nominal partition but recompute the prediction against the
    perturbed parameters -- what the nominal split is *expected* to cost
    on the degraded machine.  Node failures are still fatal.
``repartition``
    Re-solve the Eq. (1)/(2)/(4)/(6) splits on the perturbed parameters
    and run the new split (same node count).  Node failures are still
    fatal -- a rate re-split cannot replace a dead peer.
``exclude-node``
    Remove failed nodes (``with_node_failure``, p -> p - f), re-solve on
    the perturbed parameters at the reduced node count -- redistributing
    the dead node's stripes per the Eq. (5) load-balance rule -- and
    inject only the surviving rate faults.  Without node failures this
    degenerates to ``repartition``.

The adapted runs model the post-recovery steady state: the new split is
in effect from t=0 and the separately-reported ``recovery_latency``
(first fault time + the configured re-planning overhead) quantifies the
detection/re-plan window rather than stretching the makespan.

Attribution: for every run the four Eq. (4)/(6) time terms are evaluated
at the *nominal* partition on nominal vs perturbed parameters; the term
with the largest relative increase names the model term responsible for
the inflation (``t_comm`` -> the Eq. (2)/(4) network term ``D_p/B_n``,
and so on), with a dead node attributed to the Eq. (5) node count.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional

from ..core.model import DesignModel
from ..core.parameters import SystemParameters
from ..core.partition import (
    FwPartition,
    LuStripePartition,
    fw_op_times,
    lu_stripe_times,
)
from ..core.prediction import Prediction, predict_fw, predict_lu
from ..machine.presets import ALL_PRESETS
from ..machine.scenarios import with_node_failure
from ..machine.system import MachineSpec
from ..obs.metrics import MetricsRegistry
from ..sim import ProcessFailure
from .inject import FaultInjector
from .scenarios import FaultScenario

__all__ = [
    "POLICIES",
    "TERM_GLOSS",
    "DEFAULT_SIZES",
    "FaultRunResult",
    "run_with_faults",
]

#: The graceful-degradation policies, least to most adaptive.
POLICIES = ("fail-fast", "degrade-static", "repartition", "exclude-node")

#: Model-term glosses for attribution (keys of the Eq. (4)/(6) terms).
TERM_GLOSS = {
    "t_comm": "Eq. (2)/(4) network term (D_p/B_n)",
    "t_mem": "Eq. (1)/(4) memory-staging term (D_f/B_d)",
    "t_p": "processor compute term (N_p/(O_p F_p))",
    "t_f": "FPGA pipeline term (N_f/(O_f F_f))",
    "p": "Eq. (5) node count p",
}

#: Default problem sizes per app (kept small enough for CI fault sweeps;
#: LU uses the paper's b=3000 so the Table 1 latencies apply).
DEFAULT_SIZES = {"lu": (12000, 3000), "fw": (18432, 256)}


@dataclass
class FaultRunResult:
    """Everything one (app, scenario, policy) fault run produced."""

    app: str
    preset: str
    scenario: FaultScenario
    policy: str
    p: int
    p_effective: int
    nominal_makespan: float
    nominal_efficiency: float
    nominal_partition: dict[str, Any]
    partition: dict[str, Any]  # the split the faulted run used
    predicted_latency: float  # max{T_tp, T_tf} backing faulted_efficiency
    faulted_makespan: Optional[float] = None
    faulted_efficiency: Optional[float] = None
    failed: bool = False
    failure: Optional[dict[str, Any]] = None
    recovery_latency: Optional[float] = None
    attribution: dict[str, Any] = field(default_factory=dict)
    injected: list[dict[str, Any]] = field(default_factory=list)

    @property
    def makespan_inflation(self) -> Optional[float]:
        """Faulted / nominal makespan (None for aborted runs)."""
        if self.failed or not self.faulted_makespan or self.nominal_makespan <= 0:
            return None
        return self.faulted_makespan / self.nominal_makespan

    @property
    def efficiency_retention(self) -> Optional[float]:
        """Faulted / nominal overlap efficiency (None for aborted runs)."""
        if self.failed or self.faulted_efficiency is None or self.nominal_efficiency <= 0:
            return None
        return self.faulted_efficiency / self.nominal_efficiency

    def to_dict(self) -> dict[str, Any]:
        """JSON-able form (the sweep cache value and ledger payload)."""
        return {
            "app": self.app,
            "preset": self.preset,
            "scenario": self.scenario.to_dict(),
            "policy": self.policy,
            "p": self.p,
            "p_effective": self.p_effective,
            "nominal_makespan": self.nominal_makespan,
            "nominal_efficiency": self.nominal_efficiency,
            "nominal_partition": self.nominal_partition,
            "partition": self.partition,
            "predicted_latency": self.predicted_latency,
            "faulted_makespan": self.faulted_makespan,
            "faulted_efficiency": self.faulted_efficiency,
            "makespan_inflation": self.makespan_inflation,
            "efficiency_retention": self.efficiency_retention,
            "failed": self.failed,
            "failure": self.failure,
            "recovery_latency": self.recovery_latency,
            "attribution": self.attribution,
            "injected": self.injected,
        }


# ------------------------------------------------------------ helpers


def _perturbed_params(params: SystemParameters, scenario: FaultScenario) -> SystemParameters:
    """``params`` under the scenario's steady-state rate factors.

    A clock throttle scales ``F_f`` only: the DMA engine keeps its
    configured streaming rate (matching the injector), so ``B_d`` moves
    only with explicit DRAM contention.
    """
    factors = scenario.rate_factors()
    return params.with_(
        b_n=params.b_n * factors["b_n"],
        f_f=params.f_f * factors["f_f"],
        b_d=params.b_d * factors["b_d"],
    )


def _lu_prediction(
    n: int, b: int, k: int, b_f: int, params: SystemParameters, latencies: dict[str, float]
) -> Prediction:
    """Section 4.5 prediction for a *forced* LU split on given params."""
    t_p, t_f, t_comm, t_mem = lu_stripe_times(b, b_f, k, params)
    part = LuStripePartition(
        b=b,
        b_p=b - b_f,
        b_f=b_f,
        k=k,
        p=params.p,
        t_p=t_p,
        t_f=t_f,
        t_comm=t_comm,
        t_mem=t_mem,
        b_f_exact=float(b_f),
        sram_words=b_f * b // (params.p - 1),
    )
    cpu = params.cpu_flops
    t_lu = latencies.get("t_lu", (2.0 / 3.0) * b**3 / cpu)
    t_opl = latencies.get("t_opl", float(b) ** 3 / cpu)
    t_opu = latencies.get("t_opu", float(b) ** 3 / cpu)
    return predict_lu(n, b, part, t_lu, t_opl, t_opu, params)


def _fw_prediction(n: int, b: int, k: int, l1: int, params: SystemParameters) -> Prediction:
    """Section 4.5 prediction for a *forced* FW split on given params."""
    t_p, t_f, t_comm, t_mem = fw_op_times(b, k, params)
    total = n // (b * params.p)
    part = FwPartition(
        l1=l1, l2=total - l1, t_p=t_p, t_f=t_f, t_comm=t_comm, t_mem=t_mem, l1_exact=float(l1)
    )
    return predict_fw(n, b, part, params)


def _attribution(
    nominal_terms: tuple[float, float, float, float],
    perturbed_terms: tuple[float, float, float, float],
    failed_nodes: tuple[int, ...],
    p: int,
) -> dict[str, Any]:
    """Name the model term responsible for the inflation."""
    names = ("t_p", "t_f", "t_comm", "t_mem")
    inflation: dict[str, float] = {}
    for name, nom, per in zip(names, nominal_terms, perturbed_terms):
        if nom > 0:
            inflation[name] = per / nom - 1.0
        else:
            inflation[name] = 0.0
    if failed_nodes:
        inflation["p"] = p / (p - len(failed_nodes)) - 1.0
    term = max(inflation, key=lambda k: inflation[k])
    if inflation[term] <= 1e-12:
        term = None
    return {
        "term": term,
        "gloss": TERM_GLOSS.get(term, "") if term else "no model term degraded",
        "inflation": inflation,
    }


def _failure_info(exc: ProcessFailure) -> dict[str, Any]:
    return {
        "error": str(exc),
        "process": getattr(exc, "process_name", None),
        "time": getattr(exc, "sim_time", None),
        "lane": getattr(exc, "lane", None),
    }


def _aborted(result: FaultRunResult, failure: dict[str, Any]) -> FaultRunResult:
    result.failed = True
    result.failure = failure
    result.faulted_makespan = failure.get("time")
    result.faulted_efficiency = None
    return result


# ------------------------------------------------------------ the runner


def run_with_faults(
    app: str,
    scenario: FaultScenario | dict,
    policy: str = "repartition",
    *,
    preset: str = "xd1",
    spec: Optional[MachineSpec] = None,
    n: Optional[int] = None,
    b: Optional[int] = None,
    sim_overrides: Optional[dict[str, Any]] = None,
    replan_latency: float = 0.0,
) -> FaultRunResult:
    """One fault run: nominal baseline, perturbed re-plan, faulted DES.

    Simulates the app twice -- nominally, then under the scenario with
    the policy's partition -- and reconciles both against their model
    predictions, so the result carries makespan inflation, overlap-
    efficiency retention, recovery latency and the model-term
    attribution.  ``app`` is ``"lu"`` or ``"fw"`` (MM supports raw
    injection via ``MmDesign.simulate(faults=...)`` but has no
    Eq.-based re-partitioning policy).
    """
    if isinstance(scenario, dict):
        scenario = FaultScenario.from_dict(scenario)
    if policy not in POLICIES:
        raise ValueError(f"unknown policy {policy!r}; expected one of {POLICIES}")
    if app not in DEFAULT_SIZES:
        raise ValueError(f"unknown app {app!r}; fault policies support {sorted(DEFAULT_SIZES)}")
    if spec is None:
        try:
            spec = ALL_PRESETS[preset]()
        except KeyError:
            raise ValueError(
                f"unknown preset {preset!r}; available: {sorted(ALL_PRESETS)}"
            ) from None
    default_n, default_b = DEFAULT_SIZES[app]
    n = default_n if n is None else n
    b = default_b if b is None else b
    over = dict(sim_overrides or {})
    if app == "lu":
        return _run_lu(spec, preset, scenario, policy, n, b, over, replan_latency)
    return _run_fw(spec, preset, scenario, policy, n, b, over, replan_latency)


def _recovery(scenario: FaultScenario, policy: str, replan_latency: float) -> Optional[float]:
    if policy not in ("repartition", "exclude-node") or not scenario.has_faults:
        return None
    first = scenario.first_fault_time()
    return (first or 0.0) + replan_latency


def _run_lu(
    spec: MachineSpec,
    preset: str,
    scenario: FaultScenario,
    policy: str,
    n: int,
    b: int,
    over: dict[str, Any],
    replan_latency: float,
) -> FaultRunResult:
    from ..apps.lu.design import TABLE1_LATENCIES, LuDesign

    base = LuDesign(spec, n, b)
    latencies = TABLE1_LATENCIES if b == 3000 else {}
    registry = MetricsRegistry()  # keep fault-run gauges off the global registry
    nominal_result = base.simulate(trace=True, **over)
    nominal_report = base.overlap_report(nominal_result, registry=registry)
    nominal_partition = base.partition_params()
    perturbed = _perturbed_params(base.params, scenario)
    failed_nodes = scenario.failed_nodes()
    attribution = _attribution(
        lu_stripe_times(b, base.plan.partition.b_f, base.k, base.params),
        lu_stripe_times(b, base.plan.partition.b_f, base.k, perturbed),
        failed_nodes,
        spec.p,
    )
    result = FaultRunResult(
        app="lu",
        preset=preset,
        scenario=scenario,
        policy=policy,
        p=spec.p,
        p_effective=spec.p,
        nominal_makespan=nominal_result.elapsed,
        nominal_efficiency=nominal_report.overlap_efficiency,
        nominal_partition=nominal_partition,
        partition=dict(nominal_partition),
        predicted_latency=nominal_report.predicted_latency,
        recovery_latency=_recovery(scenario, policy, replan_latency),
        attribution=attribution,
    )

    run_design = base
    run_scenario = scenario
    config_over: dict[str, Any] = {}
    prediction = base.plan.prediction
    try:
        if policy == "degrade-static":
            prediction = _lu_prediction(
                n, b, base.k, base.plan.partition.b_f, perturbed, latencies
            )
        elif policy == "repartition":
            plan = DesignModel(perturbed).plan_lu(n, b, base.k, **latencies)
            config_over = {"b_f": plan.partition.b_f, "l": plan.balance.l}
            prediction = plan.prediction
            result.partition = {
                "b_p": plan.partition.b_p,
                "b_f": plan.partition.b_f,
                "l": plan.balance.l,
                "k": base.k,
            }
        elif policy == "exclude-node":
            p_eff = spec.p - len(failed_nodes)
            run_spec = spec
            for node_id in failed_nodes:
                run_spec = with_node_failure(run_spec, node_id)
            run_design = LuDesign(run_spec, n, b)
            perturbed_eff = _perturbed_params(run_design.params, scenario)
            plan = DesignModel(perturbed_eff).plan_lu(n, b, run_design.k, **latencies)
            config_over = {"b_f": plan.partition.b_f, "l": plan.balance.l}
            prediction = plan.prediction
            run_scenario = scenario.without_node_failures()
            result.p_effective = p_eff
            result.partition = {
                "b_p": plan.partition.b_p,
                "b_f": plan.partition.b_f,
                "l": plan.balance.l,
                "k": run_design.k,
            }
    except ValueError as exc:
        return _aborted(result, {"error": str(exc), "stage": "replan"})

    injector = FaultInjector(run_scenario, fail_fast=(policy != "exclude-node"))
    try:
        faulted = run_design.simulate(trace=True, faults=injector, **config_over, **over)
    except ProcessFailure as exc:
        result.injected = injector.injected
        return _aborted(result, _failure_info(exc))
    result.injected = injector.injected
    result.faulted_makespan = faulted.elapsed
    faulted_report = _reconcile_faulted(
        "lu", faulted.elapsed, prediction, faulted.trace, None, registry, scenario, policy
    )
    result.predicted_latency = faulted_report.predicted_latency
    result.faulted_efficiency = faulted_report.overlap_efficiency
    return result


def _run_fw(
    spec: MachineSpec,
    preset: str,
    scenario: FaultScenario,
    policy: str,
    n: int,
    b: int,
    over: dict[str, Any],
    replan_latency: float,
) -> FaultRunResult:
    from ..apps.fw.design import FwDesign

    base = FwDesign(spec, n, b)
    registry = MetricsRegistry()
    nominal_result = base.simulate(trace=True, **over)
    nominal_report = base.overlap_report(nominal_result, registry=registry)
    nominal_partition = base.partition_params()
    perturbed = _perturbed_params(base.params, scenario)
    failed_nodes = scenario.failed_nodes()
    attribution = _attribution(
        fw_op_times(b, base.k, base.params),
        fw_op_times(b, base.k, perturbed),
        failed_nodes,
        spec.p,
    )
    result = FaultRunResult(
        app="fw",
        preset=preset,
        scenario=scenario,
        policy=policy,
        p=spec.p,
        p_effective=spec.p,
        nominal_makespan=nominal_result.total_elapsed,
        nominal_efficiency=nominal_report.overlap_efficiency,
        nominal_partition=nominal_partition,
        partition=dict(nominal_partition),
        predicted_latency=nominal_report.predicted_latency,
        recovery_latency=_recovery(scenario, policy, replan_latency),
        attribution=attribution,
    )

    run_design = base
    run_scenario = scenario
    config_over: dict[str, Any] = {}
    prediction = base.plan.prediction
    try:
        if policy == "degrade-static":
            prediction = _fw_prediction(n, b, base.k, base.plan.partition.l1, perturbed)
        elif policy == "repartition":
            plan = DesignModel(perturbed).plan_fw(n, b, base.k)
            config_over = {"l1": plan.partition.l1}
            prediction = plan.prediction
            result.partition = {"l1": plan.partition.l1, "l2": plan.partition.l2, "k": base.k}
        elif policy == "exclude-node":
            p_eff = spec.p - len(failed_nodes)
            run_spec = spec
            for node_id in failed_nodes:
                run_spec = with_node_failure(run_spec, node_id)
            run_design = FwDesign(run_spec, n, b)  # re-validates n % (b p')
            perturbed_eff = _perturbed_params(run_design.params, scenario)
            plan = DesignModel(perturbed_eff).plan_fw(n, b, run_design.k)
            config_over = {"l1": plan.partition.l1}
            prediction = plan.prediction
            run_scenario = scenario.without_node_failures()
            result.p_effective = p_eff
            result.partition = {
                "l1": plan.partition.l1,
                "l2": plan.partition.l2,
                "k": run_design.k,
            }
    except ValueError as exc:
        return _aborted(result, {"error": str(exc), "stage": "replan"})

    injector = FaultInjector(run_scenario, fail_fast=(policy != "exclude-node"))
    try:
        faulted = run_design.simulate(trace=True, faults=injector, **config_over, **over)
    except ProcessFailure as exc:
        result.injected = injector.injected
        return _aborted(result, _failure_info(exc))
    result.injected = injector.injected
    result.faulted_makespan = faulted.total_elapsed
    faulted_report = _reconcile_faulted(
        "fw",
        faulted.total_elapsed,
        prediction,
        faulted.trace,
        faulted.elapsed,
        registry,
        scenario,
        policy,
    )
    result.predicted_latency = faulted_report.predicted_latency
    result.faulted_efficiency = faulted_report.overlap_efficiency
    return result


def _reconcile_faulted(
    app: str,
    makespan: float,
    prediction: Any,
    trace: Any,
    window: Optional[float],
    registry: MetricsRegistry,
    scenario: FaultScenario,
    policy: str,
):
    from ..obs import reconcile

    return reconcile(
        app,
        makespan,
        prediction,
        trace=trace,
        window=window,
        registry=registry,
        scenario=scenario.name,
        policy=policy,
        faulted=True,
    )
