"""DES fault injection: perturb a live :class:`ReconfigurableSystem`.

A :class:`FaultInjector` takes a :class:`~repro.faults.scenarios.
FaultScenario` and installs itself on a system *before* the schedule
processes run.  Every perturbation works through state the resources
already re-read on each grant, so the simulator hot path is untouched:

* ``link_slowdown`` -- replaces the interconnect's frozen ``NetworkSpec``
  with a scaled-bandwidth copy (``Interconnect.transfer_time`` reads
  ``self.spec`` per send);
* ``fpga_throttle`` -- wraps the loaded design in a delegating proxy
  whose ``freq_hz`` is scaled (``FpgaFabric.run_cycles`` reads the
  design clock per call);
* ``dram_contention`` -- scales ``BandwidthChannel.bandwidth`` on the
  node's B_d channel (read per transfer);
* ``dma_stall`` -- holds the B_d channel's grant lock for the stall
  window, so queued transfers wait exactly as a wedged DMA engine would;
* ``node_failure`` -- a fault process raises :class:`NodeFailureError`
  at the failure time; the engine wraps it in a structured
  :class:`~repro.sim.ProcessFailure` carrying process/time/lane context.

Overlapping windows on the same target stack multiplicatively: the
injector keeps the nominal base value per target and recomputes
``base * product(active factors)`` on every apply/revert, so when the
last window closes the target returns to its base *bitwise*.

Determinism: the injector spawns its fault processes before the caller
spawns the schedule processes, so at equal times fault events fire first
under the engine's FIFO tie-breaking; the scenario timeline itself is
seeded (see :meth:`FaultScenario.expand`).  Same scenario + same
machine + same schedule => the bitwise-same makespan, trace and
injection log.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Optional

from ..machine.system import ReconfigurableSystem
from .scenarios import FaultEvent, FaultScenario

__all__ = ["FaultInjector", "NodeFailureError"]

#: Trace lane used for injection marks (zero-length intervals).
FAULT_LANE = "faults"


class NodeFailureError(RuntimeError):
    """A simulated node died; raised inside the fault process."""

    def __init__(self, node: int, at: float) -> None:
        super().__init__(f"node {node} failed at t={at:g}")
        self.node = node
        self.at = at


class _ThrottledDesign:
    """A delegating proxy over a loaded FPGA design with a scaled clock.

    Everything except ``freq_hz`` falls through to the wrapped design;
    the injector sets ``freq_hz`` directly when throttle windows open
    and close (restoring ``base_freq_hz`` exactly when none are active).
    """

    def __init__(self, design: Any) -> None:
        self.__dict__["_design"] = design
        self.__dict__["base_freq_hz"] = design.freq_hz
        self.__dict__["freq_hz"] = design.freq_hz

    def __getattr__(self, name: str) -> Any:
        return getattr(self.__dict__["_design"], name)


class FaultInjector:
    """Installs a scenario's faults onto one live system.

    ``fail_fast=True`` enacts ``node_failure`` events (the run aborts
    with a :class:`~repro.sim.ProcessFailure`); ``fail_fast=False``
    records them without enacting -- the adaptation layer uses this for
    ``exclude-node`` runs where the failed node was already removed from
    the machine.

    One injector serves one run: :meth:`install` may be called once.
    The ``injected`` list is the deterministic event log
    (``{"t", "kind", "phase", "node", "factor", "duration"}`` dicts in
    application order).
    """

    def __init__(self, scenario: FaultScenario, fail_fast: bool = True) -> None:
        self.scenario = scenario
        self.fail_fast = fail_fast
        self.system: Optional[ReconfigurableSystem] = None
        self.injected: list[dict[str, Any]] = []
        self._factors: dict[tuple, list[float]] = {}
        self._base: dict[tuple, float] = {}

    # -- installation ---------------------------------------------------

    def install(self, system: ReconfigurableSystem) -> "FaultInjector":
        """Hook every scenario event into ``system``'s simulator.

        Must run after the FPGAs are configured (the B_d channels exist)
        and before the schedule processes are spawned (fault processes
        win FIFO ties at equal times).
        """
        if self.system is not None:
            raise RuntimeError("FaultInjector already installed; use one per run")
        self.system = system
        sim = system.sim
        p = system.p
        for event in self.scenario.expand():
            if event.node is not None and not 0 <= event.node < p:
                raise ValueError(
                    f"fault event targets node {event.node}, but the machine has p={p}"
                )
            if event.kind == "node_failure":
                if self.fail_fast:
                    sim.process(
                        self._fail_node(event), name=f"fault:node_failure@{event.node}"
                    )
                else:
                    self._log(event, "suppressed", event.at, node=event.node)
                continue
            if event.kind == "dma_stall":
                for i in self._nodes_of(event):
                    if system.nodes[i].fpga_dram is None:
                        raise RuntimeError(
                            f"node {i}: FPGA not configured; install the injector "
                            "after configure_fpgas()"
                        )
                    sim.process(self._stall(event, i), name=f"fault:dma_stall@{i}")
                continue
            # Rate faults: immediate steady ones apply synchronously at
            # t=0 (before any service time is computed); timed or
            # windowed ones run as fault processes.
            if event.at <= 0 and event.duration is None:
                self._apply(event)
                self._log(event, "apply", 0.0)
            else:
                sim.process(self._window(event), name=f"fault:{event.kind}")
        return self

    # -- fault processes ------------------------------------------------

    def _window(self, event: FaultEvent):
        sim = self.system.sim
        if event.at > 0:
            yield sim.timeout(event.at)
        self._apply(event)
        self._log(event, "apply", sim.now)
        if event.duration is None:
            return
        yield sim.timeout(event.duration)
        self._revert(event)
        self._log(event, "revert", sim.now)

    def _stall(self, event: FaultEvent, node_id: int):
        sim = self.system.sim
        if event.at > 0:
            yield sim.timeout(event.at)
        channel = self.system.nodes[node_id].fpga_dram
        yield channel._lock.request()
        self._log(event, "apply", sim.now, node=node_id)
        try:
            yield sim.timeout(event.duration)
        finally:
            channel._lock.release()
        self._log(event, "revert", sim.now, node=node_id)

    def _fail_node(self, event: FaultEvent):
        sim = self.system.sim
        if event.at > 0:
            yield sim.timeout(event.at)
        self._log(event, "fail", sim.now, node=event.node)
        raise NodeFailureError(event.node, sim.now)

    # -- perturbation mechanics -----------------------------------------

    def _nodes_of(self, event: FaultEvent) -> range | tuple[int, ...]:
        return range(self.system.p) if event.node is None else (event.node,)

    def _targets(self, event: FaultEvent) -> list[tuple]:
        if event.kind == "link_slowdown":
            return [("net",)]
        return [(event.kind, i) for i in self._nodes_of(event)]

    def _apply(self, event: FaultEvent) -> None:
        for key in self._targets(event):
            self._factors.setdefault(key, []).append(event.factor)
            self._set(key)

    def _revert(self, event: FaultEvent) -> None:
        for key in self._targets(event):
            self._factors[key].remove(event.factor)
            self._set(key)

    def _set(self, key: tuple) -> None:
        """Recompute and write one target's value from its active factors."""
        system = self.system
        factors = self._factors.get(key) or []
        if key == ("net",):
            if key not in self._base:
                self._base[key] = system.network.spec.bandwidth
            value = self._scaled(key, factors)
            system.network.spec = dataclasses.replace(system.network.spec, bandwidth=value)
            return
        kind, i = key
        node = system.nodes[i]
        if kind == "fpga_throttle":
            fabric = node.fpga
            if not isinstance(fabric.design, _ThrottledDesign):
                fabric.design = _ThrottledDesign(fabric.design)
            if key not in self._base:
                self._base[key] = fabric.design.base_freq_hz
            fabric.design.freq_hz = self._scaled(key, factors)
        elif kind == "dram_contention":
            if node.fpga_dram is None:
                raise RuntimeError(
                    f"node {i}: FPGA not configured; install the injector "
                    "after configure_fpgas()"
                )
            if key not in self._base:
                self._base[key] = node.fpga_dram.bandwidth
            node.fpga_dram.bandwidth = self._scaled(key, factors)
        else:  # pragma: no cover - _targets only emits the keys above
            raise ValueError(f"unknown perturbation target {key!r}")

    def _scaled(self, key: tuple, factors: list[float]) -> float:
        value = self._base[key]
        for factor in factors:
            value *= factor
        return value

    # -- bookkeeping ----------------------------------------------------

    def _log(
        self, event: FaultEvent, phase: str, t: float, node: Optional[int] = None
    ) -> None:
        self.injected.append(
            {
                "t": t,
                "kind": event.kind,
                "phase": phase,
                "node": event.node if node is None else node,
                "factor": event.factor,
                "duration": event.duration,
            }
        )
        trace = self.system.sim.trace
        if trace is not None:
            trace.record(
                FAULT_LANE,
                f"{event.kind}:{phase}",
                t,
                t,
                factor=event.factor,
                node=event.node if node is None else node,
            )
