"""Resilience reporting over fault-run results and ledger manifests.

A :class:`ResilienceReport` normalises fault runs -- either raw
:meth:`~repro.faults.adapt.FaultRunResult.to_dict` dicts or ``fault_run``
ledger manifests (``LEDGER_SCHEMA = 3``) -- into one row per
(app, scenario, policy) and renders the per-scenario makespan inflation,
overlap-efficiency retention, recovery latency and model-term
attribution.  ``repro faults report`` and the ``obs dashboard``
resilience section both consume it.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Any, Iterable, Optional

from ..obs.ledger import RunLedger

__all__ = ["ResilienceReport", "resilience_rows"]


@dataclass
class _Row:
    """One normalised fault run."""

    app: str
    scenario: str
    policy: str
    failed: bool
    nominal_makespan: Optional[float]
    faulted_makespan: Optional[float]
    makespan_inflation: Optional[float]
    nominal_efficiency: Optional[float]
    faulted_efficiency: Optional[float]
    efficiency_retention: Optional[float]
    recovery_latency: Optional[float]
    term: Optional[str]
    gloss: str
    failure: Optional[dict[str, Any]]

    @property
    def status(self) -> str:
        return "ABORTED" if self.failed else "ok"

    def to_dict(self) -> dict[str, Any]:
        return {
            "app": self.app,
            "scenario": self.scenario,
            "policy": self.policy,
            "status": self.status,
            "nominal_makespan": self.nominal_makespan,
            "faulted_makespan": self.faulted_makespan,
            "makespan_inflation": self.makespan_inflation,
            "nominal_efficiency": self.nominal_efficiency,
            "faulted_efficiency": self.faulted_efficiency,
            "efficiency_retention": self.efficiency_retention,
            "recovery_latency": self.recovery_latency,
            "attributed_term": self.term,
            "attribution": self.gloss,
            "failure": self.failure,
        }


def _row(run: dict[str, Any]) -> _Row:
    """Normalise one run dict of either shape into a row.

    Ledger manifests nest measurements under ``nominal`` / ``measured``
    / ``resilience``; raw result dicts keep them flat.  The ``kind``
    key distinguishes them.
    """
    attribution = run.get("attribution") or {}
    scenario = run.get("scenario")
    scenario_name = scenario.get("name", "?") if isinstance(scenario, dict) else str(scenario)
    if run.get("kind") == "fault_run":
        nominal = run.get("nominal") or {}
        measured = run.get("measured") or {}
        resilience = run.get("resilience") or {}
        return _Row(
            app=run.get("app", "?"),
            scenario=scenario_name,
            policy=run.get("policy", "?"),
            failed=bool(resilience.get("failed")),
            nominal_makespan=nominal.get("makespan"),
            faulted_makespan=measured.get("makespan"),
            makespan_inflation=resilience.get("makespan_inflation"),
            nominal_efficiency=nominal.get("overlap_efficiency"),
            faulted_efficiency=measured.get("overlap_efficiency"),
            efficiency_retention=resilience.get("efficiency_retention"),
            recovery_latency=resilience.get("recovery_latency"),
            term=attribution.get("term"),
            gloss=attribution.get("gloss", ""),
            failure=resilience.get("failure"),
        )
    return _Row(
        app=run.get("app", "?"),
        scenario=scenario_name,
        policy=run.get("policy", "?"),
        failed=bool(run.get("failed")),
        nominal_makespan=run.get("nominal_makespan"),
        faulted_makespan=run.get("faulted_makespan"),
        makespan_inflation=run.get("makespan_inflation"),
        nominal_efficiency=run.get("nominal_efficiency"),
        faulted_efficiency=run.get("faulted_efficiency"),
        efficiency_retention=run.get("efficiency_retention"),
        recovery_latency=run.get("recovery_latency"),
        term=attribution.get("term"),
        gloss=attribution.get("gloss", ""),
        failure=run.get("failure"),
    )


def resilience_rows(runs: Iterable[dict[str, Any]]) -> list[dict[str, Any]]:
    """Normalised row dicts for arbitrary fault-run dicts (either shape)."""
    return [_row(run).to_dict() for run in runs]


def _fmt(value: Optional[float], pattern: str = "{:.3f}") -> str:
    return "-" if value is None else pattern.format(value)


class ResilienceReport:
    """Per-scenario resilience of the design under a fault campaign."""

    def __init__(self, runs: Iterable[dict[str, Any]]) -> None:
        self.rows = [_row(run) for run in runs]

    @classmethod
    def from_ledger(cls, path: str | Path) -> "ResilienceReport":
        """The latest run per (app, scenario, policy) from a ledger.

        Older entries for the same triple are superseded (the ledger is
        append-only); schema-2 ledgers simply contain no ``fault_run``
        entries and yield an empty report.
        """
        latest: dict[tuple, dict[str, Any]] = {}
        for entry in RunLedger(path).entries(kind="fault_run"):
            scenario = entry.get("scenario") or {}
            key = (entry.get("app"), scenario.get("name"), entry.get("policy"))
            latest[key] = entry
        return cls(latest.values())

    def __len__(self) -> int:
        return len(self.rows)

    def summary(self) -> dict[str, Any]:
        """Campaign-level aggregates (the ledger-free digest)."""
        retentions = [r.efficiency_retention for r in self.rows if r.efficiency_retention]
        inflations = [r.makespan_inflation for r in self.rows if r.makespan_inflation]
        return {
            "runs": len(self.rows),
            "aborted": sum(1 for r in self.rows if r.failed),
            "worst_retention": min(retentions) if retentions else None,
            "worst_inflation": max(inflations) if inflations else None,
        }

    def to_dict(self) -> dict[str, Any]:
        return {"rows": [r.to_dict() for r in self.rows], "summary": self.summary()}

    def render_ascii(self) -> str:
        """The report as a fixed-width table plus a summary line."""
        if not self.rows:
            return "no fault runs recorded"
        header = (
            "app",
            "scenario",
            "policy",
            "status",
            "inflation",
            "retention",
            "recovery",
            "attributed to",
        )
        body = []
        for r in sorted(self.rows, key=lambda r: (r.app, r.scenario, r.policy)):
            attributed = r.gloss or (r.term or "-")
            if r.failed and r.failure:
                attributed = (
                    f"aborted: {r.failure.get('process') or r.failure.get('stage') or '?'}"
                    f" @ t={_fmt(r.failure.get('time'), '{:.3f}')}"
                )
            body.append(
                (
                    r.app,
                    r.scenario,
                    r.policy,
                    r.status,
                    _fmt(r.makespan_inflation, "{:.3f}x"),
                    _fmt(r.efficiency_retention, "{:.1%}"),
                    _fmt(r.recovery_latency, "{:.3f}s"),
                    attributed,
                )
            )
        widths = [
            max(len(header[i]), *(len(row[i]) for row in body)) for i in range(len(header))
        ]
        lines = [
            "  ".join(header[i].ljust(widths[i]) for i in range(len(header))),
            "  ".join("-" * w for w in widths),
        ]
        lines += ["  ".join(row[i].ljust(widths[i]) for i in range(len(header))) for row in body]
        s = self.summary()
        lines.append("")
        lines.append(
            f"{s['runs']} run(s), {s['aborted']} aborted; "
            f"worst retention {_fmt(s['worst_retention'], '{:.1%}')}, "
            f"worst inflation {_fmt(s['worst_inflation'], '{:.3f}x')}"
        )
        return "\n".join(lines)
