"""Composable, serializable fault scenarios.

A :class:`FaultScenario` is a declarative description of everything that
goes wrong during a run: persistent or windowed service-rate
degradations (link slowdown, FPGA clock throttle, DRAM-bandwidth
contention), transient DMA stalls (explicit or drawn from a seeded
random burst), and node failures at a given simulated time.

Scenarios are *data*, not behaviour: they round-trip through JSON (the
parallel sweep engine uses the dict form as a cacheable task axis) and
they are deterministic -- :meth:`FaultScenario.expand` materialises the
stochastic bursts with ``random.Random(seed)``, so the same seed always
yields the bitwise-same concrete event timeline.  The DES side lives in
:mod:`repro.faults.inject`; the model side (re-solving the partition
equations against the degraded parameters) in :mod:`repro.faults.adapt`.

Machine-level degradations reuse the :mod:`repro.machine.scenarios`
transforms via :meth:`FaultScenario.degraded_spec`, so fault studies and
what-if studies share one vocabulary.
"""

from __future__ import annotations

import dataclasses
import inspect
import json
import random
from dataclasses import dataclass
from typing import Any, Callable, Optional

from ..machine.scenarios import (
    compose,
    with_fpga_dram_bandwidth,
    with_network_bandwidth,
    with_node_failure,
)
from ..machine.system import MachineSpec

__all__ = [
    "FAULT_KINDS",
    "RATE_KINDS",
    "FaultEvent",
    "StallBurst",
    "FaultScenario",
    "SCENARIO_BUILDERS",
    "build_scenario",
    "degraded_link",
    "fpga_clock_throttle",
    "dram_contention",
    "node_failure",
    "transient_dma_stalls",
    "brownout",
    "nominal",
]

#: Every fault kind the subsystem understands.
FAULT_KINDS = (
    "link_slowdown",
    "fpga_throttle",
    "dram_contention",
    "dma_stall",
    "node_failure",
)

#: Kinds that perturb a service *rate* by a multiplicative factor.
RATE_KINDS = ("link_slowdown", "fpga_throttle", "dram_contention")


@dataclass(frozen=True)
class FaultEvent:
    """One concrete fault: what, when, where, and how hard.

    ``factor`` multiplies the affected service rate (``< 1`` degrades,
    ``> 1`` is a what-if speedup) and only applies to :data:`RATE_KINDS`.
    ``duration=None`` means the fault persists to the end of the run.
    ``node=None`` targets every node (rate kinds and DMA stalls);
    ``link_slowdown`` always affects the shared crossbar and must not
    name a node.
    """

    kind: str
    at: float = 0.0
    duration: Optional[float] = None
    node: Optional[int] = None
    factor: float = 1.0

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r}; expected one of {FAULT_KINDS}")
        if self.at < 0:
            raise ValueError(f"fault time must be >= 0, got {self.at}")
        if self.duration is not None and self.duration <= 0:
            raise ValueError(f"fault duration must be positive, got {self.duration}")
        if self.kind in RATE_KINDS and self.factor <= 0:
            raise ValueError(f"rate factor must be positive, got {self.factor}")
        if self.kind == "link_slowdown" and self.node is not None:
            raise ValueError("link_slowdown affects the shared crossbar; node must be None")
        if self.kind == "dma_stall" and self.duration is None:
            raise ValueError("dma_stall needs a duration (the stall length)")
        if self.kind == "node_failure":
            if self.node is None:
                raise ValueError("node_failure needs a node id")
            if self.duration is not None:
                raise ValueError("node_failure is permanent; duration must be None")

    @property
    def steady(self) -> bool:
        """True for a rate fault that persists to the end of the run."""
        return self.kind in RATE_KINDS and self.duration is None

    def to_dict(self) -> dict[str, Any]:
        return {
            "kind": self.kind,
            "at": self.at,
            "duration": self.duration,
            "node": self.node,
            "factor": self.factor,
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "FaultEvent":
        return cls(
            kind=data["kind"],
            at=float(data.get("at", 0.0)),
            duration=None if data.get("duration") is None else float(data["duration"]),
            node=None if data.get("node") is None else int(data["node"]),
            factor=float(data.get("factor", 1.0)),
        )


@dataclass(frozen=True)
class StallBurst:
    """A seeded burst of transient DMA stalls.

    ``count`` stalls start uniformly in ``[start, start + window)``, each
    lasting an exponential draw with mean ``mean_duration``; the draws
    come from the scenario's seeded RNG, so the burst is deterministic.
    """

    count: int = 4
    start: float = 0.0
    window: float = 1.0
    mean_duration: float = 1e-3
    node: Optional[int] = None

    def __post_init__(self) -> None:
        if self.count < 1:
            raise ValueError(f"burst count must be >= 1, got {self.count}")
        if self.start < 0:
            raise ValueError(f"burst start must be >= 0, got {self.start}")
        if self.window <= 0:
            raise ValueError(f"burst window must be positive, got {self.window}")
        if self.mean_duration <= 0:
            raise ValueError(f"mean duration must be positive, got {self.mean_duration}")

    def to_dict(self) -> dict[str, Any]:
        return {
            "count": self.count,
            "start": self.start,
            "window": self.window,
            "mean_duration": self.mean_duration,
            "node": self.node,
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "StallBurst":
        return cls(
            count=int(data["count"]),
            start=float(data.get("start", 0.0)),
            window=float(data.get("window", 1.0)),
            mean_duration=float(data.get("mean_duration", 1e-3)),
            node=None if data.get("node") is None else int(data["node"]),
        )


@dataclass(frozen=True)
class FaultScenario:
    """A named, composable set of faults with a deterministic seed."""

    name: str
    events: tuple[FaultEvent, ...] = ()
    bursts: tuple[StallBurst, ...] = ()
    seed: int = 0

    def __post_init__(self) -> None:
        object.__setattr__(self, "events", tuple(self.events))
        object.__setattr__(self, "bursts", tuple(self.bursts))

    # -- composition ----------------------------------------------------

    def __add__(self, other: "FaultScenario") -> "FaultScenario":
        """Union of two scenarios; keeps the left seed, joins the names."""
        return FaultScenario(
            name=f"{self.name}+{other.name}",
            events=self.events + other.events,
            bursts=self.bursts + other.bursts,
            seed=self.seed,
        )

    # -- derived views --------------------------------------------------

    @property
    def has_faults(self) -> bool:
        return bool(self.events or self.bursts)

    def expand(self) -> tuple[FaultEvent, ...]:
        """The concrete event timeline, bursts materialised, time-sorted.

        All randomness flows through ``random.Random(self.seed)`` in a
        fixed draw order, so the same scenario expands to the bitwise
        same timeline on every call and every machine.
        """
        rng = random.Random(self.seed)
        out = list(self.events)
        for burst in self.bursts:
            for _ in range(burst.count):
                at = burst.start + rng.random() * burst.window
                duration = rng.expovariate(1.0 / burst.mean_duration)
                out.append(
                    FaultEvent(kind="dma_stall", at=at, duration=duration, node=burst.node)
                )
        out.sort(
            key=lambda e: (e.at, FAULT_KINDS.index(e.kind), -1 if e.node is None else e.node)
        )
        return tuple(out)

    def rate_factors(self) -> dict[str, float]:
        """Steady-state multiplicative factors for ``(b_n, f_f, b_d)``.

        Only persistent (``duration=None``) rate events count: they
        define the post-fault steady state the adaptive policies re-plan
        for.  Windowed events are transient and handled by the DES
        injector alone.
        """
        factors = {"b_n": 1.0, "f_f": 1.0, "b_d": 1.0}
        key = {"link_slowdown": "b_n", "fpga_throttle": "f_f", "dram_contention": "b_d"}
        for event in self.events:
            if event.steady:
                factors[key[event.kind]] *= event.factor
        return factors

    def failed_nodes(self) -> tuple[int, ...]:
        """Node ids lost to ``node_failure`` events, sorted."""
        return tuple(sorted({e.node for e in self.events if e.kind == "node_failure"}))

    def first_fault_time(self) -> Optional[float]:
        """Time of the earliest concrete fault, or None if fault-free."""
        timeline = self.expand()
        return min(e.at for e in timeline) if timeline else None

    def without_node_failures(self) -> "FaultScenario":
        """The same scenario minus its node failures (exclude-node runs)."""
        return dataclasses.replace(
            self, events=tuple(e for e in self.events if e.kind != "node_failure")
        )

    def degraded_spec(self, spec: MachineSpec) -> MachineSpec:
        """``spec`` after the steady-state degradations, via the
        :mod:`repro.machine.scenarios` transforms.

        Applies the persistent network slowdown, the persistent DRAM
        contention (as a scaled hardware FPGA<->DRAM link) and the node
        failures.  FPGA clock throttles are design-level (the clock
        lives on the loaded design, not the spec) and are handled by
        :mod:`repro.faults.adapt` on the derived parameters instead.
        """
        factors = self.rate_factors()
        transforms: list[Callable[[MachineSpec], MachineSpec]] = []
        if factors["b_n"] != 1.0:
            b_n = spec.network.bandwidth * factors["b_n"]
            transforms.append(lambda s, b=b_n: with_network_bandwidth(s, b))
        if factors["b_d"] != 1.0:
            link = spec.node.fpga.dram_link_bandwidth * factors["b_d"]
            transforms.append(lambda s, b=link: with_fpga_dram_bandwidth(s, b))
        for node_id in self.failed_nodes():
            transforms.append(lambda s, i=node_id: with_node_failure(s, i))
        return compose(*transforms)(spec)

    # -- serialization --------------------------------------------------

    def to_dict(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "seed": self.seed,
            "events": [e.to_dict() for e in self.events],
            "bursts": [b.to_dict() for b in self.bursts],
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "FaultScenario":
        return cls(
            name=str(data["name"]),
            events=tuple(FaultEvent.from_dict(e) for e in data.get("events", ())),
            bursts=tuple(StallBurst.from_dict(b) for b in data.get("bursts", ())),
            seed=int(data.get("seed", 0)),
        )

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "FaultScenario":
        return cls.from_dict(json.loads(text))


# ----------------------------------------------------------------- library


def nominal(seed: int = 0) -> FaultScenario:
    """The fault-free baseline scenario."""
    return FaultScenario(name="nominal", seed=seed)


def degraded_link(
    factor: float = 0.5,
    at: float = 0.0,
    duration: Optional[float] = None,
    seed: int = 0,
) -> FaultScenario:
    """Network links deliver ``factor`` of their nominal bandwidth."""
    return FaultScenario(
        name="degraded-link",
        events=(FaultEvent(kind="link_slowdown", at=at, duration=duration, factor=factor),),
        seed=seed,
    )


def fpga_clock_throttle(
    factor: float = 0.5,
    at: float = 0.0,
    duration: Optional[float] = None,
    node: Optional[int] = None,
    seed: int = 0,
) -> FaultScenario:
    """FPGA design clocks run at ``factor`` of their synthesised rate."""
    return FaultScenario(
        name="fpga-throttle",
        events=(
            FaultEvent(kind="fpga_throttle", at=at, duration=duration, node=node, factor=factor),
        ),
        seed=seed,
    )


def dram_contention(
    factor: float = 0.5,
    at: float = 0.0,
    duration: Optional[float] = None,
    node: Optional[int] = None,
    seed: int = 0,
) -> FaultScenario:
    """The FPGA<->DRAM streaming path sustains ``factor`` of ``B_d``."""
    return FaultScenario(
        name="dram-contention",
        events=(
            FaultEvent(kind="dram_contention", at=at, duration=duration, node=node, factor=factor),
        ),
        seed=seed,
    )


def node_failure(node: int = 1, at: float = 0.05, seed: int = 0) -> FaultScenario:
    """Node ``node`` dies at simulated time ``at`` and stays dead."""
    return FaultScenario(
        name="node-failure",
        events=(FaultEvent(kind="node_failure", at=at, node=node),),
        seed=seed,
    )


def transient_dma_stalls(
    count: int = 6,
    start: float = 0.0,
    window: float = 5.0,
    mean_duration: float = 2e-3,
    node: Optional[int] = None,
    seed: int = 0,
) -> FaultScenario:
    """A seeded burst of short DMA-engine stalls on the B_d channel."""
    return FaultScenario(
        name="flaky-dma",
        bursts=(
            StallBurst(
                count=count, start=start, window=window, mean_duration=mean_duration, node=node
            ),
        ),
        seed=seed,
    )


def brownout(
    link_factor: float = 0.5,
    dram_factor: float = 0.7,
    at: float = 0.0,
    seed: int = 0,
) -> FaultScenario:
    """Simultaneous persistent network and DRAM-path degradation."""
    return FaultScenario(
        name="brownout",
        events=(
            FaultEvent(kind="link_slowdown", at=at, factor=link_factor),
            FaultEvent(kind="dram_contention", at=at, factor=dram_factor),
        ),
        seed=seed,
    )


#: Named scenario builders (the CLI's ``--scenario`` vocabulary).
SCENARIO_BUILDERS: dict[str, Callable[..., FaultScenario]] = {
    "nominal": nominal,
    "degraded-link": degraded_link,
    "fpga-throttle": fpga_clock_throttle,
    "dram-contention": dram_contention,
    "node-failure": node_failure,
    "flaky-dma": transient_dma_stalls,
    "brownout": brownout,
}


def build_scenario(name: str, **kwargs: Any) -> FaultScenario:
    """Build a library scenario by name, passing only applicable kwargs.

    Callers (the CLI, sweeps) can supply a superset of knobs (``factor``,
    ``at``, ``duration``, ``node``, ``seed``, ...); each builder receives
    only the ones in its signature.
    """
    try:
        builder = SCENARIO_BUILDERS[name]
    except KeyError:
        raise ValueError(
            f"unknown scenario {name!r}; available: {sorted(SCENARIO_BUILDERS)}"
        ) from None
    accepted = set(inspect.signature(builder).parameters)
    return builder(**{k: v for k, v in kwargs.items() if k in accepted and v is not None})
