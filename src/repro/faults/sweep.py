"""Parallel, cacheable fault-scenario sweeps.

Fault grids -- the cross product of apps x scenarios x policies -- are
embarrassingly parallel and fully deterministic, so they ride the same
infrastructure as the experiment sweeps: tasks are canonical JSON-able
dicts, evaluated through a content-addressed
:class:`~repro.parallel.ResultCache` and fanned out by a
:class:`~repro.parallel.SweepExecutor`.  A scenario's serialized dict
(seed included) is part of the task payload, so a cache entry is keyed
by the exact fault timeline it simulated.
"""

from __future__ import annotations

from typing import Any, Iterable, Optional

from ..parallel import ResultCache, SweepExecutor, cache_from_env
from .adapt import run_with_faults
from .scenarios import FaultScenario

__all__ = ["fault_tasks", "fault_sweep", "run_fault_task"]


def fault_tasks(
    apps: Iterable[str],
    scenarios: Iterable[FaultScenario],
    policies: Iterable[str],
    *,
    preset: str = "xd1",
    sizes: Optional[dict[str, tuple[int, int]]] = None,
) -> list[dict[str, Any]]:
    """The task grid, one canonical picklable dict per fault run."""
    tasks = []
    for app in apps:
        for scenario in scenarios:
            for policy in policies:
                task = {
                    "kind": "fault_run",
                    "app": app,
                    "preset": preset,
                    "scenario": scenario.to_dict(),
                    "policy": policy,
                }
                if sizes and app in sizes:
                    task["n"], task["b"] = sizes[app]
                tasks.append(task)
    return tasks


def run_fault_task(task: dict) -> dict[str, Any]:
    """Evaluate one fault-run task; returns the result dict.

    Module-level (and task contents plain data) so the process-pool
    executor can ship tasks to workers.
    """
    return run_with_faults(
        task["app"],
        task["scenario"],
        task["policy"],
        preset=task["preset"],
        n=task.get("n"),
        b=task.get("b"),
    ).to_dict()


def fault_sweep(
    apps: Iterable[str],
    scenarios: Iterable[FaultScenario],
    policies: Iterable[str],
    *,
    preset: str = "xd1",
    sizes: Optional[dict[str, tuple[int, int]]] = None,
    jobs: Any = None,
    cache: Any = None,
) -> list[dict[str, Any]]:
    """Run the apps x scenarios x policies grid; returns result dicts.

    ``jobs`` is a worker count, ``"auto"``, or None (consults
    ``REPRO_PARALLEL``); ``cache`` is a :class:`ResultCache`, a
    directory path, True (default ``.repro_cache/``), False (off), or
    None (consults ``REPRO_CACHE``).  Results come back in task-grid
    order regardless of worker scheduling, so a sweep's output -- and
    any ledger written from it -- is deterministic.
    """
    tasks = fault_tasks(apps, scenarios, policies, preset=preset, sizes=sizes)
    if cache is None:
        cache = cache_from_env()
    elif cache is False:
        cache = None
    elif cache is True:
        cache = ResultCache()
    elif not isinstance(cache, ResultCache):
        cache = ResultCache(cache)
    executor = SweepExecutor(jobs)
    if cache is None:
        return executor.map(run_fault_task, tasks)
    values: list[Any] = [None] * len(tasks)
    misses: list[int] = []
    for i, task in enumerate(tasks):
        entry = cache.get(task)
        if entry is None:
            misses.append(i)
        else:
            values[i] = entry["value"]
    if misses:
        got = executor.map(run_fault_task, [tasks[i] for i in misses])
        for i, value in zip(misses, got):
            cache.put(tasks[i], value)
            values[i] = value
    return values
