"""FPGA hardware-design substrate.

Everything the paper gets from VHDL + Xilinx ISE, rebuilt as models:

* :mod:`repro.hw.devices` -- datasheet resources of the FPGAs in Section 3,
* :mod:`repro.hw.floating_point` -- the parameterised DP core library [8],
* :mod:`repro.hw.synthesis` -- area/frequency estimation ("how many PEs
  fit, at what clock?"),
* :mod:`repro.hw.pe_array` / :mod:`repro.hw.mm_design` -- the matrix
  multiplier array [21], cycle-level,
* :mod:`repro.hw.fw_design` -- the Floyd-Warshall array [18], cycle-level.
"""

from .devices import DEVICES, XC2VP50, FpgaDevice, get_device
from .floating_point import CORES, DP_ADDER, DP_COMPARATOR, DP_MULTIPLIER, FpCore
from .fw_design import FW_DESIGN_SPEC, FW_PE, FloydWarshallDesign, fwi_reference
from .mm_design import MM_DESIGN_SPEC, MM_PE, MatrixMultiplyDesign
from .pe_array import LinearPEArray, TileResult
from .pipeline import IssueRecord, PipelinedCore, min_interleave_for_full_rate
from .synthesis import (
    DesignSpec,
    PeSpec,
    SynthesisError,
    SynthesisReport,
    max_pes,
    synthesize,
)

__all__ = [
    "CORES",
    "DEVICES",
    "DP_ADDER",
    "DP_COMPARATOR",
    "DP_MULTIPLIER",
    "DesignSpec",
    "FW_DESIGN_SPEC",
    "FW_PE",
    "FloydWarshallDesign",
    "FpCore",
    "FpgaDevice",
    "LinearPEArray",
    "MM_DESIGN_SPEC",
    "MM_PE",
    "MatrixMultiplyDesign",
    "PeSpec",
    "PipelinedCore",
    "IssueRecord",
    "SynthesisError",
    "SynthesisReport",
    "TileResult",
    "XC2VP50",
    "fwi_reference",
    "get_device",
    "max_pes",
    "min_interleave_for_full_rate",
    "synthesize",
]
