"""FPGA device catalog.

Resource figures for the devices named in Section 3 of the paper.  Numbers
are the vendor datasheet values for slices, 18-Kbit block RAMs and 18x18
embedded multipliers (or DSP48s on Virtex-4); they are used by the
synthesis estimator (:mod:`repro.hw.synthesis`) to answer the question the
paper answers empirically: *how many processing elements fit on the chip,
and at what clock rate?*
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["FpgaDevice", "DEVICES", "XC2VP50", "get_device"]


@dataclass(frozen=True)
class FpgaDevice:
    """Static resources of an FPGA part.

    Attributes
    ----------
    name:
        Vendor part number, e.g. ``"XC2VP50"``.
    family:
        Device family, e.g. ``"Virtex-II Pro"``.
    slices:
        Number of logic slices.
    bram_kbits:
        Total block RAM, in kilobits.
    multipliers:
        Embedded 18x18 multiplier blocks (DSP48 slices on Virtex-4).
    """

    name: str
    family: str
    slices: int
    bram_kbits: int
    multipliers: int

    @property
    def bram_bytes(self) -> int:
        """Usable on-chip memory in bytes."""
        return self.bram_kbits * 1024 // 8

    def bram_words(self, word_bytes: int = 8) -> int:
        """On-chip memory capacity in ``word_bytes``-wide words."""
        return self.bram_bytes // word_bytes


# The FPGA on each Cray XD1 compute blade (the paper's implementation part).
XC2VP50 = FpgaDevice("XC2VP50", "Virtex-II Pro", slices=23_616, bram_kbits=4_176, multipliers=232)

DEVICES: dict[str, FpgaDevice] = {
    dev.name: dev
    for dev in [
        XC2VP50,
        # Larger Virtex-II Pro used by SRC MAP stations.
        FpgaDevice("XC2VP100", "Virtex-II Pro", slices=44_096, bram_kbits=7_992, multipliers=444),
        # Virtex-4 parts used by DRC modules (Cray XT3) and SGI RASC RC100.
        FpgaDevice("XC4VLX60", "Virtex-4", slices=26_624, bram_kbits=2_880, multipliers=64),
        FpgaDevice("XC4VLX160", "Virtex-4", slices=67_584, bram_kbits=5_184, multipliers=96),
        FpgaDevice("XC4VLX200", "Virtex-4", slices=89_088, bram_kbits=6_048, multipliers=96),
    ]
}


def get_device(name: str) -> FpgaDevice:
    """Look up a device by part number; raises ``KeyError`` with choices."""
    try:
        return DEVICES[name]
    except KeyError:
        raise KeyError(f"unknown FPGA device {name!r}; available: {sorted(DEVICES)}") from None
