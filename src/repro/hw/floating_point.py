"""Parameterised floating-point core library.

Models the IEEE-754 double-precision cores of Govindu, Scrofano & Prasanna
("A Library of Parameterizable Floating-Point Cores for FPGAs ...", ERSA
2005) that the paper's VHDL designs instantiate: pipelined adders,
multipliers and comparators.  Each core carries

* a resource footprint (slices, embedded multipliers),
* a pipeline depth, and
* a standalone maximum clock frequency,

which the synthesis estimator combines into per-design area/frequency
figures.  The footprints below are calibrated so that, exactly as the
paper reports, **at most k = 8 processing elements fit on the XC2VP50**
for both the matrix-multiply PE (adder + multiplier) and the
Floyd-Warshall PE (adder + comparator).
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["FpCore", "DP_ADDER", "DP_MULTIPLIER", "DP_COMPARATOR", "CORES", "core_latency"]


@dataclass(frozen=True)
class FpCore:
    """One pipelined floating-point operator.

    Attributes
    ----------
    name:
        Identifier, e.g. ``"dp_add"``.
    operation:
        ``"add"``, ``"mul"`` or ``"cmp"``.
    precision_bits:
        64 for the double-precision cores used throughout the paper.
    pipeline_stages:
        Latency in clock cycles from operand issue to result.
    slices:
        Logic slices consumed.
    multipliers:
        Embedded 18x18 multiplier blocks consumed.
    max_freq_hz:
        Standalone (place-and-route, unconstrained neighbours) clock rate.
    """

    name: str
    operation: str
    precision_bits: int
    pipeline_stages: int
    slices: int
    multipliers: int
    max_freq_hz: float

    @property
    def throughput_ops_per_cycle(self) -> float:
        """Fully pipelined cores accept one operation per cycle."""
        return 1.0

    def latency_seconds(self, freq_hz: float) -> float:
        """Pipeline fill time at a given design clock."""
        if freq_hz <= 0:
            raise ValueError(f"clock frequency must be positive, got {freq_hz}")
        return self.pipeline_stages / freq_hz


# Double-precision cores (64-bit, IEEE-754, deeply pipelined).
DP_ADDER = FpCore(
    "dp_add", "add", 64, pipeline_stages=12, slices=1_300, multipliers=0, max_freq_hz=180e6
)
DP_MULTIPLIER = FpCore(
    "dp_mul", "mul", 64, pipeline_stages=10, slices=1_100, multipliers=9, max_freq_hz=190e6
)
DP_COMPARATOR = FpCore(
    "dp_cmp", "cmp", 64, pipeline_stages=2, slices=350, multipliers=0, max_freq_hz=250e6
)

CORES: dict[str, FpCore] = {c.name: c for c in (DP_ADDER, DP_MULTIPLIER, DP_COMPARATOR)}


def core_latency(names: list[str], freq_hz: float) -> float:
    """Summed pipeline latency of a chain of cores at ``freq_hz``."""
    return sum(CORES[n].latency_seconds(freq_hz) for n in names)
