"""The FPGA Floyd-Warshall design (paper reference [18]).

Models the parallel FPGA all-pairs shortest-paths array of Bondhugula,
Devulapalli, Fernando, Wyckoff & Sadayappan (IPDPS 2006): ``k`` PEs, each
with one double-precision adder and one comparator, computing the
generalised blocked-FW kernel

    FWI(D, A, B):  for kk in 0..b-1:  D[i,j] = min(D[i,j], A[i,kk] + B[kk,j])

on a ``b x b`` tile in ``2 b^3 / k`` clock cycles.  Each PE owns the rows
``i = q (mod k)`` of the tile; an element update costs two cycles (one
through the adder, one through the comparator), giving an effective
throughput of ``k`` flops/cycle even though ``O_f = 2k`` operators exist
-- exactly the accounting the paper uses (Section 5.2.3).

On-chip (BRAM) requirement: ``2 k^2`` words.  Off-chip (SRAM) working set:
``2 b^2`` words.

As with the matrix multiplier, the class both *executes* the kernel
(cycle-counted, on real operands, for validation) and exposes the
closed-form latency used by the timing model.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from .devices import FpgaDevice, XC2VP50
from .floating_point import DP_ADDER, DP_COMPARATOR
from .synthesis import DesignSpec, PeSpec, SynthesisReport, max_pes, synthesize

__all__ = ["FW_PE", "FW_DESIGN_SPEC", "FloydWarshallDesign", "fwi_reference"]


#: One FW PE: a DP adder + DP comparator plus row-buffer/mux glue.
FW_PE = PeSpec(
    name="fw_pe",
    cores=(DP_ADDER, DP_COMPARATOR),
    glue_slices=950,  # pivot row/column buffers, min-select, stream routing
    bram_words=16,  # 2k words per PE at k=8 (the 2k^2 total below)
)

#: Full design; frequency coefficients calibrated so k=8 on XC2VP50
#: closes at 120 MHz, the paper's reported implementation point.
FW_DESIGN_SPEC = DesignSpec(
    name="floyd_warshall_array",
    pe=FW_PE,
    fixed_slices=1_800,
    fixed_bram_words=256,
    base_freq_hz=175e6,
    congestion_slope=0.328,
)


def fwi_reference(d: np.ndarray, a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Sequential reference of the generalised FW kernel (returns new array).

    ``d``, ``a`` and ``b`` may alias (op1: all three the same block); the
    pivot loop is sequential as the algorithm requires.
    """
    d = np.array(d, dtype=np.float64, copy=True)
    a = d if a is None else a
    b = d if b is None else b
    n = d.shape[0]
    for kk in range(n):
        np.minimum(d, a[:, kk : kk + 1] + b[kk : kk + 1, :], out=d)
    return d


@dataclass
class FloydWarshallDesign:
    """A synthesised instance of the FW array on a device."""

    k: int
    freq_hz: float
    device: FpgaDevice
    report: Optional[SynthesisReport] = None

    @classmethod
    def for_device(cls, device: FpgaDevice = XC2VP50, k: Optional[int] = None) -> "FloydWarshallDesign":
        """Synthesise for ``device``; ``k`` defaults to the max that fits."""
        if k is None:
            k = max_pes(FW_DESIGN_SPEC, device)
        report = synthesize(FW_DESIGN_SPEC, device, k)
        return cls(k=k, freq_hz=report.freq_hz, device=device, report=report)

    def __post_init__(self) -> None:
        if self.k < 1:
            raise ValueError(f"k must be >= 1, got {self.k}")
        if self.freq_hz <= 0:
            raise ValueError(f"freq must be positive, got {self.freq_hz}")
        self.total_cycles = 0
        self.total_flops = 0

    # -- design-model parameters -------------------------------------------

    @property
    def ops_per_cycle(self) -> int:
        """O_f: operators available per cycle (adders + comparators)."""
        return 2 * self.k

    @property
    def effective_flops(self) -> float:
        """Sustained rate: 2b^3 ops in 2b^3/k cycles = k * F_f flops/s."""
        return self.k * self.freq_hz

    @property
    def dram_bandwidth(self) -> float:
        """B_d: one 8-byte word per cycle from DRAM."""
        return 8.0 * self.freq_hz

    # -- latency and storage formulas (Section 5.2.3) -------------------------

    def tile_cycles(self, b: int) -> int:
        """Latency of FWI on a b x b tile: ``2 b^3 / k`` cycles."""
        self._check_tile(b)
        return 2 * b**3 // self.k

    def tile_time(self, b: int) -> float:
        """T_f of the paper: ``2 b^3 / (k F_f)`` seconds."""
        return self.tile_cycles(b) / self.freq_hz

    def bram_words_required(self) -> int:
        """On-chip memory: ``2 k^2`` words."""
        return 2 * self.k * self.k

    def sram_words_required(self, b: int) -> int:
        """On-board memory: ``2 b^2`` words."""
        self._check_tile(b)
        return 2 * b * b

    def fits(self, b: int, sram_bytes: int, word_bytes: int = 8) -> bool:
        """Can a b x b tile be staged in the node's allocated SRAM?"""
        return self.sram_words_required(b) * word_bytes <= sram_bytes

    def _check_tile(self, b: int) -> None:
        if b < 1 or b % self.k:
            raise ValueError(f"tile size b={b} must be a positive multiple of k={self.k}")

    # -- behavioural execution ----------------------------------------------

    def run_tile(
        self,
        d: np.ndarray,
        a: Optional[np.ndarray] = None,
        b: Optional[np.ndarray] = None,
    ) -> tuple[np.ndarray, int]:
        """Execute FWI(D, A, B) cycle-by-cycle; returns (result, cycles).

        ``a``/``b`` default to ``d`` (the op1 case).  PE ``q`` owns rows
        ``q, q+k, q+2k, ...``; per pivot, each PE walks its rows
        element-by-element, two cycles per element (add, then compare).
        """
        d = np.array(d, dtype=np.float64, copy=True)
        a_blk = d if a is None else np.asarray(a, dtype=np.float64)
        b_blk = d if b is None else np.asarray(b, dtype=np.float64)
        n = d.shape[0]
        self._check_tile(n)
        if a_blk.shape != (n, n) or b_blk.shape != (n, n):
            raise ValueError("A and B blocks must match D's shape")
        k = self.k
        cycles = 0
        for kk in range(n):
            # Pivot row of B and pivot column of A are loop invariants for
            # this kk (their own updates are fixed points when the diagonal
            # is non-negative -- the standard blocked-FW property).
            for r in range(n // k):
                rows = slice(r * k, (r + 1) * k)  # one row per PE
                for j in range(n):
                    # One element update per PE: 2 cycles (add, compare).
                    cand = a_blk[rows, kk] + b_blk[kk, j]
                    d[rows, j] = np.minimum(d[rows, j], cand)
                    cycles += 2
        flops = 2 * n**3
        self.total_cycles += cycles
        self.total_flops += flops
        return d, cycles
