"""The FPGA matrix-multiplier design (paper reference [21]).

Combines the cycle-level :class:`~repro.hw.pe_array.LinearPEArray` with
the synthesis estimate for a device into a deployable "bitstream" object
that the machine model loads onto a node's FPGA.  Exposes exactly the
quantities the paper's design model needs:

* ``O_f`` -- floating-point operations per cycle (= 2k),
* ``F_f`` -- the design clock from synthesis (130 MHz at k=8 on XC2VP50),
* stripe/block latencies (Section 5.1.3 formulas),
* SRAM working-set requirements (``b_f * b / (p-1)`` words).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from .devices import FpgaDevice, XC2VP50
from .floating_point import DP_ADDER, DP_MULTIPLIER
from .pe_array import LinearPEArray, TileResult
from .synthesis import DesignSpec, PeSpec, SynthesisReport, max_pes, synthesize

__all__ = ["MM_PE", "MM_DESIGN_SPEC", "MatrixMultiplyDesign"]


#: One matrix-multiply PE: a DP adder + DP multiplier + accumulation glue.
MM_PE = PeSpec(
    name="mm_pe",
    cores=(DP_ADDER, DP_MULTIPLIER),
    glue_slices=300,
    bram_words=64,  # double-buffered k-wide column/accumulator storage
)

#: Full design: PE array + RapidArray transport interface + SRAM controller.
#: Frequency-model coefficients are calibrated so k=8 on XC2VP50 closes at
#: 130 MHz, the paper's reported implementation point.
MM_DESIGN_SPEC = DesignSpec(
    name="matmul_array",
    pe=MM_PE,
    fixed_slices=1_500,
    fixed_bram_words=512,
    base_freq_hz=175e6,
    congestion_slope=0.263,
)


@dataclass
class MatrixMultiplyDesign:
    """A synthesised instance of the matrix-multiplier on a device."""

    k: int
    freq_hz: float
    device: FpgaDevice
    report: Optional[SynthesisReport] = None

    # -- constructors ------------------------------------------------------

    @classmethod
    def for_device(cls, device: FpgaDevice = XC2VP50, k: Optional[int] = None) -> "MatrixMultiplyDesign":
        """Synthesise for ``device``; ``k`` defaults to the max that fits."""
        if k is None:
            k = max_pes(MM_DESIGN_SPEC, device)
        report = synthesize(MM_DESIGN_SPEC, device, k)
        return cls(k=k, freq_hz=report.freq_hz, device=device, report=report)

    def __post_init__(self) -> None:
        if self.k < 1:
            raise ValueError(f"k must be >= 1, got {self.k}")
        if self.freq_hz <= 0:
            raise ValueError(f"freq must be positive, got {self.freq_hz}")
        self._array = LinearPEArray(self.k)

    # -- design-model parameters -------------------------------------------

    @property
    def ops_per_cycle(self) -> int:
        """O_f of the paper: 2 flops per PE per cycle."""
        return 2 * self.k

    @property
    def peak_flops(self) -> float:
        """O_f * F_f -- the FPGA computing power for this application."""
        return self.ops_per_cycle * self.freq_hz

    @property
    def dram_bandwidth(self) -> float:
        """B_d: the design fetches one 8-byte word from DRAM per cycle."""
        return 8.0 * self.freq_hz

    # -- latency formulas (Section 5.1.3) ------------------------------------

    def stripe_time(self, b_f: int, b: int, p: int) -> float:
        """T_f for one stripe: multiply ``b_f x k`` by ``k x b/(p-1)``.

        Equals ``b_f * b / ((p-1) * F_f)`` seconds.
        """
        self._check_stripe(b_f, b, p)
        return self._array.stripe_cycles(b_f, b // (p - 1)) / self.freq_hz

    def block_time(self, b_f: int, b: int, p: int) -> float:
        """FPGA share of one full b x b opMM: ``b/k`` stripes."""
        self._check_stripe(b_f, b, p)
        return (b // self.k) * self.stripe_time(b_f, b, p)

    def sram_words_required(self, b_f: int, b: int, p: int) -> int:
        """Intermediate-result storage: ``b_f * b / (p-1)`` words."""
        self._check_stripe(b_f, b, p)
        return b_f * b // (p - 1)

    def _check_stripe(self, b_f: int, b: int, p: int) -> None:
        if p < 2:
            raise ValueError(f"need at least 2 nodes, got p={p}")
        if b % (p - 1):
            raise ValueError(f"b={b} must be divisible by p-1={p - 1}")
        if b_f % self.k or b % self.k:
            raise ValueError(f"b_f={b_f} and b={b} must be multiples of k={self.k}")
        if (b // (p - 1)) % self.k:
            raise ValueError(f"b/(p-1)={b // (p - 1)} must be a multiple of k={self.k}")
        if not 0 <= b_f <= b:
            raise ValueError(f"b_f={b_f} out of range [0, {b}]")

    # -- behavioural execution ----------------------------------------------

    def execute_stripe(self, c_stripe: np.ndarray, d_stripe: np.ndarray) -> TileResult:
        """Run a stripe product on the cycle-level array (for validation)."""
        return self._array.multiply(c_stripe, d_stripe)

    @property
    def array(self) -> LinearPEArray:
        return self._array
