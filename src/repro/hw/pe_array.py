"""Cycle-level behavioural model of the linear PE array for matrix multiply.

This models the FPGA matrix multiplier of Zhuo & Prasanna, "Scalable and
Modular Algorithms for Floating-Point Matrix Multiplication on FPGAs"
(IPDPS 2004) -- reference [21] of the paper -- at the level of abstraction
the paper uses for timing: a linear array of ``k`` processing elements,
each containing one pipelined double-precision adder and one multiplier,
that computes a k x k submatrix product with an **effective latency of
k^2 clock cycles** (2k floating-point operations per cycle).

Unlike a closed-form formula, :class:`LinearPEArray` actually *executes*
the dataflow cycle by cycle on real operands, so tests can check both the
numerics (against numpy) and the cycle count (against the paper's
formula).  One simulated cycle performs exactly one multiply-accumulate
per PE, mirroring the hardware:

* PE ``j`` holds column ``j`` of the current ``B`` tile in its local BRAM;
* elements of ``A`` stream through the array row-major, one per cycle;
* when ``a[i, l]`` passes PE ``j``, the PE issues ``acc[i, j] += a[i, l]
  * B[l, j]`` into its MAC pipeline.

Pipeline fill/drain is not modelled per tile; the paper folds it into the
"effective latency" of k^2 cycles, and we follow that convention (it is
amortised away for the stripe sizes used in the designs).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["LinearPEArray", "TileResult"]


@dataclass
class TileResult:
    """Outcome of one array-level operation."""

    product: np.ndarray
    cycles: int
    flops: int


@dataclass
class LinearPEArray:
    """A linear array of ``k`` MAC processing elements.

    Parameters
    ----------
    k:
        Number of processing elements (columns computed in parallel).

    Attributes
    ----------
    total_cycles / total_flops:
        Accumulated over the array's lifetime, for utilisation accounting.
    """

    k: int
    total_cycles: int = field(default=0, init=False)
    total_flops: int = field(default=0, init=False)

    def __post_init__(self) -> None:
        if self.k < 1:
            raise ValueError(f"PE count must be >= 1, got {self.k}")

    # -- single k x k tile ------------------------------------------------

    def run_tile(self, a: np.ndarray, b: np.ndarray) -> TileResult:
        """Compute one ``k x k`` by ``k x k`` product, cycle by cycle.

        Returns the product and the cycle count (always ``k**2``).
        """
        k = self.k
        a = np.asarray(a, dtype=np.float64)
        b = np.asarray(b, dtype=np.float64)
        if a.shape != (k, k) or b.shape != (k, k):
            raise ValueError(f"tile shapes must be ({k},{k}); got {a.shape} x {b.shape}")
        # PE j's local store: column j of b.  acc[i, j] built up over cycles.
        acc = np.zeros((k, k), dtype=np.float64)
        cycles = 0
        for i in range(k):  # stream a row-major, one element per cycle
            for l in range(k):
                # One cycle: every PE j performs acc[i,j] += a[i,l]*b[l,j].
                acc[i, :] += a[i, l] * b[l, :]
                cycles += 1
        flops = 2 * k * cycles  # one MAC (2 flops) per PE per cycle
        self.total_cycles += cycles
        self.total_flops += flops
        return TileResult(acc, cycles, flops)

    # -- stripe-level product ---------------------------------------------

    def multiply(self, c_stripe: np.ndarray, d_stripe: np.ndarray) -> TileResult:
        """Multiply a column stripe ``C (s x k)`` by a row stripe ``D (k x s')``.

        This is the unit of work the LU design issues to the FPGA: the
        rank-k update of an ``s x s'`` block of E.  ``s`` and ``s'`` must
        be multiples of ``k``.  Total cycles are ``s * s'``, matching the
        paper's ``T_f = b_f * b / ((p-1) * F_f)`` with ``s = b_f`` and
        ``s' = b/(p-1)``.
        """
        k = self.k
        c_stripe = np.asarray(c_stripe, dtype=np.float64)
        d_stripe = np.asarray(d_stripe, dtype=np.float64)
        s, kc = c_stripe.shape
        kd, sp = d_stripe.shape
        if kc != k or kd != k:
            raise ValueError(f"stripes must be (s x {k}) and ({k} x s'); got {c_stripe.shape} x {d_stripe.shape}")
        if s % k or sp % k:
            raise ValueError(f"stripe extents ({s}, {sp}) must be multiples of k={k}")
        out = np.zeros((s, sp), dtype=np.float64)
        cycles = 0
        flops = 0
        for ti in range(s // k):
            rows = slice(ti * k, (ti + 1) * k)
            for tj in range(sp // k):
                cols = slice(tj * k, (tj + 1) * k)
                tile = self.run_tile(c_stripe[rows, :], d_stripe[:, cols])
                out[rows, cols] = tile.product
                cycles += tile.cycles
                flops += tile.flops
        return TileResult(out, cycles, flops)

    # -- closed forms (used by the timing model; verified against the
    #    behavioural path in the test suite) -------------------------------

    def tile_cycles(self) -> int:
        """Effective latency of one k x k submatrix multiply."""
        return self.k * self.k

    def stripe_cycles(self, s: int, sp: int) -> int:
        """Cycles for an (s x k) by (k x s') stripe product."""
        if s % self.k or sp % self.k:
            raise ValueError(f"({s}, {sp}) must be multiples of k={self.k}")
        return s * sp

    @property
    def ops_per_cycle(self) -> int:
        """O_f: floating-point operations per cycle (2 per PE)."""
        return 2 * self.k
