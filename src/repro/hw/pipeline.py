"""Pipelined floating-point core scheduling (why k^2 cycles works).

The deep pipelines of the double-precision cores (the adder has ~12
stages) create a read-after-write hazard for *accumulation*: ``acc +=
x`` cannot issue until the previous addition into ``acc`` has left the
pipeline.  A naive dot product therefore runs one add per ``alpha``
cycles (``alpha`` = adder depth), wasting the pipeline.

The Zhuo-Prasanna matrix-multiply PE sidesteps this by interleaving
**independent** accumulations: while computing a k x k tile, each PE
rotates through k different C-elements, so consecutive adds target
different accumulators and the pipeline stays full whenever ``k >=
alpha`` -- one of the design's reasons for wanting large k (and for k=8
with an ~12-stage adder, the design instead interleaves along the
second tile dimension, which the k^2-cycle tile schedule provides: k^2
= 64 >= alpha independent slots).

:class:`PipelinedCore` simulates issue scheduling with hazards so these
claims are checkable, and :func:`min_interleave_for_full_rate` gives
the closed form the tests compare against.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from .floating_point import FpCore

__all__ = ["IssueRecord", "PipelinedCore", "min_interleave_for_full_rate"]


@dataclass(frozen=True)
class IssueRecord:
    """One operation's passage through the core."""

    op_index: int
    accumulator: int
    issue_cycle: int
    result_cycle: int


class PipelinedCore:
    """Cycle scheduler for one fully-pipelined FP core with RAW hazards.

    Operations are (accumulator-id) tags issued in order, one per cycle
    at most; an operation targeting accumulator ``a`` cannot issue until
    the previous operation on ``a`` has produced its result (depth
    cycles after its own issue).
    """

    def __init__(self, core: FpCore) -> None:
        self.core = core
        self.depth = core.pipeline_stages

    def schedule(self, accumulators: Sequence[int]) -> list[IssueRecord]:
        """Issue the operation stream; returns per-op timing records."""
        ready_at: dict[int, int] = {}
        records: list[IssueRecord] = []
        cycle = 0
        for idx, acc in enumerate(accumulators):
            issue = max(cycle, ready_at.get(acc, 0))
            result = issue + self.depth
            ready_at[acc] = result
            records.append(IssueRecord(idx, acc, issue, result))
            cycle = issue + 1
        return records

    def total_cycles(self, accumulators: Sequence[int]) -> int:
        """Cycles until the last result emerges."""
        records = self.schedule(accumulators)
        return records[-1].result_cycle if records else 0

    def throughput(self, accumulators: Sequence[int]) -> float:
        """Sustained ops per cycle over the stream (excluding drain)."""
        records = self.schedule(accumulators)
        if not records:
            return 0.0
        span = records[-1].issue_cycle + 1
        return len(records) / span


def min_interleave_for_full_rate(core: FpCore) -> int:
    """Independent accumulators needed for one add per cycle.

    Rotating through ``m`` accumulators re-touches each every ``m``
    cycles; the hazard clears when ``m >= depth``.
    """
    return core.pipeline_stages
