"""Synthesis / place-and-route estimator.

Answers, from datasheet resources and core footprints, the two questions
the paper answers by running Xilinx ISE:

1. *How many processing elements (k) fit on a device?*  (Paper: k = 8 on
   the XC2VP50 for both designs.)
2. *What clock frequency does the routed design achieve?*  (Paper:
   130 MHz for the matrix multiplier, 120 MHz for the Floyd-Warshall
   array.)

The area model is linear: ``fixed overhead + k * per-PE cost``, where the
fixed overhead covers the RapidArray transport interface, SRAM
controllers and control FSM.  The frequency model derates each design's
base clock linearly with slice utilisation -- the standard congestion
effect -- with per-design coefficients calibrated against the paper's two
reported implementation points (see DESIGN.md section 2).
"""

from __future__ import annotations

from dataclasses import dataclass

from .devices import FpgaDevice
from .floating_point import FpCore

__all__ = ["PeSpec", "DesignSpec", "SynthesisReport", "SynthesisError", "synthesize", "max_pes"]


class SynthesisError(ValueError):
    """The requested configuration does not fit on the device."""


@dataclass(frozen=True)
class PeSpec:
    """Resource cost of one processing element."""

    name: str
    cores: tuple[FpCore, ...]
    glue_slices: int = 300  # registers, muxes, local control per PE
    bram_words: int = 0  # on-chip storage per PE (64-bit words)

    @property
    def slices(self) -> int:
        return self.glue_slices + sum(c.slices for c in self.cores)

    @property
    def multipliers(self) -> int:
        return sum(c.multipliers for c in self.cores)

    @property
    def max_freq_hz(self) -> float:
        """A PE can clock no faster than its slowest core."""
        return min(c.max_freq_hz for c in self.cores)


@dataclass(frozen=True)
class DesignSpec:
    """A full FPGA design: a linear array of ``PeSpec`` PEs plus overhead.

    ``base_freq_hz`` and ``congestion_slope`` parameterise the frequency
    derating model ``f = base * (1 - slope * slice_utilisation)``.
    """

    name: str
    pe: PeSpec
    fixed_slices: int
    fixed_bram_words: int
    base_freq_hz: float
    congestion_slope: float

    def slices_for(self, k: int) -> int:
        return self.fixed_slices + k * self.pe.slices

    def multipliers_for(self, k: int) -> int:
        return k * self.pe.multipliers

    def bram_words_for(self, k: int) -> int:
        return self.fixed_bram_words + k * self.pe.bram_words


@dataclass(frozen=True)
class SynthesisReport:
    """Outcome of estimating a design at a given k on a given device."""

    design: str
    device: str
    k: int
    slices_used: int
    slices_available: int
    multipliers_used: int
    bram_words_used: int
    freq_hz: float

    @property
    def slice_utilisation(self) -> float:
        return self.slices_used / self.slices_available

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"{self.design} on {self.device}: k={self.k}, "
            f"{self.slices_used}/{self.slices_available} slices "
            f"({100 * self.slice_utilisation:.1f}%), {self.freq_hz / 1e6:.0f} MHz"
        )


def synthesize(design: DesignSpec, device: FpgaDevice, k: int) -> SynthesisReport:
    """Estimate area and clock of ``design`` with ``k`` PEs on ``device``.

    Raises :class:`SynthesisError` if any resource is exhausted.
    """
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    slices = design.slices_for(k)
    mults = design.multipliers_for(k)
    bram = design.bram_words_for(k)
    if slices > device.slices:
        raise SynthesisError(
            f"{design.name} with k={k} needs {slices} slices; {device.name} has {device.slices}"
        )
    if mults > device.multipliers:
        raise SynthesisError(
            f"{design.name} with k={k} needs {mults} multipliers; "
            f"{device.name} has {device.multipliers}"
        )
    if bram > device.bram_words():
        raise SynthesisError(
            f"{design.name} with k={k} needs {bram} BRAM words; "
            f"{device.name} has {device.bram_words()}"
        )
    utilisation = slices / device.slices
    freq = design.base_freq_hz * (1.0 - design.congestion_slope * utilisation)
    freq = min(freq, design.pe.max_freq_hz)
    # Round to the nearest MHz, as a timing constraint would be written.
    freq = round(freq / 1e6) * 1e6
    return SynthesisReport(
        design=design.name,
        device=device.name,
        k=k,
        slices_used=slices,
        slices_available=device.slices,
        multipliers_used=mults,
        bram_words_used=bram,
        freq_hz=freq,
    )


def max_pes(design: DesignSpec, device: FpgaDevice) -> int:
    """Largest k for which the design fits on the device."""
    k = 0
    while True:
        try:
            synthesize(design, device, k + 1)
        except SynthesisError:
            break
        k += 1
        if k > 4096:  # pragma: no cover - guard against bad specs
            raise SynthesisError(f"runaway PE count for {design.name} on {device.name}")
    if k == 0:
        raise SynthesisError(f"{design.name} does not fit on {device.name} even with k=1")
    return k
