"""Functional numerics substrate: the algorithms the designs schedule.

Sequential references for block LU (Section 5.1.1) and blocked
Floyd-Warshall (Section 5.2.1), the BLAS-style kernels they are built
from, flop-count conventions, and validation helpers.
"""

from .blas import gemm, getrf_nopiv, split_lu, trsm_lower_left_unit, trsm_upper_right
from .floyd_warshall import (
    BlockedFwResult,
    blocked_floyd_warshall,
    floyd_warshall_simple,
    fwi,
)
from .graphs import grid_graph, hub_and_spoke, layered_dag, ring_of_cliques
from .flops import (
    fw_block_flops,
    fw_total_flops,
    gemm_flops,
    getrf_flops,
    lu_total_flops,
    trsm_flops,
)
from .lu import BlockLuResult, block_lu, lu_nopiv
from .validation import (
    lu_residual,
    max_abs_diff,
    random_dd_matrix,
    random_distance_matrix,
    scipy_shortest_paths,
)

__all__ = [
    "BlockLuResult",
    "BlockedFwResult",
    "block_lu",
    "blocked_floyd_warshall",
    "floyd_warshall_simple",
    "fw_block_flops",
    "fw_total_flops",
    "fwi",
    "gemm",
    "gemm_flops",
    "grid_graph",
    "hub_and_spoke",
    "layered_dag",
    "ring_of_cliques",
    "getrf_flops",
    "getrf_nopiv",
    "lu_nopiv",
    "lu_residual",
    "lu_total_flops",
    "max_abs_diff",
    "random_dd_matrix",
    "random_distance_matrix",
    "scipy_shortest_paths",
    "split_lu",
    "trsm_flops",
    "trsm_lower_left_unit",
    "trsm_upper_right",
]
