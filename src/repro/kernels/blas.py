"""Dense linear-algebra kernels (the ACML-routine substitutes).

Functional equivalents of the routines the paper's C program calls --
``dgemm``, ``dgetrf`` (no pivoting) and ``dtrsm`` -- implemented with
NumPy.  The triangular solves are written as explicit block-forward/
backward substitutions rather than generic ``scipy.linalg.solve`` calls
so that their operation order matches what the LU task graph assumes
(and so they work on the exact task shapes opL/opU produce).

All functions are pure (inputs never mutated) unless named ``*_inplace``.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "gemm",
    "getrf_nopiv",
    "split_lu",
    "trsm_lower_left_unit",
    "trsm_upper_right",
]


def gemm(a: np.ndarray, b: np.ndarray, c: np.ndarray | None = None, alpha: float = 1.0, beta: float = 1.0) -> np.ndarray:
    """C = alpha * A @ B + beta * C (C optional); the dgemm substitute."""
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    if a.ndim != 2 or b.ndim != 2 or a.shape[1] != b.shape[0]:
        raise ValueError(f"incompatible gemm shapes {a.shape} x {b.shape}")
    # One allocation: matmul writes straight into the output block, then
    # alpha/beta are applied in place (no alpha*(a@b) or beta*c temporaries
    # in the common alpha = beta = 1 case).
    out = np.empty((a.shape[0], b.shape[1]), dtype=np.float64)
    np.matmul(a, b, out=out)
    if alpha != 1.0:
        out *= alpha
    if c is None:
        return out
    c = np.asarray(c, dtype=np.float64)
    if c.shape != out.shape:
        raise ValueError(f"C shape {c.shape} does not match product {out.shape}")
    if beta == 1.0:
        out += c
    else:
        out += beta * c
    return out


def getrf_nopiv(a: np.ndarray) -> np.ndarray:
    """LU factorisation without pivoting; returns packed LU.

    The unit-lower factor L is stored below the diagonal (implicit unit
    diagonal) and U on and above it, LAPACK style.  The input must be
    square and is assumed nonsingular without pivoting -- the paper's
    standing assumption (Section 5.1).  A zero (or numerically tiny)
    pivot raises ``ZeroDivisionError``.
    """
    a = np.array(a, dtype=np.float64, copy=True)
    n, m = a.shape
    if n != m:
        raise ValueError(f"getrf requires a square matrix, got {a.shape}")
    tiny = np.finfo(np.float64).tiny
    for j in range(n - 1):
        pivot = a[j, j]
        if abs(pivot) <= tiny:
            raise ZeroDivisionError(
                f"zero pivot at column {j}: matrix requires pivoting, "
                "which the paper's designs (and this kernel) do not perform"
            )
        a[j + 1 :, j] /= pivot
        a[j + 1 :, j + 1 :] -= np.outer(a[j + 1 :, j], a[j, j + 1 :])
    return a


def split_lu(lu: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Unpack a packed LU into explicit (L, U) with unit diagonal on L."""
    lu = np.asarray(lu, dtype=np.float64)
    n, m = lu.shape
    if n != m:
        raise ValueError(f"packed LU must be square, got {lu.shape}")
    lower = np.tril(lu, k=-1) + np.eye(n)
    upper = np.triu(lu)
    return lower, upper


def trsm_lower_left_unit(lower: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Solve ``L X = B`` with L unit lower triangular (the opU routine).

    Computes ``X = L^{-1} B`` by forward substitution; this is how step 2
    of the block LU algorithm forms ``U_01 = (L_00)^{-1} A_01``.
    """
    lower = np.asarray(lower, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    n = lower.shape[0]
    if lower.shape != (n, n) or b.shape[0] != n:
        raise ValueError(f"incompatible trsm shapes {lower.shape}, {b.shape}")
    x = np.array(b, copy=True)
    for i in range(1, n):
        x[i, :] -= lower[i, :i] @ x[:i, :]
    return x


def trsm_upper_right(upper: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Solve ``X U = B`` with U upper triangular (the opL routine).

    Computes ``X = B U^{-1}`` by column-forward substitution; this is how
    step 1 forms ``L_10 = A_10 (U_00)^{-1}``.
    """
    upper = np.asarray(upper, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    n = upper.shape[0]
    if upper.shape != (n, n) or b.shape[1] != n:
        raise ValueError(f"incompatible trsm shapes {upper.shape}, {b.shape}")
    tiny = np.finfo(np.float64).tiny
    x = np.array(b, copy=True)
    for j in range(n):
        if abs(upper[j, j]) <= tiny:
            raise ZeroDivisionError(f"singular U at column {j}")
        x[:, j] = (x[:, j] - x[:, :j] @ upper[:j, j]) / upper[j, j]
    return x
