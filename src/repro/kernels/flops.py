"""Floating-point operation counts for the kernels in the paper.

These are the counts the paper's GFLOPS figures are computed against
(leading-order terms, the LAPACK/ScaLAPACK convention):

* gemm (m,n,k): ``2 m n k``
* getrf (n x n, no pivoting): ``(2/3) n^3``
* trsm (n x n triangular, n x m right-hand side): ``n^2 m``
* LU of an n x n matrix: ``(2/3) n^3``
* Floyd-Warshall on n vertices: ``2 n^3`` (one add + one compare per
  inner iteration -- the paper counts comparisons as flops, Sec 5.2.3)
"""

from __future__ import annotations

__all__ = [
    "gemm_flops",
    "getrf_flops",
    "trsm_flops",
    "lu_total_flops",
    "fw_total_flops",
    "fw_block_flops",
]


def _check_positive(**kwargs: int) -> None:
    for name, value in kwargs.items():
        if value < 0:
            raise ValueError(f"{name} must be non-negative, got {value}")


def gemm_flops(m: int, n: int, k: int) -> float:
    """Multiply-add count of C (m x n) += A (m x k) @ B (k x n)."""
    _check_positive(m=m, n=n, k=k)
    return 2.0 * m * n * k


def getrf_flops(n: int) -> float:
    """LU factorisation of an n x n block without pivoting."""
    _check_positive(n=n)
    return (2.0 / 3.0) * n**3


def trsm_flops(n: int, m: int) -> float:
    """Triangular solve with an n x n factor and an n x m RHS."""
    _check_positive(n=n, m=m)
    return float(n) * n * m


def lu_total_flops(n: int) -> float:
    """Total useful flops of LU decomposition of an n x n matrix."""
    _check_positive(n=n)
    return (2.0 / 3.0) * n**3


def fw_total_flops(n: int) -> float:
    """Total flops of Floyd-Warshall on n vertices (adds + compares)."""
    _check_positive(n=n)
    return 2.0 * n**3


def fw_block_flops(b: int) -> float:
    """Flops of one FWI operation on a b x b block (op1/op21/op22/op3)."""
    _check_positive(b=b)
    return 2.0 * b**3
