"""Blocked Floyd-Warshall (Section 5.2.1 of the paper).

Implements the blocked all-pairs shortest-paths algorithm of
Venkataraman, Sahni & Mukhopadhyaya (the paper's reference [7]): in
iteration ``t`` the diagonal block is solved (op1), then the pivot block
row and column (op21 / op22), then all remaining blocks (op3) -- each
via the generalised kernel

    FWI(D, A, B):  for kk:  D[i,j] = min(D[i,j], A[i,kk] + B[kk,j]).

These are the sequential functional references that the distributed
schedules in :mod:`repro.apps.fw` are validated against.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .flops import fw_block_flops

__all__ = [
    "BlockedFwResult",
    "fwi",
    "fwi_inplace",
    "floyd_warshall_simple",
    "blocked_floyd_warshall",
]


def fwi(d: np.ndarray, a: np.ndarray | None = None, b: np.ndarray | None = None) -> np.ndarray:
    """The generalised FW kernel on one block; returns a new array.

    ``a`` / ``b`` default to ``d`` itself (op1).  The pivot loop is
    sequential; within a pivot the update is vectorised, which is valid
    because the pivot row/column are fixed points of their own update
    whenever diagonals are non-negative (no negative cycles).
    """
    d = np.array(d, dtype=np.float64, copy=True)
    a_blk = d if a is None else np.asarray(a, dtype=np.float64)
    b_blk = d if b is None else np.asarray(b, dtype=np.float64)
    n = d.shape[0]
    if d.shape != (n, n) or a_blk.shape != (n, n) or b_blk.shape != (n, n):
        raise ValueError(f"blocks must all be {n} x {n}")
    for kk in range(n):
        np.minimum(d, a_blk[:, kk : kk + 1] + b_blk[kk : kk + 1, :], out=d)
    return d


def fwi_inplace(
    d: np.ndarray,
    a: np.ndarray | None = None,
    b: np.ndarray | None = None,
    scratch: np.ndarray | None = None,
) -> np.ndarray:
    """:func:`fwi` updating ``d`` in place (``d`` may be a matrix view).

    ``d`` must be a writable float64 block; ``a`` / ``b`` default to ``d``
    itself (op1) and must not partially overlap it otherwise.  ``scratch``
    is an optional ``b x b`` float64 buffer reused for the per-pivot sum,
    so a caller sweeping many blocks allocates nothing per call.  Returns
    ``d``.
    """
    if not isinstance(d, np.ndarray) or d.dtype != np.float64:
        raise ValueError("fwi_inplace requires a float64 ndarray target")
    a_blk = d if a is None else np.asarray(a, dtype=np.float64)
    b_blk = d if b is None else np.asarray(b, dtype=np.float64)
    n = d.shape[0]
    if d.shape != (n, n) or a_blk.shape != (n, n) or b_blk.shape != (n, n):
        raise ValueError(f"blocks must all be {n} x {n}")
    if scratch is None:
        scratch = np.empty((n, n), dtype=np.float64)
    elif scratch.shape != (n, n) or scratch.dtype != np.float64:
        raise ValueError(f"scratch must be float64 {n} x {n}")
    for kk in range(n):
        np.add(a_blk[:, kk : kk + 1], b_blk[kk : kk + 1, :], out=scratch)
        np.minimum(d, scratch, out=d)
    return d


def floyd_warshall_simple(d: np.ndarray) -> np.ndarray:
    """Plain (unblocked) Floyd-Warshall; the ground-truth reference."""
    return fwi(d, None, None)


@dataclass
class BlockedFwResult:
    """Outcome of a blocked FW run: distances + operation tallies."""

    dist: np.ndarray
    block_size: int
    op_counts: dict[str, int] = field(default_factory=dict)
    flops: float = 0.0


def blocked_floyd_warshall(d: np.ndarray, b: int) -> BlockedFwResult:
    """Blocked FW on an n x n distance matrix with block size ``b``.

    Entries may be ``inf`` (no edge); weights must be non-negative.
    Follows the three steps of Section 5.2.1 per iteration ``t``:
    op1 on ``D_tt``; op21 on row blocks ``D_tq`` and op22 on column
    blocks ``D_qt``; op3 on all remaining blocks.
    """
    d = np.array(d, dtype=np.float64, copy=True)
    n = d.shape[0]
    if d.shape != (n, n):
        raise ValueError(f"matrix must be square, got {d.shape}")
    if b < 1 or n % b:
        raise ValueError(f"block size b={b} must divide n={n}")
    if np.any(np.diag(d) < 0):
        raise ValueError("negative diagonal entries imply negative cycles")
    nb = n // b
    counts = {"op1": 0, "op21": 0, "op22": 0, "op3": 0}
    flops = 0.0
    # All block updates run in place on views of ``d`` (the a/b operand
    # blocks are always disjoint from the target, or are the target
    # itself in op1), sharing one scratch buffer -- no per-block copies.
    scratch = np.empty((b, b), dtype=np.float64)

    def blk(u: int, v: int) -> tuple[slice, slice]:
        return slice(u * b, (u + 1) * b), slice(v * b, (v + 1) * b)

    for t in range(nb):
        tt = blk(t, t)
        # Step 1: op1 on the diagonal block.
        fwi_inplace(d[tt], scratch=scratch)
        counts["op1"] += 1
        flops += fw_block_flops(b)
        # Step 2: op21 on the pivot block row, op22 on the pivot column.
        for q in range(nb):
            if q == t:
                continue
            tq = blk(t, q)
            fwi_inplace(d[tq], d[tt], None, scratch=scratch)  # rows of D_tt
            counts["op21"] += 1
            flops += fw_block_flops(b)
            qt = blk(q, t)
            fwi_inplace(d[qt], None, d[tt], scratch=scratch)  # columns of D_tt
            counts["op22"] += 1
            flops += fw_block_flops(b)
        # Step 3: op3 on every remaining block.
        for u in range(nb):
            if u == t:
                continue
            for v in range(nb):
                if v == t:
                    continue
                uv = blk(u, v)
                fwi_inplace(d[uv], d[blk(u, t)], d[blk(t, v)], scratch=scratch)
                counts["op3"] += 1
                flops += fw_block_flops(b)
    return BlockedFwResult(dist=d, block_size=b, op_counts=counts, flops=flops)
