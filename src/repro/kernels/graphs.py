"""Graph-workload generators for the Floyd-Warshall application.

The paper evaluates FW on a generic n-vertex weighted digraph; real
all-pairs workloads differ in structure (road-network-like grids, hub
topologies, sparse random graphs).  These generators produce distance
matrices with the right invariants (zero diagonal, non-negative
weights, inf non-edges) so examples and tests can exercise the designs
on recognisable inputs.  FW's running time is structure-oblivious --
2 n^3 flops regardless -- which the tests confirm (the counts don't
change), but correctness checks on varied structure are much stronger
than on uniform noise.
"""

from __future__ import annotations

import numpy as np

__all__ = ["grid_graph", "hub_and_spoke", "layered_dag", "ring_of_cliques"]


def _empty(n: int) -> np.ndarray:
    d = np.full((n, n), np.inf)
    np.fill_diagonal(d, 0.0)
    return d


def grid_graph(rows: int, cols: int, rng: np.random.Generator | None = None) -> np.ndarray:
    """A rows x cols 4-neighbour grid with random positive edge weights
    (both directions, independently weighted) -- road-network-like."""
    if rows < 1 or cols < 1:
        raise ValueError("grid dimensions must be >= 1")
    rng = np.random.default_rng() if rng is None else rng
    n = rows * cols
    d = _empty(n)

    def vid(r: int, c: int) -> int:
        return r * cols + c

    for r in range(rows):
        for c in range(cols):
            for dr, dc in ((0, 1), (1, 0)):
                rr, cc = r + dr, c + dc
                if rr < rows and cc < cols:
                    d[vid(r, c), vid(rr, cc)] = rng.uniform(1.0, 4.0)
                    d[vid(rr, cc), vid(r, c)] = rng.uniform(1.0, 4.0)
    return d


def hub_and_spoke(n: int, hubs: int = 2, rng: np.random.Generator | None = None) -> np.ndarray:
    """Every vertex connects to/from ``hubs`` hub vertices; hubs
    interconnect -- an airline-style topology with 2-hop paths."""
    if n < 2 or not 1 <= hubs < n:
        raise ValueError(f"need 1 <= hubs < n with n >= 2, got n={n}, hubs={hubs}")
    rng = np.random.default_rng() if rng is None else rng
    d = _empty(n)
    hub_ids = list(range(hubs))
    for h in hub_ids:
        for g in hub_ids:
            if h != g:
                d[h, g] = rng.uniform(1.0, 2.0)
    for v in range(hubs, n):
        for h in hub_ids:
            d[v, h] = rng.uniform(1.0, 5.0)
            d[h, v] = rng.uniform(1.0, 5.0)
    return d


def layered_dag(layers: int, width: int, rng: np.random.Generator | None = None) -> np.ndarray:
    """A forward-only layered graph (pipeline/scheduling flavour):
    every vertex connects to all of the next layer."""
    if layers < 2 or width < 1:
        raise ValueError("need layers >= 2 and width >= 1")
    rng = np.random.default_rng() if rng is None else rng
    n = layers * width
    d = _empty(n)
    for layer in range(layers - 1):
        for i in range(width):
            for j in range(width):
                src = layer * width + i
                dst = (layer + 1) * width + j
                d[src, dst] = rng.uniform(0.5, 3.0)
    return d


def ring_of_cliques(cliques: int, size: int, rng: np.random.Generator | None = None) -> np.ndarray:
    """Dense clusters joined in a ring by single bridges -- a topology
    whose shortest paths traverse many blocks (stresses op3 chains)."""
    if cliques < 2 or size < 1:
        raise ValueError("need cliques >= 2 and size >= 1")
    rng = np.random.default_rng() if rng is None else rng
    n = cliques * size
    d = _empty(n)
    for c in range(cliques):
        base = c * size
        for i in range(size):
            for j in range(size):
                if i != j:
                    d[base + i, base + j] = rng.uniform(0.5, 1.5)
        nxt = ((c + 1) % cliques) * size
        d[base, nxt] = rng.uniform(2.0, 4.0)
        d[nxt, base] = rng.uniform(2.0, 4.0)
    return d
