"""Block LU decomposition (Section 5.1.1 of the paper).

Implements the right-looking block algorithm of Choi et al. (the
ScaLAPACK LU, the paper's reference [10]) that the hybrid design
schedules: in iteration ``t`` the panel is factorised (opLU), the block
row/column are solved (opL / opU), and the trailing submatrix receives a
rank-b update (opMM + opMS).

These functions are the *sequential functional reference*: the
distributed schedules in :mod:`repro.apps.lu` must produce bitwise the
same task outputs, and the tests verify small-n runs of both against
``L @ U == A``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .blas import gemm, getrf_nopiv, split_lu, trsm_lower_left_unit, trsm_upper_right
from .flops import gemm_flops, getrf_flops, trsm_flops

__all__ = ["BlockLuResult", "block_lu", "lu_nopiv"]


@dataclass
class BlockLuResult:
    """Outcome of a block LU run: packed factors + operation tallies."""

    lu: np.ndarray  # packed LU (L strictly below diagonal, U on/above)
    block_size: int
    op_counts: dict[str, int] = field(default_factory=dict)
    flops: float = 0.0

    @property
    def factors(self) -> tuple[np.ndarray, np.ndarray]:
        return split_lu(self.lu)


def lu_nopiv(a: np.ndarray) -> BlockLuResult:
    """Unblocked LU (b = n); the small-matrix reference."""
    a = np.asarray(a, dtype=np.float64)
    n = a.shape[0]
    return BlockLuResult(
        lu=getrf_nopiv(a),
        block_size=n,
        op_counts={"opLU": 1, "opL": 0, "opU": 0, "opMM": 0, "opMS": 0},
        flops=getrf_flops(n),
    )


def block_lu(a: np.ndarray, b: int) -> BlockLuResult:
    """Block LU of an n x n matrix with block size ``b`` (n % b == 0).

    Follows the paper's step structure exactly:

    1. opLU: factorise the n' x b panel (diagonal block + column below)
       via Gaussian elimination, yielding L00, L10 and U00;
    2. opU: ``U_01 = (L_00)^{-1} A_01``, one task per block;
    3. opMM + opMS: ``A_11 <- A_11 - L_10 U_01``, one task pair per block.

    (The panel factorisation folds the paper's opL tasks -- forming
    ``L_10 = A_10 U_00^{-1}`` -- into step 1; the tallies count them
    separately, as the paper does.)
    """
    a = np.array(a, dtype=np.float64, copy=True)
    n = a.shape[0]
    if a.shape != (n, n):
        raise ValueError(f"matrix must be square, got {a.shape}")
    if b < 1 or n % b:
        raise ValueError(f"block size b={b} must divide n={n}")
    nb = n // b
    counts = {"opLU": 0, "opL": 0, "opU": 0, "opMM": 0, "opMS": 0}
    flops = 0.0

    for t in range(nb):
        lo = t * b
        hi = lo + b
        # Step 1 (opLU + opL): factorise the diagonal block, then solve
        # for the sub-diagonal blocks of L.
        diag = getrf_nopiv(a[lo:hi, lo:hi])
        a[lo:hi, lo:hi] = diag
        counts["opLU"] += 1
        flops += getrf_flops(b)
        l00, u00 = split_lu(diag)
        for u in range(t + 1, nb):
            rows = slice(u * b, (u + 1) * b)
            a[rows, lo:hi] = trsm_upper_right(u00, a[rows, lo:hi])
            counts["opL"] += 1
            flops += trsm_flops(b, b)
        # Step 2 (opU): solve for the block row of U.
        for v in range(t + 1, nb):
            cols = slice(v * b, (v + 1) * b)
            a[lo:hi, cols] = trsm_lower_left_unit(l00, a[lo:hi, cols])
            counts["opU"] += 1
            flops += trsm_flops(b, b)
        # Step 3 (opMM + opMS): trailing update, one task pair per block.
        for u in range(t + 1, nb):
            rows = slice(u * b, (u + 1) * b)
            for v in range(t + 1, nb):
                cols = slice(v * b, (v + 1) * b)
                update = gemm(a[rows, lo:hi], a[lo:hi, cols])
                counts["opMM"] += 1
                flops += gemm_flops(b, b, b)
                a[rows, cols] -= update
                counts["opMS"] += 1
                flops += b * b  # subtraction, Theta(n^2) per the paper
    return BlockLuResult(lu=a, block_size=b, op_counts=counts, flops=flops)
