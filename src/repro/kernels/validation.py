"""Numerical validation helpers used by tests and examples.

Residual checks for LU, ground-truth comparisons for shortest paths
(against :mod:`scipy.sparse.csgraph`), and well-conditioned random
problem generators (diagonally dominant matrices so that no-pivoting LU
-- the paper's standing assumption -- is numerically safe).
"""

from __future__ import annotations

import numpy as np
from scipy.sparse.csgraph import floyd_warshall as scipy_floyd_warshall

from .blas import split_lu

__all__ = [
    "random_dd_matrix",
    "random_distance_matrix",
    "lu_residual",
    "scipy_shortest_paths",
    "max_abs_diff",
]


def random_dd_matrix(n: int, rng: np.random.Generator | None = None) -> np.ndarray:
    """A random diagonally dominant n x n matrix (LU-safe without pivoting)."""
    if n < 1:
        raise ValueError(f"n must be >= 1, got {n}")
    rng = np.random.default_rng() if rng is None else rng
    a = rng.uniform(-1.0, 1.0, size=(n, n))
    a[np.diag_indices(n)] = np.abs(a).sum(axis=1) + 1.0
    return a


def random_distance_matrix(
    n: int,
    rng: np.random.Generator | None = None,
    density: float = 0.4,
    max_weight: float = 10.0,
) -> np.ndarray:
    """A random directed non-negative adjacency matrix with inf non-edges.

    Diagonal is zero; roughly ``density`` of the off-diagonal entries
    carry finite weights in (0, max_weight].
    """
    if n < 1:
        raise ValueError(f"n must be >= 1, got {n}")
    if not 0.0 < density <= 1.0:
        raise ValueError(f"density must be in (0, 1], got {density}")
    rng = np.random.default_rng() if rng is None else rng
    d = np.full((n, n), np.inf)
    mask = rng.random((n, n)) < density
    d[mask] = rng.uniform(0.1, max_weight, size=int(mask.sum()))
    np.fill_diagonal(d, 0.0)
    return d


def lu_residual(a: np.ndarray, lu_packed: np.ndarray) -> float:
    """Relative factorisation residual ``||L U - A|| / ||A||``."""
    lower, upper = split_lu(lu_packed)
    a = np.asarray(a, dtype=np.float64)
    denom = np.linalg.norm(a)
    if denom == 0:
        return float(np.linalg.norm(lower @ upper))
    return float(np.linalg.norm(lower @ upper - a) / denom)


def scipy_shortest_paths(d: np.ndarray) -> np.ndarray:
    """Ground-truth all-pairs shortest paths via scipy's Floyd-Warshall."""
    adj = np.array(d, dtype=np.float64, copy=True)
    return scipy_floyd_warshall(adj)


def max_abs_diff(a: np.ndarray, b: np.ndarray) -> float:
    """Largest absolute elementwise difference, treating inf == inf."""
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    if a.shape != b.shape:
        raise ValueError(f"shape mismatch {a.shape} vs {b.shape}")
    both_inf = np.isinf(a) & np.isinf(b) & (np.sign(a) == np.sign(b))
    with np.errstate(invalid="ignore"):
        diff = np.abs(a - b)
    diff[both_inf] = 0.0  # inf - inf would be NaN; equal infinities match
    return float(diff.max()) if diff.size else 0.0
