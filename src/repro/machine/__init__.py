"""Machine-model substrate: the simulated reconfigurable computing system.

Replaces the paper's Cray XD1 hardware with parametric models of the
processor, FPGA fabric, memory hierarchy and interconnect, composed into
:class:`~repro.machine.system.ReconfigurableSystem` instances by the
presets in :mod:`repro.machine.presets`.
"""

from .fpga import FpgaFabric, FpgaSpec, NotConfiguredError
from .interconnect import Interconnect, NetworkSpec
from .memory import AllocationError, MemoryBank, MemorySpec
from .node import ComputeNode, NodeSpec
from .presets import ALL_PRESETS, cray_xd1, cray_xt3_drc, sgi_rasc, src_map_station
from .processor import OPTERON_2_2GHZ, CalibrationError, ProcessorSpec
from .scenarios import (
    compose,
    with_fpga_dram_bandwidth,
    with_network_bandwidth,
    with_node_failure,
    with_scaled_processor,
    with_sram_capacity,
)
from .system import MachineSpec, ReconfigurableSystem

__all__ = [
    "ALL_PRESETS",
    "AllocationError",
    "CalibrationError",
    "ComputeNode",
    "FpgaFabric",
    "FpgaSpec",
    "Interconnect",
    "MachineSpec",
    "MemoryBank",
    "MemorySpec",
    "NetworkSpec",
    "NodeSpec",
    "NotConfiguredError",
    "OPTERON_2_2GHZ",
    "ProcessorSpec",
    "ReconfigurableSystem",
    "compose",
    "cray_xd1",
    "cray_xt3_drc",
    "sgi_rasc",
    "src_map_station",
    "with_fpga_dram_bandwidth",
    "with_network_bandwidth",
    "with_node_failure",
    "with_scaled_processor",
    "with_sram_capacity",
]
