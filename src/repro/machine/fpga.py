"""FPGA fabric model.

A :class:`FpgaFabric` is a live, per-node FPGA in a simulation.  It must
be *configured* with a design (a synthesised bitstream-like object
exposing ``k``, ``freq_hz`` and resource requirements, e.g.
:class:`repro.hw.mm_design.MatrixMultiplyDesign`) before it can run.
Configuration validates resources against the device -- the software
analogue of place-and-route succeeding -- and fixes the clock that
converts cycle counts into time.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional

from ..hw.devices import FpgaDevice
from ..sim import Resource, Simulator

__all__ = ["FpgaSpec", "FpgaFabric", "NotConfiguredError"]


class NotConfiguredError(RuntimeError):
    """An FPGA operation was attempted before a design was loaded."""


@dataclass(frozen=True)
class FpgaSpec:
    """Declarative description of a node's FPGA subsystem."""

    device: FpgaDevice
    dram_link_bandwidth: float  # hardware max FPGA<->DRAM path (bytes/s)
    sram_link_bandwidth: float  # hardware max FPGA<->SRAM path (bytes/s)

    def __post_init__(self) -> None:
        if self.dram_link_bandwidth <= 0 or self.sram_link_bandwidth <= 0:
            raise ValueError("link bandwidths must be positive")


class FpgaFabric:
    """A live FPGA: exclusive compute lane + a loaded design."""

    def __init__(self, sim: Simulator, spec: FpgaSpec, name: str, trace_category: str) -> None:
        self.sim = sim
        self.spec = spec
        self.name = name
        self.trace_category = trace_category
        self.lane = Resource(sim, capacity=1, name=f"{name}.lane")
        self.design: Optional[Any] = None
        self.busy_time = 0.0
        self.cycles_executed = 0

    # -- configuration -----------------------------------------------------

    def configure(self, design: Any) -> None:
        """Load ``design`` onto the fabric, validating device resources.

        ``design`` must expose ``freq_hz``; if it carries a synthesis
        ``report``, the report's device must match this fabric's device.
        """
        if getattr(design, "freq_hz", 0) <= 0:
            raise ValueError(f"design {design!r} has no positive freq_hz")
        report = getattr(design, "report", None)
        if report is not None and report.device != self.spec.device.name:
            raise ValueError(
                f"design was synthesised for {report.device}, "
                f"but this fabric is a {self.spec.device.name}"
            )
        device = getattr(design, "device", None)
        if device is not None and device.name != self.spec.device.name:
            raise ValueError(
                f"design targets {device.name}, fabric is {self.spec.device.name}"
            )
        self.design = design

    @property
    def freq_hz(self) -> float:
        """Clock of the loaded design (F_f)."""
        if self.design is None:
            raise NotConfiguredError(f"{self.name}: no design configured")
        return self.design.freq_hz

    @property
    def effective_dram_bandwidth(self) -> float:
        """B_d: one word per design cycle, capped by the hardware link.

        On XD1 the RapidArray path tops out at 2.8 GB/s but the designs
        consume one 8-byte word per cycle, so B_d = 8 * F_f (1.04 GB/s at
        130 MHz) -- exactly the paper's Section 6.1 accounting.
        """
        return min(8.0 * self.freq_hz, self.spec.dram_link_bandwidth)

    # -- execution -----------------------------------------------------------

    def run_cycles(self, cycles: float, label: str = "fpga"):
        """Process generator: occupy the fabric for ``cycles`` clock ticks."""
        if cycles < 0:
            raise ValueError(f"negative cycle count: {cycles}")
        freq = self.freq_hz  # raises if unconfigured
        req = self.lane.request()
        yield req
        start = self.sim.now
        try:
            yield self.sim.timeout(cycles / freq)
        finally:
            self.lane.release()
        self.busy_time += self.sim.now - start
        self.cycles_executed += cycles
        if self.sim.trace is not None:
            self.sim.trace.record(self.trace_category, label, start, self.sim.now, cycles=cycles)

    def run_seconds(self, seconds: float, label: str = "fpga"):
        """Process generator: occupy the fabric for a precomputed duration."""
        if self.design is None:
            raise NotConfiguredError(f"{self.name}: no design configured")
        return self.run_cycles(seconds * self.freq_hz, label=label)

    def utilisation(self, horizon: Optional[float] = None) -> float:
        """Busy fraction over ``horizon`` (default: now)."""
        horizon = self.sim.now if horizon is None else horizon
        return 0.0 if horizon <= 0 else min(1.0, self.busy_time / horizon)
