"""Interconnect model: the non-blocking crossbar of the Cray XD1.

Each node has ``links_per_node`` full-duplex links of ``bandwidth``
bytes/s each (two 2 GB/s RapidArray links per XD1 node).  A point-to-point
transfer claims one egress link at the source and one ingress link at the
destination for ``latency + nbytes/bandwidth`` seconds; the crossbar
itself is non-blocking, so disjoint pairs never interfere -- contention
only arises at the endpoints, which matches the architecture in
Section 3 of the paper.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..sim import Resource, Simulator

__all__ = ["NetworkSpec", "Interconnect"]


@dataclass(frozen=True)
class NetworkSpec:
    """Declarative description of the interconnect."""

    bandwidth: float  # per-link bytes/s (the paper's B_n)
    latency: float = 0.0  # per-message setup cost (seconds)
    links_per_node: int = 1

    def __post_init__(self) -> None:
        if self.bandwidth <= 0:
            raise ValueError(f"bandwidth must be positive, got {self.bandwidth}")
        if self.latency < 0:
            raise ValueError(f"latency must be >= 0, got {self.latency}")
        if self.links_per_node < 1:
            raise ValueError(f"links_per_node must be >= 1, got {self.links_per_node}")


class Interconnect:
    """Live crossbar connecting ``p`` nodes."""

    def __init__(self, sim: Simulator, spec: NetworkSpec, p: int) -> None:
        if p < 1:
            raise ValueError(f"need at least one node, got p={p}")
        self.sim = sim
        self.spec = spec
        self.p = p
        self._egress = [
            Resource(sim, capacity=spec.links_per_node, name=f"net{i}.out") for i in range(p)
        ]
        self._ingress = [
            Resource(sim, capacity=spec.links_per_node, name=f"net{i}.in") for i in range(p)
        ]
        self.bytes_moved = 0.0
        self.message_count = 0

    def transfer_time(self, nbytes: float) -> float:
        """Uncontended wire time for one message."""
        if nbytes < 0:
            raise ValueError(f"negative message size: {nbytes}")
        return self.spec.latency + nbytes / self.spec.bandwidth

    def _check_pair(self, src: int, dst: int) -> None:
        if not (0 <= src < self.p and 0 <= dst < self.p):
            raise ValueError(f"node index out of range: {src} -> {dst} with p={self.p}")
        if src == dst:
            raise ValueError(f"cannot send from node {src} to itself")

    def send(self, src: int, dst: int, nbytes: float, label: str = ""):
        """Process generator: move ``nbytes`` from ``src`` to ``dst``.

        Claims one egress link at ``src`` and one ingress link at ``dst``
        (egress first, then ingress -- a fixed order that cannot deadlock
        because no transfer ever waits on an egress while holding one).
        """
        self._check_pair(src, dst)
        service = self.transfer_time(nbytes)
        yield self._egress[src].request()
        try:
            yield self._ingress[dst].request()
            start = self.sim.now
            try:
                yield self.sim.timeout(service)
            finally:
                self._ingress[dst].release()
        finally:
            self._egress[src].release()
        self.bytes_moved += nbytes
        self.message_count += 1
        if self.sim.trace is not None:
            self.sim.trace.record(
                f"net{src}->", label or f"to{dst}", start, self.sim.now, nbytes=nbytes, dst=dst
            )
        return service

    def broadcast(self, src: int, nbytes: float, label: str = "", dests: Optional[list[int]] = None):
        """Process generator: send the same message to every other node.

        Transfers are issued concurrently and ride the available egress
        links (two on XD1), finishing when the last destination has the
        data.  Returns when all sends complete.
        """
        if dests is None:
            dests = [i for i in range(self.p) if i != src]
        sends = [
            self.sim.process(self.send(src, dst, nbytes, label=label or f"bcast{src}"))
            for dst in dests
        ]
        yield self.sim.all_of(sends)
