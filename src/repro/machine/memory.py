"""Memory models: DRAM, on-board SRAM and on-chip BRAM.

Each live :class:`MemoryBank` pairs a capacity ledger (allocate/free with
overflow checking -- how the designs validate the paper's "8 MB of SRAM
is allocated" constraints) with a :class:`~repro.sim.resources.
BandwidthChannel` modelling its port.  Per the paper's model, access
*latency* is ignored for streamed transfers ("the memory access latency
is only incurred once", Section 4.1), so channels default to zero latency
and pure bandwidth cost.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..sim import BandwidthChannel, Simulator

__all__ = ["MemorySpec", "MemoryBank", "AllocationError"]


class AllocationError(MemoryError):
    """A reservation exceeded the bank's capacity."""


@dataclass(frozen=True)
class MemorySpec:
    """Declarative description of a memory bank."""

    kind: str  # "dram" | "sram" | "bram"
    capacity_bytes: int
    bandwidth: float  # bytes/s through the port

    def __post_init__(self) -> None:
        if self.kind not in ("dram", "sram", "bram"):
            raise ValueError(f"unknown memory kind {self.kind!r}")
        if self.capacity_bytes <= 0:
            raise ValueError(f"capacity must be positive, got {self.capacity_bytes}")
        if self.bandwidth <= 0:
            raise ValueError(f"bandwidth must be positive, got {self.bandwidth}")


class MemoryBank:
    """A live memory bank in a simulation.

    Combines capacity accounting with a serialising port channel.  The
    ``trace_category`` (e.g. ``"dram0"``) is used for Gantt lanes.
    """

    def __init__(
        self,
        sim: Simulator,
        spec: MemorySpec,
        name: str,
        trace_category: Optional[str] = None,
        bandwidth_override: Optional[float] = None,
    ) -> None:
        self.sim = sim
        self.spec = spec
        self.name = name
        bandwidth = bandwidth_override if bandwidth_override is not None else spec.bandwidth
        self.port = BandwidthChannel(
            sim, bandwidth=bandwidth, name=f"{name}.port", trace_category=trace_category
        )
        self._allocated = 0

    # -- capacity ledger -----------------------------------------------------

    @property
    def capacity_bytes(self) -> int:
        return self.spec.capacity_bytes

    @property
    def allocated_bytes(self) -> int:
        return self._allocated

    @property
    def free_bytes(self) -> int:
        return self.spec.capacity_bytes - self._allocated

    def allocate(self, nbytes: int) -> None:
        """Reserve ``nbytes``; raises :class:`AllocationError` on overflow."""
        if nbytes < 0:
            raise ValueError(f"negative allocation: {nbytes}")
        if self._allocated + nbytes > self.spec.capacity_bytes:
            raise AllocationError(
                f"{self.name}: allocating {nbytes} B exceeds capacity "
                f"({self._allocated}/{self.spec.capacity_bytes} B in use)"
            )
        self._allocated += nbytes

    def free(self, nbytes: int) -> None:
        """Release a prior reservation."""
        if nbytes < 0 or nbytes > self._allocated:
            raise AllocationError(
                f"{self.name}: freeing {nbytes} B but only {self._allocated} B allocated"
            )
        self._allocated -= nbytes

    # -- port ------------------------------------------------------------------

    def transfer(self, nbytes: float, label: str = ""):
        """Process generator: move ``nbytes`` through the port."""
        return self.port.transfer(nbytes, label=label or self.name)

    def transfer_time(self, nbytes: float) -> float:
        """Uncontended port time for ``nbytes``."""
        return self.port.transfer_time(nbytes)
