"""Compute-node model: one processor + one FPGA + memories.

A :class:`ComputeNode` is the live per-node object in a simulation.  It
owns:

* a CPU lane (exclusive :class:`~repro.sim.resources.Resource`) -- one
  processor per node, as the paper's C program uses only one of the two
  Opterons on an XD1 blade;
* an :class:`~repro.machine.fpga.FpgaFabric` that must be configured with
  a synthesised design before use;
* a DRAM bank (the processor's main memory) and an SRAM bank (the
  FPGA's on-board QDR memory);
* the FPGA<->DRAM streaming channel whose bandwidth is ``B_d`` -- fixed
  when the design is configured (one word per design cycle, capped by
  the hardware link).

All compute/transfer methods are process generators for the simulation
engine; trace lanes are ``cpu{i}``, ``fpga{i}``, ``dram{i}``, ``sram{i}``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional

from ..sim import BandwidthChannel, Resource, Simulator
from .fpga import FpgaFabric, FpgaSpec
from .memory import MemoryBank, MemorySpec
from .processor import ProcessorSpec

__all__ = ["NodeSpec", "ComputeNode"]


@dataclass(frozen=True)
class NodeSpec:
    """Declarative description of one compute node."""

    processor: ProcessorSpec
    fpga: FpgaSpec
    dram: MemorySpec
    sram: MemorySpec


class ComputeNode:
    """A live node: processor + FPGA + DRAM + SRAM, bound to a simulator."""

    def __init__(self, sim: Simulator, spec: NodeSpec, index: int) -> None:
        self.sim = sim
        self.spec = spec
        self.index = index
        self.cpu_lane = Resource(sim, capacity=1, name=f"cpu{index}.lane")
        self.fpga = FpgaFabric(sim, spec.fpga, name=f"fpga{index}", trace_category=f"fpga{index}")
        self.dram = MemoryBank(sim, spec.dram, name=f"dram{index}", trace_category=f"dram{index}")
        self.sram = MemoryBank(sim, spec.sram, name=f"sram{index}", trace_category=f"sram{index}")
        self.fpga_dram: Optional[BandwidthChannel] = None
        self.cpu_busy_time = 0.0
        self.cpu_flops_done = 0.0
        self.fpga_flops_done = 0.0

    # -- configuration -------------------------------------------------------

    def configure_fpga(self, design: Any) -> None:
        """Load a design; fixes the FPGA clock and the B_d channel."""
        self.fpga.configure(design)
        self.fpga_dram = BandwidthChannel(
            self.sim,
            bandwidth=self.fpga.effective_dram_bandwidth,
            name=f"fpga_dram{self.index}",
            trace_category=f"dram{self.index}",
        )

    @property
    def b_d(self) -> float:
        """The node's effective FPGA<->DRAM bandwidth (B_d)."""
        if self.fpga_dram is None:
            raise RuntimeError(f"node {self.index}: FPGA not configured, B_d undefined")
        return self.fpga_dram.bandwidth

    # -- CPU ----------------------------------------------------------------

    def cpu_run(self, kernel: str, flops: float, label: str = ""):
        """Process generator: run ``flops`` of ``kernel`` on the processor."""
        duration = self.spec.processor.kernel_time(kernel, flops)
        yield from self.cpu_occupy(duration, label=label or kernel, flops=flops)

    def cpu_occupy(self, seconds: float, label: str = "cpu", flops: float = 0.0):
        """Process generator: hold the CPU lane for ``seconds``.

        Used both for computation and for the MPI communication time that,
        per Section 4.3, cannot overlap with processor computation.
        """
        if seconds < 0:
            raise ValueError(f"negative duration: {seconds}")
        req = self.cpu_lane.request()
        yield req
        start = self.sim.now
        try:
            yield self.sim.timeout(seconds)
        finally:
            self.cpu_lane.release()
        self.cpu_busy_time += self.sim.now - start
        self.cpu_flops_done += flops
        if self.sim.trace is not None:
            self.sim.trace.record(f"cpu{self.index}", label, start, self.sim.now, flops=flops)

    # -- FPGA ----------------------------------------------------------------

    def fpga_run_cycles(self, cycles: float, label: str = "fpga", flops: float = 0.0):
        """Process generator: run the FPGA for ``cycles`` design clocks."""
        yield from self.fpga.run_cycles(cycles, label=label)
        self.fpga_flops_done += flops

    def fpga_run_seconds(self, seconds: float, label: str = "fpga", flops: float = 0.0):
        """Process generator: run the FPGA for a precomputed duration."""
        yield from self.fpga.run_cycles(seconds * self.fpga.freq_hz, label=label)
        self.fpga_flops_done += flops

    # -- data movement ---------------------------------------------------------

    def dram_to_fpga(self, nbytes: float, label: str = "dram->fpga"):
        """Process generator: stream ``nbytes`` from DRAM into the FPGA.

        This is the T_mem term of the partition equations; it shares the
        B_d channel with all other FPGA<->DRAM traffic on this node.
        """
        if self.fpga_dram is None:
            raise RuntimeError(f"node {self.index}: FPGA not configured")
        yield from self.fpga_dram.transfer(nbytes, label=label)

    def fpga_to_dram(self, nbytes: float, label: str = "fpga->dram"):
        """Process generator: stream results back (overlappable, Sec. 4.2)."""
        if self.fpga_dram is None:
            raise RuntimeError(f"node {self.index}: FPGA not configured")
        yield from self.fpga_dram.transfer(nbytes, label=label)

    def fpga_to_sram(self, nbytes: float, label: str = "fpga->sram"):
        """Process generator: move intermediates to on-board SRAM."""
        yield from self.sram.transfer(nbytes, label=label)
