"""Machine presets for the systems surveyed in Section 3 of the paper.

:func:`cray_xd1` is the implementation platform and is calibrated exactly
against Section 6.1.  The other presets (Cray XT3 + DRC module, SRC MAP,
SGI RASC RC100) carry the bandwidth/part figures the paper quotes, with
datasheet-level approximations where the paper is silent; they exist so
the design model can *predict* performance across machines (the paper's
Section 4.5 use-case), and are exercised by the preset-sweep ablation
benchmark.
"""

from __future__ import annotations

from ..hw.devices import get_device
from .fpga import FpgaSpec
from .interconnect import NetworkSpec
from .memory import MemorySpec
from .node import NodeSpec
from .processor import OPTERON_2_2GHZ, ProcessorSpec
from .system import MachineSpec

__all__ = ["cray_xd1", "cray_xt3_drc", "src_map_station", "sgi_rasc", "ALL_PRESETS"]

_GB = 1024**3
_MB = 1024**2


def cray_xd1(p: int = 6) -> MachineSpec:
    """One chassis of Cray XD1 (the paper's platform), ``p`` compute blades.

    Per blade: a 2.2 GHz Opteron (one of two is used), an XC2VP50, four
    banks of QDR II SRAM (12.8 GB/s aggregate, 8 MB allocated by the
    designs), a 2.8 GB/s RapidArray FPGA->DRAM path, and two 2 GB/s
    links into a non-blocking crossbar.
    """
    node = NodeSpec(
        processor=OPTERON_2_2GHZ,
        fpga=FpgaSpec(
            device=get_device("XC2VP50"),
            dram_link_bandwidth=2.8e9,
            sram_link_bandwidth=12.8e9,
        ),
        dram=MemorySpec("dram", capacity_bytes=8 * _GB, bandwidth=6.4e9),
        sram=MemorySpec("sram", capacity_bytes=8 * _MB, bandwidth=12.8e9),
    )
    return MachineSpec(
        name="Cray XD1 (1 chassis)",
        p=p,
        node=node,
        network=NetworkSpec(bandwidth=2e9, latency=1.6e-6, links_per_node=2),
    )


def cray_xt3_drc(p: int = 6) -> MachineSpec:
    """Cray XT3 nodes with DRC Virtex-4 modules (Section 3).

    The DRC module sits in an Opteron socket: up to 64 MB SRAM and a
    6.4 GB/s HyperTransport path to the adjacent Opteron's DRAM.
    Processor calibration reuses the Opteron table (same ISA family).
    """
    node = NodeSpec(
        processor=ProcessorSpec(
            name="AMD Opteron 2.4 GHz",
            clock_hz=2.4e9,
            sustained={k: v * 2.4 / 2.2 for k, v in OPTERON_2_2GHZ.sustained.items()},
        ),
        fpga=FpgaSpec(
            device=get_device("XC4VLX200"),
            dram_link_bandwidth=6.4e9,
            sram_link_bandwidth=12.8e9,
        ),
        dram=MemorySpec("dram", capacity_bytes=8 * _GB, bandwidth=6.4e9),
        sram=MemorySpec("sram", capacity_bytes=64 * _MB, bandwidth=12.8e9),
    )
    return MachineSpec(
        name="Cray XT3 + DRC",
        p=p,
        node=node,
        network=NetworkSpec(bandwidth=4e9, latency=2e-6, links_per_node=1),
    )


def src_map_station(p: int = 1) -> MachineSpec:
    """An SRC MAP station (Section 3): two XC2VP100s per MAP processor.

    Modelled as one node per MAP with the larger Virtex-II Pro part; the
    sustained-rate table borrows the Opteron calibration scaled to a
    2.8 GHz Xeon's dgemm ratio (approximate, documented substitution).
    """
    xeon = ProcessorSpec(
        name="Intel Xeon 2.8 GHz",
        clock_hz=2.8e9,
        sustained={k: v * 1.05 for k, v in OPTERON_2_2GHZ.sustained.items()},
    )
    node = NodeSpec(
        processor=xeon,
        fpga=FpgaSpec(
            device=get_device("XC2VP100"),
            dram_link_bandwidth=1.4e9,  # sustained MAP payload bandwidth
            sram_link_bandwidth=9.6e9,
        ),
        dram=MemorySpec("dram", capacity_bytes=8 * _GB, bandwidth=6.4e9),
        sram=MemorySpec("sram", capacity_bytes=24 * _MB, bandwidth=9.6e9),
    )
    return MachineSpec(
        name="SRC MAP station",
        p=p,
        node=node,
        network=NetworkSpec(bandwidth=1.4e9, latency=3e-6, links_per_node=1),
    )


def sgi_rasc(p: int = 2) -> MachineSpec:
    """SGI RASC RC100 blades (Section 3): two Virtex-4 LX200s per blade,
    directly attached to shared global memory over NUMAlink."""
    node = NodeSpec(
        processor=ProcessorSpec(
            name="Itanium2 1.5 GHz",
            clock_hz=1.5e9,
            sustained={k: v * 1.1 for k, v in OPTERON_2_2GHZ.sustained.items()},
        ),
        fpga=FpgaSpec(
            device=get_device("XC4VLX200"),
            dram_link_bandwidth=6.4e9,
            sram_link_bandwidth=12.8e9,
        ),
        dram=MemorySpec("dram", capacity_bytes=16 * _GB, bandwidth=6.4e9),
        sram=MemorySpec("sram", capacity_bytes=32 * _MB, bandwidth=12.8e9),
    )
    return MachineSpec(
        name="SGI RASC RC100",
        p=p,
        node=node,
        network=NetworkSpec(bandwidth=6.4e9, latency=1e-6, links_per_node=1),
    )


ALL_PRESETS = {
    "xd1": cray_xd1,
    "xt3": cray_xt3_drc,
    "src": src_map_station,
    "rasc": sgi_rasc,
}
