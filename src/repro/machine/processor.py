"""General-purpose processor model.

The paper treats the processor as a black box with an application-
dependent *sustained* floating-point rate ``O_p * F_p``, obtained by
running a sample program (Section 4.1).  :class:`ProcessorSpec` is the
declarative description (clock + a calibration table of sustained rates
per kernel); the live per-node execution object is built by
:class:`repro.machine.node.ComputeNode`.

The Opteron calibration reproduces the paper's measurements:

* ``dgemm``  : 3.9 GFLOPS (ACML dgemm at matrix size 2048),
* ``dgetrf`` : (2/3) * 3000^3 flops in 4.9 s  (Table 1, opLU),
* ``dtrsm``  : 3000^3 flops in 7.1 s          (Table 1, opL / opU),
* ``fw``     : 190 MFLOPS (regular Floyd-Warshall on a 256 x 256 block).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from types import MappingProxyType
from typing import Mapping

__all__ = ["ProcessorSpec", "OPTERON_2_2GHZ", "CalibrationError"]


class CalibrationError(KeyError):
    """No sustained rate is calibrated for the requested kernel."""


def _frozen(d: dict) -> Mapping[str, float]:
    return MappingProxyType(dict(d))


@dataclass(frozen=True)
class ProcessorSpec:
    """A processor described by clock rate and sustained kernel rates.

    ``sustained`` maps kernel names (``"dgemm"``, ``"dgetrf"``, ``"dtrsm"``,
    ``"fw"``, ...) to sustained flops/s for that kernel on this processor.
    """

    name: str
    clock_hz: float
    sustained: Mapping[str, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.clock_hz <= 0:
            raise ValueError(f"clock must be positive, got {self.clock_hz}")
        for kernel, rate in self.sustained.items():
            if rate <= 0:
                raise ValueError(f"sustained rate for {kernel!r} must be positive, got {rate}")
        object.__setattr__(self, "sustained", _frozen(dict(self.sustained)))

    def sustained_flops(self, kernel: str) -> float:
        """Sustained rate for ``kernel`` (flops/s)."""
        try:
            return self.sustained[kernel]
        except KeyError:
            raise CalibrationError(
                f"processor {self.name!r} has no calibration for kernel {kernel!r}; "
                f"calibrated: {sorted(self.sustained)}"
            ) from None

    def kernel_time(self, kernel: str, flops: float) -> float:
        """Execution time of ``flops`` operations of ``kernel``."""
        if flops < 0:
            raise ValueError(f"negative flop count: {flops}")
        return flops / self.sustained_flops(kernel)

    def with_rate(self, kernel: str, flops_per_s: float) -> "ProcessorSpec":
        """A copy with one kernel's sustained rate added/overridden."""
        rates = dict(self.sustained)
        rates[kernel] = flops_per_s
        return ProcessorSpec(self.name, self.clock_hz, rates)


#: The 2.2 GHz AMD Opteron of the Cray XD1 compute blade, calibrated
#: against every measurement the paper reports for it.
OPTERON_2_2GHZ = ProcessorSpec(
    name="AMD Opteron 2.2 GHz",
    clock_hz=2.2e9,
    sustained={
        "dgemm": 3.9e9,
        # Table 1: opLU (dgetrf on 3000x3000, (2/3) b^3 flops) takes 4.9 s.
        "dgetrf": (2.0 / 3.0) * 3000**3 / 4.9,
        # Table 1: opL/opU (dtrsm, b^3 flops) take 7.1 s.
        "dtrsm": 3000**3 / 7.1,
        # Section 6.1: regular FW on a 256-block sustains 190 MFLOPS.
        "fw": 190e6,
    },
)
