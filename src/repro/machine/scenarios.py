"""Machine-variant scenarios for what-if studies.

Small, composable transformations of a :class:`~repro.machine.system.
MachineSpec` used by the ablation benchmarks, the capacity-planning
examples and the fault subsystem (:mod:`repro.faults`): degraded memory
paths, slower/faster networks, scaled processors, failed nodes,
mixed-generation chassis descriptions.  :func:`compose` chains several
transforms into one, so fault scenarios and what-if studies share a
single vocabulary.
"""

from __future__ import annotations

import dataclasses
from typing import Callable

from .processor import ProcessorSpec
from .system import MachineSpec

__all__ = [
    "compose",
    "with_fpga_dram_bandwidth",
    "with_network_bandwidth",
    "with_node_failure",
    "with_scaled_processor",
    "with_sram_capacity",
]


def with_fpga_dram_bandwidth(spec: MachineSpec, bandwidth: float) -> MachineSpec:
    """The same machine with the FPGA<->DRAM hardware path changed.

    The effective B_d remains ``min(8 F_f, bandwidth)`` per node once a
    design is configured.
    """
    if bandwidth <= 0:
        raise ValueError(f"bandwidth must be positive, got {bandwidth}")
    fpga = dataclasses.replace(spec.node.fpga, dram_link_bandwidth=bandwidth)
    node = dataclasses.replace(spec.node, fpga=fpga)
    return dataclasses.replace(
        spec, node=node, name=f"{spec.name} (B_d path {bandwidth / 1e9:.2g} GB/s)"
    )


def with_network_bandwidth(spec: MachineSpec, bandwidth: float, links: int | None = None) -> MachineSpec:
    """The same machine with different per-link network bandwidth."""
    if bandwidth <= 0:
        raise ValueError(f"bandwidth must be positive, got {bandwidth}")
    network = dataclasses.replace(
        spec.network,
        bandwidth=bandwidth,
        links_per_node=spec.network.links_per_node if links is None else links,
    )
    return dataclasses.replace(
        spec, network=network, name=f"{spec.name} (B_n {bandwidth / 1e9:.2g} GB/s)"
    )


def with_scaled_processor(spec: MachineSpec, factor: float) -> MachineSpec:
    """The same machine with every sustained processor rate scaled.

    Models a CPU generation change while keeping the FPGA fixed -- the
    scenario behind the paper's observation that the best split shifts
    with relative device power.
    """
    if factor <= 0:
        raise ValueError(f"factor must be positive, got {factor}")
    old = spec.node.processor
    proc = ProcessorSpec(
        name=f"{old.name} x{factor:g}",
        clock_hz=old.clock_hz * factor,
        sustained={k: v * factor for k, v in old.sustained.items()},
    )
    node = dataclasses.replace(spec.node, processor=proc)
    return dataclasses.replace(spec, node=node, name=f"{spec.name} (CPU x{factor:g})")


def with_node_failure(spec: MachineSpec, node_id: int) -> MachineSpec:
    """The same machine with node ``node_id`` removed from service.

    Nodes are identical, so a failure reduces the chassis to ``p - 1``
    peers; re-planning on the result redistributes the failed node's
    share per the Eq. (5) load-balance rule.  The node id is validated
    against the original chassis so fault specs naming a non-existent
    node fail loudly.
    """
    if not 0 <= node_id < spec.p:
        raise ValueError(f"node_id must be in [0, {spec.p}), got {node_id}")
    if spec.p < 2:
        raise ValueError(f"cannot fail the only node of {spec.name!r} (p={spec.p})")
    return dataclasses.replace(
        spec, p=spec.p - 1, name=f"{spec.name} (node {node_id} failed)"
    )


def compose(
    *transforms: Callable[[MachineSpec], MachineSpec],
) -> Callable[[MachineSpec], MachineSpec]:
    """One transform applying ``transforms`` left to right.

    Each argument is a single-argument spec transform (partially applied
    variants of the ``with_*`` helpers)::

        degraded = compose(
            lambda s: with_network_bandwidth(s, 1e9),
            lambda s: with_fpga_dram_bandwidth(s, 1.4e9),
        )
        spec = degraded(cray_xd1())

    Name suffixes accumulate in application order, so the resulting
    spec's name documents the full transformation chain.
    """

    def apply(spec: MachineSpec) -> MachineSpec:
        for transform in transforms:
            spec = transform(spec)
        return spec

    return apply


def with_sram_capacity(spec: MachineSpec, capacity_bytes: int) -> MachineSpec:
    """The same machine with a different per-node SRAM allocation."""
    if capacity_bytes < 1:
        raise ValueError(f"capacity must be >= 1 byte, got {capacity_bytes}")
    sram = dataclasses.replace(spec.node.sram, capacity_bytes=capacity_bytes)
    node = dataclasses.replace(spec.node, sram=sram)
    return dataclasses.replace(
        spec, node=node, name=f"{spec.name} (SRAM {capacity_bytes // 2**20} MB)"
    )
