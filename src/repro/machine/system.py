"""The whole reconfigurable computing system (Figure 1 of the paper).

:class:`MachineSpec` declaratively describes a machine -- p identical
nodes plus the interconnect -- and :class:`ReconfigurableSystem`
instantiates it on a fresh simulator with tracing enabled.  The class
also derives the paper's :class:`~repro.core.parameters.SystemParameters`
for a given (application kernel, FPGA design) pair, which is how every
experiment goes from "machine + design" to the analytic model.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Optional

from ..core.parameters import SystemParameters
from ..sim import Simulator, Trace
from .interconnect import Interconnect, NetworkSpec
from .node import ComputeNode, NodeSpec

__all__ = ["MachineSpec", "ReconfigurableSystem"]


@dataclass(frozen=True)
class MachineSpec:
    """A reconfigurable computing system: p identical nodes + network."""

    name: str
    p: int
    node: NodeSpec
    network: NetworkSpec

    def __post_init__(self) -> None:
        if self.p < 1:
            raise ValueError(f"p must be >= 1, got {self.p}")

    def parameters(
        self,
        kernel: str,
        design: Any,
        sram_bytes: Optional[int] = None,
    ) -> SystemParameters:
        """Derive Section 4.1 parameters for an application on this machine.

        ``kernel`` selects the processor's sustained rate; ``design`` (a
        synthesised FPGA design) supplies O_f, F_f and B_d.
        """
        b_d = min(8.0 * design.freq_hz, self.node.fpga.dram_link_bandwidth)
        return SystemParameters(
            p=self.p,
            o_f=design.ops_per_cycle,
            f_f=design.freq_hz,
            cpu_flops=self.node.processor.sustained_flops(kernel),
            b_d=b_d,
            b_n=self.network.bandwidth,
            f_p=self.node.processor.clock_hz,
            sram_bytes=sram_bytes if sram_bytes is not None else self.node.sram.capacity_bytes,
        )


class ReconfigurableSystem:
    """A live instance of a :class:`MachineSpec` on a simulator.

    ``node_specs`` optionally overrides the per-node hardware (length p),
    enabling heterogeneous chassis -- e.g. a partially upgraded system.
    The schedules read each node's rates through the node object, so a
    slower node simply takes longer and the imbalance becomes visible in
    the trace (see :mod:`repro.core.hetero` for the model-side fix).
    """

    def __init__(
        self,
        spec: MachineSpec,
        sim: Optional[Simulator] = None,
        trace: bool = True,
        node_specs: Optional[list[NodeSpec]] = None,
    ) -> None:
        self.spec = spec
        self.sim = sim if sim is not None else Simulator()
        if trace and self.sim.trace is None:
            self.sim.trace = Trace()
        if node_specs is not None and len(node_specs) != spec.p:
            raise ValueError(
                f"node_specs must have length p={spec.p}, got {len(node_specs)}"
            )
        per_node = node_specs if node_specs is not None else [spec.node] * spec.p
        self.nodes = [ComputeNode(self.sim, ns, i) for i, ns in enumerate(per_node)]
        self.network = Interconnect(self.sim, spec.network, spec.p)

    @property
    def p(self) -> int:
        return self.spec.p

    @property
    def trace(self) -> Optional[Trace]:
        return self.sim.trace

    def configure_fpgas(self, design_factory: Callable[[], Any]) -> None:
        """Load a fresh design instance onto every node's FPGA."""
        for node in self.nodes:
            node.configure_fpga(design_factory())

    def run(self, until: Optional[float] = None) -> float:
        """Advance the simulation; returns the final time."""
        return self.sim.run(until=until)

    # -- accounting -----------------------------------------------------------

    def total_cpu_flops(self) -> float:
        return sum(n.cpu_flops_done for n in self.nodes)

    def total_fpga_flops(self) -> float:
        return sum(n.fpga_flops_done for n in self.nodes)

    def total_flops(self) -> float:
        return self.total_cpu_flops() + self.total_fpga_flops()

    def gflops(self, elapsed: Optional[float] = None) -> float:
        """Sustained GFLOPS over ``elapsed`` (default: current sim time)."""
        elapsed = self.sim.now if elapsed is None else elapsed
        return 0.0 if elapsed <= 0 else self.total_flops() / elapsed / 1e9
