"""Simulated MPI layer (substrate).

Provides the communication patterns the paper's C+MPI implementation
uses, with wire timing from the simulated interconnect and the paper's
"communication is processor time" accounting (Section 4.3).
"""

from .comm import Communicator, RankView
from .message import Message, payload_bytes

__all__ = ["Communicator", "Message", "RankView", "payload_bytes"]
