"""A message-passing layer over the simulated interconnect.

The paper's implementations communicate with MPI; this module provides
the same communication patterns (blocking send/recv, bcast, scatter,
gather, barrier) as *simulation process generators* with correct timing:

* wire time comes from the :class:`~repro.machine.interconnect.
  Interconnect` (latency + bytes / B_n, link contention included);
* per Section 4.3 of the paper, communication time is CPU time -- the
  nodes "communicate through the processors", so sends and receives are
  called from (and block) a node's CPU process; for tracing they are
  recorded on per-node ``mpi{i}`` lanes (distinct from the exclusive
  ``cpu{i}`` compute lanes, because concurrent sends may ride the
  node's multiple links);
* message matching is by (source, destination, tag), FIFO per channel,
  like MPI's non-overtaking guarantee.

Usage from a per-node process::

    me = comm.view(rank)
    yield from me.send(dst, data, nbytes=...)
    data = yield from me.recv(src)
    block = yield from me.bcast(root, block_if_root)
"""

from __future__ import annotations

from typing import Any, Optional

from ..sim import Simulator, Store
from .message import Message, payload_bytes

__all__ = ["Communicator", "RankView"]


class Communicator:
    """A communicator spanning all p nodes of a system.

    Parameters
    ----------
    system:
        A :class:`~repro.machine.system.ReconfigurableSystem`; supplies
        the simulator, the interconnect and (for trace lanes) the nodes.
    """

    def __init__(self, system) -> None:
        self.system = system
        self.sim: Simulator = system.sim
        self.network = system.network
        self.size = system.p
        self._mailboxes: dict[tuple[int, int, Any], Store] = {}
        self._barrier_gen = 0
        self._barrier_count = 0
        self._barrier_event = None

    # -- plumbing -----------------------------------------------------------

    def _mailbox(self, src: int, dst: int, tag: Any) -> Store:
        key = (src, dst, tag)
        box = self._mailboxes.get(key)
        if box is None:
            box = Store(self.sim, name=f"mbox{src}->{dst}#{tag}")
            self._mailboxes[key] = box
        return box

    def _check_rank(self, rank: int) -> None:
        if not 0 <= rank < self.size:
            raise ValueError(f"rank {rank} out of range for communicator of size {self.size}")

    def view(self, rank: int) -> "RankView":
        """The communicator as seen from ``rank``."""
        self._check_rank(rank)
        return RankView(self, rank)

    # -- point-to-point --------------------------------------------------------

    def send(self, src: int, dst: int, data: Any = None, nbytes: Optional[int] = None, tag: Any = 0):
        """Process generator: blocking send of ``data`` from src to dst.

        ``nbytes`` defaults to :func:`~repro.mpi.message.payload_bytes`
        of the data.  The wire transfer occupies one egress link at src
        and one ingress link at dst; the call returns when the message
        is on the destination's queue.
        """
        self._check_rank(src)
        self._check_rank(dst)
        if src == dst:
            raise ValueError(f"rank {src} cannot send to itself")
        size = payload_bytes(data) if nbytes is None else int(nbytes)
        if size < 0:
            raise ValueError(f"negative message size: {size}")
        sent_at = self.sim.now
        # The label is only read by trace recording; skip the f-string on
        # untraced runs (one per message, visible at sweep message rates).
        label = f"mpi:{src}->{dst}" if self.sim.trace is not None else ""
        yield from self.network.send(src, dst, size, label=label)
        msg = Message(src, dst, tag, data, size, sent_at=sent_at, delivered_at=self.sim.now)
        yield self._mailbox(src, dst, tag).put(msg)
        if self.sim.trace is not None:
            # Communication is processor time (Sec. 4.3) but concurrent
            # sends may ride separate links, so it gets its own lane.
            self.sim.trace.record(
                f"mpi{src}", f"mpi:send->{dst}", sent_at, self.sim.now, nbytes=size
            )

    def recv(self, dst: int, src: int, tag: Any = 0):
        """Process generator: blocking receive; returns the payload."""
        self._check_rank(src)
        self._check_rank(dst)
        posted = self.sim.now
        msg: Message = yield self._mailbox(src, dst, tag).get()
        if self.sim.trace is not None:
            self.sim.trace.record(
                f"mpi{dst}", f"mpi:recv<-{src}", posted, self.sim.now, nbytes=msg.nbytes, wait=True
            )
        return msg.data

    # -- collectives -----------------------------------------------------------

    def bcast(self, rank: int, root: int, data: Any = None, nbytes: Optional[int] = None, tag: Any = "bcast"):
        """Process generator: broadcast from root; every rank calls this.

        The root's sends to the p-1 destinations are issued concurrently
        and ride the available egress links.  Returns the payload on
        every rank.
        """
        self._check_rank(rank)
        self._check_rank(root)
        if rank == root:
            sends = [
                self.sim.process(self.send(root, dst, data, nbytes=nbytes, tag=tag))
                for dst in range(self.size)
                if dst != root
            ]
            if sends:
                yield self.sim.all_of(sends)
            return data
        return (yield from self.recv(rank, root, tag=tag))

    def scatter(self, rank: int, root: int, chunks: Optional[list] = None, nbytes: Optional[int] = None, tag: Any = "scatter"):
        """Process generator: root deals ``chunks[i]`` to rank i.

        ``chunks`` must have length p on the root and is ignored elsewhere.
        Returns this rank's chunk.
        """
        self._check_rank(rank)
        self._check_rank(root)
        if rank == root:
            if chunks is None or len(chunks) != self.size:
                raise ValueError(f"root must supply {self.size} chunks")
            sends = [
                self.sim.process(
                    self.send(root, dst, chunks[dst], nbytes=nbytes, tag=tag)
                )
                for dst in range(self.size)
                if dst != root
            ]
            if sends:
                yield self.sim.all_of(sends)
            return chunks[root]
        return (yield from self.recv(rank, root, tag=tag))

    def gather(self, rank: int, root: int, data: Any = None, nbytes: Optional[int] = None, tag: Any = "gather"):
        """Process generator: root collects one item per rank.

        Returns the list (rank order) on root, ``None`` elsewhere.
        """
        self._check_rank(rank)
        self._check_rank(root)
        if rank == root:
            out: list[Any] = [None] * self.size
            out[root] = data
            recvs = [
                self.sim.process(self.recv(root, src, tag=tag))
                for src in range(self.size)
                if src != root
            ]
            results = yield self.sim.all_of(recvs)
            srcs = [s for s in range(self.size) if s != root]
            for src, proc in zip(srcs, recvs):
                out[src] = results[proc]
            return out
        yield from self.send(rank, root, data, nbytes=nbytes, tag=tag)
        return None

    def reduce(self, rank: int, root: int, data: Any, op=None, nbytes: Optional[int] = None, tag: Any = "reduce"):
        """Process generator: combine one item per rank at the root.

        ``op`` combines two payloads (default: addition).  Returns the
        reduction on root, ``None`` elsewhere.  Wire pattern: a flat
        gather (each rank one message to root), matching how the paper's
        programs would call MPI_Reduce at these message sizes.
        """
        gathered = yield from self.gather(rank, root, data, nbytes=nbytes, tag=tag)
        if rank != root:
            return None
        combine = op if op is not None else (lambda a, b: a + b)
        acc = gathered[0]
        for item in gathered[1:]:
            acc = combine(acc, item)
        return acc

    def allreduce(self, rank: int, data: Any, op=None, nbytes: Optional[int] = None, tag: Any = "allreduce"):
        """Process generator: reduce at rank 0, then broadcast the result."""
        reduced = yield from self.reduce(rank, 0, data, op=op, nbytes=nbytes, tag=(tag, "r"))
        return (yield from self.bcast(rank, 0, reduced, nbytes=nbytes, tag=(tag, "b")))

    def allgather(self, rank: int, data: Any, nbytes: Optional[int] = None, tag: Any = "allgather"):
        """Process generator: every rank ends with the full rank-ordered list.

        Implemented as a ring pass (p-1 steps), the bandwidth-optimal
        pattern the ring-MM application also uses.
        """
        out: list[Any] = [None] * self.size
        out[rank] = data
        right = (rank + 1) % self.size
        left = (rank - 1) % self.size
        carried = (rank, data)
        for step in range(self.size - 1):
            send_proc = self.sim.process(
                self.send(rank, right, carried, nbytes=nbytes, tag=(tag, step))
            )
            received = yield from self.recv(rank, left, tag=(tag, step))
            yield send_proc
            src, payload = received
            out[src] = payload
            carried = received
        return out

    def alltoall(self, rank: int, chunks: list, nbytes: Optional[int] = None, tag: Any = "alltoall"):
        """Process generator: personalised exchange; returns this rank's
        column of the (conceptual) p x p chunk matrix."""
        if chunks is None or len(chunks) != self.size:
            raise ValueError(f"each rank must supply {self.size} chunks")
        sends = [
            self.sim.process(self.send(rank, dst, chunks[dst], nbytes=nbytes, tag=(tag, rank)))
            for dst in range(self.size)
            if dst != rank
        ]
        out: list[Any] = [None] * self.size
        out[rank] = chunks[rank]
        for src in range(self.size):
            if src != rank:
                out[src] = yield from self.recv(rank, src, tag=(tag, src))
        if sends:
            yield self.sim.all_of(sends)
        return out

    def barrier(self, rank: int):
        """Process generator: block until all p ranks have arrived."""
        self._check_rank(rank)
        if self._barrier_event is None or self._barrier_event.processed:
            self._barrier_event = self.sim.event(name=f"barrier{self._barrier_gen}")
            self._barrier_gen += 1
            self._barrier_count = 0
        event = self._barrier_event
        self._barrier_count += 1
        if self._barrier_count == self.size:
            event.succeed(self.sim.now)
        yield event


class RankView:
    """The communicator bound to one rank -- the mpi4py-style interface.

    All methods are process generators; use ``yield from`` inside the
    rank's CPU process.
    """

    def __init__(self, comm: Communicator, rank: int) -> None:
        self.comm = comm
        self.rank = rank

    @property
    def size(self) -> int:
        return self.comm.size

    @property
    def sim(self) -> Simulator:
        return self.comm.sim

    def send(self, dst: int, data: Any = None, nbytes: Optional[int] = None, tag: Any = 0):
        """Blocking send to ``dst``; see :meth:`Communicator.send`."""
        return self.comm.send(self.rank, dst, data, nbytes=nbytes, tag=tag)

    def recv(self, src: int, tag: Any = 0):
        """Blocking receive from ``src``; see :meth:`Communicator.recv`."""
        return self.comm.recv(self.rank, src, tag=tag)

    def bcast(self, root: int, data: Any = None, nbytes: Optional[int] = None, tag: Any = "bcast"):
        """Broadcast from ``root``; returns the payload on every rank."""
        return self.comm.bcast(self.rank, root, data, nbytes=nbytes, tag=tag)

    def scatter(self, root: int, chunks: Optional[list] = None, nbytes: Optional[int] = None, tag: Any = "scatter"):
        """Scatter from ``root``; returns this rank's chunk."""
        return self.comm.scatter(self.rank, root, chunks, nbytes=nbytes, tag=tag)

    def gather(self, root: int, data: Any = None, nbytes: Optional[int] = None, tag: Any = "gather"):
        """Gather to ``root``; returns the list on root, None elsewhere."""
        return self.comm.gather(self.rank, root, data, nbytes=nbytes, tag=tag)

    def reduce(self, root: int, data: Any, op=None, nbytes: Optional[int] = None, tag: Any = "reduce"):
        """Reduce to ``root``; returns the combined value there."""
        return self.comm.reduce(self.rank, root, data, op=op, nbytes=nbytes, tag=tag)

    def allreduce(self, data: Any, op=None, nbytes: Optional[int] = None, tag: Any = "allreduce"):
        """Reduce everywhere; every rank returns the combined value."""
        return self.comm.allreduce(self.rank, data, op=op, nbytes=nbytes, tag=tag)

    def allgather(self, data: Any, nbytes: Optional[int] = None, tag: Any = "allgather"):
        """Ring allgather; every rank returns the rank-ordered list."""
        return self.comm.allgather(self.rank, data, nbytes=nbytes, tag=tag)

    def alltoall(self, chunks: list, nbytes: Optional[int] = None, tag: Any = "alltoall"):
        """Personalised all-to-all exchange."""
        return self.comm.alltoall(self.rank, chunks, nbytes=nbytes, tag=tag)

    def barrier(self):
        """Block until all ranks arrive."""
        return self.comm.barrier(self.rank)
