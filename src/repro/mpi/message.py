"""Message envelope and payload sizing for the simulated MPI layer."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

import numpy as np

__all__ = ["Message", "payload_bytes"]


def payload_bytes(data: Any, word_bytes: int = 8) -> int:
    """Wire size of a payload.

    NumPy arrays report their true buffer size; scalars cost one word;
    ``None`` (pure synchronisation) costs zero; anything else costs one
    word per element if sized, else one word.  Timing-mode schedules
    usually pass explicit byte counts instead.
    """
    if data is None:
        return 0
    if isinstance(data, np.ndarray):
        return int(data.nbytes)
    if isinstance(data, (int, float, complex, np.generic)):
        return word_bytes
    try:
        return word_bytes * len(data)  # type: ignore[arg-type]
    except TypeError:
        return word_bytes


@dataclass(frozen=True, slots=True)
class Message:
    """One point-to-point message in flight or delivered.

    Slotted: one instance per simulated message makes the per-instance
    ``__dict__`` measurable in sweep profiles.
    """

    src: int
    dst: int
    tag: Any
    data: Any
    nbytes: int
    sent_at: float = field(default=0.0, compare=False)
    delivered_at: float = field(default=0.0, compare=False)
