"""Unified observability layer: metrics, spans, exporters, overlap accounting.

The instrumentation substrate for the whole reproduction:

* :mod:`repro.obs.metrics` -- a process-wide :class:`MetricsRegistry`
  of labelled counters / gauges / histograms (:data:`REGISTRY`);
* :mod:`repro.obs.tracing` -- wall-clock :class:`Span`/:class:`Tracer`
  records for the harness side, with a zero-overhead disabled mode;
* :mod:`repro.obs.export` -- Chrome ``trace_event`` JSON (open in
  ``chrome://tracing`` or Perfetto), metrics JSON-lines, and plain-text
  summaries;
* :mod:`repro.obs.overlap` -- reconciliation of simulated runs against
  the model's ``max{T_tp, T_tf}`` prediction (``overlap_efficiency``,
  the paper's ">85% of prediction" claim as a first-class metric).

This package imports nothing from the rest of :mod:`repro`, so any
layer -- the DES core's monitor, the partition solvers, the sweep
executor -- can depend on it without cycles.  Schema documentation
lives in ``docs/observability.md``.
"""

from .export import (
    METRICS_SCHEMA,
    chrome_trace_events,
    metrics_summary,
    read_metrics_jsonl,
    write_chrome_trace,
    write_metrics_jsonl,
)
from .metrics import REGISTRY, Counter, Gauge, Histogram, MetricsRegistry, get_registry
from .overlap import OverlapReport, busy_by_resource, reconcile
from .tracing import NULL_TRACER, NullTracer, Span, Tracer, get_tracer, set_tracer

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "METRICS_SCHEMA",
    "MetricsRegistry",
    "NULL_TRACER",
    "NullTracer",
    "OverlapReport",
    "REGISTRY",
    "Span",
    "Tracer",
    "busy_by_resource",
    "chrome_trace_events",
    "get_registry",
    "get_tracer",
    "metrics_summary",
    "read_metrics_jsonl",
    "reconcile",
    "set_tracer",
    "write_chrome_trace",
    "write_metrics_jsonl",
]
