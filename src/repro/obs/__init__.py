"""Unified observability layer: metrics, spans, exporters, overlap accounting.

The instrumentation substrate for the whole reproduction:

* :mod:`repro.obs.metrics` -- a process-wide :class:`MetricsRegistry`
  of labelled counters / gauges / histograms (:data:`REGISTRY`);
* :mod:`repro.obs.tracing` -- wall-clock :class:`Span`/:class:`Tracer`
  records for the harness side, with a zero-overhead disabled mode;
* :mod:`repro.obs.export` -- Chrome ``trace_event`` JSON (open in
  ``chrome://tracing`` or Perfetto), metrics JSON-lines, and plain-text
  summaries;
* :mod:`repro.obs.overlap` -- reconciliation of simulated runs against
  the model's ``max{T_tp, T_tf}`` prediction (``overlap_efficiency``,
  the paper's ">85% of prediction" claim as a first-class metric);
* :mod:`repro.obs.ledger` -- the append-only, schema-versioned run
  ledger (one manifest line per instrumented run);
* :mod:`repro.obs.fidelity` -- cross-run prediction-error analysis over
  the ledger (drift detection, band gating, entry diffing);
* :mod:`repro.obs.critical_path` -- attribution of a simulated makespan
  to resource segments (which Eq. (1)-(6) term bound the run);
* :mod:`repro.obs.explain` -- paired-trace regression explanation:
  diff two critical paths into a blame-ranked ``explain`` manifest
  (which lane grew, which model term it loads onto);
* :mod:`repro.obs.dashboard` -- ASCII / self-contained-HTML rendering
  of fidelity trends and bottleneck attributions;
* :mod:`repro.obs.console` -- the BrokenPipe-safe CLI writer.

This package imports nothing from the rest of :mod:`repro`, so any
layer -- the DES core's monitor, the partition solvers, the sweep
executor -- can depend on it without cycles.  Schema documentation
lives in ``docs/observability.md``.
"""

from .console import SafeWriter, safe_print
from .critical_path import (
    CriticalPathReport,
    classify_label,
    critical_path,
    from_chrome_trace,
)
from .dashboard import render_ascii, render_html
from .explain import (
    DEFAULT_MIN_DELTA,
    EXPLAIN_SCHEMA,
    blame_resources,
    build_explain,
    lane_deltas,
    phase_deltas,
    render_explain,
)
from .export import (
    METRICS_SCHEMA,
    chrome_trace_events,
    metrics_summary,
    read_metrics_jsonl,
    write_chrome_trace,
    write_metrics_jsonl,
)
from .fidelity import (
    DEFAULT_BAND,
    FidelityStat,
    check as fidelity_check,
    diff_entries,
    fidelity_report,
    render_diff,
)
from .ledger import (
    LEDGER_SCHEMA,
    LedgerError,
    RunLedger,
    bench_entry,
    campaign_check_entry,
    campaign_entry,
    current_git_sha,
    design_run_entry,
    entries_from_metrics,
    experiments_entry,
    explain_entry,
    fault_run_entry,
    service_entry,
    tune_entry,
)
from .metrics import REGISTRY, Counter, Gauge, Histogram, MetricsRegistry, get_registry
from .overlap import OverlapReport, busy_by_resource, reconcile
from .tracing import NULL_TRACER, NullTracer, Span, Tracer, get_tracer, set_tracer

__all__ = [
    "Counter",
    "CriticalPathReport",
    "DEFAULT_BAND",
    "DEFAULT_MIN_DELTA",
    "EXPLAIN_SCHEMA",
    "FidelityStat",
    "Gauge",
    "Histogram",
    "LEDGER_SCHEMA",
    "LedgerError",
    "METRICS_SCHEMA",
    "MetricsRegistry",
    "NULL_TRACER",
    "NullTracer",
    "OverlapReport",
    "REGISTRY",
    "RunLedger",
    "SafeWriter",
    "Span",
    "Tracer",
    "bench_entry",
    "blame_resources",
    "build_explain",
    "busy_by_resource",
    "campaign_check_entry",
    "campaign_entry",
    "chrome_trace_events",
    "classify_label",
    "critical_path",
    "current_git_sha",
    "design_run_entry",
    "diff_entries",
    "entries_from_metrics",
    "experiments_entry",
    "explain_entry",
    "fault_run_entry",
    "fidelity_check",
    "fidelity_report",
    "from_chrome_trace",
    "get_registry",
    "get_tracer",
    "lane_deltas",
    "metrics_summary",
    "phase_deltas",
    "read_metrics_jsonl",
    "reconcile",
    "render_ascii",
    "render_diff",
    "render_explain",
    "render_html",
    "safe_print",
    "service_entry",
    "set_tracer",
    "tune_entry",
    "write_chrome_trace",
    "write_metrics_jsonl",
]
