"""A BrokenPipe-safe console writer for CLI output.

``repro-xd1 ... | head`` closes the pipe mid-output; a bare ``print``
then raises :class:`BrokenPipeError`, and even a caught one resurfaces
at interpreter exit when stdout's buffer is flushed.  Every CLI print
goes through one :class:`SafeWriter` instead: the first EPIPE marks the
writer dead, points the underlying stdout file descriptor at
``/dev/null`` (so the exit-time flush is silent), and every later write
becomes a no-op.  Commands keep their exit codes; only the output stops.
"""

from __future__ import annotations

import errno
import os
import sys
from typing import Any, IO, Optional

__all__ = ["SafeWriter", "safe_print"]


class SafeWriter:
    """``print`` that survives a closed stdout pipe.

    ``stream=None`` (the default) resolves ``sys.stdout`` per call, so
    pytest's ``capsys`` and test-installed streams are honoured.  A
    writer constructed around an explicit stream never touches process
    file descriptors -- only the default writer redirects the real
    stdout to ``/dev/null`` once the pipe breaks.
    """

    def __init__(self, stream: Optional[IO[str]] = None) -> None:
        self._stream = stream
        self.dead = False

    @property
    def stream(self) -> IO[str]:
        return self._stream if self._stream is not None else sys.stdout

    def __call__(self, *args: Any, **kwargs: Any) -> None:
        if self.dead:
            return
        kwargs.setdefault("file", self.stream)
        try:
            print(*args, **kwargs)
        except BrokenPipeError:
            self._die()
        except OSError as exc:  # EPIPE surfaces as plain OSError on some streams
            if exc.errno not in (errno.EPIPE, errno.EINVAL):
                raise
            self._die()

    def reset(self) -> None:
        """Revive a dead writer (per-invocation CLI isolation in tests)."""
        self.dead = False

    def _die(self) -> None:
        self.dead = True
        if self._stream is not None:
            return
        # Silence the interpreter's exit-time stdout flush as well.
        try:
            os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        except (OSError, ValueError):
            pass  # stdout has no usable fd (e.g. captured); nothing to silence


#: The process-wide default writer; the CLI routes every print through it.
safe_print = SafeWriter()
