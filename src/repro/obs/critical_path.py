"""Critical-path attribution: explain a makespan as resource segments.

The overlap accounting (:mod:`repro.obs.overlap`) *measures* how far a
simulated run lands from the ``max{T_tp, T_tf}`` bound; this module
*explains* the gap.  Walking backwards from the last interval to finish,
it decomposes the makespan into a chain of trace segments -- at every
point in time the chain follows the activity that was still running --
and rolls the chain up by resource class:

* ``cpu``   -- the processor path (``T_p`` terms of Eqs. 1/2/4/6),
* ``fpga``  -- FPGA compute (``T_f`` / the ``b_f b^2 / (k F_f)`` terms),
* ``dram``  -- FPGA<->DRAM staging (the ``D_f / B_d`` term of Eq. 1),
* ``net``   -- network transfers (the ``D_p / B_n`` term of Eq. 1),
* ``sram`` / ``mpi`` -- on-chip staging and coordination,
* ``idle``  -- gaps no lane covers (dependency stalls).

The dominant class of the chain names the resource that bound the run,
which is the attribution style of the FPGA/CPU co-design literature
(hls4ml/Soltaniyeh-type "where did the time go" breakdowns), computed
automatically from the simulation trace.

Input is duck-typed: anything with an ``intervals`` sequence of objects
carrying ``category`` / ``label`` / ``start`` / ``end`` (i.e.
:class:`repro.sim.trace.Trace`), a plain record list, or a Chrome trace
file previously written by :func:`repro.obs.export.write_chrome_trace`.
"""

from __future__ import annotations

import heapq
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterable, Optional

from .overlap import RESOURCE_PREFIXES

__all__ = [
    "ChainSegment",
    "CriticalPathReport",
    "critical_path",
    "classify_label",
    "from_chrome_trace",
    "resource_of_lane",
    "MODEL_TERMS",
]

#: Resource class -> the model term it realises (Eq. numbers from the paper).
MODEL_TERMS = {
    "cpu": "processor path T_p (Eqs. 1, 2, 4, 6)",
    "fpga": "FPGA compute T_f (Eqs. 1, 2, 4, 6)",
    "dram": "FPGA-DRAM staging D_f/B_d (Eq. 1)",
    "net": "network transfer D_p/B_n (Eq. 1)",
    "sram": "SRAM staging D_f/B_m (Eq. 1)",
    "mpi": "MPI coordination",
    "idle": "dependency stall (no lane busy)",
    "other": "unclassified lane",
}

#: Label prefixes -> activity classes (shared with
#: :func:`repro.analysis.bottleneck.analyse_trace`, which imports this
#: table so host-side and ledger-side classification agree).
LABEL_CLASSES = (
    ("mpi:", "communication"),
    ("stage", "staging"),
    ("opMS", "compute"),
    ("op", "compute"),
    ("gemm", "compute"),
    ("dgetrf", "compute"),
)


def classify_label(label: str) -> str:
    """Activity class (`compute`/`communication`/`staging`) of a label."""
    for prefix, cls in LABEL_CLASSES:
        if label.startswith(prefix):
            return cls
    return "compute"


def resource_of_lane(lane: str) -> str:
    """Resource class of a trace lane (``cpu3`` -> ``cpu``)."""
    for prefix in RESOURCE_PREFIXES:
        if lane.startswith(prefix):
            return prefix
    return "other"


@dataclass(frozen=True)
class ChainSegment:
    """One maximal stretch of the critical path on a single resource."""

    resource: str  # cpu | fpga | dram | sram | mpi | net | idle | other
    lane: str  # the concrete lane ("" for idle)
    label: str  # label of the last interval merged into the segment
    start: float
    end: float

    @property
    def duration(self) -> float:
        return self.end - self.start

    def to_dict(self) -> dict[str, Any]:
        return {
            "resource": self.resource,
            "lane": self.lane,
            "label": self.label,
            "start": self.start,
            "end": self.end,
            "duration": self.duration,
        }


@dataclass
class CriticalPathReport:
    """The makespan decomposed into a chain of resource segments."""

    makespan: float
    segments: list[ChainSegment] = field(default_factory=list)

    @property
    def by_resource(self) -> dict[str, float]:
        """Chain seconds per resource class, descending."""
        totals: dict[str, float] = {}
        for seg in self.segments:
            totals[seg.resource] = totals.get(seg.resource, 0.0) + seg.duration
        return dict(sorted(totals.items(), key=lambda kv: -kv[1]))

    @property
    def by_phase(self) -> dict[str, float]:
        """Chain seconds per activity class, descending.

        Labels classify via :func:`classify_label` (compute /
        communication / staging); idle chain segments -- time no lane
        covered -- surface as ``stall``.  The phase view of the same
        chain :attr:`by_resource` rolls up by lane class, so the two
        always sum to the same total.
        """
        totals: dict[str, float] = {}
        for seg in self.segments:
            cls = "stall" if seg.resource == "idle" else classify_label(seg.label)
            totals[cls] = totals.get(cls, 0.0) + seg.duration
        return dict(sorted(totals.items(), key=lambda kv: -kv[1]))

    @property
    def dominant_resource(self) -> str:
        """The resource class carrying the most critical-path time."""
        totals = self.by_resource
        busy = {res: t for res, t in totals.items() if res != "idle"}
        if busy:
            return next(iter(busy))
        return next(iter(totals), "idle")

    @property
    def dominant_fraction(self) -> float:
        """Fraction of the makespan on the dominant resource."""
        if self.makespan <= 0:
            return 0.0
        return self.by_resource.get(self.dominant_resource, 0.0) / self.makespan

    @property
    def coverage(self) -> float:
        """Fraction of the makespan attributed to busy lanes (1 - idle)."""
        if self.makespan <= 0:
            return 0.0
        idle = self.by_resource.get("idle", 0.0)
        return max(0.0, 1.0 - idle / self.makespan)

    def to_dict(self, top: int = 8) -> dict[str, Any]:
        """JSON-able summary (ledger ``critical_path`` field).

        ``top`` caps the stored segments to the longest ones so ledger
        lines stay small; totals always cover the whole chain.
        """
        longest = sorted(self.segments, key=lambda s: -s.duration)[:top]
        return {
            "makespan": self.makespan,
            "dominant": self.dominant_resource,
            "dominant_fraction": self.dominant_fraction,
            "coverage": self.coverage,
            "by_resource": self.by_resource,
            "by_phase": self.by_phase,
            "segments": len(self.segments),
            "top_segments": [seg.to_dict() for seg in longest],
        }

    def render(self) -> str:
        """Human-readable attribution table tying classes to model terms."""
        lines = [f"critical path over {self.makespan:.4g}s ({len(self.segments)} segments):"]
        for res, total in self.by_resource.items():
            share = total / self.makespan if self.makespan > 0 else 0.0
            term = MODEL_TERMS.get(res, "")
            lines.append(f"  {res:<5} {total:>10.4g}s  {100 * share:5.1f}%  {term}")
        lines.append(
            f"dominant resource: {self.dominant_resource} "
            f"({100 * self.dominant_fraction:.1f}% of the makespan)"
        )
        return "\n".join(lines)


@dataclass(frozen=True)
class _Seg:
    """Normalised input interval (sortable, minimal)."""

    start: float
    end: float
    lane: str
    label: str


def _normalise(trace_or_intervals: Any) -> list[_Seg]:
    intervals = getattr(trace_or_intervals, "intervals", trace_or_intervals)
    segs = []
    for iv in intervals:
        if isinstance(iv, dict):
            start, end = float(iv["start"]), float(iv["end"])
            lane, label = str(iv.get("category", "")), str(iv.get("label", ""))
        else:
            start, end = float(iv.start), float(iv.end)
            lane, label = str(iv.category), str(iv.label)
        if end > start:
            segs.append(_Seg(start, end, lane, label))
    return segs


#: Resource preference when several intervals cover the same instant.
#: Work lanes (compute, then transfers) win over ``mpi`` -- a blocking
#: ``mpi:recv`` spans the whole wait for its producer, and attributing
#: that span to "mpi" would hide the producer actually gating the run
#: (e.g. LU's serial panel path on the owner CPU).
_RESOURCE_PRIORITY = {"cpu": 0, "fpga": 0, "dram": 1, "net": 1, "sram": 1, "other": 2, "mpi": 3}


def critical_path(
    trace_or_intervals: Any,
    makespan: Optional[float] = None,
    eps: float = 1e-12,
) -> CriticalPathReport:
    """Extract the critical chain of a trace.

    Walks backwards from ``makespan`` (default: the latest interval
    end).  At time ``t`` the chain continues on an interval still
    running at ``t`` -- preferring work lanes over MPI coordination
    waits (see ``_RESOURCE_PRIORITY``), and within a class the
    *earliest* start, i.e. the activity that had been running longest
    without a break -- then jumps to that interval's start.  Time no
    interval covers becomes an ``idle`` segment (a dependency stall).
    Runs in ``O(n log n)`` over the interval count.
    """
    segs = _normalise(trace_or_intervals)
    if not segs:
        return CriticalPathReport(makespan=0.0)
    end = max(s.end for s in segs) if makespan is None else float(makespan)
    origin = min(s.start for s in segs)
    # Admit intervals in decreasing end order; keep admitted ones in
    # per-priority min-heaps by start.  An admitted interval has
    # end >= t forever after (t only decreases), so a heap top with
    # start < t covers t.
    by_end = sorted(segs, key=lambda s: (-s.end, s.start, s.lane))
    heaps: dict[int, list[tuple[float, float, str, str]]] = {}
    i = 0
    t = end
    chain: list[ChainSegment] = []
    while t > origin + eps:
        while i < len(by_end) and by_end[i].end >= t - eps:
            s = by_end[i]
            prio = _RESOURCE_PRIORITY.get(resource_of_lane(s.lane), 2)
            heapq.heappush(heaps.setdefault(prio, []), (s.start, -s.end, s.lane, s.label))
            i += 1
        chosen = None
        for prio in sorted(heaps):
            heap = heaps[prio]
            while heap and heap[0][0] >= t - eps:
                heapq.heappop(heap)  # starts at/after t: cannot cover t (or any later t)
            if heap:
                chosen = heapq.heappop(heap)
                break
        if chosen is not None:
            start, _, lane, label = chosen
            chain.append(ChainSegment(resource_of_lane(lane), lane, label, start, t))
            t = start
        else:
            # Nobody covers t: idle back to the next interval end (or origin).
            nxt = by_end[i].end if i < len(by_end) else origin
            chain.append(ChainSegment("idle", "", "", nxt, t))
            t = nxt
    chain.reverse()
    return CriticalPathReport(makespan=end - origin, segments=_merge(chain))


def _merge(chain: list[ChainSegment]) -> list[ChainSegment]:
    """Fuse adjacent chain segments on the same resource class."""
    merged: list[ChainSegment] = []
    for seg in chain:
        if merged and merged[-1].resource == seg.resource and abs(merged[-1].end - seg.start) < 1e-9:
            prev = merged[-1]
            merged[-1] = ChainSegment(prev.resource, prev.lane, seg.label, prev.start, seg.end)
        else:
            merged.append(seg)
    return merged


# -------------------------------------------------- Chrome trace loading


def from_chrome_trace(path: str | Path) -> list[dict[str, Any]]:
    """Simulation intervals from a Chrome trace file, as plain records.

    Reads a file written by :func:`repro.obs.export.write_chrome_trace`:
    lane names come from the ``thread_name`` metadata events, complete
    (``"ph": "X"``) events on the node processes (pid >= 1) become
    ``{"category", "label", "start", "end"}`` records in seconds.
    Harness wall-clock spans (pid 0) are excluded -- the critical path
    is a simulated-time notion.  Feed the result to
    :func:`critical_path`.
    """
    doc = json.loads(Path(path).read_text(encoding="utf-8"))
    events: Iterable[dict[str, Any]] = doc.get("traceEvents", doc if isinstance(doc, list) else [])
    lanes: dict[tuple[int, int], str] = {}
    for ev in events:
        if ev.get("ph") == "M" and ev.get("name") == "thread_name" and "tid" in ev:
            lanes[(ev["pid"], ev["tid"])] = ev.get("args", {}).get("name", "")
    records = []
    for ev in events:
        if ev.get("ph") != "X" or ev.get("pid", 0) < 1:
            continue
        start = ev["ts"] / 1e6
        records.append(
            {
                "category": lanes.get((ev["pid"], ev.get("tid", 0)), f"pid{ev['pid']}"),
                "label": ev.get("name", ""),
                "start": start,
                "end": start + ev.get("dur", 0.0) / 1e6,
            }
        )
    return records
