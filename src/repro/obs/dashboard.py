"""Dashboard rendering for the model-fidelity observatory.

Two renderers over the same ledger content:

* :func:`render_ascii` -- a terminal/CI-log view: per app x preset
  fidelity trend (latest / mean / range / drift plus a text sparkline),
  the latest critical-path attribution per app, the latest resilience
  outcome per fault scenario (``fault_run`` entries), and the campaign
  panel: per-cell makespan distributions with drift arrows against the
  previous campaign plus the latest statistical check verdicts
  (``campaign`` / ``campaign_check`` entries), the latest regression
  explanation per cell (``explain`` entries: blame-ranked lane deltas
  with their model terms), the newest campaign's worker telemetry
  (per-worker busy bars, queue waits, stragglers, cache hit rate), and
  the guided-tuning panel: the latest ``tune`` entry per app x preset
  with its incumbent, DES-eval savings and Pareto front;
* :func:`render_html` -- a self-contained HTML page (inline CSS + SVG,
  no external assets or scripts) with the same content: a fidelity
  table with trend sparklines, per-resource critical-path bars, the
  resilience table, the campaign distribution / verdict / explain /
  worker tables, and the guided-tuning Pareto-front tables.

Both are pure functions of the ledger entries so tests can pin them;
the CLI front-end is ``repro-xd1 obs dashboard``.
"""

from __future__ import annotations

from html import escape
from typing import Any, Optional

from .critical_path import MODEL_TERMS
from .fidelity import DEFAULT_BAND, FidelityStat, fidelity_report

__all__ = ["render_ascii", "render_html", "text_sparkline"]

#: Text sparkline levels, low to high (ASCII-safe for CI logs).
_SPARK_LEVELS = " .:-=+*#@"


def text_sparkline(values: list[float], width: int = 24) -> str:
    """An ASCII sparkline of a series (newest values right-aligned)."""
    if not values:
        return ""
    tail = values[-width:]
    lo, hi = min(tail), max(tail)
    span = hi - lo
    if span <= 0:
        return _SPARK_LEVELS[len(_SPARK_LEVELS) // 2] * len(tail)
    top = len(_SPARK_LEVELS) - 1
    return "".join(_SPARK_LEVELS[round((v - lo) / span * top)] for v in tail)


def _latest_critical_paths(entries: list[dict[str, Any]]) -> dict[tuple[str, str], dict]:
    """Newest ``critical_path`` summary per (app, preset)."""
    out: dict[tuple[str, str], dict] = {}
    for entry in entries:
        cp = entry.get("critical_path")
        if entry.get("kind") == "design_run" and cp:
            out[(str(entry.get("app")), str(entry.get("preset")))] = cp
    return out


def _latest_fault_runs(entries: list[dict[str, Any]]) -> dict[tuple[str, str, str], dict]:
    """Newest ``fault_run`` manifest per (app, scenario, policy)."""
    out: dict[tuple[str, str, str], dict] = {}
    for entry in entries:
        if entry.get("kind") != "fault_run":
            continue
        scenario = entry.get("scenario") or {}
        key = (
            str(entry.get("app")),
            str(scenario.get("name", "?")),
            str(entry.get("policy")),
        )
        out[key] = entry
    return out


def _campaign_series(
    entries: list[dict[str, Any]],
) -> dict[str, tuple[dict, Optional[dict]]]:
    """(latest, previous) ``campaign`` entry per preset, in ledger order."""
    by_preset: dict[str, list[dict]] = {}
    for entry in entries:
        if entry.get("kind") == "campaign" and isinstance(entry.get("cells"), dict):
            by_preset.setdefault(str(entry.get("preset")), []).append(entry)
    return {
        preset: (runs[-1], runs[-2] if len(runs) > 1 else None)
        for preset, runs in by_preset.items()
    }


def _latest_campaign_check(entries: list[dict[str, Any]]) -> Optional[dict]:
    """The newest ``campaign_check`` entry, if any."""
    latest = None
    for entry in entries:
        if entry.get("kind") == "campaign_check":
            latest = entry
    return latest


def _latest_explains(entries: list[dict[str, Any]]) -> dict[str, dict]:
    """Newest ``explain`` entry per cell (schema 5), in ledger order."""
    out: dict[str, dict] = {}
    for entry in entries:
        if entry.get("kind") == "explain" and entry.get("cell"):
            out[str(entry["cell"])] = entry
    return out


def _latest_worker_telemetry(entries: list[dict[str, Any]]) -> Optional[dict]:
    """The newest ``campaign`` entry's ``workers`` telemetry block."""
    latest = None
    for entry in entries:
        if entry.get("kind") == "campaign" and isinstance(entry.get("workers"), dict):
            latest = entry["workers"]
    return latest


def _latest_tunes(entries: list[dict[str, Any]]) -> dict[tuple[str, str], dict]:
    """Newest ``tune`` entry per (app, preset) (schema 6), in ledger order."""
    out: dict[tuple[str, str], dict] = {}
    for entry in entries:
        if entry.get("kind") == "tune" and entry.get("incumbent"):
            out[(str(entry.get("app")), str(entry.get("preset")))] = entry
    return out


def _tune_point_label(point: dict[str, Any]) -> str:
    return " ".join(f"{k}={point[k]}" for k in sorted(point))


def _service_summary(entries: list[dict[str, Any]]) -> Optional[dict[str, Any]]:
    """The ``service`` entries (schema 7) folded into a panel summary.

    Returns None when the ledger holds no service entries; otherwise a
    dict with per-outcome counts (computed / cache / failed), per-kind
    counts, total in-flight dedups, and the most recent jobs in ledger
    order (newest last).
    """
    jobs = [e for e in entries if e.get("kind") == "service"]
    if not jobs:
        return None
    outcomes = {"computed": 0, "cache": 0, "failed": 0}
    kinds: dict[str, int] = {}
    deduped = 0
    for entry in jobs:
        outcomes[str(entry.get("outcome"))] = outcomes.get(str(entry.get("outcome")), 0) + 1
        kind = str(entry.get("job_kind", "?"))
        kinds[kind] = kinds.get(kind, 0) + 1
        deduped += int(entry.get("dedup_count") or 0)
    return {"jobs": jobs, "outcomes": outcomes, "kinds": kinds, "deduped": deduped}


def _cell_drift(cell: dict, prev_cell: Optional[dict]) -> Optional[float]:
    """Relative median shift of a cell vs the previous campaign's cell."""
    if not prev_cell:
        return None
    cur = (cell.get("makespan") or {}).get("median")
    prev = (prev_cell.get("makespan") or {}).get("median")
    if cur is None or not prev:
        return None
    return (cur - prev) / prev


# ------------------------------------------------------------------ ASCII


def render_ascii(entries: list[dict[str, Any]], band: float = DEFAULT_BAND) -> str:
    """The terminal dashboard: fidelity trends + dominant bottlenecks."""
    stats = fidelity_report(entries, band=band)
    lines = [
        "model-fidelity observatory",
        f"  ledger entries: {len(entries)}  |  band: overlap_efficiency >= {band:.2f}",
        "",
        "fidelity (predicted max{T_tp, T_tf} vs simulated makespan):",
    ]
    if not stats:
        lines.append("  (no design_run entries yet -- record some runs first)")
    for st in stats:
        status = "ok   " if st.latest >= band else "BELOW"
        lines.append(
            f"  [{status}] {st.app}@{st.preset:<6} latest {st.latest:.4f}  "
            f"mean {st.mean:.4f}  range [{st.minimum:.4f}, {st.maximum:.4f}]  "
            f"drift {st.drift:+.4f}  n={st.count}  |{text_sparkline(st.efficiencies)}|"
        )
    cps = _latest_critical_paths(entries)
    if cps:
        lines.append("")
        lines.append("critical-path attribution (latest run per app):")
        for (app, preset), cp in sorted(cps.items()):
            dominant = cp.get("dominant", "?")
            lines.append(
                f"  {app}@{preset}: dominant {dominant} "
                f"({100 * cp.get('dominant_fraction', 0.0):.1f}% of makespan, "
                f"coverage {100 * cp.get('coverage', 0.0):.1f}%) -- "
                f"{MODEL_TERMS.get(dominant, '')}"
            )
            makespan = cp.get("makespan") or 0.0
            for res, secs in (cp.get("by_resource") or {}).items():
                share = secs / makespan if makespan > 0 else 0.0
                bar = "#" * max(1, round(share * 30)) if share > 0 else ""
                lines.append(f"    {res:<5} {100 * share:5.1f}%  {bar}")
    faults = _latest_fault_runs(entries)
    if faults:
        lines.append("")
        lines.append("resilience (latest fault run per app x scenario x policy):")
        for (app, scenario, policy), entry in sorted(faults.items()):
            res = entry.get("resilience") or {}
            if res.get("failed"):
                failure = res.get("failure") or {}
                what = failure.get("process") or failure.get("stage") or "?"
                lines.append(f"  [ABORT] {app} {scenario} / {policy}: {what}")
                continue
            retention = res.get("efficiency_retention")
            inflation = res.get("makespan_inflation")
            term = (entry.get("attribution") or {}).get("term") or "-"
            lines.append(
                f"  [ok   ] {app} {scenario} / {policy}: "
                f"retention {'-' if retention is None else format(retention, '.1%')}  "
                f"inflation {'-' if inflation is None else format(inflation, '.3f') + 'x'}  "
                f"attributed to {term}"
            )
    campaigns = _campaign_series(entries)
    if campaigns:
        lines.append("")
        lines.append("campaigns (per-cell makespan distributions, latest per preset):")
        for preset in sorted(campaigns):
            latest, previous = campaigns[preset]
            prev_cells = (previous or {}).get("cells") or {}
            lines.append(
                f"  preset {preset}: {latest.get('replicates')} replicates x "
                f"{len(latest.get('cells') or {})} cells, "
                f"{latest.get('failures', 0)} failed replicates"
            )
            for key in sorted(latest.get("cells") or {}):
                cell = latest["cells"][key]
                mk = cell.get("makespan") or {}
                drift = _cell_drift(cell, prev_cells.get(key))
                if drift is None:
                    arrow = "      -"
                else:
                    mark = "^" if drift > 0.001 else "v" if drift < -0.001 else "="
                    arrow = f"{mark}{drift:+.1%}"
                lines.append(
                    "    {key:<28} median {median}  iqr {iqr}  p95 {p95}  "
                    "n={done}/{total}  |{spark}|  drift {arrow}".format(
                        key=key,
                        median=_fmt_s(mk.get("median")),
                        iqr=_fmt_s(mk.get("iqr")),
                        p95=_fmt_s(mk.get("p95")),
                        done=cell.get("completed", 0),
                        total=cell.get("replicates", 0),
                        spark=text_sparkline([float(v) for v in mk.get("samples") or []]),
                        arrow=arrow,
                    )
                )
    check = _latest_campaign_check(entries)
    if check:
        lines.append("")
        lines.append(
            f"campaign regression check (latest): verdict {check.get('verdict')}  "
            f"alpha {check.get('alpha')}  effect {check.get('effect_threshold')}  "
            f"flagged {len(check.get('flagged') or [])}"
        )
        cells = check.get("cells") or {}
        for key in sorted(cells):
            cell = cells[key]
            verdict = str(cell.get("verdict", "?"))
            shift = cell.get("median_shift")
            p = cell.get("p_value")
            lines.append(
                "  [{mark:<4}] {key}  shift {shift}  p {p}{note}".format(
                    mark="FAIL" if verdict == "fail" else verdict,
                    key=key,
                    shift="-" if shift is None else f"{shift:+.2%}",
                    p="-" if p is None else f"{p:.4g}",
                    note=f"  ({cell['note']})" if cell.get("note") else "",
                )
            )
    explains = _latest_explains(entries)
    if explains:
        lines.append("")
        lines.append("regression explanations (latest explain per cell):")
        for key in sorted(explains):
            entry = explains[key]
            manifest = entry.get("explain") or {}
            delta = manifest.get("delta") or {}
            rel = delta.get("relative")
            lines.append(
                "  {key}: verdict {verdict}  delta {d} ({rel})  "
                "replicate {rep}".format(
                    key=key,
                    verdict=entry.get("verdict", "?"),
                    d="-" if delta.get("makespan_s") is None
                    else f"{delta['makespan_s']:+.4g}s",
                    rel="-" if rel is None else f"{rel:+.2%}",
                    rep=manifest.get("replicate", "?"),
                )
            )
            for row in (manifest.get("blame") or [])[:3]:
                share = row.get("share")
                lines.append(
                    "    blame {res:<5} {d:+.4g}s{share}  {term}".format(
                        res=row.get("resource", "?"),
                        d=row.get("delta_s", 0.0),
                        share="" if share is None else f" (share {share:.0%})",
                        term=row.get("term", ""),
                    )
                )
    tunes = _latest_tunes(entries)
    if tunes:
        lines.append("")
        lines.append("guided tuning (latest tune run per app x preset):")
        for (app, preset), entry in sorted(tunes.items()):
            inc = entry.get("incumbent") or {}
            obj = inc.get("objectives") or {}
            budget = entry.get("budget") or {}
            savings = entry.get("savings") or {}
            frac = savings.get("fraction_of_exhaustive")
            lines.append(
                "  {app}@{preset}: incumbent {pt} -> {gf:.2f} GFLOPS, "
                "{su:.1%} slices ({fid})".format(
                    app=app,
                    preset=preset,
                    pt=_tune_point_label(inc.get("point") or {}),
                    gf=obj.get("gflops", 0.0),
                    su=obj.get("slice_utilisation", 0.0),
                    fid=inc.get("fidelity", "?"),
                )
            )
            lines.append(
                "    DES evals {used}/{bud} (exhaustive {ex}, "
                "{frac} of exhaustive)  front {n} points  rungs {r}".format(
                    used=budget.get("des_used", "?"),
                    bud=budget.get("des", "?"),
                    ex=entry.get("exhaustive_des", "?"),
                    frac="-" if frac is None else f"{frac:.1%}",
                    n=len(entry.get("front") or []),
                    r=len(entry.get("rungs") or []),
                )
            )
            for row in entry.get("front") or []:
                robj = row.get("objectives") or {}
                res = robj.get("resilience")
                lines.append(
                    "    front {pt:<28} {gf:7.2f} GFLOPS  {su:.1%} slices"
                    "{res}  [{fid}]".format(
                        pt=_tune_point_label(row.get("point") or {}),
                        gf=robj.get("gflops", 0.0),
                        su=robj.get("slice_utilisation", 0.0),
                        res="" if res is None else f"  retention {res:.1%}",
                        fid=row.get("fidelity", "?"),
                    )
                )
    service = _service_summary(entries)
    if service:
        oc = service["outcomes"]
        lines.append("")
        lines.append(
            "service jobs ({n} recorded: {c} computed, {h} cache, {f} failed; "
            "{d} in-flight dedups):".format(
                n=len(service["jobs"]), c=oc.get("computed", 0),
                h=oc.get("cache", 0), f=oc.get("failed", 0),
                d=service["deduped"],
            )
        )
        for entry in service["jobs"][-8:]:
            lines.append(
                "  [{outcome:<8}] {job} {kind:<9} wait {wait}  run {run}  "
                "attempts {att}  dedup {dd}  hash {h}".format(
                    outcome=entry.get("outcome", "?"),
                    job=entry.get("job", "?"),
                    kind=entry.get("job_kind", "?"),
                    wait=_fmt_s(entry.get("queue_wait_s")),
                    run=_fmt_s(entry.get("run_s")),
                    att=entry.get("attempts", "?"),
                    dd=entry.get("dedup_count", 0),
                    h=(str(entry.get("result_hash"))[:12]
                       if entry.get("result_hash") else "-"),
                )
            )
    workers = _latest_worker_telemetry(entries)
    if workers:
        lines.append("")
        lines.append("sweep worker telemetry (latest campaign):")
        lines.extend(f"  {line}" for line in _worker_lines(workers))
    return "\n".join(lines)


def _worker_lines(workers: dict[str, Any]) -> list[str]:
    """The worker-telemetry block as plain text lines (shared by the
    ASCII dashboard and the CLI footer)."""
    ex = workers.get("executor") or {}
    out: list[str] = []
    if ex:
        out.append(
            "mode {mode}  workers {w}  tasks {t}  chunks {c}  elapsed {e}".format(
                mode=ex.get("mode", "?"),
                w=ex.get("workers", "?"),
                t=ex.get("tasks", "?"),
                c=ex.get("chunks", "?"),
                e="-" if ex.get("elapsed_s") is None else f"{ex['elapsed_s']:.3f}s",
            )
        )
    qw = ex.get("queue_wait_s") or {}
    if qw:
        stragglers = ex.get("stragglers") or []
        out.append(
            "queue wait mean {mean:.4f}s max {mx:.4f}s  imbalance {imb:.2f}x  "
            "stragglers: {st}".format(
                mean=qw.get("mean", 0.0),
                mx=qw.get("max", 0.0),
                imb=ex.get("imbalance", 1.0),
                st=", ".join(f"w{i}" for i in stragglers) if stragglers else "none",
            )
        )
    per_worker = ex.get("per_worker") or []
    busy_max = max((w.get("busy_s", 0.0) for w in per_worker), default=0.0)
    for w in per_worker:
        busy = w.get("busy_s", 0.0)
        bar = "#" * max(1, round(busy / busy_max * 24)) if busy_max > 0 else ""
        out.append(
            f"w{w.get('worker')} pid {w.get('pid')}  chunks {w.get('chunks')}  "
            f"tasks {w.get('tasks')}  busy {busy:.3f}s  |{bar}|"
        )
    cache = workers.get("cache")
    if cache:
        rate = workers.get("cache_hit_rate")
        out.append(
            "cache: {lk} lookups, {h} hits, {m} misses ({rate})".format(
                lk=cache.get("lookups", 0),
                h=cache.get("hits", 0),
                m=cache.get("misses", 0),
                rate="-" if rate is None else f"{rate:.1%} hit rate",
            )
        )
    return out


def _fmt_s(value: Optional[float]) -> str:
    return "-" if value is None else f"{value:.4g}s"


# ------------------------------------------------------------------- HTML

_HTML_STYLE = """
:root {
  --surface: #fcfcfb; --page: #f9f9f7; --ink: #0b0b0b; --ink-2: #52514e;
  --muted: #898781; --grid: #e7e6e3; --series: #2a78d6;
  --good: #0ca30c; --critical: #d03b3b;
}
@media (prefers-color-scheme: dark) {
  :root {
    --surface: #1a1a19; --page: #0d0d0d; --ink: #ffffff; --ink-2: #c3c2b7;
    --muted: #898781; --grid: #383835; --series: #3987e5;
    --good: #0ca30c; --critical: #d03b3b;
  }
}
body { background: var(--page); color: var(--ink); margin: 2rem auto; max-width: 60rem;
       font: 14px/1.5 ui-sans-serif, system-ui, sans-serif; }
h1, h2 { font-weight: 600; } h1 { font-size: 1.3rem; } h2 { font-size: 1.05rem; margin-top: 2rem; }
.sub { color: var(--ink-2); }
table { border-collapse: collapse; width: 100%; background: var(--surface);
        border: 1px solid var(--grid); }
th, td { text-align: left; padding: 0.4rem 0.7rem; border-bottom: 1px solid var(--grid);
         font-variant-numeric: tabular-nums; }
th { color: var(--ink-2); font-weight: 600; font-size: 0.85rem; }
.num { text-align: right; }
.status { font-size: 0.8rem; font-weight: 600; }
.status.ok::before { content: "\\2713 "; } .status.ok { color: var(--good); }
.status.below::before { content: "\\2717 "; } .status.below { color: var(--critical); }
.bar { height: 10px; background: var(--series); border-radius: 0 4px 4px 0; min-width: 2px; }
.bartrack { background: var(--surface); width: 180px; }
.lane { color: var(--ink-2); font-size: 0.85rem; }
svg.spark polyline { fill: none; stroke: var(--series); stroke-width: 2; }
svg.spark line { stroke: var(--grid); stroke-width: 1; }
"""


def _spark_svg(values: list[float], band: float, width: int = 140, height: int = 32) -> str:
    """Inline SVG sparkline of one efficiency series with the band line."""
    if not values:
        return ""
    tail = values[-24:]
    lo = min(tail + [band]) - 1e-9
    hi = max(tail + [band]) + 1e-9
    pad = 0.08 * (hi - lo)
    lo, hi = lo - pad, hi + pad

    def y(v: float) -> float:
        return height - 3 - (v - lo) / (hi - lo) * (height - 6)

    if len(tail) == 1:
        xs = [width / 2]
    else:
        xs = [3 + i * (width - 6) / (len(tail) - 1) for i in range(len(tail))]
    points = " ".join(f"{x:.1f},{y(v):.1f}" for x, v in zip(xs, tail))
    band_y = y(band)
    return (
        f'<svg class="spark" width="{width}" height="{height}" role="img" '
        f'aria-label="efficiency trend, {len(tail)} runs">'
        f'<line x1="0" y1="{band_y:.1f}" x2="{width}" y2="{band_y:.1f}"/>'
        f'<polyline points="{points}"/>'
        + (f'<circle cx="{xs[-1]:.1f}" cy="{y(tail[-1]):.1f}" r="3" fill="var(--series)"/>')
        + "</svg>"
    )


def _fidelity_rows(stats: list[FidelityStat], band: float) -> str:
    rows = []
    for st in stats:
        ok = st.latest >= band
        rows.append(
            "<tr>"
            f"<td>{escape(st.app)}@{escape(st.preset)}</td>"
            f'<td class="status {"ok" if ok else "below"}">{"ok" if ok else "below band"}</td>'
            f'<td class="num">{st.latest:.4f}</td>'
            f'<td class="num">{st.mean:.4f}</td>'
            f'<td class="num">[{st.minimum:.4f}, {st.maximum:.4f}]</td>'
            f'<td class="num">{st.drift:+.4f}</td>'
            f'<td class="num">{st.count}</td>'
            f"<td>{_spark_svg(st.efficiencies, band)}</td>"
            "</tr>"
        )
    return "\n".join(rows)


def _critical_path_tables(entries: list[dict[str, Any]]) -> str:
    blocks = []
    for (app, preset), cp in sorted(_latest_critical_paths(entries).items()):
        makespan = cp.get("makespan") or 0.0
        dominant = cp.get("dominant", "?")
        rows = []
        for res, secs in (cp.get("by_resource") or {}).items():
            share = secs / makespan if makespan > 0 else 0.0
            rows.append(
                "<tr>"
                f"<td>{escape(res)}</td>"
                f'<td class="num">{secs:.4g}s</td>'
                f'<td class="num">{100 * share:.1f}%</td>'
                f'<td class="bartrack"><div class="bar" style="width:{max(2, round(share * 180))}px"></div></td>'
                f'<td class="lane">{escape(MODEL_TERMS.get(res, ""))}</td>'
                "</tr>"
            )
        blocks.append(
            f"<h2>{escape(app)}@{escape(preset)} critical path</h2>"
            f'<p class="sub">dominant resource: <strong>{escape(dominant)}</strong> '
            f"({100 * cp.get('dominant_fraction', 0.0):.1f}% of the makespan; "
            f"chain coverage {100 * cp.get('coverage', 0.0):.1f}%)</p>"
            "<table><thead><tr><th>resource</th><th class='num'>chain time</th>"
            "<th class='num'>share</th><th>share of makespan</th><th>model term</th></tr></thead>"
            f"<tbody>{''.join(rows)}</tbody></table>"
        )
    return "\n".join(blocks)


def _resilience_table(entries: list[dict[str, Any]]) -> str:
    faults = _latest_fault_runs(entries)
    if not faults:
        return ""
    rows = []
    for (app, scenario, policy), entry in sorted(faults.items()):
        res = entry.get("resilience") or {}
        failed = bool(res.get("failed"))
        retention = res.get("efficiency_retention")
        inflation = res.get("makespan_inflation")
        recovery = res.get("recovery_latency")
        gloss = (entry.get("attribution") or {}).get("gloss") or "-"
        if failed:
            failure = res.get("failure") or {}
            gloss = f"aborted: {failure.get('process') or failure.get('stage') or '?'}"
        rows.append(
            "<tr>"
            f"<td>{escape(app)}</td><td>{escape(scenario)}</td><td>{escape(policy)}</td>"
            f'<td class="status {"below" if failed else "ok"}">'
            f'{"aborted" if failed else "ok"}</td>'
            f'<td class="num">{"-" if inflation is None else f"{inflation:.3f}x"}</td>'
            f'<td class="num">{"-" if retention is None else f"{retention:.1%}"}</td>'
            f'<td class="num">{"-" if recovery is None else f"{recovery:.3f}s"}</td>'
            f'<td class="lane">{escape(gloss)}</td>'
            "</tr>"
        )
    return (
        "<h2>Resilience under fault injection</h2>"
        '<p class="sub">latest fault run per app &times; scenario &times; policy '
        "(docs/robustness.md)</p>"
        "<table><thead><tr><th>app</th><th>scenario</th><th>policy</th><th>status</th>"
        "<th class='num'>inflation</th><th class='num'>retention</th>"
        "<th class='num'>recovery</th><th>attributed to</th></tr></thead>"
        f"<tbody>{''.join(rows)}</tbody></table>"
    )


def _campaign_tables(entries: list[dict[str, Any]]) -> str:
    campaigns = _campaign_series(entries)
    if not campaigns:
        return ""
    blocks = []
    for preset in sorted(campaigns):
        latest, previous = campaigns[preset]
        prev_cells = (previous or {}).get("cells") or {}
        rows = []
        for key in sorted(latest.get("cells") or {}):
            cell = latest["cells"][key]
            mk = cell.get("makespan") or {}
            eff = cell.get("efficiency") or {}
            samples = [float(v) for v in mk.get("samples") or []]
            median = mk.get("median")
            eff_median = eff.get("median")
            eff_cell = "-" if eff_median is None else f"{eff_median:.4f}"
            drift = _cell_drift(cell, prev_cells.get(key))
            if drift is None:
                drift_html = '<span class="sub">&ndash;</span>'
            elif drift > 0.001:
                drift_html = f'<span class="status below">&#9650; {drift:+.1%}</span>'
            elif drift < -0.001:
                drift_html = f'<span class="status ok">&#9660; {drift:+.1%}</span>'
            else:
                drift_html = f'<span class="sub">= {drift:+.1%}</span>'
            spark = (
                _spark_svg(samples, band=median)
                if samples and median is not None
                else ""
            )
            rows.append(
                "<tr>"
                f"<td>{escape(key)}</td>"
                f'<td class="num">{_fmt_s(median)}</td>'
                f'<td class="num">{_fmt_s(mk.get("iqr"))}</td>'
                f'<td class="num">{_fmt_s(mk.get("p95"))}</td>'
                f'<td class="num">{_fmt_s(mk.get("p99"))}</td>'
                f'<td class="num">{eff_cell}</td>'
                f'<td class="num">{cell.get("completed", 0)}/{cell.get("replicates", 0)}</td>'
                f"<td>{spark}</td>"
                f"<td>{drift_html}</td>"
                "</tr>"
            )
        blocks.append(
            f"<h2>Campaign distributions ({escape(preset)})</h2>"
            f'<p class="sub">{latest.get("replicates")} seeded replicates per cell; '
            "drift vs the previous campaign on this preset (line = cell median)</p>"
            "<table><thead><tr><th>cell</th><th class='num'>median</th>"
            "<th class='num'>IQR</th><th class='num'>p95</th><th class='num'>p99</th>"
            "<th class='num'>eff</th><th class='num'>replicates</th>"
            "<th>distribution</th><th>drift</th></tr></thead>"
            f"<tbody>{''.join(rows)}</tbody></table>"
        )
    return "\n".join(blocks)


def _campaign_check_table(entries: list[dict[str, Any]]) -> str:
    check = _latest_campaign_check(entries)
    if not check:
        return ""
    verdict = str(check.get("verdict", "?"))
    rows = []
    cells = check.get("cells") or {}
    for key in sorted(cells):
        cell = cells[key]
        cell_verdict = str(cell.get("verdict", "?"))
        shift = cell.get("median_shift")
        p = cell.get("p_value")
        rows.append(
            "<tr>"
            f"<td>{escape(key)}</td>"
            f'<td class="status {"below" if cell_verdict == "fail" else "ok"}">'
            f"{escape(cell_verdict)}</td>"
            f'<td class="num">{"-" if shift is None else f"{shift:+.2%}"}</td>'
            f'<td class="num">{"-" if p is None else f"{p:.4g}"}</td>'
            f'<td class="lane">{escape(str(cell.get("note") or ""))}</td>'
            "</tr>"
        )
    return (
        "<h2>Campaign regression check</h2>"
        f'<p class="sub">latest verdict: <strong>{escape(verdict)}</strong> '
        f"(alpha {check.get('alpha')}, effect threshold "
        f"{check.get('effect_threshold')}, "
        f"{len(check.get('flagged') or [])} flagged)</p>"
        "<table><thead><tr><th>cell</th><th>verdict</th>"
        "<th class='num'>median shift</th><th class='num'>p-value</th>"
        "<th>note</th></tr></thead>"
        f"<tbody>{''.join(rows)}</tbody></table>"
    )


def _explain_table(entries: list[dict[str, Any]]) -> str:
    explains = _latest_explains(entries)
    if not explains:
        return ""
    rows = []
    for key in sorted(explains):
        entry = explains[key]
        manifest = entry.get("explain") or {}
        delta = manifest.get("delta") or {}
        rel = delta.get("relative")
        top = (manifest.get("blame") or [{}])[0]
        verdict = str(entry.get("verdict", "?"))
        d = delta.get("makespan_s")
        top_d = top.get("delta_s")
        rows.append(
            "<tr>"
            f"<td>{escape(key)}</td>"
            f'<td class="status {"below" if verdict == "model" else "ok"}">'
            f"{escape(verdict)}</td>"
            f'<td class="num">{"-" if d is None else format(d, "+.4g") + "s"}</td>'
            f'<td class="num">{"-" if rel is None else format(rel, "+.2%")}</td>'
            f"<td>{escape(str(top.get('resource') or '-'))}</td>"
            f'<td class="num">{"-" if top_d is None else format(top_d, "+.4g") + "s"}</td>'
            f'<td class="lane">{escape(str(manifest.get("top_term") or ""))}</td>'
            "</tr>"
        )
    return (
        "<h2>Regression explanations</h2>"
        '<p class="sub">latest paired-trace blame diff per cell '
        "(docs/observability.md &ldquo;Explaining regressions&rdquo;)</p>"
        "<table><thead><tr><th>cell</th><th>verdict</th>"
        "<th class='num'>&Delta; makespan</th><th class='num'>relative</th>"
        "<th>top blame</th><th class='num'>lane &Delta;</th>"
        "<th>model term</th></tr></thead>"
        f"<tbody>{''.join(rows)}</tbody></table>"
    )


def _tune_tables(entries: list[dict[str, Any]]) -> str:
    tunes = _latest_tunes(entries)
    if not tunes:
        return ""
    blocks = []
    for (app, preset), entry in sorted(tunes.items()):
        inc = entry.get("incumbent") or {}
        obj = inc.get("objectives") or {}
        budget = entry.get("budget") or {}
        savings = entry.get("savings") or {}
        frac = savings.get("fraction_of_exhaustive")
        front = entry.get("front") or []
        has_res = any(
            (row.get("objectives") or {}).get("resilience") is not None
            for row in front
        )
        rows = []
        for row in front:
            robj = row.get("objectives") or {}
            res = robj.get("resilience")
            rows.append(
                "<tr>"
                f"<td>{escape(_tune_point_label(row.get('point') or {}))}</td>"
                f'<td class="num">{robj.get("gflops", 0.0):.2f}</td>'
                f'<td class="num">{robj.get("slice_utilisation", 0.0):.1%}</td>'
                + (
                    f'<td class="num">{"-" if res is None else f"{res:.1%}"}</td>'
                    if has_res
                    else ""
                )
                + f'<td class="num">{robj.get("freq_mhz", 0.0):.0f}</td>'
                f"<td>{escape(str(row.get('fidelity', '?')))}</td>"
                "</tr>"
            )
        blocks.append(
            f"<h2>Guided tuning Pareto front ({escape(app)}@{escape(preset)})</h2>"
            f'<p class="sub">incumbent '
            f"<strong>{escape(_tune_point_label(inc.get('point') or {}))}</strong> "
            f"&rarr; {obj.get('gflops', 0.0):.2f} GFLOPS at "
            f"{obj.get('slice_utilisation', 0.0):.1%} slices &middot; "
            f"DES evals {budget.get('des_used', '?')}/{budget.get('des', '?')} "
            f"vs exhaustive {entry.get('exhaustive_des', '?')}"
            + ("" if frac is None else f" ({frac:.1%} of exhaustive)")
            + " &middot; docs/performance.md &ldquo;Guided search&rdquo;</p>"
            "<table><thead><tr><th>design point</th><th class='num'>GFLOPS</th>"
            "<th class='num'>slices</th>"
            + ("<th class='num'>retention</th>" if has_res else "")
            + "<th class='num'>freq MHz</th><th>fidelity</th></tr></thead>"
            f"<tbody>{''.join(rows)}</tbody></table>"
        )
    return "\n".join(blocks)


def _service_table(entries: list[dict[str, Any]]) -> str:
    service = _service_summary(entries)
    if not service:
        return ""
    oc = service["outcomes"]
    kinds = " &middot; ".join(
        f"{escape(k)}: {n}" for k, n in sorted(service["kinds"].items())
    )
    rows = []
    for entry in service["jobs"][-20:]:
        outcome = str(entry.get("outcome", "?"))
        css = "below" if outcome == "failed" else "ok"
        h = entry.get("result_hash")
        rows.append(
            "<tr>"
            f"<td>{escape(str(entry.get('job', '?')))}</td>"
            f"<td>{escape(str(entry.get('job_kind', '?')))}</td>"
            f'<td class="status {css}">{escape(outcome)}</td>'
            f"<td class='num'>{_fmt_s(entry.get('queue_wait_s'))}</td>"
            f"<td class='num'>{_fmt_s(entry.get('run_s'))}</td>"
            f"<td class='num'>{entry.get('attempts', '?')}</td>"
            f"<td class='num'>{entry.get('dedup_count', 0)}</td>"
            f"<td><code>{escape(str(h)[:12]) if h else '-'}</code></td>"
            "</tr>"
        )
    sub = (
        f"{len(service['jobs'])} jobs recorded &middot; "
        f"{oc.get('computed', 0)} computed / {oc.get('cache', 0)} from cache / "
        f"{oc.get('failed', 0)} failed &middot; "
        f"{service['deduped']} in-flight dedups &middot; {kinds} &middot; "
        "docs/service.md"
    )
    return (
        "<h2>Service jobs</h2>"
        f"<p class='sub'>{sub}</p>"
        "<table><thead><tr><th>job</th><th>kind</th><th>outcome</th>"
        "<th class='num'>queue wait</th><th class='num'>run</th>"
        "<th class='num'>attempts</th><th class='num'>dedups</th>"
        "<th>result hash</th></tr></thead>"
        f"<tbody>{''.join(rows)}</tbody></table>"
    )


def _workers_table(entries: list[dict[str, Any]]) -> str:
    workers = _latest_worker_telemetry(entries)
    if not workers:
        return ""
    ex = workers.get("executor") or {}
    per_worker = ex.get("per_worker") or []
    busy_max = max((w.get("busy_s", 0.0) for w in per_worker), default=0.0)
    stragglers = set(ex.get("stragglers") or [])
    rows = []
    for w in per_worker:
        busy = w.get("busy_s", 0.0)
        width = max(2, round(busy / busy_max * 180)) if busy_max > 0 else 2
        status = "straggler" if w.get("worker") in stragglers else "ok"
        rows.append(
            "<tr>"
            f"<td>w{w.get('worker')}</td>"
            f"<td class='num'>{w.get('pid')}</td>"
            f"<td class='num'>{w.get('chunks')}</td>"
            f"<td class='num'>{w.get('tasks')}</td>"
            f"<td class='num'>{busy:.3f}s</td>"
            f'<td class="bartrack"><div class="bar" style="width:{width}px"></div></td>'
            f'<td class="status {"below" if status == "straggler" else "ok"}">{status}</td>'
            "</tr>"
        )
    qw = ex.get("queue_wait_s") or {}
    cache = workers.get("cache") or {}
    rate = workers.get("cache_hit_rate")
    sub = (
        f"mode {escape(str(ex.get('mode', '?')))} &middot; "
        f"{ex.get('tasks', '?')} tasks in {ex.get('chunks', '?')} chunks &middot; "
        f"queue wait mean {qw.get('mean', 0.0):.4f}s / max {qw.get('max', 0.0):.4f}s "
        f"&middot; imbalance {ex.get('imbalance', 1.0):.2f}x"
    )
    if cache:
        sub += (
            f" &middot; cache {cache.get('hits', 0)}/{cache.get('lookups', 0)} hits"
            + ("" if rate is None else f" ({rate:.1%})")
        )
    table = (
        "<table><thead><tr><th>worker</th><th class='num'>pid</th>"
        "<th class='num'>chunks</th><th class='num'>tasks</th>"
        "<th class='num'>busy</th><th>busy share</th><th>status</th></tr></thead>"
        f"<tbody>{''.join(rows)}</tbody></table>"
        if rows
        else '<p class="sub">serial run &mdash; no worker pool.</p>'
    )
    return f"<h2>Sweep worker telemetry</h2><p class='sub'>{sub}</p>{table}"


def render_html(
    entries: list[dict[str, Any]],
    band: float = DEFAULT_BAND,
    title: str = "Model-fidelity observatory",
) -> str:
    """The self-contained HTML dashboard page."""
    stats = fidelity_report(entries, band=band)
    fidelity_table = (
        "<table><thead><tr><th>series</th><th>status</th><th class='num'>latest</th>"
        "<th class='num'>mean</th><th class='num'>range</th><th class='num'>drift</th>"
        "<th class='num'>runs</th><th>trend (band line = floor)</th></tr></thead>"
        f"<tbody>{_fidelity_rows(stats, band)}</tbody></table>"
        if stats
        else '<p class="sub">No design_run entries recorded yet.</p>'
    )
    return f"""<!DOCTYPE html>
<html lang="en">
<head>
<meta charset="utf-8">
<title>{escape(title)}</title>
<style>{_HTML_STYLE}</style>
</head>
<body>
<h1>{escape(title)}</h1>
<p class="sub">{len(entries)} ledger entries &middot; fidelity band: overlap_efficiency &ge; {band:.2f}
(the paper's Section 4.5 &ldquo;&gt;85% of max{{T_tp, T_tf}}&rdquo; claim)</p>
<h2>Prediction fidelity by app &times; preset</h2>
{fidelity_table}
{_critical_path_tables(entries)}
{_resilience_table(entries)}
{_campaign_tables(entries)}
{_campaign_check_table(entries)}
{_explain_table(entries)}
{_tune_tables(entries)}
{_service_table(entries)}
{_workers_table(entries)}
</body>
</html>
"""
