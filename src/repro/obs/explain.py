"""Paired-run blame diffs: explain a regression as model-term deltas.

The observatory's detection layers (:mod:`repro.obs.fidelity` drift
flags, :mod:`repro.campaign.stats` Mann-Whitney verdicts) say *that* a
cell moved; this module says *why*.  Given the same replicate simulated
under two builds or parameter sets -- each reduced to a makespan, a
critical-path summary (:mod:`repro.obs.critical_path`), per-lane busy
times and per-activity-class busy times -- it diffs the two runs
segment class by segment class and emits a ranked *blame report*:

* ``blame``  -- per-resource critical-path delta, descending, each
  glossed with the paper's Eq (1)/(2)/(4)/(6) term it loads onto
  (:data:`~repro.obs.critical_path.MODEL_TERMS`);
* ``phases`` -- per-activity-class chain delta
  (compute / communication / staging / stall);
* ``lanes``  -- the concrete lanes whose busy time moved most
  (``fpga2``, ``cpu0``, ...), the "which lane stalled" view;
* ``activity`` -- busy lane-seconds per activity class across the whole
  trace (the off-critical-path complement of ``phases``).

The result is an ``explain`` manifest (ledger schema 5, see
:func:`repro.obs.ledger.explain_entry`).  Every field is a pure
function of the two simulated runs, so identically-seeded explanations
are bitwise identical -- wall-clock worker telemetry deliberately stays
out of this document and flows through the metrics registry and the
``workers`` block of ``campaign`` entries instead.

Like the rest of :mod:`repro.obs`, this module imports nothing from the
rest of :mod:`repro` (stdlib only); the campaign-side orchestration
that *produces* the paired runs lives in :mod:`repro.campaign.explain`.
"""

from __future__ import annotations

from typing import Any, Optional

from .critical_path import MODEL_TERMS

__all__ = [
    "EXPLAIN_SCHEMA",
    "DEFAULT_MIN_DELTA",
    "blame_resources",
    "phase_deltas",
    "lane_deltas",
    "build_explain",
    "render_explain",
]

#: Version of the ``explain`` manifest layout (the blame/phases/lanes
#: structure below).  Independent of the ledger's envelope schema, like
#: the campaign's ``MANIFEST_SCHEMA``.
EXPLAIN_SCHEMA = 1

#: Relative makespan deltas smaller than this (0.5%) are noise at DES
#: resolution: the explanation is reported but its verdict stays
#: ``inconclusive`` rather than blaming a model term.
DEFAULT_MIN_DELTA = 0.005


def blame_resources(
    baseline: dict[str, float], current: dict[str, float]
) -> list[dict[str, Any]]:
    """Ranked per-resource blame from two ``by_resource`` chain maps.

    One row per resource class seen on either side, sorted by the
    critical-path delta (current - baseline) descending, so the first
    row names the lane that absorbed the regression.  ``share`` is the
    row's fraction of the total *positive* delta (None for rows that
    shrank or when nothing grew); ``term`` is the paper Eq-term gloss.
    """
    rows = []
    grew = sum(
        d for d in (
            current.get(res, 0.0) - baseline.get(res, 0.0)
            for res in set(baseline) | set(current)
        ) if d > 0
    )
    for res in set(baseline) | set(current):
        base = baseline.get(res, 0.0)
        cur = current.get(res, 0.0)
        delta = cur - base
        rows.append(
            {
                "resource": res,
                "baseline_s": base,
                "current_s": cur,
                "delta_s": delta,
                "share": delta / grew if delta > 0 and grew > 0 else None,
                "term": MODEL_TERMS.get(res, MODEL_TERMS["other"]),
            }
        )
    rows.sort(key=lambda r: (-r["delta_s"], r["resource"]))
    return rows


def phase_deltas(
    baseline: dict[str, float], current: dict[str, float]
) -> dict[str, dict[str, float]]:
    """Per-activity-class deltas from two ``by_phase`` (or activity) maps."""
    out: dict[str, dict[str, float]] = {}
    for cls in sorted(set(baseline) | set(current)):
        base = baseline.get(cls, 0.0)
        cur = current.get(cls, 0.0)
        out[cls] = {"baseline_s": base, "current_s": cur, "delta_s": cur - base}
    return out


def lane_deltas(
    baseline: dict[str, float], current: dict[str, float], top: int = 6
) -> list[dict[str, Any]]:
    """The ``top`` concrete lanes whose busy time moved most, by |delta|."""
    rows = []
    for lane in set(baseline) | set(current):
        base = baseline.get(lane, 0.0)
        cur = current.get(lane, 0.0)
        rows.append(
            {"lane": lane, "baseline_s": base, "current_s": cur, "delta_s": cur - base}
        )
    rows.sort(key=lambda r: (-abs(r["delta_s"]), r["lane"]))
    return rows[:top]


def _side(run: dict[str, Any]) -> dict[str, Any]:
    """The per-side summary block embedded in the manifest."""
    cp = run.get("critical_path") or {}
    return {
        "makespan": run.get("makespan"),
        "critical_path": {
            "makespan": cp.get("makespan"),
            "dominant": cp.get("dominant"),
            "dominant_fraction": cp.get("dominant_fraction"),
            "coverage": cp.get("coverage"),
            "by_resource": dict(cp.get("by_resource") or {}),
            "by_phase": dict(cp.get("by_phase") or {}),
        },
    }


def build_explain(
    *,
    cell: str,
    app: str,
    preset: str,
    scenario_name: str,
    replicate: int,
    seeds: dict[str, int],
    baseline: dict[str, Any],
    current: dict[str, Any],
    check: Optional[dict[str, Any]] = None,
    min_delta: float = DEFAULT_MIN_DELTA,
) -> dict[str, Any]:
    """Assemble one ``explain`` manifest from two traced runs.

    ``baseline`` / ``current`` each carry ``makespan`` (the campaign's
    sample metric for the replicate), ``critical_path`` (a
    :meth:`~repro.obs.critical_path.CriticalPathReport.to_dict`),
    ``lanes`` (concrete lane -> busy seconds) and ``activity``
    (activity class -> busy lane-seconds).  ``check`` optionally embeds
    the statistical context that triggered the explanation (the
    ``campaign_check`` cell block).

    The verdict is ``model`` when the makespan grew past ``min_delta``
    and a resource class absorbed the growth (the regression is real
    and the named Eq-term explains it), ``improvement`` for the mirror
    case, and ``inconclusive`` when the paired runs moved less than the
    noise floor -- which is the hint to look at the harness (worker
    telemetry) rather than the model.
    """
    base_cp = baseline.get("critical_path") or {}
    cur_cp = current.get("critical_path") or {}
    blame = blame_resources(
        dict(base_cp.get("by_resource") or {}), dict(cur_cp.get("by_resource") or {})
    )
    base_mk = float(baseline.get("makespan") or 0.0)
    cur_mk = float(current.get("makespan") or 0.0)
    relative = (cur_mk - base_mk) / base_mk if base_mk > 0 else None
    top = blame[0] if blame and blame[0]["delta_s"] > 0 else None
    if relative is not None and relative >= min_delta and top is not None:
        verdict = "model"
    elif relative is not None and relative <= -min_delta:
        verdict = "improvement"
    else:
        verdict = "inconclusive"
    manifest: dict[str, Any] = {
        "kind": "explain",
        "explain_schema": EXPLAIN_SCHEMA,
        "cell": cell,
        "app": app,
        "preset": preset,
        "scenario_name": scenario_name,
        "replicate": replicate,
        "seeds": dict(seeds),
        "baseline": _side(baseline),
        "current": _side(current),
        "delta": {"makespan_s": cur_mk - base_mk, "relative": relative},
        "blame": blame,
        "phases": phase_deltas(
            dict(base_cp.get("by_phase") or {}), dict(cur_cp.get("by_phase") or {})
        ),
        "activity": phase_deltas(
            dict(baseline.get("activity") or {}), dict(current.get("activity") or {})
        ),
        "lanes": lane_deltas(
            dict(baseline.get("lanes") or {}), dict(current.get("lanes") or {})
        ),
        "top_blame": top["resource"] if top else None,
        "top_term": top["term"] if top else None,
        "verdict": verdict,
    }
    if check is not None:
        manifest["check"] = {
            "p_value": check.get("p_value"),
            "median_shift": check.get("median_shift"),
            "verdict": check.get("verdict"),
            "note": check.get("note"),
        }
    return manifest


def _fmt_s(value: Optional[float]) -> str:
    return "-" if value is None else f"{value:.4g}s"


def render_explain(manifest: dict[str, Any]) -> str:
    """One explain manifest as the CLI / dashboard blame table."""
    delta = manifest.get("delta") or {}
    rel = delta.get("relative")
    lines = [
        "explain {cell} (replicate {rep}, scenario {scenario}):".format(
            cell=manifest.get("cell"),
            rep=manifest.get("replicate"),
            scenario=manifest.get("scenario_name"),
        ),
        "  makespan {base} -> {cur}  ({rel})  verdict: {verdict}".format(
            base=_fmt_s((manifest.get("baseline") or {}).get("makespan")),
            cur=_fmt_s((manifest.get("current") or {}).get("makespan")),
            rel="-" if rel is None else f"{rel:+.2%}",
            verdict=manifest.get("verdict"),
        ),
    ]
    check = manifest.get("check")
    if check:
        p = check.get("p_value")
        shift = check.get("median_shift")
        lines.append(
            "  flagged by: {verdict} (p={p}, median shift {shift})".format(
                verdict=check.get("verdict"),
                p="-" if p is None else f"{p:.4g}",
                shift="-" if shift is None else f"{shift:+.2%}",
            )
        )
    lines.append("  blame (critical-path delta per resource lane):")
    for row in manifest.get("blame") or []:
        share = row.get("share")
        lines.append(
            "    {res:<5} {delta:>+10.4g}s  {share:>5}  {term}".format(
                res=row.get("resource"),
                delta=row.get("delta_s", 0.0),
                share="-" if share is None else f"{share:.0%}",
                term=row.get("term", ""),
            )
        )
    phases = manifest.get("phases") or {}
    if phases:
        ranked = sorted(phases.items(), key=lambda kv: -kv[1].get("delta_s", 0.0))
        lines.append(
            "  phases: "
            + ", ".join(f"{cls} {blk.get('delta_s', 0.0):+.4g}s" for cls, blk in ranked)
        )
    lanes = manifest.get("lanes") or []
    if lanes:
        lines.append(
            "  lanes:  "
            + ", ".join(
                f"{row.get('lane')} {row.get('delta_s', 0.0):+.4g}s" for row in lanes
            )
        )
    top = manifest.get("top_blame")
    if top and manifest.get("verdict") == "model":
        lines.append(f"  -> blame {top}: {manifest.get('top_term')}")
    elif manifest.get("verdict") == "inconclusive":
        lines.append(
            "  -> inconclusive: paired re-runs agree within the noise floor; "
            "check worker telemetry (obs dashboard) for a harness-side cause"
        )
    return "\n".join(lines)
