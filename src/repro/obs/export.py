"""Exporters: Chrome ``trace_event`` JSON, metrics JSON-lines, text summary.

Three sinks for one run's telemetry:

* :func:`write_chrome_trace` -- a ``chrome://tracing`` / Perfetto
  timeline combining the *simulated* lane trace (one process per node,
  one thread per lane) and the harness's *wall-clock* spans (process 0).
  All simulated events are complete (``"ph": "X"``) events with
  microsecond timestamps, emitted in nondecreasing ``ts`` order with
  stable pid/tid assignment -- the golden test pins the format.
* :func:`write_metrics_jsonl` -- one JSON object per line: a header
  line, every registry series, and any overlap reports.  The CLI's
  ``--metrics-out`` writes this; ``repro-xd1 obs summary`` reads it.
* :func:`metrics_summary` -- a plain-text table of the same content for
  terminals and CI logs.

Schema reference: ``docs/observability.md``.
"""

from __future__ import annotations

import json
import re
from pathlib import Path
from typing import Any, Iterable, Optional

from .metrics import MetricsRegistry, REGISTRY
from .overlap import OverlapReport

__all__ = [
    "chrome_trace_events",
    "write_chrome_trace",
    "write_metrics_jsonl",
    "read_metrics_jsonl",
    "metrics_summary",
]

#: Current metrics-file schema version (bump on breaking changes).
METRICS_SCHEMA = 1

#: Stable thread ordering within a node's process in the Chrome trace.
_LANE_ORDER = ("cpu", "fpga", "dram", "sram", "mpi", "net")

_LANE_RE = re.compile(r"^([a-z_]+?)(\d+)(->)?$")


def _lane_pid_tid(lane: str) -> tuple[int, int]:
    """Deterministic (pid, tid) for a simulation trace lane.

    ``cpu3`` -> process 4 (node 3; pid 0 is the harness), thread 0;
    unknown lane bases sort after the known ones, alphabetically.
    """
    m = _LANE_RE.match(lane)
    if m is None:
        return (1, len(_LANE_ORDER))  # unparsable lane: node0 process, tail tid
    base, node = m.group(1), int(m.group(2))
    try:
        tid = _LANE_ORDER.index(base)
    except ValueError:
        tid = len(_LANE_ORDER)
    return (node + 1, tid)


def _meta_event(pid: int, tid: Optional[int], name: str, value: str) -> dict[str, Any]:
    ev: dict[str, Any] = {"name": name, "ph": "M", "pid": pid, "ts": 0, "args": {"name": value}}
    if tid is not None:
        ev["tid"] = tid
    return ev


def chrome_trace_events(
    sim_trace: Any = None,
    spans: Optional[Iterable[Any]] = None,
    span_epoch: Optional[float] = None,
) -> list[dict[str, Any]]:
    """The ``traceEvents`` list for a run.

    ``sim_trace`` is a :class:`repro.sim.trace.Trace`; its intervals
    become complete events on node processes 1..p in simulated
    microseconds.  ``spans`` are :class:`repro.obs.tracing.Span` records
    on process 0 in wall microseconds since ``span_epoch``.  Metadata
    events naming every process/thread come first; payload events are
    sorted by (ts, pid, tid) so consumers see nondecreasing timestamps.
    """
    events: list[dict[str, Any]] = []
    meta: list[dict[str, Any]] = []
    seen_pids: set[int] = set()
    seen_tids: set[tuple[int, int]] = set()

    if sim_trace is not None:
        for lane in sim_trace.lanes():
            pid, tid = _lane_pid_tid(lane)
            if pid not in seen_pids:
                seen_pids.add(pid)
                meta.append(_meta_event(pid, None, "process_name", f"node{pid - 1}"))
            if (pid, tid) not in seen_tids:
                seen_tids.add((pid, tid))
                meta.append(_meta_event(pid, tid, "thread_name", lane))
        for iv in sim_trace.intervals:
            pid, tid = _lane_pid_tid(iv.category)
            events.append(
                {
                    "name": iv.label,
                    "cat": iv.category,
                    "ph": "X",
                    "ts": iv.start * 1e6,
                    "dur": (iv.end - iv.start) * 1e6,
                    "pid": pid,
                    "tid": tid,
                    "args": {k: v for k, v in iv.meta.items()},
                }
            )

    span_list = list(spans) if spans is not None else []
    if span_list:
        meta.append(_meta_event(0, None, "process_name", "harness"))
        meta.append(_meta_event(0, 0, "thread_name", "wall-clock"))
        epoch = span_epoch if span_epoch is not None else min(sp.start for sp in span_list)
        for sp in span_list:
            events.append(
                {
                    "name": sp.name,
                    "cat": sp.category,
                    "ph": "X",
                    "ts": (sp.start - epoch) * 1e6,
                    "dur": (sp.end - sp.start) * 1e6,
                    "pid": 0,
                    "tid": 0,
                    "args": dict(sp.args),
                }
            )

    events.sort(key=lambda ev: (ev["ts"], ev["pid"], ev["tid"]))
    return meta + events


def write_chrome_trace(
    path: str | Path,
    sim_trace: Any = None,
    spans: Optional[Iterable[Any]] = None,
    span_epoch: Optional[float] = None,
) -> Path:
    """Write a ``chrome://tracing``-loadable JSON file; returns the path."""
    path = Path(path)
    doc = {
        "traceEvents": chrome_trace_events(sim_trace, spans, span_epoch),
        "displayTimeUnit": "ms",
        "otherData": {"exporter": "repro.obs", "schema": METRICS_SCHEMA},
    }
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(doc, indent=1, sort_keys=True) + "\n", encoding="utf-8")
    return path


# ---------------------------------------------------------------- metrics


def write_metrics_jsonl(
    path: str | Path,
    registry: Optional[MetricsRegistry] = None,
    overlap: Optional[Iterable[OverlapReport]] = None,
    extra: Optional[dict[str, Any]] = None,
) -> Path:
    """Write the metrics file: header line, then one JSON object per series."""
    reg = registry if registry is not None else REGISTRY
    path = Path(path)
    lines = [{"kind": "header", "schema": METRICS_SCHEMA, **(extra or {})}]
    lines.extend(reg.snapshot())
    for report in overlap or ():
        lines.append(report.to_dict())
    path.parent.mkdir(parents=True, exist_ok=True)
    with open(path, "w", encoding="utf-8") as fh:
        for line in lines:
            fh.write(json.dumps(line, sort_keys=True) + "\n")
    return path


def read_metrics_jsonl(path: str | Path) -> list[dict[str, Any]]:
    """Parse a metrics file back into its records (header included)."""
    records = []
    with open(path, "r", encoding="utf-8") as fh:
        for lineno, line in enumerate(fh, 1):
            line = line.strip()
            if not line:
                continue
            try:
                records.append(json.loads(line))
            except json.JSONDecodeError as exc:
                raise ValueError(f"{path}:{lineno}: not JSON-lines ({exc})") from exc
    return records


def _fmt(value: Any) -> str:
    if isinstance(value, float):
        return f"{value:.6g}"
    return str(value)


def metrics_summary(
    records_or_registry: Any = None,
    overlap: Optional[Iterable[OverlapReport]] = None,
) -> str:
    """Plain-text summary table of metrics records or a live registry.

    Accepts either the record list from :func:`read_metrics_jsonl` or a
    :class:`MetricsRegistry` (default: the process registry).
    """
    if records_or_registry is None:
        records_or_registry = REGISTRY
    if isinstance(records_or_registry, MetricsRegistry):
        records = list(records_or_registry.snapshot())
        records.extend(r.to_dict() for r in overlap or ())
    else:
        records = [r for r in records_or_registry if r.get("kind") != "header"]

    rows: list[tuple[str, str, str]] = []
    overlaps: list[dict[str, Any]] = []
    for rec in records:
        kind = rec.get("kind")
        if kind == "overlap":
            overlaps.append(rec)
            continue
        labels = ",".join(f"{k}={v}" for k, v in sorted(rec.get("labels", {}).items()))
        name = rec["name"] + (f"{{{labels}}}" if labels else "")
        if kind == "histogram":
            value = (
                f"count={rec['count']} mean={_fmt(rec['mean'])} "
                f"p50={_fmt(rec['p50'])} p95={_fmt(rec['p95'])} max={_fmt(rec['max'])}"
            )
        else:
            value = _fmt(rec.get("value"))
        rows.append((kind or "?", name, value))

    width = max((len(r[1]) for r in rows), default=10)
    out = ["metric" + " " * (width - 2) + "value", "-" * (width + 30)]
    for kind, name, value in rows:
        out.append(f"{name:<{width + 2}} {value}")
    if overlaps:
        out.append("")
        out.append("overlap accounting (predicted max{T_tp, T_tf} vs simulated):")
        for rec in overlaps:
            out.append(
                f"  {rec['app']}: efficiency {rec['overlap_efficiency']:.4f} "
                f"(simulated {_fmt(rec['simulated_makespan'])}s, "
                f"T_tp {_fmt(rec['t_tp'])}s, T_tf {_fmt(rec['t_tf'])}s)"
            )
            util = rec.get("utilisation") or {}
            if util:
                out.append(
                    "    utilisation: "
                    + ", ".join(f"{k} {100 * v:.0f}%" for k, v in sorted(util.items()))
                )
    return "\n".join(out)
