"""Cross-run model-fidelity analysis over the run ledger.

The paper's headline empirical claim (Section 4.5) is that the measured
designs reach >85% of the analytical bound ``max{T_tp, T_tf}``.  A
single CI run checks that at one point in time; this module turns the
ledger's ``design_run`` entries into *series* so fidelity is observable
across commits:

* :func:`fidelity_report` -- per app x preset prediction-error series:
  latest / mean / extremes of ``overlap_efficiency``, plus drift of the
  latest run against the history;
* :func:`check` -- the gate: band violations (efficiency below the
  configurable 85% floor) are failures, drift beyond a tolerance is a
  warning;
* :func:`diff_entries` -- field-by-field deltas between any two ledger
  entries (partition decisions, predictions, measurements,
  utilisations), for "what changed between these two runs" forensics.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional

__all__ = [
    "DEFAULT_BAND",
    "DEFAULT_DRIFT_TOLERANCE",
    "FidelityStat",
    "FieldDelta",
    "check",
    "diff_entries",
    "fidelity_report",
    "render_diff",
    "series_by_app_preset",
]

#: The paper's Section 4.5 claim: measured >= 85% of max{T_tp, T_tf}.
DEFAULT_BAND = 0.85

#: Latest-vs-history efficiency drift that triggers a (non-fatal) warning.
DEFAULT_DRIFT_TOLERANCE = 0.05


def _efficiency(entry: dict[str, Any]) -> Optional[float]:
    value = (entry.get("measured") or {}).get("overlap_efficiency")
    return float(value) if value is not None else None


def series_by_app_preset(entries: list[dict[str, Any]]) -> dict[tuple[str, str], list[dict]]:
    """``design_run`` entries grouped by (app, preset), append order kept."""
    series: dict[tuple[str, str], list[dict]] = {}
    for entry in entries:
        if entry.get("kind") != "design_run" or _efficiency(entry) is None:
            continue
        key = (str(entry.get("app")), str(entry.get("preset")))
        series.setdefault(key, []).append(entry)
    return series


@dataclass
class FidelityStat:
    """Prediction-error statistics of one app x preset series."""

    app: str
    preset: str
    count: int
    latest: float  # newest overlap_efficiency
    mean: float
    minimum: float
    maximum: float
    drift: float  # latest minus the mean of the preceding runs (0 if none)
    below_band: list[int] = field(default_factory=list)  # seq of violating entries
    efficiencies: list[float] = field(default_factory=list)  # append order

    def summary(self, band: float = DEFAULT_BAND) -> str:
        flag = "" if not self.below_band else f"  BELOW BAND (seq {self.below_band})"
        return (
            f"{self.app}@{self.preset}: latest {self.latest:.4f}, "
            f"mean {self.mean:.4f} over {self.count} run(s), "
            f"range [{self.minimum:.4f}, {self.maximum:.4f}], "
            f"drift {self.drift:+.4f} (band >= {band:.2f}){flag}"
        )


def fidelity_report(
    entries: list[dict[str, Any]], band: float = DEFAULT_BAND
) -> list[FidelityStat]:
    """Per app x preset fidelity statistics, sorted by (app, preset)."""
    stats = []
    for (app, preset), series in sorted(series_by_app_preset(entries).items()):
        effs = [_efficiency(e) for e in series]
        prior = effs[:-1]
        drift = effs[-1] - (sum(prior) / len(prior)) if prior else 0.0
        stats.append(
            FidelityStat(
                app=app,
                preset=preset,
                count=len(effs),
                latest=effs[-1],
                mean=sum(effs) / len(effs),
                minimum=min(effs),
                maximum=max(effs),
                drift=drift,
                below_band=[int(e.get("seq", -1)) for e, f in zip(series, effs) if f < band],
                efficiencies=effs,
            )
        )
    return stats


def check(
    entries: list[dict[str, Any]],
    band: float = DEFAULT_BAND,
    drift_tolerance: float = DEFAULT_DRIFT_TOLERANCE,
    app: Optional[str] = None,
) -> tuple[list[str], list[str]]:
    """The fidelity gate: ``(failures, warnings)`` message lists.

    A series *fails* when its latest run's ``overlap_efficiency`` falls
    below ``band`` (exactly meeting the band passes).  Drift of the
    latest run beyond ``drift_tolerance`` from the series history is a
    warning only -- efficiency moving *up* still signals a stale model
    calibration worth investigating, not a regression.
    """
    failures, warnings = [], []
    stats = fidelity_report(entries, band=band)
    if app is not None:
        stats = [st for st in stats if st.app == app]
    for st in stats:
        if st.latest < band:
            failures.append(
                f"{st.app}@{st.preset}: latest overlap_efficiency {st.latest:.4f} "
                f"below the {band:.2f} band"
            )
        if st.count > 1 and abs(st.drift) > drift_tolerance:
            warnings.append(
                f"{st.app}@{st.preset}: efficiency drifted {st.drift:+.4f} vs the "
                f"prior mean (tolerance {drift_tolerance:.2f}) -- model fidelity moved"
            )
    return failures, warnings


# ------------------------------------------------------------------ diff

#: Envelope fields never worth diffing numerically.
_SKIP_FIELDS = {"schema", "seq", "ts"}


@dataclass(frozen=True)
class FieldDelta:
    """One differing field between two ledger entries."""

    path: str  # dotted field path, e.g. "measured.overlap_efficiency"
    a: Any
    b: Any

    @property
    def delta(self) -> Optional[float]:
        if isinstance(self.a, (int, float)) and isinstance(self.b, (int, float)):
            return float(self.b) - float(self.a)
        return None

    @property
    def relative(self) -> Optional[float]:
        d = self.delta
        if d is None or not self.a:
            return None
        return d / abs(float(self.a))

    def render(self) -> str:
        if self.delta is not None:
            rel = f", {100 * self.relative:+.2f}%" if self.relative is not None else ""
            return f"{self.path}: {self.a:g} -> {self.b:g} (delta {self.delta:+g}{rel})"
        return f"{self.path}: {self.a!r} -> {self.b!r}"


def _walk(a: Any, b: Any, path: str, out: list[FieldDelta]) -> None:
    if isinstance(a, dict) or isinstance(b, dict):
        a = a if isinstance(a, dict) else {}
        b = b if isinstance(b, dict) else {}
        for key in sorted(set(a) | set(b)):
            if not path and key in _SKIP_FIELDS:
                continue
            _walk(a.get(key), b.get(key), f"{path}.{key}" if path else key, out)
        return
    if a != b:
        out.append(FieldDelta(path, a, b))


def diff_entries(a: dict[str, Any], b: dict[str, Any]) -> list[FieldDelta]:
    """Every field that differs between two ledger entries.

    Nested dicts are flattened to dotted paths; ``schema``/``seq``/``ts``
    (which differ by construction) are skipped at the top level.
    """
    out: list[FieldDelta] = []
    _walk(a, b, "", out)
    return out


def render_diff(a: dict[str, Any], b: dict[str, Any]) -> str:
    """Human-readable per-field diff of two ledger entries."""
    header = (
        f"ledger diff: seq {a.get('seq')} ({a.get('app')}@{a.get('preset')}, "
        f"{a.get('git_sha', '')[:10]}) -> seq {b.get('seq')} "
        f"({b.get('app')}@{b.get('preset')}, {b.get('git_sha', '')[:10]})"
    )
    deltas = diff_entries(a, b)
    if not deltas:
        return header + "\n  (no differing fields)"
    return header + "\n" + "\n".join(f"  {d.render()}" for d in deltas)
