"""Append-only, schema-versioned run ledger (``LEDGER_SCHEMA = 7``).

Every instrumented run -- an LU/FW/MM design run, an experiments sweep,
a ``bench_perf_regression`` baseline check, a fault-injection run, a
statistical campaign, a campaign regression check, a regression
*explanation* (paired-trace blame diff), a guided-search *tune* run
(successive-halving manifest with its Pareto front) or a co-design
*service* job (queue wait, run time, dedup/cache outcome) -- can
append one *manifest* line to a JSON-lines ledger file.  A manifest records everything needed
to compare runs across commits and machines: git SHA, machine preset,
the partition decisions ``(b_p, b_f, l)`` / ``(l1, l2)`` / ``(m_f, r)``,
the model prediction ``max{T_tp, T_tf}``, the simulated makespan,
``overlap_efficiency``, per-resource utilisation, DES throughput, and a
critical-path attribution summary.

The ledger is the persistence layer of the model-fidelity observatory:
:mod:`repro.obs.fidelity` analyses prediction-error series across
entries, and :mod:`repro.obs.dashboard` renders them.  Schema
documentation lives in ``docs/observability.md``.

Like the rest of :mod:`repro.obs`, this module imports nothing from the
rest of :mod:`repro` (stdlib only).
"""

from __future__ import annotations

import json
import os
import subprocess
from datetime import datetime, timezone
from pathlib import Path
from typing import Any, Iterable, Optional

__all__ = [
    "LEDGER_SCHEMA",
    "LedgerError",
    "RunLedger",
    "current_git_sha",
    "design_run_entry",
    "entries_from_metrics",
    "experiments_entry",
    "bench_entry",
    "fault_run_entry",
    "campaign_entry",
    "campaign_check_entry",
    "explain_entry",
    "tune_entry",
    "service_entry",
]

#: Current ledger schema version.  Schema 1 was the metrics-file format
#: (``METRICS_SCHEMA``); the ledger introduced the cross-run manifest as
#: schema 2; schema 3 added the ``fault_run`` kind (resilience manifests
#: from :mod:`repro.faults`); schema 4 adds the ``campaign`` and
#: ``campaign_check`` kinds (replicated-scenario distribution manifests
#: and statistical regression verdicts from :mod:`repro.campaign`);
#: schema 5 adds the ``explain`` kind (paired-trace blame manifests from
#: :mod:`repro.obs.explain` / :mod:`repro.campaign.explain`) and the
#: optional ``workers`` telemetry block on ``campaign`` entries;
#: schema 6 adds the ``tune`` kind (guided-search manifests from
#: :mod:`repro.tune`: successive-halving rungs, the incumbent design
#: and the Pareto front over GFLOPS / slice utilisation / resilience);
#: schema 7 adds the ``service`` kind (co-design-as-a-service job
#: manifests from :mod:`repro.service`: job id/kind, dedup and cache
#: outcome, queue wait, run time, attempts, result hash).
#: Entries written by older schemas remain readable:
#: :meth:`RunLedger.entries` accepts any ``schema <= 7``.  Bump on
#: breaking changes to the entry layout.
LEDGER_SCHEMA = 7

#: Entry kinds the observatory understands.  ``design_run`` entries feed
#: the fidelity analysis, ``fault_run`` entries feed the resilience
#: report, ``campaign``/``campaign_check``/``explain`` entries feed the
#: campaign observatory, ``tune`` entries feed the autotuner's Pareto
#: panel, ``service`` entries feed the job-server panel; the others are
#: audit records.
ENTRY_KINDS = (
    "design_run", "experiments", "bench", "fault_run", "campaign",
    "campaign_check", "explain", "tune", "service",
)

#: Environment override for :func:`current_git_sha` (useful in CI and
#: in tests where the checkout SHA is not the interesting identity).
GIT_SHA_ENV_VAR = "REPRO_GIT_SHA"

#: Environment override for entry timestamps.  CI's bitwise-determinism
#: gate writes the same sweep twice and compares the ledgers byte for
#: byte; pinning the timestamp removes the one legitimately varying
#: field.
LEDGER_TS_ENV_VAR = "REPRO_LEDGER_TS"


class LedgerError(ValueError):
    """A ledger file or entry violates the schema."""


def current_git_sha(cwd: Optional[str | Path] = None) -> str:
    """The current git commit SHA, or ``"unknown"`` outside a checkout.

    ``REPRO_GIT_SHA`` overrides the lookup entirely (no subprocess).
    """
    env = os.environ.get(GIT_SHA_ENV_VAR)
    if env:
        return env
    try:
        proc = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=str(cwd) if cwd is not None else None,
            capture_output=True,
            text=True,
            timeout=10,
        )
    except (OSError, subprocess.SubprocessError):
        return "unknown"
    sha = proc.stdout.strip()
    return sha if proc.returncode == 0 and sha else "unknown"


def _utc_now_iso() -> str:
    env = os.environ.get(LEDGER_TS_ENV_VAR)
    if env:
        return env
    return datetime.now(timezone.utc).strftime("%Y-%m-%dT%H:%M:%SZ")


class RunLedger:
    """An append-only JSON-lines ledger of run manifests.

    One entry per line; ``append`` assigns the schema version, a
    monotonically increasing ``seq`` and a UTC timestamp, then appends
    atomically-enough for a single writer (one ``write`` of one line in
    append mode).  Existing lines are never rewritten.
    """

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)
        if self.path.is_dir():
            self.path = self.path / "ledger.jsonl"

    # -- write ----------------------------------------------------------

    def append(self, entry: dict[str, Any]) -> dict[str, Any]:
        """Append one entry; fills ``schema``/``seq``/``ts``; returns it."""
        kind = entry.get("kind")
        if kind not in ENTRY_KINDS:
            raise LedgerError(f"unknown ledger entry kind {kind!r}; expected one of {ENTRY_KINDS}")
        entry = dict(entry)
        entry["schema"] = LEDGER_SCHEMA
        entry.setdefault("ts", _utc_now_iso())
        entry["seq"] = self._next_seq()
        self.path.parent.mkdir(parents=True, exist_ok=True)
        with open(self.path, "a", encoding="utf-8") as fh:
            fh.write(json.dumps(entry, sort_keys=True) + "\n")
        return entry

    def _next_seq(self) -> int:
        if not self.path.is_file():
            return 1
        last = 0
        for entry in self.entries():
            last = max(last, int(entry.get("seq", 0)))
        return last + 1

    # -- read -----------------------------------------------------------

    def entries(
        self, app: Optional[str] = None, kind: Optional[str] = None
    ) -> list[dict[str, Any]]:
        """All entries in append order, optionally filtered by app/kind.

        Raises :class:`LedgerError` naming the line for malformed JSON
        or a schema version newer than this reader understands.
        """
        if not self.path.is_file():
            return []
        out: list[dict[str, Any]] = []
        with open(self.path, "r", encoding="utf-8") as fh:
            for lineno, line in enumerate(fh, 1):
                line = line.strip()
                if not line:
                    continue
                try:
                    entry = json.loads(line)
                except json.JSONDecodeError as exc:
                    raise LedgerError(f"{self.path}:{lineno}: malformed ledger line ({exc})") from exc
                if not isinstance(entry, dict):
                    raise LedgerError(f"{self.path}:{lineno}: ledger line is not an object")
                schema = entry.get("schema")
                if not isinstance(schema, int) or schema > LEDGER_SCHEMA:
                    raise LedgerError(
                        f"{self.path}:{lineno}: unsupported ledger schema {schema!r} "
                        f"(this reader understands <= {LEDGER_SCHEMA})"
                    )
                if app is not None and entry.get("app") != app:
                    continue
                if kind is not None and entry.get("kind") != kind:
                    continue
                out.append(entry)
        return out

    def resolve(self, ref: str | int) -> dict[str, Any]:
        """One entry by reference: a ``seq`` number, a negative index
        from the end (``-1`` is the latest), or ``"latest"``."""
        entries = self.entries()
        if not entries:
            raise LedgerError(f"ledger {self.path} is empty")
        if ref == "latest":
            return entries[-1]
        try:
            num = int(ref)
        except (TypeError, ValueError):
            raise LedgerError(f"bad entry reference {ref!r}: expected a seq number, "
                              f"a negative index, or 'latest'") from None
        if num < 0:
            try:
                return entries[num]
            except IndexError:
                raise LedgerError(f"index {num} out of range ({len(entries)} entries)") from None
        for entry in entries:
            if entry.get("seq") == num:
                return entry
        raise LedgerError(f"no entry with seq {num} in {self.path}")

    def __len__(self) -> int:
        return len(self.entries())


# ------------------------------------------------------------- builders


def design_run_entry(
    overlap_record: dict[str, Any],
    *,
    preset: Optional[str] = None,
    source: str = "cli",
    git_sha: Optional[str] = None,
    des: Optional[dict[str, Any]] = None,
    critical_path: Optional[dict[str, Any]] = None,
    note: Optional[str] = None,
) -> dict[str, Any]:
    """A ``design_run`` manifest from one metrics-file overlap record.

    ``overlap_record`` is the ``kind == "overlap"`` dict written by
    :meth:`repro.obs.overlap.OverlapReport.to_dict` (meta carries the
    run parameters and the design's partition decisions).
    """
    if overlap_record.get("kind") != "overlap":
        raise LedgerError(f"not an overlap record: kind={overlap_record.get('kind')!r}")
    meta = overlap_record.get("meta") or {}
    params = {
        key: meta[key] for key in ("n", "b", "p", "iterations_run") if meta.get(key) is not None
    }
    predicted = {
        "t_tp": overlap_record.get("t_tp"),
        "t_tf": overlap_record.get("t_tf"),
        "latency": overlap_record.get("predicted_latency"),
    }
    if meta.get("model_latency") is not None:
        predicted["model_latency"] = meta["model_latency"]
    measured = {
        "makespan": overlap_record.get("simulated_makespan"),
        "overlap_efficiency": overlap_record.get("overlap_efficiency"),
        "slowdown_vs_model": overlap_record.get("slowdown_vs_model"),
    }
    if meta.get("gflops") is not None:
        measured["gflops"] = meta["gflops"]
    entry: dict[str, Any] = {
        "kind": "design_run",
        "app": overlap_record.get("app"),
        "preset": preset or "xd1",
        "source": source,
        "git_sha": git_sha if git_sha is not None else current_git_sha(),
        "params": params,
        "partition": dict(meta.get("partition") or {}),
        "predicted": predicted,
        "measured": measured,
        "utilisation": dict(overlap_record.get("utilisation") or {}),
    }
    if des:
        entry["des"] = dict(des)
    if critical_path:
        entry["critical_path"] = dict(critical_path)
    if note:
        entry["note"] = note
    return entry


def _des_stats(records: Iterable[dict[str, Any]], app: str) -> dict[str, Any]:
    """DES counters for ``app`` from metrics records (events, throughput)."""
    out: dict[str, Any] = {}
    for rec in records:
        if rec.get("labels", {}).get("app") != app:
            continue
        name = rec.get("name")
        if name == "des.events_fired":
            out["events_fired"] = rec.get("value")
        elif name == "des.events_per_s":
            out["events_per_s"] = rec.get("value")
    return out


def entries_from_metrics(
    records: list[dict[str, Any]],
    *,
    preset: Optional[str] = None,
    source: str = "cli",
    git_sha: Optional[str] = None,
    critical_paths: Optional[dict[str, dict[str, Any]]] = None,
    note: Optional[str] = None,
) -> list[dict[str, Any]]:
    """``design_run`` manifests for every overlap record in a metrics file.

    ``records`` is the list from :func:`repro.obs.export.read_metrics_jsonl`;
    the header's ``preset`` (when recorded there) seeds the default.
    ``critical_paths`` maps app name -> critical-path summary dict (as
    produced by :meth:`repro.obs.critical_path.CriticalPathReport.to_dict`).
    """
    header = next((r for r in records if r.get("kind") == "header"), {})
    preset = preset or header.get("preset") or "xd1"
    entries = []
    for rec in records:
        if rec.get("kind") != "overlap":
            continue
        app = rec.get("app")
        entries.append(
            design_run_entry(
                rec,
                preset=preset,
                source=source,
                git_sha=git_sha,
                des=_des_stats(records, app) or None,
                critical_path=(critical_paths or {}).get(app),
                note=note,
            )
        )
    if not entries:
        raise LedgerError("no overlap records in metrics file; run with --metrics-out first")
    return entries


def experiments_entry(
    results: Iterable[tuple[str, bool]],
    *,
    sim_points: Optional[int] = None,
    preset: str = "xd1",
    source: str = "cli",
    git_sha: Optional[str] = None,
    note: Optional[str] = None,
    fast_path: Optional[dict[str, Any]] = None,
) -> dict[str, Any]:
    """An ``experiments`` manifest: which reproduction checks passed.

    ``fast_path`` (optional) records analytic fast-path coverage for the
    run: ``{"analytic": n, "des": m, "fallback": {reason: count}}`` as
    produced by :func:`repro.sim.analytic.fastpath_summary`.
    """
    checks = {name: bool(ok) for name, ok in results}
    entry: dict[str, Any] = {
        "kind": "experiments",
        "app": "experiments",
        "preset": preset,
        "source": source,
        "git_sha": git_sha if git_sha is not None else current_git_sha(),
        "checks": checks,
        "passed": sum(checks.values()),
        "failed": sum(1 for ok in checks.values() if not ok),
    }
    if sim_points is not None:
        entry["sim_points"] = sim_points
    if fast_path is not None:
        entry["fast_path"] = fast_path
    if note:
        entry["note"] = note
    return entry


def fault_run_entry(
    result: dict[str, Any],
    *,
    preset: Optional[str] = None,
    source: str = "cli",
    git_sha: Optional[str] = None,
    note: Optional[str] = None,
) -> dict[str, Any]:
    """A ``fault_run`` manifest from one fault-run result dict.

    ``result`` is the dict from
    :meth:`repro.faults.adapt.FaultRunResult.to_dict` (this module stays
    stdlib-only, so it takes the plain dict rather than the object).
    The manifest separates the nominal baseline, the faulted measurement
    and the resilience summary so the dashboard and ``repro faults
    report`` can consume it without re-deriving anything.
    """
    for key in ("app", "scenario", "policy"):
        if not result.get(key):
            raise LedgerError(f"fault-run result is missing {key!r}")
    scenario = result["scenario"]
    if not isinstance(scenario, dict) or not scenario.get("name"):
        raise LedgerError("fault-run result's scenario must be a dict with a name")
    entry: dict[str, Any] = {
        "kind": "fault_run",
        "app": result["app"],
        "preset": preset or result.get("preset") or "xd1",
        "source": source,
        "git_sha": git_sha if git_sha is not None else current_git_sha(),
        "scenario": dict(scenario),
        "policy": result["policy"],
        "p": result.get("p"),
        "p_effective": result.get("p_effective"),
        "partition": dict(result.get("partition") or {}),
        "predicted": {"latency": result.get("predicted_latency")},
        "nominal": {
            "makespan": result.get("nominal_makespan"),
            "overlap_efficiency": result.get("nominal_efficiency"),
        },
        "measured": {
            "makespan": result.get("faulted_makespan"),
            "overlap_efficiency": result.get("faulted_efficiency"),
        },
        "resilience": {
            "makespan_inflation": result.get("makespan_inflation"),
            "efficiency_retention": result.get("efficiency_retention"),
            "recovery_latency": result.get("recovery_latency"),
            "failed": bool(result.get("failed")),
            "failure": result.get("failure"),
        },
        "attribution": dict(result.get("attribution") or {}),
    }
    if note:
        entry["note"] = note
    return entry


def bench_entry(
    outcomes: dict[str, dict[str, Any]],
    *,
    tolerance: Optional[float] = None,
    source: str = "bench",
    git_sha: Optional[str] = None,
    note: Optional[str] = None,
) -> dict[str, Any]:
    """A ``bench`` manifest: one baseline-check outcome per benchmark.

    ``outcomes`` maps bench name -> ``{"measured": ..., "baseline": ...,
    "status": "ok" | "regression" | "stale-baseline"}``.
    """
    statuses = {o.get("status") for o in outcomes.values()}
    entry: dict[str, Any] = {
        "kind": "bench",
        "app": "bench",
        "source": source,
        "git_sha": git_sha if git_sha is not None else current_git_sha(),
        "outcomes": outcomes,
        "ok": "regression" not in statuses,
    }
    if tolerance is not None:
        entry["tolerance"] = tolerance
    if note:
        entry["note"] = note
    return entry


def campaign_entry(
    manifest: dict[str, Any],
    *,
    source: str = "cli",
    git_sha: Optional[str] = None,
    note: Optional[str] = None,
    workers: Optional[dict[str, Any]] = None,
) -> dict[str, Any]:
    """A ``campaign`` manifest: per-cell makespan distributions.

    ``manifest`` is the dict produced by
    :func:`repro.campaign.run_campaign` (this module stays stdlib-only,
    so it takes the plain dict): a ``spec`` block (apps, preset,
    scenarios, replicates, master seed, perturbation model) and a
    ``cells`` map keyed by ``app@preset/scenario`` holding each cell's
    replicate samples, merged histogram and median/IQR/p95/p99 summary.

    ``workers`` optionally attaches executor telemetry for the run (the
    :attr:`repro.parallel.SweepExecutor.last_telemetry` dict plus cache
    stats): per-worker spans, queue waits, imbalance and stragglers.
    It rides on the ledger entry only -- never inside the campaign
    manifest itself, which must stay bitwise-deterministic.
    """
    if manifest.get("kind") != "campaign":
        raise LedgerError(f"not a campaign manifest: kind={manifest.get('kind')!r}")
    for key in ("spec", "cells"):
        if not isinstance(manifest.get(key), dict):
            raise LedgerError(f"campaign manifest is missing {key!r}")
    spec = manifest["spec"]
    entry: dict[str, Any] = {
        "kind": "campaign",
        "app": "campaign",
        "preset": spec.get("preset") or "xd1",
        "source": source,
        "git_sha": git_sha if git_sha is not None else current_git_sha(),
        "manifest_schema": manifest.get("manifest_schema"),
        "spec": dict(spec),
        "cells": dict(manifest["cells"]),
        "replicates": manifest.get("replicates"),
        "points": manifest.get("points"),
        "failures": manifest.get("failures"),
    }
    if workers:
        entry["workers"] = dict(workers)
    if note:
        entry["note"] = note
    return entry


def campaign_check_entry(
    comparison: dict[str, Any],
    *,
    source: str = "cli",
    git_sha: Optional[str] = None,
    note: Optional[str] = None,
) -> dict[str, Any]:
    """A ``campaign_check`` manifest: statistical regression verdicts.

    ``comparison`` is the dict from
    :func:`repro.campaign.compare_campaigns`: per-cell Mann-Whitney
    p-values, median shifts and pass/warn/fail verdicts for a campaign
    against a baseline campaign.
    """
    if manifest_kind := comparison.get("kind"):
        if manifest_kind != "campaign_check":
            raise LedgerError(
                f"not a campaign comparison: kind={manifest_kind!r}"
            )
    if not isinstance(comparison.get("cells"), dict):
        raise LedgerError("campaign comparison is missing 'cells'")
    entry: dict[str, Any] = {
        "kind": "campaign_check",
        "app": "campaign",
        "preset": comparison.get("preset") or "xd1",
        "source": source,
        "git_sha": git_sha if git_sha is not None else current_git_sha(),
        "verdict": comparison.get("verdict"),
        "alpha": comparison.get("alpha"),
        "effect_threshold": comparison.get("effect_threshold"),
        "cells": dict(comparison["cells"]),
        "flagged": list(comparison.get("flagged") or ()),
    }
    if note:
        entry["note"] = note
    return entry


def tune_entry(
    manifest: dict[str, Any],
    *,
    source: str = "cli",
    git_sha: Optional[str] = None,
    note: Optional[str] = None,
    workers: Optional[dict[str, Any]] = None,
) -> dict[str, Any]:
    """A ``tune`` manifest: one guided design-space search.

    ``manifest`` is the dict produced by :func:`repro.tune.run_tune`
    (this module stays stdlib-only, so it takes the plain dict): the
    search spec, rung-by-rung successive-halving summary, DES budget
    accounting, the incumbent design and the Pareto front over
    {GFLOPS, FPGA slice utilisation, resilience-under-faults}.  The
    incumbent and front are hoisted so dashboards index them without
    descending into the embedded manifest.

    ``workers`` optionally attaches executor/cache telemetry for the
    run; like campaign entries, it rides on the ledger entry only --
    the manifest itself stays bitwise-deterministic.
    """
    if manifest.get("kind") != "tune":
        raise LedgerError(f"not a tune manifest: kind={manifest.get('kind')!r}")
    for key in ("spec", "incumbent", "front", "rungs"):
        if key not in manifest:
            raise LedgerError(f"tune manifest is missing {key!r}")
    entry: dict[str, Any] = {
        "kind": "tune",
        "app": manifest.get("app"),
        "preset": manifest.get("preset") or "xd1",
        "source": source,
        "git_sha": git_sha if git_sha is not None else current_git_sha(),
        "manifest_schema": manifest.get("manifest_schema"),
        "spec": dict(manifest["spec"]),
        "space": dict(manifest.get("space") or {}),
        "budget": dict(manifest.get("budget") or {}),
        "evals": dict(manifest.get("evals") or {}),
        "exhaustive_des": manifest.get("exhaustive_des"),
        "savings": dict(manifest.get("savings") or {}),
        "incumbent": dict(manifest["incumbent"]),
        "front": list(manifest["front"]),
        "rungs": list(manifest["rungs"]),
        "objectives": dict(manifest.get("objectives") or {}),
    }
    if manifest.get("scenario") is not None:
        entry["scenario"] = dict(manifest["scenario"])
    if workers:
        entry["workers"] = dict(workers)
    if note:
        entry["note"] = note
    return entry


def explain_entry(
    manifest: dict[str, Any],
    *,
    source: str = "cli",
    git_sha: Optional[str] = None,
    note: Optional[str] = None,
) -> dict[str, Any]:
    """An ``explain`` manifest: a paired-trace blame diff for one cell.

    ``manifest`` is the dict from
    :func:`repro.obs.explain.build_explain`: one flagged replicate
    re-simulated under both builds, the two critical paths diffed per
    resource class / activity phase / concrete lane, each delta glossed
    with the paper Eq-term it loads onto, plus the verdict (``model`` /
    ``improvement`` / ``inconclusive``).  The manifest is embedded
    verbatim -- it is already deterministic and self-contained -- with
    the cell identity hoisted so dashboards can index without descending.
    """
    if manifest.get("kind") != "explain":
        raise LedgerError(f"not an explain manifest: kind={manifest.get('kind')!r}")
    for key in ("cell", "blame", "verdict"):
        if key not in manifest:
            raise LedgerError(f"explain manifest is missing {key!r}")
    entry: dict[str, Any] = {
        "kind": "explain",
        "app": manifest.get("app"),
        "preset": manifest.get("preset") or "xd1",
        "cell": manifest["cell"],
        "source": source,
        "git_sha": git_sha if git_sha is not None else current_git_sha(),
        "verdict": manifest.get("verdict"),
        "top_blame": manifest.get("top_blame"),
        "explain": dict(manifest),
    }
    if note:
        entry["note"] = note
    return entry


def service_entry(
    record: dict[str, Any],
    *,
    source: str = "service",
    git_sha: Optional[str] = None,
    note: Optional[str] = None,
) -> dict[str, Any]:
    """A ``service`` manifest: one finished co-design-service job.

    ``record`` is the plain dict the server builds for each job (this
    module stays stdlib-only, so it never imports :mod:`repro.service`):
    ``job`` (id), ``job_kind`` (design/sweep/faults/campaign/tune/...),
    ``outcome`` (``computed`` -- the runner executed, ``cache`` -- a warm
    :class:`ResultCache` entry answered instantly, or ``failed``),
    ``key`` (the manifest's canonical hash), ``priority``, ``client``,
    ``queue_wait_s``, ``run_s``, ``attempts``, ``dedup_count`` (in-flight
    duplicates collapsed onto this execution) and ``result_hash``.
    Timing fields are wall-clock telemetry; the identity of the work
    lives entirely in ``key``/``result_hash``.
    """
    for key in ("job", "job_kind", "outcome"):
        if not record.get(key):
            raise LedgerError(f"service record is missing {key!r}")
    outcome = record["outcome"]
    if outcome not in ("computed", "cache", "failed"):
        raise LedgerError(
            f"service outcome must be computed/cache/failed, got {outcome!r}"
        )
    entry: dict[str, Any] = {
        "kind": "service",
        "app": "service",
        "source": source,
        "git_sha": git_sha if git_sha is not None else current_git_sha(),
        "job": record["job"],
        "job_kind": record["job_kind"],
        "outcome": outcome,
        "key": record.get("key"),
        "priority": record.get("priority"),
        "client": record.get("client"),
        "queue_wait_s": record.get("queue_wait_s"),
        "run_s": record.get("run_s"),
        "attempts": record.get("attempts"),
        "dedup_count": record.get("dedup_count"),
        "result_hash": record.get("result_hash"),
    }
    if record.get("error"):
        entry["error"] = record["error"]
    if note:
        entry["note"] = note
    return entry
