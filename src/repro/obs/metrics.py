"""Process-wide metrics: counters, gauges and histograms with labels.

The registry is the numeric half of the observability layer (the
:mod:`repro.obs.tracing` spans are the temporal half).  Components grab
an instrument once and update it on their hot path::

    from repro.obs import REGISTRY

    HITS = REGISTRY.counter("cache.hits", layer="result_cache")
    ...
    HITS.inc()

Design constraints, in order:

* **Cheap updates.**  ``Counter.inc`` is one float add; ``Histogram.
  observe`` is a bisect into a fixed bucket table.  Instruments are
  cached by ``(name, labels)`` so lookups happen at setup time, not per
  event.
* **Stdlib only.**  The registry is imported by low-level modules
  (partition solvers, the sweep executor), so it must not pull in any
  part of :mod:`repro` or third-party code.
* **JSON-able snapshots.**  :meth:`MetricsRegistry.snapshot` returns
  plain dicts, one per labelled series, that the exporters in
  :mod:`repro.obs.export` write as JSON lines (schema in
  ``docs/observability.md``).
"""

from __future__ import annotations

from bisect import bisect_right
from typing import Any, Optional

__all__ = [
    "Counter",
    "EXACT_QUANTILE_SAMPLES",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "REGISTRY",
    "get_registry",
]

#: Default histogram bucket upper bounds (seconds-oriented: 1 us .. ~2 min,
#: roughly x4 per step).  A final implicit +inf bucket catches the rest.
DEFAULT_BUCKETS = (
    1e-6, 4e-6, 16e-6, 64e-6, 256e-6,
    1e-3, 4e-3, 16e-3, 64e-3, 256e-3,
    1.0, 4.0, 16.0, 64.0, 128.0,
)

#: Below this observation count a histogram keeps the raw samples and
#: answers quantiles exactly; past it the samples are dropped and the
#: bucket interpolation takes over.  Sized for statistical campaigns
#: (tens of replicates per cell), small enough that the retained list
#: never matters for hot-path instruments.
EXACT_QUANTILE_SAMPLES = 64


def _exact_quantile(ordered: list[float], q: float) -> float:
    """Linear-interpolated quantile of a pre-sorted sample list."""
    n = len(ordered)
    if n == 1:
        return ordered[0]
    pos = q * (n - 1)
    lo = int(pos)
    frac = pos - lo
    if frac == 0.0 or lo + 1 >= n:
        return ordered[lo]
    return ordered[lo] + (ordered[lo + 1] - ordered[lo]) * frac


class Counter:
    """A monotonically increasing value."""

    __slots__ = ("name", "labels", "value")
    kind = "counter"

    def __init__(self, name: str, labels: dict[str, str]) -> None:
        self.name = name
        self.labels = labels
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease (inc {amount})")
        self.value += amount

    def snapshot(self) -> dict[str, Any]:
        return {"kind": "counter", "name": self.name, "labels": self.labels,
                "value": self.value}


class Gauge:
    """A value that can go up and down (queue depth, utilisation, ratio)."""

    __slots__ = ("name", "labels", "value")
    kind = "gauge"

    def __init__(self, name: str, labels: dict[str, str]) -> None:
        self.name = name
        self.labels = labels
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.value -= amount

    def max(self, value: float) -> None:
        """High-water-mark update."""
        if value > self.value:
            self.value = float(value)

    def snapshot(self) -> dict[str, Any]:
        return {"kind": "gauge", "name": self.name, "labels": self.labels,
                "value": self.value}


class Histogram:
    """A fixed-bucket distribution with exact count/sum/min/max.

    Buckets are cumulative-style upper bounds; one implicit ``+inf``
    bucket catches overflow, so ``observe`` never loses an observation.

    Up to :data:`EXACT_QUANTILE_SAMPLES` observations the raw samples
    are retained and :meth:`quantile` is exact; beyond that the samples
    are dropped and quantiles fall back to bucket interpolation.
    Histograms are *mergeable*: :meth:`merge` combines another
    histogram with identical bounds (per-replicate histograms from
    worker processes combine without precision loss -- bucket counts,
    count/sum/min/max and, below the cutoff, the exact samples), and
    :meth:`to_dict`/:meth:`from_dict` round-trip one across a process
    boundary or a JSON manifest.
    """

    __slots__ = (
        "name", "labels", "bounds", "bucket_counts", "count", "sum", "min", "max", "samples",
    )
    kind = "histogram"

    def __init__(
        self, name: str, labels: dict[str, str], buckets: Optional[tuple[float, ...]] = None
    ) -> None:
        self.name = name
        self.labels = labels
        bounds = tuple(buckets) if buckets is not None else DEFAULT_BUCKETS
        if list(bounds) != sorted(bounds):
            raise ValueError(f"histogram buckets must be sorted: {bounds}")
        self.bounds = bounds
        self.bucket_counts = [0] * (len(bounds) + 1)
        self.count = 0
        self.sum = 0.0
        self.min = float("inf")
        self.max = float("-inf")
        #: Raw observations while count <= EXACT_QUANTILE_SAMPLES; None
        #: once the histogram has outgrown exact-quantile mode.
        self.samples: Optional[list[float]] = []

    def observe(self, value: float) -> None:
        self.bucket_counts[bisect_right(self.bounds, value)] += 1
        self.count += 1
        self.sum += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        if self.samples is not None:
            if self.count <= EXACT_QUANTILE_SAMPLES:
                self.samples.append(value)
            else:
                self.samples = None

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Quantile: exact below the sample cutoff, interpolated above.

        Returns 0.0 for an empty histogram; exact min/max at q=0/1.
        While the raw samples are retained (count <=
        :data:`EXACT_QUANTILE_SAMPLES`) the answer is the linear-
        interpolated sample quantile.  Past the cutoff it is a linear
        interpolation within buckets, clamped to the observed
        ``[min, max]`` -- without the clamp, a bucket's nominal bounds
        leak into the answer (most visibly in the overflow bucket,
        whose only honest upper bound is the observed max, and in
        sparse buckets whose upper bound exceeds every sample).
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        if self.count == 0:
            return 0.0
        if q == 0.0:
            return self.min
        if q == 1.0:
            return self.max
        if self.samples is not None:
            return _exact_quantile(sorted(self.samples), q)
        target = q * self.count
        seen = 0
        for i, c in enumerate(self.bucket_counts):
            if seen + c >= target and c > 0:
                lo = self.bounds[i - 1] if i > 0 else min(self.min, self.bounds[0])
                hi = self.bounds[i] if i < len(self.bounds) else self.max
                frac = (target - seen) / c
                return min(max(lo + (hi - lo) * frac, self.min), self.max)
            seen += c
        return self.max  # pragma: no cover - defensive

    def merge(self, other: "Histogram") -> "Histogram":
        """Fold ``other`` into this histogram (identical bounds required).

        Bucket counts, count, sum and the min/max extremes combine
        exactly.  Exact-quantile samples survive as long as the merged
        count stays below the cutoff; otherwise the merged histogram
        degrades to bucket interpolation, the same as if it had seen
        every observation directly.  Returns ``self`` for chaining.
        """
        if self.bounds != other.bounds:
            raise ValueError(
                f"cannot merge histograms with different buckets: "
                f"{self.bounds} vs {other.bounds}"
            )
        for i, c in enumerate(other.bucket_counts):
            self.bucket_counts[i] += c
        self.count += other.count
        self.sum += other.sum
        if other.min < self.min:
            self.min = other.min
        if other.max > self.max:
            self.max = other.max
        if (
            self.samples is not None
            and other.samples is not None
            and self.count <= EXACT_QUANTILE_SAMPLES
        ):
            self.samples.extend(other.samples)
        else:
            self.samples = None
        return self

    def to_dict(self) -> dict[str, Any]:
        """JSON-able state for cross-process transport; see :meth:`from_dict`."""
        return {
            "name": self.name,
            "labels": dict(self.labels),
            "bounds": list(self.bounds),
            "bucket_counts": list(self.bucket_counts),
            "count": self.count,
            "sum": self.sum,
            "min": self.min if self.count else None,
            "max": self.max if self.count else None,
            "samples": list(self.samples) if self.samples is not None else None,
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "Histogram":
        """Rebuild a histogram serialized by :meth:`to_dict`."""
        hist = cls(data["name"], dict(data.get("labels") or {}),
                   buckets=tuple(data["bounds"]))
        hist.bucket_counts = list(data["bucket_counts"])
        hist.count = int(data["count"])
        hist.sum = float(data["sum"])
        hist.min = float("inf") if data.get("min") is None else float(data["min"])
        hist.max = float("-inf") if data.get("max") is None else float(data["max"])
        samples = data.get("samples")
        hist.samples = None if samples is None else [float(v) for v in samples]
        return hist

    def snapshot(self) -> dict[str, Any]:
        return {
            "kind": "histogram",
            "name": self.name,
            "labels": self.labels,
            "count": self.count,
            "sum": self.sum,
            "min": self.min if self.count else None,
            "max": self.max if self.count else None,
            "mean": self.mean,
            "p50": self.quantile(0.5),
            "p95": self.quantile(0.95),
            "buckets": {
                (repr(b) if i < len(self.bounds) else "+inf"): c
                for i, (b, c) in enumerate(
                    zip(self.bounds + (float("inf"),), self.bucket_counts)
                )
                if c
            },
        }


def _series_key(name: str, labels: dict[str, str]) -> tuple:
    return (name, tuple(sorted(labels.items())))


class MetricsRegistry:
    """A namespace of labelled instruments, keyed by ``(name, labels)``.

    ``counter`` / ``gauge`` / ``histogram`` are get-or-create: calling
    twice with the same name and labels returns the same instrument, so
    modules can resolve instruments at import time or lazily per call.
    A name is bound to one instrument kind; mixing kinds is an error.
    """

    def __init__(self) -> None:
        self._series: dict[tuple, Any] = {}

    def _get(self, cls, name: str, labels: dict[str, str], **kwargs):
        key = _series_key(name, labels)
        inst = self._series.get(key)
        if inst is None:
            inst = cls(name, dict(labels), **kwargs)
            self._series[key] = inst
        elif not isinstance(inst, cls):
            raise TypeError(
                f"metric {name!r} already registered as {inst.kind}, requested {cls.kind}"
            )
        return inst

    def counter(self, name: str, **labels: str) -> Counter:
        return self._get(Counter, name, labels)

    def gauge(self, name: str, **labels: str) -> Gauge:
        return self._get(Gauge, name, labels)

    def histogram(
        self, name: str, buckets: Optional[tuple[float, ...]] = None, **labels: str
    ) -> Histogram:
        return self._get(Histogram, name, labels, buckets=buckets)

    # -- introspection --------------------------------------------------

    def __len__(self) -> int:
        return len(self._series)

    def __contains__(self, name: str) -> bool:
        return any(key[0] == name for key in self._series)

    def series(self, name: Optional[str] = None) -> list[Any]:
        """All instruments (optionally only those named ``name``), sorted."""
        items = sorted(self._series.items())
        return [inst for key, inst in items if name is None or key[0] == name]

    def value(self, name: str, **labels: str) -> Any:
        """The current value of one series; KeyError if absent."""
        inst = self._series.get(_series_key(name, labels))
        if inst is None:
            raise KeyError(f"no metric {name!r} with labels {labels}")
        return inst.count if isinstance(inst, Histogram) else inst.value

    def snapshot(self) -> list[dict[str, Any]]:
        """Every series as a JSON-able dict, in sorted (name, labels) order."""
        return [inst.snapshot() for _, inst in sorted(self._series.items())]

    def reset(self) -> None:
        """Drop every series (tests and per-run CLI isolation)."""
        self._series.clear()


#: The process-wide default registry.  Library code records here;
#: exporters snapshot it.  Tests call ``REGISTRY.reset()`` for isolation.
REGISTRY = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    """The process-wide registry (indirection point for tests/tools)."""
    return REGISTRY
