"""Model-vs-measured overlap accounting (the Section 4.5 dashboard).

The paper predicts a hybrid design's latency as ``max{T_tp, T_tf}`` --
the processor-path and FPGA-path totals with all communication and
staging assumed fully overlapped -- and reports that the measured
implementations reach >85% of that bound (~86% for LU, ~96% for FW).
This module turns any simulated run plus its model prediction into an
:class:`OverlapReport` carrying exactly that reconciliation:

* ``overlap_efficiency = predicted_latency / simulated_makespan`` --
  the fraction of the fully-overlapped bound the run achieves (the
  repo's headline ">= 0.85" check), and its exact reciprocal
  ``slowdown_vs_model = simulated_makespan / predicted_latency``;
* per-resource busy time (cpu / fpga / net / dram / sram / mpi),
  aggregated over the per-node trace lanes, with utilisations over the
  simulated window.

Reports are JSON-able and register themselves as gauges so the metrics
exporters pick them up next to the counters.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional

from .metrics import MetricsRegistry, REGISTRY

__all__ = ["OverlapReport", "busy_by_resource", "reconcile"]

#: Trace-lane prefixes -> resource classes for the busy-time rollup.
RESOURCE_PREFIXES = ("cpu", "fpga", "dram", "sram", "mpi", "net")


def _resource_of(lane: str) -> str:
    """Map a trace lane (``cpu3``, ``net0->``) to its resource class."""
    for prefix in RESOURCE_PREFIXES:
        if lane.startswith(prefix):
            return prefix
    return "other"


def busy_by_resource(trace: Any) -> tuple[dict[str, float], dict[str, int]]:
    """``(busy_seconds, lane_counts)`` per resource class from a trace.

    ``trace`` is a :class:`repro.sim.trace.Trace` (duck-typed so this
    module stays import-light).  Per-lane busy time uses the trace's
    overlap-merging accounting; lanes of the same class sum (p nodes
    contribute p lanes each), and the lane count divides the busy time
    back out when computing mean per-lane utilisation.
    """
    busy: dict[str, float] = {}
    counts: dict[str, int] = {}
    if trace is None:
        return busy, counts
    for lane in trace.lanes():
        res = _resource_of(lane)
        busy[res] = busy.get(res, 0.0) + trace.busy_time(lane)
        counts[res] = counts.get(res, 0) + 1
    return busy, counts


@dataclass(frozen=True)
class OverlapReport:
    """One run reconciled against its ``max{T_tp, T_tf}`` prediction."""

    app: str  # "lu" | "fw" | "mm"
    simulated_makespan: float  # measured (simulated) total latency, seconds
    t_tp: float  # model: total processor-path time
    t_tf: float  # model: total FPGA-path time
    predicted_latency: float  # the model's predicted latency
    busy: dict[str, float] = field(default_factory=dict)  # per resource class
    lane_counts: dict[str, int] = field(default_factory=dict)  # lanes per class
    meta: dict[str, Any] = field(default_factory=dict)

    @property
    def overlap_efficiency(self) -> float:
        """Fraction of the ``max{T_tp, T_tf}`` bound the run achieves.

        ~0.97 for FW and ~1.0 for MM; LU lands *above* 1 because the
        serial ``T_tp`` path total overstates its critical path (panel
        and opMM work overlap across nodes).  The repo's headline gate
        is ``>= 0.85``.
        """
        if self.simulated_makespan <= 0:
            return 0.0
        return self.predicted_latency / self.simulated_makespan

    @property
    def slowdown_vs_model(self) -> float:
        """``simulated_makespan / predicted_latency``; the exact
        reciprocal of :attr:`overlap_efficiency`."""
        if self.predicted_latency <= 0:
            return 0.0
        return self.simulated_makespan / self.predicted_latency

    def utilisation(self, resource: str) -> float:
        """Mean per-lane busy fraction of one resource class.

        Busy seconds are aggregated over all lanes of the class (p nodes
        contribute p ``cpu*`` lanes), so the fraction divides by the
        lane count times the window.  The window is the *unextrapolated*
        span the busy time was accumulated over (``meta["window"]`` when
        a truncated run was extrapolated, else the makespan).
        """
        window = self.meta.get("window", self.simulated_makespan)
        lanes = self.lane_counts.get(resource, 1)
        if window <= 0 or lanes < 1:
            return 0.0
        return self.busy.get(resource, 0.0) / (lanes * window)

    def to_dict(self) -> dict[str, Any]:
        """JSON-able form (the ``overlap`` record of the metrics file)."""
        return {
            "kind": "overlap",
            "app": self.app,
            "simulated_makespan": self.simulated_makespan,
            "t_tp": self.t_tp,
            "t_tf": self.t_tf,
            "predicted_latency": self.predicted_latency,
            "overlap_efficiency": self.overlap_efficiency,
            "slowdown_vs_model": self.slowdown_vs_model,
            "busy_seconds": dict(sorted(self.busy.items())),
            "lane_counts": dict(sorted(self.lane_counts.items())),
            "utilisation": {
                res: self.utilisation(res) for res in sorted(self.busy)
            },
            "meta": self.meta,
        }

    def register(self, registry: Optional[MetricsRegistry] = None) -> None:
        """Publish the headline numbers as gauges on ``registry``."""
        reg = registry if registry is not None else REGISTRY
        reg.gauge("overlap.efficiency", app=self.app).set(self.overlap_efficiency)
        reg.gauge("overlap.predicted_latency_s", app=self.app).set(self.predicted_latency)
        reg.gauge("overlap.simulated_makespan_s", app=self.app).set(self.simulated_makespan)
        reg.gauge("overlap.t_tp_s", app=self.app).set(self.t_tp)
        reg.gauge("overlap.t_tf_s", app=self.app).set(self.t_tf)
        for res, busy in self.busy.items():
            reg.gauge("resource.busy_s", app=self.app, resource=res).set(busy)
            reg.gauge("resource.utilisation", app=self.app, resource=res).set(
                self.utilisation(res)
            )

    def summary(self) -> str:
        """One-paragraph human rendering (CLI footers)."""
        util = ", ".join(
            f"{res} {100 * self.utilisation(res):.0f}%"
            for res in ("cpu", "fpga", "net", "dram")
            if res in self.busy
        )
        return (
            f"{self.app}: simulated {self.simulated_makespan:.3f}s vs "
            f"predicted {self.predicted_latency:.3f}s "
            f"(T_tp={self.t_tp:.3f}s, T_tf={self.t_tf:.3f}s) -> "
            f"overlap_efficiency {self.overlap_efficiency:.4f} "
            f"(paper claims >= 0.85); utilisation: {util}"
        )


def reconcile(
    app: str,
    simulated_makespan: float,
    prediction: Any,
    trace: Any = None,
    window: Optional[float] = None,
    registry: Optional[MetricsRegistry] = None,
    **meta: Any,
) -> OverlapReport:
    """Build (and register) an :class:`OverlapReport` for one run.

    ``prediction`` is duck-typed: anything with ``t_tp``/``t_tf``
    attributes (e.g. :class:`repro.core.prediction.Prediction`).  The
    predicted latency is the paper's Section 4.5 bound, literally
    ``max{T_tp, T_tf}`` of the *serial path totals*.  For FW and MM
    (identical, dependence-free phases) that equals the model's refined
    latency exactly; for LU the serial ``T_tp`` overstates the critical
    path -- panels and opMM updates overlap across nodes -- so
    ``overlap_efficiency`` can exceed 1 there.  When the prediction
    carries its own dependence-chained ``latency`` it is preserved as
    ``meta["model_latency"]`` for the finer comparison.  ``window`` is
    the simulated span the trace actually covers, for runs whose
    makespan is extrapolated from a truncated simulation (FW).
    """
    if simulated_makespan < 0:
        raise ValueError(f"negative makespan: {simulated_makespan}")
    t_tp = float(prediction.t_tp)
    t_tf = float(prediction.t_tf)
    model_latency = getattr(prediction, "latency", None)
    if model_latency is not None:
        meta["model_latency"] = float(model_latency)
    if window is not None:
        meta["window"] = window
    busy, lane_counts = busy_by_resource(trace)
    report = OverlapReport(
        app=app,
        simulated_makespan=simulated_makespan,
        t_tp=t_tp,
        t_tf=t_tf,
        predicted_latency=max(t_tp, t_tf),
        busy=busy,
        lane_counts=lane_counts,
        meta=meta,
    )
    report.register(registry)
    return report
