"""Wall-clock span tracing for the harness and sweep engine.

A :class:`Span` is a named wall-time interval with a category and
arbitrary key/value arguments; a :class:`Tracer` collects them.  Spans
cover the *host* side of a run (experiment functions, sweep batches,
cache lookups); the *simulated* side is the
:class:`repro.sim.trace.Trace` lane log.  Both export to the same
Chrome ``trace_event`` timeline via :mod:`repro.obs.export`.

Three usage forms::

    with tracer.span("fig5", category="experiment", points=16):
        ...

    @tracer.trace("solve")
    def solve(...): ...

    span = tracer.begin("map"); ...; tracer.end(span)

Disabled tracing is free: :data:`NULL_TRACER` reuses one inert span for
every call, so instrumented code pays a method call and an empty
``with`` block -- no allocation, no clock read, no list append.  The
module-level default (:func:`get_tracer`) starts disabled; the CLI
enables it for ``--trace-out`` runs.
"""

from __future__ import annotations

import functools
import time
from typing import Any, Callable, Optional

__all__ = [
    "Span",
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "get_tracer",
    "set_tracer",
]


class Span:
    """One named wall-clock interval; also its own context manager."""

    __slots__ = ("tracer", "name", "category", "args", "start", "end", "depth")

    def __init__(self, tracer: "Tracer", name: str, category: str, args: dict[str, Any]) -> None:
        self.tracer = tracer
        self.name = name
        self.category = category
        self.args = args
        self.start = 0.0
        self.end: Optional[float] = None
        self.depth = 0

    @property
    def duration(self) -> float:
        if self.end is None:
            raise RuntimeError(f"span {self.name!r} not finished")
        return self.end - self.start

    def __enter__(self) -> "Span":
        self.tracer._enter(self)
        return self

    def __exit__(self, *exc) -> None:
        self.tracer._exit(self)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = f"{self.duration:.6f}s" if self.end is not None else "open"
        return f"<Span {self.category}:{self.name} {state}>"


class Tracer:
    """Collects completed spans in start order, tracking nesting depth."""

    enabled = True

    def __init__(self, clock: Callable[[], float] = time.perf_counter) -> None:
        self.clock = clock
        self.spans: list[Span] = []
        self._depth = 0
        #: Wall time of the first ``_enter``; Chrome export uses it as t=0.
        self.epoch: Optional[float] = None

    # -- span lifecycle -------------------------------------------------

    def span(self, name: str, category: str = "harness", **args: Any) -> Span:
        """A new unstarted span; use as a context manager."""
        return Span(self, name, category, args)

    def begin(self, name: str, category: str = "harness", **args: Any) -> Span:
        """Imperative form: start a span now; pair with :meth:`end`."""
        sp = Span(self, name, category, args)
        self._enter(sp)
        return sp

    def end(self, span: Span) -> Span:
        self._exit(span)
        return span

    def _enter(self, span: Span) -> None:
        now = self.clock()
        if self.epoch is None:
            self.epoch = now
        span.start = now
        span.depth = self._depth
        self._depth += 1

    def _exit(self, span: Span) -> None:
        span.end = self.clock()
        self._depth -= 1
        self.spans.append(span)

    # -- decorator form -------------------------------------------------

    def trace(self, name: Optional[str] = None, category: str = "harness") -> Callable:
        """Decorator: wrap a function in a span named after it."""

        def decorate(fn: Callable) -> Callable:
            span_name = name or fn.__qualname__

            @functools.wraps(fn)
            def wrapper(*a, **kw):
                with self.span(span_name, category=category):
                    return fn(*a, **kw)

            return wrapper

        return decorate

    # -- introspection --------------------------------------------------

    def __len__(self) -> int:
        return len(self.spans)

    def by_category(self, category: str) -> list[Span]:
        return [sp for sp in self.spans if sp.category == category]

    def reset(self) -> None:
        self.spans.clear()
        self._depth = 0
        self.epoch = None


class _NullSpan:
    """The inert span: enter/exit do nothing, one instance serves all."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc) -> None:
        pass


_NULL_SPAN = _NullSpan()


class NullTracer:
    """The disabled tracer: every call is constant-time and allocation-free."""

    enabled = False
    spans: list = []  # always empty; shared read-only sentinel

    def span(self, name: str, category: str = "harness", **args: Any) -> _NullSpan:
        return _NULL_SPAN

    def begin(self, name: str, category: str = "harness", **args: Any) -> _NullSpan:
        return _NULL_SPAN

    def end(self, span: Any) -> Any:
        return span

    def trace(self, name: Optional[str] = None, category: str = "harness") -> Callable:
        """Decorator form: returns the function unchanged (zero overhead)."""

        def decorate(fn: Callable) -> Callable:
            return fn

        return decorate

    def __len__(self) -> int:
        return 0

    def by_category(self, category: str) -> list:
        return []

    def reset(self) -> None:
        pass


#: Shared disabled tracer; safe to hand to any component.
NULL_TRACER = NullTracer()

_TRACER: Tracer | NullTracer = NULL_TRACER


def get_tracer() -> Tracer | NullTracer:
    """The process-wide tracer (disabled unless :func:`set_tracer` ran)."""
    return _TRACER


def set_tracer(tracer: Tracer | NullTracer) -> Tracer | NullTracer:
    """Install ``tracer`` as the process-wide tracer; returns the previous."""
    global _TRACER
    prev = _TRACER
    _TRACER = tracer
    return prev
