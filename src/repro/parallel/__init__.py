"""Sweep execution subsystem: parallel fan-out and content-addressed caching.

Every figure/table reproduction is a sweep over independent design points;
this package makes those sweeps fast and incremental:

* :mod:`repro.parallel.grid` -- canonical hashing of design-point
  parameters (the cache key machinery) and cartesian parameter grids,
* :mod:`repro.parallel.cache` -- a content-addressed JSON result cache
  under ``.repro_cache/`` keyed on (params, machine, code-version salt),
* :mod:`repro.parallel.executor` -- a process-pool fan-out executor with
  deterministic result ordering and a serial fallback.

Opt-in knobs: the ``REPRO_PARALLEL`` environment variable or ``--jobs``
CLI flag select worker count; ``REPRO_CACHE`` points the cache somewhere
other than ``.repro_cache/`` (or disables it with ``off``).
"""

from .cache import CODE_SALT, ResultCache, cache_from_env
from .executor import SweepExecutor, resolve_jobs
from .grid import ParamGrid, canonical, canonical_json, canonical_key

__all__ = [
    "CODE_SALT",
    "ResultCache",
    "cache_from_env",
    "SweepExecutor",
    "resolve_jobs",
    "ParamGrid",
    "canonical",
    "canonical_json",
    "canonical_key",
]
