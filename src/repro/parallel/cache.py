"""Content-addressed result cache for sweep points.

Results are stored as JSON files under ``.repro_cache/`` (or the path in
the ``REPRO_CACHE`` environment variable), addressed by a sha256 of the
canonical form of the evaluation payload -- typically a dict of
(kind, machine-spec parameters, simulation config) -- salted with
:data:`CODE_SALT`.  Bumping the salt when the model/simulator semantics
change invalidates every prior entry at once without touching the files.

Values must be JSON round-trippable.  Floats survive exactly (``json``
serialises via ``repr`` and parses back to the identical double), so
cached sweeps reproduce bit-identical experiment text and checks.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from pathlib import Path
from typing import Any, Callable, Optional

from ..obs.metrics import REGISTRY
from .grid import canonical_json

__all__ = ["CODE_SALT", "ResultCache", "cache_from_env"]

#: Version salt mixed into every cache key.  Bump when simulator or model
#: semantics change so stale results can never be replayed.
CODE_SALT = "repro-model-v1"

#: Default cache directory, relative to the current working directory.
DEFAULT_CACHE_DIR = ".repro_cache"

#: Environment variable overriding the cache location ("off"/"0" disables).
CACHE_ENV_VAR = "REPRO_CACHE"


class ResultCache:
    """A content-addressed JSON store for design-point results.

    Parameters
    ----------
    root:
        Directory holding the cache (created lazily on first write).
    salt:
        Version string mixed into every key; defaults to :data:`CODE_SALT`.

    Entries live at ``<root>/<key[:2]>/<key>.json`` (fan-out over 256
    subdirectories keeps directory listings manageable for large sweeps).
    Caches written by older builds stored entries flat at
    ``<root>/<key>.json``; those are still readable and are migrated into
    their shard directory transparently on first hit, so a warm cache
    survives the layout change without a recompute.
    Writes are atomic (tmp file + rename), so concurrent workers racing
    on the same point at worst both compute it; neither sees a torn file.
    """

    def __init__(self, root: str | Path = DEFAULT_CACHE_DIR, salt: str = CODE_SALT) -> None:
        self.root = Path(root)
        self.salt = salt
        self.lookups = 0
        self.hits = 0
        self.misses = 0
        self.puts = 0
        self.evictions = 0
        # Mirror the counters into the process registry so cache health
        # shows up in every metrics export without plumbing the instance.
        self._m_hits = REGISTRY.counter("cache.hits", layer="result_cache")
        self._m_misses = REGISTRY.counter("cache.misses", layer="result_cache")
        self._m_puts = REGISTRY.counter("cache.puts", layer="result_cache")
        self._m_evictions = REGISTRY.counter("cache.evictions", layer="result_cache")

    # -- keys -----------------------------------------------------------

    def key_for(self, payload: Any) -> str:
        """The cache key for ``payload`` under this cache's salt."""
        text = f"{self.salt}\n{canonical_json(payload)}"
        return hashlib.sha256(text.encode("utf-8")).hexdigest()

    def _path(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.json"

    def _flat_path(self, key: str) -> Path:
        """Where a pre-sharding build would have stored ``key``."""
        return self.root / f"{key}.json"

    def _migrate_flat(self, key: str) -> Optional[dict[str, Any]]:
        """Read a flat-layout entry for ``key``, moving it into its shard.

        Returns the entry, or None when no legacy file exists.  Migration
        uses an atomic rename; a concurrent reader either finds the flat
        file or the sharded one, never neither.
        """
        flat = self._flat_path(key)
        try:
            with open(flat, "r", encoding="utf-8") as fh:
                entry = json.load(fh)
        except (FileNotFoundError, json.JSONDecodeError):
            return None
        dest = self._path(key)
        try:
            dest.parent.mkdir(parents=True, exist_ok=True)
            os.replace(flat, dest)
        except OSError:
            pass  # read-only cache dir: serve the entry, retry the move later
        return entry

    # -- store ----------------------------------------------------------

    def get(self, payload: Any) -> Optional[dict[str, Any]]:
        """The stored entry for ``payload``, or None.  Counts a lookup."""
        self.lookups += 1
        key = self.key_for(payload)
        path = self._path(key)
        try:
            with open(path, "r", encoding="utf-8") as fh:
                entry = json.load(fh)
        except (FileNotFoundError, json.JSONDecodeError):
            entry = self._migrate_flat(key)
            if entry is None:
                self.misses += 1
                self._m_misses.inc()
                return None
        self.hits += 1
        self._m_hits.inc()
        return entry

    def put(self, payload: Any, value: Any) -> None:
        """Store ``value`` for ``payload`` (atomically)."""
        key = self.key_for(payload)
        path = self._path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        entry = {"salt": self.salt, "payload": canonical_json(payload), "value": value}
        fd, tmp = tempfile.mkstemp(dir=path.parent, prefix=".tmp-", suffix=".json")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as fh:
                json.dump(entry, fh)
            os.replace(tmp, path)
            self.puts += 1
            self._m_puts.inc()
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    def cached_eval(self, payload: Any, compute: Callable[[], Any]) -> Any:
        """``compute()``'s value for ``payload``, from cache when possible.

        The workhorse call: experiments wrap each simulation in this so a
        warm re-run replays stored values instead of re-simulating.
        """
        entry = self.get(payload)
        if entry is not None:
            return entry["value"]
        value = compute()
        self.put(payload, value)
        return value

    # -- maintenance ----------------------------------------------------

    def clear(self) -> int:
        """Delete every entry; returns the number of files removed.

        Each removed file counts as an eviction in :attr:`stats`.
        """
        removed = 0
        if not self.root.is_dir():
            return 0
        for sub in self.root.iterdir():
            if sub.is_dir():
                for path in sub.glob("*.json"):
                    path.unlink()
                    removed += 1
            elif sub.suffix == ".json":  # legacy flat-layout entry
                sub.unlink()
                removed += 1
        self.evictions += removed
        self._m_evictions.inc(removed)
        return removed

    @property
    def stats(self) -> dict[str, int]:
        """Lookup/hit/miss/put/evict counters since construction."""
        return {
            "lookups": self.lookups,
            "hits": self.hits,
            "misses": self.misses,
            "puts": self.puts,
            "evictions": self.evictions,
        }

    @property
    def hit_rate(self) -> float:
        """Hits per lookup (0.0 before the first lookup)."""
        return self.hits / self.lookups if self.lookups else 0.0

    def footer(self) -> str:
        """One-line run summary for CLI output."""
        return (
            f"cache {self.root}: {self.lookups} lookups, {self.hits} hits "
            f"({100 * self.hit_rate:.0f}%), {self.misses} misses, "
            f"{self.puts} stored, {self.evictions} evicted"
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<ResultCache {self.root} salt={self.salt!r} {self.stats}>"


def cache_from_env(default: Optional[str] = None) -> Optional[ResultCache]:
    """Build a cache from ``REPRO_CACHE`` (or ``default`` when unset).

    Values ``off``, ``0`` and ``none`` disable caching; anything else is
    the cache directory.  Returns None when disabled/unconfigured.
    """
    raw = os.environ.get(CACHE_ENV_VAR, default)
    if raw is None:
        return None
    if raw.strip().lower() in ("", "off", "0", "none", "false"):
        return None
    return ResultCache(raw)
