"""Process-pool fan-out for sweep grids.

:class:`SweepExecutor` maps a point function over a grid of values,
sharding across worker processes when that pays and falling back to a
plain serial loop when it does not (one job, a tiny grid, or a point
function that cannot cross a process boundary).  Results always come
back in input order, so sweeps are bitwise-deterministic regardless of
worker count.

Transport: tasks are submitted as contiguous chunks (one future per
chunk, a few chunks per worker for load balancing) and each worker
serialises its chunk's results with pickle protocol 5 before they cross
the process boundary, so a sweep pays one round-trip per chunk instead
of one per point.

Worker count resolution (first match wins):

1. the ``jobs`` argument,
2. the ``REPRO_PARALLEL`` environment variable (``auto`` = CPU count),
3. serial (1).
"""

from __future__ import annotations

import os
import pickle
import time
from concurrent.futures import ProcessPoolExecutor
from typing import Any, Callable, Iterable, Optional, Sequence, TypeVar

from ..obs.metrics import REGISTRY
from ..obs.tracing import get_tracer

__all__ = ["SweepExecutor", "resolve_jobs"]

T = TypeVar("T")
R = TypeVar("R")

#: Environment variable selecting the default worker count.
PARALLEL_ENV_VAR = "REPRO_PARALLEL"

#: Grids smaller than ``jobs * MIN_POINTS_PER_JOB`` run serially: pool
#: startup (fork + import) costs more than a handful of model solves.
MIN_POINTS_PER_JOB = 2

#: Chunks submitted per worker: enough for load balancing, few enough
#: that per-chunk submission and transport overhead stays negligible.
CHUNKS_PER_WORKER = 4

#: A worker whose busy time exceeds the median by this factor is a
#: straggler (reported in :attr:`SweepExecutor.last_telemetry` and the
#: dashboard's worker panel).
STRAGGLER_FACTOR = 1.5


def resolve_jobs(jobs: Optional[int | str] = None) -> int:
    """The effective worker count for ``jobs`` (see module docstring)."""
    raw: Any = jobs if jobs is not None else os.environ.get(PARALLEL_ENV_VAR)
    if raw is None:
        return 1
    if isinstance(raw, str):
        raw = raw.strip().lower()
        if raw in ("", "0"):
            return 1
        if raw == "auto":
            return os.cpu_count() or 1
        try:
            raw = int(raw)
        except ValueError:
            raise ValueError(f"invalid jobs value {raw!r}: expected an integer or 'auto'")
    if raw < 0:
        raise ValueError(f"jobs must be >= 0, got {raw}")
    return max(1, int(raw))


def _is_picklable(fn: Callable[..., Any]) -> bool:
    try:
        pickle.dumps(fn)
    except Exception:
        return False
    return True


def _run_chunk(fn: Callable[[Any], Any], chunk: list[Any]) -> bytes:
    """Worker-side chunk evaluation; results travel as one protocol-5 blob.

    Serialising in the worker keeps the result transport a single opaque
    ``bytes`` per chunk (protocol 5 supports out-of-band buffers for
    large payloads), instead of one executor round-trip per point.

    Alongside the results the blob carries a per-chunk worker span --
    pid plus wall-clock start/end (``time.time``, comparable across
    processes on one host) -- which the parent folds into per-worker
    telemetry: queue waits, busy time, imbalance, stragglers.
    """
    start = time.time()
    results = [fn(v) for v in chunk]
    return pickle.dumps(
        {"results": results, "pid": os.getpid(), "start": start, "end": time.time()},
        protocol=5,
    )


class SweepExecutor:
    """Maps point functions over sweep grids, optionally in parallel.

    Parameters
    ----------
    jobs:
        Worker count, ``"auto"``, or None to consult ``REPRO_PARALLEL``.

    The worker pool is created lazily on the first parallel :meth:`map`
    and reused across calls, so repeated sweeps (a whole ``configured()``
    block) pay pool startup once.  Call :meth:`close` (or use the
    executor via :func:`repro.experiments.configured`, which does) to
    release the workers; a closed executor transparently re-opens the
    pool if mapped again.
    """

    def __init__(self, jobs: Optional[int | str] = None) -> None:
        self.jobs = resolve_jobs(jobs)
        #: How the last map() call ran ("serial" | "parallel"); for tests
        #: and benchmark reporting.
        self.last_mode: str = "serial"
        #: Executor telemetry of the last map() call: mode, task/chunk
        #: counts, per-worker spans (pid, chunks, tasks, busy seconds),
        #: queue-wait stats, busy-time imbalance and straggler worker
        #: indices.  Wall-clock data -- feed it to dashboards and the
        #: ledger's ``workers`` block, never into deterministic
        #: manifests.  Empty until the first map().
        self.last_telemetry: dict[str, Any] = {}
        #: Optional owner tag (e.g. a service job id).  When set, every
        #: map() stamps it into :attr:`last_telemetry` as ``scope`` so a
        #: shared long-lived executor can attribute pool health to the
        #: job that produced it.
        self.scope: Optional[str] = None
        self._pool: Optional[ProcessPoolExecutor] = None

    def close(self) -> None:
        """Shut down the persistent worker pool, if one was started."""
        pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=True)

    def __enter__(self) -> "SweepExecutor":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()

    def __del__(self) -> None:  # pragma: no cover - GC safety net
        try:
            self.close()
        except Exception:
            pass

    def _ensure_pool(self) -> ProcessPoolExecutor:
        if self._pool is None:
            self._pool = ProcessPoolExecutor(max_workers=self.jobs)
        return self._pool

    def map(self, fn: Callable[[T], R], values: Iterable[T]) -> list[R]:
        """``[fn(v) for v in values]``, sharded across workers when useful.

        Results are returned in input order.  Falls back to the serial
        loop when ``jobs <= 1``, when the grid is too small to amortise
        pool startup, or when ``fn`` is not picklable (lambdas/closures).
        """
        items: Sequence[T] = values if isinstance(values, Sequence) else list(values)
        n = len(items)
        tracer = get_tracer()
        if (
            self.jobs <= 1
            or n < self.jobs * MIN_POINTS_PER_JOB
            or n <= 1
            or not _is_picklable(fn)
        ):
            self.last_mode = "serial"
            # Per-task latency is only observable serially; in the pool
            # path tasks run in worker interpreters and we record the
            # batch instead.  Task granularity is a whole simulation, so
            # the two clock reads per task are noise.
            task_hist = REGISTRY.histogram("sweep.task_seconds", mode="serial")
            results = []
            map_start = time.perf_counter()
            with tracer.span("sweep.map", category="sweep", mode="serial", tasks=n):
                for v in items:
                    t0 = time.perf_counter()
                    results.append(fn(v))
                    task_hist.observe(time.perf_counter() - t0)
            REGISTRY.counter("sweep.tasks", mode="serial").inc(n)
            REGISTRY.counter("sweep.maps", mode="serial").inc()
            self.last_telemetry = {
                "mode": "serial",
                "workers": 1,
                "tasks": n,
                "chunks": 0,
                "elapsed_s": time.perf_counter() - map_start,
            }
            if self.scope is not None:
                self.last_telemetry["scope"] = self.scope
            return results
        self.last_mode = "parallel"
        workers = min(self.jobs, n)
        # Chunk so each worker gets a few batches (load balancing) without
        # per-point IPC overhead; one future per chunk, results as a
        # single protocol-5 blob each.
        chunksize = max(1, -(-n // (workers * CHUNKS_PER_WORKER)))
        chunks = [list(items[i : i + chunksize]) for i in range(0, n, chunksize)]
        t0 = time.perf_counter()
        with tracer.span("sweep.map", category="sweep", mode="parallel", tasks=n,
                         workers=workers, chunksize=chunksize):
            pool = self._ensure_pool()
            futures = []
            for chunk in chunks:
                futures.append((pool.submit(_run_chunk, fn, chunk), time.time(), len(chunk)))
            results = []
            spans = []
            for fut, submitted, size in futures:
                payload = pickle.loads(fut.result())
                results.extend(payload["results"])
                spans.append(
                    {
                        "pid": payload["pid"],
                        "start": payload["start"],
                        "end": payload["end"],
                        "queue_wait": max(0.0, payload["start"] - submitted),
                        "tasks": size,
                    }
                )
        elapsed = time.perf_counter() - t0
        self.last_telemetry = self._fold_telemetry(workers, n, spans, elapsed)
        if self.scope is not None:
            self.last_telemetry["scope"] = self.scope
        REGISTRY.counter("sweep.tasks", mode="parallel").inc(n)
        REGISTRY.counter("sweep.maps", mode="parallel").inc()
        REGISTRY.gauge("sweep.workers").max(workers)
        if elapsed > 0:
            # Throughput-derived mean task latency: the per-worker wall
            # share, our utilisation proxy for the pool path.
            REGISTRY.histogram("sweep.task_seconds", mode="parallel").observe(
                elapsed * workers / n
            )
            REGISTRY.gauge("sweep.last_points_per_s").set(n / elapsed)
        return results

    def _fold_telemetry(
        self,
        workers: int,
        tasks: int,
        spans: list[dict[str, Any]],
        elapsed: float,
    ) -> dict[str, Any]:
        """Per-chunk worker spans folded into the pool-health summary.

        Workers are indexed by first-seen pid order (stable for one
        pool); ``imbalance`` is max/mean busy time (1.0 = perfectly
        balanced) and ``stragglers`` lists worker indices whose busy
        time exceeds :data:`STRAGGLER_FACTOR` x the median -- the "this
        wasn't the model, worker 3 stalled" signal for explanations
        whose paired sim re-runs agree.
        """
        per_pid: dict[int, dict[str, Any]] = {}
        wait_hist = REGISTRY.histogram("sweep.queue_wait_seconds")
        for span in spans:
            stats = per_pid.setdefault(
                span["pid"], {"chunks": 0, "tasks": 0, "busy_s": 0.0}
            )
            stats["chunks"] += 1
            stats["tasks"] += span["tasks"]
            stats["busy_s"] += span["end"] - span["start"]
            wait_hist.observe(span["queue_wait"])
        per_worker = [
            {"worker": i, "pid": pid, **per_pid[pid]}
            for i, pid in enumerate(per_pid)
        ]
        busy = sorted(w["busy_s"] for w in per_worker)
        mean_busy = sum(busy) / len(busy) if busy else 0.0
        median_busy = busy[len(busy) // 2] if busy else 0.0
        imbalance = busy[-1] / mean_busy if busy and mean_busy > 0 else 1.0
        stragglers = [
            w["worker"]
            for w in per_worker
            if median_busy > 0 and w["busy_s"] > STRAGGLER_FACTOR * median_busy
        ]
        waits = [s["queue_wait"] for s in spans]
        REGISTRY.gauge("sweep.imbalance").set(imbalance)
        if stragglers:
            REGISTRY.counter("sweep.stragglers").inc(len(stragglers))
        return {
            "mode": "parallel",
            "workers": workers,
            "tasks": tasks,
            "chunks": len(spans),
            "elapsed_s": elapsed,
            "per_worker": per_worker,
            "queue_wait_s": {
                "max": max(waits) if waits else 0.0,
                "mean": sum(waits) / len(waits) if waits else 0.0,
            },
            "imbalance": imbalance,
            "stragglers": stragglers,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<SweepExecutor jobs={self.jobs}>"
