"""Process-pool fan-out for sweep grids.

:class:`SweepExecutor` maps a point function over a grid of values,
sharding across worker processes when that pays and falling back to a
plain serial loop when it does not (one job, a tiny grid, or a point
function that cannot cross a process boundary).  Results always come
back in input order, so sweeps are bitwise-deterministic regardless of
worker count.

Worker count resolution (first match wins):

1. the ``jobs`` argument,
2. the ``REPRO_PARALLEL`` environment variable (``auto`` = CPU count),
3. serial (1).
"""

from __future__ import annotations

import os
import pickle
import time
from concurrent.futures import ProcessPoolExecutor
from typing import Any, Callable, Iterable, Optional, Sequence, TypeVar

from ..obs.metrics import REGISTRY
from ..obs.tracing import get_tracer

__all__ = ["SweepExecutor", "resolve_jobs"]

T = TypeVar("T")
R = TypeVar("R")

#: Environment variable selecting the default worker count.
PARALLEL_ENV_VAR = "REPRO_PARALLEL"

#: Grids smaller than ``jobs * MIN_POINTS_PER_JOB`` run serially: pool
#: startup (fork + import) costs more than a handful of model solves.
MIN_POINTS_PER_JOB = 2


def resolve_jobs(jobs: Optional[int | str] = None) -> int:
    """The effective worker count for ``jobs`` (see module docstring)."""
    raw: Any = jobs if jobs is not None else os.environ.get(PARALLEL_ENV_VAR)
    if raw is None:
        return 1
    if isinstance(raw, str):
        raw = raw.strip().lower()
        if raw in ("", "0"):
            return 1
        if raw == "auto":
            return os.cpu_count() or 1
        try:
            raw = int(raw)
        except ValueError:
            raise ValueError(f"invalid jobs value {raw!r}: expected an integer or 'auto'")
    if raw < 0:
        raise ValueError(f"jobs must be >= 0, got {raw}")
    return max(1, int(raw))


def _is_picklable(fn: Callable[..., Any]) -> bool:
    try:
        pickle.dumps(fn)
    except Exception:
        return False
    return True


class SweepExecutor:
    """Maps point functions over sweep grids, optionally in parallel.

    Parameters
    ----------
    jobs:
        Worker count, ``"auto"``, or None to consult ``REPRO_PARALLEL``.

    The executor is stateless between calls (pools are created per
    :meth:`map`), so a single instance can be shared freely; it is also
    safe to use from within pytest and the CLI.
    """

    def __init__(self, jobs: Optional[int | str] = None) -> None:
        self.jobs = resolve_jobs(jobs)
        #: How the last map() call ran ("serial" | "parallel"); for tests
        #: and benchmark reporting.
        self.last_mode: str = "serial"

    def map(self, fn: Callable[[T], R], values: Iterable[T]) -> list[R]:
        """``[fn(v) for v in values]``, sharded across workers when useful.

        Results are returned in input order.  Falls back to the serial
        loop when ``jobs <= 1``, when the grid is too small to amortise
        pool startup, or when ``fn`` is not picklable (lambdas/closures).
        """
        items: Sequence[T] = values if isinstance(values, Sequence) else list(values)
        n = len(items)
        tracer = get_tracer()
        if (
            self.jobs <= 1
            or n < self.jobs * MIN_POINTS_PER_JOB
            or n <= 1
            or not _is_picklable(fn)
        ):
            self.last_mode = "serial"
            # Per-task latency is only observable serially; in the pool
            # path tasks run in worker interpreters and we record the
            # batch instead.  Task granularity is a whole simulation, so
            # the two clock reads per task are noise.
            task_hist = REGISTRY.histogram("sweep.task_seconds", mode="serial")
            results = []
            with tracer.span("sweep.map", category="sweep", mode="serial", tasks=n):
                for v in items:
                    t0 = time.perf_counter()
                    results.append(fn(v))
                    task_hist.observe(time.perf_counter() - t0)
            REGISTRY.counter("sweep.tasks", mode="serial").inc(n)
            REGISTRY.counter("sweep.maps", mode="serial").inc()
            return results
        self.last_mode = "parallel"
        workers = min(self.jobs, n)
        # Chunk so each worker gets a few batches (load balancing) without
        # per-point IPC overhead.
        chunksize = max(1, -(-n // (workers * 4)))
        t0 = time.perf_counter()
        with tracer.span("sweep.map", category="sweep", mode="parallel", tasks=n,
                         workers=workers, chunksize=chunksize):
            with ProcessPoolExecutor(max_workers=workers) as pool:
                results = list(pool.map(fn, items, chunksize=chunksize))
        elapsed = time.perf_counter() - t0
        REGISTRY.counter("sweep.tasks", mode="parallel").inc(n)
        REGISTRY.counter("sweep.maps", mode="parallel").inc()
        REGISTRY.gauge("sweep.workers").max(workers)
        if elapsed > 0:
            # Throughput-derived mean task latency: the per-worker wall
            # share, our utilisation proxy for the pool path.
            REGISTRY.histogram("sweep.task_seconds", mode="parallel").observe(
                elapsed * workers / n
            )
            REGISTRY.gauge("sweep.last_points_per_s").set(n / elapsed)
        return results

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<SweepExecutor jobs={self.jobs}>"
