"""Canonical forms and parameter grids for sweep points.

A design point is identified by its parameters, not by Python object
identity: two sweeps that evaluate ``simulate_lu`` on the same machine
spec and config must produce the same cache key even though the frozen
dataclasses were constructed separately.  :func:`canonical` reduces
parameter structures to a deterministic JSON-able form, and
:func:`canonical_key` hashes that form into a hex digest used as the
cache address.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import math
from itertools import product
from typing import Any, Iterator, Mapping, Sequence

__all__ = ["canonical", "canonical_json", "canonical_key", "ParamGrid"]


def canonical(value: Any) -> Any:
    """Reduce ``value`` to a deterministic JSON-able structure.

    Dataclasses become ``{"__dataclass__": <qualified name>, <fields>...}``
    so that two different dataclasses with identical field values do not
    collide.  Mappings are key-sorted; sets are sorted; tuples/lists both
    become lists (a sweep over ``(1, 2)`` and ``[1, 2]`` is the same
    sweep).  NumPy scalars reduce to their Python equivalents via
    ``item()``; floats stay floats (``repr`` round-trips exactly through
    JSON, so keys are bit-precise).
    """
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        cls = type(value)
        out: dict[str, Any] = {"__dataclass__": f"{cls.__module__}.{cls.__qualname__}"}
        for field in dataclasses.fields(value):
            out[field.name] = canonical(getattr(value, field.name))
        return out
    if isinstance(value, Mapping):
        items = [(str(k), canonical(v)) for k, v in value.items()]
        items.sort(key=lambda kv: kv[0])
        return dict(items)
    if isinstance(value, (list, tuple)):
        return [canonical(v) for v in value]
    if isinstance(value, (set, frozenset)):
        return sorted((canonical(v) for v in value), key=repr)
    if isinstance(value, (str, int, float, bool)) or value is None:
        if isinstance(value, float) and not math.isfinite(value):
            # json.dumps would emit non-standard ``NaN``/``Infinity`` tokens
            # that strict parsers reject, so keys stop round-tripping.
            raise TypeError(
                f"cannot canonicalise non-finite float {value!r}: "
                "cache keys must be strict JSON"
            )
        return value
    # NumPy scalars (and anything else with an exact Python equivalent).
    item = getattr(value, "item", None)
    if callable(item):
        got = item()
        if isinstance(got, (str, int, float, bool)) or got is None:
            return canonical(got)
    raise TypeError(f"cannot canonicalise {type(value).__name__!r} value {value!r}")


def canonical_json(value: Any) -> str:
    """The canonical JSON text of ``value`` (sorted keys, no whitespace)."""
    # allow_nan=False backstops :func:`canonical`: nothing non-finite may
    # reach the wire even through a future canonicalisation hole.
    return json.dumps(
        canonical(value), sort_keys=True, separators=(",", ":"), allow_nan=False
    )


def canonical_key(value: Any) -> str:
    """A stable sha256 hex digest of ``value``'s canonical form."""
    return hashlib.sha256(canonical_json(value).encode("utf-8")).hexdigest()


def _dedup(values: Sequence[Any]) -> tuple[Any, ...]:
    """``values`` with duplicates dropped, first occurrence order kept.

    Equality is judged on the canonical JSON form -- the same identity
    the cache keys on, so two values collapse exactly when they would
    address the same cache entry.  Values that cannot be canonicalised
    are kept verbatim and left for the cache layer to reject later.
    """
    seen: set[str] = set()
    out: list[Any] = []
    for value in values:
        try:
            marker = canonical_json(value)
        except TypeError:
            out.append(value)
            continue
        if marker in seen:
            continue
        seen.add(marker)
        out.append(value)
    return tuple(out)


class ParamGrid:
    """A cartesian product of named parameter axes, in deterministic order.

    >>> grid = ParamGrid(b=[1500, 3000], l=[2, 3])
    >>> [p["b"] for p in grid]
    [1500, 1500, 3000, 3000]

    Axis order follows declaration order; the rightmost axis varies
    fastest, like nested for-loops.

    Repeated values on an axis are dropped (first occurrence wins), so
    e.g. a ratio axis whose rounded values coincide does not schedule the
    same point twice within one sweep:

    >>> len(ParamGrid(l=[2, 2, 3]))
    2
    """

    def __init__(self, **axes: Sequence[Any]) -> None:
        if not axes:
            raise ValueError("ParamGrid requires at least one axis")
        self.axes: dict[str, tuple[Any, ...]] = {}
        for name, values in axes.items():
            if not len(values):
                raise ValueError(f"axis {name!r} is empty")
            self.axes[name] = _dedup(values)

    def __len__(self) -> int:
        n = 1
        for values in self.axes.values():
            n *= len(values)
        return n

    def __iter__(self) -> Iterator[dict[str, Any]]:
        names = list(self.axes)
        for combo in product(*self.axes.values()):
            yield dict(zip(names, combo))

    def points(self) -> list[dict[str, Any]]:
        """All grid points as a list of dicts."""
        return list(self)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        shape = "x".join(str(len(v)) for v in self.axes.values())
        return f"<ParamGrid {shape} over {list(self.axes)}>"
