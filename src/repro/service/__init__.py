"""Co-design-as-a-service: a job server over the reproduction's engines.

The service layer turns the batch CLI into a long-running server
(ROADMAP open item 1): requests are normalized into idempotent job
manifests (:mod:`~repro.service.jobs`), deduplicated against in-flight
work and the content-addressed result cache, queued by priority class
(:mod:`~repro.service.queue`), and executed by per-kind runners that
wrap the exact CLI entry points (:mod:`~repro.service.runners`) on one
shared persistent worker pool.  :mod:`~repro.service.server` is the
stdlib-only asyncio HTTP server; :mod:`~repro.service.client` the thin
synchronous client the CLI ``client`` group uses.

See ``docs/service.md`` for the API reference and job lifecycle.
"""

from .client import ServiceClient, ServiceError
from .jobs import (
    JOB_KINDS,
    JOB_STATES,
    Job,
    JobError,
    job_key,
    normalize_request,
    register_kind,
    result_payload,
)
from .queue import DEFAULT_PRIORITY, PRIORITIES, JobQueue, RateLimiter, TokenBucket
from .runners import RunnerContext, register_runner, run_manifest, unregister_runner
from .server import SERVICE_COUNTERS, CodesignServer, ServerThread

__all__ = [
    "CodesignServer",
    "DEFAULT_PRIORITY",
    "JOB_KINDS",
    "JOB_STATES",
    "Job",
    "JobError",
    "JobQueue",
    "PRIORITIES",
    "RateLimiter",
    "RunnerContext",
    "SERVICE_COUNTERS",
    "ServerThread",
    "ServiceClient",
    "ServiceError",
    "TokenBucket",
    "job_key",
    "normalize_request",
    "register_kind",
    "register_runner",
    "result_payload",
    "run_manifest",
    "unregister_runner",
]
