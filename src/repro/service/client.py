"""A thin synchronous HTTP client for the co-design service.

:class:`ServiceClient` wraps the ``/v1`` API with plain
:mod:`http.client` calls (stdlib only, like the server), so the CLI's
``client`` group -- and any test -- talks to the service exactly the
way an external curl user would.  It adds no semantics of its own
beyond :meth:`wait`, which polls ``GET /v1/jobs/{id}`` until the job
reaches a terminal state.
"""

from __future__ import annotations

import http.client
import json
import time
from typing import Any, Iterator, Optional

__all__ = ["ServiceClient", "ServiceError"]


class ServiceError(RuntimeError):
    """A non-2xx response from the service (carries the HTTP status)."""

    def __init__(self, status: int, message: str,
                 headers: Optional[dict[str, str]] = None) -> None:
        super().__init__(f"HTTP {status}: {message}")
        self.status = status
        self.headers = headers or {}

    @property
    def retry_after(self) -> Optional[float]:
        """The ``Retry-After`` delay of a 429, if the server sent one."""
        raw = self.headers.get("retry-after")
        try:
            return float(raw) if raw is not None else None
        except ValueError:  # pragma: no cover - server always sends numbers
            return None


class ServiceClient:
    """Synchronous client for one server (``host``, ``port``)."""

    def __init__(self, host: str = "127.0.0.1", port: int = 8080, *,
                 timeout: float = 300.0, client_id: str = "cli") -> None:
        self.host = host
        self.port = int(port)
        self.timeout = float(timeout)
        self.client_id = client_id

    # ------------------------------------------------------------ transport

    def _request(self, method: str, path: str,
                 payload: Optional[dict[str, Any]] = None) -> Any:
        conn = http.client.HTTPConnection(self.host, self.port, timeout=self.timeout)
        try:
            body = json.dumps(payload).encode("utf-8") if payload is not None else None
            headers = {"X-Client": self.client_id}
            if body is not None:
                headers["Content-Type"] = "application/json"
            conn.request(method, path, body=body, headers=headers)
            resp = conn.getresponse()
            raw = resp.read()
            resp_headers = {k.lower(): v for k, v in resp.getheaders()}
            try:
                doc = json.loads(raw.decode("utf-8")) if raw else {}
            except (UnicodeDecodeError, json.JSONDecodeError):
                doc = {"error": raw.decode("utf-8", "replace")}
            if resp.status >= 400:
                raise ServiceError(resp.status,
                                   str(doc.get("error", "request failed")),
                                   headers=resp_headers)
            return doc
        finally:
            conn.close()

    # ------------------------------------------------------------ API

    def submit(self, kind: str, params: Optional[dict[str, Any]] = None, *,
               priority: str = "default") -> dict[str, Any]:
        """``POST /v1/jobs``; returns the job status document."""
        return self._request("POST", "/v1/jobs", {
            "kind": kind,
            "params": params or {},
            "priority": priority,
            "client": self.client_id,
        })

    def status(self, job_id: str) -> dict[str, Any]:
        """``GET /v1/jobs/{id}``."""
        return self._request("GET", f"/v1/jobs/{job_id}")

    def result(self, job_id: str) -> Any:
        """The result document of a completed job (raises otherwise)."""
        doc = self.status(job_id)
        if doc.get("state") == "failed":
            raise ServiceError(500, f"job {job_id} failed: {doc.get('error')}")
        if doc.get("state") != "completed":
            raise ServiceError(409, f"job {job_id} is {doc.get('state')!r}, "
                                    "not completed")
        return doc.get("result")

    def wait(self, job_id: str, *, timeout: float = 600.0,
             poll_s: float = 0.05) -> dict[str, Any]:
        """Poll until the job completes or fails; returns its final status."""
        deadline = time.monotonic() + timeout
        while True:
            doc = self.status(job_id)
            if doc.get("state") in ("completed", "failed"):
                return doc
            if time.monotonic() >= deadline:
                raise TimeoutError(
                    f"job {job_id} still {doc.get('state')!r} after {timeout}s"
                )
            time.sleep(poll_s)

    def events(self, job_id: str, *, timeout: float = 600.0) -> Iterator[dict[str, Any]]:
        """Stream the job's NDJSON progress events (terminates when done)."""
        conn = http.client.HTTPConnection(self.host, self.port, timeout=timeout)
        try:
            conn.request("GET", f"/v1/jobs/{job_id}/events",
                         headers={"X-Client": self.client_id})
            resp = conn.getresponse()
            if resp.status >= 400:
                raw = resp.read()
                try:
                    doc = json.loads(raw.decode("utf-8"))
                except (UnicodeDecodeError, json.JSONDecodeError):
                    doc = {"error": "request failed"}
                raise ServiceError(resp.status, str(doc.get("error")))
            # http.client undoes the chunked framing; readline() yields
            # one NDJSON record per line until the stream closes.
            while True:
                line = resp.readline()
                if not line:
                    break
                line = line.strip()
                if line:
                    yield json.loads(line.decode("utf-8"))
        finally:
            conn.close()

    def queue(self) -> dict[str, Any]:
        """``GET /v1/queue``."""
        return self._request("GET", "/v1/queue")

    def healthz(self) -> dict[str, Any]:
        """``GET /v1/healthz``."""
        return self._request("GET", "/v1/healthz")

    def pause(self) -> dict[str, Any]:
        """``POST /v1/queue/pause`` (admin: hold the worker loop)."""
        return self._request("POST", "/v1/queue/pause", {})

    def resume(self) -> dict[str, Any]:
        """``POST /v1/queue/resume``."""
        return self._request("POST", "/v1/queue/resume", {})
