"""Job manifests: normalized, idempotent descriptions of service work.

Every request accepted by the co-design service is reduced to a *job
manifest* -- ``{"kind": <kind>, "params": <normalized params>}`` -- and
addressed by the sha256 of its canonical form (the same
:func:`repro.parallel.grid.canonical` reduction the result cache keys
on).  Normalization fills in every default the runners would apply, so
two requests that *mean* the same work hash to the same key even when
they spell it differently (``{"app": "lu"}`` vs ``{"app": "lu", "n":
30000, "b": 3000, "p": 6}``), and the server can deduplicate them
against in-flight jobs and against warm :class:`~repro.parallel.cache.
ResultCache` entries.

The manifest deliberately excludes *delivery* attributes -- priority,
client identity, wait preferences -- so identical work submitted by two
different clients still collapses to one execution.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Callable, Optional

from ..parallel.grid import canonical, canonical_key

__all__ = [
    "JOB_KINDS",
    "JOB_STATES",
    "Job",
    "JobError",
    "job_key",
    "normalize_request",
    "register_kind",
    "result_payload",
]

#: The job kinds the service ships with (an open registry: tests and
#: extensions add more via :func:`register_kind`).
JOB_KINDS = ("design", "sweep", "faults", "campaign", "tune")

#: Lifecycle states a job moves through.
JOB_STATES = ("queued", "running", "completed", "failed")

#: Per-app defaults for ``design`` jobs -- the same sizes the CLI's
#: ``lu`` / ``fw`` headline commands use, so a default design job shares
#: cache keys with the Figure 9 comparisons.
_DESIGN_DEFAULTS = {
    "lu": {"n": 30000, "b": 3000, "p": 6},
    "fw": {"n": 92160, "b": 256, "p": 6},
    "mm": {"n": 30000, "b": None, "p": 6},
}


class JobError(ValueError):
    """A malformed job request (unknown kind, bad or unknown params)."""


def _require_keys(kind: str, params: dict[str, Any], allowed: tuple[str, ...]) -> None:
    unknown = sorted(set(params) - set(allowed))
    if unknown:
        raise JobError(
            f"unknown parameter(s) {unknown} for job kind {kind!r}; "
            f"allowed: {sorted(allowed)}"
        )


def _as_names(value: Any, what: str) -> list[str]:
    """A list of non-empty names from a list or comma-separated string."""
    if isinstance(value, str):
        value = [part.strip() for part in value.split(",")]
    if not isinstance(value, (list, tuple)) or not value:
        raise JobError(f"{what} must be a non-empty list of names, got {value!r}")
    names = [str(v) for v in value if str(v).strip()]
    if not names:
        raise JobError(f"{what} must be a non-empty list of names, got {value!r}")
    return names


def _normalize_design(params: dict[str, Any]) -> dict[str, Any]:
    _require_keys("design", params, ("app", "n", "b", "p"))
    app = str(params.get("app", "lu"))
    if app not in _DESIGN_DEFAULTS:
        raise JobError(f"unknown design app {app!r}; expected one of "
                       f"{sorted(_DESIGN_DEFAULTS)}")
    defaults = _DESIGN_DEFAULTS[app]
    out: dict[str, Any] = {"app": app}
    for key in ("n", "b", "p"):
        value = params.get(key, defaults[key])
        if key == "b" and app == "mm":
            if params.get("b") is not None:
                raise JobError("design app 'mm' takes no block size 'b'")
            continue
        if not isinstance(value, int) or value <= 0:
            raise JobError(f"design parameter {key!r} must be a positive int, "
                           f"got {value!r}")
        out[key] = value
    return out


def _normalize_sweep(params: dict[str, Any]) -> dict[str, Any]:
    _require_keys("sweep", params, ("experiments",))
    from ..experiments import ALL_EXPERIMENTS

    names = _as_names(params.get("experiments"), "sweep 'experiments'")
    unknown = sorted(set(names) - set(ALL_EXPERIMENTS))
    if unknown:
        raise JobError(f"unknown experiment ids {unknown}; "
                       f"available: {sorted(ALL_EXPERIMENTS)}")
    # Order-insensitive and duplicate-free: results are keyed by name,
    # so ["fig7", "fig5"] is the same job as ["fig5", "fig7"].
    return {"experiments": sorted(set(names))}


def _normalize_faults(params: dict[str, Any]) -> dict[str, Any]:
    _require_keys("faults", params,
                  ("apps", "scenarios", "policies", "preset", "factor", "seed"))
    from ..faults import POLICIES

    policies = _as_names(params.get("policies", ["degrade-static", "repartition"]),
                         "faults 'policies'")
    unknown = [p for p in policies if p not in POLICIES]
    if unknown:
        raise JobError(f"unknown policies {unknown}; expected from {POLICIES}")
    factor = params.get("factor")
    return {
        "apps": _as_names(params.get("apps", ["lu", "fw"]), "faults 'apps'"),
        "scenarios": _as_names(params.get("scenarios", ["degraded-link"]),
                               "faults 'scenarios'"),
        "policies": policies,
        "preset": str(params.get("preset", "xd1")),
        "factor": float(factor) if factor is not None else None,
        "seed": int(params.get("seed", 0)),
    }


def _normalize_campaign(params: dict[str, Any]) -> dict[str, Any]:
    _require_keys("campaign", params,
                  ("apps", "preset", "scenarios", "replicates", "seed", "jitter",
                   "stalls", "throttle_fpga", "factor"))
    replicates = int(params.get("replicates", 20))
    if replicates < 1:
        raise JobError(f"campaign 'replicates' must be >= 1, got {replicates}")
    throttle = params.get("throttle_fpga")
    factor = params.get("factor")
    return {
        "apps": _as_names(params.get("apps", ["lu", "fw"]), "campaign 'apps'"),
        "preset": _as_names(params.get("preset", "xd1"), "campaign 'preset'"),
        "scenarios": _as_names(params.get("scenarios", ["nominal"]),
                               "campaign 'scenarios'"),
        "replicates": replicates,
        "seed": int(params.get("seed", 0)),
        "jitter": float(params.get("jitter", 0.05)),
        "stalls": int(params.get("stalls", 4)),
        "throttle_fpga": float(throttle) if throttle is not None else None,
        "factor": float(factor) if factor is not None else None,
    }


def _normalize_tune(params: dict[str, Any]) -> dict[str, Any]:
    _require_keys("tune", params,
                  ("space", "seed", "eta", "budget", "refine", "resilience",
                   "resilience_keep"))
    from ..tune import NAMED_SPACES

    space = params.get("space")
    if space not in NAMED_SPACES:
        raise JobError(f"tune 'space' must name a predefined space "
                       f"({sorted(NAMED_SPACES)}), got {space!r}")
    budget = params.get("budget")
    resilience = params.get("resilience")
    return {
        "space": str(space),
        "seed": int(params.get("seed", 0)),
        "eta": int(params.get("eta", 4)),
        "budget": int(budget) if budget is not None else None,
        "refine": int(params.get("refine", 1)),
        "resilience": str(resilience) if resilience is not None else None,
        "resilience_keep": int(params.get("resilience_keep", 2)),
    }


#: kind -> normalizer.  Open: :func:`register_kind` extends it (tests
#: register throwaway kinds to exercise retry and queue semantics).
_NORMALIZERS: dict[str, Callable[[dict[str, Any]], dict[str, Any]]] = {
    "design": _normalize_design,
    "sweep": _normalize_sweep,
    "faults": _normalize_faults,
    "campaign": _normalize_campaign,
    "tune": _normalize_tune,
}


def register_kind(
    kind: str,
    normalizer: Optional[Callable[[dict[str, Any]], dict[str, Any]]] = None,
) -> None:
    """Register (or override) the normalizer for a job kind.

    ``normalizer`` defaults to the identity reduction (params pass
    through :func:`canonical` unchanged).  The matching runner is
    registered with :func:`repro.service.runners.register_runner`.
    """
    _NORMALIZERS[kind] = normalizer if normalizer is not None else (lambda p: dict(p))


def unregister_kind(kind: str) -> None:
    """Remove a registered kind (test cleanup); built-ins stay."""
    if kind in JOB_KINDS:
        raise JobError(f"cannot unregister built-in kind {kind!r}")
    _NORMALIZERS.pop(kind, None)


def normalize_request(kind: Any, params: Any) -> dict[str, Any]:
    """A request reduced to its idempotent manifest.

    Raises :class:`JobError` for an unknown kind, unknown parameter
    names, or parameter values the runners would reject.
    """
    if kind not in _NORMALIZERS:
        raise JobError(f"unknown job kind {kind!r}; expected one of "
                       f"{sorted(_NORMALIZERS)}")
    if params is None:
        params = {}
    if not isinstance(params, dict):
        raise JobError(f"job params must be an object, got {type(params).__name__}")
    normalized = _NORMALIZERS[kind](dict(params))
    try:
        normalized = canonical(normalized)
    except TypeError as exc:
        raise JobError(f"job params are not canonicalisable: {exc}") from exc
    return {"kind": str(kind), "params": normalized}


def job_key(manifest: dict[str, Any]) -> str:
    """The content address of a manifest (ledger-style canonical hash)."""
    return canonical_key(manifest)


def result_payload(manifest: dict[str, Any]) -> dict[str, Any]:
    """The :class:`ResultCache` payload addressing a job-level result.

    Wrapped under a ``service_result`` kind so job results can never
    collide with the per-point simulation tasks the same cache stores.
    """
    return {"kind": "service_result", "manifest": manifest}


@dataclass
class Job:
    """One accepted job: manifest, lifecycle state, outcome, telemetry."""

    id: str
    manifest: dict[str, Any]
    key: str
    priority: str = "default"
    client: str = "anonymous"
    state: str = "queued"
    #: How the result was obtained: ``computed`` (ran), ``cache`` (warm
    #: :class:`ResultCache` entry), or None while pending.
    source: Optional[str] = None
    result: Any = None
    result_hash: Optional[str] = None
    error: Optional[str] = None
    #: Executions performed (1 on first-try success; retries add one each).
    attempts: int = 0
    #: Duplicate submissions collapsed onto this job while in flight.
    dedup_count: int = 0
    created: float = field(default_factory=time.time)
    started: Optional[float] = None
    finished: Optional[float] = None
    #: Append-only progress log served by ``GET /v1/jobs/{id}/events``.
    events: list[dict[str, Any]] = field(default_factory=list)
    #: Job-scoped executor telemetry (the shared pool's last map() spans
    #: tagged with this job's id); wall-clock data, never in manifests.
    telemetry: dict[str, Any] = field(default_factory=dict)

    @property
    def kind(self) -> str:
        return str(self.manifest.get("kind"))

    @property
    def queue_wait_s(self) -> Optional[float]:
        if self.started is None:
            return None
        return max(0.0, self.started - self.created)

    @property
    def run_s(self) -> Optional[float]:
        if self.started is None or self.finished is None:
            return None
        return max(0.0, self.finished - self.started)

    @property
    def done(self) -> bool:
        return self.state in ("completed", "failed")

    def add_event(self, event: str, **fields: Any) -> dict[str, Any]:
        record = {"event": event, "job": self.id, "ts": time.time(), **fields}
        self.events.append(record)
        return record

    def status(self, include_result: bool = True) -> dict[str, Any]:
        """The JSON status document served by ``GET /v1/jobs/{id}``."""
        out: dict[str, Any] = {
            "id": self.id,
            "kind": self.kind,
            "key": self.key,
            "state": self.state,
            "priority": self.priority,
            "client": self.client,
            "source": self.source,
            "result_hash": self.result_hash,
            "attempts": self.attempts,
            "dedup_count": self.dedup_count,
            "created": self.created,
            "queue_wait_s": self.queue_wait_s,
            "run_s": self.run_s,
            "events": len(self.events),
        }
        if self.error is not None:
            out["error"] = self.error
        if self.telemetry:
            out["telemetry"] = self.telemetry
        if include_result and self.state == "completed":
            out["result"] = self.result
        return out
