"""Sharded job queue and per-client token-bucket rate limiting.

:class:`JobQueue` is a priority-class queue: one FIFO shard per class
(``interactive`` ahead of ``default`` ahead of ``batch``), popped
strictly in class order and first-in-first-out within a class.  It is a
plain synchronous structure -- the asyncio server layers its own wakeup
signalling on top -- so queue semantics are unit-testable without an
event loop.

:class:`RateLimiter` holds one :class:`TokenBucket` per client.  A
bucket of capacity *C* refilled at *r* tokens/second admits bursts of
*C* submissions and a sustained *r* jobs/s; an empty bucket yields the
``Retry-After`` delay the server returns with HTTP 429.
"""

from __future__ import annotations

import time
from collections import deque
from typing import Any, Callable, Optional

from .jobs import Job, JobError

__all__ = ["PRIORITIES", "DEFAULT_PRIORITY", "JobQueue", "RateLimiter", "TokenBucket"]

#: Priority classes, highest first.  Submissions default to ``default``.
PRIORITIES = ("interactive", "default", "batch")

DEFAULT_PRIORITY = "default"


class JobQueue:
    """Priority classes with FIFO order inside each class."""

    def __init__(self) -> None:
        self._shards: dict[str, deque[Job]] = {p: deque() for p in PRIORITIES}

    def push(self, job: Job) -> None:
        """Enqueue ``job`` under its priority class."""
        if job.priority not in self._shards:
            raise JobError(
                f"unknown priority {job.priority!r}; expected one of {PRIORITIES}"
            )
        self._shards[job.priority].append(job)

    def pop(self) -> Optional[Job]:
        """The next job -- highest class first, FIFO within -- or None."""
        for priority in PRIORITIES:
            shard = self._shards[priority]
            if shard:
                return shard.popleft()
        return None

    def __len__(self) -> int:
        return sum(len(s) for s in self._shards.values())

    def counts(self) -> dict[str, int]:
        """Queued jobs per priority class."""
        return {p: len(s) for p, s in self._shards.items()}

    def jobs(self) -> list[Job]:
        """Queued jobs in pop order (for status endpoints; no removal)."""
        out: list[Job] = []
        for priority in PRIORITIES:
            out.extend(self._shards[priority])
        return out

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<JobQueue {self.counts()}>"


class TokenBucket:
    """A classic token bucket: ``capacity`` burst, ``refill_per_s`` rate."""

    def __init__(
        self,
        capacity: float,
        refill_per_s: float,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if capacity < 1:
            raise ValueError(f"token bucket capacity must be >= 1, got {capacity}")
        if refill_per_s <= 0:
            raise ValueError(f"refill rate must be > 0, got {refill_per_s}")
        self.capacity = float(capacity)
        self.refill_per_s = float(refill_per_s)
        self._clock = clock
        self.tokens = float(capacity)
        self._updated = clock()

    def _refill(self) -> None:
        now = self._clock()
        elapsed = max(0.0, now - self._updated)
        self._updated = now
        self.tokens = min(self.capacity, self.tokens + elapsed * self.refill_per_s)

    def take(self) -> tuple[bool, float]:
        """Consume one token.  Returns ``(ok, retry_after_seconds)``.

        ``retry_after_seconds`` is 0.0 on success, else the time until
        the next whole token exists.
        """
        self._refill()
        if self.tokens >= 1.0:
            self.tokens -= 1.0
            return True, 0.0
        return False, (1.0 - self.tokens) / self.refill_per_s


class RateLimiter:
    """One token bucket per client id.

    ``capacity=None`` disables limiting entirely (every submission is
    admitted) -- the in-process/test default.
    """

    def __init__(
        self,
        capacity: Optional[float] = None,
        refill_per_s: float = 1.0,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.capacity = capacity
        self.refill_per_s = refill_per_s
        self._clock = clock
        self._buckets: dict[str, TokenBucket] = {}

    @property
    def enabled(self) -> bool:
        return self.capacity is not None

    def allow(self, client: str) -> tuple[bool, float]:
        """Admit one submission from ``client``; see :meth:`TokenBucket.take`."""
        if self.capacity is None:
            return True, 0.0
        bucket = self._buckets.get(client)
        if bucket is None:
            bucket = self._buckets[client] = TokenBucket(
                self.capacity, self.refill_per_s, clock=self._clock
            )
        return bucket.take()

    def snapshot(self) -> dict[str, Any]:
        """Limiter configuration + per-client token balances."""
        return {
            "enabled": self.enabled,
            "capacity": self.capacity,
            "refill_per_s": self.refill_per_s if self.enabled else None,
            "clients": len(self._buckets),
        }
