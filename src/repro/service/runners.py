"""Job runners: one callable per job kind, wrapping the batch surfaces.

Each runner takes the *normalized* params of a job manifest (see
:mod:`repro.service.jobs`) plus a :class:`RunnerContext` and returns a
JSON-able result document.  Runners deliberately wrap the exact same
task dicts and entry points the CLI uses today -- ``design`` builds the
``lu_compare``/``fw_compare``/``mm_compare`` tasks of
:func:`repro.experiments._eval_sim_point`, ``sweep`` calls the
experiment functions, ``faults``/``campaign``/``tune`` call
:func:`repro.faults.fault_sweep` / :func:`repro.campaign.run_campaign` /
:func:`repro.tune.run_tune` -- so a job's result is bitwise-identical
to the direct CLI path and shares every per-point cache entry with it.

The registry is open: :func:`register_runner` adds new kinds (tests use
throwaway kinds to exercise retry and queue behaviour without paying
for a real simulation).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Optional

from .jobs import JobError, register_kind, unregister_kind

__all__ = [
    "RunnerContext",
    "register_runner",
    "run_manifest",
    "unregister_runner",
]


@dataclass
class RunnerContext:
    """What a runner may use: the server's shared executor and cache.

    ``executor`` is the server's persistent :class:`~repro.parallel.
    executor.SweepExecutor` (reused across jobs so the worker pool pays
    startup once); ``cache`` is the server's :class:`~repro.parallel.
    cache.ResultCache` or None; ``jobs`` is the raw worker-count setting
    for sub-runners that build their own executors.
    """

    executor: Any = None
    cache: Any = None
    jobs: Any = None


def _configured(ctx: RunnerContext):
    from ..experiments import configured

    # A service with no cache must not silently pick one up from the
    # environment: False forces caching off.
    return configured(
        executor=ctx.executor, cache=ctx.cache if ctx.cache is not None else False
    )


def _run_design(params: dict[str, Any], ctx: RunnerContext) -> dict[str, Any]:
    from ..experiments import _eval_sim_point

    app = params["app"]
    task: dict[str, Any] = {"kind": f"{app}_compare", "n": params["n"]}
    if app != "mm":
        task["b"] = params["b"]
    if params["p"] != 6:
        # Default-p tasks share cache keys with the fig9 sweeps (the
        # same rule repro.cli._compare_values applies).
        task["p"] = params["p"]
    with _configured(ctx):
        compare = _eval_sim_point(task)
    return {"kind": "design", "app": app, "task": task, "compare": compare}


def _run_sweep(params: dict[str, Any], ctx: RunnerContext) -> dict[str, Any]:
    from ..experiments import ALL_EXPERIMENTS

    results: dict[str, Any] = {}
    with _configured(ctx):
        for name in params["experiments"]:
            res = ALL_EXPERIMENTS[name]()
            results[name] = {
                "id": res.id,
                "title": res.title,
                "ok": res.ok,
                "checks": dict(res.checks),
                "text": res.text,
            }
    return {"kind": "sweep", "experiments": results}


def _run_faults(params: dict[str, Any], ctx: RunnerContext) -> dict[str, Any]:
    from ..faults import build_scenario, fault_sweep

    scenarios = [
        build_scenario(name, factor=params["factor"], seed=params["seed"])
        for name in params["scenarios"]
    ]
    results = fault_sweep(
        params["apps"],
        scenarios,
        params["policies"],
        preset=params["preset"],
        jobs=ctx.jobs,
        cache=ctx.cache if ctx.cache is not None else False,
    )
    return {"kind": "faults", "results": results}


def _run_campaign(params: dict[str, Any], ctx: RunnerContext) -> dict[str, Any]:
    from ..campaign import CampaignSpec, PerturbationModel, run_campaign
    from ..faults import build_scenario

    presets = params["preset"]
    scenarios = tuple(
        build_scenario(name, factor=params["factor"], seed=params["seed"])
        for name in params["scenarios"]
    )
    spec = CampaignSpec(
        apps=tuple(params["apps"]),
        preset=presets[0],
        presets=tuple(presets) if len(presets) > 1 else (),
        scenarios=scenarios,
        replicates=params["replicates"],
        seed=params["seed"],
        perturb=PerturbationModel(
            bandwidth_jitter=params["jitter"],
            dram_jitter=params["jitter"],
            clock_jitter=params["jitter"],
            stall_count=params["stalls"],
        ),
        throttle_fpga=params["throttle_fpga"],
    )
    return run_campaign(
        spec,
        jobs=ctx.jobs,
        cache=ctx.cache if ctx.cache is not None else False,
    )


def _run_tune(params: dict[str, Any], ctx: RunnerContext) -> dict[str, Any]:
    from ..tune import TuneSpec, named_space, run_tune

    spec = TuneSpec(
        space=named_space(params["space"]),
        seed=params["seed"],
        eta=params["eta"],
        budget=params["budget"],
        refine=params["refine"],
        resilience=params["resilience"],
        resilience_keep=params["resilience_keep"],
    )
    return run_tune(
        spec,
        jobs=ctx.jobs,
        cache=ctx.cache if ctx.cache is not None else False,
    )


_RUNNERS: dict[str, Callable[[dict[str, Any], RunnerContext], Any]] = {
    "design": _run_design,
    "sweep": _run_sweep,
    "faults": _run_faults,
    "campaign": _run_campaign,
    "tune": _run_tune,
}


def register_runner(
    kind: str,
    runner: Callable[[dict[str, Any], RunnerContext], Any],
    normalizer: Optional[Callable[[dict[str, Any]], dict[str, Any]]] = None,
) -> None:
    """Register ``runner`` (and its request normalizer) for a job kind."""
    _RUNNERS[kind] = runner
    register_kind(kind, normalizer)


def unregister_runner(kind: str) -> None:
    """Remove a registered kind and its runner (test cleanup)."""
    unregister_kind(kind)
    _RUNNERS.pop(kind, None)


def run_manifest(manifest: dict[str, Any], ctx: RunnerContext) -> Any:
    """Execute one job manifest; returns its JSON-able result document."""
    kind = manifest.get("kind")
    runner = _RUNNERS.get(kind)
    if runner is None:
        raise JobError(f"no runner registered for job kind {kind!r}")
    return runner(dict(manifest.get("params") or {}), ctx)
