"""The co-design job server: asyncio HTTP listener + job worker loop.

A :class:`CodesignServer` binds a plain ``asyncio.start_server`` socket
(no third-party deps; a minimal HTTP/1.1 parser handles the request
framing) and exposes

* ``POST /v1/jobs`` -- submit a job (``{"kind", "params", "priority",
  "client"}``); duplicates of in-flight work return the original job
  id, warm :class:`~repro.parallel.cache.ResultCache` entries complete
  instantly with ``"source": "cache"``, and over-rate clients get a
  ``429`` with ``Retry-After``;
* ``GET /v1/jobs/{id}`` -- status plus the result manifest once done;
* ``GET /v1/jobs/{id}/events`` -- chunked NDJSON progress stream;
* ``GET /v1/queue`` -- queue depth, per-outcome counters, cache stats;
* ``GET /v1/healthz`` -- liveness;
* ``POST /v1/queue/pause`` / ``POST /v1/queue/resume`` -- admin: hold
  the worker loop (used by tests and the CI smoke to pin jobs in the
  in-flight dedup window deterministically).

One worker coroutine drains the :class:`~repro.service.queue.JobQueue`
(priority classes, FIFO within) and runs each job's blocking runner in
a thread so the event loop keeps serving status requests; the runners
share one persistent :class:`~repro.parallel.executor.SweepExecutor`,
so the process pool pays startup once across all jobs.  Worker crashes
are retried with exponential backoff up to ``max_retries`` before the
job is marked ``failed``.  On shutdown (``stop``, wired to SIGTERM by
``repro-xd1 serve``) the listener closes, the queue drains, and every
completed job has already been appended to the run ledger as a schema-7
``service`` entry.

Everything is exercisable in-process: bind ``port=0`` and read
:attr:`CodesignServer.bound_port`; :class:`ServerThread` runs the whole
loop in a daemon thread for synchronous tests and clients.
"""

from __future__ import annotations

import asyncio
import hashlib
import json
import threading
import time
from typing import Any, Optional
from urllib.parse import urlsplit

from ..obs.metrics import REGISTRY
from ..parallel.cache import ResultCache
from ..parallel.executor import SweepExecutor
from .jobs import Job, JobError, job_key, normalize_request, result_payload
from .queue import DEFAULT_PRIORITY, PRIORITIES, JobQueue, RateLimiter
from .runners import RunnerContext, run_manifest

__all__ = ["CodesignServer", "ServerThread", "SERVICE_COUNTERS"]

#: The ``service.jobs.*`` counter names published to the metrics
#: registry and reported (per server) by ``GET /v1/queue``.
SERVICE_COUNTERS = (
    "submitted", "deduped", "cache_hit", "completed", "failed", "retried",
)

#: Maximum request head (request line + headers) and body sizes.
_MAX_HEAD = 64 * 1024
_MAX_BODY = 4 * 1024 * 1024

#: Poll interval of the event stream (progress records appear within
#: one tick; terminal states close the stream).
_EVENT_POLL_S = 0.02


def _result_hash(result: Any) -> str:
    """A stable content hash of a result document."""
    text = json.dumps(result, sort_keys=True, separators=(",", ":"), default=str)
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


class _HttpError(Exception):
    """An error response with a status code (and optional headers)."""

    def __init__(self, status: int, message: str,
                 headers: Optional[dict[str, str]] = None) -> None:
        super().__init__(message)
        self.status = status
        self.headers = headers or {}


class CodesignServer:
    """The co-design-as-a-service server (see module docstring).

    Parameters
    ----------
    host, port:
        Listen address; ``port=0`` binds an ephemeral port (read
        :attr:`bound_port` after :meth:`start`) so tests never race on
        fixed ports.
    jobs:
        Worker count for the shared sweep executor (int, ``"auto"`` or
        None for ``REPRO_PARALLEL``).
    cache:
        Result-cache directory or :class:`ResultCache`; None disables
        job-level and point-level caching.
    ledger:
        Run-ledger path; every finished job appends one ``service``
        entry.  None disables ledger recording.
    rate_capacity, rate_refill_per_s:
        Per-client token bucket (burst / sustained rate).  Capacity
        None disables rate limiting.
    max_retries:
        Crashed runners are retried this many times (exponential
        backoff from ``retry_backoff_s``) before the job fails.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        jobs: Any = None,
        cache: Any = None,
        ledger: Any = None,
        rate_capacity: Optional[float] = None,
        rate_refill_per_s: float = 2.0,
        max_retries: int = 2,
        retry_backoff_s: float = 0.05,
    ) -> None:
        self.host = host
        self.port = port
        self.bound_port: Optional[int] = None
        self.jobs_setting = jobs
        self.executor = SweepExecutor(jobs)
        if isinstance(cache, ResultCache) or cache is None:
            self.cache = cache
        else:
            self.cache = ResultCache(cache)
        if ledger is None:
            self.ledger = None
        else:
            from ..obs.ledger import RunLedger

            self.ledger = ledger if isinstance(ledger, RunLedger) else RunLedger(ledger)
        self.queue = JobQueue()
        self.limiter = RateLimiter(rate_capacity, rate_refill_per_s)
        self.max_retries = int(max_retries)
        self.retry_backoff_s = float(retry_backoff_s)
        self.jobs_by_id: dict[str, Job] = {}
        #: manifest key -> job id for queued/running jobs (the in-flight
        #: dedup index; entries leave it the moment a job finishes).
        self.inflight: dict[str, str] = {}
        #: Per-server outcome counts (the registry mirrors them process
        #: wide, but /v1/queue must report *this* server's history).
        self.counts = {name: 0 for name in SERVICE_COUNTERS}
        self._metrics = {
            name: REGISTRY.counter(f"service.jobs.{name}", layer="service")
            for name in SERVICE_COUNTERS
        }
        self._seq = 0
        self._paused = False
        self._stopping = False
        self._drain = True
        self.started_at: Optional[float] = None
        self._server: Optional[asyncio.AbstractServer] = None
        self._worker_task: Optional[asyncio.Task] = None
        self._wake: Optional[asyncio.Event] = None

    # ------------------------------------------------------------ lifecycle

    async def start(self) -> "CodesignServer":
        """Bind the listener and start the worker loop."""
        self._wake = asyncio.Event()
        self._server = await asyncio.start_server(
            self._handle_conn, self.host, self.port, limit=_MAX_HEAD
        )
        self.bound_port = self._server.sockets[0].getsockname()[1]
        self.started_at = time.time()
        self._worker_task = asyncio.create_task(self._worker_loop())
        return self

    async def stop(self, drain: bool = True) -> None:
        """Shut down cleanly: close the listener, drain, release workers.

        With ``drain`` (the default, and what the SIGTERM handler uses)
        every queued job still runs to completion -- and therefore lands
        in the ledger -- before the worker loop exits.
        """
        self._stopping = True
        self._drain = drain
        self._paused = False
        if self._wake is not None:
            self._wake.set()
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        if self._worker_task is not None:
            await self._worker_task
            self._worker_task = None
        self.executor.close()

    def pause(self) -> None:
        """Hold the worker loop (queued jobs stay queued)."""
        self._paused = True

    def resume(self) -> None:
        """Release a paused worker loop."""
        self._paused = False
        if self._wake is not None:
            self._wake.set()

    # ------------------------------------------------------------ submission

    def _inc(self, name: str) -> None:
        self.counts[name] += 1
        self._metrics[name].inc()

    def submit(
        self,
        kind: Any,
        params: Any = None,
        *,
        priority: str = DEFAULT_PRIORITY,
        client: str = "anonymous",
    ) -> tuple[Job, bool]:
        """Accept one job request; returns ``(job, deduped)``.

        Raises :class:`JobError` on a malformed request.  Dedup order:
        first against in-flight jobs (same manifest queued or running ->
        the original :class:`Job` comes back), then against the result
        cache (warm entry -> a new job that is already ``completed``
        with ``"source": "cache"``).  Otherwise the job is queued.
        """
        if priority not in PRIORITIES:
            raise JobError(f"unknown priority {priority!r}; expected one of {PRIORITIES}")
        manifest = normalize_request(kind, params)
        key = job_key(manifest)
        self._inc("submitted")
        existing_id = self.inflight.get(key)
        if existing_id is not None:
            job = self.jobs_by_id[existing_id]
            job.dedup_count += 1
            job.add_event("deduplicated", client=str(client))
            self._inc("deduped")
            return job, True
        self._seq += 1
        job = Job(
            id=f"j-{self._seq:06d}",
            manifest=manifest,
            key=key,
            priority=priority,
            client=str(client),
        )
        self.jobs_by_id[job.id] = job
        job.add_event("submitted", kind=job.kind, key=key)
        if self.cache is not None:
            entry = self.cache.get(result_payload(manifest))
            if entry is not None:
                self._inc("cache_hit")
                now = time.time()
                job.started = job.finished = now
                self._finish(job, entry["value"], source="cache")
                return job, False
        self.queue.push(job)
        self.inflight[key] = job.id
        job.add_event("queued", priority=priority)
        if self._wake is not None:
            self._wake.set()
        return job, False

    def _finish(self, job: Job, result: Any, *, source: str) -> None:
        job.result = result
        job.result_hash = _result_hash(result)
        job.source = source
        job.state = "completed"
        if job.finished is None:
            job.finished = time.time()
        job.add_event("completed", source=source, result_hash=job.result_hash)
        self._inc("completed")
        self._record(job)

    def _fail(self, job: Job, error: str) -> None:
        job.error = error
        job.state = "failed"
        job.finished = time.time()
        job.add_event("failed", error=error, attempts=job.attempts)
        self._inc("failed")
        self._record(job)

    def _record(self, job: Job) -> None:
        """Append the job's ``service`` manifest to the run ledger."""
        if self.ledger is None:
            return
        from ..obs.ledger import service_entry

        outcome = "failed" if job.state == "failed" else (job.source or "computed")
        self.ledger.append(
            service_entry(
                {
                    "job": job.id,
                    "job_kind": job.kind,
                    "outcome": outcome,
                    "key": job.key,
                    "priority": job.priority,
                    "client": job.client,
                    "queue_wait_s": job.queue_wait_s,
                    "run_s": job.run_s,
                    "attempts": job.attempts,
                    "dedup_count": job.dedup_count,
                    "result_hash": job.result_hash,
                    "error": job.error,
                },
                source="service",
            )
        )

    # ------------------------------------------------------------ execution

    async def _worker_loop(self) -> None:
        assert self._wake is not None
        while True:
            if self._stopping and (not self._drain or len(self.queue) == 0):
                break
            job = self.queue.pop() if not self._paused else None
            if job is None:
                if self._stopping:
                    break
                self._wake.clear()
                await self._wake.wait()
                continue
            await self._run_job(job)

    async def _run_job(self, job: Job) -> None:
        loop = asyncio.get_running_loop()
        job.state = "running"
        job.started = time.time()
        job.add_event("started", queue_wait_s=job.queue_wait_s)
        try:
            while True:
                job.attempts += 1
                try:
                    result = await loop.run_in_executor(None, self._execute, job)
                except JobError as exc:
                    # A bad manifest can never succeed on retry.
                    self._fail(job, str(exc))
                    break
                except Exception as exc:  # noqa: BLE001 - worker crash boundary
                    if job.attempts <= self.max_retries:
                        self._inc("retried")
                        backoff = self.retry_backoff_s * (2 ** (job.attempts - 1))
                        job.add_event("retrying", attempt=job.attempts,
                                      backoff_s=backoff, error=str(exc))
                        await asyncio.sleep(backoff)
                        continue
                    self._fail(job, str(exc))
                    break
                else:
                    job.finished = time.time()
                    if self.cache is not None:
                        self.cache.put(result_payload(job.manifest), result)
                    self._finish(job, result, source="computed")
                    break
        finally:
            self.inflight.pop(job.key, None)

    def _execute(self, job: Job) -> Any:
        """Run the job's runner (called in a thread; blocking is fine)."""
        self.executor.scope = job.id
        try:
            ctx = RunnerContext(
                executor=self.executor, cache=self.cache, jobs=self.jobs_setting
            )
            return run_manifest(job.manifest, ctx)
        finally:
            job.telemetry = dict(self.executor.last_telemetry)
            self.executor.scope = None

    # ------------------------------------------------------------ HTTP layer

    async def _handle_conn(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            try:
                head = await reader.readuntil(b"\r\n\r\n")
            except (asyncio.IncompleteReadError, asyncio.LimitOverrunError):
                return
            try:
                method, path, headers = self._parse_head(head)
                body = b""
                length = int(headers.get("content-length", "0") or "0")
                if length > _MAX_BODY:
                    raise _HttpError(413, "request body too large")
                if length:
                    body = await reader.readexactly(length)
                await self._dispatch(method, path, headers, body, writer)
            except _HttpError as exc:
                self._write_json(writer, exc.status, {"error": str(exc)},
                                 extra_headers=exc.headers)
            except JobError as exc:
                self._write_json(writer, 400, {"error": str(exc)})
            except Exception as exc:  # noqa: BLE001 - connection boundary
                self._write_json(writer, 500, {"error": f"internal error: {exc}"})
            await writer.drain()
        except (ConnectionError, asyncio.IncompleteReadError):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except ConnectionError:
                pass

    @staticmethod
    def _parse_head(head: bytes) -> tuple[str, str, dict[str, str]]:
        try:
            lines = head.decode("latin-1").split("\r\n")
            method, target, _version = lines[0].split(" ", 2)
        except (UnicodeDecodeError, ValueError):
            raise _HttpError(400, "malformed request line") from None
        headers: dict[str, str] = {}
        for line in lines[1:]:
            if not line:
                continue
            name, _, value = line.partition(":")
            headers[name.strip().lower()] = value.strip()
        return method.upper(), urlsplit(target).path, headers

    async def _dispatch(
        self,
        method: str,
        path: str,
        headers: dict[str, str],
        body: bytes,
        writer: asyncio.StreamWriter,
    ) -> None:
        if method == "POST" and path == "/v1/jobs":
            return self._post_job(headers, body, writer)
        if method == "POST" and path == "/v1/queue/pause":
            self.pause()
            return self._write_json(writer, 200, {"paused": True})
        if method == "POST" and path == "/v1/queue/resume":
            self.resume()
            return self._write_json(writer, 200, {"paused": False})
        if method == "GET" and path == "/v1/healthz":
            return self._write_json(writer, 200, self.healthz())
        if method == "GET" and path == "/v1/queue":
            return self._write_json(writer, 200, self.queue_stats())
        if method == "GET" and path.startswith("/v1/jobs/"):
            rest = path[len("/v1/jobs/"):]
            if rest.endswith("/events"):
                job = self._job_or_404(rest[: -len("/events")].rstrip("/"))
                return await self._stream_events(job, writer)
            job = self._job_or_404(rest)
            return self._write_json(writer, 200, job.status())
        raise _HttpError(404, f"no route for {method} {path}")

    def _job_or_404(self, job_id: str) -> Job:
        job = self.jobs_by_id.get(job_id)
        if job is None:
            raise _HttpError(404, f"unknown job {job_id!r}")
        return job

    def _post_job(
        self, headers: dict[str, str], body: bytes, writer: asyncio.StreamWriter
    ) -> None:
        if self._stopping:
            raise _HttpError(503, "server is shutting down")
        try:
            request = json.loads(body.decode("utf-8")) if body else {}
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise _HttpError(400, f"request body is not JSON: {exc}") from None
        if not isinstance(request, dict):
            raise _HttpError(400, "request body must be a JSON object")
        client = str(request.get("client") or headers.get("x-client") or "anonymous")
        ok, retry_after = self.limiter.allow(client)
        if not ok:
            raise _HttpError(
                429,
                f"rate limit exceeded for client {client!r}",
                headers={"Retry-After": f"{max(retry_after, 0.001):.3f}"},
            )
        job, deduped = self.submit(
            request.get("kind"),
            request.get("params"),
            priority=request.get("priority") or DEFAULT_PRIORITY,
            client=client,
        )
        response = job.status()
        response["deduped"] = deduped
        self._write_json(writer, 202 if job.state == "queued" else 200, response)

    async def _stream_events(self, job: Job, writer: asyncio.StreamWriter) -> None:
        writer.write(
            b"HTTP/1.1 200 OK\r\n"
            b"Content-Type: application/x-ndjson\r\n"
            b"Transfer-Encoding: chunked\r\n"
            b"Connection: close\r\n\r\n"
        )
        sent = 0
        while True:
            while sent < len(job.events):
                line = json.dumps(job.events[sent], sort_keys=True) + "\n"
                data = line.encode("utf-8")
                writer.write(f"{len(data):x}\r\n".encode("ascii") + data + b"\r\n")
                sent += 1
            await writer.drain()
            if job.done and sent >= len(job.events):
                break
            await asyncio.sleep(_EVENT_POLL_S)
        writer.write(b"0\r\n\r\n")

    @staticmethod
    def _write_json(
        writer: asyncio.StreamWriter,
        status: int,
        payload: Any,
        extra_headers: Optional[dict[str, str]] = None,
    ) -> None:
        reasons = {200: "OK", 202: "Accepted", 400: "Bad Request", 404: "Not Found",
                   413: "Payload Too Large", 429: "Too Many Requests",
                   500: "Internal Server Error", 503: "Service Unavailable"}
        body = json.dumps(payload, sort_keys=True).encode("utf-8")
        head = [f"HTTP/1.1 {status} {reasons.get(status, 'Unknown')}"]
        head.append("Content-Type: application/json")
        head.append(f"Content-Length: {len(body)}")
        for name, value in (extra_headers or {}).items():
            head.append(f"{name}: {value}")
        head.append("Connection: close")
        writer.write(("\r\n".join(head) + "\r\n\r\n").encode("ascii") + body)

    # ------------------------------------------------------------ status

    def healthz(self) -> dict[str, Any]:
        return {
            "status": "ok",
            "uptime_s": (time.time() - self.started_at) if self.started_at else 0.0,
            "jobs": len(self.jobs_by_id),
            "paused": self._paused,
        }

    def queue_stats(self) -> dict[str, Any]:
        """The ``GET /v1/queue`` document: depth, outcomes, cache health."""
        states = {"queued": 0, "running": 0, "completed": 0, "failed": 0}
        for job in self.jobs_by_id.values():
            states[job.state] = states.get(job.state, 0) + 1
        return {
            "queued": len(self.queue),
            "by_priority": self.queue.counts(),
            "states": states,
            "inflight": len(self.inflight),
            "paused": self._paused,
            "counters": dict(self.counts),
            "rate_limit": self.limiter.snapshot(),
            "cache": self.cache.stats if self.cache is not None else None,
            "executor": {"jobs": self.executor.jobs, "last_mode": self.executor.last_mode},
        }


class ServerThread:
    """Run a :class:`CodesignServer` event loop in a daemon thread.

    The synchronous harness for tests and in-process clients::

        with ServerThread(CodesignServer(cache=tmp)) as srv:
            client = ServiceClient(port=srv.bound_port)
            ...

    ``pause()`` / ``resume()`` / ``submit()`` proxy into the loop
    thread-safely.  ``stop()`` drains the queue before returning.
    """

    def __init__(self, server: CodesignServer) -> None:
        self.server = server
        self._thread: Optional[threading.Thread] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._stop_event: Optional[asyncio.Event] = None
        self._ready = threading.Event()
        self._error: Optional[BaseException] = None

    @property
    def bound_port(self) -> int:
        port = self.server.bound_port
        if port is None:
            raise RuntimeError("server is not started")
        return port

    def start(self) -> "ServerThread":
        self._thread = threading.Thread(
            target=self._run, name="codesign-service", daemon=True
        )
        self._thread.start()
        if not self._ready.wait(timeout=30):
            raise RuntimeError("service thread failed to start in time")
        if self._error is not None:
            raise RuntimeError(f"service failed to start: {self._error}")
        return self

    def _run(self) -> None:
        asyncio.run(self._main())

    async def _main(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._stop_event = asyncio.Event()
        try:
            await self.server.start()
        except BaseException as exc:  # noqa: BLE001 - surfaced to start()
            self._error = exc
            self._ready.set()
            return
        self._ready.set()
        await self._stop_event.wait()
        await self.server.stop(drain=True)

    def _call(self, fn, *args: Any) -> Any:
        if self._loop is None:
            raise RuntimeError("server is not started")
        import concurrent.futures

        future: concurrent.futures.Future = concurrent.futures.Future()

        def runner() -> None:
            try:
                future.set_result(fn(*args))
            except BaseException as exc:  # noqa: BLE001 - crosses threads
                future.set_exception(exc)

        self._loop.call_soon_threadsafe(runner)
        return future.result(timeout=30)

    def pause(self) -> None:
        self._call(self.server.pause)

    def resume(self) -> None:
        self._call(self.server.resume)

    def stop(self) -> None:
        if self._loop is not None and self._stop_event is not None:
            self._loop.call_soon_threadsafe(self._stop_event.set)
        if self._thread is not None:
            self._thread.join(timeout=120)
            self._thread = None

    def __enter__(self) -> "ServerThread":
        return self.start()

    def __exit__(self, *exc: Any) -> None:
        self.stop()
