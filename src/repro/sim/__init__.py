"""Discrete-event simulation substrate.

This package is the timing backbone of the reproduction: the machine
models in :mod:`repro.machine`, the MPI layer in :mod:`repro.mpi` and the
application schedules in :mod:`repro.apps` all execute as cooperative
processes on this engine.
"""

from .analytic import (
    FastPathUnsupported,
    fast_path_refusal,
    fastpath_summary,
    resolve_fast_path,
    set_fast_path_mode,
)
from .core import (
    AllOf,
    AnyOf,
    Event,
    Process,
    ProcessFailure,
    SimulationError,
    Simulator,
    Timeout,
)
from .monitor import SimMonitor
from .resources import BandwidthChannel, Request, Resource, Store
from .trace import CausalityViolation, Interval, Trace, merge

__all__ = [
    "AllOf",
    "AnyOf",
    "BandwidthChannel",
    "CausalityViolation",
    "Event",
    "FastPathUnsupported",
    "Interval",
    "Process",
    "ProcessFailure",
    "Request",
    "Resource",
    "SimMonitor",
    "SimulationError",
    "Simulator",
    "Store",
    "Timeout",
    "Trace",
    "fast_path_refusal",
    "fastpath_summary",
    "merge",
    "resolve_fast_path",
    "set_fast_path_mode",
]
