"""Analytic no-contention fast path: exact schedule replay without a DES.

Most points in the paper's sweep grids are *uncontended*: every resource
grant in the discrete-event simulation is either immediate or ordered by
strict FIFO arrival, so the makespan is a deterministic function of the
partition/machine parameters and can be computed by replaying the
schedule's arithmetic directly -- same floating-point operations, same
order -- without event objects, generato-driven processes or a calendar
queue.  The result is **bitwise identical** to the DES on every point
the fast path accepts, at a fraction of the cost.

Two layers live here:

* :class:`Replay` -- a chronological replay engine for schedules that do
  queue on resources (the LU pipeline).  It keeps per-resource FIFO
  queues and a single time-ordered heap, but no event/process objects.
  A built-in *ambiguity detector* refuses (raises
  :class:`FastPathUnsupported`) whenever two same-timestamp acquisitions
  from different spawn bursts hit the same FIFO queue and at least one
  of them has to wait -- the only situation in which the DES outcome
  depends on its intra-timestamp micro-ordering.  Everything else is
  provably order-independent:

  - grants that all succeed immediately commute;
  - float ``max`` is a selection, not an arithmetic blend;
  - acquisitions at *distinct* timestamps are ordered by time alone;
  - same-timestamp acquisitions from the *same* burst (one process
    spawning a batch of transfers, or structurally identical "wave
    twins" tagged with the same tie class) arrive in a fixed documented
    order in both engines, so FIFO service order matches by induction.

* Mode resolution -- ``fast_path`` arguments on the ``simulate_*``
  entry points accept ``"auto"`` (use the fast path when eligible, fall
  back to the DES otherwise), ``"on"`` (raise if ineligible) and
  ``"off"`` (always DES).  ``None`` defers to the process default:
  :func:`set_fast_path_mode`, then the ``REPRO_FAST_PATH`` environment
  variable, then ``"auto"``.

Usage counters land in the process metrics registry so sweeps can report
coverage (see docs/performance.md):

- ``fastpath.points{app,path}`` -- points served per app by
  ``analytic`` vs ``des``;
- ``fastpath.fallback{app,reason}`` -- why points fell back
  (``trace`` / ``monitor`` / ``faults`` / ``node-specs`` /
  ``ambiguous-tie`` / ``unsupported-config`` / ``disabled``).
"""

from __future__ import annotations

import os
from collections import deque
from heapq import heappop, heappush
from typing import Optional

from ..obs.metrics import REGISTRY

__all__ = [
    "FAST_PATH_ENV_VAR",
    "FAST_PATH_MODES",
    "FastPathUnsupported",
    "Replay",
    "fast_path_refusal",
    "fastpath_summary",
    "note_fallback",
    "note_point",
    "resolve_fast_path",
    "set_fast_path_mode",
    "try_fast_path",
]

#: Environment variable holding the process-default fast-path mode.
FAST_PATH_ENV_VAR = "REPRO_FAST_PATH"

#: Valid fast-path modes.
FAST_PATH_MODES = ("auto", "on", "off")

_MODE_OVERRIDE: Optional[str] = None


class FastPathUnsupported(Exception):
    """The analytic fast path cannot reproduce this run bitwise.

    ``reason`` is a short category for counters/manifests
    (``ambiguous-tie``, ``monitor``, ``faults``, ...); ``str(exc)``
    carries the full diagnostic.
    """

    def __init__(self, detail: str, reason: str = "ambiguous-tie") -> None:
        super().__init__(detail)
        self.reason = reason


def set_fast_path_mode(mode: Optional[str]) -> Optional[str]:
    """Set the process-default mode (None restores env/``"auto"``).

    Returns the previous override so callers can restore it.
    """
    global _MODE_OVERRIDE
    if mode is not None and mode not in FAST_PATH_MODES:
        raise ValueError(f"fast_path must be one of {FAST_PATH_MODES}, got {mode!r}")
    prev = _MODE_OVERRIDE
    _MODE_OVERRIDE = mode
    return prev


def resolve_fast_path(mode: Optional[str] = None) -> str:
    """The effective mode for a ``fast_path`` argument (see module doc)."""
    raw = mode if mode is not None else _MODE_OVERRIDE
    if raw is None:
        raw = os.environ.get(FAST_PATH_ENV_VAR, "").strip().lower() or "auto"
    if raw not in FAST_PATH_MODES:
        raise ValueError(f"fast_path must be one of {FAST_PATH_MODES}, got {raw!r}")
    return raw


def fast_path_refusal(
    trace: bool = False,
    node_specs: Optional[list] = None,
    monitor: Optional[object] = None,
    faults: Optional[object] = None,
) -> Optional[str]:
    """Why these ``simulate_*`` kwargs force the DES; None when eligible.

    Traces, monitors and fault injectors observe or perturb DES
    internals the analytic replay does not have; heterogeneous
    ``node_specs`` change per-node rates the replays assume uniform.
    """
    if trace:
        return "trace"
    if node_specs is not None:
        return "node-specs"
    if monitor is not None:
        return "monitor"
    if faults is not None:
        return "faults"
    return None


def note_point(app: str, path: str) -> None:
    """Count one simulated point served by ``path`` (analytic|des)."""
    REGISTRY.counter("fastpath.points", app=app, path=path).inc()


def note_fallback(app: str, reason: str) -> None:
    """Count one fast-path fallback with its category."""
    REGISTRY.counter("fastpath.fallback", app=app, reason=reason).inc()


def fastpath_summary(registry=None) -> Optional[dict]:
    """Aggregate the fast-path counters for manifests and benchmarks.

    Returns ``{"analytic": n, "des": m, "fallback": {reason: count}}``,
    or ``None`` when no point has been counted (fast-path-unaware run).
    """
    reg = registry if registry is not None else REGISTRY
    out = {"analytic": 0, "des": 0}
    fallback: dict[str, int] = {}
    seen = False
    for item in reg.snapshot():
        name = item.get("name")
        if name == "fastpath.points":
            seen = True
            path = item.get("labels", {}).get("path", "des")
            out[path] = out.get(path, 0) + int(item.get("value", 0))
        elif name == "fastpath.fallback":
            seen = True
            reason = item.get("labels", {}).get("reason", "unknown")
            fallback[reason] = fallback.get(reason, 0) + int(item.get("value", 0))
    if not seen:
        return None
    out["fallback"] = dict(sorted(fallback.items()))
    return out


def try_fast_path(
    app: str,
    solver,
    mode: Optional[str] = None,
    trace: bool = False,
    node_specs: Optional[list] = None,
    monitor: Optional[object] = None,
    faults: Optional[object] = None,
):
    """The shared ``fast_path`` hook for the ``simulate_*`` entry points.

    Resolves ``mode``, checks kwargs eligibility, runs ``solver()`` (a
    thunk returning the analytic result) and records usage counters.
    Returns the analytic result, or ``None`` when the caller must run
    the DES.  With ``mode == "on"`` an ineligible or refused run raises
    :class:`FastPathUnsupported` instead of falling back.
    """
    mode = resolve_fast_path(mode)
    if mode == "off":
        note_fallback(app, "disabled")
    else:
        reason = fast_path_refusal(trace, node_specs, monitor, faults)
        if reason is None:
            try:
                result = solver()
            except FastPathUnsupported as exc:
                if mode == "on":
                    raise
                reason = exc.reason
            else:
                note_point(app, "analytic")
                return result
        if mode == "on":
            raise FastPathUnsupported(
                f"fast_path='on' but this {app} run requires the DES ({reason})",
                reason=reason,
            )
        note_fallback(app, reason)
    note_point(app, "des")
    return None


# ----------------------------------------------------------------- engine


class _Q:
    """One FIFO resource queue (link lane, CPU lane, FPGA, DMA channel)."""

    __slots__ = ("cap", "in_use", "q", "last_t", "last_burst", "last_waited", "name")

    def __init__(self, cap: int) -> None:
        self.cap = cap
        self.in_use = 0
        self.q: deque = deque()
        self.last_t = -1.0
        self.last_burst: Optional[object] = None
        self.last_waited = False
        self.name = ""


class _Tok:
    """One in-flight network transfer (egress -> ingress -> wire)."""

    __slots__ = ("src", "dst", "svc", "size", "key", "burst", "group", "gen")

    def __init__(self, src, dst, svc, size, key, burst, group, gen) -> None:
        self.src = src
        self.dst = dst
        self.svc = svc
        self.size = size
        self.key = key
        self.burst = burst
        self.group = group  # [outstanding, owner_gen] for batch sends
        self.gen = gen  # generator resumed inline for single sends


class Replay:
    """Chronological replay of a DES schedule without event objects.

    Schedules are plain generators yielding *ops* (tuples); the engine
    drives each generator with :meth:`advance` and orders everything on
    one ``(time, seq)`` heap.  Supported ops:

    ``("cpu", i, dur)``
        Hold node *i*'s CPU lane for ``dur``; busy time accrues as
        ``end - start`` exactly like ``Node.cpu_occupy``.
    ``("chan", i, dur)``
        Hold node *i*'s DRAM-to-FPGA channel for ``dur``.
    ``("fpga_spawn", i, dur, key)``
        Non-blocking FPGA job; sets ``key`` when it completes.
    ``("send", src, dst, svc, size, key, tie)``
        One network transfer; the generator resumes at completion
        (mirrors a blocking ``comm.send``).  ``tie`` tags the
        transfer's tie class (see below).
    ``("send_batch", src, dsts, svc, size, keys)``
        A burst of concurrent transfers spawned at one instant; the
        generator resumes when all complete (``all_of`` over sends).
    ``("wait", key)`` / ``("wait_all", keys)``
        Block until the named completion events are set.
    ``("set", key)``
        Set a completion event immediately.

    The ambiguity detector lives in :meth:`_acq`: two same-timestamp
    acquisitions of one queue are allowed only if both are granted
    immediately or they share a *tie class* (the same ``send_batch``
    burst, or an explicit ``tie`` tag marking structurally identical
    wave twins whose FIFO order is reproduced by construction).  Any
    other same-timestamp contention raises :class:`FastPathUnsupported`
    -- the caller falls back to the DES, so refusals cost accuracy
    nothing.
    """

    def __init__(self, p: int, links: int) -> None:
        self.heap: list = []
        self.seq = 0
        self.egress = [_Q(links) for _ in range(p)]
        self.ingress = [_Q(links) for _ in range(p)]
        self.lane = [_Q(1) for _ in range(p)]
        self.fpga = [_Q(1) for _ in range(p)]
        self.chan = [_Q(1) for _ in range(p)]
        for nm in ("egress", "ingress", "lane", "fpga", "chan"):
            for idx, qq in enumerate(getattr(self, nm)):
                qq.name = f"{nm}[{idx}]"
        self.cpu_busy = [0.0] * p
        self.fpga_busy = [0.0] * p
        self.net_bytes = 0.0
        self.msg_count = 0
        self.events: dict = {}  # key -> completion time
        self.waiters: dict = {}  # key -> [countdown, gen, park_t] cells
        self.max_t = 0.0

    # -- queues ---------------------------------------------------------

    def _acq(self, q: _Q, t: float, burst) -> bool:
        """Acquire ``q`` at ``t``; True if granted now, False if queued.

        Raises :class:`FastPathUnsupported` on an ambiguous tie: a
        same-timestamp acquisition from a different tie class where
        either party waits (then DES micro-order picks the winner).
        """
        wait = q.in_use >= q.cap or bool(q.q)
        if t == q.last_t and (burst is None or q.last_burst is None or burst != q.last_burst):
            if wait or q.last_waited:
                raise FastPathUnsupported(
                    f"ambiguous same-time contention on {q.name} at t={t!r}"
                )
        q.last_t = t
        q.last_burst = burst
        q.last_waited = wait
        if wait:
            return False
        q.in_use += 1
        return True

    def _rel(self, q: _Q, t: float) -> None:
        """Release one slot of ``q`` at ``t`` and grant the FIFO head."""
        q.in_use -= 1
        if q.q and q.in_use < q.cap:
            kind, data = q.q.popleft()
            q.in_use += 1
            if kind == 0:  # transfer waiting for egress
                self._ingress_phase(data, t)
            elif kind == 1:  # transfer waiting for ingress
                self._push(t + data.svc, "x", data)
            elif kind == 2:  # cpu lane waiter
                i, gen, dur = data
                self._push(t + dur, "c", (i, gen, t))
            elif kind == 3:  # fpga waiter
                i, key, dur = data
                self._push(t + dur, "f", (i, key, t))
            else:  # chan waiter
                i, gen, dur = data
                self._push(t + dur, "h", (i, gen, t))

    def _push(self, t: float, kind: str, data) -> None:
        self.seq += 1
        heappush(self.heap, (t, self.seq, kind, data))

    # -- transfers ------------------------------------------------------

    def _start_transfer(self, tok: _Tok, t: float) -> None:
        q = self.egress[tok.src]
        if self._acq(q, t, tok.burst):
            self._ingress_phase(tok, t)
        else:
            q.q.append((0, tok))

    def _ingress_phase(self, tok: _Tok, t: float) -> None:
        q = self.ingress[tok.dst]
        if self._acq(q, t, tok.burst):
            self._push(t + tok.svc, "x", tok)
        else:
            q.q.append((1, tok))

    # -- completion events ----------------------------------------------

    def _set(self, key, t: float) -> None:
        self.events[key] = t
        for cell in self.waiters.pop(key, ()):
            cell[0] -= 1
            if cell[0] == 0:
                self._push(t, "g", cell[1])

    def _wait_keys(self, gen, keys, t: float) -> Optional[float]:
        """Resume time if every key is set; else park ``gen``."""
        events = self.events
        unset = [k for k in keys if k not in events]
        if not unset:
            mx = t
            for k in keys:
                v = events[k]
                if v > mx:
                    mx = v
            return mx
        cell = [len(unset), gen, t]
        waiters = self.waiters
        for k in unset:
            waiters.setdefault(k, []).append(cell)
        return None

    # -- generator driver ------------------------------------------------

    def advance(self, gen, t: float) -> None:
        """Drive ``gen`` from time ``t`` until it blocks or finishes."""
        if t > self.max_t:
            self.max_t = t
        step = gen.__next__
        while True:
            try:
                op = step()
            except StopIteration:
                return
            code = op[0]
            if code == "cpu":
                _, i, dur = op
                q = self.lane[i]
                if self._acq(q, t, None):
                    self._push(t + dur, "c", (i, gen, t))
                else:
                    q.q.append((2, (i, gen, dur)))
                return
            elif code == "wait":
                r = self._wait_keys(gen, (op[1],), t)
                if r is None:
                    return
                t = r
                if t > self.max_t:
                    self.max_t = t
            elif code == "wait_all":
                r = self._wait_keys(gen, op[1], t)
                if r is None:
                    return
                t = r
                if t > self.max_t:
                    self.max_t = t
            elif code == "set":
                self._set(op[1], t)
            elif code == "chan":
                _, i, dur = op
                q = self.chan[i]
                if self._acq(q, t, None):
                    self._push(t + dur, "h", (i, gen, t))
                else:
                    q.q.append((4, (i, gen, dur)))
                return
            elif code == "send":
                _, src, dst, svc, size, key, tie = op
                self._start_transfer(_Tok(src, dst, svc, size, key, tie, None, gen), t)
                return
            elif code == "send_batch":
                _, src, dsts, svc, size, keys = op
                burst = object()
                group = [len(dsts), gen]
                for dst, key in zip(dsts, keys):
                    self._start_transfer(_Tok(src, dst, svc, size, key, burst, group, None), t)
                return
            elif code == "fpga_spawn":
                _, i, dur, key = op
                q = self.fpga[i]
                if self._acq(q, t, None):
                    self._push(t + dur, "f", (i, key, t))
                else:
                    q.q.append((3, (i, key, dur)))
            else:  # pragma: no cover - schedule author error
                raise AssertionError(f"unknown replay op {code!r}")

    def run(self) -> float:
        """Drain the heap; returns the makespan (latest time touched)."""
        heap = self.heap
        while heap:
            t, _, kind, data = heappop(heap)
            if t > self.max_t:
                self.max_t = t
            if kind == "c":  # cpu lane hold ends
                i, gen, start = data
                self._rel(self.lane[i], t)
                self.cpu_busy[i] += t - start
                self.advance(gen, t)
            elif kind == "x":  # transfer wire time ends
                tok = data
                self._rel(self.ingress[tok.dst], t)
                self._rel(self.egress[tok.src], t)
                self.net_bytes += tok.size
                self.msg_count += 1
                if tok.key is not None:
                    self._set(tok.key, t)
                if tok.gen is not None:
                    self.advance(tok.gen, t)
                else:
                    group = tok.group
                    group[0] -= 1
                    if group[0] == 0:
                        self._push(t, "g", group[1])
            elif kind == "g":  # plain generator resume
                self.advance(data, t)
            elif kind == "h":  # channel hold ends
                i, gen, start = data
                self._rel(self.chan[i], t)
                self.advance(gen, t)
            else:  # "f": fpga job ends
                i, key, start = data
                self._rel(self.fpga[i], t)
                self.fpga_busy[i] += t - start
                self._set(key, t)
        return self.max_t
