"""Discrete-event simulation core.

A minimal, self-contained process-based discrete-event engine in the style
of SimPy, tailored for modelling reconfigurable computing systems.  The
engine provides:

* :class:`Simulator` -- the event loop with a virtual clock,
* :class:`Event` -- one-shot triggers carrying a value,
* :class:`Process` -- generator-based cooperative processes,
* :class:`Timeout` -- events that fire after a simulated delay,
* :class:`AllOf` / :class:`AnyOf` -- event combinators.

Processes are plain Python generators that ``yield`` events.  When an event
fires, the process resumes and receives the event's value as the result of
the ``yield`` expression::

    sim = Simulator()

    def worker(sim):
        yield sim.timeout(3.0)        # advance 3 simulated seconds
        value = yield some_event      # block until the event fires
        ...

    sim.process(worker(sim))
    sim.run()

The engine is deterministic: events scheduled for the same time fire in
the order in which they were scheduled (a monotone sequence number breaks
ties), which makes traces reproducible across runs -- a property the test
suite relies on.

Performance notes
-----------------
Sweeps run millions of events, so the hot path is tuned:

* The first callback of an event lives in a dedicated ``_cb`` slot and the
  overflow list ``callbacks`` is created lazily -- the common one-waiter
  case (a process yielding a timeout) allocates no list and ``_step``
  dispatches it inline without swapping lists.
* :meth:`Simulator.timeout` recycles :class:`Timeout` instances from a
  small free pool.  Recycling is only done for timeouts that nothing else
  references (checked via ``sys.getrefcount`` after dispatch), so holding
  on to a fired timeout and reading its value later remains safe.
* Event names are computed lazily (``__getattr__``), so the per-timeout
  f-string formatting of the debugging name is never paid unless someone
  actually looks at it.
* Starting a :class:`Process` posts a pre-triggered bare-bones event
  instead of building, wiring and succeeding a full bootstrap event.
* Zero-delay posts (every ``succeed``/``fail``, process bootstraps,
  condition fires) bypass the calendar entirely: they go to a FIFO deque
  of same-time events.  Deque entries are always younger than any
  calendar entry scheduled at the current time, so draining calendar
  entries at ``now`` first and then the deque reproduces the global
  schedule order of the naive implementation.  Positive delays whose
  ``now + delay`` collapses to ``now`` in float arithmetic (delay below
  one ulp of the clock) are routed through the same deque -- a calendar
  entry created *now* at time ``now`` would violate the younger-than
  invariant and fire ahead of older same-time events.
* Delayed events live in a calendar queue: a heap of *distinct* times
  plus a dict mapping each time to its events (a bare event, promoted to
  a deque on the second arrival).  Same-time bursts -- barrier releases,
  synchronized stripe starts, fan-in joins -- cost one dict append
  instead of a tuple heappush, FIFO order within a time replaces the
  sequence counter, and the heap stays as small as the number of
  distinct pending times.
"""

from __future__ import annotations

from collections import deque
from collections.abc import Generator
from heapq import heappop, heappush
from sys import getrefcount
from typing import Any, Callable, Iterable, Optional

__all__ = [
    "Event",
    "Timeout",
    "Process",
    "AllOf",
    "AnyOf",
    "Simulator",
    "SimulationError",
    "ProcessFailure",
]

#: Upper bound on the Timeout free pool; past this, instances are dropped
#: to the garbage collector like any other object.
_TIMEOUT_POOL_CAP = 256


class SimulationError(RuntimeError):
    """Raised for invalid uses of the simulation API."""


class ProcessFailure(SimulationError):
    """Raised from :meth:`Simulator.run` when a process raised an exception.

    The original exception is available as ``__cause__``.  Structured
    context is attached for programmatic consumers (the fault subsystem
    reads these instead of parsing the message):

    * ``process_name`` -- name of the process whose generator raised,
    * ``sim_time`` -- simulated time of the failure,
    * ``lane`` -- the trace lane with the most recent activity at the
      failure time (``None`` when the run is untraced).
    """

    process_name: Optional[str] = None
    sim_time: Optional[float] = None
    lane: Optional[str] = None


class Event:
    """A one-shot occurrence in simulated time.

    Events start *pending*; calling :meth:`succeed` (or :meth:`fail`)
    *triggers* them, after which their callbacks run inside the event loop
    at the current simulation time.  An event can only be triggered once.

    Callbacks are stored as a single ``_cb`` slot plus a lazily-created
    overflow list; use :meth:`add_callback` rather than touching either
    attribute directly.
    """

    __slots__ = ("sim", "name", "_value", "_ok", "_triggered", "_processed", "_cb", "callbacks")

    def __init__(self, sim: "Simulator", name: str = "") -> None:
        self.sim = sim
        self.name = name
        self._value: Any = None
        self._ok: bool = True
        self._triggered = False
        self._processed = False
        self._cb: Optional[Callable[["Event"], None]] = None
        self.callbacks: Optional[list[Callable[["Event"], None]]] = None

    def __getattr__(self, attr: str) -> Any:
        # Only reached when a slot was never assigned (fast-path events
        # skip __init__ and leave ``name`` unset until someone asks).
        if attr == "name":
            return ""
        raise AttributeError(attr)

    # -- state ---------------------------------------------------------

    @property
    def triggered(self) -> bool:
        """True once :meth:`succeed`/:meth:`fail` has been called."""
        return self._triggered

    @property
    def processed(self) -> bool:
        """True once the event's callbacks have run."""
        return self._processed

    @property
    def ok(self) -> bool:
        """True if the event succeeded (meaningless before triggering)."""
        return self._ok

    @property
    def value(self) -> Any:
        """The value the event fired with."""
        if not self._triggered:
            raise SimulationError(f"event {self!r} has not been triggered")
        return self._value

    # -- triggering ----------------------------------------------------

    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully with ``value``."""
        if self._triggered:
            raise SimulationError(f"event {self!r} already triggered")
        self._triggered = True
        self._ok = True
        self._value = value
        self.sim._dq.append(self)  # zero-delay post, inlined
        return self

    def fail(self, exc: BaseException) -> "Event":
        """Trigger the event as failed; waiters receive ``exc``."""
        if self._triggered:
            raise SimulationError(f"event {self!r} already triggered")
        if not isinstance(exc, BaseException):
            raise TypeError("fail() requires an exception instance")
        self._triggered = True
        self._ok = False
        self._value = exc
        self.sim._dq.append(self)  # zero-delay post, inlined
        return self

    def add_callback(self, fn: Callable[["Event"], None]) -> None:
        """Run ``fn(event)`` when the event is processed.

        If the event has already been processed the callback runs
        immediately, preserving at-least-once semantics for late waiters.
        """
        if self._processed:
            fn(self)
        elif self._cb is None:
            self._cb = fn
        else:
            cbs = self.callbacks
            if cbs is None:
                self.callbacks = [fn]
            else:
                cbs.append(fn)

    def _has_waiters(self) -> bool:
        """True if any callback is registered (crash-surfacing helper)."""
        return self._cb is not None or bool(self.callbacks)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "processed" if self._processed else ("triggered" if self._triggered else "pending")
        label = f" {self.name!r}" if self.name else ""
        return f"<{type(self).__name__}{label} {state}>"


class Timeout(Event):
    """An event that fires ``delay`` simulated seconds after creation.

    Prefer :meth:`Simulator.timeout`, which recycles instances from a free
    pool; direct construction works but always allocates.
    """

    __slots__ = ("delay",)

    def __init__(self, sim: "Simulator", delay: float, value: Any = None) -> None:
        if delay < 0:
            raise ValueError(f"negative timeout delay: {delay}")
        self.sim = sim
        self._value = value
        self._ok = True
        self._triggered = True
        self._processed = False
        self._cb = None
        self.callbacks = None
        self.delay = delay
        sim._post(self, delay=delay)

    def __getattr__(self, attr: str) -> Any:
        if attr == "name":
            # Lazy: formatting every timeout's debug name dominated
            # Timeout construction in profiles.
            return f"timeout({self.delay:g})"
        raise AttributeError(attr)


class Process(Event):
    """A running generator; also an event that fires when the generator ends.

    The process event's value is the generator's return value, so processes
    can be composed: one process may ``yield`` another to wait for it and
    collect its result.
    """

    __slots__ = ("generator", "_send", "_throw", "_target", "_resume_cb")

    def __init__(self, sim: "Simulator", generator: Generator, name: str = "") -> None:
        if not isinstance(generator, Generator):
            raise TypeError(f"Process requires a generator, got {type(generator).__name__}")
        super().__init__(sim, name=name or getattr(generator, "__name__", "process"))
        self.generator = generator
        self._send = generator.send
        self._throw = generator.throw
        self._target: Optional[Event] = None
        # One bound method reused for every event this process waits on
        # (binding per wait shows up in profiles at event rates).
        self._resume_cb: Callable[[Event], None] = self._resume
        # Bootstrap: resume for the first time via a bare pre-triggered
        # event posted at the current time (skips the full Event/succeed
        # ceremony of the naive implementation).
        init = Event.__new__(Event)
        init.sim = sim
        init._value = None
        init._ok = True
        init._triggered = True
        init._processed = False
        init._cb = self._resume_cb
        init.callbacks = None
        sim._post(init)

    @property
    def is_alive(self) -> bool:
        """True while the generator has not finished."""
        return not self._triggered

    def _resume(self, event: Event) -> None:
        """Advance the generator with the fired event's value."""
        try:
            if event._ok:
                target = self._send(event._value)
            else:
                target = self._throw(event._value)
        except StopIteration as stop:
            self._target = None
            self.succeed(stop.value)
            return
        except BaseException as exc:
            # The process died.  Fail the process event so waiters see it;
            # if nobody is waiting, the simulator surfaces it from run().
            self._target = None
            try:
                self.fail(exc)
            except SimulationError:
                pass
            if not self._has_waiters():
                self.sim._crashed.append((self, exc))
            return
        # ``target.sim`` doubles as the is-an-Event check: every Event
        # carries it and yielding anything else is a programming error
        # surfaced below (an isinstance on the hot path costs real time).
        try:
            foreign = target.sim is not self.sim
        except AttributeError:
            self._target = None
            exc2 = SimulationError(
                f"process {self.name!r} yielded {target!r}; processes must yield Event instances"
            )
            self.fail(exc2)
            if not self._has_waiters():
                self.sim._crashed.append((self, exc2))
            return
        if foreign:
            self._target = None
            exc3 = SimulationError(f"process {self.name!r} yielded an event from another simulator")
            self.fail(exc3)
            if not self._has_waiters():
                self.sim._crashed.append((self, exc3))
            return
        self._target = target
        # Inlined add_callback on the hot wait path.
        resume = self._resume_cb
        if target._processed:
            resume(target)
        elif target._cb is None:
            target._cb = resume
        else:
            cbs = target.callbacks
            if cbs is None:
                target.callbacks = [resume]
            else:
                cbs.append(resume)


class _Condition(Event):
    """Base for AllOf / AnyOf combinators."""

    __slots__ = ("events", "_pending")

    def __init__(self, sim: "Simulator", events: Iterable[Event]) -> None:
        # Inlined Event.__init__; the class name (``all_of`` / ``any_of``)
        # comes lazily from the subclass ``__getattr__``.
        self.sim = sim
        self._value: Any = None
        self._ok = True
        self._triggered = False
        self._processed = False
        self._cb = None
        self.callbacks = None
        evs = self.events = tuple(events)
        for ev in evs:
            if ev.sim is not sim:
                raise SimulationError("condition mixes events from different simulators")
        self._pending = len(evs)
        if not evs:
            self.succeed(self._collect())
            return
        # One bound method shared by all constituents, wired through the
        # inlined add_callback fast path (fan-in is hot in the machine
        # models: every overlap barrier is an all_of over channel ops).
        check = self._check
        for ev in evs:
            if ev._processed:
                check(ev)
            elif ev._cb is None:
                ev._cb = check
            else:
                cbs = ev.callbacks
                if cbs is None:
                    ev.callbacks = [check]
                else:
                    cbs.append(check)

    def _collect(self) -> dict[Event, Any]:
        return {ev: ev._value for ev in self.events if ev._processed and ev._ok}

    def _check(self, event: Event) -> None:  # pragma: no cover - overridden
        raise NotImplementedError


class AllOf(_Condition):
    """Fires when *all* constituent events have fired.

    Value: dict mapping each event to its value.  Fails fast if any
    constituent fails.
    """

    __slots__ = ()

    def __getattr__(self, attr: str) -> Any:
        if attr == "name":
            return "all_of"
        raise AttributeError(attr)

    def _check(self, event: Event) -> None:
        if self._triggered:
            return
        if not event._ok:
            self.fail(event._value)
            return
        self._pending -= 1
        if self._pending == 0:
            self.succeed(self._collect())


class AnyOf(_Condition):
    """Fires when *any* constituent event has fired.

    Value: dict of the events that have fired so far (at least one).
    """

    __slots__ = ()

    def __getattr__(self, attr: str) -> Any:
        if attr == "name":
            return "any_of"
        raise AttributeError(attr)

    def _check(self, event: Event) -> None:
        if self._triggered:
            return
        if not event._ok:
            self.fail(event._value)
            return
        self.succeed(self._collect())


class Simulator:
    """The discrete-event loop.

    Attributes
    ----------
    now:
        Current simulated time in seconds.
    trace:
        Optional :class:`repro.sim.trace.Trace` attached by the caller; the
        engine itself never writes to it, components do.
    """

    def __init__(self) -> None:
        self._now: float = 0.0
        # Calendar queue: heap of distinct pending times + per-time bucket.
        # A bucket is the event itself while a time has a single event and
        # is promoted to a deque on the second arrival.
        self._times: list[float] = []
        self._buckets: dict[float, Any] = {}
        # Zero-delay posts in FIFO order; always at time self._now, always
        # younger than any calendar entry scheduled at self._now.
        self._dq: deque[Event] = deque()
        self._crashed: list[tuple[Process, BaseException]] = []
        self._timeout_pool: list[Timeout] = []
        self.trace = None  # set by callers that want tracing
        self.monitor = None  # optional SimMonitor; None keeps run() on the fast loop

    def attach_monitor(self, monitor: Any) -> Any:
        """Route subsequent :meth:`run` calls through the counting loop.

        ``monitor`` is a :class:`repro.sim.monitor.SimMonitor` (or any
        object with its counter attributes).  Pass ``None`` to detach and
        return to the uninstrumented fast loop.
        """
        self.monitor = monitor
        return monitor

    # -- clock ----------------------------------------------------------

    @property
    def now(self) -> float:
        """Current simulation time (seconds)."""
        return self._now

    # -- event factories -------------------------------------------------

    def event(self, name: str = "") -> Event:
        """Create a fresh pending event."""
        # Bypasses Event.__init__; this factory is on the hot path of the
        # message-passing machinery (one event per send/recv pairing).
        ev = Event.__new__(Event)
        ev.sim = self
        if name:
            ev.name = name
        ev._value = None
        ev._ok = True
        ev._triggered = False
        ev._processed = False
        ev._cb = None
        ev.callbacks = None
        return ev

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """An event firing ``delay`` seconds from now.

        Instances come from a free pool of timeouts that completed with no
        outstanding references; the pool bounds allocation in timeout-heavy
        simulations (every compute/transfer in the machine models is one).
        """
        if delay < 0:
            raise ValueError(f"negative timeout delay: {delay}")
        pool = self._timeout_pool
        if pool:
            t = pool.pop()
            t.delay = delay
            t._value = value
            t._processed = False
            # _ok/_triggered/_cb/callbacks were reset when recycled.
        else:
            t = Timeout.__new__(Timeout)
            t.sim = self
            t._value = value
            t._ok = True
            t._triggered = True
            t._processed = False
            t._cb = None
            t.callbacks = None
            t.delay = delay
        if delay == 0.0:
            self._dq.append(t)
        else:
            # Inlined calendar push (mirrors _post).
            when = self._now + delay
            if when == self._now:
                # Positive delay collapsed in float addition (delay below
                # one ulp of the clock).  Route through the same-time
                # deque: a calendar entry created *now* at time `now`
                # would unfairly predate older deque entries, which the
                # pop rule assumes are always younger.
                self._dq.append(t)
                return t
            buckets = self._buckets
            b = buckets.get(when)
            if b is None:
                buckets[when] = t
                heappush(self._times, when)
            elif type(b) is deque:
                b.append(t)
            else:
                buckets[when] = deque((b, t))
        return t

    def process(self, generator: Generator, name: str = "") -> Process:
        """Start a new process from ``generator``; returns its Process event."""
        return Process(self, generator, name=name)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        """Event that fires when all of ``events`` have fired."""
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        """Event that fires when any of ``events`` has fired."""
        return AnyOf(self, events)

    # -- scheduling -------------------------------------------------------

    def _post(self, event: Event, delay: float = 0.0) -> None:
        if delay == 0.0:
            self._dq.append(event)
        else:
            when = self._now + delay
            if when == self._now:
                # FP collapse (see timeout()): keep same-time FIFO order.
                self._dq.append(event)
                return
            buckets = self._buckets
            b = buckets.get(when)
            if b is None:
                buckets[when] = event
                heappush(self._times, when)
            elif type(b) is deque:
                b.append(event)
            else:
                buckets[when] = deque((b, event))

    def _process_failure(self, proc: "Process", exc: BaseException) -> ProcessFailure:
        """Build the :class:`ProcessFailure` for an unconsumed crash.

        Cold path (runs once, when the loop is about to abort), so it can
        afford to scan the trace for the lane active nearest the failure
        time -- usually the resource the dead process was driving.
        """
        lane: Optional[str] = None
        trace = self.trace
        intervals = getattr(trace, "intervals", None) if trace is not None else None
        if intervals:
            now = self._now
            # Most recent lane activity at or before the failure time;
            # ties go to the latest-recorded interval.
            best = None
            for iv in intervals:
                if iv.start <= now and (best is None or iv.start >= best.start):
                    best = iv
            if best is not None:
                lane = best.category
        where = f" (last active lane: {lane})" if lane else ""
        failure = ProcessFailure(
            f"process {proc.name!r} failed at t={self._now:g}{where}: "
            f"{type(exc).__name__}: {exc}"
        )
        failure.process_name = proc.name
        failure.sim_time = self._now
        failure.lane = lane
        return failure

    def _pop_bucket(self) -> Event:
        """Take the next calendar event at ``self._times[0]``, advancing the
        clock; retires the time once its bucket drains."""
        when = self._times[0]
        buckets = self._buckets
        b = buckets[when]
        if type(b) is deque:
            event = b.popleft()
            if not b:
                heappop(self._times)
                del buckets[when]
        else:
            event = b
            heappop(self._times)
            del buckets[when]
        self._now = when
        return event

    def _pop_next(self) -> Optional[Event]:
        """The next event in schedule order, advancing the clock.

        Calendar entries scheduled at the current time predate everything
        in the same-time deque, so they win ties.
        """
        if self._dq:
            if self._times and self._times[0] <= self._now:
                return self._pop_bucket()
            return self._dq.popleft()
        if self._times:
            return self._pop_bucket()
        return None

    def _step(self) -> None:
        event = self._pop_next()
        if event is None:  # pragma: no cover - defensive
            raise SimulationError("step() on an empty schedule")
        event._processed = True
        # Inline dispatch of the dedicated first-callback slot; the
        # overflow list only exists for events with multiple waiters.
        cb = event._cb
        if cb is not None:
            event._cb = None
            cb(event)
        cbs = event.callbacks
        if cbs:
            event.callbacks = None
            for fn in cbs:
                fn(event)
        # Recycle the timeout if provably unreferenced: the only remaining
        # references are our local and getrefcount's argument.
        if type(event) is Timeout and getrefcount(event) == 2:
            pool = self._timeout_pool
            if len(pool) < _TIMEOUT_POOL_CAP:
                pool.append(event)

    def run(self, until: Optional[float] = None) -> float:
        """Run until the event queue drains or ``until`` is reached.

        Returns the final simulation time.  If any process raised an
        exception that no other process consumed, a :class:`ProcessFailure`
        chaining the first such exception is raised.
        """
        # The `_step` body is inlined here with hoisted locals; at sweep
        # event rates the per-event method call and attribute loads are
        # measurable.  Keep semantic changes mirrored in `_step` and in
        # `_run_monitored` (the counting twin used when a monitor is
        # attached -- this one check is the entire disabled-path cost).
        if self.monitor is not None:
            return self._run_monitored(until)
        times = self._times
        buckets = self._buckets
        dq = self._dq
        crashed = self._crashed
        pool = self._timeout_pool
        refcount = getrefcount
        pop = heappop
        popleft = dq.popleft
        dq_deque = deque
        horizon = float("inf") if until is None else until
        while True:
            # Same selection rule as _pop_next, with `until` applied when
            # the next event would come off the calendar (deque events
            # always run at the already-reached current time).
            if dq:
                if times and times[0] <= self._now:
                    when = times[0]
                    b = buckets[when]
                    if type(b) is dq_deque:
                        event = b.popleft()
                        if not b:
                            pop(times)
                            del buckets[when]
                    else:
                        event = b
                        b = None  # drop the extra ref before recycling
                        pop(times)
                        del buckets[when]
                    self._now = when
                else:
                    event = popleft()
            elif times:
                when = times[0]
                if when > horizon:
                    self._now = until
                    break
                b = buckets[when]
                if type(b) is dq_deque:
                    event = b.popleft()
                    if not b:
                        pop(times)
                        del buckets[when]
                else:
                    event = b
                    b = None  # drop the extra ref before recycling
                    pop(times)
                    del buckets[when]
                self._now = when
            else:
                break
            event._processed = True
            cb = event._cb
            if cb is not None:
                event._cb = None
                cb(event)
            cbs = event.callbacks
            if cbs:
                event.callbacks = None
                for fn in cbs:
                    fn(event)
            if type(event) is Timeout and refcount(event) == 2 and len(pool) < _TIMEOUT_POOL_CAP:
                pool.append(event)
            if crashed:
                proc, exc = crashed[0]
                # A failure is "consumed" if some other process was waiting
                # on the failed process event (its callbacks were drained).
                raise self._process_failure(proc, exc) from exc
        return self._now

    def _run_monitored(self, until: Optional[float] = None) -> float:
        """The counting twin of :meth:`run` (same schedule semantics).

        Updates the attached monitor per event: dispatch counts by event
        class and source (calendar vs zero-delay deque), calendar-queue
        occupancy high-water marks, and timeout-pool recycling.
        """
        mon = self.monitor
        mon.run_calls += 1
        times = self._times
        buckets = self._buckets
        dq = self._dq
        crashed = self._crashed
        pool = self._timeout_pool
        by_type = mon.fired_by_type
        horizon = float("inf") if until is None else until
        while True:
            if len(times) > mon.max_heap_len:
                mon.max_heap_len = len(times)
            from_calendar = False
            if dq:
                if times and times[0] <= self._now:
                    event = self._pop_bucket_monitored(mon)
                    from_calendar = True
                else:
                    event = dq.popleft()
            elif times:
                if times[0] > horizon:
                    self._now = until
                    break
                event = self._pop_bucket_monitored(mon)
                from_calendar = True
            else:
                break
            mon.events_fired += 1
            if from_calendar:
                mon.calendar_events += 1
            else:
                mon.zero_delay_events += 1
            cls = type(event).__name__
            by_type[cls] = by_type.get(cls, 0) + 1
            event._processed = True
            cb = event._cb
            if cb is not None:
                event._cb = None
                cb(event)
            cbs = event.callbacks
            if cbs:
                event.callbacks = None
                for fn in cbs:
                    fn(event)
            if type(event) is Timeout and getrefcount(event) == 2 and len(pool) < _TIMEOUT_POOL_CAP:
                pool.append(event)
                mon.timeouts_recycled += 1
                if len(pool) > mon.pool_high_water:
                    mon.pool_high_water = len(pool)
            if crashed:
                proc, exc = crashed[0]
                raise self._process_failure(proc, exc) from exc
        return self._now

    def _pop_bucket_monitored(self, mon: Any) -> Event:
        """:meth:`_pop_bucket`, recording the bucket depth at pop time."""
        when = self._times[0]
        buckets = self._buckets
        b = buckets[when]
        if type(b) is deque:
            if len(b) > mon.max_bucket_depth:
                mon.max_bucket_depth = len(b)
            event = b.popleft()
            if not b:
                heappop(self._times)
                del buckets[when]
        else:
            if mon.max_bucket_depth < 1:
                mon.max_bucket_depth = 1
            event = b
            heappop(self._times)
            del buckets[when]
        self._now = when
        return event

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` if none."""
        if self._dq:
            return self._now
        return self._times[0] if self._times else float("inf")
