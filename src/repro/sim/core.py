"""Discrete-event simulation core.

A minimal, self-contained process-based discrete-event engine in the style
of SimPy, tailored for modelling reconfigurable computing systems.  The
engine provides:

* :class:`Simulator` -- the event loop with a virtual clock,
* :class:`Event` -- one-shot triggers carrying a value,
* :class:`Process` -- generator-based cooperative processes,
* :class:`Timeout` -- events that fire after a simulated delay,
* :class:`AllOf` / :class:`AnyOf` -- event combinators.

Processes are plain Python generators that ``yield`` events.  When an event
fires, the process resumes and receives the event's value as the result of
the ``yield`` expression::

    sim = Simulator()

    def worker(sim):
        yield sim.timeout(3.0)        # advance 3 simulated seconds
        value = yield some_event      # block until the event fires
        ...

    sim.process(worker(sim))
    sim.run()

The engine is deterministic: events scheduled for the same time fire in
the order in which they were scheduled (a monotone sequence number breaks
ties), which makes traces reproducible across runs -- a property the test
suite relies on.
"""

from __future__ import annotations

import heapq
import itertools
from collections.abc import Generator
from typing import Any, Callable, Iterable, Optional

__all__ = [
    "Event",
    "Timeout",
    "Process",
    "AllOf",
    "AnyOf",
    "Simulator",
    "SimulationError",
    "ProcessFailure",
]


class SimulationError(RuntimeError):
    """Raised for invalid uses of the simulation API."""


class ProcessFailure(SimulationError):
    """Raised from :meth:`Simulator.run` when a process raised an exception.

    The original exception is available as ``__cause__``.
    """


class Event:
    """A one-shot occurrence in simulated time.

    Events start *pending*; calling :meth:`succeed` (or :meth:`fail`)
    *triggers* them, after which their callbacks run inside the event loop
    at the current simulation time.  An event can only be triggered once.
    """

    __slots__ = ("sim", "name", "_value", "_ok", "_triggered", "_processed", "callbacks")

    def __init__(self, sim: "Simulator", name: str = "") -> None:
        self.sim = sim
        self.name = name
        self._value: Any = None
        self._ok: bool = True
        self._triggered = False
        self._processed = False
        self.callbacks: list[Callable[["Event"], None]] = []

    # -- state ---------------------------------------------------------

    @property
    def triggered(self) -> bool:
        """True once :meth:`succeed`/:meth:`fail` has been called."""
        return self._triggered

    @property
    def processed(self) -> bool:
        """True once the event's callbacks have run."""
        return self._processed

    @property
    def ok(self) -> bool:
        """True if the event succeeded (meaningless before triggering)."""
        return self._ok

    @property
    def value(self) -> Any:
        """The value the event fired with."""
        if not self._triggered:
            raise SimulationError(f"event {self!r} has not been triggered")
        return self._value

    # -- triggering ----------------------------------------------------

    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully with ``value``."""
        if self._triggered:
            raise SimulationError(f"event {self!r} already triggered")
        self._triggered = True
        self._ok = True
        self._value = value
        self.sim._post(self)
        return self

    def fail(self, exc: BaseException) -> "Event":
        """Trigger the event as failed; waiters receive ``exc``."""
        if self._triggered:
            raise SimulationError(f"event {self!r} already triggered")
        if not isinstance(exc, BaseException):
            raise TypeError("fail() requires an exception instance")
        self._triggered = True
        self._ok = False
        self._value = exc
        self.sim._post(self)
        return self

    def add_callback(self, fn: Callable[["Event"], None]) -> None:
        """Run ``fn(event)`` when the event is processed.

        If the event has already been processed the callback runs
        immediately, preserving at-least-once semantics for late waiters.
        """
        if self._processed:
            fn(self)
        else:
            self.callbacks.append(fn)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "processed" if self._processed else ("triggered" if self._triggered else "pending")
        label = f" {self.name!r}" if self.name else ""
        return f"<{type(self).__name__}{label} {state}>"


class Timeout(Event):
    """An event that fires ``delay`` simulated seconds after creation."""

    __slots__ = ("delay",)

    def __init__(self, sim: "Simulator", delay: float, value: Any = None) -> None:
        if delay < 0:
            raise ValueError(f"negative timeout delay: {delay}")
        super().__init__(sim, name=f"timeout({delay:g})")
        self.delay = delay
        self._triggered = True
        self._ok = True
        self._value = value
        sim._post(self, delay=delay)


class Process(Event):
    """A running generator; also an event that fires when the generator ends.

    The process event's value is the generator's return value, so processes
    can be composed: one process may ``yield`` another to wait for it and
    collect its result.
    """

    __slots__ = ("generator", "_target")

    def __init__(self, sim: "Simulator", generator: Generator, name: str = "") -> None:
        if not isinstance(generator, Generator):
            raise TypeError(f"Process requires a generator, got {type(generator).__name__}")
        super().__init__(sim, name=name or getattr(generator, "__name__", "process"))
        self.generator = generator
        self._target: Optional[Event] = None
        # Bootstrap: resume for the first time via an immediately-fired event.
        init = Event(sim, name=f"init:{self.name}")
        init.add_callback(self._resume)
        init.succeed()

    @property
    def is_alive(self) -> bool:
        """True while the generator has not finished."""
        return not self._triggered

    def _resume(self, event: Event) -> None:
        """Advance the generator with the fired event's value."""
        self._target = None
        try:
            if event.ok:
                target = self.generator.send(event.value)
            else:
                target = self.generator.throw(event.value)
        except StopIteration as stop:
            self.succeed(stop.value)
            return
        except BaseException as exc:
            # The process died.  Fail the process event so waiters see it;
            # if nobody is waiting, the simulator surfaces it from run().
            try:
                self.fail(exc)
            except SimulationError:
                pass
            if not self.callbacks:
                self.sim._crashed.append((self, exc))
            return
        if not isinstance(target, Event):
            exc2 = SimulationError(
                f"process {self.name!r} yielded {target!r}; processes must yield Event instances"
            )
            self.fail(exc2)
            if not self.callbacks:
                self.sim._crashed.append((self, exc2))
            return
        if target.sim is not self.sim:
            exc3 = SimulationError(f"process {self.name!r} yielded an event from another simulator")
            self.fail(exc3)
            if not self.callbacks:
                self.sim._crashed.append((self, exc3))
            return
        self._target = target
        target.add_callback(self._resume)


class _Condition(Event):
    """Base for AllOf / AnyOf combinators."""

    __slots__ = ("events", "_pending")

    def __init__(self, sim: "Simulator", events: Iterable[Event], name: str) -> None:
        super().__init__(sim, name=name)
        self.events: tuple[Event, ...] = tuple(events)
        for ev in self.events:
            if ev.sim is not sim:
                raise SimulationError("condition mixes events from different simulators")
        self._pending = len(self.events)
        if not self.events:
            self.succeed(self._collect())
        else:
            for ev in self.events:
                ev.add_callback(self._check)

    def _collect(self) -> dict[Event, Any]:
        return {ev: ev.value for ev in self.events if ev.processed and ev.ok}

    def _check(self, event: Event) -> None:  # pragma: no cover - overridden
        raise NotImplementedError


class AllOf(_Condition):
    """Fires when *all* constituent events have fired.

    Value: dict mapping each event to its value.  Fails fast if any
    constituent fails.
    """

    __slots__ = ()

    def __init__(self, sim: "Simulator", events: Iterable[Event]) -> None:
        super().__init__(sim, events, name="all_of")

    def _check(self, event: Event) -> None:
        if self._triggered:
            return
        if not event.ok:
            self.fail(event.value)
            return
        self._pending -= 1
        if self._pending == 0:
            self.succeed(self._collect())


class AnyOf(_Condition):
    """Fires when *any* constituent event has fired.

    Value: dict of the events that have fired so far (at least one).
    """

    __slots__ = ()

    def __init__(self, sim: "Simulator", events: Iterable[Event]) -> None:
        super().__init__(sim, events, name="any_of")

    def _check(self, event: Event) -> None:
        if self._triggered:
            return
        if not event.ok:
            self.fail(event.value)
            return
        self.succeed(self._collect())


class Simulator:
    """The discrete-event loop.

    Attributes
    ----------
    now:
        Current simulated time in seconds.
    trace:
        Optional :class:`repro.sim.trace.Trace` attached by the caller; the
        engine itself never writes to it, components do.
    """

    def __init__(self) -> None:
        self._now: float = 0.0
        self._heap: list[tuple[float, int, Event]] = []
        self._seq = itertools.count()
        self._crashed: list[tuple[Process, BaseException]] = []
        self.trace = None  # set by callers that want tracing

    # -- clock ----------------------------------------------------------

    @property
    def now(self) -> float:
        """Current simulation time (seconds)."""
        return self._now

    # -- event factories -------------------------------------------------

    def event(self, name: str = "") -> Event:
        """Create a fresh pending event."""
        return Event(self, name=name)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """An event firing ``delay`` seconds from now."""
        return Timeout(self, delay, value)

    def process(self, generator: Generator, name: str = "") -> Process:
        """Start a new process from ``generator``; returns its Process event."""
        return Process(self, generator, name=name)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        """Event that fires when all of ``events`` have fired."""
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        """Event that fires when any of ``events`` has fired."""
        return AnyOf(self, events)

    # -- scheduling -------------------------------------------------------

    def _post(self, event: Event, delay: float = 0.0) -> None:
        heapq.heappush(self._heap, (self._now + delay, next(self._seq), event))

    def _step(self) -> None:
        time, _, event = heapq.heappop(self._heap)
        if time < self._now:  # pragma: no cover - defensive
            raise SimulationError("event scheduled in the past")
        self._now = time
        event._processed = True
        callbacks, event.callbacks = event.callbacks, []
        for fn in callbacks:
            fn(event)

    def run(self, until: Optional[float] = None) -> float:
        """Run until the event queue drains or ``until`` is reached.

        Returns the final simulation time.  If any process raised an
        exception that no other process consumed, a :class:`ProcessFailure`
        chaining the first such exception is raised.
        """
        while self._heap:
            if until is not None and self._heap[0][0] > until:
                self._now = until
                break
            self._step()
            if self._crashed:
                proc, exc = self._crashed[0]
                # A failure is "consumed" if some other process was waiting
                # on the failed process event (its callbacks were drained).
                raise ProcessFailure(f"process {proc.name!r} failed at t={self._now:g}") from exc
        return self._now

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` if none."""
        return self._heap[0][0] if self._heap else float("inf")
