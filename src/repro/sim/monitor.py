"""Event-loop instrumentation for :class:`repro.sim.core.Simulator`.

Attach a :class:`SimMonitor` before ``run()`` and the simulator swaps
its inlined fast loop for a mirrored counting loop::

    sim = Simulator()
    mon = SimMonitor()
    sim.attach_monitor(mon)
    ...
    sim.run()
    print(mon.snapshot())

The monitored loop is semantically identical to the fast loop (same
event order, same timeout recycling); it only adds per-event counting.
With no monitor attached the engine pays exactly one attribute check
per ``run()`` call, so disabled instrumentation stays off the hot path
entirely (enforced by ``benchmarks/bench_perf_regression.py
--check-baseline``).
"""

from __future__ import annotations

from typing import Any, Optional

__all__ = ["SimMonitor"]


class SimMonitor:
    """Counters for one (or more) ``Simulator.run`` calls.

    Attributes
    ----------
    events_fired:
        Total events dispatched, split into ``calendar_events`` (came
        off the time heap) and ``zero_delay_events`` (same-time deque).
    fired_by_type:
        Dispatch counts per event class name (``Timeout``, ``Event``,
        ``Process``, ``AllOf``, ``AnyOf``, ...).
    timeouts_recycled:
        Timeouts returned to the free pool (vs left to the GC).
    max_bucket_depth:
        Deepest same-time calendar bucket observed at pop time -- the
        burst width of barrier releases / fan-in joins.
    max_heap_len:
        Most distinct pending times in the calendar at once.
    pool_high_water:
        Largest timeout free-pool size reached.
    """

    __slots__ = (
        "events_fired",
        "calendar_events",
        "zero_delay_events",
        "fired_by_type",
        "timeouts_recycled",
        "max_bucket_depth",
        "max_heap_len",
        "pool_high_water",
        "run_calls",
    )

    def __init__(self) -> None:
        self.events_fired = 0
        self.calendar_events = 0
        self.zero_delay_events = 0
        self.fired_by_type: dict[str, int] = {}
        self.timeouts_recycled = 0
        self.max_bucket_depth = 0
        self.max_heap_len = 0
        self.pool_high_water = 0
        self.run_calls = 0

    def snapshot(self) -> dict[str, Any]:
        """JSON-able counter dump."""
        return {
            "events_fired": self.events_fired,
            "calendar_events": self.calendar_events,
            "zero_delay_events": self.zero_delay_events,
            "fired_by_type": dict(sorted(self.fired_by_type.items())),
            "timeouts_recycled": self.timeouts_recycled,
            "max_bucket_depth": self.max_bucket_depth,
            "max_heap_len": self.max_heap_len,
            "pool_high_water": self.pool_high_water,
            "run_calls": self.run_calls,
        }

    def to_registry(self, registry: Any, **labels: str) -> None:
        """Publish the counters onto a :class:`~repro.obs.metrics.MetricsRegistry`."""
        registry.counter("des.events_fired", **labels).inc(self.events_fired)
        registry.counter("des.calendar_events", **labels).inc(self.calendar_events)
        registry.counter("des.zero_delay_events", **labels).inc(self.zero_delay_events)
        for cls, count in sorted(self.fired_by_type.items()):
            registry.counter("des.events_by_type", type=cls, **labels).inc(count)
        registry.counter("des.timeouts_recycled", **labels).inc(self.timeouts_recycled)
        registry.gauge("des.max_bucket_depth", **labels).max(self.max_bucket_depth)
        registry.gauge("des.max_heap_len", **labels).max(self.max_heap_len)
        registry.gauge("des.timeout_pool_high_water", **labels).max(self.pool_high_water)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<SimMonitor fired={self.events_fired} "
            f"(cal={self.calendar_events} zero={self.zero_delay_events}) "
            f"recycled={self.timeouts_recycled}>"
        )
