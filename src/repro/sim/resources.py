"""Shared-resource primitives for the simulation engine.

Three primitives cover everything the machine models need:

* :class:`Resource` -- a counted resource with FIFO queuing (a processor
  core, an FPGA fabric, a DMA engine, a NIC port),
* :class:`Store` -- an unbounded or bounded FIFO of items (mailboxes,
  message queues between simulated processes),
* :class:`BandwidthChannel` -- a serialising pipe that turns byte counts
  into occupancy time (DRAM ports, SRAM ports, network links).

All blocking operations return :class:`~repro.sim.core.Event` objects to be
``yield``-ed from processes.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Optional

from .core import Event, SimulationError, Simulator

__all__ = ["Request", "Resource", "Store", "BandwidthChannel"]


class Request(Event):
    """A pending claim on a :class:`Resource`; fires when granted."""

    __slots__ = ("resource", "amount")

    def __init__(self, resource: "Resource", amount: int) -> None:
        super().__init__(resource.sim)
        self.resource = resource
        self.amount = amount

    def __getattr__(self, attr: str):
        if attr == "name":
            # Lazy: requests are created once per simulated kernel call and
            # the debug name is only needed when something prints the event.
            return f"request:{self.resource.name}"
        raise AttributeError(attr)


class Resource:
    """A counted, FIFO-granted resource.

    ``capacity`` units exist; a request for ``amount`` units blocks until
    that many are free *and* all earlier requests have been granted (strict
    FIFO, no overtaking -- keeps traces deterministic and prevents
    starvation of large requests).
    """

    def __init__(self, sim: Simulator, capacity: int = 1, name: str = "resource") -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.sim = sim
        self.name = name
        self.capacity = capacity
        self._in_use = 0
        self._queue: deque[Request] = deque()

    @property
    def in_use(self) -> int:
        """Units currently held."""
        return self._in_use

    @property
    def available(self) -> int:
        """Units currently free."""
        return self.capacity - self._in_use

    @property
    def queue_length(self) -> int:
        """Number of requests waiting."""
        return len(self._queue)

    def request(self, amount: int = 1) -> Request:
        """Claim ``amount`` units; yield the returned event to block."""
        if amount < 1 or amount > self.capacity:
            raise ValueError(f"cannot request {amount} of {self.capacity} units of {self.name!r}")
        # Slim factory (mirrors Simulator.event): skips Event.__init__ and
        # leaves ``name`` unset so the lazy __getattr__ debug name applies.
        # One request per simulated kernel call / channel transfer makes
        # this construction hot.
        req = Request.__new__(Request)
        req.sim = self.sim
        req._value = None
        req._ok = True
        req._triggered = False
        req._processed = False
        req._cb = None
        req.callbacks = None
        req.resource = self
        req.amount = amount
        self._queue.append(req)
        self._grant()
        return req

    def release(self, amount: int = 1) -> None:
        """Return ``amount`` units previously granted."""
        if amount < 1 or amount > self._in_use:
            raise SimulationError(
                f"release({amount}) on {self.name!r} with only {self._in_use} in use"
            )
        self._in_use -= amount
        self._grant()

    def _grant(self) -> None:
        while self._queue and self._queue[0].amount <= self.capacity - self._in_use:
            req = self._queue.popleft()
            self._in_use += req.amount
            req.succeed(req)


class Store:
    """A FIFO buffer of Python objects with blocking get/put.

    With a finite ``capacity``, :meth:`put` blocks while full; :meth:`get`
    blocks while empty.  Used as the mailbox under the simulated MPI layer.
    """

    def __init__(self, sim: Simulator, capacity: float = float("inf"), name: str = "store") -> None:
        if capacity < 1:
            raise ValueError("store capacity must be >= 1")
        self.sim = sim
        self.name = name
        self.capacity = capacity
        self._items: deque[Any] = deque()
        self._getters: deque[Event] = deque()
        self._putters: deque[tuple[Event, Any]] = deque()

    def __len__(self) -> int:
        return len(self._items)

    @property
    def items(self) -> tuple[Any, ...]:
        """A read-only snapshot of buffered items (oldest first)."""
        return tuple(self._items)

    def put(self, item: Any) -> Event:
        """Deposit ``item``; yield the event to block until accepted."""
        # Unnamed via the slim factory: one event per message, and the
        # f-string debug name dominated put()/get() in profiles.
        ev = self.sim.event()
        self._putters.append((ev, item))
        self._dispatch()
        return ev

    def get(self) -> Event:
        """Withdraw the oldest item; the event's value is the item."""
        ev = self.sim.event()
        self._getters.append(ev)
        self._dispatch()
        return ev

    def _dispatch(self) -> None:
        moved = True
        while moved:
            moved = False
            # Admit puts while there is room.
            while self._putters and len(self._items) < self.capacity:
                ev, item = self._putters.popleft()
                self._items.append(item)
                ev.succeed(item)
                moved = True
            # Serve gets while items exist.
            while self._getters and self._items:
                ev = self._getters.popleft()
                ev.succeed(self._items.popleft())
                moved = True


class BandwidthChannel:
    """A serialising data pipe: moving ``nbytes`` occupies it ``nbytes/bw`` s.

    Models a DRAM port, an SRAM port, or one direction of a network link.
    Transfers are granted FIFO; an optional fixed per-transfer ``latency``
    is paid before the bandwidth term (used for network links; the paper's
    model omits memory latency because data are streamed, so memory
    channels use ``latency=0``).

    The channel accumulates ``busy_time`` and ``bytes_moved`` for
    utilisation reporting.
    """

    def __init__(
        self,
        sim: Simulator,
        bandwidth: float,
        name: str = "channel",
        latency: float = 0.0,
        trace_category: Optional[str] = None,
    ) -> None:
        if bandwidth <= 0:
            raise ValueError(f"bandwidth must be positive, got {bandwidth}")
        if latency < 0:
            raise ValueError(f"latency must be >= 0, got {latency}")
        self.sim = sim
        self.name = name
        self.bandwidth = bandwidth
        self.latency = latency
        self.trace_category = trace_category
        self._lock = Resource(sim, capacity=1, name=f"{name}.lock")
        self.busy_time = 0.0
        self.bytes_moved = 0.0
        self.transfer_count = 0

    def transfer_time(self, nbytes: float) -> float:
        """Pure service time for ``nbytes`` (no queuing)."""
        if nbytes < 0:
            raise ValueError(f"negative transfer size: {nbytes}")
        return self.latency + nbytes / self.bandwidth

    def transfer(self, nbytes: float, label: str = ""):
        """Process generator performing a transfer; yield from a process.

        Usage::

            yield from channel.transfer(8 * 1024)

        or spawn it to overlap with other work::

            done = sim.process(channel.transfer(nbytes))
            ...                  # other events
            yield done
        """
        service = self.transfer_time(nbytes)
        req = self._lock.request()
        yield req
        start = self.sim.now
        try:
            yield self.sim.timeout(service)
        finally:
            self._lock.release()
        self.busy_time += self.sim.now - start
        self.bytes_moved += nbytes
        self.transfer_count += 1
        if self.sim.trace is not None and self.trace_category is not None:
            self.sim.trace.record(
                self.trace_category, label or self.name, start, self.sim.now, nbytes=nbytes
            )
        return service

    def utilisation(self, horizon: Optional[float] = None) -> float:
        """Fraction of time busy over ``horizon`` (default: now)."""
        horizon = self.sim.now if horizon is None else horizon
        return 0.0 if horizon <= 0 else min(1.0, self.busy_time / horizon)
