"""Execution tracing for simulations.

Components record half-open intervals ``[start, end)`` tagged with a
category (e.g. ``"cpu"``, ``"fpga"``, ``"net"``, ``"dram"``) and a label.
The trace supports:

* utilisation summaries per category / lane,
* causality checking (no lane may run two intervals at once),
* a plain-text Gantt rendering for reports and debugging.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Any, Iterable, Optional

__all__ = ["Interval", "Trace", "CausalityViolation"]


class CausalityViolation(AssertionError):
    """Two intervals overlap on the same exclusive lane."""


@dataclass(frozen=True)
class Interval:
    """One traced activity on a lane."""

    category: str
    label: str
    start: float
    end: float
    meta: dict = field(default_factory=dict, compare=False)

    @property
    def duration(self) -> float:
        return self.end - self.start

    def overlaps(self, other: "Interval") -> bool:
        """True if the two half-open intervals intersect."""
        return self.start < other.end and other.start < self.end


class Trace:
    """An append-only log of :class:`Interval` records."""

    def __init__(self) -> None:
        self.intervals: list[Interval] = []

    def record(
        self, category: str, label: str, start: float, end: float, **meta: Any
    ) -> Interval:
        """Append one interval; ``end`` may equal ``start`` (instantaneous)."""
        if end < start:
            raise ValueError(f"interval ends before it starts: [{start}, {end})")
        iv = Interval(category, label, start, end, meta)
        self.intervals.append(iv)
        return iv

    def __len__(self) -> int:
        return len(self.intervals)

    def by_category(self, category: str) -> list[Interval]:
        """All intervals in ``category``, in recording order."""
        return [iv for iv in self.intervals if iv.category == category]

    def lanes(self) -> list[str]:
        """Sorted distinct categories."""
        return sorted({iv.category for iv in self.intervals})

    def busy_time(self, category: str) -> float:
        """Total non-overlapping busy time in ``category``.

        Overlapping intervals (legal for shared lanes) are merged so time
        is not double counted.
        """
        ivs = sorted(self.by_category(category), key=lambda iv: iv.start)
        total = 0.0
        cur_start: Optional[float] = None
        cur_end = 0.0
        for iv in ivs:
            if cur_start is None:
                cur_start, cur_end = iv.start, iv.end
            elif iv.start <= cur_end:
                cur_end = max(cur_end, iv.end)
            else:
                total += cur_end - cur_start
                cur_start, cur_end = iv.start, iv.end
        if cur_start is not None:
            total += cur_end - cur_start
        return total

    def makespan(self) -> float:
        """Latest interval end (0 if empty)."""
        return max((iv.end for iv in self.intervals), default=0.0)

    def utilisation(self, category: Optional[str] = None) -> dict[str, float] | float:
        """Busy fraction of the makespan, per category (or one category).

        Degenerate traces are well-defined rather than errors: an empty
        trace, or one holding only zero-duration intervals (makespan 0),
        yields 0.0 for every category -- never a ``ZeroDivisionError``.
        """
        horizon = self.makespan()
        if category is not None:
            return self.busy_time(category) / horizon if horizon > 0 else 0.0
        return {
            cat: (self.busy_time(cat) / horizon if horizon > 0 else 0.0)
            for cat in self.lanes()
        }

    def check_exclusive(self, categories: Optional[Iterable[str]] = None) -> None:
        """Assert that no two intervals overlap within each given category.

        Raises :class:`CausalityViolation` naming the first offending pair.
        Zero-duration intervals never conflict.
        """
        cats = list(categories) if categories is not None else self.lanes()
        for cat in cats:
            ivs = sorted(
                (iv for iv in self.by_category(cat) if iv.duration > 0),
                key=lambda iv: (iv.start, iv.end),
            )
            for prev, cur in zip(ivs, ivs[1:]):
                if prev.overlaps(cur):
                    raise CausalityViolation(
                        f"lane {cat!r}: {prev.label!r} [{prev.start:g},{prev.end:g}) overlaps "
                        f"{cur.label!r} [{cur.start:g},{cur.end:g})"
                    )

    def summary(self) -> dict[str, dict[str, float]]:
        """Per-category stats: busy time, interval count, utilisation."""
        horizon = self.makespan()
        out: dict[str, dict[str, float]] = {}
        for cat in self.lanes():
            busy = self.busy_time(cat)
            out[cat] = {
                "busy": busy,
                "count": float(len(self.by_category(cat))),
                "utilisation": busy / horizon if horizon > 0 else 0.0,
            }
        return out

    def gantt(self, width: int = 72, lanes: Optional[Iterable[str]] = None) -> str:
        """Render a monospace Gantt chart of the trace.

        Each lane is one row; ``#`` marks busy spans.  Intended for
        human inspection in reports, not for parsing.
        """
        horizon = self.makespan()
        if horizon <= 0 or not self.intervals:
            return "(empty trace)"
        rows = []
        lane_names = list(lanes) if lanes is not None else self.lanes()
        label_w = max((len(name) for name in lane_names), default=4)
        for cat in lane_names:
            cells = [" "] * width
            for iv in self.by_category(cat):
                lo = int(iv.start / horizon * (width - 1))
                hi = max(lo, int(iv.end / horizon * (width - 1)))
                for x in range(lo, hi + 1):
                    cells[x] = "#"
            rows.append(f"{cat:<{label_w}} |{''.join(cells)}|")
        rows.append(f"{'':<{label_w}}  0{'':{width - len(f'{horizon:.3g}') - 1}}{horizon:.3g}s")
        return "\n".join(rows)

    def as_records(self) -> list[dict[str, Any]]:
        """Every interval as a JSON-able record (ledger / offline tools).

        The record shape matches what
        :func:`repro.obs.critical_path.from_chrome_trace` produces, so
        live traces and reloaded Chrome-trace files are interchangeable
        inputs to the critical-path walker.
        """
        return [
            {
                "category": iv.category,
                "label": iv.label,
                "start": iv.start,
                "end": iv.end,
                **({"meta": iv.meta} if iv.meta else {}),
            }
            for iv in self.intervals
        ]

    @classmethod
    def from_records(cls, records: Iterable[dict]) -> "Trace":
        """Rebuild a trace from :meth:`as_records` output."""
        trace = cls()
        for rec in records:
            trace.record(
                rec["category"], rec.get("label", ""), rec["start"], rec["end"],
                **(rec.get("meta") or {}),
            )
        return trace

    def busy_by_class(self, classifier: Any) -> dict[str, float]:
        """Busy lane-seconds per ``classifier(label)`` class, descending.

        ``classifier`` maps an interval label to a class name (e.g.
        :func:`repro.obs.critical_path.classify_label`).  Within each
        (lane, class) pair overlapping intervals are merged so shared
        lanes are not double counted, then lane totals are summed per
        class -- the result is lane-seconds, not wall seconds, which is
        what paired-run activity diffs want (two lanes each 1s busier
        is a 2s shift in that class of work).
        """
        groups: dict[tuple[str, str], list[Interval]] = defaultdict(list)
        for iv in self.intervals:
            groups[(iv.category, classifier(iv.label))].append(iv)
        totals: dict[str, float] = {}
        for (_, cls), ivs in groups.items():
            busy = 0.0
            cur_start: Optional[float] = None
            cur_end = 0.0
            for iv in sorted(ivs, key=lambda iv: iv.start):
                if cur_start is None:
                    cur_start, cur_end = iv.start, iv.end
                elif iv.start <= cur_end:
                    cur_end = max(cur_end, iv.end)
                else:
                    busy += cur_end - cur_start
                    cur_start, cur_end = iv.start, iv.end
            if cur_start is not None:
                busy += cur_end - cur_start
            totals[cls] = totals.get(cls, 0.0) + busy
        return dict(sorted(totals.items(), key=lambda kv: (-kv[1], kv[0])))

    def utilisation_by_prefix(self, prefix: str) -> dict[str, float]:
        """Utilisation of every lane whose category starts with ``prefix``."""
        horizon = self.makespan()
        out = {}
        for cat in self.lanes():
            if cat.startswith(prefix):
                out[cat] = self.busy_time(cat) / horizon if horizon > 0 else 0.0
        return out


def merge(traces: Iterable[Trace]) -> Trace:
    """Combine several traces into one (e.g. per-node traces)."""
    out = Trace()
    for tr in traces:
        out.intervals.extend(tr.intervals)
    return out
