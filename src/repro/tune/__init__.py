"""Guided design-space autotuner (successive halving + Pareto fronts).

The paper's core question -- which (p, b, b_f, l, l1:l2, k) partition
is best for a given machine -- is answered elsewhere in this repo by
exhaustive grid sweeps.  This package answers it *guided*: the analytic
fast path scores the whole space cheaply, successive halving promotes
only the top fraction to full-fidelity DES runs, a local-refinement
pass polishes the incumbent, and an optional fault-grid rung scores the
survivors' resilience.  The output is a bitwise-deterministic *tune
manifest* (schema-6 ``tune`` ledger entries) carrying the incumbent and
the Pareto front over {GFLOPS, FPGA slice utilisation, resilience}.

* :mod:`repro.tune.space` -- :class:`SearchSpace`: axes over a
  :class:`~repro.parallel.ParamGrid` plus feasibility and synthesis;
* :mod:`repro.tune.evaluate` -- cacheable fidelity-tagged tasks;
* :mod:`repro.tune.search` -- :class:`TuneSpec` / :func:`run_tune`;
* :mod:`repro.tune.pareto` -- dominance and front extraction;
* :mod:`repro.tune.report` -- ASCII rendering for ``tune report``.

Documentation lives in ``docs/performance.md`` ("Guided search").
"""

from .evaluate import objectives_for, point_task, resilience_task, run_tune_task
from .pareto import DEFAULT_SENSES, dominates, pareto_front
from .report import front_rows, render_tune
from .search import (
    TUNE_MANIFEST_SCHEMA,
    TuneSpec,
    load_manifest,
    run_tune,
    write_manifest,
)
from .space import NAMED_SPACES, SPACE_KINDS, SearchSpace, named_space, parse_axis

__all__ = [
    "DEFAULT_SENSES",
    "NAMED_SPACES",
    "SPACE_KINDS",
    "SearchSpace",
    "TUNE_MANIFEST_SCHEMA",
    "TuneSpec",
    "dominates",
    "front_rows",
    "load_manifest",
    "named_space",
    "objectives_for",
    "pareto_front",
    "parse_axis",
    "point_task",
    "render_tune",
    "resilience_task",
    "run_tune",
    "run_tune_task",
    "write_manifest",
]
