"""Fidelity-aware evaluation of tuner design points.

The tuner evaluates every point through the same cached-task layer the
experiments use: each evaluation is a JSON-able task dict (the cache
key) plus a module-level worker function (picklable, so the
process-pool executor can ship it).  Three fidelity levels exist:

* ``analytic`` -- the cheap rung.  ``block_mm`` points go through the
  closed-form fast path (``fast_path="on"``: these schedules are always
  eligible); ``lu``/``fw`` points use ``"auto"`` so ineligible configs
  fall back to the DES rather than erroring.  Analytic tasks share
  their cache keys with the experiment sweeps (same task shape, same
  bitwise value), so a tuner run after ``repro experiments`` starts
  warm -- and vice versa.
* ``des`` -- the full-fidelity rung (``fast_path="off"``).  The task
  carries a ``fidelity: "des"`` marker so its cache entry never
  masquerades as a cheap one: budget accounting stays honest on any
  cache state.
* ``resilience`` -- an optional fault-grid probe for front candidates:
  the point's own partition is held fixed (policy ``degrade-static``)
  under a seeded fault scenario and scored by overlap-efficiency
  retention (:mod:`repro.faults`).

Objectives derived parent-side (no caching needed -- pure arithmetic):
GFLOPS from the simulated latency and FPGA slice utilisation from the
synthesis estimator.
"""

from __future__ import annotations

from typing import Any, Optional

from ..machine import ALL_PRESETS
from .space import SearchSpace

__all__ = ["run_tune_task", "point_task", "resilience_task", "objectives_for"]


def point_task(
    space: SearchSpace, point: dict[str, Any], fidelity: str
) -> dict[str, Any]:
    """The cacheable task dict for one (point, fidelity) evaluation."""
    p = space.params(point)
    if space.kind == "block_mm":
        task: dict[str, Any] = {
            "kind": "block_mm",
            "machine": space.machine,
            "b": int(p["b"]),
            "b_f": int(p["b_f"]),
            "k": int(p["k"]),
        }
    elif space.kind == "lu":
        from ..apps.lu import LuSimConfig

        task = {
            "kind": "lu",
            "machine": space.machine,
            "cfg": LuSimConfig(
                n=int(p["n"]), b=int(p["b"]), k=int(p["k"]),
                b_f=int(p["b_f"]), l=int(p["l"]), iterations=1,
            ),
        }
    else:
        from ..apps.fw import FwSimConfig

        task = {
            "kind": "fw",
            "machine": space.machine,
            "cfg": FwSimConfig(
                n=int(p["n"]), b=int(p["b"]), k=int(p["k"]),
                l1=int(p["l1"]), l2=int(p["l2"]), iterations=1,
            ),
        }
    if fidelity == "des":
        # Distinct cache identity for full-fidelity entries; analytic
        # tasks keep the experiments' exact shape for cache sharing.
        task["fidelity"] = "des"
    return task


def resilience_task(
    space: SearchSpace, point: dict[str, Any], scenario: dict[str, Any]
) -> dict[str, Any]:
    """The cacheable fault-probe task for one front candidate.

    ``block_mm`` points have no full-app fault policy surface, so they
    are probed through a short (2-block) LU run that reuses the point's
    (b, b_f) split -- the block multiply is LU's co-designed kernel.
    """
    p = space.params(point)
    if space.kind == "fw":
        app, n, b = "fw", int(p["n"]), int(p["b"])
        overrides: dict[str, Any] = {"l1": int(p["l1"]), "l2": int(p["l2"]), "iterations": 1}
    elif space.kind == "lu":
        app, n, b = "lu", int(p["n"]), int(p["b"])
        overrides = {"b_f": int(p["b_f"]), "l": int(p["l"]), "iterations": 1}
    else:
        app, b = "lu", int(p["b"])
        n = 2 * b
        overrides = {"b_f": int(p["b_f"]), "iterations": 1}
    return {
        "kind": "tune_resilience",
        "app": app,
        "machine": space.machine,
        "n": n,
        "b": b,
        "overrides": overrides,
        "scenario": dict(scenario),
        "policy": "degrade-static",
    }


def _spec_for(machine: str):
    return ALL_PRESETS[machine]()


def run_tune_task(task: dict[str, Any]) -> Any:
    """Evaluate one tuner task; must stay module-level (picklable).

    Returns the same value shape as the experiments' task layer for the
    shared kinds (``block_mm``: latency in seconds; ``lu``/``fw``:
    ``{"elapsed", "gflops"}``), and a resilience summary dict for
    ``tune_resilience`` probes.
    """
    kind = task["kind"]
    fast: Optional[str]
    if task.get("fidelity") == "des":
        fast = "off"
    elif kind == "block_mm":
        fast = "on"
    else:
        fast = "auto"
    spec = _spec_for(task["machine"])
    if kind == "block_mm":
        from ..apps.lu import simulate_block_mm

        return simulate_block_mm(
            spec, task["b"], task["b_f"], task["k"], fast_path=fast
        )
    if kind == "lu":
        from ..apps.lu import simulate_lu

        res = simulate_lu(spec, task["cfg"], fast_path=fast)
        return {"elapsed": res.elapsed, "gflops": res.gflops}
    if kind == "fw":
        from ..apps.fw import simulate_fw

        res = simulate_fw(spec, task["cfg"], fast_path=fast)
        return {"elapsed": res.elapsed, "gflops": res.gflops}
    if kind == "tune_resilience":
        from ..faults import run_with_faults

        result = run_with_faults(
            task["app"],
            task["scenario"],
            task["policy"],
            preset=task["machine"],
            n=task["n"],
            b=task["b"],
            sim_overrides=dict(task["overrides"]),
        )
        return {
            "efficiency_retention": result.efficiency_retention,
            "makespan_inflation": result.makespan_inflation,
            "failed": bool(result.failed),
        }
    raise ValueError(f"unknown tune task kind {kind!r}")


def objectives_for(
    space: SearchSpace, point: dict[str, Any], value: Any
) -> dict[str, float]:
    """Derive the Pareto objectives from a point's simulation value.

    GFLOPS comes from the simulated latency (for ``block_mm``,
    ``2 b^3`` flops over the measured block time); slice utilisation
    from the synthesis estimator at the point's PE count.
    """
    p = space.params(point)
    if space.kind == "block_mm":
        latency = float(value)
        gflops = 2.0 * float(p["b"]) ** 3 / latency / 1e9
    else:
        latency = float(value["elapsed"])
        gflops = float(value["gflops"])
    report = space.synthesis(int(p["k"]))
    return {
        "gflops": gflops,
        "latency": latency,
        "slice_utilisation": report.slice_utilisation,
        "freq_mhz": report.freq_hz / 1e6,
    }
