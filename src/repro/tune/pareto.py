"""Pareto-front extraction over tuner objectives.

A design point *dominates* another when it is at least as good on every
objective and strictly better on at least one, with per-objective
senses (``"max"`` for GFLOPS and resilience, ``"min"`` for FPGA slice
utilisation).  The front is the non-dominated subset, returned in a
deterministic order (descending primary objective, canonical point JSON
as the tiebreak) so manifests containing it are bitwise-reproducible.
"""

from __future__ import annotations

from typing import Any, Mapping, Sequence

from ..parallel.grid import canonical_json

__all__ = ["DEFAULT_SENSES", "dominates", "pareto_front"]

#: Objective senses the tuner optimises over.  ``latency``/``freq_mhz``
#: ride along in the objective dicts for reporting but are redundant
#: with ``gflops`` / ``slice_utilisation``, so they are not senses here.
DEFAULT_SENSES: dict[str, str] = {
    "gflops": "max",
    "slice_utilisation": "min",
    "resilience": "max",
}


def _oriented(row: Mapping[str, Any], senses: Mapping[str, str]) -> list[float]:
    """The row's objective vector, flipped so larger is always better."""
    out = []
    for name, sense in senses.items():
        v = float(row[name])
        out.append(v if sense == "max" else -v)
    return out


def dominates(
    a: Mapping[str, Any], b: Mapping[str, Any], senses: Mapping[str, str]
) -> bool:
    """True when objective dict ``a`` Pareto-dominates ``b``."""
    va, vb = _oriented(a, senses), _oriented(b, senses)
    return all(x >= y for x, y in zip(va, vb)) and any(x > y for x, y in zip(va, vb))


def pareto_front(
    rows: Sequence[Mapping[str, Any]],
    senses: Mapping[str, str] = DEFAULT_SENSES,
    objectives_key: str = "objectives",
) -> list[dict[str, Any]]:
    """The non-dominated rows, deterministically ordered.

    ``rows`` are candidate dicts with an ``objectives`` sub-dict (the
    tuner's evaluated-point records); ``senses`` maps objective name to
    ``"max"``/``"min"`` and is restricted to the objectives present in
    every row.  Exact duplicates of an objective vector all survive
    (none dominates the other), which keeps ties visible in the front.
    """
    if not rows:
        return []
    usable = {
        name: sense
        for name, sense in senses.items()
        if all(row[objectives_key].get(name) is not None for row in rows)
    }
    if not usable:
        raise ValueError(f"no usable objectives among {list(senses)}")
    front = [
        row
        for row in rows
        if not any(
            dominates(other[objectives_key], row[objectives_key], usable)
            for other in rows
            if other is not row
        )
    ]
    primary = next(iter(usable))
    sign = -1.0 if usable[primary] == "max" else 1.0

    def order(row: Mapping[str, Any]) -> tuple:
        return (sign * float(row[objectives_key][primary]), canonical_json(row.get("point", {})))

    return [dict(row) for row in sorted(front, key=order)]
