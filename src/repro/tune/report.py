"""Human-readable rendering of tune manifests (``tune report``)."""

from __future__ import annotations

from typing import Any

from ..analysis import pareto_plot, table
from ..analysis.report import percent

__all__ = ["render_tune", "front_rows"]


def _point_label(point: dict[str, Any]) -> str:
    return " ".join(f"{k}={point[k]}" for k in sorted(point))


def front_rows(manifest: dict[str, Any]) -> list[list[Any]]:
    """Table rows for the manifest's Pareto front (report + dashboard)."""
    has_res = "resilience" in manifest.get("objectives", {})
    rows = []
    for entry in manifest.get("front", []):
        obj = entry["objectives"]
        row = [
            _point_label(entry["point"]),
            f"{obj['gflops']:.2f}",
            percent(obj["slice_utilisation"]),
            f"{obj.get('freq_mhz', 0):.0f}",
            entry.get("fidelity", "?"),
        ]
        if has_res:
            row.insert(3, percent(obj["resilience"]) if obj.get("resilience") is not None else "-")
        rows.append(row)
    return rows


def render_tune(manifest: dict[str, Any]) -> str:
    """The full ASCII report for one tune manifest."""
    spec = manifest.get("spec", {})
    space = manifest.get("space", {})
    lines = [
        f"tune: {manifest.get('app')}@{manifest.get('preset')} "
        f"space={space.get('size')} feasible points "
        f"(grid {space.get('grid_size')}, {space.get('infeasible')} infeasible), "
        f"seed={spec.get('seed')}",
    ]
    rung_rows = []
    for rung in manifest.get("rungs", []):
        best = rung.get("best") or {}
        rung_rows.append(
            [
                rung.get("rung"),
                rung.get("fidelity"),
                rung.get("evaluated"),
                rung.get("kept"),
                _point_label(best.get("point", {})),
                f"{best.get('gflops', 0):.2f}" if best else "-",
            ]
        )
    lines.append(
        table(
            ["rung", "fidelity", "evaluated", "kept", "best point", "GFLOPS"],
            rung_rows,
            title="Successive-halving rungs",
        )
    )
    inc = manifest.get("incumbent", {})
    obj = inc.get("objectives", {})
    lines.append(
        f"incumbent: {_point_label(inc.get('point', {}))} -> "
        f"{obj.get('gflops', 0):.2f} GFLOPS, "
        f"{percent(obj.get('slice_utilisation', 0))} slices, "
        f"{obj.get('freq_mhz', 0):.0f} MHz ({inc.get('fidelity')})"
    )
    budget = manifest.get("budget", {})
    savings = manifest.get("savings", {})
    lines.append(
        f"DES budget: {budget.get('des_used')}/{budget.get('des')} used; "
        f"exhaustive sweep would need {manifest.get('exhaustive_des')} "
        f"({percent(savings.get('fraction_of_exhaustive', 1.0))} of exhaustive, "
        f"{savings.get('des_evals_saved')} DES evals saved)"
    )
    has_res = "resilience" in manifest.get("objectives", {})
    headers = ["design point", "GFLOPS", "slices", "F MHz", "fidelity"]
    if has_res:
        headers.insert(3, "resilience")
    lines.append(
        table(headers, front_rows(manifest), title="Pareto front")
    )
    pts = [
        (r["objectives"]["slice_utilisation"], r["objectives"]["gflops"])
        for r in manifest.get("points", [])
    ]
    front = [
        (r["objectives"]["slice_utilisation"], r["objectives"]["gflops"])
        for r in manifest.get("front", [])
    ]
    lines.append(
        pareto_plot(
            pts,
            front,
            "Pareto front: throughput vs FPGA area",
            x_label="slice utilisation",
            y_label="GFLOPS",
        )
    )
    return "\n".join(lines)
