"""Successive-halving search with local refinement and Pareto extraction.

The driver spends cheap evaluations freely and full-fidelity DES runs
surgically:

1. **Rung 0 (analytic).**  Every feasible point in the space is scored
   through the analytic fast path -- bitwise identical to the DES where
   eligible, an order of magnitude cheaper (docs/performance.md).
2. **Rung 1 (DES).**  The top ``1/eta`` of rung 0 (clipped so the
   refinement pass keeps part of the budget) is re-evaluated at full
   fidelity; the DES ranking picks the incumbent.
3. **Refinement rungs.**  Axis-adjacent neighbours of the incumbent are
   DES-evaluated while budget remains and the incumbent keeps moving --
   hill-climbing on the grid around the survivor.
4. **Resilience rung (optional).**  The strongest survivors are probed
   under a seeded fault scenario (their own partition held fixed,
   policy ``degrade-static``), adding a third Pareto objective:
   overlap-efficiency retention under faults.

Determinism contract (same as :mod:`repro.campaign`): tasks are
enumerated parent-side, results reassembled by index, rankings break
ties on canonical point JSON, the resilience scenario derives from the
master seed -- so serial and ``--jobs N`` runs of one spec produce
bitwise-identical manifests, and the DES budget counts *scheduled*
evaluations (not cache misses) so warm caches change wall-clock only,
never the search trajectory.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass
from typing import Any, Optional

from ..campaign.seeds import derive_seed
from ..faults.scenarios import build_scenario
from ..obs.metrics import REGISTRY
from ..parallel import ResultCache, SweepExecutor, cache_from_env
from ..parallel.grid import canonical_json
from .evaluate import objectives_for, point_task, resilience_task, run_tune_task
from .pareto import DEFAULT_SENSES, pareto_front
from .space import SearchSpace

__all__ = [
    "TUNE_MANIFEST_SCHEMA",
    "TuneSpec",
    "run_tune",
    "write_manifest",
    "load_manifest",
]

#: Version of the tune-manifest document layout (independent of the
#: ledger's envelope schema, which versions entries).
TUNE_MANIFEST_SCHEMA = 1


@dataclass(frozen=True)
class TuneSpec:
    """The full, serializable description of one guided search."""

    space: SearchSpace
    seed: int = 0
    #: Keep the top ``1/eta`` of the analytic rung for DES promotion.
    eta: int = 4
    #: Total full-fidelity DES evaluations allowed (halving rung plus
    #: refinement).  Default: a quarter of the space -- the headline
    #: claim is finding the optimum at <= 25% of the exhaustive cost.
    budget: Optional[int] = None
    #: Neighbourhood radius (axis steps) for local refinement; 0 disables.
    refine: int = 1
    #: Optional fault-scenario name for the resilience objective
    #: (e.g. ``brownout``, ``degraded-link``, ``fpga-throttle``).
    resilience: Optional[str] = None
    #: How many DES survivors to score under faults.
    resilience_keep: int = 2

    def __post_init__(self) -> None:
        if self.eta < 2:
            raise ValueError(f"eta must be >= 2, got {self.eta}")
        if self.budget is not None and self.budget < 1:
            raise ValueError(f"budget must be >= 1, got {self.budget}")
        if self.refine < 0:
            raise ValueError(f"refine must be >= 0, got {self.refine}")
        if self.resilience_keep < 1:
            raise ValueError(f"resilience_keep must be >= 1, got {self.resilience_keep}")

    def effective_budget(self, space_size: int) -> int:
        """The DES-evaluation cap for a space of ``space_size`` points."""
        if self.budget is not None:
            return self.budget
        return max(1, math.ceil(space_size / 4))

    def to_dict(self) -> dict[str, Any]:
        data: dict[str, Any] = {
            "space": self.space.to_dict(),
            "seed": self.seed,
            "eta": self.eta,
            "refine": self.refine,
        }
        if self.budget is not None:
            data["budget"] = self.budget
        if self.resilience:
            data["resilience"] = self.resilience
            data["resilience_keep"] = self.resilience_keep
        return data

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "TuneSpec":
        return cls(
            space=SearchSpace.from_dict(data["space"]),
            seed=int(data.get("seed", 0)),
            eta=int(data.get("eta", 4)),
            budget=data.get("budget"),
            refine=int(data.get("refine", 1)),
            resilience=data.get("resilience"),
            resilience_keep=int(data.get("resilience_keep", 2)),
        )


def _coerce_cache(cache: Any) -> Optional[ResultCache]:
    if cache is None:
        return cache_from_env()
    if cache is False:
        return None
    if cache is True:
        return ResultCache()
    if isinstance(cache, ResultCache):
        return cache
    return ResultCache(cache)


class _Evaluator:
    """Cache-aware batch evaluation with scheduled-eval accounting."""

    def __init__(self, executor: SweepExecutor, cache: Optional[ResultCache]) -> None:
        self.executor = executor
        self.cache = cache
        self.scheduled = {"analytic": 0, "des": 0, "resilience": 0}
        self.cache_hits = 0

    def __call__(self, tasks: list[dict[str, Any]], fidelity: str) -> list[Any]:
        self.scheduled[fidelity] += len(tasks)
        REGISTRY.counter(f"tune.evals.{fidelity}").inc(len(tasks))
        if self.cache is None:
            return self.executor.map(run_tune_task, tasks)
        values: list[Any] = [None] * len(tasks)
        misses: list[int] = []
        for i, task in enumerate(tasks):
            entry = self.cache.get(task)
            if entry is None:
                misses.append(i)
            else:
                values[i] = entry["value"]
        hits = len(tasks) - len(misses)
        self.cache_hits += hits
        REGISTRY.counter("tune.cache_hits").inc(hits)
        if misses:
            got = self.executor.map(run_tune_task, [tasks[i] for i in misses])
            for i, value in zip(misses, got):
                self.cache.put(tasks[i], value)
                values[i] = value
        return values


def _ranked(records: list[dict[str, Any]]) -> list[dict[str, Any]]:
    """Records by descending GFLOPS, canonical point JSON as tiebreak."""
    return sorted(
        records,
        key=lambda r: (-float(r["objectives"]["gflops"]), canonical_json(r["point"])),
    )


def _brief(record: dict[str, Any]) -> dict[str, Any]:
    """The compact (point, gflops) form used inside rung summaries."""
    return {
        "point": dict(record["point"]),
        "gflops": record["objectives"]["gflops"],
    }


def run_tune(
    spec: TuneSpec,
    *,
    jobs: Any = None,
    cache: Any = None,
    telemetry: Optional[dict[str, Any]] = None,
) -> dict[str, Any]:
    """Run the guided search; returns the tune manifest.

    ``jobs``/``cache`` behave as in :func:`repro.campaign.run_campaign`;
    ``telemetry`` (a dict, filled in place) receives executor spans and
    cache statistics -- kept out of the manifest, which must stay
    bitwise-deterministic across worker counts and cache states.
    """
    space = spec.space
    grid_size = len(space.grid())
    points = space.points()
    if not points:
        raise ValueError("search space has no feasible points")
    n0 = len(points)
    budget = spec.effective_budget(n0)
    executor = SweepExecutor(jobs)
    evaluate = _Evaluator(executor, _coerce_cache(cache))
    rungs: list[dict[str, Any]] = []
    records: dict[str, dict[str, Any]] = {}

    def record(point: dict[str, Any], value: Any, fidelity: str, rung: int) -> dict[str, Any]:
        rec = {
            "point": dict(point),
            "params": space.params(point),
            "objectives": objectives_for(space, point, value),
            "fidelity": fidelity,
            "rung": rung,
        }
        records[canonical_json(point)] = rec
        return rec

    # -- rung 0: analytic scores for the whole space --------------------
    values = evaluate([point_task(space, pt, "analytic") for pt in points], "analytic")
    for pt, value in zip(points, values):
        record(pt, value, "analytic", 0)
    ranked0 = _ranked(list(records.values()))
    # Reserve part of the DES budget for refinement around the incumbent
    # (one round costs at most two neighbours per axis per radius step).
    reserve = min(budget // 2, 2 * spec.refine * len(space.axes)) if spec.refine else 0
    n1 = max(1, min(math.ceil(n0 / spec.eta), budget - reserve, budget))
    REGISTRY.counter("tune.rungs").inc()
    rungs.append(
        {
            "rung": 0,
            "fidelity": "analytic",
            "evaluated": n0,
            "kept": n1,
            "best": _brief(ranked0[0]),
        }
    )

    # -- rung 1: full-fidelity DES on the survivors ----------------------
    survivors = [dict(r["point"]) for r in ranked0[:n1]]
    des_used = 0
    values = evaluate([point_task(space, pt, "des") for pt in survivors], "des")
    des_records = [record(pt, v, "des", 1) for pt, v in zip(survivors, values)]
    des_used += len(survivors)
    incumbent = _ranked(des_records)[0]
    REGISTRY.counter("tune.rungs").inc()
    rungs.append(
        {
            "rung": 1,
            "fidelity": "des",
            "evaluated": len(survivors),
            "kept": 1,
            "best": _brief(incumbent),
        }
    )

    # -- refinement rungs: hill-climb the grid around the incumbent ------
    while spec.refine and des_used < budget:
        fresh = [
            pt
            for pt in space.neighbors(incumbent["point"], radius=spec.refine)
            if records.get(canonical_json(pt), {}).get("fidelity") != "des"
        ][: budget - des_used]
        if not fresh:
            break
        values = evaluate([point_task(space, pt, "des") for pt in fresh], "des")
        batch = [record(pt, v, "des", len(rungs)) for pt, v in zip(fresh, values)]
        des_used += len(fresh)
        best = _ranked(batch + [incumbent])[0]
        REGISTRY.counter("tune.rungs").inc()
        rungs.append(
            {
                "rung": len(rungs),
                "fidelity": "des",
                "evaluated": len(fresh),
                "kept": 1,
                "best": _brief(best),
            }
        )
        if best is incumbent:
            break
        incumbent = best

    # -- optional resilience rung ----------------------------------------
    senses = {k: v for k, v in DEFAULT_SENSES.items() if k != "resilience"}
    scenario_dict: Optional[dict[str, Any]] = None
    if spec.resilience:
        scenario = build_scenario(
            spec.resilience, seed=derive_seed(spec.seed, "resilience", spec.resilience)
        )
        scenario_dict = scenario.to_dict()
        des_ranked = _ranked([r for r in records.values() if r["fidelity"] == "des"])
        candidates = des_ranked[: spec.resilience_keep]
        values = evaluate(
            [resilience_task(space, r["point"], scenario_dict) for r in candidates],
            "resilience",
        )
        for rec, value in zip(candidates, values):
            rec["resilience"] = dict(value)
            rec["objectives"]["resilience"] = (
                0.0 if value["failed"] else float(value["efficiency_retention"])
            )
        senses = dict(DEFAULT_SENSES)
        REGISTRY.counter("tune.rungs").inc()
        rungs.append(
            {
                "rung": len(rungs),
                "fidelity": "resilience",
                "evaluated": len(candidates),
                "kept": len(candidates),
                "best": _brief(candidates[0]) if candidates else None,
            }
        )

    if telemetry is not None:
        telemetry["executor"] = dict(executor.last_telemetry)
        if evaluate.cache is not None:
            telemetry["cache"] = dict(evaluate.cache.stats)
            telemetry["cache_hit_rate"] = evaluate.cache.hit_rate

    # -- Pareto front -----------------------------------------------------
    # With a resilience objective the front is over the fully-scored
    # candidates (all three objectives present); otherwise over every
    # evaluated point (GFLOPS vs slice utilisation).
    if spec.resilience:
        front_rows = [r for r in records.values() if "resilience" in r["objectives"]]
    else:
        front_rows = list(records.values())
    front = pareto_front(front_rows, senses)

    # Every evaluated point (refinement neighbours included) is a member
    # of the feasible grid, so grid order enumerates them all.
    ordered = [records[canonical_json(pt)] for pt in points]
    manifest: dict[str, Any] = {
        "kind": "tune",
        "manifest_schema": TUNE_MANIFEST_SCHEMA,
        "preset": space.machine,
        "app": space.kind,
        "spec": spec.to_dict(),
        "space": {
            "size": n0,
            "grid_size": grid_size,
            "infeasible": grid_size - n0,
            "axes": {name: len(vals) for name, vals in space.axes.items()},
        },
        "budget": {"des": budget, "des_used": des_used},
        "evals": dict(evaluate.scheduled),
        "exhaustive_des": n0,
        "savings": {
            "des_evals_saved": n0 - des_used,
            "fraction_of_exhaustive": des_used / n0,
        },
        "rungs": rungs,
        "incumbent": {
            "point": dict(incumbent["point"]),
            "params": dict(incumbent["params"]),
            "objectives": dict(incumbent["objectives"]),
            "fidelity": incumbent["fidelity"],
        },
        "objectives": senses,
        "front": [
            {
                "point": dict(r["point"]),
                "objectives": dict(r["objectives"]),
                "fidelity": r["fidelity"],
            }
            for r in front
        ],
        "points": ordered,
    }
    if scenario_dict is not None:
        manifest["scenario"] = scenario_dict
    return manifest


def write_manifest(manifest: dict[str, Any], path: str) -> None:
    """Write a tune manifest as canonical JSON (sorted keys, newline)."""
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(manifest, fh, indent=2, sort_keys=True)
        fh.write("\n")


def load_manifest(path: str) -> dict[str, Any]:
    """Load a tune manifest (or a ledger ``tune`` entry) from JSON."""
    with open(path, "r", encoding="utf-8") as fh:
        data = json.load(fh)
    if not isinstance(data, dict):
        raise ValueError(f"{path}: expected a JSON object")
    if data.get("kind") == "tune" and "front" in data:
        return data
    raise ValueError(f"{path}: not a tune manifest (kind={data.get('kind')!r})")
