"""Design-space descriptions for the guided autotuner.

A :class:`SearchSpace` wraps a :class:`~repro.parallel.ParamGrid` with
the context the tuner needs beyond raw axis products: which application
surface the axes parameterise (``block_mm`` / ``lu`` / ``fw``), which
machine preset to evaluate on, which parameters are pinned, and which
grid points are *feasible* (simulator constraints plus synthesis fit).
It also answers the two structural questions the search driver asks:

* ``points()`` -- the feasible axis coordinates, in deterministic grid
  order (the rightmost axis varies fastest, duplicates dropped by the
  grid itself);
* ``neighbors(point, radius)`` -- the axis-adjacent feasible points
  around an incumbent, for the local-refinement pass.

Axis values can be given explicitly (``[0, 200, 400]``), as an
inclusive range string (``"0:3000:200"``), or as a range dict
(``{"start": 0, "stop": 3000, "step": 200}``) -- the latter two are the
"per-axis ranges" surface used by ``tune run --axis``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable, Optional

from ..hw import FW_DESIGN_SPEC, MM_DESIGN_SPEC
from ..hw.synthesis import SynthesisError, SynthesisReport, synthesize
from ..machine import ALL_PRESETS
from ..parallel import ParamGrid
from ..parallel.grid import canonical_json

__all__ = ["SPACE_KINDS", "SearchSpace", "named_space", "NAMED_SPACES", "parse_axis"]

#: Application surfaces the tuner can search over.  ``block_mm`` is the
#: paper's Figure 5 building block (one cooperative b x b multiply);
#: ``lu`` and ``fw`` are the full pipelined iterations.
SPACE_KINDS = ("block_mm", "lu", "fw")

#: Axes each kind accepts (fixed parameters may use the same names).
_KIND_PARAMS = {
    "block_mm": ("b", "b_f", "k"),
    "lu": ("n", "b", "k", "b_f", "l"),
    "fw": ("n", "b", "k", "l1", "l2"),
}


def parse_axis(text: str) -> tuple[str, tuple[Any, ...]]:
    """Parse one ``--axis`` argument: ``name=lo:hi:step`` or ``name=a,b,c``.

    Range bounds are inclusive (``b_f=0:3000:200`` yields 16 values),
    matching how the paper states its sweep grids.
    """
    name, _, spec = text.partition("=")
    name = name.strip()
    spec = spec.strip()
    if not name or not spec:
        raise ValueError(f"bad axis {text!r}: expected name=lo:hi:step or name=v1,v2,...")
    if ":" in spec:
        parts = spec.split(":")
        if len(parts) not in (2, 3):
            raise ValueError(f"bad axis range {spec!r}: expected lo:hi[:step]")
        lo, hi = int(parts[0]), int(parts[1])
        step = int(parts[2]) if len(parts) == 3 else 1
        if step <= 0 or hi < lo:
            raise ValueError(f"bad axis range {spec!r}: need hi >= lo and step > 0")
        return name, tuple(range(lo, hi + 1, step))
    return name, tuple(int(v) if "." not in v else float(v) for v in spec.split(","))


def _expand_axis(values: Any) -> tuple[Any, ...]:
    """Explicit values for one axis (list, range string, or range dict)."""
    if isinstance(values, str):
        return parse_axis(f"axis={values}")[1]
    if isinstance(values, dict):
        lo, hi = int(values["start"]), int(values["stop"])
        step = int(values.get("step", 1))
        if step <= 0 or hi < lo:
            raise ValueError(f"bad axis range {values!r}: need stop >= start and step > 0")
        return tuple(range(lo, hi + 1, step))
    return tuple(values)


@dataclass(frozen=True)
class SearchSpace:
    """One tunable design space: kind + machine + pinned params + axes."""

    kind: str = "block_mm"
    machine: str = "xd1"
    fixed: dict[str, Any] = field(default_factory=dict)
    axes: dict[str, tuple[Any, ...]] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.kind not in SPACE_KINDS:
            raise ValueError(f"unknown space kind {self.kind!r}; expected one of {SPACE_KINDS}")
        if self.machine not in ALL_PRESETS:
            raise ValueError(
                f"unknown machine {self.machine!r}; available: {sorted(ALL_PRESETS)}"
            )
        if not self.axes:
            raise ValueError("search space needs at least one axis")
        allowed = _KIND_PARAMS[self.kind]
        for name in list(self.fixed) + list(self.axes):
            if name not in allowed:
                raise ValueError(
                    f"unknown parameter {name!r} for kind {self.kind!r}; "
                    f"expected one of {allowed}"
                )
        overlap = set(self.fixed) & set(self.axes)
        if overlap:
            raise ValueError(f"parameters both fixed and swept: {sorted(overlap)}")
        missing = [p for p in allowed if p not in self.fixed and p not in self.axes]
        if missing:
            raise ValueError(f"kind {self.kind!r} is missing parameters {missing}")
        # Normalise through ParamGrid: tuples everywhere, duplicates
        # dropped, empty axes rejected.
        grid = ParamGrid(**{k: _expand_axis(v) for k, v in self.axes.items()})
        object.__setattr__(self, "axes", dict(grid.axes))
        object.__setattr__(self, "fixed", dict(self.fixed))

    # -- enumeration ----------------------------------------------------

    def grid(self) -> ParamGrid:
        """The underlying axis product (feasibility not yet applied)."""
        return ParamGrid(**self.axes)

    def params(self, point: dict[str, Any]) -> dict[str, Any]:
        """Full parameter dict for one axis point (fixed merged in)."""
        return {**self.fixed, **point}

    def feasible(self, point: dict[str, Any]) -> bool:
        """Whether the point satisfies simulator and synthesis constraints."""
        p = self.params(point)
        try:
            self.synthesis(int(p["k"]))
        except (SynthesisError, ValueError):
            return False
        try:
            if self.kind == "block_mm":
                b, b_f, k = int(p["b"]), int(p["b_f"]), int(p["k"])
                return 0 <= b_f <= b and b % k == 0 and b > 0
            if self.kind == "lu":
                from ..apps.lu import LuSimConfig

                LuSimConfig(
                    n=int(p["n"]), b=int(p["b"]), k=int(p["k"]),
                    b_f=int(p["b_f"]), l=int(p["l"]), iterations=1,
                )
                return True
            from ..apps.fw import FwSimConfig

            cfg = FwSimConfig(
                n=int(p["n"]), b=int(p["b"]), k=int(p["k"]),
                l1=int(p["l1"]), l2=int(p["l2"]), iterations=1,
            )
            # The split must cover exactly the per-node phase workload
            # (l1 + l2 = n / (b p), Section 5.2): otherwise two points
            # would simulate different problems and be incomparable.
            return (cfg.l1 + cfg.l2) * self.spec().p * cfg.b == cfg.n
        except (ValueError, ZeroDivisionError):
            return False

    def points(self) -> list[dict[str, Any]]:
        """Feasible axis points in deterministic grid order."""
        return [pt for pt in self.grid() if self.feasible(pt)]

    def neighbors(self, point: dict[str, Any], radius: int = 1) -> list[dict[str, Any]]:
        """Feasible axis-adjacent points around ``point``.

        For each axis in declaration order, steps of 1..radius index
        positions in each direction (minus first), skipping infeasible
        coordinates and ``point`` itself.  Deterministic order is what
        makes the refinement pass bitwise-reproducible.
        """
        out: list[dict[str, Any]] = []
        seen = {canonical_json(point)}
        for name, values in self.axes.items():
            try:
                idx = values.index(point[name])
            except (KeyError, ValueError):
                continue
            for step in range(1, radius + 1):
                for j in (idx - step, idx + step):
                    if not 0 <= j < len(values):
                        continue
                    cand = {**point, name: values[j]}
                    marker = canonical_json(cand)
                    if marker in seen:
                        continue
                    seen.add(marker)
                    if self.feasible(cand):
                        out.append(cand)
        return out

    # -- hardware context ----------------------------------------------

    def spec(self):
        """The :class:`~repro.machine.MachineSpec` this space evaluates on."""
        return ALL_PRESETS[self.machine]()

    def synthesis(self, k: int) -> SynthesisReport:
        """Synthesis estimate for the space's FPGA design at ``k`` PEs.

        The FPGA-resource objective of the Pareto front; raises
        :class:`~repro.hw.synthesis.SynthesisError` when k does not fit.
        """
        design = FW_DESIGN_SPEC if self.kind == "fw" else MM_DESIGN_SPEC
        return synthesize(design, self.spec().node.fpga.device, k)

    # -- serialisation --------------------------------------------------

    def to_dict(self) -> dict[str, Any]:
        return {
            "kind": self.kind,
            "machine": self.machine,
            "fixed": dict(self.fixed),
            "axes": {name: list(values) for name, values in self.axes.items()},
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "SearchSpace":
        return cls(
            kind=data.get("kind", "block_mm"),
            machine=data.get("machine", "xd1"),
            fixed=dict(data.get("fixed", {})),
            axes={name: _expand_axis(v) for name, v in data.get("axes", {}).items()},
        )


def _fig5_bf_values(step: int = 200) -> tuple[int, ...]:
    """The Figure 5 sweep grid: b_f multiples of ``step`` that align to k=8."""
    return tuple(bf for bf in range(0, 3001, step) if bf % 8 == 0)


def named_space(name: str) -> SearchSpace:
    """A library space by name (the ``tune run --space`` surface)."""
    try:
        return NAMED_SPACES[name]()
    except KeyError:
        raise ValueError(
            f"unknown space {name!r}; available: {sorted(NAMED_SPACES)}"
        ) from None


#: Library spaces.  ``fig5-bf`` is the paper's Figure 5 grid (the
#: acceptance benchmark for search efficiency); ``mm-codesign`` adds the
#: PE count as a second axis, trading slices against throughput (a real
#: two-objective front); ``fw-split`` searches the Figure 7 l1:l2 task
#: split; ``lu-bf-l`` searches the LU iteration over (b_f, l).
NAMED_SPACES = {
    "fig5-bf": lambda: SearchSpace(
        kind="block_mm",
        machine="xd1",
        fixed={"b": 3000, "k": 8},
        axes={"b_f": _fig5_bf_values()},
    ),
    "mm-codesign": lambda: SearchSpace(
        kind="block_mm",
        machine="xd1",
        fixed={"b": 3000},
        axes={"b_f": _fig5_bf_values(400), "k": (2, 4, 6, 8)},
    ),
    "fw-split": lambda: SearchSpace(
        kind="fw",
        machine="xd1",
        fixed={"n": 18432, "b": 256, "k": 8},
        axes={"l1": tuple(range(0, 13)), "l2": tuple(range(0, 13))},
    ),
    "lu-bf-l": lambda: SearchSpace(
        kind="lu",
        machine="xd1",
        fixed={"n": 12000, "b": 3000, "k": 8},
        axes={"b_f": _fig5_bf_values(400), "l": (1, 2, 3, 4)},
    ),
}
