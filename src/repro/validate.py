"""End-to-end functional validation runner: ``python -m repro.validate``.

Runs every distributed schedule (LU, FW, ring MM; hybrid and both
baselines) at several problem sizes with real numerics, the cycle-level
FPGA array models where shapes permit, and the Section 4.4 coordination
guard enforced throughout.  Prints a row per run and exits non-zero on
any failure -- the "does the reproduction actually compute correct
answers" gate, complementing the timing-side benchmarks.
"""

from __future__ import annotations

import sys
from dataclasses import dataclass

import numpy as np

from .analysis import table
from .apps.fw import distributed_blocked_fw
from .apps.lu import distributed_block_lu
from .apps.mm import distributed_ring_mm
from .core import CoordinationGuard
from .kernels import (
    lu_residual,
    max_abs_diff,
    random_dd_matrix,
    random_distance_matrix,
    scipy_shortest_paths,
)

__all__ = ["ValidationRow", "run_validation"]

#: Residual threshold for LU; FW and MM compare near-exactly.
LU_TOL = 1e-10
FW_TOL = 1e-10
MM_TOL = 1e-10


@dataclass
class ValidationRow:
    """One functional-validation run."""

    app: str
    config: str
    metric: str
    error: float
    tolerance: float
    messages: int
    guard_clean: bool

    @property
    def ok(self) -> bool:
        return self.error < self.tolerance and self.guard_clean


def run_validation(seed: int = 2007) -> list[ValidationRow]:
    """Execute the full functional matrix; returns one row per run."""
    rng = np.random.default_rng(seed)
    rows: list[ValidationRow] = []

    # ------------------------------------------------------------- LU
    for n, b, p, b_f, k, hw in [
        (24, 6, 2, 0, 2, False),  # Processor-only
        (24, 6, 2, 6, 2, False),  # FPGA-only
        (24, 6, 4, 4, 2, True),  # hybrid, PE-array shares
        (48, 12, 3, 8, 2, True),
        (60, 10, 5, 6, 2, False),
    ]:
        a = random_dd_matrix(n, rng)
        guard = CoordinationGuard(enforce=True)
        res = distributed_block_lu(a, b=b, p=p, b_f=b_f, k=k, use_hw_model=hw, guard=guard)
        rows.append(
            ValidationRow(
                app="LU",
                config=f"n={n} b={b} p={p} b_f={b_f}" + (" hw" if hw else ""),
                metric="||LU-A||/||A||",
                error=lu_residual(a, res.lu),
                tolerance=LU_TOL,
                messages=res.messages,
                guard_clean=guard.clean,
            )
        )

    # ------------------------------------------------------------- FW
    for n, b, p, l1, hw in [
        (16, 4, 2, 2, False),  # Processor-only
        (16, 4, 2, 0, True),  # FPGA-only on the PE array
        (24, 4, 3, 1, False),  # hybrid
        (32, 8, 4, 1, True),
        (36, 6, 6, 0, False),
    ]:
        d = random_distance_matrix(n, rng, density=0.4)
        guard = CoordinationGuard(enforce=True)
        res = distributed_blocked_fw(
            d, b=b, p=p, l1=l1, use_hw_model=hw, hw_k=2, guard=guard
        )
        rows.append(
            ValidationRow(
                app="FW",
                config=f"n={n} b={b} p={p} l1={l1}" + (" hw" if hw else ""),
                metric="max|D-scipy|",
                error=max_abs_diff(res.dist, scipy_shortest_paths(d)),
                tolerance=FW_TOL,
                messages=res.messages,
                guard_clean=guard.clean,
            )
        )

    # ------------------------------------------------------------- MM
    for n, p, m_f, k, hw in [
        (24, 2, 0, 2, False),
        (24, 4, 6, 2, False),
        (32, 4, 4, 4, True),
        (48, 6, 8, 2, True),
    ]:
        a = rng.standard_normal((n, n))
        b_mat = rng.standard_normal((n, n))
        guard = CoordinationGuard(enforce=True)
        res = distributed_ring_mm(a, b_mat, p=p, m_f=m_f, k=k, use_hw_model=hw, guard=guard)
        rows.append(
            ValidationRow(
                app="MM",
                config=f"n={n} p={p} m_f={m_f}" + (" hw" if hw else ""),
                metric="max|C-A@B|",
                error=float(np.abs(res.product - a @ b_mat).max()),
                tolerance=MM_TOL,
                messages=res.messages,
                guard_clean=guard.clean,
            )
        )
    return rows


def main() -> int:
    rows = run_validation()
    print(
        table(
            ["app", "configuration", "metric", "error", "tol", "msgs", "guard", "status"],
            [
                [
                    r.app,
                    r.config,
                    r.metric,
                    f"{r.error:.2e}",
                    f"{r.tolerance:.0e}",
                    r.messages,
                    "clean" if r.guard_clean else "VIOLATED",
                    "PASS" if r.ok else "FAIL",
                ]
                for r in rows
            ],
            title="Functional validation: every schedule, real numerics, guard enforced",
        )
    )
    bad = [r for r in rows if not r.ok]
    print(f"\n{len(rows) - len(bad)}/{len(rows)} validations passed.")
    return 1 if bad else 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
