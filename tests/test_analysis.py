"""Tests for the analysis utilities (series, figures, tables)."""

import pytest

from repro.analysis import (
    Series,
    bar_chart,
    box_plot,
    comparison_row,
    line_chart,
    percent,
    sweep,
    table,
)


# ------------------------------------------------------------------ Series


def test_sweep_builds_series():
    s = sweep("sq", [1, 2, 3], lambda x: x * x)
    assert len(s) == 3
    assert list(s) == [(1.0, 1.0), (2.0, 4.0), (3.0, 9.0)]
    assert s.y_min == 1.0 and s.y_max == 9.0


def test_argmin_argmax():
    s = Series("x", [0, 1, 2, 3], [5.0, 2.0, 3.0, 9.0])
    assert s.argmin() == 1
    assert s.argmax() == 3
    with pytest.raises(ValueError):
        Series("empty").argmin()


def test_monotone_detection():
    assert Series("up", [0, 1, 2], [1.0, 2.0, 3.0]).is_monotone_increasing()
    assert not Series("down", [0, 1, 2], [3.0, 2.0, 1.0]).is_monotone_increasing()
    assert Series("near", [0, 1], [1.0, 0.999]).is_monotone_increasing(tol=0.01)


def test_u_shape_detection():
    assert Series("u", [0, 1, 2, 3, 4], [5.0, 3.0, 1.0, 2.0, 4.0]).is_u_shaped()
    assert not Series("up", [0, 1, 2], [1.0, 2.0, 3.0]).is_u_shaped()
    assert not Series("zig", [0, 1, 2, 3], [3.0, 1.0, 2.0, 1.5]).is_u_shaped()
    assert not Series("short", [0, 1], [1.0, 2.0]).is_u_shaped()


# ------------------------------------------------------------------ charts


def test_line_chart_renders_marks():
    s = sweep("lat", [0, 1, 2], lambda x: x + 1)
    text = line_chart([s], "T", height=5, width=20, x_label="x", y_label="y")
    assert "T" in text and "o" in text and "[x]" in text and "[y]" in text


def test_line_chart_multiple_series_legend():
    s1 = sweep("a", [0, 1], lambda x: x)
    s2 = sweep("b", [0, 1], lambda x: 1 - x)
    text = line_chart([s1, s2], "T")
    assert "o = a" in text and "x = b" in text


def test_line_chart_degenerate():
    assert "(no data)" in line_chart([Series("e")], "T")
    flat = sweep("f", [1.0], lambda x: 2.0)
    assert "T" in line_chart([flat], "T")  # single point must not crash


def test_bar_chart_scales_to_max():
    text = bar_chart(["a", "bb"], [10.0, 5.0], "T", width=20)
    lines = text.splitlines()
    assert lines[1].count("#") == 20
    assert lines[2].count("#") == 10


def test_bar_chart_validation():
    with pytest.raises(ValueError):
        bar_chart(["a"], [1.0, 2.0], "T")
    assert "(no data)" in bar_chart([], [], "T")


def test_bar_chart_zero_values():
    text = bar_chart(["z"], [0.0], "T")
    assert "0" in text


def test_box_plot_marks_quartiles_on_a_shared_scale():
    stats = [
        {"min": 0.0, "q25": 2.0, "median": 5.0, "q75": 8.0, "max": 10.0},
        {"min": 4.0, "q25": 5.0, "median": 6.0, "q75": 7.0, "max": 8.0},
    ]
    text = box_plot(["wide", "tight"], stats, "T", width=21, unit="s")
    lines = text.splitlines()
    assert lines[0] == "T"
    wide = lines[1]
    body = wide[wide.index("|") + 1 : wide.rindex("|")]
    assert body[0] == "-" and body[-1] == "-"  # whiskers span min..max
    assert body[10] == "M"  # median of 5 on a 0..10 scale, width 21
    assert "[" in body and "]" in body and "=" in body
    assert "5s [2..8]" in wide
    tight = lines[2]
    assert tight.index("|") == wide.index("|")  # labels right-aligned
    assert lines[-1].strip().startswith("0")  # shared axis footer
    assert lines[-1].rstrip().endswith("10s")


def test_box_plot_skips_empty_rows_and_validates():
    stats = [{"min": 1.0, "q25": 1.0, "median": 1.0, "q75": 1.0, "max": 1.0}, {}]
    text = box_plot(["ok", "gone"], stats, "T")
    assert "ok" in text and "gone" not in text
    assert "(no data)" in box_plot([], [], "T")
    with pytest.raises(ValueError):
        box_plot(["a"], [], "T")


# ------------------------------------------------------------------ tables


def test_table_alignment():
    text = table(["name", "value"], [["x", 1.0], ["long-name", 123456.0]])
    lines = text.splitlines()
    assert lines[0].startswith("name")
    assert all(len(line) >= len("name  value") for line in lines[:2])


def test_table_with_title_and_float_formats():
    text = table(["v"], [[0.00001], [3.14159], [0.0]], title="T")
    assert text.splitlines()[0] == "T"
    assert "1e-05" in text
    assert "3.142" in text


def test_table_row_mismatch():
    with pytest.raises(ValueError):
        table(["a", "b"], [["only-one"]])


def test_percent_and_comparison_row():
    assert percent(0.962) == "96.2%"
    row = comparison_row("hybrid", 20.0, 19.4, "close")
    assert row[0] == "hybrid"
    assert row[3] == "0.97x"
