"""Tests for block-size selection (Section 6.1 reasoning)."""

import pytest

from repro.core import (
    SystemParameters,
    choose_fw_block_size,
    fw_block_size_bound,
    lu_block_candidates,
    max_lu_block_size,
)


def lu_params(**over):
    base = dict(p=6, o_f=16, f_f=130e6, cpu_flops=3.9e9, b_d=1.04e9, b_n=2e9)
    base.update(over)
    return SystemParameters(**base)


def fw_params(**over):
    base = dict(p=6, o_f=16, f_f=120e6, cpu_flops=190e6, b_d=960e6, b_n=2e9)
    base.update(over)
    return SystemParameters(**base)


# ------------------------------------------------------------------- LU


def test_paper_block_size_is_feasible():
    cands = {c.b: c for c in lu_block_candidates(lu_params(), 8)}
    assert 3000 in cands
    assert cands[3000].feasible
    # The unconstrained Eq. 4 split at b=3000 fits in 8 MB with room.
    assert cands[3000].sram_words_needed < lu_params().sram_words


def test_candidates_respect_divisibility():
    for c in lu_block_candidates(lu_params(), 8, b_max=2000):
        assert c.b % 8 == 0
        assert c.b % 5 == 0  # p - 1


def test_max_block_size_bounded_by_sram():
    b_star = max_lu_block_size(lu_params(), 8)
    assert 3000 <= b_star < 4200
    cands = {c.b: c for c in lu_block_candidates(lu_params(), 8)}
    next_b = b_star + 40  # the lcm step
    if next_b in cands:
        assert not cands[next_b].feasible


def test_bigger_sram_allows_bigger_blocks():
    small = max_lu_block_size(lu_params(), 8)
    big = max_lu_block_size(lu_params(sram_bytes=64 * 2**20), 8)
    assert big > small


def test_no_feasible_block_raises():
    with pytest.raises(ValueError, match="no feasible"):
        max_lu_block_size(lu_params(sram_bytes=1024), 8)


def test_lu_candidate_validation():
    with pytest.raises(ValueError):
        lu_block_candidates(lu_params(), 0)
    with pytest.raises(ValueError, match="p >= 2"):
        lu_block_candidates(lu_params(p=1), 8)


# ------------------------------------------------------------------- FW


def test_fw_bound_is_724_rounded_to_720():
    """8 MB / 8 B = 2^20 words; sqrt(2^19) = 724 -> 720 (multiple of 8)."""
    assert fw_block_size_bound(fw_params(), 8) == 720


def test_fw_choice_is_256():
    assert choose_fw_block_size(fw_params(), 8) == 256


def test_fw_choice_capped_by_sram_when_tiny():
    tiny = fw_params(sram_bytes=2 * 64 * 64 * 8)  # room for a 64-tile
    assert choose_fw_block_size(tiny, 8) == 64


def test_fw_bound_validation():
    with pytest.raises(ValueError):
        fw_block_size_bound(fw_params(), 0)
    with pytest.raises(ValueError, match="k x k"):
        fw_block_size_bound(fw_params(sram_bytes=8), 8)


def test_fw_bound_scales_with_sram():
    assert fw_block_size_bound(fw_params(sram_bytes=32 * 2**20), 8) == 1448 // 8 * 8
