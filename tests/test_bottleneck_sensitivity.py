"""Tests for the bottleneck analyser and the sensitivity analysis."""

import pytest

from repro.analysis import analyse_trace
from repro.apps.fw import FwSimConfig, simulate_fw
from repro.apps.lu import LuSimConfig, simulate_lu
from repro.core import (
    DesignModel,
    SystemParameters,
    TUNABLE_RATES,
    prediction_sensitivity,
)
from repro.machine import cray_xd1
from repro.sim import Trace


# ----------------------------------------------------------- bottleneck


def make_trace():
    tr = Trace()
    tr.record("cpu0", "gemm[0]", 0.0, 4.0)
    tr.record("mpi0", "mpi:send->1", 4.0, 5.0)
    tr.record("fpga0", "mm[0]", 0.0, 8.0)
    tr.record("dram0", "stage[0]", 0.0, 1.0)
    return tr


def test_breakdown_totals():
    report = analyse_trace(make_trace())
    assert report.makespan == 8.0
    cpu = report.lane("cpu0")
    assert cpu.busy == pytest.approx(4.0)
    assert cpu.idle == pytest.approx(4.0)
    assert cpu.utilisation == pytest.approx(0.5)
    assert report.lane("fpga0").utilisation == pytest.approx(1.0)


def test_activity_classes():
    report = analyse_trace(make_trace())
    assert report.lane("cpu0").by_class["compute"] == pytest.approx(4.0)
    assert report.lane("mpi0").by_class["communication"] == pytest.approx(1.0)


def test_binding_lane_is_busiest():
    assert analyse_trace(make_trace()).binding_lane == "fpga0"


def test_mean_utilisation_by_prefix():
    report = analyse_trace(make_trace())
    assert report.mean_utilisation("cpu") == pytest.approx(0.5)
    assert report.mean_utilisation("nothing") == 0.0


def test_render_is_textual():
    text = analyse_trace(make_trace()).render()
    assert "binding resource: fpga0" in text
    assert "utilisation" in text


def test_empty_trace_rejected():
    with pytest.raises(ValueError, match="empty"):
        analyse_trace(Trace())
    with pytest.raises(ValueError):
        analyse_trace(None)


def test_unknown_lane_keyerror():
    with pytest.raises(KeyError):
        analyse_trace(make_trace()).lane("cpu9")


def test_lu_run_bottleneck_story():
    """The LU hybrid's worker CPUs carry compute + comm; the analysis
    must expose both classes and a sub-100% FPGA utilisation (the gap
    behind the measured-vs-predicted discussion in EXPERIMENTS.md)."""
    spec = cray_xd1()
    res = simulate_lu(spec, LuSimConfig(n=12000, b=3000, k=8, b_f=1080, l=3), trace=True)
    report = analyse_trace(res.trace, makespan=res.elapsed)
    assert 0.0 < report.mean_utilisation("fpga") < 1.0
    assert report.lane("cpu1").by_class.get("compute", 0) > 0
    assert report.lane("mpi1").by_class.get("communication", 0) > 0


def test_fw_run_fpga_bound():
    """FW at the Eq. 6 split keeps the FPGA the near-binding resource."""
    spec = cray_xd1()
    res = simulate_fw(
        spec, FwSimConfig(n=18432, b=256, k=8, l1=2, l2=10, iterations=1), trace=True
    )
    report = analyse_trace(res.trace, makespan=res.elapsed)
    assert report.mean_utilisation("fpga") > 0.85


# ----------------------------------------------------------- sensitivity


def fw_params():
    return SystemParameters(p=6, o_f=16, f_f=120e6, cpu_flops=190e6, b_d=960e6, b_n=2e9)


def fw_predict(params: SystemParameters) -> float:
    model = DesignModel(params)
    return model.plan_fw(92160, 256, 8).prediction.gflops


def test_fw_sensitivity_fpga_bound():
    """On the XD1 the FW design is FPGA-bound: F_f is by far the most
    elastic parameter; the network is slack."""
    result = prediction_sensitivity(fw_params(), fw_predict)
    by_name = {e.parameter: e.elasticity for e in result}
    assert by_name["f_f"] > 0.5
    assert by_name["f_f"] > by_name["cpu_flops"]
    assert abs(by_name["b_n"]) < 0.05


def test_sensitivity_sorted_by_magnitude():
    result = prediction_sensitivity(fw_params(), fw_predict)
    mags = [abs(e.elasticity) for e in result]
    assert mags == sorted(mags, reverse=True)


def test_sensitivity_all_rates_covered():
    result = prediction_sensitivity(fw_params(), fw_predict)
    assert {e.parameter for e in result} == set(TUNABLE_RATES)


def test_sensitivity_validation():
    with pytest.raises(ValueError, match="step"):
        prediction_sensitivity(fw_params(), fw_predict, step=0)
    with pytest.raises(ValueError, match="unknown parameter"):
        prediction_sensitivity(fw_params(), fw_predict, parameters=("bogus",))


def test_elasticity_zero_base():
    from repro.core.sensitivity import Elasticity

    e = Elasticity("x", 1.0, 0.0, 1.0, 0.05)
    assert e.elasticity == 0.0


def test_lu_sensitivity_mixed():
    """LU uses both devices heavily: both cpu_flops and f_f matter."""
    params = SystemParameters(p=6, o_f=16, f_f=130e6, cpu_flops=3.9e9, b_d=1.04e9, b_n=2e9)

    def lu_predict(p: SystemParameters) -> float:
        return DesignModel(p).plan_lu(30000, 3000, 8, t_lu=4.9, t_opl=7.1, t_opu=7.1).prediction.gflops

    result = prediction_sensitivity(params, lu_predict)
    by_name = {e.parameter: e.elasticity for e in result}
    # Both devices carry load, but the fixed Table-1 panel latencies damp
    # the elasticities well below 1 (the panel path doesn't speed up).
    assert by_name["cpu_flops"] > 0.05
    assert by_name["f_f"] > 0.05
    assert by_name["cpu_flops"] > by_name["b_n"]
