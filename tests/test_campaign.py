"""Tests for the statistical campaign harness (repro.campaign)."""

import json

import pytest

from repro.campaign import (
    CampaignSpec,
    PerturbationModel,
    campaign_tasks,
    cell_key,
    default_model,
    derive_seed,
    resolve_runner,
    resolve_seed,
    run_campaign,
    run_replicate,
)
from repro.campaign.seeds import SEED_ENV_VAR
from repro.faults.scenarios import FaultEvent, FaultScenario

#: Small problem sizes so a replicate is a few milliseconds.
SIZES = {"lu": (6000, 3000), "fw": (9216, 256)}


def _spec(**over):
    defaults = dict(
        apps=("lu",),
        replicates=3,
        seed=7,
        sizes=SIZES,
    )
    defaults.update(over)
    return CampaignSpec(**defaults)


# ------------------------------------------------------------------ seeds


def test_resolve_seed_precedence(monkeypatch):
    monkeypatch.delenv(SEED_ENV_VAR, raising=False)
    assert resolve_seed() == 0
    assert resolve_seed(42) == 42
    monkeypatch.setenv(SEED_ENV_VAR, "99")
    assert resolve_seed() == 99
    assert resolve_seed(1) == 1  # explicit argument wins over the env
    monkeypatch.setenv(SEED_ENV_VAR, "not-a-number")
    with pytest.raises(ValueError, match="invalid seed"):
        resolve_seed()


def test_derive_seed_stable_and_distinct():
    a = derive_seed(7, "lu@xd1/nominal", 0)
    assert a == derive_seed(7, "lu@xd1/nominal", 0)  # deterministic
    assert a != derive_seed(7, "lu@xd1/nominal", 1)  # per replicate
    assert a != derive_seed(7, "fw@xd1/nominal", 0)  # per cell
    assert a != derive_seed(8, "lu@xd1/nominal", 0)  # per master
    assert 0 <= a < 2**63


# ---------------------------------------------------------------- perturb


def test_perturbation_model_validates():
    with pytest.raises(ValueError, match="bandwidth_jitter"):
        PerturbationModel(bandwidth_jitter=1.5)
    with pytest.raises(ValueError, match="stall_count"):
        PerturbationModel(stall_count=-1)
    assert PerturbationModel(
        bandwidth_jitter=0, dram_jitter=0, clock_jitter=0, stall_count=0
    ).is_null
    assert not default_model().is_null


def test_sample_is_deterministic_and_bounded():
    model = default_model()
    s1 = model.sample(123)
    s2 = model.sample(123)
    assert s1.to_dict() == s2.to_dict()
    assert s1.to_dict() != model.sample(124).to_dict()
    factors = {e.kind: e.factor for e in s1.events}
    assert 0.95 <= factors["link_slowdown"] <= 1.05
    assert 0.95 <= factors["dram_contention"] <= 1.05
    assert 0.95 <= factors["fpga_throttle"] <= 1.0  # throttle-only
    assert len(s1.bursts) == 1


def test_sample_carries_base_scenario():
    base = FaultScenario(
        name="degraded-link",
        events=(FaultEvent(kind="link_slowdown", factor=0.5),),
    )
    drawn = default_model().sample(5, base=base)
    assert drawn.name == "degraded-link+perturb"
    assert drawn.events[0].factor == 0.5  # base event carried verbatim
    assert len(drawn.events) == 4  # base + three jitter events
    assert drawn.seed == 5


def test_perturb_roundtrips_via_dict():
    model = PerturbationModel(bandwidth_jitter=0.1, stall_count=2)
    assert PerturbationModel.from_dict(model.to_dict()) == model


# ----------------------------------------------------------------- runner


def test_run_replicate_nominal_lu():
    task = campaign_tasks(_spec(replicates=1))[0]
    result = run_replicate(task)
    assert result["failed"] is False
    assert result["makespan"] > 0
    assert result["overlap_efficiency"] > 0.85
    assert result["hist"]["count"] == 1
    assert result["seed"] == task["seed"]


def test_run_replicate_node_failure_reports_failed():
    task = campaign_tasks(_spec(replicates=1))[0]
    task["scenario"]["events"].append(
        {"kind": "node_failure", "at": 0.001, "node": 1, "factor": 1.0}
    )
    result = run_replicate(task)
    assert result["failed"] is True
    assert "failure" in result


def test_unknown_app_rejected():
    with pytest.raises(ValueError, match="no campaign runner"):
        resolve_runner("sparse-qr")
    with pytest.raises(ValueError, match="no campaign runner"):
        campaign_tasks(_spec(apps=("sparse-qr",)))


# ------------------------------------------------------------------- core


def test_spec_validates():
    with pytest.raises(ValueError, match="replicates"):
        _spec(replicates=0)
    with pytest.raises(ValueError, match="at least one app"):
        _spec(apps=())
    with pytest.raises(ValueError, match="throttle_fpga"):
        _spec(throttle_fpga=1.5)


def test_spec_roundtrips_via_dict():
    spec = _spec(throttle_fpga=0.8)
    assert CampaignSpec.from_dict(spec.to_dict()) == spec


def test_campaign_tasks_grid_and_seeds():
    spec = _spec(apps=("lu", "fw"), replicates=3)
    tasks = campaign_tasks(spec)
    assert len(tasks) == 6  # 2 apps x 1 scenario x 3 replicates
    seeds = [t["seed"] for t in tasks]
    assert len(set(seeds)) == len(seeds)  # all distinct
    assert tasks[0]["seed"] == derive_seed(7, cell_key("lu", "xd1", "nominal"), 0)
    # every task embeds its own concrete perturbation draw
    scenarios = [json.dumps(t["scenario"], sort_keys=True) for t in tasks]
    assert len(set(scenarios)) == len(scenarios)


def test_run_campaign_manifest_shape_and_stats():
    manifest = run_campaign(_spec(replicates=5), jobs=1, cache=False)
    assert manifest["kind"] == "campaign"
    assert manifest["points"] == 5
    assert manifest["failures"] == 0
    (cell,) = manifest["cells"].values()
    mk = cell["makespan"]
    assert len(mk["samples"]) == 5
    assert mk["min"] <= mk["q25"] <= mk["median"] <= mk["q75"] <= mk["p95"] <= mk["max"]
    assert mk["iqr"] == pytest.approx(mk["q75"] - mk["q25"])
    assert mk["p99"] <= mk["max"]
    # the merged histogram counts every completed replicate (satellite:
    # Histogram.merge feeds the cell aggregate)
    assert cell["hist"]["count"] == 5
    assert cell["efficiency"]["median"] > 0.85
    assert cell["predicted_latency"] > 0


def test_run_campaign_deterministic_and_seed_sensitive():
    spec = _spec(replicates=2)
    a = run_campaign(spec, jobs=1, cache=False)
    b = run_campaign(spec, jobs=1, cache=False)
    assert json.dumps(a, sort_keys=True) == json.dumps(b, sort_keys=True)
    c = run_campaign(_spec(replicates=2, seed=8), jobs=1, cache=False)
    assert json.dumps(a, sort_keys=True) != json.dumps(c, sort_keys=True)


def test_run_campaign_serial_parallel_bitwise_identical():
    spec = _spec(apps=("lu",), replicates=4)
    serial = run_campaign(spec, jobs=1, cache=False)
    parallel = run_campaign(spec, jobs=2, cache=False)
    assert json.dumps(serial, sort_keys=True) == json.dumps(parallel, sort_keys=True)


def test_run_campaign_uses_result_cache(tmp_path):
    spec = _spec(replicates=2)
    cold = run_campaign(spec, jobs=1, cache=str(tmp_path / "cache"))
    warm = run_campaign(spec, jobs=1, cache=str(tmp_path / "cache"))
    assert json.dumps(cold, sort_keys=True) == json.dumps(warm, sort_keys=True)


def test_throttled_campaign_is_slower():
    base = run_campaign(_spec(replicates=3), jobs=1, cache=False)
    slow = run_campaign(_spec(replicates=3, throttle_fpga=0.8), jobs=1, cache=False)
    (b,) = base["cells"].values()
    (s,) = slow["cells"].values()
    assert s["makespan"]["median"] > b["makespan"]["median"]
    # the throttle event is recorded in the cell's base scenario
    kinds = [e["kind"] for e in s["scenario"]["events"]]
    assert "fpga_throttle" in kinds


def test_manifest_is_json_serializable():
    manifest = run_campaign(_spec(replicates=2), jobs=1, cache=False)
    json.dumps(manifest)  # no histograms/dataclasses leaking through
